// Benchmarks regenerating every experiment of DESIGN.md (one Benchmark per
// table/figure, delegating to internal/experiments on the quick workload)
// plus micro-benchmarks of the core operations. Run:
//
//	go test -bench=. -benchmem
//
// For the full-size experiment tables use cmd/semandaq-bench instead.
package semandaq_test

import (
	"context"
	"fmt"
	"io"
	"testing"

	"semandaq"
	"semandaq/internal/experiments"
)

// benchExp wraps one experiment as a testing.B benchmark.
func benchExp(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("no experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(b.Context(), io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

// The paper's demo figures.
func BenchmarkExpF2Exploration(b *testing.B) { benchExp(b, "F2") }
func BenchmarkExpF3Detection(b *testing.B)   { benchExp(b, "F3") }
func BenchmarkExpF4Audit(b *testing.B)       { benchExp(b, "F4") }
func BenchmarkExpF5Repair(b *testing.B)      { benchExp(b, "F5") }

// The imported performance claims.
func BenchmarkExpD1DetectScale(b *testing.B)   { benchExp(b, "D1") }
func BenchmarkExpD2PatternScale(b *testing.B)  { benchExp(b, "D2") }
func BenchmarkExpD3Incremental(b *testing.B)   { benchExp(b, "D3") }
func BenchmarkExpD4Parallel(b *testing.B)      { benchExp(b, "D4") }
func BenchmarkExpD5Columnar(b *testing.B)      { benchExp(b, "D5") }
func BenchmarkExpD6Discovery(b *testing.B)     { benchExp(b, "D6") }
func BenchmarkExpD7Incremental(b *testing.B)   { benchExp(b, "D7") }
func BenchmarkExpD9Factorised(b *testing.B)    { benchExp(b, "D9") }
func BenchmarkExpR1RepairQuality(b *testing.B) { benchExp(b, "R1") }
func BenchmarkExpR2RepairScale(b *testing.B)   { benchExp(b, "R2") }
func BenchmarkExpR3IncRepair(b *testing.B)     { benchExp(b, "R3") }
func BenchmarkExpS1Consistency(b *testing.B)   { benchExp(b, "S1") }
func BenchmarkExpM1Monitor(b *testing.B)       { benchExp(b, "M1") }

// Ablations of the design choices DESIGN.md calls out.
func BenchmarkExpA1TableauMerging(b *testing.B) { benchExp(b, "A1") }
func BenchmarkExpA2Arbitration(b *testing.B)    { benchExp(b, "A2") }

// Micro-benchmarks over the public API at several scales.

func benchWorkload(b *testing.B, n int) (*semandaq.Dataset, []*semandaq.CFD) {
	b.Helper()
	ds := semandaq.GenerateCustomers(semandaq.GeneratorConfig{
		Tuples: n, Seed: 7, NoiseRate: 0.05})
	return ds, semandaq.StandardCFDs()
}

func BenchmarkDetectSQL(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds, cfds := benchWorkload(b, n)
			sys := semandaq.New()
			sys.RegisterTable(ds.Dirty)
			if err := sys.RegisterCFDs("customer", cfds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Touch the table version so the report cache misses.
				b.StopTimer()
				sys2 := semandaq.New()
				sys2.RegisterTable(ds.Dirty)
				if err := sys2.RegisterCFDs("customer", cfds); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := sys2.Detect(context.Background(), "customer", semandaq.WithEngine(semandaq.SQLDetection)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDetectNative(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds, cfds := benchWorkload(b, n)
			sys := semandaq.New()
			sys.RegisterTable(ds.Dirty)
			if err := sys.RegisterCFDs("customer", cfds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys2 := semandaq.New()
				sys2.RegisterTable(ds.Dirty)
				if err := sys2.RegisterCFDs("customer", cfds); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := sys2.Detect(context.Background(), "customer", semandaq.WithEngine(semandaq.NativeDetection)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectColumnar mirrors BenchmarkDetectNative with the
// sequential columnar-snapshot detector. The snapshot is version-cached on
// the shared table, so the first iteration pays the dictionary build and
// the rest measure the warm path — the steady state of a read-mostly
// workload. Cold-vs-warm (and the 1M-tuple comparison) are reported
// separately by cmd/semandaq-bench -exp D5.
func BenchmarkDetectColumnar(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds, cfds := benchWorkload(b, n)
			sys := semandaq.New()
			sys.RegisterTable(ds.Dirty)
			if err := sys.RegisterCFDs("customer", cfds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys2 := semandaq.New()
				sys2.RegisterTable(ds.Dirty)
				if err := sys2.RegisterCFDs("customer", cfds); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := sys2.Detect(context.Background(), "customer", semandaq.WithEngine(semandaq.ColumnarDetection)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectParallel mirrors BenchmarkDetectNative with the sharded
// multi-core detector; compare the two at n=100000 for the speedup on
// GOMAXPROCS >= 4 machines. Larger comparisons (up to 1M tuples, including
// the SQL engine) live in cmd/semandaq-bench -exp D4.
func BenchmarkDetectParallel(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds, cfds := benchWorkload(b, n)
			sys := semandaq.New()
			sys.RegisterTable(ds.Dirty)
			if err := sys.RegisterCFDs("customer", cfds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys2 := semandaq.New()
				sys2.RegisterTable(ds.Dirty)
				if err := sys2.RegisterCFDs("customer", cfds); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := sys2.Detect(context.Background(), "customer", semandaq.WithEngine(semandaq.ParallelDetection)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIncrementalInsert(b *testing.B) {
	ds, cfds := benchWorkload(b, 20000)
	tr, err := semandaq.NewTracker(ds.Dirty, cfds)
	if err != nil {
		b.Fatal(err)
	}
	fresh := semandaq.GenerateCustomers(semandaq.GeneratorConfig{
		Tuples: 1, Seed: 9, NoiseRate: 0})
	_, rows := fresh.Dirty.Rows()
	row := rows[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _, err := tr.Insert(row)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tr.Delete(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepair(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			ds, cfds := benchWorkload(b, n)
			sys := semandaq.New()
			sys.RegisterTable(ds.Dirty)
			if err := sys.RegisterCFDs("customer", cfds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Repair(context.Background(), "customer"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAudit(b *testing.B) {
	ds, cfds := benchWorkload(b, 10000)
	sys := semandaq.New()
	sys.RegisterTable(ds.Dirty)
	if err := sys.RegisterCFDs("customer", cfds); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Detect(context.Background(), "customer", semandaq.WithEngine(semandaq.NativeDetection)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Audit(context.Background(), "customer"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsistencyCheck(b *testing.B) {
	cfds := semandaq.StandardCFDs()
	sc := semandaq.NewSchema("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := semandaq.CheckConsistency(sc, cfds, nil)
		if err != nil || !rep.Satisfiable {
			b.Fatal(err)
		}
	}
}

// Package semandaq is a data quality system based on conditional functional
// dependencies (CFDs), reproducing Fan, Geerts, Jia, "Semandaq: A Data
// Quality System Based on Conditional Functional Dependencies" (VLDB 2008)
// and the algorithms of its companion papers (TODS 2008 detection and
// static analysis; VLDB 2007 cost-based repair).
//
// The top-level type is System: load relational data, register CFDs (the
// constraint engine checks the set is satisfiable), then detect violations
// with automatically generated SQL, audit the data's quality, explore
// violations interactively, repair the data with a cost-based heuristic,
// and monitor updates incrementally.
//
// Four interchangeable detection engines produce the same report:
// SQLDetection (the paper's generated-SQL technique), NativeDetection (a
// single-threaded in-memory row scan), ColumnarDetection (a scan over the
// table's columnar snapshot with per-column interned dictionaries, so
// grouping runs on fixed-width code vectors) and ParallelDetection (the
// columnar evaluation sharded across all CPU cores by a hash of each
// CFD's LHS code vector, for multi-core throughput on large tables).
// docs/ENGINES.md has the full matrix and when-to-use guidance.
//
// Requests take a context.Context and functional options, so callers can
// cancel long scans (a dropped HTTP client, a CLI timeout) and tune each
// call without mutating the shared session:
//
//	sys := semandaq.New()
//	sys.LoadCSV("customer", file)
//	sys.RegisterCFDText("customer", `
//	    customer: [CNT=UK, ZIP=_] -> [STR=_]
//	    customer: [CC=44]         -> [CNT=UK]
//	`)
//	report, _ := sys.Detect(ctx, "customer", semandaq.WithEngine(semandaq.SQLDetection))
//	audit, _  := sys.Audit(ctx, "customer")
//	repair, _ := sys.Repair(ctx, "customer")
//
// DetectStream yields violations as the sharded columnar scan finds them,
// without materializing the report:
//
//	for v, err := range sys.DetectStream(ctx, "customer") { ... }
//
// Discover mines CFDs from trusted reference data — a level-wise lattice
// search over the snapshot's partition indexes, parallel across workers
// and pinned to one table version:
//
//	rep, _ := sys.Discover(ctx, "customer", semandaq.WithMinSupport(100))
//	_ = sys.RegisterCFDs("customer", rep.CFDs) // rep.Version says what was mined
//
// The store serves live traffic: System.Insert, Delete and SetCell mutate
// tables (routed through the table's data monitor when one is active)
// while detection, audit, exploration and SQL queries keep running. Every
// read path evaluates an immutable, pinned Snapshot, so each report or
// query result reflects exactly one table version and carries it in its
// Version field.
//
// This package re-exports the library's public surface; implementation
// lives under internal/.
package semandaq

import (
	"semandaq/internal/audit"
	"semandaq/internal/cfd"
	"semandaq/internal/consistency"
	"semandaq/internal/core"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/explore"
	"semandaq/internal/monitor"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// System is one Semandaq data-quality session: tables, constraints and the
// operations of the paper's architecture (Fig. 1).
type System = core.Semandaq

// New creates a System over an empty store.
func New() *System { return core.New() }

// NewWithStore creates a System over an existing store.
func NewWithStore(store *Store) *System { return core.NewWithStore(store) }

// Constraint model.
type (
	// CFD is a conditional functional dependency: an embedded FD X → Y
	// plus a pattern tableau of constants and wildcards.
	CFD = cfd.CFD
	// PatternTuple is one tableau row.
	PatternTuple = cfd.PatternTuple
	// PatternValue is one tableau cell: a constant or the wildcard "_".
	PatternValue = cfd.PatternValue
)

// Wild is the "don't care" pattern cell.
var Wild = cfd.Wild

// Constant builds a constant pattern cell.
func Constant(v Value) PatternValue { return cfd.Constant(v) }

// ParseCFD parses one CFD line, e.g.
// "customer: [CNT=UK, ZIP=_] -> [STR=_]".
func ParseCFD(line string) (*CFD, error) { return cfd.ParseLine(line) }

// ParseCFDSet parses a multi-line CFD specification, merging patterns that
// share an embedded FD.
func ParseCFDSet(text string) ([]*CFD, error) { return cfd.ParseSet(text) }

// NewFD builds the CFD form of a classical FD (all-wildcard pattern).
func NewFD(id, table string, lhs, rhs []string) *CFD { return cfd.NewFD(id, table, lhs, rhs) }

// Data model.
type (
	// Store is a named collection of tables.
	Store = relstore.Store
	// Table is one mutable relation instance with stable tuple IDs.
	// Stored rows are copy-on-write, so read snapshots stay stable while
	// writers proceed.
	Table = relstore.Table
	// Snapshot is an immutable, versioned read view of a table: every
	// read path (detection, streaming, audit, explore, SQL) evaluates one
	// pinned Snapshot, so results reflect exactly one table version and
	// carry it in their Version field.
	Snapshot = relstore.Snapshot
	// Tuple is one row.
	Tuple = relstore.Tuple
	// TupleID identifies a tuple for its whole life.
	TupleID = relstore.TupleID
	// Value is a typed scalar (string/int/float/bool/NULL).
	Value = types.Value
	// Schema describes a relation.
	Schema = schema.Relation
)

// NewStore creates an empty store.
func NewStore() *Store { return relstore.NewStore() }

// NewSchema builds a relation schema from attribute names.
func NewSchema(name string, attrs ...string) *Schema { return schema.New(name, attrs...) }

// Value constructors.
var (
	// Null is the NULL value.
	Null = types.Null
)

// String builds a string value.
func String(s string) Value { return types.NewString(s) }

// Int builds an integer value.
func Int(i int64) Value { return types.NewInt(i) }

// Float builds a float value.
func Float(f float64) Value { return types.NewFloat(f) }

// Bool builds a boolean value.
func Bool(b bool) Value { return types.NewBool(b) }

// Detection.
type (
	// DetectionReport is the result of violation detection, including the
	// per-tuple counts vio(t).
	DetectionReport = detect.Report
	// Violation is one tuple's involvement in one CFD violation.
	Violation = detect.Violation
	// ViolationGroup is one multi-tuple violation group.
	ViolationGroup = detect.Group
	// Tracker maintains violations incrementally under updates.
	Tracker = detect.Tracker
	// DetectorKind selects the detection implementation.
	DetectorKind = core.DetectorKind
	// Option configures one request (Detect, DetectStream, Audit, Repair,
	// Monitor); build them with WithEngine, WithWorkers, WithCFDs,
	// WithLimit and WithCleansed.
	Option = core.Option
)

// Request options.
var (
	// WithEngine selects the detection engine for one request.
	WithEngine = core.WithEngine
	// WithWorkers overrides the sharded engines' worker count for one
	// request (n <= 0 means GOMAXPROCS).
	WithWorkers = core.WithWorkers
	// WithCFDs scopes a request to the registered CFDs with these IDs.
	WithCFDs = core.WithCFDs
	// WithLimit caps the violation records returned or streamed.
	WithLimit = core.WithLimit
	// WithCleansed selects the monitor's incremental-repair mode.
	WithCleansed = core.WithCleansed
	// WithMinSupport sets discovery's minimum pattern cover; explicit
	// positive values — including 1 — always win over the default.
	WithMinSupport = core.WithMinSupport
	// WithMaxLHS bounds discovery's embedded-FD LHS size (lattice depth).
	WithMaxLHS = core.WithMaxLHS
	// WithMinConfidence admits approximate CFDs below confidence 1.
	WithMinConfidence = core.WithMinConfidence
	// WithMaxPatterns bounds condition patterns per discovered FD.
	WithMaxPatterns = core.WithMaxPatterns
)

// Detection engine choices.
const (
	// SQLDetection runs the two generated SQL queries per CFD (the
	// paper's technique).
	SQLDetection = core.SQLDetection
	// NativeDetection runs the in-memory baseline.
	NativeDetection = core.NativeDetection
	// ParallelDetection shards detection over the table's columnar
	// snapshot across all CPU cores by a hash of each CFD's LHS code
	// vector; the report is identical to NativeDetection's. Tune the
	// goroutine count with System.SetWorkers.
	ParallelDetection = core.ParallelDetection
	// ColumnarDetection runs the sequential columnar-snapshot scan with
	// dictionary-code group keys; the report is identical to
	// NativeDetection's.
	ColumnarDetection = core.ColumnarDetection
)

// NewTracker starts incremental detection over a table.
func NewTracker(tab *Table, cfds []*CFD) (*Tracker, error) {
	return detect.NewTracker(tab, cfds)
}

// Static analysis.
type (
	// ConsistencyReport is the satisfiability verdict for a CFD set.
	ConsistencyReport = consistency.Report
	// Domains declares finite attribute domains for the analysis.
	Domains = consistency.Domains
)

// CheckConsistency decides satisfiability of a CFD set over a schema.
func CheckConsistency(sc *Schema, cfds []*CFD, domains Domains) (*ConsistencyReport, error) {
	return consistency.Check(sc, cfds, domains)
}

// Audit, exploration, repair, monitoring, discovery.
type (
	// QualityReport is the audit result: verified/probably/arguably clean
	// classification, per-attribute bars, violation pie and statistics.
	QualityReport = audit.Report
	// Explorer answers the Fig. 2 drill-down and Fig. 3 quality map.
	Explorer = explore.Explorer
	// RepairResult is a candidate repair with its modifications.
	RepairResult = repair.Result
	// Modification is one repaired cell with ranked alternatives.
	Modification = repair.Modification
	// Monitor watches updates and keeps quality from degrading.
	Monitor = monitor.Monitor
	// MonitorUpdate is one element of a monitored update batch.
	MonitorUpdate = monitor.Update
	// DiscoveryOptions tunes CFD mining from reference data (the options
	// struct behind the deprecated System.DiscoverCFDs; new callers pass
	// WithMinSupport / WithMaxLHS / WithMinConfidence / WithMaxPatterns to
	// System.Discover).
	DiscoveryOptions = discovery.Options
	// DiscoveryReport is the result of System.Discover: the mined CFD set
	// plus every candidate's support and confidence, stamped with the
	// snapshot version the rules were mined from.
	DiscoveryReport = discovery.Report
	// DiscoveryCandidate is one mined pattern with its evidence.
	DiscoveryCandidate = discovery.Candidate
	// GeneratorConfig configures the synthetic customer-data generator.
	GeneratorConfig = datagen.Config
	// Dataset is a generated clean/dirty pair with ground truth.
	Dataset = datagen.Dataset
)

// Monitor update kinds.
const (
	OpInsert = monitor.OpInsert
	OpDelete = monitor.OpDelete
	OpSet    = monitor.OpSet
)

// Mutation-path sentinel errors. The session's write API
// (System.Insert/Delete/SetCell/ApplyUpdates) routes writes through a
// table's active monitor when one exists; while a monitor is being
// (re)started the write path refuses with ErrMonitorBusy instead of racing
// the tracker handover, and ApplyUpdates without a monitor returns
// ErrNoMonitor.
var (
	ErrMonitorBusy = core.ErrMonitorBusy
	ErrNoMonitor   = core.ErrNoMonitor
)

// GenerateCustomers builds the synthetic customer workload used by the
// examples and benches (deterministic; optional injected noise).
func GenerateCustomers(cfg GeneratorConfig) *Dataset { return datagen.Generate(cfg) }

// StandardCFDs returns the paper's running-example constraint set for the
// generated customer schema.
func StandardCFDs() []*CFD { return datagen.StandardCFDs() }

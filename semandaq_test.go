package semandaq_test

import (
	"context"
	"strings"
	"testing"

	"semandaq"
)

// TestPublicAPIQuickstart exercises the README's quickstart through the
// public package surface only.
func TestPublicAPIQuickstart(t *testing.T) {
	sys := semandaq.New()
	csv := `NAME,CNT,CITY,ZIP,STR,CC,AC
Mike,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Rick,UK,Edinburgh,EH2 4SD,Crichton,44,131
Joe,US,New York,01202,Mtn Ave,44,908
`
	if _, err := sys.LoadCSV("customer", strings.NewReader(csv)); err != nil {
		t.Fatal(err)
	}
	cfds, err := sys.RegisterCFDText("customer", `
customer: [CNT=UK, ZIP=_] -> [STR=_]
customer: [CC=44] -> [CNT=UK]
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfds) != 2 {
		t.Fatalf("cfds = %d", len(cfds))
	}
	rep, err := sys.Detect(context.Background(), "customer", semandaq.WithEngine(semandaq.SQLDetection))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Vio) != 3 {
		t.Errorf("dirty = %v", rep.Vio)
	}
	audit, err := sys.Audit(context.Background(), "customer")
	if err != nil {
		t.Fatal(err)
	}
	if audit.DirtyTuples == 0 {
		t.Error("audit saw no dirt")
	}
	res, err := sys.Repair(context.Background(), "customer")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("repair did not converge")
	}
}

func TestPublicConstructors(t *testing.T) {
	if semandaq.String("x").Str() != "x" {
		t.Error("String")
	}
	if semandaq.Int(3).Int() != 3 {
		t.Error("Int")
	}
	if semandaq.Float(1.5).Float() != 1.5 {
		t.Error("Float")
	}
	if !semandaq.Bool(true).Bool() {
		t.Error("Bool")
	}
	if !semandaq.Null.IsNull() {
		t.Error("Null")
	}
	if !semandaq.Wild.Wildcard {
		t.Error("Wild")
	}
	if semandaq.Constant(semandaq.Int(44)).Wildcard {
		t.Error("Constant")
	}
	c, err := semandaq.ParseCFD("customer: [CC=44] -> [CNT=UK]")
	if err != nil || c.Table != "customer" {
		t.Errorf("ParseCFD: %v %v", c, err)
	}
	fd := semandaq.NewFD("f", "r", []string{"A"}, []string{"B"})
	if fd.HasVariablePattern() != true {
		t.Error("NewFD")
	}
	sc := semandaq.NewSchema("r", "A", "B")
	rep, err := semandaq.CheckConsistency(sc, []*semandaq.CFD{fd}, nil)
	if err != nil || !rep.Satisfiable {
		t.Errorf("CheckConsistency: %v %v", rep, err)
	}
}

func TestPublicGeneratorAndTracker(t *testing.T) {
	ds := semandaq.GenerateCustomers(semandaq.GeneratorConfig{Tuples: 300, Seed: 1, NoiseRate: 0.05})
	if ds.Clean.Len() != 300 || ds.Dirty.Len() != 300 {
		t.Fatal("generator size")
	}
	tr, err := semandaq.NewTracker(ds.Dirty, semandaq.StandardCFDs())
	if err != nil {
		t.Fatal(err)
	}
	if tr.DirtyCount() == 0 {
		t.Error("tracker saw no dirt on noisy data")
	}
}

// Discovery and monitoring: the "living database" scenario. CFDs are not
// written by hand but mined from trusted reference data (the paper's
// "automatically discovered from reference data"); the discovered set is
// registered (passing the satisfiability gate) and a data monitor then
// keeps a stream of incoming updates clean via incremental detection and
// incremental repair.
//
//	go run ./examples/discovery_monitor
package main

import (
	"context"
	"fmt"
	"log"

	"semandaq"
)

func main() {
	ctx := context.Background()
	// Trusted reference data: a clean sample of last quarter's customers.
	ref := semandaq.GenerateCustomers(semandaq.GeneratorConfig{Tuples: 3000, Seed: 8})

	sys := semandaq.New()
	sys.RegisterTable(ref.Clean)

	// Mine CFDs from the reference data: a snapshot-pinned lattice search,
	// so the report says exactly which table version the rules reflect.
	rep, err := sys.Discover(ctx, "customer",
		semandaq.WithMinSupport(100), semandaq.WithMaxLHS(2))
	if err != nil {
		log.Fatal(err)
	}
	cfds := rep.CFDs
	fmt.Printf("discovered %d CFDs (%d candidate patterns) from %d reference tuples at version %d; a sample:\n",
		len(cfds), len(rep.Candidates), rep.Tuples, rep.Version)
	for i, c := range cfds {
		if i >= 6 {
			fmt.Printf("  ... and %d more\n", len(cfds)-6)
			break
		}
		fmt.Printf("  %s\n", c)
	}

	// Register them (the constraint engine re-checks satisfiability).
	if err := sys.RegisterCFDs("customer", cfds); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndiscovered set registered: satisfiable")

	// The reference data itself is clean under the mined rules.
	det, err := sys.Detect(ctx, "customer", semandaq.WithEngine(semandaq.NativeDetection))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference data: %d violations (must be 0)\n\n", det.TotalViolations())

	// Start the monitor in cleansed mode and feed it dirty updates: new
	// records arriving from an unreliable upstream system.
	mon, err := sys.Monitor(ctx, "customer", semandaq.WithCleansed(true))
	if err != nil {
		log.Fatal(err)
	}
	incoming := semandaq.GenerateCustomers(semandaq.GeneratorConfig{
		Tuples: 200, Seed: 99, NoiseRate: 0.3,
	})
	rows := incoming.Dirty.Snapshot().Rows()

	totalRepairs := 0
	for start := 0; start < len(rows); start += 50 {
		end := start + 50
		if end > len(rows) {
			end = len(rows)
		}
		var batch []semandaq.MonitorUpdate
		for _, row := range rows[start:end] {
			batch = append(batch, semandaq.MonitorUpdate{Op: semandaq.OpInsert, Row: row})
		}
		res, err := mon.Apply(batch)
		if err != nil {
			log.Fatal(err)
		}
		totalRepairs += len(res.Repairs)
		fmt.Printf("batch %2d..%3d: %2d incremental repairs, dirty after = %d\n",
			start, end, len(res.Repairs), res.Dirty)
	}
	fmt.Printf("\nstream done: %d updates, %d incremental repairs, final dirty count = %d\n",
		len(rows), totalRepairs, mon.DirtyCount())

	// Show a couple of the monitor's fixes.
	tab, err := sys.Table("customer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table now holds %d tuples and satisfies all %d discovered CFDs\n",
		tab.Len(), len(cfds))
}

// Web API: Semandaq as a service, the paper's multi-tier deployment. This
// example embeds the HTTP data-quality server, then drives it as a client
// would: upload a CSV, register CFDs, detect, audit, repair and review —
// all over JSON/HTTP.
//
//	go run ./examples/webapi
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"semandaq"
	"semandaq/internal/server"
)

const customers = `NAME,CNT,CITY,ZIP,STR,CC,AC
Mike,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Rick,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Nora,UK,Edinburgh,EH2 4SD,Mayfeild,44,131
Joe,US,New York,01202,Mtn Ave,44,908
Ben,US,Chicago,60601,Wacker,1,312
`

func main() {
	// Embed the server (a real deployment runs cmd/semandaq-server).
	ts := httptest.NewServer(server.New(semandaq.New()).Handler())
	defer ts.Close()
	fmt.Println("data quality server at", ts.URL)

	post := func(path, body string) map[string]any { return call("POST", ts.URL+path, body) }
	get := func(path string) map[string]any { return call("GET", ts.URL+path, "") }

	// Upload the relation.
	out := post("/api/tables/customer", customers)
	fmt.Printf("loaded table %v with %v tuples\n", out["table"], out["tuples"])

	// Register CFDs; the server runs the satisfiability check.
	rules, _ := json.Marshal(map[string]string{"text": `
customer: [CNT=UK, ZIP=_] -> [STR=_]
customer: [CC=44] -> [CNT=UK]`})
	out = post("/api/cfds/customer", string(rules))
	fmt.Printf("registered CFDs: %v\n", out["registered"])

	// Detect with the SQL technique.
	out = post("/api/detect/customer", "")
	fmt.Printf("detection: dirty=%v violations=%v\n", out["dirty"], out["violations"])

	// The sharded multi-core detector returns the identical report.
	out = post("/api/detect/customer?engine=parallel&workers=4", "")
	fmt.Printf("parallel detection: dirty=%v violations=%v\n", out["dirty"], out["violations"])

	// Peek at the generated SQL.
	out = get("/api/detect/customer/sql")
	fmt.Println("first generated query:")
	fmt.Println(out["sql"].([]any)[0])

	// Quality report.
	out = get("/api/audit/customer")
	fmt.Printf("\naudit: verified=%v probably=%v arguably=%v dirty=%v\n",
		out["verifiedClean"], out["probablyClean"], out["arguablyClean"], out["dirty"])

	// Drill-down, as the data explorer UI would.
	out = get("/api/explore/customer/lhs?cfd=phi1&pattern=0")
	fmt.Printf("explore phi1 groups: %v\n", out["groups"])

	// Repair: compute candidate, inspect, apply.
	out = post("/api/repair/customer", "")
	fmt.Printf("\nrepair candidate: converged=%v modifications=%d\n",
		out["converged"], len(out["modifications"].([]any)))
	for _, m := range out["modifications"].([]any) {
		mm := m.(map[string]any)
		fmt.Printf("  tuple %v %v: %v -> %v (%v)\n",
			mm["tuple"], mm["attr"], mm["old"], mm["new"], mm["cfd"])
	}
	out = post("/api/repair/customer/apply", "")
	fmt.Printf("applied %v modifications\n", out["applied"])

	// Confirm clean. The blocking payload now reports durationMs too.
	out = post("/api/detect/customer", "")
	fmt.Printf("after repair: dirty=%v (%.2fms)\n", out["dirty"], out["durationMs"])

	// Streaming detection: ?stream=1 returns NDJSON, one violation per
	// line as the sharded columnar scan finds it — what `curl -N` would
	// show. The table is clean now, so only the terminal done line
	// arrives; on a dirty table violations stream before the scan ends.
	resp, err := http.Get(ts.URL + "/api/detect/customer?stream=1")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("\nstreaming detection (NDJSON):")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fmt.Println("  ", sc.Text())
	}
}

func call(method, url, body string) map[string]any {
	req, err := http.NewRequest(method, url, bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s %s: %d: %v", method, url, resp.StatusCode, out)
	}
	return out
}

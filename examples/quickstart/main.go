// Quickstart: the smallest end-to-end Semandaq session, on the paper's own
// running example. It loads a handful of customer records, registers the
// paper's CFDs φ2 and φ4, detects both kinds of violations, prints the
// quality report and repairs the data.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"semandaq"
)

const customers = `NAME,CNT,CITY,ZIP,STR,CC,AC
Mike,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Rick,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Nora,UK,Edinburgh,EH2 4SD,Mayfeild,44,131
Joe,US,New York,01202,Mtn Ave,44,908
Ben,US,Chicago,60601,Wacker,1,312
`

const rules = `
# phi2: within the UK, the zip code determines the street.
customer: [CNT=UK, ZIP=_] -> [STR=_]
# phi4: country code 44 means the country is the UK.
customer: [CC=44] -> [CNT=UK]
`

func main() {
	ctx := context.Background()
	sys := semandaq.New()

	if _, err := sys.LoadCSV("customer", strings.NewReader(customers)); err != nil {
		log.Fatal(err)
	}
	// Registration runs the constraint engine's satisfiability check.
	cfds, err := sys.RegisterCFDText("customer", rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %d CFDs:\n", len(cfds))
	for _, c := range cfds {
		fmt.Println(" ", c)
	}

	// Detection via the paper's SQL technique.
	rep, err := sys.Detect(ctx, "customer", semandaq.WithEngine(semandaq.SQLDetection))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetected %d violation records; vio(t) per dirty tuple:\n", rep.TotalViolations())
	for _, id := range rep.DirtyTuples() {
		fmt.Printf("  tuple %d: vio=%d\n", id, rep.Vio[id])
	}

	// The Fig. 4 quality report.
	audit, err := sys.Audit(ctx, "customer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(audit.Render())

	// Cost-based repair; the candidate is reviewed (printed) then applied.
	res, err := sys.Repair(ctx, "customer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncandidate repair (%d modifications, cost %.2f):\n", len(res.Modifications), res.Cost)
	for _, m := range res.Modifications {
		fmt.Printf("  tuple %d %s: %v -> %v   (%s)\n", m.TupleID, m.Attr, m.Old, m.New, m.CFDID)
	}
	if _, _, err := sys.ApplyRepair("customer", res.Modifications); err != nil {
		log.Fatal(err)
	}
	rep, err = sys.Detect(ctx, "customer", semandaq.WithEngine(semandaq.SQLDetection))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter repair: %d violations\n", rep.TotalViolations())
}

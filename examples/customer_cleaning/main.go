// Customer cleaning: the full Semandaq pipeline on a realistic workload —
// 10,000 synthetic customer records with 5% injected errors (the shape of
// the companion papers' evaluations). It walks the whole demo:
//
//  1. consistency check of the CFD set (constraint engine);
//  2. SQL-based violation detection, printing the generated SQL;
//  3. the data quality report (audit) and quality map;
//  4. interactive-style exploration of the worst CFD;
//  5. cost-based repair, scored against the known ground truth.
//
// go run ./examples/customer_cleaning
package main

import (
	"context"
	"fmt"
	"log"

	"semandaq"
)

func main() {
	ctx := context.Background()
	// Generate the workload: clean world + seeded corruption with ground
	// truth remembered for scoring.
	ds := semandaq.GenerateCustomers(semandaq.GeneratorConfig{
		Tuples: 10000, Seed: 42, NoiseRate: 0.05,
	})
	fmt.Printf("generated %d customers, %d corrupted cells\n",
		ds.Dirty.Len(), len(ds.Corruptions))

	sys := semandaq.New()
	sys.RegisterTable(ds.Dirty)
	if err := sys.RegisterCFDs("customer", semandaq.StandardCFDs()); err != nil {
		log.Fatal(err)
	}

	// 1. Static analysis.
	cons, err := sys.CheckConsistency("customer", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constraint engine: CFD set satisfiable = %v\n\n", cons.Satisfiable)

	// 2. Detection — show the SQL the error detector generates, then run it.
	stmts, err := sys.DetectionSQL("customer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated detection SQL (one Qc/Qv pair per merged CFD):")
	for _, q := range stmts {
		fmt.Println(q + ";")
	}
	rep, err := sys.Detect(ctx, "customer", semandaq.WithEngine(semandaq.SQLDetection))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndetected: %d dirty tuples, %d violation records, max vio(t)=%d\n",
		len(rep.Vio), rep.TotalViolations(), rep.MaxVio())

	// 3. Audit.
	audit, err := sys.Audit(ctx, "customer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(audit.Render())

	// 4. Exploration: drill into the CFD with the most violations.
	ex, err := sys.Explore(ctx, "customer")
	if err != nil {
		log.Fatal(err)
	}
	infos := ex.CFDs()
	worst := infos[0]
	for _, info := range infos {
		if info.Violations > worst.Violations {
			worst = info
		}
	}
	fmt.Printf("\nexploring %s (%s), %d violating tuples:\n", worst.ID, worst.FD, worst.Violations)
	pats, err := ex.Patterns(worst.ID)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pats {
		fmt.Printf("  pattern %s: %d matches, %d violations\n", p.Pattern, p.Matches, p.Violations)
	}
	groups, err := ex.LHSGroups(worst.ID, 0)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for _, g := range groups {
		if g.Violations == 0 {
			continue
		}
		fmt.Printf("  LHS %v: %d tuples, %d distinct RHS values, %d violations\n",
			g.Values, g.Tuples, g.RHSValues, g.Violations)
		if shown++; shown >= 3 {
			break
		}
	}

	// 5. Repair, then score against ground truth.
	res, err := sys.Repair(ctx, "customer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepair: %d modifications in %d passes, cost %.1f, converged=%v\n",
		len(res.Modifications), res.Passes, res.Cost, res.Converged)
	score := ds.ScoreRepairCells(res.Repaired, res.ModifiedCells())
	fmt.Printf("vs ground truth: precision=%.3f recall=%.3f F1=%.3f\n",
		score.Precision(), score.Recall(), score.F1())

	if _, _, err := sys.ApplyRepair("customer", res.Modifications); err != nil {
		log.Fatal(err)
	}
	rep, err = sys.Detect(ctx, "customer", semandaq.WithEngine(semandaq.NativeDetection))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after applying the repair: %d violations remain\n", rep.TotalViolations())
}

package fdset

import (
	"reflect"
	"testing"
)

func TestClosureTransitivity(t *testing.T) {
	s := New(5)
	s.Add([]int{0}, 1)
	s.Add([]int{1}, 2)
	s.Add([]int{2, 3}, 4)
	if got := s.ClosureOf([]int{0}); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("closure(0) = %v", got)
	}
	if got := s.ClosureOf([]int{0, 3}); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("closure(0,3) = %v", got)
	}
	if !s.Implies([]int{0, 3}, 4) {
		t.Fatal("0,3 -> 4 should be implied (transitivity)")
	}
	if s.Implies([]int{3}, 4) {
		t.Fatal("3 -> 4 must not be implied")
	}
	if !s.Implies([]int{4}, 4) {
		t.Fatal("trivial implication must hold")
	}
}

func TestEquivalentSets(t *testing.T) {
	s := New(4)
	s.Add([]int{0}, 1)
	s.Add([]int{1}, 0)
	if !s.Equivalent([]int{0, 2}, []int{1, 2}) {
		t.Fatal("{0,2} and {1,2} determine each other")
	}
	if s.Equivalent([]int{0}, []int{2}) {
		t.Fatal("{0} and {2} are not equivalent")
	}
}

func TestAddDropsTrivialAndDuplicate(t *testing.T) {
	s := New(3)
	s.Add([]int{0, 1}, 1) // trivial
	if s.Len() != 0 {
		t.Fatalf("trivial FD stored: %v", s.FDs())
	}
	s.Add([]int{0}, 1)
	s.Add([]int{0}, 1) // duplicate
	if s.Len() != 1 {
		t.Fatalf("duplicate FD stored: %v", s.FDs())
	}
}

func TestDerivationWitness(t *testing.T) {
	s := New(6)
	s.Add([]int{0}, 1)
	s.Add([]int{1}, 2)
	s.Add([]int{3}, 4) // irrelevant to the target
	w, ok := s.Derivation([]int{0, 3}, 2)
	if !ok {
		t.Fatal("0,3 -> 2 should be derivable")
	}
	var strs []string
	for _, f := range w {
		strs = append(strs, f.String())
	}
	if !reflect.DeepEqual(strs, []string{"{0}->1", "{1}->2"}) {
		t.Fatalf("witness = %v, want the 0->1->2 chain only", strs)
	}
	if _, ok := s.Derivation([]int{3}, 2); ok {
		t.Fatal("3 -> 2 must not be derivable")
	}
	if w, ok := s.Derivation([]int{2, 5}, 2); !ok || len(w) != 0 {
		t.Fatalf("trivial derivation should be empty, got %v ok=%v", w, ok)
	}
}

func TestCoverRemovesRedundancy(t *testing.T) {
	s := New(4)
	s.Add([]int{0}, 1)
	s.Add([]int{1}, 2)
	s.Add([]int{0}, 2)    // transitively redundant
	s.Add([]int{0, 3}, 1) // extraneous attribute 3
	c := s.Cover()
	if c.Len() != 2 {
		t.Fatalf("cover = %s (len %d), want 2 FDs", c, c.Len())
	}
	if got := c.String(); got != "{0}->1 {1}->2" {
		t.Fatalf("cover = %q", got)
	}
	// The cover still implies everything the input did.
	for _, f := range s.FDs() {
		if !c.ImpliesBits(f.Lhs, f.Rhs) {
			t.Fatalf("cover lost %s", f)
		}
	}
}

func TestRenderNames(t *testing.T) {
	s := New(3)
	s.Add([]int{0, 2}, 1)
	got := s.FDs()[0].Render([]string{"CC", "CT", "AC"})
	if got != "[CC,AC]->[CT]" {
		t.Fatalf("Render = %q", got)
	}
}

func TestWideArity(t *testing.T) {
	s := New(130) // multi-word bitsets
	s.Add([]int{129}, 0)
	s.Add([]int{0}, 64)
	if !s.Implies([]int{129}, 64) {
		t.Fatal("129 -> 64 via 0 should hold across words")
	}
	b := BitsOf(130, []int{1, 64, 129})
	if b.Count() != 3 || !b.Has(129) || b.Has(128) {
		t.Fatalf("bitset bookkeeping broken: %v", b.Positions())
	}
}

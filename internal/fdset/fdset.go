// Package fdset reasons over sets of exact functional dependencies as
// algebraic facts: attribute-set closure under Armstrong's axioms, FD
// implication, attribute-set equivalence, minimal covers, and derivation
// witnesses. Attributes are integer positions (schema/snapshot column
// indices), so the same Set built from a discovery report serves the
// lattice miner (prune partition intersections a mined FD proves
// redundant), the sqleng planner (collapse joins along functionally
// determined keys) and the factorised violation reports.
//
// Only *exact* dependencies belong in a Set: approximate (g3 < 1) FDs do
// not compose under transitivity, so callers must filter to confidence
// 1.0 before Add. Everything here is pure computation over bitsets — no
// locks, no I/O; a Set is safe for concurrent readers once built.
package fdset

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Bits is an attribute-position bitset. The word count is fixed by the
// arity it was created for; all operands of a binary operation must come
// from the same arity.
type Bits []uint64

// NewBits returns an empty bitset able to hold positions [0, arity).
func NewBits(arity int) Bits {
	return make(Bits, (arity+63)/64)
}

// BitsOf builds a bitset holding exactly the given positions.
func BitsOf(arity int, xs []int) Bits {
	b := NewBits(arity)
	for _, x := range xs {
		b.Set(x)
	}
	return b
}

// Set adds position x.
func (b Bits) Set(x int) { b[x/64] |= 1 << (x % 64) }

// Has reports whether position x is present.
func (b Bits) Has(x int) bool { return b[x/64]&(1<<(x%64)) != 0 }

// Clear removes position x.
func (b Bits) Clear(x int) { b[x/64] &^= 1 << (x % 64) }

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	out := make(Bits, len(b))
	copy(out, b)
	return out
}

// Or folds other into b in place.
func (b Bits) Or(other Bits) {
	for i := range b {
		b[i] |= other[i]
	}
}

// ContainsAll reports whether every position of sub is in b.
func (b Bits) ContainsAll(sub Bits) bool {
	for i := range b {
		if sub[i]&^b[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports position-wise equality.
func (b Bits) Equal(other Bits) bool {
	for i := range b {
		if b[i] != other[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set positions.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Positions lists the set positions in ascending order.
func (b Bits) Positions() []int {
	var out []int
	for i, w := range b {
		for w != 0 {
			out = append(out, i*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// FD is one exact dependency Lhs → Rhs with a single RHS position.
type FD struct {
	Lhs Bits
	Rhs int
}

// String renders the FD over positions, e.g. "{0,2}->3".
func (f FD) String() string {
	ps := f.Lhs.Positions()
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprint(p)
	}
	return "{" + strings.Join(parts, ",") + "}->" + fmt.Sprint(f.Rhs)
}

// Render names the FD with the given attribute names, e.g. "[CC,AC]->[CT]".
func (f FD) Render(names []string) string {
	ps := f.Lhs.Positions()
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = names[p]
	}
	return "[" + strings.Join(parts, ",") + "]->[" + names[f.Rhs] + "]"
}

// Set is a collection of exact FDs over one relation's positions.
// Construction (Add) is not safe for concurrent use; a built Set is.
type Set struct {
	arity int
	fds   []FD
}

// New returns an empty Set over a relation of the given arity.
func New(arity int) *Set {
	return &Set{arity: arity}
}

// Arity returns the relation arity the Set was built for.
func (s *Set) Arity() int { return s.arity }

// Len returns the number of stored FDs.
func (s *Set) Len() int { return len(s.fds) }

// FDs returns the stored FDs in insertion order. The slice is shared;
// callers must not mutate it.
func (s *Set) FDs() []FD { return s.fds }

// Add records lhs → rhs. Trivial dependencies (rhs ∈ lhs) and exact
// duplicates are dropped; out-of-range positions panic (they indicate a
// schema mismatch, never a data condition).
func (s *Set) Add(lhs []int, rhs int) {
	if rhs < 0 || rhs >= s.arity {
		panic(fmt.Sprintf("fdset: rhs %d out of range [0,%d)", rhs, s.arity))
	}
	b := NewBits(s.arity)
	for _, x := range lhs {
		if x < 0 || x >= s.arity {
			panic(fmt.Sprintf("fdset: lhs %d out of range [0,%d)", x, s.arity))
		}
		b.Set(x)
	}
	if b.Has(rhs) {
		return
	}
	for _, f := range s.fds {
		if f.Rhs == rhs && f.Lhs.Equal(b) {
			return
		}
	}
	s.fds = append(s.fds, FD{Lhs: b, Rhs: rhs})
}

// Closure returns the attribute closure of xs under the Set: the fixpoint
// of firing every FD whose LHS is contained. xs is not modified.
func (s *Set) Closure(xs Bits) Bits {
	out := xs.Clone()
	for changed := true; changed; {
		changed = false
		for _, f := range s.fds {
			if !out.Has(f.Rhs) && out.ContainsAll(f.Lhs) {
				out.Set(f.Rhs)
				changed = true
			}
		}
	}
	return out
}

// ClosureOf is Closure over a position slice, returning sorted positions.
func (s *Set) ClosureOf(xs []int) []int {
	return s.Closure(BitsOf(s.arity, xs)).Positions()
}

// ImpliesBits reports whether the Set entails xs → rhs.
func (s *Set) ImpliesBits(xs Bits, rhs int) bool {
	if xs.Has(rhs) {
		return true
	}
	return s.Closure(xs).Has(rhs)
}

// Implies reports whether the Set entails lhs → rhs.
func (s *Set) Implies(lhs []int, rhs int) bool {
	return s.ImpliesBits(BitsOf(s.arity, lhs), rhs)
}

// Equivalent reports whether attribute sets a and b determine each other
// (equal closures), i.e. they are interchangeable as join/grouping keys.
func (s *Set) Equivalent(a, b []int) bool {
	ca := s.Closure(BitsOf(s.arity, a))
	cb := s.Closure(BitsOf(s.arity, b))
	return ca.Equal(cb)
}

// Derivation returns the FDs that witness lhs → rhs, in firing order,
// pruned to the ones actually on the derivation path. ok is false when
// the Set does not entail the dependency. A trivial dependency (rhs ∈
// lhs) yields an empty witness with ok true.
func (s *Set) Derivation(lhs []int, rhs int) (witness []FD, ok bool) {
	have := BitsOf(s.arity, lhs)
	if have.Has(rhs) {
		return nil, true
	}
	var fired []FD
	for changed := true; changed && !have.Has(rhs); {
		changed = false
		for _, f := range s.fds {
			if !have.Has(f.Rhs) && have.ContainsAll(f.Lhs) {
				have.Set(f.Rhs)
				fired = append(fired, f)
				changed = true
				if f.Rhs == rhs {
					break
				}
			}
		}
	}
	if !have.Has(rhs) {
		return nil, false
	}
	// Backward prune: keep only firings whose RHS is needed, seeding from
	// the target and growing needs with each kept FD's LHS.
	needed := NewBits(s.arity)
	needed.Set(rhs)
	base := BitsOf(s.arity, lhs)
	keep := make([]bool, len(fired))
	for i := len(fired) - 1; i >= 0; i-- {
		f := fired[i]
		if needed.Has(f.Rhs) && !base.Has(f.Rhs) {
			keep[i] = true
			needed.Clear(f.Rhs) // earlier firings need not re-derive it
			needed.Or(f.Lhs)
		}
	}
	for i, k := range keep {
		if k {
			witness = append(witness, fired[i])
		}
	}
	return witness, true
}

// Cover returns a minimal cover of the Set: every FD's LHS reduced (no
// extraneous attributes) and every redundant FD removed, deterministic
// in the input order. The receiver is unchanged.
func (s *Set) Cover() *Set {
	// Reduce each LHS against the full set.
	reduced := make([]FD, 0, len(s.fds))
	for _, f := range s.fds {
		lhs := f.Lhs.Clone()
		for _, x := range f.Lhs.Positions() {
			if lhs.Count() == 1 {
				break
			}
			trial := lhs.Clone()
			trial.Clear(x)
			if s.ImpliesBits(trial, f.Rhs) {
				lhs = trial
			}
		}
		reduced = append(reduced, FD{Lhs: lhs, Rhs: f.Rhs})
	}
	// Drop FDs the remainder still implies.
	cover := &Set{arity: s.arity}
	alive := make([]bool, len(reduced))
	for i := range alive {
		alive[i] = true
	}
	for i, f := range reduced {
		alive[i] = false
		rest := &Set{arity: s.arity}
		for j, g := range reduced {
			if alive[j] {
				rest.fds = append(rest.fds, g)
			}
		}
		if !rest.ImpliesBits(f.Lhs, f.Rhs) {
			alive[i] = true
		}
	}
	for i, f := range reduced {
		if alive[i] {
			// Deduplicate: LHS reduction can converge distinct inputs.
			dup := false
			for _, g := range cover.fds {
				if g.Rhs == f.Rhs && g.Lhs.Equal(f.Lhs) {
					dup = true
					break
				}
			}
			if !dup {
				cover.fds = append(cover.fds, f)
			}
		}
	}
	return cover
}

// String renders the Set sorted by (RHS, LHS positions) for stable
// display in tests and EXPLAIN output.
func (s *Set) String() string {
	strs := make([]string, len(s.fds))
	for i, f := range s.fds {
		strs[i] = f.String()
	}
	sort.Strings(strs)
	return strings.Join(strs, " ")
}

// Position list indexes (PLIs, a.k.a. stripped partitions): the equivalence
// classes a column's Equal-classes induce over a snapshot's rows, in the
// representation the TANE/CTANE family of dependency miners searches over.
// Two rows are in one class iff their values are Equal under the
// types.Value model — exactly the classes detection groups by — so a
// functional dependency X → A holds on the snapshot iff every class of the
// partition π_X is pure in A, and a CFD miner can refine partitions by
// intersection instead of rebuilding string-keyed group maps per attribute
// set.
//
// Like the dictionaries and key tables, single-attribute PLIs and the
// per-row Equal-class probe vectors are built lazily and cached on the
// snapshot's columns: every miner pass over one table version shares one
// build, and the cache dies with the snapshot when the table mutates.
// Derived (intersected) partitions belong to the miner's lattice walk and
// are not cached here.
package relstore

import (
	"sort"

	"semandaq/internal/types"
)

// Partition is the partition of a snapshot's rows into value-equality
// classes, stored flat: class c spans elems[offsets[c]:offsets[c+1]], each
// class holding ascending row indices. Single-attribute partitions keep
// every class (constant-CFD mining needs low-support and singleton covers);
// Intersect strips singleton classes from its result, which is lossless for
// dependency checking — a lone row can neither violate an FD nor lower its
// confidence.
//
// A Partition is immutable after construction and safe for concurrent use.
type Partition struct {
	n       int // rows in the underlying snapshot
	elems   []int32
	offsets []int32 // len = NumClasses()+1
}

// NumRows returns the number of rows in the snapshot the partition covers.
func (p *Partition) NumRows() int { return p.n }

// NumClasses returns the number of equivalence classes stored.
func (p *Partition) NumClasses() int { return len(p.offsets) - 1 }

// Size returns the number of rows held in stored classes (for stripped
// partitions this is less than NumRows).
func (p *Partition) Size() int { return len(p.elems) }

// Class returns class c's ascending row indices. The slice is backing
// storage: callers must not mutate it.
func (p *Partition) Class(c int) []int32 {
	return p.elems[p.offsets[c]:p.offsets[c+1]]
}

// Refines reports whether every stored class is pure under probe: all rows
// of a class share one probe code. This is the partition form of the FD
// check — with probe = EqProbe(a), Refines is exactly "X → a holds",
// because rows outside stored classes are alone in their X-class and
// cannot disagree with anyone. every reports how often to poll stop; a
// true stop() aborts the scan and returns false, true.
func (p *Partition) Refines(probe []uint32, every int, stop func() bool) (pure, aborted bool) {
	seen := 0
	for c := 0; c < p.NumClasses(); c++ {
		cls := p.Class(c)
		if len(cls) < 2 {
			continue
		}
		want := probe[cls[0]]
		for _, r := range cls[1:] {
			if probe[r] != want {
				return false, false
			}
		}
		if seen += len(cls); seen >= every {
			seen = 0
			if stop != nil && stop() {
				return false, true
			}
		}
	}
	return true, false
}

// Keep returns how many of the snapshot's rows survive if, within every
// class, only the plurality probe-code group is kept — the g3 measure of
// an approximate FD: confidence(X → a) = Keep(EqProbe(a)) / NumRows.
// Rows outside stored classes are trivially kept.
func (p *Partition) Keep(probe []uint32) int {
	kept := p.n - len(p.elems) // rows in stripped-away singleton classes
	counts := make(map[uint32]int32, 16)
	for c := 0; c < p.NumClasses(); c++ {
		cls := p.Class(c)
		if len(cls) == 1 {
			kept++
			continue
		}
		clear(counts)
		best := int32(0)
		for _, r := range cls {
			v := counts[probe[r]] + 1
			counts[probe[r]] = v
			if v > best {
				best = v
			}
		}
		kept += int(best)
	}
	return kept
}

// Intersect refines the partition by a probe vector: rows of one class that
// disagree on their probe code land in separate classes of the result.
// Singleton result classes are stripped. With probe = EqProbe(b) the result
// is the stripped partition π_{X ∪ {b}} given p = π_X — the refinement
// step a level-wise lattice search descends by.
func (p *Partition) Intersect(probe []uint32) *Partition {
	out := &Partition{
		n:       p.n,
		elems:   make([]int32, 0, len(p.elems)),
		offsets: make([]int32, 0, p.NumClasses()+1),
	}
	out.offsets = append(out.offsets, 0)
	// Per-class grouping by probe code. Classes are usually split into few
	// subgroups, so a small reused map beats a snapshot-wide scratch table.
	groups := make(map[uint32][]int32)
	for c := 0; c < p.NumClasses(); c++ {
		cls := p.Class(c)
		if len(cls) < 2 {
			continue
		}
		clear(groups)
		order := make([]uint32, 0, 4)
		for _, r := range cls {
			pv := probe[r]
			g, ok := groups[pv]
			if !ok {
				order = append(order, pv)
			}
			groups[pv] = append(g, r)
		}
		for _, pv := range order {
			g := groups[pv]
			if len(g) < 2 {
				continue
			}
			out.elems = append(out.elems, g...)
			out.offsets = append(out.offsets, int32(len(out.elems)))
		}
	}
	return out
}

// PLI returns the column's position list index over the snapshot: one class
// per Equal-class that occurs, in first-occurrence order, singletons
// included. Built on first use and cached for the snapshot's lifetime.
func (c *Column) PLI() *Partition {
	c.pliOnce.Do(func() {
		probe := c.EqProbe()
		counts := make([]int32, len(c.dict))
		for _, pv := range probe {
			counts[pv]++
		}
		// Class slots in first-occurrence order of the Equal-class code.
		classOf := make([]int32, len(c.dict))
		for i := range classOf {
			classOf[i] = -1
		}
		p := &Partition{n: len(probe)}
		var nc int32
		starts := make([]int32, 0, len(c.dict))
		for _, pv := range probe {
			if classOf[pv] < 0 {
				classOf[pv] = nc
				nc++
				starts = append(starts, counts[pv])
			}
		}
		p.offsets = make([]int32, nc+1)
		for i, sz := range starts {
			p.offsets[i+1] = p.offsets[i] + sz
		}
		fill := append([]int32(nil), p.offsets[:nc]...)
		p.elems = make([]int32, len(probe))
		for r, pv := range probe {
			cl := classOf[pv]
			p.elems[fill[cl]] = int32(r)
			fill[cl]++
		}
		c.pli = p
		c.pliClassCode = make([]uint32, nc)
		for code, cl := range classOf {
			if cl >= 0 {
				c.pliClassCode[cl] = uint32(code)
			}
		}
		c.pliClassOf = classOf
		c.pliReady.Store(true)
		buildOps.pliBuilds.Add(1)
	})
	return c.pli
}

// PLIClassValue returns the representative value of PLI class cl (the
// Equal-class canonical dictionary entry).
func (c *Column) PLIClassValue(cl int) types.Value { return c.dict[c.pliClassCode[cl]] }

// PLIClassesByKey returns the PLI's class indices ordered by the
// representative value's Key() — the canonical enumeration order miners use
// so their output is deterministic. Sorted on first use and cached for the
// snapshot's lifetime (the sort compares key strings, which is worth
// paying once, not per mining pass); callers must not mutate the slice.
func (c *Column) PLIClassesByKey() []int {
	c.orderOnce.Do(func() {
		p := c.PLI()
		c.EnsureKeys()
		order := make([]int, p.NumClasses())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			return c.keys[c.pliClassCode[order[i]]] < c.keys[c.pliClassCode[order[j]]]
		})
		c.classOrder = order
		c.orderReady.Store(true)
	})
	return c.classOrder
}

// ClassRows returns the ascending row indices of the PLI class holding the
// Equal-class code eq, nil when no stored row belongs to that class. This
// is the lookup side of a PLI-class join: EqCodeOf resolves a probe value
// to its Equal-class code and ClassRows returns the matching rows straight
// from the cached partition — no per-row hashing, no materialization. The
// slice is backing storage: callers must not mutate it.
func (c *Column) ClassRows(eq uint32) []int32 {
	c.PLI()
	if int(eq) >= len(c.pliClassOf) {
		return nil
	}
	cl := c.pliClassOf[eq]
	if cl < 0 {
		return nil
	}
	return c.pli.Class(int(cl))
}

// EqProbe returns the per-row Equal-class code vector (probe[i] =
// EqCode(i), materialized): the lookup side of partition intersection and
// purity checks. Built on first use and cached for the snapshot's lifetime.
// The slice is backing storage: callers must not mutate it.
func (c *Column) EqProbe() []uint32 {
	c.probeOnce.Do(func() {
		probe := make([]uint32, len(c.codes))
		for i, code := range c.codes {
			probe[i] = c.eq[code]
		}
		c.probe = probe
		c.probeReady.Store(true)
	})
	return c.probe
}

package relstore

import (
	"fmt"
	"sync"
	"testing"

	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestSetCellCopyOnWrite pins the COW contract directly: a row handed out
// by Scan (or pinned in a Snapshot) never changes, even while SetCell keeps
// rewriting the same cell.
func TestSetCellCopyOnWrite(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	id := tab.MustInsert(Tuple{types.NewString("a0"), types.NewString("b0")})

	var pinned Tuple
	tab.Scan(func(_ TupleID, row Tuple) bool {
		pinned = row // the scan hands out the stored row; COW keeps it frozen
		return true
	})
	for i := 1; i <= 10; i++ {
		if _, err := tab.SetCell(id, 1, types.NewString(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := pinned[1].Str(); got != "b0" {
		t.Fatalf("scanned row mutated in place: B = %q, want b0", got)
	}
	if row, _ := tab.Get(id); row[1].Str() != "b10" {
		t.Fatalf("table cell = %q, want b10", row[1].Str())
	}
}

// TestScanVsSetCellRace is the regression for the original data race:
// Scan callbacks reading rows while SetCell mutates them concurrently.
// Run under -race (the CI race job does), this fails loudly if SetCell
// ever writes a shared Tuple in place.
func TestScanVsSetCellRace(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	const rows = 64
	ids := make([]TupleID, rows)
	for i := range ids {
		ids[i] = tab.MustInsert(Tuple{
			types.NewString(fmt.Sprintf("a%d", i)),
			types.NewInt(0),
		})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := tab.SetCell(ids[(w*17+i)%rows], 1, types.NewInt(int64(i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 50; r++ {
		tab.Scan(func(_ TupleID, row Tuple) bool {
			// Read both cells; -race flags any in-place writer.
			_ = row[0].Str()
			_ = row[1].Int()
			return true
		})
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotPinsVersion checks that a Snapshot is a stable view of one
// version while the table moves on, and that the columnar view built from
// it shares version, ids and row order.
func TestSnapshotPinsVersion(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	for i := 0; i < 5; i++ {
		tab.MustInsert(Tuple{types.NewString(fmt.Sprintf("a%d", i)), types.NewInt(int64(i))})
	}
	snap := tab.Snapshot()
	v0 := snap.Version()
	if v0 != tab.Version() {
		t.Fatalf("snapshot version %d, table %d", v0, tab.Version())
	}
	if again := tab.Snapshot(); again != snap {
		t.Error("unchanged table should reuse the cached snapshot")
	}

	// Mutate the table in every way.
	tab.MustInsert(Tuple{types.NewString("new"), types.NewInt(99)})
	tab.SetCell(0, 1, types.NewInt(-1))
	tab.Delete(1)

	if snap.Version() != v0 || snap.Len() != 5 {
		t.Fatalf("snapshot moved: version %d len %d", snap.Version(), snap.Len())
	}
	if row, ok := snap.Get(0); !ok || row[1].Int() != 0 {
		t.Fatalf("snapshot Get(0) = %v, want original row", row)
	}
	if row, ok := snap.Get(1); !ok || row[0].Str() != "a1" {
		t.Fatalf("snapshot Get(1) = %v, %v; deleted rows must stay visible", row, ok)
	}
	if _, ok := snap.Get(5); ok {
		t.Error("snapshot must not see the later insert")
	}

	// The columnar face shares the pin.
	col := snap.Columnar()
	if col.Version() != v0 || col.Len() != 5 {
		t.Fatalf("columnar version %d len %d", col.Version(), col.Len())
	}
	if &col.IDs()[0] != &snap.IDs()[0] {
		t.Error("columnar must share the snapshot's id slice")
	}
	for i := 0; i < snap.Len(); i++ {
		if !col.Row(i).Equal(snap.Row(i)) {
			t.Fatalf("row %d: columnar %v != snapshot %v", i, col.Row(i), snap.Row(i))
		}
	}
	// Table-level Columnar() is the same object for the current version.
	fresh := tab.Snapshot()
	if tab.Columnar() != fresh.Columnar() {
		t.Error("Table.Columnar must be the snapshot's columnar view")
	}
}

// TestSnapshotConcurrentReaders hammers one snapshot from many goroutines
// while writers churn the table; under -race this verifies the whole read
// surface is immutable.
func TestSnapshotConcurrentReaders(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	for i := 0; i < 200; i++ {
		tab.MustInsert(Tuple{types.NewString(fmt.Sprintf("a%d", i%7)), types.NewInt(int64(i))})
	}
	snap := tab.Snapshot()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tab.MustInsert(Tuple{types.NewString("w"), types.NewInt(int64(i))})
				tab.SetCell(TupleID(i%200), 1, types.NewInt(int64(-i)))
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := int64(0)
			snap.Scan(func(_ TupleID, row Tuple) bool {
				sum += row[1].Int()
				return true
			})
			if sum != 199*200/2 {
				t.Errorf("snapshot scan saw churn: sum = %d", sum)
			}
			col := snap.Columnar()
			if col.Len() != 200 {
				t.Errorf("columnar len = %d", col.Len())
			}
		}()
	}
	wg.Wait()
}

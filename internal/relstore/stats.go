// Exact per-attribute statistics: the snapshot's columnar artifacts carry
// precise cardinalities for free — dictionary sizes (distinct stored
// values) and PLI class counts (distinct Equal-classes) — so a query
// planner ordering joins over one snapshot never has to estimate anything.
// Unlike histogram-based optimizers these numbers are exact by
// construction: the dictionary is the set of distinct values and the PLI
// is the value-equality partition itself.
package relstore

// ColCardinality returns the exact number of distinct stored values
// (dictionary cardinality, NULL included as one entry) of the snapshot's
// j-th attribute. Building the columnar view on first use, the count is
// O(1) afterwards and shared by every reader of this version.
func (s *Snapshot) ColCardinality(j int) int {
	return s.Columnar().Col(j).Card()
}

// ColClassCount returns the exact number of Equal-classes of the
// snapshot's j-th attribute — the class count of its PLI, collapsing
// cross-kind Equal values (INT 1 and FLOAT 1.0) into one class. The PLI is
// built lazily and cached on the snapshot, so the first call pays the
// partition build that a PLI-class join would pay anyway.
func (s *Snapshot) ColClassCount(j int) int {
	return s.Columnar().Col(j).PLI().NumClasses()
}

package relstore

import (
	"testing"

	"semandaq/internal/schema"
)

// FuzzSnapshotPatch decodes an arbitrary byte string into a mutation
// sequence over a seeded three-column table and asserts, after every single
// mutation, that the served (patched) snapshot is byte-identical to a cold
// batch rebuild — dictionaries, code vectors, occurrence bookkeeping, PLIs,
// probe vectors, key tables and class orders included. The per-version
// check force-builds every artifact, so each next version patches a fully
// warm predecessor.
//
// Byte vocabulary: each op reads an opcode byte (low two bits select
// insert/delete/setcell/update) and then value/row/column selector bytes
// from the stream; missing bytes read as zero. The value domain is
// patchValues (patch_test.go), which packs the Equal-vs-exact corner cases
// (INT 1 / FLOAT 1.0, NULL, NaN) into eleven values.
func FuzzSnapshotPatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	// insert a few rows, edit cells, delete, update
	f.Add([]byte{0, 3, 4, 5, 0, 0, 1, 2, 2, 0, 1, 7, 1, 0, 3, 1, 8, 9, 10})
	// hammer one row with representation flips (INT 1 <-> FLOAT 1.0)
	f.Add([]byte{0, 3, 3, 3, 2, 0, 0, 4, 2, 0, 0, 3, 2, 0, 1, 4, 3, 0, 4, 4, 4})
	// interleave inserts and deletes so positions shift under the patcher
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 1, 0, 0, 5, 6, 7, 1, 1, 0, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		runMutationSequence(t, data)
	})
}

// runMutationSequence is the shared driver behind FuzzSnapshotPatch and
// TestSnapshotPatchSeeds.
func runMutationSequence(t *testing.T, data []byte) {
	tab := NewTable(schema.New("f", "A", "B", "C"))
	for i := 0; i < 6; i++ {
		tab.MustInsert(Tuple{patchValue(i), patchValue(i + 1), patchValue(i + 2)})
	}
	pos := 0
	next := func() int {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return int(b)
	}
	row := func() Tuple {
		return Tuple{patchValue(next()), patchValue(next()), patchValue(next())}
	}
	check := func() {
		if err := DiffSnapshots(tab.Snapshot(), tab.RebuildSnapshot()); err != nil {
			t.Fatalf("version %d after %d input bytes: %v", tab.Version(), pos, err)
		}
	}
	check()
	for pos < len(data) {
		op := next()
		ids := tab.IDs()
		switch {
		case op%4 == 0 || len(ids) == 0:
			tab.MustInsert(row())
		case op%4 == 1:
			tab.Delete(ids[next()%len(ids)])
		case op%4 == 2:
			if _, err := tab.SetCell(ids[next()%len(ids)], next()%3, patchValue(next())); err != nil {
				t.Fatal(err)
			}
		default:
			if err := tab.Update(ids[next()%len(ids)], row()); err != nil {
				t.Fatal(err)
			}
		}
		check()
	}
}

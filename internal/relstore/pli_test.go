package relstore

import (
	"fmt"
	"testing"

	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func pliTable(t *testing.T, attrs []string, rows [][]string) *Table {
	t.Helper()
	tab := NewTable(schema.New("r", attrs...))
	for _, r := range rows {
		row := make(Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	return tab
}

// classSets renders a partition as a set of row-index lists for comparison.
func classSets(p *Partition) map[string]bool {
	out := map[string]bool{}
	for c := 0; c < p.NumClasses(); c++ {
		out[fmt.Sprint(p.Class(c))] = true
	}
	return out
}

func TestPLISingleAttribute(t *testing.T) {
	tab := pliTable(t, []string{"A", "B"}, [][]string{
		{"x", "1"}, {"y", "2"}, {"x", "3"}, {"z", "4"}, {"y", "5"},
	})
	col := tab.Columnar().Col(0)
	p := col.PLI()
	if p.NumRows() != 5 || p.NumClasses() != 3 {
		t.Fatalf("rows=%d classes=%d", p.NumRows(), p.NumClasses())
	}
	want := map[string]bool{"[0 2]": true, "[1 4]": true, "[3]": true}
	if got := classSets(p); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("classes = %v, want %v", got, want)
	}
	// The cache returns the same partition per snapshot.
	if tab.Columnar().Col(0).PLI() != p {
		t.Error("PLI not cached on the snapshot")
	}
}

func TestPLIEqualClassesCollapseNumericKinds(t *testing.T) {
	// INT 1 and FLOAT 1.0 are Equal and must land in one class; NULLs form
	// their own class.
	tab := pliTable(t, []string{"A"}, [][]string{
		{"1"}, {"1.0"}, {""}, {""}, {"2"},
	})
	p := tab.Columnar().Col(0).PLI()
	if p.NumClasses() != 3 {
		t.Fatalf("classes = %d, want 3 (1/1.0 merged, NULLs merged, 2)", p.NumClasses())
	}
	want := map[string]bool{"[0 1]": true, "[2 3]": true, "[4]": true}
	if got := classSets(p); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("classes = %v, want %v", got, want)
	}
}

func TestPartitionRefinesIsFDCheck(t *testing.T) {
	// ZIP -> CITY holds; CITY -> ZIP does not.
	tab := pliTable(t, []string{"ZIP", "CITY"}, [][]string{
		{"z1", "Edi"}, {"z1", "Edi"}, {"z2", "Edi"}, {"z2", "Edi"}, {"z3", "Lon"},
	})
	col := tab.Columnar()
	zip, city := col.Col(0), col.Col(1)
	if pure, _ := zip.PLI().Refines(city.EqProbe(), 1<<20, nil); !pure {
		t.Error("ZIP -> CITY should hold")
	}
	if pure, _ := city.PLI().Refines(zip.EqProbe(), 1<<20, nil); pure {
		t.Error("CITY -> ZIP should not hold")
	}
	// Refines aborts when stop fires.
	if _, aborted := zip.PLI().Refines(city.EqProbe(), 1, func() bool { return true }); !aborted {
		t.Error("Refines ignored stop")
	}
}

func TestPartitionIntersectStripsSingletons(t *testing.T) {
	// π_A has classes {0,1,2,3} and {4}; refining by B splits the big class
	// into {0,1} and {2,3}; the singleton class is stripped.
	tab := pliTable(t, []string{"A", "B"}, [][]string{
		{"x", "p"}, {"x", "p"}, {"x", "q"}, {"x", "q"}, {"y", "r"},
	})
	col := tab.Columnar()
	p := col.Col(0).PLI().Intersect(col.Col(1).EqProbe())
	if p.NumClasses() != 2 || p.Size() != 4 {
		t.Fatalf("classes=%d size=%d", p.NumClasses(), p.Size())
	}
	want := map[string]bool{"[0 1]": true, "[2 3]": true}
	if got := classSets(p); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("classes = %v, want %v", got, want)
	}
	if p.NumRows() != 5 {
		t.Errorf("NumRows = %d, want 5 (snapshot size survives stripping)", p.NumRows())
	}
}

func TestPartitionKeepConfidence(t *testing.T) {
	// A -> B almost holds: in the x-class (4 rows) the plurality B value
	// covers 3 rows; the y-row is a kept singleton. Keep = 4.
	tab := pliTable(t, []string{"A", "B"}, [][]string{
		{"x", "p"}, {"x", "p"}, {"x", "p"}, {"x", "q"}, {"y", "r"},
	})
	col := tab.Columnar()
	keep := col.Col(0).PLI().Keep(col.Col(1).EqProbe())
	if keep != 4 {
		t.Errorf("Keep = %d, want 4", keep)
	}
}

// Degenerate-shape coverage: empty partitions, all-singleton columns and
// single-class columns are exactly the inputs the incremental split/merge
// path produces when a delta empties, shatters or collapses classes.

func TestPLIEmptyTable(t *testing.T) {
	tab := pliTable(t, []string{"A", "B"}, nil)
	col := tab.Columnar()
	p := col.Col(0).PLI()
	if p.NumRows() != 0 || p.NumClasses() != 0 || p.Size() != 0 {
		t.Fatalf("empty PLI: rows=%d classes=%d size=%d", p.NumRows(), p.NumClasses(), p.Size())
	}
	probe := col.Col(1).EqProbe()
	if pure, aborted := p.Refines(probe, 1, nil); !pure || aborted {
		t.Errorf("Refines on empty = %v,%v, want true,false (vacuously pure)", pure, aborted)
	}
	if keep := p.Keep(probe); keep != 0 {
		t.Errorf("Keep on empty = %d, want 0", keep)
	}
	q := p.Intersect(probe)
	if q.NumRows() != 0 || q.NumClasses() != 0 {
		t.Errorf("Intersect on empty: rows=%d classes=%d", q.NumRows(), q.NumClasses())
	}
}

func TestPLIAllSingletonColumn(t *testing.T) {
	// Every value distinct: n singleton classes. No FD can be violated
	// from such an LHS, every row is kept, and intersection strips
	// everything.
	tab := pliTable(t, []string{"A", "B"}, [][]string{
		{"a", "p"}, {"b", "p"}, {"c", "q"}, {"d", "q"},
	})
	col := tab.Columnar()
	p := col.Col(0).PLI()
	if p.NumClasses() != 4 || p.Size() != 4 {
		t.Fatalf("classes=%d size=%d, want 4/4", p.NumClasses(), p.Size())
	}
	probe := col.Col(1).EqProbe()
	if pure, _ := p.Refines(probe, 1, nil); !pure {
		t.Error("all-singleton LHS must satisfy any FD")
	}
	if keep := p.Keep(probe); keep != 4 {
		t.Errorf("Keep = %d, want 4", keep)
	}
	q := p.Intersect(probe)
	if q.NumClasses() != 0 || q.Size() != 0 {
		t.Errorf("Intersect left classes=%d size=%d, want stripped empty", q.NumClasses(), q.Size())
	}
	if q.NumRows() != 4 {
		t.Errorf("Intersect NumRows = %d, want 4", q.NumRows())
	}
	// Intersecting the already-empty result again is stable.
	r := q.Intersect(probe)
	if r.NumClasses() != 0 || r.NumRows() != 4 {
		t.Errorf("re-Intersect: classes=%d rows=%d", r.NumClasses(), r.NumRows())
	}
}

func TestPLISingleClassColumn(t *testing.T) {
	// One value everywhere: a single class holding all rows. The FD check
	// degenerates to "is the RHS constant", Keep to the RHS plurality, and
	// intersection to the RHS partition.
	tab := pliTable(t, []string{"A", "B"}, [][]string{
		{"x", "p"}, {"x", "p"}, {"x", "q"}, {"x", "p"},
	})
	col := tab.Columnar()
	p := col.Col(0).PLI()
	if p.NumClasses() != 1 || p.Size() != 4 {
		t.Fatalf("classes=%d size=%d, want 1/4", p.NumClasses(), p.Size())
	}
	probe := col.Col(1).EqProbe()
	if pure, _ := p.Refines(probe, 1, nil); pure {
		t.Error("A -> B must fail: B is not constant")
	}
	if keep := p.Keep(probe); keep != 3 {
		t.Errorf("Keep = %d, want 3 (plurality p)", keep)
	}
	q := p.Intersect(probe)
	if q.NumClasses() != 1 {
		t.Fatalf("Intersect classes = %d, want 1 ({0,1,3}; the q-row is a stripped singleton)", q.NumClasses())
	}
	if fmt.Sprint(q.Class(0)) != "[0 1 3]" {
		t.Errorf("Intersect class = %v, want [0 1 3]", q.Class(0))
	}
	// Refining a single-class partition by itself keeps it intact.
	self := p.Intersect(col.Col(0).EqProbe())
	if self.NumClasses() != 1 || self.Size() != 4 {
		t.Errorf("self-Intersect: classes=%d size=%d, want 1/4", self.NumClasses(), self.Size())
	}
}

func TestPLIClassesByKeyDeterministicOrder(t *testing.T) {
	tab := pliTable(t, []string{"A"}, [][]string{
		{"zz"}, {"aa"}, {"mm"}, {"aa"},
	})
	col := tab.Columnar().Col(0)
	order := col.PLIClassesByKey()
	var got []string
	for _, cl := range order {
		got = append(got, col.PLIClassValue(cl).String())
	}
	if fmt.Sprint(got) != "[aa mm zz]" {
		t.Errorf("order = %v", got)
	}
}

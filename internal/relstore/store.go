// Package relstore implements the in-memory relational store that stands in
// for the RDBMS at the bottom of the Semandaq architecture (Fig. 1 of the
// paper). It provides tables with stable tuple IDs, insert/delete/update,
// hash indexes on attribute lists, full scans, CSV import/export and
// copy-on-read snapshots.
//
// Tuple identity matters throughout Semandaq: the error detector attributes
// violation counts vio(t) to tuples, the repair algorithm edits cells
// (tuple ID, attribute), and the monitor tracks deltas. IDs are assigned
// once at insert time and never reused.
package relstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TupleID identifies a tuple within a table for its whole life.
type TupleID int64

// Tuple is one row: a value per schema attribute.
type Tuple []types.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports component-wise equality.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if !t[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

// KeyOn returns the grouping key of the tuple projected on positions. Each
// component is length-prefixed (types.Value.WriteGroupKey) so a value whose
// Key() contains the byte used as a separator cannot alias distinct
// projections into one key.
func (t Tuple) KeyOn(pos []int) string {
	var b strings.Builder
	for _, p := range pos {
		t[p].WriteGroupKey(&b)
	}
	return b.String()
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Table is a mutable relation instance. All methods are safe for concurrent
// use by multiple goroutines. Stored rows are copy-on-write: no mutation
// ever changes a Tuple in place once it has been stored, so read snapshots
// (Snapshot, Columnar) stay stable while writers proceed.
type Table struct {
	mu      sync.RWMutex
	schema  *schema.Relation
	rows    map[TupleID]Tuple
	order   []TupleID // insertion order, compacted lazily
	deleted int       // count of tombstones in order
	nextID  TupleID
	indexes map[string]*Index
	version int64 // bumped on every mutation; lets caches invalidate
	// snap caches the pinned read view built by Snapshot() for the current
	// version; mutations drop it so the memory is reclaimable immediately.
	snap *Snapshot
	// prev retains the last materialized snapshot across mutations, and
	// npending counts the ops applied since it was taken, so the next
	// Snapshot() call can derive the new view (and, transitively, its
	// columnar dictionaries and PLIs) by patching prev instead of an O(n)
	// batch rebuild (patch.go). prev is dropped once the delta grows past
	// patch-worthiness or a new snapshot supersedes it.
	prev     *Snapshot
	npending int
	// chlog is a bounded, version-ascending log of (version, column)
	// change records backing ChangesSince; chfloor is the newest version
	// whose records may have been evicted, i.e. queries reach back to it
	// but no further.
	chlog   []chRec
	chfloor int64
}

// NewTable creates an empty table with the given schema.
func NewTable(s *schema.Relation) *Table {
	return &Table{
		schema:  s,
		rows:    make(map[TupleID]Tuple),
		indexes: make(map[string]*Index),
	}
}

// Schema returns the table schema.
func (t *Table) Schema() *schema.Relation { return t.schema }

// Len returns the number of live tuples.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Version returns a counter that changes with every mutation.
func (t *Table) Version() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version
}

// Insert appends a tuple and returns its new ID. The tuple is copied.
func (t *Table) Insert(row Tuple) (TupleID, error) {
	if len(row) != t.schema.Arity() {
		return 0, fmt.Errorf("relstore: insert into %s: got %d values, want %d",
			t.schema.Name, len(row), t.schema.Arity())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.nextID
	t.nextID++
	r := row.Clone()
	t.rows[id] = r
	t.order = append(t.order, id)
	t.noteMutationLocked(structuralChange)
	for _, ix := range t.indexes {
		ix.add(id, r)
	}
	return id, nil
}

// MustInsert inserts and panics on arity mismatch; for tests and generators
// that construct rows from the schema itself.
func (t *Table) MustInsert(row Tuple) TupleID {
	id, err := t.Insert(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Get returns a copy of the tuple with the given ID.
func (t *Table) Get(id TupleID) (Tuple, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	row, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return row.Clone(), true
}

// Delete removes the tuple with the given ID. It reports whether the tuple
// existed.
func (t *Table) Delete(id TupleID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[id]
	if !ok {
		return false
	}
	for _, ix := range t.indexes {
		ix.remove(id, row)
	}
	delete(t.rows, id)
	t.deleted++
	if t.deleted > len(t.rows) && t.deleted > 64 {
		t.compactLocked()
	}
	// The note is the last write of the critical section so the mutation —
	// including any compaction — is fully logged before the lock drops
	// (mutationlog enforces this ordering).
	t.noteMutationLocked(structuralChange)
	return true
}

// Update replaces the whole tuple with the given ID.
func (t *Table) Update(id TupleID, row Tuple) error {
	if len(row) != t.schema.Arity() {
		return fmt.Errorf("relstore: update %s: got %d values, want %d",
			t.schema.Name, len(row), t.schema.Arity())
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("relstore: update %s: no tuple %d", t.schema.Name, id)
	}
	for _, ix := range t.indexes {
		ix.remove(id, old)
	}
	r := row.Clone()
	t.rows[id] = r
	// Log the columns whose stored representation actually changed —
	// exactEqual, not Equal: replacing INT 1 with FLOAT 1.0 re-shapes the
	// columnar dictionary even though the values compare Equal.
	var cols []int32
	for j := range r {
		if !exactEqual(old[j], r[j]) {
			cols = append(cols, int32(j))
		}
	}
	t.noteMutationLocked(cols...)
	for _, ix := range t.indexes {
		ix.add(id, r)
	}
	return nil
}

// SetCell updates a single attribute of a tuple (a "cell", in repair-model
// terms) and returns the old value.
func (t *Table) SetCell(id TupleID, pos int, v types.Value) (types.Value, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[id]
	if !ok {
		return types.Null, fmt.Errorf("relstore: set cell in %s: no tuple %d", t.schema.Name, id)
	}
	if pos < 0 || pos >= len(row) {
		return types.Null, fmt.Errorf("relstore: set cell in %s: position %d out of range", t.schema.Name, pos)
	}
	old := row[pos]
	if old.Equal(v) {
		return old, nil
	}
	for _, ix := range t.indexes {
		ix.remove(id, row)
	}
	// Copy-on-write: the stored row may be shared by a pinned Snapshot (and
	// by any Scan callback running off one), so the cell update goes into a
	// fresh tuple and the map entry is swapped — the old row is never
	// touched.
	nrow := row.Clone()
	nrow[pos] = v
	t.rows[id] = nrow
	t.noteMutationLocked(int32(pos))
	for _, ix := range t.indexes {
		ix.add(id, nrow)
	}
	return old, nil
}

// compactLocked drops tombstones from the order slice. Caller holds mu and
// must call noteMutationLocked afterwards (Delete does): the compaction is
// representation-preserving — live ids keep their relative order and every
// row survives — but it rewrites t.order, and the version must advance
// before the lock drops so cached artifacts are never rebuilt against a
// silently reshaped order slice.
//
//semandaq:vet-ignore mutationlog the caller's epilogue logs the enclosing delete; see above
func (t *Table) compactLocked() {
	live := t.order[:0]
	for _, id := range t.order {
		if _, ok := t.rows[id]; ok {
			live = append(live, id)
		}
	}
	t.order = live
	t.deleted = 0
}

// Scan calls fn for every live tuple in insertion order. The whole scan
// observes one table version: it walks the pinned read view (Snapshot), so
// concurrent mutations neither tear the iteration nor change a row mid-
// callback. The rows are frozen (copy-on-write protected); the callback
// must not mutate them.
func (t *Table) Scan(fn func(id TupleID, row Tuple) bool) {
	t.Snapshot().Scan(fn)
}

// IDs returns the live tuple IDs in insertion order.
func (t *Table) IDs() []TupleID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make([]TupleID, 0, len(t.rows))
	for _, id := range t.order {
		if _, ok := t.rows[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// Rows returns copies of all live tuples in insertion order, paired with IDs.
func (t *Table) Rows() ([]TupleID, []Tuple) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make([]TupleID, 0, len(t.rows))
	rows := make([]Tuple, 0, len(t.rows))
	for _, id := range t.order {
		if row, ok := t.rows[id]; ok {
			ids = append(ids, id)
			rows = append(rows, row.Clone())
		}
	}
	return ids, rows
}

// Clone returns an independent mutable copy of the table (same schema
// object, fresh rows, IDs preserved). Indexes are not copied. For a cheap
// immutable read view, use Snapshot instead.
func (t *Table) Clone() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := NewTable(t.schema)
	c.nextID = t.nextID
	c.order = make([]TupleID, 0, len(t.rows))
	for _, id := range t.order {
		if row, ok := t.rows[id]; ok {
			c.rows[id] = row.Clone()
			c.order = append(c.order, id)
		}
	}
	return c
}

// EnsureIndex builds (or returns) a hash index on the named attributes.
func (t *Table) EnsureIndex(attrs ...string) (*Index, error) {
	pos, err := t.schema.Positions(attrs)
	if err != nil {
		return nil, err
	}
	key := indexKey(attrs)
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, ok := t.indexes[key]; ok {
		return ix, nil
	}
	ix := &Index{attrs: append([]string(nil), attrs...), pos: pos,
		buckets: make(map[string][]TupleID)}
	for id, row := range t.rows {
		ix.add(id, row)
	}
	t.indexes[key] = ix
	return ix, nil
}

// Index returns the existing index on attrs, if any.
func (t *Table) Index(attrs ...string) (*Index, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ix, ok := t.indexes[indexKey(attrs)]
	return ix, ok
}

func indexKey(attrs []string) string {
	low := make([]string, len(attrs))
	for i, a := range attrs {
		low[i] = strings.ToLower(a)
	}
	return strings.Join(low, "\x1f")
}

// Index is a hash index from projected attribute values to tuple IDs. The
// owning table maintains it under the table's write lock; Lookup and
// Buckets take the index's own read lock, so readers that hold only an
// *Index (no table reference) are still safe against concurrent mutation.
type Index struct {
	mu      sync.RWMutex
	attrs   []string
	pos     []int
	buckets map[string][]TupleID
}

// Attrs returns the indexed attribute names.
func (ix *Index) Attrs() []string { return append([]string(nil), ix.attrs...) }

func (ix *Index) add(id TupleID, row Tuple) {
	k := row.KeyOn(ix.pos)
	ix.mu.Lock()
	ix.buckets[k] = append(ix.buckets[k], id)
	ix.mu.Unlock()
}

func (ix *Index) remove(id TupleID, row Tuple) {
	k := row.KeyOn(ix.pos)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	b := ix.buckets[k]
	for i, v := range b {
		if v == id {
			b[i] = b[len(b)-1]
			b = b[:len(b)-1]
			break
		}
	}
	if len(b) == 0 {
		delete(ix.buckets, k)
	} else {
		ix.buckets[k] = b
	}
}

// Lookup returns the IDs of tuples whose projection equals vals. The result
// is a fresh slice in unspecified order.
func (ix *Index) Lookup(vals []types.Value) []TupleID {
	var b strings.Builder
	for _, v := range vals {
		v.WriteGroupKey(&b)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	src := ix.buckets[b.String()]
	out := make([]TupleID, len(src))
	copy(out, src)
	return out
}

// Buckets calls fn for every (key, ids) bucket. Used by group-based
// detection. The ids slice must not be mutated or retained, and fn must
// not call into the owning table at all — not even read methods: the index
// read lock is held for the whole iteration, and a table writer blocked on
// this index while fn blocks on the table lock is a deadlock. Resolve rows
// after Buckets returns (a Snapshot taken beforehand is the safe way).
func (ix *Index) Buckets(fn func(key string, ids []TupleID) bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for k, ids := range ix.buckets {
		if !fn(k, ids) {
			return
		}
	}
}

// Store is a named collection of tables — the "database" a Semandaq
// instance connects to.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Create adds a new empty table with the given schema. It fails if a table
// with the same (case-insensitive) name exists.
func (s *Store) Create(sc *schema.Relation) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(sc.Name)
	if _, ok := s.tables[key]; ok {
		return nil, fmt.Errorf("relstore: table %q already exists", sc.Name)
	}
	t := NewTable(sc)
	s.tables[key] = t
	return t, nil
}

// Put registers an existing table (replacing any table of the same name).
func (s *Store) Put(t *Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[strings.ToLower(t.schema.Name)] = t
}

// Table returns the named table.
func (s *Store) Table(name string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// Drop removes the named table; it reports whether it existed.
func (s *Store) Drop(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := s.tables[key]; !ok {
		return false
	}
	delete(s.tables, key)
	return true
}

// Names returns the sorted table names.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for _, t := range s.tables {
		names = append(names, t.schema.Name)
	}
	sort.Strings(names)
	return names
}

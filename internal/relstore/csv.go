package relstore

import (
	"encoding/csv"
	"fmt"
	"io"

	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// ReadCSV loads a table from CSV. The first record is the header and becomes
// the schema (all attributes untyped); field values are inferred with
// types.Parse. name becomes the table name.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relstore: read csv header: %w", err)
	}
	sc := schema.New(name, header...)
	t := NewTable(sc)
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relstore: read csv: %w", err)
		}
		line++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("relstore: csv line %d: %d fields, want %d", line, len(rec), len(header))
		}
		row := make(Tuple, len(rec))
		for i, f := range rec {
			row[i] = types.Parse(f)
		}
		if _, err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// WriteCSV writes the table (header + live rows in insertion order) as CSV.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().AttrNames()); err != nil {
		return fmt.Errorf("relstore: write csv header: %w", err)
	}
	var werr error
	t.Scan(func(id TupleID, row Tuple) bool {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = v.CoerceString()
		}
		if err := cw.Write(rec); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return fmt.Errorf("relstore: write csv: %w", werr)
	}
	cw.Flush()
	return cw.Error()
}

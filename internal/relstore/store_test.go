package relstore

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func strs(vals ...string) Tuple {
	t := make(Tuple, len(vals))
	for i, v := range vals {
		t[i] = types.NewString(v)
	}
	return t
}

func newCustomerTable() *Table {
	return NewTable(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
}

func TestInsertGetDelete(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	id, err := tab.Insert(strs("x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
	row, ok := tab.Get(id)
	if !ok || row[0].Str() != "x" || row[1].Str() != "y" {
		t.Fatalf("Get = %v,%v", row, ok)
	}
	if !tab.Delete(id) {
		t.Error("Delete returned false")
	}
	if tab.Delete(id) {
		t.Error("double Delete returned true")
	}
	if _, ok := tab.Get(id); ok {
		t.Error("Get after delete")
	}
	if tab.Len() != 0 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestInsertArityMismatch(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	if _, err := tab.Insert(strs("only-one")); err == nil {
		t.Error("expected arity error")
	}
	if err := tab.Update(0, strs("a")); err == nil {
		t.Error("expected update arity error")
	}
}

func TestInsertCopiesRow(t *testing.T) {
	tab := NewTable(schema.New("r", "A"))
	row := strs("orig")
	id := tab.MustInsert(row)
	row[0] = types.NewString("mutated")
	got, _ := tab.Get(id)
	if got[0].Str() != "orig" {
		t.Error("Insert should copy the row")
	}
}

func TestUpdateAndSetCell(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	id := tab.MustInsert(strs("a", "b"))
	if err := tab.Update(id, strs("c", "d")); err != nil {
		t.Fatal(err)
	}
	row, _ := tab.Get(id)
	if row[0].Str() != "c" {
		t.Errorf("after update row = %v", row)
	}
	old, err := tab.SetCell(id, 1, types.NewString("e"))
	if err != nil || old.Str() != "d" {
		t.Fatalf("SetCell old=%v err=%v", old, err)
	}
	row, _ = tab.Get(id)
	if row[1].Str() != "e" {
		t.Errorf("after SetCell row = %v", row)
	}
	if _, err := tab.SetCell(id, 9, types.Null); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := tab.SetCell(999, 0, types.Null); err == nil {
		t.Error("expected missing-tuple error")
	}
	if err := tab.Update(999, strs("x", "y")); err == nil {
		t.Error("expected missing-tuple update error")
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	tab := NewTable(schema.New("r", "A"))
	var want []TupleID
	for i := 0; i < 10; i++ {
		want = append(want, tab.MustInsert(strs(fmt.Sprintf("v%d", i))))
	}
	tab.Delete(want[3])
	var got []TupleID
	tab.Scan(func(id TupleID, row Tuple) bool {
		got = append(got, id)
		return true
	})
	if len(got) != 9 {
		t.Fatalf("scanned %d rows", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Error("scan should preserve insertion order")
		}
	}
	n := 0
	tab.Scan(func(id TupleID, row Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop scanned %d", n)
	}
}

func TestIDsAndRows(t *testing.T) {
	tab := NewTable(schema.New("r", "A"))
	a := tab.MustInsert(strs("1"))
	b := tab.MustInsert(strs("2"))
	tab.Delete(a)
	ids := tab.IDs()
	if len(ids) != 1 || ids[0] != b {
		t.Errorf("IDs = %v", ids)
	}
	ids2, rows := tab.Rows()
	if len(ids2) != 1 || rows[0][0].Str() != "2" {
		t.Errorf("Rows = %v %v", ids2, rows)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tab := NewTable(schema.New("r", "A"))
	id := tab.MustInsert(strs("before"))
	snap := tab.Snapshot()
	tab.SetCell(id, 0, types.NewString("after"))
	tab.MustInsert(strs("new"))
	row, ok := snap.Get(id)
	if !ok || row[0].Str() != "before" {
		t.Errorf("snapshot row = %v,%v", row, ok)
	}
	if snap.Len() != 1 {
		t.Errorf("snapshot len = %d", snap.Len())
	}
	// A mutable Clone is independent and keeps allocating fresh IDs.
	clone := tab.Clone()
	nid := clone.MustInsert(strs("clone-new"))
	if nid <= id {
		t.Errorf("clone insert ID %d should exceed %d", nid, id)
	}
	if tab.Len() != 2 {
		t.Errorf("clone insert leaked into source: len = %d", tab.Len())
	}
}

func TestIndexMaintenance(t *testing.T) {
	tab := newCustomerTable()
	ix, err := tab.EnsureIndex("CNT", "ZIP")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(cnt, zip string) Tuple {
		return strs("n", cnt, "city", zip, "str", "44", "131")
	}
	a := tab.MustInsert(mk("UK", "EH2"))
	b := tab.MustInsert(mk("UK", "EH2"))
	c := tab.MustInsert(mk("US", "07974"))
	key := []types.Value{types.NewString("UK"), types.NewString("EH2")}
	got := ix.Lookup(key)
	if len(got) != 2 {
		t.Fatalf("Lookup = %v", got)
	}
	// Update moves a tuple between buckets.
	pos := tab.Schema().MustPos("ZIP")
	tab.SetCell(b, pos, types.NewString("G1"))
	if got := ix.Lookup(key); len(got) != 1 || got[0] != a {
		t.Errorf("after move Lookup = %v", got)
	}
	// Delete removes from index.
	tab.Delete(c)
	usKey := []types.Value{types.NewString("US"), types.NewString("07974")}
	if got := ix.Lookup(usKey); len(got) != 0 {
		t.Errorf("after delete Lookup = %v", got)
	}
	// EnsureIndex twice returns the same index.
	ix2, _ := tab.EnsureIndex("cnt", "zip")
	if ix2 != ix {
		t.Error("EnsureIndex should be idempotent (case-insensitive)")
	}
	if _, ok := tab.Index("CNT", "ZIP"); !ok {
		t.Error("Index lookup failed")
	}
	if _, err := tab.EnsureIndex("NOPE"); err == nil {
		t.Error("expected unknown attribute error")
	}
}

func TestIndexBuiltOverExistingRows(t *testing.T) {
	tab := NewTable(schema.New("r", "A"))
	tab.MustInsert(strs("x"))
	tab.MustInsert(strs("x"))
	ix, err := tab.EnsureIndex("A")
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup([]types.Value{types.NewString("x")}); len(got) != 2 {
		t.Errorf("Lookup = %v", got)
	}
	n := 0
	ix.Buckets(func(key string, ids []TupleID) bool { n++; return true })
	if n != 1 {
		t.Errorf("buckets = %d", n)
	}
}

func TestCompaction(t *testing.T) {
	tab := NewTable(schema.New("r", "A"))
	var ids []TupleID
	for i := 0; i < 200; i++ {
		ids = append(ids, tab.MustInsert(strs("v")))
	}
	for _, id := range ids[:150] {
		tab.Delete(id)
	}
	if tab.Len() != 50 {
		t.Fatalf("Len = %d", tab.Len())
	}
	n := 0
	tab.Scan(func(id TupleID, row Tuple) bool { n++; return true })
	if n != 50 {
		t.Errorf("scan visited %d", n)
	}
}

func TestVersionBumps(t *testing.T) {
	tab := NewTable(schema.New("r", "A"))
	v0 := tab.Version()
	id := tab.MustInsert(strs("a"))
	v1 := tab.Version()
	tab.SetCell(id, 0, types.NewString("b"))
	v2 := tab.Version()
	tab.Delete(id)
	v3 := tab.Version()
	if !(v0 < v1 && v1 < v2 && v2 < v3) {
		t.Errorf("versions %d %d %d %d not strictly increasing", v0, v1, v2, v3)
	}
	// SetCell to same value is a no-op version-wise.
	id2 := tab.MustInsert(strs("same"))
	v4 := tab.Version()
	tab.SetCell(id2, 0, types.NewString("same"))
	if tab.Version() != v4 {
		t.Error("no-op SetCell should not bump version")
	}
}

func TestStoreCRUD(t *testing.T) {
	s := NewStore()
	tab, err := s.Create(schema.New("customer", "A"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create(schema.New("CUSTOMER", "B")); err == nil {
		t.Error("duplicate Create should fail (case-insensitive)")
	}
	got, ok := s.Table("Customer")
	if !ok || got != tab {
		t.Error("Table lookup failed")
	}
	s.Put(NewTable(schema.New("orders", "ID")))
	names := s.Names()
	if len(names) != 2 || names[0] != "customer" || names[1] != "orders" {
		t.Errorf("Names = %v", names)
	}
	if !s.Drop("ORDERS") {
		t.Error("Drop failed")
	}
	if s.Drop("orders") {
		t.Error("double Drop returned true")
	}
}

func TestConcurrentAccess(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	if _, err := tab.EnsureIndex("A"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := tab.MustInsert(strs(fmt.Sprintf("g%d", g), fmt.Sprintf("i%d", i)))
				if i%3 == 0 {
					tab.SetCell(id, 1, types.NewString("upd"))
				}
				if i%5 == 0 {
					tab.Delete(id)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			tab.Scan(func(id TupleID, row Tuple) bool { return true })
		}
	}()
	wg.Wait()
	want := 8 * 200 * 4 / 5 // one in five deleted
	if got := tab.Len(); got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
}

func TestTupleHelpers(t *testing.T) {
	a := strs("x", "y")
	b := a.Clone()
	b[0] = types.NewString("z")
	if a[0].Str() != "x" {
		t.Error("Clone should be independent")
	}
	if a.Equal(b) {
		t.Error("Equal should detect difference")
	}
	if !a.Equal(strs("x", "y")) {
		t.Error("Equal should match equal tuples")
	}
	if a.Equal(strs("x")) {
		t.Error("Equal should reject length mismatch")
	}
	if s := a.String(); s != "(x, y)" {
		t.Errorf("String = %q", s)
	}
}

func TestKeyOnProperty(t *testing.T) {
	// Two tuples have equal KeyOn(pos) iff projections are equal.
	f := func(a1, a2, b1, b2 string) bool {
		ta := strs(a1, a2)
		tb := strs(b1, b2)
		pos := []int{0, 1}
		return (ta.KeyOn(pos) == tb.KeyOn(pos)) == (a1 == b1 && a2 == b2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

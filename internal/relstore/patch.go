// Delta patching of version-cached read artifacts: when a table mutates a
// little and is then read, the new Snapshot — and, transitively, its
// columnar dictionaries, code vectors and per-column PLI partitions — is
// derived from the previous version's caches by applying the delta, instead
// of re-interning every cell of every column.
//
// The contract is byte-identity: a patched artifact must be
// indistinguishable (DeepEqual on every observable field, including
// occurrence bookkeeping and class order) from what the batch builders in
// snapshot.go / columnar.go / pli.go would produce for the same version.
// The patcher therefore only patches when it can prove identity cheaply and
// falls back — per column — to a rebuild otherwise:
//
//   - dictionary codes are assigned in first-occurrence order, so any
//     removal of a value's first occurrence, or an edit that would move a
//     first occurrence earlier, forces a column rebuild (the whole dict
//     numbering could shift);
//   - appended rows are interned normally at the tail, which is exactly
//     where the batch build would discover novel values, so appends always
//     patch;
//   - PLI classes are listed in first-occurrence order of the Equal-class
//     and the dictionary guards keep every class's first occurrence alive,
//     so class order survives patching and touched classes are edited by
//     member splicing.
//
// The oracle (oracle.go, the fuzz targets and the cross-check tests) holds
// the patcher to the contract: patched state is compared field-by-field
// against Table.RebuildSnapshot at every intermediate version.
package relstore

import (
	"maps"
	"sort"
	"sync"
	"sync/atomic"
)

const (
	// maxPatchOps caps how many logged cell/row ops a retained predecessor
	// snapshot may bridge before patching is abandoned: past that, the
	// batch rebuild is no slower and the op bookkeeping stops paying.
	maxPatchOps = 4096
	// maxChangeLog bounds the ChangesSince log; on overflow the oldest
	// half is evicted and the floor advances.
	maxChangeLog = 4096
)

// structuralChange marks a change-log record (and mutation note) that adds
// or removes a row, as opposed to editing one column's cell in place.
const structuralChange = int32(-1)

// chRec is one change-log record: at version ver, column col changed
// (structuralChange for a row insert/delete).
type chRec struct {
	ver int64
	col int32
}

// noteMutationLocked is the single mutation epilogue: it advances the
// version, drops the cached snapshot (retaining it as the patch base),
// counts the delta, and logs which columns changed. cols holds one entry
// per changed cell's schema position, or structuralChange per row added or
// removed; a representation-preserving mutation passes none (version still
// advances, nothing is logged — no cache content depends on it). Caller
// holds t.mu.
func (t *Table) noteMutationLocked(cols ...int32) {
	if t.snap != nil {
		t.prev = t.snap
		t.npending = 0
	}
	t.version++
	t.snap = nil
	if t.prev != nil {
		t.npending += len(cols)
		if t.npending > maxPatchOps {
			t.prev = nil
			t.npending = 0
		}
	}
	for _, col := range cols {
		t.chlog = append(t.chlog, chRec{ver: t.version, col: col})
	}
	if len(t.chlog) > maxChangeLog {
		half := len(t.chlog) / 2
		t.chfloor = t.chlog[half-1].ver
		t.chlog = append(t.chlog[:0], t.chlog[half:]...)
	}
}

// ChangesSince reports, for each schema position, whether any cell of that
// column has changed after version since, and whether the row set
// (membership and order) is unchanged. ok is false when the change log no
// longer covers the interval — the caller must then assume everything
// changed. Incremental discovery uses this to re-verify only lattice nodes
// whose attribute partitions could have moved.
func (t *Table) ChangesSince(since int64) (changed []bool, rowsStable bool, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if since > t.version || since < t.chfloor {
		return nil, false, false
	}
	changed = make([]bool, t.schema.Arity())
	rowsStable = true
	for i := len(t.chlog) - 1; i >= 0; i-- {
		rec := t.chlog[i]
		if rec.ver <= since {
			break
		}
		if rec.col == structuralChange {
			rowsStable = false
		} else {
			changed[rec.col] = true
		}
	}
	return changed, rowsStable, true
}

// snapPatch links a patched Snapshot to its predecessor plus the delta
// separating them, in the coordinates the columnar patcher consumes: drops
// are ascending predecessor row positions that were removed, nAppend rows
// were appended at the tail, edits[j] are the in-place cell changes of
// column j at surviving rows (ascending), and remap — present iff rows were
// dropped — maps every predecessor position to its final position, -1 for
// dropped rows.
type snapPatch struct {
	prev    *Snapshot
	drops   []int32
	nAppend int
	edits   [][]cellEdit
	remap   []int32
}

// cellEdit is one surviving row whose cell in some column changed its exact
// stored representation, addressed in both coordinate systems.
type cellEdit struct {
	prevPos int32 // row position in the predecessor snapshot
	newPos  int32 // row position in the patched snapshot
}

// sameRow reports whether two stored tuples are the same allocation.
// Stored rows are copy-on-write — a mutation always swaps in a fresh clone
// — so pointer identity is exactly "this row was not touched".
func sameRow(a, b Tuple) bool {
	if len(a) == 0 {
		return true
	}
	return &a[0] == &b[0]
}

// patchSnapshotLocked derives the current version's snapshot from t.prev by
// diffing the retained view against the live rows: O(prev rows) pointer
// comparisons and copies — the same row-vector cost a batch build pays —
// plus a recorded delta that lets the expensive artifacts (dictionaries,
// PLIs) be patched in O(delta) later. Returns nil if the diff violates the
// append-only id assumptions (the caller then batch-builds). Caller holds
// t.mu for writing.
func (t *Table) patchSnapshotLocked() *Snapshot {
	prev := t.prev
	arity := t.schema.Arity()
	n := len(t.rows)
	snap := &Snapshot{
		schema:  t.schema,
		version: t.version,
		ids:     make([]TupleID, 0, n),
		rows:    make([]Tuple, 0, n),
	}
	p := &snapPatch{prev: prev, edits: make([][]cellEdit, arity)}
	for i, id := range prev.ids {
		cur, live := t.rows[id]
		if !live {
			p.drops = append(p.drops, int32(i))
			continue
		}
		if old := prev.rows[i]; !sameRow(old, cur) {
			newPos := int32(len(snap.ids))
			for j := 0; j < arity; j++ {
				if !exactEqual(old[j], cur[j]) {
					p.edits[j] = append(p.edits[j], cellEdit{prevPos: int32(i), newPos: newPos})
				}
			}
		}
		snap.ids = append(snap.ids, id)
		snap.rows = append(snap.rows, cur)
	}
	// Appended rows: ids above the predecessor's range. IDs are assigned
	// monotonically and t.order only ever appends (compaction preserves
	// order), so the tail of t.order past the predecessor's last id is
	// exactly the insertions, in insertion order.
	floor := TupleID(-1)
	if len(prev.ids) > 0 {
		floor = prev.ids[len(prev.ids)-1]
	}
	start := sort.Search(len(t.order), func(i int) bool { return t.order[i] > floor })
	for _, id := range t.order[start:] {
		if cur, ok := t.rows[id]; ok {
			snap.ids = append(snap.ids, id)
			snap.rows = append(snap.rows, cur)
			p.nAppend++
		}
	}
	if len(snap.ids) != n {
		return nil
	}
	if len(p.drops) > 0 {
		remap := make([]int32, len(prev.ids))
		d := 0
		for i := range remap {
			if d < len(p.drops) && p.drops[d] == int32(i) {
				remap[i] = -1
				d++
			} else {
				remap[i] = int32(i - d)
			}
		}
		p.remap = remap
	}
	// Sever the predecessor's own patch link: at most one link is ever
	// live, so superseded snapshots (and their retained predecessors)
	// become collectable as soon as readers let go.
	prev.patch.Store(nil)
	snap.patch.Store(p)
	buildOps.patchedSnapshots.Add(1)
	return snap
}

// patchedColumnar derives the columnar view from the predecessor's by
// patching each column independently (same fan-out as the batch build).
func (s *Snapshot) patchedColumnar(p *snapPatch, pc *Columnar) *Columnar {
	col := &Columnar{
		schema:  s.schema,
		version: s.version,
		ids:     s.ids,
		cols:    make([]*Column, len(pc.cols)),
	}
	var wg sync.WaitGroup
	for j := range col.cols {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			col.cols[j] = s.patchColumn(p, pc.cols[j], j)
		}(j)
	}
	wg.Wait()
	return col
}

// rebuildColumn is the per-column fallback: a fresh intern pass over the
// new snapshot's rows, exactly the batch build of this one column.
func (s *Snapshot) rebuildColumn(j int) *Column {
	c := newColumn(len(s.rows))
	for _, row := range s.rows {
		c.intern(row[j])
	}
	buildOps.internedCells.Add(int64(len(s.rows)))
	buildOps.rebuiltColumns.Add(1)
	return c
}

// patchColumn derives column j of the patched snapshot from its
// predecessor pcol. Untouched columns are shared wholesale (lazy caches
// included — identical rows build identical artifacts); touched columns
// are patched when the guards prove the batch build would produce the same
// dictionary numbering, and rebuilt otherwise.
func (s *Snapshot) patchColumn(p *snapPatch, pcol *Column, j int) *Column {
	edits := p.edits[j]
	if len(p.drops) == 0 && p.nAppend == 0 && len(edits) == 0 {
		buildOps.sharedColumns.Add(1)
		return pcol
	}
	oldCard := len(pcol.dict)

	// Guard pass. Dictionary codes are first-occurrence ordered, so the
	// patch is provably identical to a rebuild only if no first occurrence
	// is removed or moved earlier, no touched code's occurrence count can
	// reach zero, and no edit introduces a value absent from the dictionary
	// (its batch code would depend on its position). Any violation —
	// including the subtle ones — takes the per-column rebuild.
	var removals map[uint32]int32
	countRemoval := func(code uint32) {
		if removals == nil {
			removals = make(map[uint32]int32, len(p.drops)+len(edits))
		}
		removals[code]++
	}
	for _, d := range p.drops {
		code := pcol.codes[d]
		if pcol.first[code] == d {
			return s.rebuildColumn(j)
		}
		countRemoval(code)
	}
	type colEdit struct {
		prevPos, newPos  int32
		oldCode, newCode uint32
	}
	ces := make([]colEdit, len(edits))
	for i, e := range edits {
		oldCode := pcol.codes[e.prevPos]
		if pcol.first[oldCode] == e.prevPos {
			return s.rebuildColumn(j)
		}
		nc, ok := pcol.exactCode(s.rows[e.newPos][j])
		if !ok || e.prevPos < pcol.first[nc] {
			return s.rebuildColumn(j)
		}
		countRemoval(oldCode)
		ces[i] = colEdit{e.prevPos, e.newPos, oldCode, nc}
	}
	for code, rem := range removals {
		if pcol.counts[code] <= rem {
			// Unreachable while the first-occurrence guards hold (removing
			// every occurrence removes the first), kept as belt and braces:
			// an empty dict entry must not survive.
			return s.rebuildColumn(j)
		}
	}

	// Build: spliced code vector, shared dictionary (full slice
	// expressions, so tail growth reallocates instead of clobbering the
	// predecessor), cloned occurrence bookkeeping.
	n := len(s.rows)
	out := &Column{
		codes:      spliceU32(pcol.codes, p.drops, p.nAppend),
		dict:       pcol.dict[:oldCard:oldCard],
		eq:         pcol.eq[:oldCard:oldCard],
		counts:     append(make([]int32, 0, oldCard+4), pcol.counts...),
		first:      pcol.first[:oldCard:oldCard],
		byInt:      pcol.byInt,
		byFlt:      pcol.byFlt,
		byStr:      pcol.byStr,
		byNumClass: pcol.byNumClass,
		nullCode:   pcol.nullCode,
		trueCode:   pcol.trueCode,
		flsCode:    pcol.flsCode,
		nanCode:    pcol.nanCode,
	}
	if p.remap != nil {
		// Drops shift later positions down; first occurrences all survive
		// (guarded above), so the remap is total on them.
		first := make([]int32, oldCard)
		for c := range first {
			first[c] = p.remap[pcol.first[c]]
		}
		out.first = first
	}
	for _, d := range p.drops {
		out.counts[pcol.codes[d]]--
	}
	for _, e := range ces {
		out.codes[e.newPos] = e.newCode
		out.counts[e.oldCode]--
		out.counts[e.newCode]++
	}
	// Tail rows intern normally — exactly where the batch build would
	// discover novel values, so dictionary growth order matches. The
	// interner mutates the lookup maps, which are shared with the
	// predecessor: clone them first iff any tail value is novel.
	tail := s.rows[n-p.nAppend:]
	for _, row := range tail {
		if _, ok := pcol.exactCode(row[j]); !ok {
			out.byInt = maps.Clone(pcol.byInt)
			out.byFlt = maps.Clone(pcol.byFlt)
			out.byStr = maps.Clone(pcol.byStr)
			out.byNumClass = maps.Clone(pcol.byNumClass)
			break
		}
	}
	for _, row := range tail {
		out.intern(row[j])
	}
	buildOps.internedCells.Add(int64(p.nAppend))
	buildOps.patchedCells.Add(int64(len(p.drops) + len(ces) + p.nAppend))
	buildOps.patchedColumns.Add(1)

	s.patchColumnCaches(p, pcol, out, oldCard, func() [][2]int32 {
		moves := make([][2]int32, 0, len(ces))
		for _, e := range ces {
			moves = append(moves, [2]int32{e.prevPos, e.newPos})
		}
		return moves
	}())
	return out
}

// patchColumnCaches carries the predecessor's built lazy artifacts (PLI,
// probe vector, key table, class order) over to the patched column, so a
// warm serving path stays warm across mutations. Artifacts the predecessor
// never built stay lazy on the patched column too. moves lists the edited
// cells as (prevPos, newPos) pairs, both ascending.
func (s *Snapshot) patchColumnCaches(p *snapPatch, pcol, out *Column, oldCard int, moves [][2]int32) {
	n := len(s.rows)
	newEntries := len(out.dict) > oldCard

	var newCanon []uint32
	if pcol.pliReady.Load() {
		oldP := pcol.pli
		nOld := int32(oldP.NumClasses())

		// Route edited rows between classes. The dictionary guards ensure
		// class first occurrences survive and edits land after them, so
		// the class list keeps its first-occurrence order: surviving
		// classes in place, novel Equal-classes appended in tail order —
		// exactly the batch enumeration.
		classOf := make([]int32, len(out.dict))
		copy(classOf, pcol.pliClassOf)
		for i := oldCard; i < len(classOf); i++ {
			classOf[i] = -1
		}
		remOut := map[int32][]int32{}
		addIn := map[int32][]int32{}
		for _, mv := range moves {
			prevPos, newPos := mv[0], mv[1]
			oldEq := pcol.eq[pcol.codes[prevPos]]
			newEq := out.eq[out.codes[newPos]]
			if oldEq == newEq {
				continue // same Equal-class: membership unchanged
			}
			co, ci := pcol.pliClassOf[oldEq], pcol.pliClassOf[newEq]
			remOut[co] = append(remOut[co], prevPos)
			addIn[ci] = append(addIn[ci], newPos)
		}
		nClasses := nOld
		var newMembers [][]int32
		for pos := int32(n - p.nAppend); pos < int32(n); pos++ {
			eqc := out.eq[out.codes[pos]]
			switch cl := classOf[eqc]; {
			case cl < 0:
				classOf[eqc] = nClasses
				nClasses++
				newCanon = append(newCanon, eqc)
				newMembers = append(newMembers, []int32{pos})
			case cl < nOld:
				addIn[cl] = append(addIn[cl], pos)
			default:
				newMembers[cl-nOld] = append(newMembers[cl-nOld], pos)
			}
		}
		// Emit: splice each surviving class (skip removals, remap survivors,
		// merge additions — all position lists are ascending), then append
		// the novel classes.
		elems := make([]int32, 0, n)
		offsets := make([]int32, 1, nClasses+1)
		for c := int32(0); c < nOld; c++ {
			rem, add := remOut[c], addIn[c]
			ri, ai := 0, 0
			for _, pos := range oldP.Class(int(c)) {
				if ri < len(rem) && rem[ri] == pos {
					ri++
					continue
				}
				np := pos
				if p.remap != nil {
					if np = p.remap[pos]; np < 0 {
						continue
					}
				}
				for ai < len(add) && add[ai] < np {
					elems = append(elems, add[ai])
					ai++
				}
				elems = append(elems, np)
			}
			for ; ai < len(add); ai++ {
				elems = append(elems, add[ai])
			}
			offsets = append(offsets, int32(len(elems)))
		}
		for _, mem := range newMembers {
			elems = append(elems, mem...)
			offsets = append(offsets, int32(len(elems)))
		}
		out.pliOnce.Do(func() {
			out.pli = &Partition{n: n, elems: elems, offsets: offsets}
			out.pliClassCode = append(pcol.pliClassCode[:nOld:nOld], newCanon...)
			out.pliClassOf = classOf
			out.pliReady.Store(true)
		})
		buildOps.pliPatches.Add(1)
	}
	if pcol.probeReady.Load() {
		out.EqProbe()
	}
	if pcol.keysReady.Load() {
		out.keysOnce.Do(func() {
			keys := pcol.keys[:oldCard:oldCard]
			for _, v := range out.dict[oldCard:] {
				keys = append(keys, v.Key())
			}
			out.keys = keys
			out.keysReady.Store(true)
		})
	}
	if pcol.orderReady.Load() && !newEntries && len(newCanon) == 0 {
		// No new classes and no new dict entries: the key-sorted class
		// enumeration is unchanged and can be shared.
		out.orderOnce.Do(func() {
			out.classOrder = pcol.classOrder
			out.orderReady.Store(true)
		})
	}
}

// spliceU32 copies src with the (ascending) drop positions removed, leaving
// extra capacity for appends.
func spliceU32(src []uint32, drops []int32, extra int) []uint32 {
	out := make([]uint32, 0, len(src)-len(drops)+extra)
	prev := 0
	for _, d := range drops {
		out = append(out, src[prev:d]...)
		prev = int(d) + 1
	}
	return append(out, src[prev:]...)
}

// Build-operation counters: the machine-checkable face of the O(delta)
// claim. Wall-clock comparisons are forbidden by the 1-CPU rule, so
// experiment D7 (and the unit tests) assert on these instead — a warm
// serving path that patches 100 edits must intern ~100 cells, not 7M.
var buildOps struct {
	internedCells    atomic.Int64
	patchedCells     atomic.Int64
	batchSnapshots   atomic.Int64
	patchedSnapshots atomic.Int64
	sharedColumns    atomic.Int64
	patchedColumns   atomic.Int64
	rebuiltColumns   atomic.Int64
	batchColumns     atomic.Int64
	pliBuilds        atomic.Int64
	pliPatches       atomic.Int64
}

// BuildOps is a monotone snapshot of the package's artifact-build counters.
// Subtract two snapshots to cost an operation.
type BuildOps struct {
	// InternedCells counts cells run through the dictionary interner — the
	// hash-and-allocate unit of a batch column build.
	InternedCells int64 `json:"interned_cells"`
	// PatchedCells counts delta ops applied by the column patcher (drops,
	// pokes and tail appends).
	PatchedCells     int64 `json:"patched_cells"`
	BatchSnapshots   int64 `json:"batch_snapshots"`
	PatchedSnapshots int64 `json:"patched_snapshots"`
	SharedColumns    int64 `json:"shared_columns"`
	PatchedColumns   int64 `json:"patched_columns"`
	RebuiltColumns   int64 `json:"rebuilt_columns"`
	BatchColumns     int64 `json:"batch_columns"`
	PLIBuilds        int64 `json:"pli_builds"`
	PLIPatches       int64 `json:"pli_patches"`
}

// ReadBuildOps returns the current counter values.
func ReadBuildOps() BuildOps {
	return BuildOps{
		InternedCells:    buildOps.internedCells.Load(),
		PatchedCells:     buildOps.patchedCells.Load(),
		BatchSnapshots:   buildOps.batchSnapshots.Load(),
		PatchedSnapshots: buildOps.patchedSnapshots.Load(),
		SharedColumns:    buildOps.sharedColumns.Load(),
		PatchedColumns:   buildOps.patchedColumns.Load(),
		RebuiltColumns:   buildOps.rebuiltColumns.Load(),
		BatchColumns:     buildOps.batchColumns.Load(),
		PLIBuilds:        buildOps.pliBuilds.Load(),
		PLIPatches:       buildOps.pliPatches.Load(),
	}
}

// Sub returns the element-wise difference o - prev.
func (o BuildOps) Sub(prev BuildOps) BuildOps {
	return BuildOps{
		InternedCells:    o.InternedCells - prev.InternedCells,
		PatchedCells:     o.PatchedCells - prev.PatchedCells,
		BatchSnapshots:   o.BatchSnapshots - prev.BatchSnapshots,
		PatchedSnapshots: o.PatchedSnapshots - prev.PatchedSnapshots,
		SharedColumns:    o.SharedColumns - prev.SharedColumns,
		PatchedColumns:   o.PatchedColumns - prev.PatchedColumns,
		RebuiltColumns:   o.RebuiltColumns - prev.RebuiltColumns,
		BatchColumns:     o.BatchColumns - prev.BatchColumns,
		PLIBuilds:        o.PLIBuilds - prev.PLIBuilds,
		PLIPatches:       o.PLIPatches - prev.PLIPatches,
	}
}

// Versioned read snapshots: an immutable, pinned view of a Table that every
// read path (the detect engines, the streaming pipeline, audit, explore and
// the SQL engine's base-table loads) scans instead of the live row store.
//
// The design leans on two invariants:
//
//   - stored rows are copy-on-write: Insert, Update and SetCell never mutate
//     a Tuple that has ever been stored (SetCell clones the row and swaps
//     the clone in), so a snapshot only needs to copy the id order and the
//     row *references* — building one is O(n) pointer copies, not a deep
//     copy of the data;
//   - snapshots are version-cached on the table, exactly like the columnar
//     snapshot machinery they now subsume: every reader of an unchanged
//     table shares one Snapshot, and the Columnar view is built lazily
//     from the Snapshot (same version, same rows, same insertion order).
//
// A reader that works off one Snapshot is guaranteed a single table
// version end to end: concurrent writers keep mutating the live table, but
// they produce new row slices and a new version; the pinned view never
// changes. This is the read-optimized immutable-representation idea of the
// FDB storage engine literature applied to the paper's data monitor: live
// traffic updates the store while detection, audit and SQL queries run,
// and every produced report names the exact version it reflects.
package relstore

import (
	"sync"
	"sync/atomic"

	"semandaq/internal/schema"
)

// Snapshot is an immutable view of one table version. All methods are safe
// for concurrent use by any number of goroutines; none of them observe
// later mutations of the source table.
type Snapshot struct {
	schema  *schema.Relation
	version int64
	ids     []TupleID
	rows    []Tuple // parallel to ids; rows are COW-frozen, never mutated

	// byID is the id -> position index, built on first Get.
	byIDOnce sync.Once
	byID     map[TupleID]int

	// col is the columnar decomposition, built on first Columnar call and
	// shared by every columnar reader of this version.
	colOnce sync.Once
	col     *Columnar

	// patch, when non-nil, links this snapshot to its predecessor and the
	// delta separating them, so Columnar() can derive the columnar view by
	// patching the predecessor's instead of re-interning every cell
	// (patch.go). It is cleared once this snapshot's columnar view exists,
	// and a successor snapshot severs it when it takes over as the patch
	// target, so snapshots never chain more than one version back.
	patch atomic.Pointer[snapPatch]
	// colReady mirrors colOnce: set (with release semantics) once col is
	// built, so the patcher can ask whether a predecessor's columnar view
	// exists without racing a concurrent builder.
	colReady atomic.Bool
}

// Schema returns the snapshot's relation schema.
func (s *Snapshot) Schema() *schema.Relation { return s.schema }

// Version returns the table version the snapshot pins.
func (s *Snapshot) Version() int64 { return s.version }

// Len returns the number of live tuples in the snapshot.
func (s *Snapshot) Len() int { return len(s.ids) }

// IDs returns the tuple IDs in insertion order. The slice is the snapshot's
// backing storage: callers must not mutate it.
func (s *Snapshot) IDs() []TupleID { return s.ids }

// Row returns the i-th tuple in insertion order. The returned Tuple is
// frozen (copy-on-write protected); callers must not mutate it.
func (s *Snapshot) Row(i int) Tuple { return s.rows[i] }

// Rows returns the snapshot's tuples in insertion order, parallel to
// IDs(). Unlike the old Table.Rows, this is O(1): the slice and the
// tuples are the snapshot's frozen backing storage, and callers must not
// mutate either.
func (s *Snapshot) Rows() []Tuple { return s.rows }

// Get returns the tuple with the given ID as of this snapshot's version.
// The returned Tuple is frozen; callers must not mutate it.
func (s *Snapshot) Get(id TupleID) (Tuple, bool) {
	s.byIDOnce.Do(func() {
		m := make(map[TupleID]int, len(s.ids))
		for i, tid := range s.ids {
			m[tid] = i
		}
		s.byID = m
	})
	i, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return s.rows[i], true
}

// Scan calls fn for every tuple in insertion order. The rows are frozen;
// they must not be mutated. Returning false stops the scan early.
func (s *Snapshot) Scan(fn func(id TupleID, row Tuple) bool) {
	for i, id := range s.ids {
		if !fn(id, s.rows[i]) {
			return
		}
	}
}

// Columnar returns the columnar decomposition of this snapshot, built on
// first use and shared by every caller. It carries the same version, rows
// and insertion order as the snapshot itself, so mixing row reads and
// columnar reads off one Snapshot stays single-version consistent.
//
// When the snapshot was derived from a predecessor by patching and the
// predecessor's columnar view was built, the view is patched too — the
// delta contract (docs/INCREMENTAL.md) guarantees the result is
// indistinguishable from the batch build below.
func (s *Snapshot) Columnar() *Columnar {
	s.colOnce.Do(func() {
		if p := s.patch.Load(); p != nil {
			if pc := p.prev.builtColumnar(); pc != nil {
				s.col = s.patchedColumnar(p, pc)
			}
		}
		if s.col == nil {
			n := len(s.rows)
			col := &Columnar{
				schema:  s.schema,
				version: s.version,
				ids:     s.ids,
				cols:    make([]*Column, s.schema.Arity()),
			}
			// Columns intern independently, so the build fans out one goroutine
			// per attribute (the interleaved single-pass alternative defeats the
			// branch predictor and the per-column map locality).
			var wg sync.WaitGroup
			for j := range col.cols {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					c := newColumn(n)
					for _, row := range s.rows {
						c.intern(row[j])
					}
					col.cols[j] = c
				}(j)
			}
			wg.Wait()
			buildOps.internedCells.Add(int64(n * len(col.cols)))
			buildOps.batchColumns.Add(int64(len(col.cols)))
			s.col = col
		}
		s.colReady.Store(true)
		s.patch.Store(nil) // the predecessor link is no longer needed
	})
	return s.col
}

// builtColumnar returns the columnar view iff it has already been built,
// never triggering a build itself.
func (s *Snapshot) builtColumnar() *Columnar {
	if s.colReady.Load() {
		return s.col
	}
	return nil
}

// Snapshot returns the pinned read view of the table's current version,
// building it on first use and reusing the cached view until the table
// mutates. The result is immutable and safe to share across goroutines;
// building it costs O(n) pointer copies (rows are copy-on-write, never
// deep-copied).
func (t *Table) Snapshot() *Snapshot {
	t.mu.RLock()
	if snap := t.snap; snap != nil && snap.version == t.version {
		t.mu.RUnlock()
		return snap
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	if snap := t.snap; snap != nil && snap.version == t.version {
		return snap
	}
	var snap *Snapshot
	if t.prev != nil {
		snap = t.patchSnapshotLocked()
	}
	if snap == nil {
		snap = t.buildSnapshotLocked()
		buildOps.batchSnapshots.Add(1)
	}
	t.prev = nil
	t.npending = 0
	t.snap = snap
	return snap
}

// buildSnapshotLocked materializes the current version batch-wise. The
// caller holds t.mu (either mode; the build only reads).
func (t *Table) buildSnapshotLocked() *Snapshot {
	snap := &Snapshot{
		schema:  t.schema,
		version: t.version,
		ids:     make([]TupleID, 0, len(t.rows)),
		rows:    make([]Tuple, 0, len(t.rows)),
	}
	for _, id := range t.order {
		if row, ok := t.rows[id]; ok {
			snap.ids = append(snap.ids, id)
			snap.rows = append(snap.rows, row)
		}
	}
	return snap
}

// RebuildSnapshot builds a fresh, batch-built snapshot of the current
// version, bypassing both the version cache and the delta patcher. It is
// the cold side of the byte-identity oracle — every artifact a patched
// snapshot serves must equal what this one builds — and of the cold-rebuild
// measurements in experiment D7. Serving paths use Snapshot.
func (t *Table) RebuildSnapshot() *Snapshot {
	t.mu.RLock()
	defer t.mu.RUnlock()
	buildOps.batchSnapshots.Add(1)
	return t.buildSnapshotLocked()
}

// Columnar returns the columnar snapshot of the table's current version. It
// is the columnar face of Snapshot(): same cache, same version, same rows.
func (t *Table) Columnar() *Columnar {
	return t.Snapshot().Columnar()
}

package relstore

import (
	"math"
	"math/rand"
	"testing"

	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// patchValues is the value domain the patch tests mutate over, chosen to
// exercise every dictionary subtlety: Equal-but-not-exact numeric pairs
// (INT 1 / FLOAT 1.0), NULL, NaN, bools and plain strings.
var patchValues = []types.Value{
	types.NewString("a"),
	types.NewString("b"),
	types.NewString("c"),
	types.NewInt(1),
	types.NewFloat(1.0),
	types.NewInt(2),
	types.NewFloat(2.5),
	types.Null,
	types.NewFloat(math.NaN()),
	types.NewBool(true),
	types.NewString(""),
}

func patchValue(i int) types.Value {
	return patchValues[((i%len(patchValues))+len(patchValues))%len(patchValues)]
}

// checkAgainstRebuild asserts the served (possibly patched) snapshot is
// byte-identical to a cold batch rebuild, force-building every artifact on
// both sides.
func checkAgainstRebuild(t *testing.T, tab *Table) {
	t.Helper()
	if err := DiffSnapshots(tab.Snapshot(), tab.RebuildSnapshot()); err != nil {
		t.Fatalf("patched snapshot diverged from rebuild at version %d: %v",
			tab.Version(), err)
	}
}

// TestPatchedSnapshotMatchesRebuild drives random mutation sequences and
// holds the serving path to the byte-identity contract at every
// intermediate version. The per-version check also force-builds every lazy
// artifact, so each subsequent snapshot derives from a fully warm
// predecessor — the hardest case for the patcher.
func TestPatchedSnapshotMatchesRebuild(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(schema.New("p", "A", "B", "C"))
		for i := 0; i < 12; i++ {
			tab.MustInsert(Tuple{
				patchValue(rng.Intn(len(patchValues))),
				patchValue(rng.Intn(len(patchValues))),
				patchValue(rng.Intn(len(patchValues))),
			})
		}
		checkAgainstRebuild(t, tab)
		for step := 0; step < 60; step++ {
			ids := tab.IDs()
			switch op := rng.Intn(4); {
			case op == 0 || len(ids) == 0:
				tab.MustInsert(Tuple{
					patchValue(rng.Intn(len(patchValues))),
					patchValue(rng.Intn(len(patchValues))),
					patchValue(rng.Intn(len(patchValues))),
				})
			case op == 1:
				tab.Delete(ids[rng.Intn(len(ids))])
			case op == 2:
				if _, err := tab.SetCell(ids[rng.Intn(len(ids))], rng.Intn(3),
					patchValue(rng.Intn(len(patchValues)))); err != nil {
					t.Fatal(err)
				}
			default:
				if err := tab.Update(ids[rng.Intn(len(ids))], Tuple{
					patchValue(rng.Intn(len(patchValues))),
					patchValue(rng.Intn(len(patchValues))),
					patchValue(rng.Intn(len(patchValues))),
				}); err != nil {
					t.Fatal(err)
				}
			}
			checkAgainstRebuild(t, tab)
		}
	}
}

// TestUpdateRepresentationChange pins the subtlest delta: Update swapping
// INT 1 for FLOAT 1.0 changes the stored representation (and the columnar
// dictionary) even though the values compare Equal, so the patcher must
// see it.
func TestUpdateRepresentationChange(t *testing.T) {
	tab := NewTable(schema.New("p", "A"))
	tab.MustInsert(Tuple{types.NewFloat(1.0)})
	id := tab.MustInsert(Tuple{types.NewInt(1)})
	tab.MustInsert(Tuple{types.NewInt(1)})
	checkAgainstRebuild(t, tab)
	if err := tab.Update(id, Tuple{types.NewFloat(1.0)}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRebuild(t, tab)
}

// TestPatchOpsAreODelta is the unit-level face of the D7 claim: serving a
// snapshot after k cell edits on a warm table must cost O(k) interner work,
// not a batch rebuild.
func TestPatchOpsAreODelta(t *testing.T) {
	const n, arity, edits = 2000, 3, 20
	tab := NewTable(schema.New("p", "A", "B", "C"))
	rng := rand.New(rand.NewSource(1))
	// Column B cycles through a 50-value domain, so every value's first
	// occurrence sits in the first 50 rows; the edits below touch only rows
	// past 1000 and swap within the domain, so the patcher never faces a
	// first-occurrence disturbance and must take the pure patch path.
	for i := 0; i < n; i++ {
		tab.MustInsert(Tuple{
			types.NewString("k" + string(rune('a'+rng.Intn(20)))),
			types.NewInt(int64(i % 50)),
			types.NewString("v" + string(rune('a'+rng.Intn(5)))),
		})
	}
	// Warm every artifact on the current version.
	snap := tab.Snapshot()
	for j := 0; j < arity; j++ {
		col := snap.Columnar().Col(j)
		col.PLI()
		col.EqProbe()
		col.PLIClassesByKey()
		col.EnsureKeys()
	}
	ids := tab.IDs()
	before := ReadBuildOps()
	for i := 0; i < edits; i++ {
		id := ids[1000+rng.Intn(len(ids)-1000)]
		row, _ := tab.Get(id)
		nv := (row[1].Int() + 1) % 50
		if _, err := tab.SetCell(id, 1, types.NewInt(nv)); err != nil {
			t.Fatal(err)
		}
	}
	checkAgainstRebuild(t, tab) // includes the cold rebuild's own cost
	ops := ReadBuildOps().Sub(before)
	if ops.PatchedSnapshots != 1 {
		t.Fatalf("PatchedSnapshots = %d, want 1 (ops: %+v)", ops.PatchedSnapshots, ops)
	}
	if ops.SharedColumns != arity-1 {
		t.Errorf("SharedColumns = %d, want %d (only column B changed)", ops.SharedColumns, arity-1)
	}
	if ops.PatchedColumns != 1 || ops.RebuiltColumns != 0 {
		t.Errorf("PatchedColumns = %d RebuiltColumns = %d, want 1/0", ops.PatchedColumns, ops.RebuiltColumns)
	}
	if ops.PatchedCells > edits {
		t.Errorf("PatchedCells = %d, want <= %d", ops.PatchedCells, edits)
	}
	// The serving path interned nothing; all interning belongs to the cold
	// rebuild the check performed (1 batch snapshot, arity batch columns).
	wantInterned := int64(n * arity)
	if ops.InternedCells != wantInterned || ops.BatchColumns != arity || ops.BatchSnapshots != 1 {
		t.Errorf("cold-side ops off: InternedCells=%d (want %d) BatchColumns=%d (want %d) BatchSnapshots=%d (want 1)",
			ops.InternedCells, wantInterned, ops.BatchColumns, arity, ops.BatchSnapshots)
	}
	if ops.PLIPatches != 1 {
		t.Errorf("PLIPatches = %d, want 1", ops.PLIPatches)
	}
}

func TestChangesSince(t *testing.T) {
	tab := NewTable(schema.New("p", "A", "B"))
	v0 := tab.Version()
	id := tab.MustInsert(strs("x", "y"))
	if _, err := tab.SetCell(id, 1, types.NewString("z")); err != nil {
		t.Fatal(err)
	}
	changed, rowsStable, ok := tab.ChangesSince(v0)
	if !ok || rowsStable || !changed[1] || changed[0] {
		t.Fatalf("ChangesSince(v0) = %v stable=%v ok=%v", changed, rowsStable, ok)
	}
	v2 := tab.Version()
	if _, err := tab.SetCell(id, 0, types.NewString("w")); err != nil {
		t.Fatal(err)
	}
	changed, rowsStable, ok = tab.ChangesSince(v2)
	if !ok || !rowsStable || !changed[0] || changed[1] {
		t.Fatalf("ChangesSince(v2) = %v stable=%v ok=%v", changed, rowsStable, ok)
	}
	// A no-op update (same representation) advances the version but logs
	// no changes.
	v3 := tab.Version()
	if err := tab.Update(id, strs("w", "z")); err != nil {
		t.Fatal(err)
	}
	if tab.Version() == v3 {
		t.Fatal("no-op update did not advance the version")
	}
	changed, rowsStable, ok = tab.ChangesSince(v3)
	if !ok || !rowsStable || changed[0] || changed[1] {
		t.Fatalf("ChangesSince(v3) = %v stable=%v ok=%v", changed, rowsStable, ok)
	}
	// Future versions are not answerable.
	if _, _, ok := tab.ChangesSince(tab.Version() + 1); ok {
		t.Error("ChangesSince answered for a future version")
	}
}

func TestChangesSinceLogOverflow(t *testing.T) {
	tab := NewTable(schema.New("p", "A"))
	id := tab.MustInsert(strs("x"))
	since := tab.Version()
	for i := 0; i < maxChangeLog+10; i++ {
		v := "a"
		if i%2 == 0 {
			v = "b"
		}
		if _, err := tab.SetCell(id, 0, types.NewString(v)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := tab.ChangesSince(since); ok {
		t.Error("ChangesSince answered past the evicted log floor")
	}
	// Recent intervals stay answerable after eviction.
	recent := tab.Version()
	if _, err := tab.SetCell(id, 0, types.NewString("q")); err != nil {
		t.Fatal(err)
	}
	changed, rowsStable, ok := tab.ChangesSince(recent)
	if !ok || !rowsStable || !changed[0] {
		t.Fatalf("ChangesSince(recent) = %v stable=%v ok=%v", changed, rowsStable, ok)
	}
}

// TestPatchAbandonedPastCap: a delta larger than maxPatchOps falls back to
// a batch build (and still serves correct data).
func TestPatchAbandonedPastCap(t *testing.T) {
	tab := NewTable(schema.New("p", "A"))
	id := tab.MustInsert(strs("x"))
	tab.Snapshot() // retained as the patch base
	for i := 0; i <= maxPatchOps; i++ {
		v := "a"
		if i%2 == 0 {
			v = "b"
		}
		if _, err := tab.SetCell(id, 0, types.NewString(v)); err != nil {
			t.Fatal(err)
		}
	}
	before := ReadBuildOps()
	tab.Snapshot()
	ops := ReadBuildOps().Sub(before)
	if ops.PatchedSnapshots != 0 || ops.BatchSnapshots != 1 {
		t.Errorf("past-cap delta: Patched=%d Batch=%d, want 0/1", ops.PatchedSnapshots, ops.BatchSnapshots)
	}
	checkAgainstRebuild(t, tab)
}

// TestPatchSharesUntouchedColumns: a patched snapshot shares untouched
// columns with its predecessor wholesale — pointer identity, caches and
// all.
func TestPatchSharesUntouchedColumns(t *testing.T) {
	tab := NewTable(schema.New("p", "A", "B"))
	id := tab.MustInsert(strs("x", "y"))
	tab.MustInsert(strs("x", "z"))
	prevCol := tab.Snapshot().Columnar().Col(0)
	if _, err := tab.SetCell(id, 1, types.NewString("q")); err != nil {
		t.Fatal(err)
	}
	if got := tab.Snapshot().Columnar().Col(0); got != prevCol {
		t.Error("untouched column was not shared with the predecessor")
	}
	checkAgainstRebuild(t, tab)
}

package relstore

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestColumnarRoundTrip verifies the exact-code contract: the snapshot
// reproduces every stored row bit-for-bit, in insertion order, with live
// IDs only.
func TestColumnarRoundTrip(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B", "C"))
	rows := []Tuple{
		{types.NewString("x"), types.NewInt(1), types.NewFloat(1.5)},
		{types.Null, types.NewBool(true), types.NewString("")},
		{types.NewString("x"), types.NewFloat(1), types.Null},
		{types.NewString("y"), types.NewInt(1), types.NewFloat(1.5)},
	}
	var ids []TupleID
	for _, r := range rows {
		ids = append(ids, tab.MustInsert(r))
	}
	del := tab.MustInsert(Tuple{types.NewString("gone"), types.Null, types.Null})
	tab.Delete(del)

	snap := tab.Columnar()
	if snap.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", snap.Len(), len(rows))
	}
	for i, id := range snap.IDs() {
		if id != ids[i] {
			t.Fatalf("IDs[%d] = %d, want %d", i, id, ids[i])
		}
		got := snap.Row(i)
		for j := range rows[i] {
			if got[j] != rows[i][j] {
				t.Errorf("row %d col %d = %#v, want %#v", i, j, got[j], rows[i][j])
			}
			col := snap.Col(j)
			if v := col.Value(col.Code(i)); v != rows[i][j] {
				t.Errorf("col %d row %d value = %#v, want %#v", j, i, v, rows[i][j])
			}
		}
	}
}

// TestColumnarCaching verifies the version contract: repeated calls on an
// unchanged table return the same snapshot, and every kind of mutation
// invalidates it.
func TestColumnarCaching(t *testing.T) {
	tab := NewTable(schema.New("r", "A"))
	id := tab.MustInsert(Tuple{types.NewString("a")})

	s1 := tab.Columnar()
	if s2 := tab.Columnar(); s2 != s1 {
		t.Fatal("unchanged table rebuilt its snapshot")
	}
	if s1.Version() != tab.Version() {
		t.Fatalf("snapshot version %d, table version %d", s1.Version(), tab.Version())
	}

	mutations := []struct {
		name string
		do   func()
	}{
		{"insert", func() { tab.MustInsert(Tuple{types.NewString("b")}) }},
		{"setcell", func() {
			if _, err := tab.SetCell(id, 0, types.NewString("c")); err != nil {
				t.Fatal(err)
			}
		}},
		{"update", func() {
			if err := tab.Update(id, Tuple{types.NewString("d")}); err != nil {
				t.Fatal(err)
			}
		}},
		{"delete", func() { tab.Delete(id) }},
	}
	prev := s1
	for _, m := range mutations {
		m.do()
		next := tab.Columnar()
		if next == prev {
			t.Errorf("%s did not invalidate the snapshot", m.name)
		}
		if next.Version() != tab.Version() {
			t.Errorf("%s: snapshot version %d, table version %d", m.name, next.Version(), tab.Version())
		}
		prev = next
	}
}

// TestColumnarNoAliasing is the adversarial dictionary test: exact codes
// must never alias distinct values, and Equal-class codes must partition
// exactly by Value.Equal. The value pool is built to attack the encodings:
// strings that look like other kinds' Key() strings ("d1" vs INT 1),
// strings embedding the legacy 0x1f separator and the length-prefix ':',
// empty string vs NULL, cross-kind numeric equals (1 vs 1.0), TRUE vs the
// string "TRUE", and negative zero.
func TestColumnarNoAliasing(t *testing.T) {
	pool := []types.Value{
		types.Null,
		types.NewBool(true),
		types.NewBool(false),
		types.NewString("TRUE"),
		types.NewString(""),
		types.NewString("d1"),
		types.NewString("s1"),
		types.NewString("1"),
		types.NewString("1:d1"),
		types.NewString("x\x1fy"),
		types.NewString("x"),
		types.NewString("y"),
		types.NewInt(1),
		types.NewFloat(1), // Equal to NewInt(1): must share an Equal-class
		types.NewInt(0),
		types.NewFloat(math.Copysign(0, -1)), // -0.0 Equals 0
		types.NewFloat(2.5),
		types.NewInt(-3),
		types.NewFloat(-3),         // Equal to NewInt(-3)
		types.NewFloat(math.NaN()), // Equal only to NaN; its own class
	}
	tab := NewTable(schema.New("r", "V"))
	rng := rand.New(rand.NewSource(99))
	var stored []types.Value
	for i := 0; i < 400; i++ {
		v := pool[rng.Intn(len(pool))]
		stored = append(stored, v)
		tab.MustInsert(Tuple{v})
	}
	col := tab.Columnar().Col(0)

	// Exact codes: equal code <=> identical stored value (same kind, same
	// payload — floats bit-for-bit, so -0.0 keeps its sign and NaN its
	// payload).
	for i := range stored {
		vi := col.Value(col.Code(i))
		if vi.Kind() != stored[i].Kind() {
			t.Fatalf("row %d: exact code round-trips %s(%v), stored %s(%v)",
				i, vi.Kind(), vi, stored[i].Kind(), stored[i])
		}
		if vi.Kind() == types.KindFloat {
			if math.Float64bits(vi.Float()) != math.Float64bits(stored[i].Float()) {
				t.Fatalf("row %d: float bits changed: %x vs %x",
					i, math.Float64bits(vi.Float()), math.Float64bits(stored[i].Float()))
			}
		} else if !vi.Equal(stored[i]) {
			t.Fatalf("row %d: exact code round-trips %v, stored %v", i, vi, stored[i])
		}
	}
	// Equal-class codes: for every pair of rows, shared class <=> Equal.
	for i := range stored {
		for j := i + 1; j < len(stored); j++ {
			sameClass := col.EqCode(i) == col.EqCode(j)
			equal := stored[i].Equal(stored[j])
			if sameClass != equal {
				t.Fatalf("rows %d,%d (%v vs %v): eq-class %v but Equal %v — dictionary aliasing",
					i, j, stored[i], stored[j], sameClass, equal)
			}
		}
	}
	// Dictionary-level: no two distinct exact entries may be Key-equal
	// without sharing an Equal-class, and EqCodeOf must agree with EqCode
	// for every stored value.
	for i := range stored {
		code, ok := col.EqCodeOf(stored[i])
		if !ok {
			t.Fatalf("EqCodeOf(%v) reported absent for a stored value", stored[i])
		}
		if code != col.EqCode(i) {
			t.Fatalf("EqCodeOf(%v) = %d, EqCode(row) = %d", stored[i], code, col.EqCode(i))
		}
	}
	// Values absent from the column must be reported absent.
	for _, v := range []types.Value{
		types.NewString("absent"), types.NewInt(42), types.NewFloat(3.25),
	} {
		if _, ok := col.EqCodeOf(v); ok {
			t.Errorf("EqCodeOf(%v) = present, want absent", v)
		}
	}
}

// TestColumnarKeyOfMatchesValueKey pins the KeyOf contract the detection
// group maps rely on: the precomputed key of a row's code is exactly the
// stored value's Key().
func TestColumnarKeyOfMatchesValueKey(t *testing.T) {
	tab := NewTable(schema.New("r", "V"))
	vals := []types.Value{
		types.NewString("a"), types.NewInt(7), types.NewFloat(7),
		types.NewFloat(2.5), types.Null, types.NewBool(false),
	}
	for _, v := range vals {
		tab.MustInsert(Tuple{v})
	}
	col := tab.Columnar().Col(0)
	for i, v := range vals {
		if got := col.KeyOf(col.Code(i)); got != v.Key() {
			t.Errorf("KeyOf(row %d) = %q, want %q", i, got, v.Key())
		}
	}
}

// TestColumnarConcurrentReaders hammers Columnar() from many goroutines
// interleaved with mutations; the race detector checks the locking, and
// every returned snapshot must be internally consistent (ids and columns
// the same length).
func TestColumnarConcurrentReaders(t *testing.T) {
	tab := NewTable(schema.New("r", "A", "B"))
	for i := 0; i < 100; i++ {
		tab.MustInsert(Tuple{types.NewInt(int64(i % 7)), types.NewString(fmt.Sprint(i % 5))})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			tab.MustInsert(Tuple{types.NewInt(int64(i)), types.NewString("w")})
		}
	}()
	for i := 0; i < 50; i++ {
		snap := tab.Columnar()
		n := snap.Len()
		for j := 0; j < snap.NumCols(); j++ {
			if snap.Col(j).Len() != n {
				t.Fatalf("snapshot column %d has %d rows, ids %d", j, snap.Col(j).Len(), n)
			}
		}
	}
	<-done
}

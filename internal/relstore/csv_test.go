package relstore

import (
	"bytes"
	"strings"
	"testing"

	"semandaq/internal/types"
)

const sampleCSV = `NAME,CNT,CITY,ZIP,STR,CC,AC
Mike,UK,Edinburgh,EH2 4SD,Mayfield,44,131
Rick,UK,Edinburgh,EH2 4SD,Crichton,44,131
Joe,US,New York,01202,Mtn Ave,1,908
`

func TestReadCSV(t *testing.T) {
	tab, err := ReadCSV("customer", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
	sc := tab.Schema()
	if sc.Arity() != 7 || sc.Name != "customer" {
		t.Fatalf("schema = %v", sc)
	}
	ids := tab.IDs()
	row, _ := tab.Get(ids[0])
	if row[sc.MustPos("NAME")].Str() != "Mike" {
		t.Errorf("row = %v", row)
	}
	// CC column inferred as INT.
	if row[sc.MustPos("CC")].Kind() != types.KindInt {
		t.Errorf("CC kind = %v", row[sc.MustPos("CC")].Kind())
	}
	// ZIP with space stays a string.
	if row[sc.MustPos("ZIP")].Kind() != types.KindString {
		t.Errorf("ZIP kind = %v", row[sc.MustPos("ZIP")].Kind())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab, err := ReadCSV("customer", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("customer", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tab.Len() {
		t.Fatalf("round-trip len %d != %d", back.Len(), tab.Len())
	}
	_, origRows := tab.Rows()
	_, backRows := back.Rows()
	for i := range origRows {
		if !origRows[i].Equal(backRows[i]) {
			t.Errorf("row %d: %v != %v", i, origRows[i], backRows[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	bad := "A,B\n1,2,3\n"
	if _, err := ReadCSV("x", strings.NewReader(bad)); err == nil {
		t.Error("ragged row should fail")
	}
}

func TestReadCSVNulls(t *testing.T) {
	tab, err := ReadCSV("x", strings.NewReader("A,B\nval,\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, rows := tab.Rows()
	if !rows[0][1].IsNull() {
		t.Errorf("empty field should parse as NULL, got %v", rows[0][1])
	}
}

// Columnar snapshots: an immutable, column-oriented view of a Table with
// per-attribute interned dictionaries. The row store (map[TupleID]Tuple)
// is the system of record; the hot read paths — detection group-builds and
// SQL-engine scans — walk these snapshots instead, because
//
//   - a column's values are interned once into a dense dictionary, so a
//     tuple's grouping key is a fixed-width vector of uint32 codes instead
//     of a length-prefixed string rebuilt per tuple per CFD;
//   - equality against a constant (a CFD pattern cell, a WHERE literal)
//     is one integer comparison after a single dictionary probe;
//   - the snapshot is versioned off Table.version, so every reader of an
//     unchanged table shares one materialization.
//
// Two code spaces per column. Exact codes intern by (kind, payload)
// identity, so Value(Code(i)) round-trips the stored value bit-for-bit and
// scans built from the snapshot are indistinguishable from row scans.
// Equal-class codes (EqCode) canonicalize across the value model's
// cross-kind numeric equality — INT 1 and FLOAT 1.0 are Equal and must
// land in one group — mirroring exactly the classes types.Value.Key()
// induces. Grouping and predicate pushdown use Equal-class codes;
// materialization uses exact codes. Codes are only meaningful within one
// snapshot: layers comparing keys across snapshots (the incremental
// tracker, cross-table joins) keep using the WriteGroupKey encoding.
package relstore

import (
	"math"
	"sync"
	"sync/atomic"

	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// Column is one attribute's vector in a columnar snapshot: a dense code per
// row plus the dictionary the codes index. All fields are immutable after
// the snapshot is built; a Column is safe for concurrent use.
type Column struct {
	codes []uint32      // per row: exact dictionary code
	dict  []types.Value // exact code -> value (first occurrence wins)
	eq    []uint32      // exact code -> canonical Equal-class code
	// counts and first are the occurrence bookkeeping the delta patcher
	// (patch.go) decides on: counts[c] is how many rows carry exact code c,
	// first[c] the row index of c's first occurrence — the position that
	// fixes c's dictionary slot. Both are maintained by intern and by the
	// patch builders, so a patched column can itself be patched again.
	counts []int32
	first  []int32
	// keys materializes dict[code].Key() lazily (keysOnce): only columns
	// serving as a variable CFD's RHS ever need it, and skipping it at
	// build time saves one string allocation per distinct value on
	// high-cardinality columns.
	keysOnce sync.Once
	keys     []string
	// pli and probe are the column's position list index and per-row
	// Equal-class probe vector (pli.go), built lazily for the CFD miner and
	// shared by every discovery pass over this snapshot. pliClassCode maps a
	// PLI class index to its canonical dictionary code.
	pliOnce      sync.Once
	pli          *Partition
	pliClassCode []uint32
	// pliClassOf inverts pliClassCode: Equal-class canonical code -> PLI
	// class index, -1 for codes that are not an occurring class canonical.
	// Retained so the patcher can route row moves to their classes.
	pliClassOf []int32
	orderOnce  sync.Once
	classOrder []int
	probeOnce  sync.Once
	probe      []uint32
	// The ready flags mirror the sync.Once states above: each is set (with
	// release semantics) after its lazy artifact is built, so the delta
	// patcher can ask "did anyone build this on the previous version?"
	// without racing concurrent builders — a nil answer just means the
	// patched column leaves that artifact lazy too.
	keysReady  atomic.Bool
	pliReady   atomic.Bool
	orderReady atomic.Bool
	probeReady atomic.Bool
	// Interner state, retained so EqCodeOf stays O(1) after the build.
	// Strings, bools, NULL and NaN are their own Equal-classes; only the
	// numeric kinds collapse across each other, via byNumClass (keyed by
	// the int64 that Key() would render — INT payloads and integral
	// FLOATs share a slot, exactly the "d<n>" key class).
	byInt map[int64]uint32  // KindInt
	byFlt map[uint64]uint32 // KindFloat, keyed by Float64bits so -0.0
	// and 0.0 (and distinct NaN payloads) keep distinct exact codes
	byStr      map[string]uint32 // KindString
	byNumClass map[int64]uint32  // integral-number class -> canonical code
	nullCode   int64             // exact code of NULL, -1 if absent
	trueCode   int64             // exact code of TRUE, -1 if absent
	flsCode    int64             // exact code of FALSE, -1 if absent
	nanCode    int64             // canonical Equal-class code of NaN, -1 if absent
}

// newColumn returns an empty column with n rows of capacity.
func newColumn(n int) *Column {
	return &Column{
		codes:      make([]uint32, 0, n),
		byInt:      map[int64]uint32{},
		byFlt:      map[uint64]uint32{},
		byStr:      map[string]uint32{},
		byNumClass: map[int64]uint32{},
		nullCode:   -1,
		trueCode:   -1,
		flsCode:    -1,
		nanCode:    -1,
	}
}

// integralClass reports whether f belongs to an integral-number Equal
// class and which, mirroring the check types.Value.Key() performs.
func integralClass(f float64) (int64, bool) {
	if f == float64(int64(f)) {
		return int64(f), true
	}
	return 0, false
}

// intern appends v's exact code for the next row, growing the dictionary on
// first occurrence.
func (c *Column) intern(v types.Value) {
	var (
		code uint32
		ok   bool
	)
	switch v.Kind() {
	case types.KindNull:
		if c.nullCode >= 0 {
			code, ok = uint32(c.nullCode), true
		}
	case types.KindBool:
		if v.Bool() {
			if c.trueCode >= 0 {
				code, ok = uint32(c.trueCode), true
			}
		} else if c.flsCode >= 0 {
			code, ok = uint32(c.flsCode), true
		}
	case types.KindInt:
		code, ok = c.byInt[v.Int()]
	case types.KindFloat:
		code, ok = c.byFlt[math.Float64bits(v.Float())]
	case types.KindString:
		code, ok = c.byStr[v.Str()]
	}
	if !ok {
		code = c.addEntry(v)
	}
	c.counts[code]++
	c.codes = append(c.codes, code)
}

// exactCode looks v's exact dictionary code up without interning: ok is
// false when no stored value has v's exact (kind, payload) identity, even
// if an Equal value exists. This is the read-only face of intern's lookup,
// used by the patcher's guard checks.
func (c *Column) exactCode(v types.Value) (uint32, bool) {
	switch v.Kind() {
	case types.KindNull:
		if c.nullCode >= 0 {
			return uint32(c.nullCode), true
		}
	case types.KindBool:
		if v.Bool() {
			if c.trueCode >= 0 {
				return uint32(c.trueCode), true
			}
		} else if c.flsCode >= 0 {
			return uint32(c.flsCode), true
		}
	case types.KindInt:
		code, ok := c.byInt[v.Int()]
		return code, ok
	case types.KindFloat:
		code, ok := c.byFlt[math.Float64bits(v.Float())]
		return code, ok
	case types.KindString:
		code, ok := c.byStr[v.Str()]
		return code, ok
	}
	return 0, false
}

// exactEqual reports whether two values share their exact (kind, payload)
// representation — stricter than Equal, which collapses INT 1 / FLOAT 1.0
// and all NaNs. The patcher compares exactly: representation changes move
// dictionary entries even when the values are Equal.
func exactEqual(a, b types.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case types.KindNull:
		return true
	case types.KindBool:
		return a.Bool() == b.Bool()
	case types.KindInt:
		return a.Int() == b.Int()
	case types.KindFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case types.KindString:
		return a.Str() == b.Str()
	}
	return false
}

// addEntry registers a new dictionary entry and returns its code.
func (c *Column) addEntry(v types.Value) uint32 {
	code := uint32(len(c.dict))
	c.dict = append(c.dict, v)
	c.counts = append(c.counts, 0)
	c.first = append(c.first, int32(len(c.codes)))
	// Canonical Equal-class code: entries are their own class except
	// integral numbers, where INT n and FLOAT n share the "d<n>" key
	// class and the first occurrence wins.
	canon := code
	switch v.Kind() {
	case types.KindNull:
		c.nullCode = int64(code)
	case types.KindBool:
		if v.Bool() {
			c.trueCode = int64(code)
		} else {
			c.flsCode = int64(code)
		}
	case types.KindInt:
		c.byInt[v.Int()] = code
		if first, seen := c.byNumClass[v.Int()]; seen {
			canon = first
		} else {
			c.byNumClass[v.Int()] = code
		}
	case types.KindFloat:
		f := v.Float()
		c.byFlt[math.Float64bits(f)] = code
		switch {
		case math.IsNaN(f):
			// All NaNs are Equal (types.Value.Compare), whatever their
			// payload bits: the first one becomes the class canonical.
			if c.nanCode >= 0 {
				canon = uint32(c.nanCode)
			} else {
				c.nanCode = int64(code)
			}
		default:
			if k, integral := integralClass(f); integral {
				if first, seen := c.byNumClass[k]; seen {
					canon = first
				} else {
					c.byNumClass[k] = code
				}
			}
		}
	case types.KindString:
		c.byStr[v.Str()] = code
	}
	c.eq = append(c.eq, canon)
	return code
}

// Len returns the number of rows in the column.
func (c *Column) Len() int { return len(c.codes) }

// Card returns the dictionary cardinality (distinct exact values).
func (c *Column) Card() int { return len(c.dict) }

// Code returns row i's exact dictionary code.
func (c *Column) Code(i int) uint32 { return c.codes[i] }

// Codes returns the full exact-code vector. The slice is the snapshot's
// backing storage: callers must not mutate it.
func (c *Column) Codes() []uint32 { return c.codes }

// EqCode returns row i's Equal-class code: two rows have the same EqCode
// iff their values are Equal under the types.Value model.
func (c *Column) EqCode(i int) uint32 { return c.eq[c.codes[i]] }

// EqOf maps an exact code to its Equal-class code.
func (c *Column) EqOf(code uint32) uint32 { return c.eq[code] }

// Value returns the dictionary value for an exact code.
func (c *Column) Value(code uint32) types.Value { return c.dict[code] }

// EnsureKeys materializes the per-code Key() table; callers that will sit
// in a loop over KeyOf should invoke it once up front.
func (c *Column) EnsureKeys() {
	c.keysOnce.Do(func() {
		keys := make([]string, len(c.dict))
		for i, v := range c.dict {
			keys[i] = v.Key()
		}
		c.keys = keys
		c.keysReady.Store(true)
	})
}

// KeyOf returns the precomputed Key() string for an exact code. Codes in
// one Equal-class share the key's content, so the result can stand in for
// row-value Key() calls in grouping maps.
func (c *Column) KeyOf(code uint32) string {
	c.EnsureKeys()
	return c.keys[code]
}

// EqCodeOf resolves an arbitrary value (a pattern constant, a WHERE
// literal) to its Equal-class code in this column, reporting whether any
// stored value Equals it. A false report means no row of the column can
// ever compare equal to v.
func (c *Column) EqCodeOf(v types.Value) (uint32, bool) {
	switch v.Kind() {
	case types.KindNull:
		if c.nullCode >= 0 {
			return uint32(c.nullCode), true
		}
	case types.KindBool:
		if v.Bool() {
			if c.trueCode >= 0 {
				return uint32(c.trueCode), true
			}
		} else if c.flsCode >= 0 {
			return uint32(c.flsCode), true
		}
	case types.KindInt:
		if code, ok := c.byNumClass[v.Int()]; ok {
			return code, true
		}
	case types.KindFloat:
		f := v.Float()
		if math.IsNaN(f) {
			if c.nanCode >= 0 {
				return uint32(c.nanCode), true
			}
			return 0, false
		}
		if k, integral := integralClass(f); integral {
			if code, ok := c.byNumClass[k]; ok {
				return code, true
			}
			return 0, false
		}
		if code, ok := c.byFlt[math.Float64bits(f)]; ok {
			return c.eq[code], true
		}
	case types.KindString:
		if code, ok := c.byStr[v.Str()]; ok {
			return code, true
		}
	}
	return 0, false
}

// NullCode returns the Equal-class (= exact) code of NULL and whether the
// column contains any NULLs.
func (c *Column) NullCode() (uint32, bool) {
	if c.nullCode < 0 {
		return 0, false
	}
	return uint32(c.nullCode), true
}

// Columnar is an immutable columnar snapshot of a table: the live tuples in
// insertion order, decomposed into per-attribute Columns. Snapshots are
// built by Table.Columnar and shared by every reader of the same table
// version; all methods are safe for concurrent use.
type Columnar struct {
	schema  *schema.Relation
	version int64
	ids     []TupleID
	cols    []*Column
}

// Schema returns the snapshot's relation schema.
func (c *Columnar) Schema() *schema.Relation { return c.schema }

// Version returns the table version the snapshot was built from.
func (c *Columnar) Version() int64 { return c.version }

// Len returns the number of rows.
func (c *Columnar) Len() int { return len(c.ids) }

// IDs returns the tuple IDs in insertion order. The slice is the snapshot's
// backing storage: callers must not mutate it.
func (c *Columnar) IDs() []TupleID { return c.ids }

// Col returns the column at schema position pos.
func (c *Columnar) Col(pos int) *Column { return c.cols[pos] }

// NumCols returns the number of columns (the schema arity).
func (c *Columnar) NumCols() int { return len(c.cols) }

// Row materializes row i as a fresh Tuple, bit-identical to the stored row
// (exact codes round-trip the original values).
func (c *Columnar) Row(i int) Tuple {
	row := make(Tuple, len(c.cols))
	for j, col := range c.cols {
		row[j] = col.dict[col.codes[i]]
	}
	return row
}

// Table.Columnar lives in snapshot.go: the columnar view is built lazily
// from the table's pinned row Snapshot, so both views of one version share
// ids, rows and the version stamp.

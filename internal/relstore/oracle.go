// The byte-identity oracle: DiffSnapshots force-builds every artifact two
// snapshots can materialize — row vectors, columnar dictionaries, code
// vectors, occurrence bookkeeping, interner maps, PLIs, probe vectors, key
// tables, class orders — and compares them field by field. The fuzz targets
// and cross-check tests run it between a patched snapshot and a cold
// Table.RebuildSnapshot at every intermediate version; any divergence is a
// patcher bug, reported with enough coordinates to reproduce.
//
// reflect.DeepEqual over whole Snapshots would be both too strict (sync.Once
// and atomic scheduling state differ between a warm and a cold build) and
// too vague (a mismatch names no field), hence the explicit walk. Slices
// compare as sequences: nil and empty are the same artifact.
package relstore

import "fmt"

// DiffSnapshots compares every observable artifact of got against want and
// returns a precise error for the first divergence, nil if the snapshots
// are indistinguishable. Both sides are force-built, so lazy caches are
// exercised too. want is conventionally the cold rebuild.
func DiffSnapshots(got, want *Snapshot) error {
	if got.Version() != want.Version() {
		return fmt.Errorf("version: got %d, want %d", got.Version(), want.Version())
	}
	if got.Len() != want.Len() {
		return fmt.Errorf("len: got %d, want %d", got.Len(), want.Len())
	}
	for i, id := range want.ids {
		if got.ids[i] != id {
			return fmt.Errorf("ids[%d]: got %d, want %d", i, got.ids[i], id)
		}
		if err := diffTuple(got.rows[i], want.rows[i]); err != nil {
			return fmt.Errorf("row %d (id %d): %w", i, id, err)
		}
	}
	gc, wc := got.Columnar(), want.Columnar()
	if gc.Version() != wc.Version() {
		return fmt.Errorf("columnar version: got %d, want %d", gc.Version(), wc.Version())
	}
	if gc.NumCols() != wc.NumCols() {
		return fmt.Errorf("columnar arity: got %d, want %d", gc.NumCols(), wc.NumCols())
	}
	for j := 0; j < wc.NumCols(); j++ {
		if err := diffColumn(gc.Col(j), wc.Col(j)); err != nil {
			return fmt.Errorf("column %d (%s): %w", j, want.schema.Attrs[j].Name, err)
		}
	}
	return nil
}

func diffTuple(got, want Tuple) error {
	if len(got) != len(want) {
		return fmt.Errorf("arity: got %d, want %d", len(got), len(want))
	}
	for j := range want {
		if !exactEqual(got[j], want[j]) {
			return fmt.Errorf("cell %d: got %v, want %v (exact)", j, got[j], want[j])
		}
	}
	return nil
}

func diffColumn(g, w *Column) error {
	if err := diffSeq("codes", g.codes, w.codes); err != nil {
		return err
	}
	if len(g.dict) != len(w.dict) {
		return fmt.Errorf("dict len: got %d, want %d", len(g.dict), len(w.dict))
	}
	for c := range w.dict {
		if !exactEqual(g.dict[c], w.dict[c]) {
			return fmt.Errorf("dict[%d]: got %v, want %v (exact)", c, g.dict[c], w.dict[c])
		}
	}
	if err := diffSeq("eq", g.eq, w.eq); err != nil {
		return err
	}
	if err := diffSeq("counts", g.counts, w.counts); err != nil {
		return err
	}
	if err := diffSeq("first", g.first, w.first); err != nil {
		return err
	}
	for _, s := range []struct {
		name      string
		got, want int64
	}{
		{"nullCode", g.nullCode, w.nullCode},
		{"trueCode", g.trueCode, w.trueCode},
		{"flsCode", g.flsCode, w.flsCode},
		{"nanCode", g.nanCode, w.nanCode},
	} {
		if s.got != s.want {
			return fmt.Errorf("%s: got %d, want %d", s.name, s.got, s.want)
		}
	}
	if err := diffMap("byInt", g.byInt, w.byInt); err != nil {
		return err
	}
	if err := diffMap("byFlt", g.byFlt, w.byFlt); err != nil {
		return err
	}
	if err := diffMap("byStr", g.byStr, w.byStr); err != nil {
		return err
	}
	if err := diffMap("byNumClass", g.byNumClass, w.byNumClass); err != nil {
		return err
	}
	// Force the lazy artifacts on both sides and compare them too.
	gp, wp := g.PLI(), w.PLI()
	if gp.NumRows() != wp.NumRows() {
		return fmt.Errorf("pli rows: got %d, want %d", gp.NumRows(), wp.NumRows())
	}
	if err := diffSeq("pli elems", gp.elems, wp.elems); err != nil {
		return err
	}
	if err := diffSeq("pli offsets", gp.offsets, wp.offsets); err != nil {
		return err
	}
	if err := diffSeq("pliClassCode", g.pliClassCode, w.pliClassCode); err != nil {
		return err
	}
	if err := diffSeq("pliClassOf", g.pliClassOf, w.pliClassOf); err != nil {
		return err
	}
	if err := diffSeq("probe", g.EqProbe(), w.EqProbe()); err != nil {
		return err
	}
	if err := diffSeq("classOrder", g.PLIClassesByKey(), w.PLIClassesByKey()); err != nil {
		return err
	}
	g.EnsureKeys()
	w.EnsureKeys()
	if err := diffSeq("keys", g.keys, w.keys); err != nil {
		return err
	}
	return nil
}

func diffSeq[T comparable](what string, got, want []T) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s len: got %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("%s[%d]: got %v, want %v", what, i, got[i], want[i])
		}
	}
	return nil
}

func diffMap[K comparable](what string, got, want map[K]uint32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s len: got %d, want %d", what, len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			return fmt.Errorf("%s[%v]: missing, want %d", what, k, wv)
		}
		if gv != wv {
			return fmt.Errorf("%s[%v]: got %d, want %d", what, k, gv, wv)
		}
	}
	return nil
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"semandaq/internal/cfd"
	"semandaq/internal/consistency"
	"semandaq/internal/datagen"
	"semandaq/internal/monitor"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// RunS1 measures the constraint engine's satisfiability check over growing
// CFD sets, mixing chained constant rules with variable patterns, plus an
// adversarial family whose chase must detect a clash.
func RunS1(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "S1", "consistency (satisfiability) checking cost")
	sizes := []int{4, 16, 64, 256}
	if quick {
		sizes = []int{4, 16, 64}
	}
	sc := datagen.Schema()
	fmt.Fprintf(w, "%8s %12s %12s %14s\n", "cfds", "sat_ms", "verdict", "unsat_ms")
	for _, k := range sizes {
		// Satisfiable family: chained constant CFDs over fresh values plus
		// variable patterns.
		var sat []*cfd.CFD
		for i := 0; i < k; i++ {
			switch i % 3 {
			case 0:
				sat = append(sat, cfd.New(fmt.Sprintf("c%d", i), "customer",
					[]string{"CC"}, []string{"CNT"},
					cfd.PatternTuple{
						LHS: []cfd.PatternValue{cfd.Constant(types.NewInt(int64(100 + i)))},
						RHS: []cfd.PatternValue{cfd.ConstStr(fmt.Sprintf("country%d", i))},
					}))
			case 1:
				sat = append(sat, cfd.New(fmt.Sprintf("c%d", i), "customer",
					[]string{"CNT"}, []string{"CITY"},
					cfd.PatternTuple{
						LHS: []cfd.PatternValue{cfd.ConstStr(fmt.Sprintf("country%d", i-1))},
						RHS: []cfd.PatternValue{cfd.ConstStr(fmt.Sprintf("city%d", i))},
					}))
			default:
				sat = append(sat, cfd.NewFD(fmt.Sprintf("c%d", i), "customer",
					[]string{"CNT", "ZIP"}, []string{"CITY"}))
			}
		}
		var rep *consistency.Report
		satTime, err := timed(func() error {
			var err error
			rep, err = consistency.Check(sc, sat, nil)
			return err
		})
		if err != nil {
			return err
		}
		verdict := "sat"
		if !rep.Satisfiable {
			verdict = "UNSAT?!"
		}

		// Unsatisfiable family: the same set plus a wildcard clash that the
		// chase must find.
		unsat := append(append([]*cfd.CFD{}, sat...),
			cfd.New("x1", "customer", []string{"NAME"}, []string{"CNT"},
				cfd.PatternTuple{LHS: []cfd.PatternValue{cfd.Wild},
					RHS: []cfd.PatternValue{cfd.ConstStr("A")}}),
			cfd.New("x2", "customer", []string{"NAME"}, []string{"CNT"},
				cfd.PatternTuple{LHS: []cfd.PatternValue{cfd.Wild},
					RHS: []cfd.PatternValue{cfd.ConstStr("B")}}))
		var urep *consistency.Report
		unsatTime, err := timed(func() error {
			var err error
			urep, err = consistency.Check(sc, unsat, nil)
			return err
		})
		if err != nil {
			return err
		}
		if urep.Satisfiable {
			return fmt.Errorf("S1: clash not detected at k=%d", k)
		}
		fmt.Fprintf(w, "%8d %12s %12s %14s\n", k, ms(satTime), verdict, ms(unsatTime))
	}
	return nil
}

// RunM1 drives the data monitor with a sustained mixed update stream over a
// cleansed table and reports the quality trajectory: in cleansed mode the
// monitor must keep the table at zero violations throughout.
func RunM1(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "M1", "data monitor under a sustained update stream")
	n, updates := 20000, 2000
	if quick {
		n, updates = 2000, 300
	}
	cfds := datagen.StandardCFDs()
	base := datagen.Generate(datagen.Config{Tuples: n, Seed: 41})
	tab := base.Clean.Clone()
	m, err := monitor.New(tab, cfds, true)
	if err != nil {
		return err
	}
	dirtySrc := datagen.Generate(datagen.Config{Tuples: updates, Seed: 43, NoiseRate: 0.30})
	dirtyRows := dirtySrc.Dirty.Snapshot().Rows()

	rng := rand.New(rand.NewSource(5))
	attrs := []string{"STR", "CNT", "CITY", "AC"}
	totalRepairs := 0
	checkpoints := updates / 5

	// live tracks the IDs still present so the stream never targets a
	// tuple deleted earlier in the same batch. The stream mutates the
	// slice, so it copies out of the snapshot's frozen backing storage.
	live := append([]relstore.TupleID(nil), tab.Snapshot().IDs()...)

	fmt.Fprintf(w, "%10s %10s %10s %12s\n", "updates", "dirty", "repairs", "tuples")
	start := 0
	for start < updates {
		end := start + checkpoints
		if end > updates {
			end = updates
		}
		var batch []monitor.Update
		for i := start; i < end; i++ {
			switch rng.Intn(4) {
			case 0, 1: // dirty insert
				batch = append(batch, monitor.Update{Op: monitor.OpInsert, Row: dirtyRows[i]})
			case 2: // random cell corruption on an existing tuple
				id := live[rng.Intn(len(live))]
				attr := attrs[rng.Intn(len(attrs))]
				batch = append(batch, monitor.Update{
					Op: monitor.OpSet, ID: id, Attr: attr,
					Value: types.NewString(fmt.Sprintf("noise%d", i)),
				})
			default: // delete, removing the ID from the live pool
				idx := rng.Intn(len(live))
				batch = append(batch, monitor.Update{Op: monitor.OpDelete, ID: live[idx]})
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		res, err := m.Apply(batch)
		if err != nil {
			return err
		}
		totalRepairs += len(res.Repairs)
		live = append(live[:0], tab.Snapshot().IDs()...)
		fmt.Fprintf(w, "%10d %10d %10d %12d\n", end, res.Dirty, totalRepairs, tab.Len())
		if res.Dirty != 0 {
			return fmt.Errorf("M1: monitor let quality degrade: %d dirty after %d updates", res.Dirty, end)
		}
		start = end
	}
	fmt.Fprintf(w, "stream complete: %d updates, %d incremental repairs, table stayed clean\n",
		updates, totalRepairs)
	return nil
}

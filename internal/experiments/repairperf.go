package experiments

import (
	"context"
	"fmt"
	"io"

	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
)

// RunR1 measures repair quality against the injected-error ground truth as
// the noise rate grows — the shape of the VLDB 2007 paper's accuracy
// experiments. Expected: precision/recall well above chance, graceful
// degradation, and zero violations in every repaired instance.
func RunR1(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "R1", "repair quality vs noise rate")
	n := 10000
	if quick {
		n = 1500
	}
	cfds := datagen.StandardCFDs()
	rates := []float64{0.01, 0.02, 0.05, 0.08, 0.10}
	fmt.Fprintf(w, "%8s %8s %10s %8s %8s %8s %10s %10s\n",
		"noise", "errors", "mods", "prec", "recall", "F1", "repair_ms", "clean")
	for _, rate := range rates {
		ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 21, NoiseRate: rate})
		var res *repair.Result
		dur, err := timed(func() error {
			var err error
			res, err = repair.NewRepairer().Repair(ctx, ds.Dirty, cfds)
			return err
		})
		if err != nil {
			return err
		}
		score := ds.ScoreRepairCells(res.Repaired, res.ModifiedCells())
		rep, err := detect.NativeDetector{}.Detect(ctx, res.Repaired, cfds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%7.0f%% %8d %10d %8.3f %8.3f %8.3f %10s %10v\n",
			rate*100, len(ds.Corruptions), len(res.Modifications),
			score.Precision(), score.Recall(), score.F1(), ms(dur),
			len(rep.Violations) == 0)
	}
	return nil
}

// RunR2 measures repair scalability over growing data at fixed 5% noise.
func RunR2(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "R2", "repair scalability (5% noise)")
	sizes := []int{5000, 10000, 20000, 40000, 80000}
	if quick {
		sizes = []int{1000, 2000, 4000}
	}
	cfds := datagen.StandardCFDs()
	fmt.Fprintf(w, "%10s %12s %10s %8s %8s\n", "tuples", "repair_ms", "mods", "passes", "F1")
	for _, n := range sizes {
		ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 23, NoiseRate: 0.05})
		var res *repair.Result
		dur, err := timed(func() error {
			var err error
			res, err = repair.NewRepairer().Repair(ctx, ds.Dirty, cfds)
			return err
		})
		if err != nil {
			return err
		}
		score := ds.ScoreRepairCells(res.Repaired, res.ModifiedCells())
		fmt.Fprintf(w, "%10d %12s %10d %8d %8.3f\n",
			n, ms(dur), len(res.Modifications), res.Passes, score.F1())
	}
	return nil
}

// RunR3 compares IncRepair (repairing only the delta against a clean base)
// with re-running BatchRepair on base+delta — the VLDB 2007 incremental
// claim. Expected: incremental wins by a widening factor for small deltas.
func RunR3(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "R3", "incremental vs batch repair")
	n := 20000
	deltas := []int{10, 100, 500, 2000}
	if quick {
		n = 3000
		deltas = []int{10, 100, 300}
	}
	cfds := datagen.StandardCFDs()
	base := datagen.Generate(datagen.Config{Tuples: n, Seed: 31}) // clean base
	freshDirty := datagen.Generate(datagen.Config{Tuples: deltas[len(deltas)-1], Seed: 77, NoiseRate: 0.20})
	freshRows := freshDirty.Dirty.Snapshot().Rows()

	fmt.Fprintf(w, "%10s %14s %12s %10s %12s\n", "delta", "inc_ms", "batch_ms", "speedup", "dirty_after")
	for _, d := range deltas {
		// Incremental: tracker + IncRepair over only the new tuples.
		tab := base.Clean.Clone()
		tr, err := detect.NewTracker(tab, cfds)
		if err != nil {
			return err
		}
		var ids []relstore.TupleID
		incTime, err := timed(func() error {
			for i := 0; i < d; i++ {
				id, _, err := tr.Insert(freshRows[i])
				if err != nil {
					return err
				}
				ids = append(ids, id)
			}
			_, err := repair.NewIncRepairer().RepairDelta(tr, tab, cfds, ids)
			return err
		})
		if err != nil {
			return err
		}
		dirtyAfter := tr.DirtyCount()

		// Batch: rebuild base+delta and run full BatchRepair.
		tab2 := base.Clean.Clone()
		for i := 0; i < d; i++ {
			tab2.MustInsert(freshRows[i])
		}
		batchTime, err := timed(func() error {
			_, err := repair.NewRepairer().Repair(ctx, tab2, cfds)
			return err
		})
		if err != nil {
			return err
		}
		speedup := float64(batchTime) / float64(incTime)
		fmt.Fprintf(w, "%10d %14s %12s %9.1fx %12d\n", d, ms(incTime), ms(batchTime), speedup, dirtyAfter)
	}
	return nil
}

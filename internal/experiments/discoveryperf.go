package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/discovery"
	"semandaq/internal/relstore"
)

// RunD6 measures CFD discovery: the legacy row-store miner versus the
// snapshot-pinned PLI lattice miner, over growing clean reference data (the
// canonical discovery workload — rules are mined from trusted data) and
// growing lattice depth.
//
// Lattice timings are reported twice: cold includes building the snapshot's
// columnar dictionaries, probe vectors and PLIs (the first mine after a
// mutation pays it; each cold rep runs on a fresh table clone so the
// version cache cannot help), warm reuses the snapshot caches (every mine
// until the next mutation, and any mine after a detection pass already
// built the columnar view). Expected shape: the lattice miner wins by an
// order of magnitude or more even cold — the legacy miner re-derives
// string group keys per (attribute set, attribute) check, while the
// lattice walks integer partitions and prunes non-minimal candidates
// before checking them — and the gap widens with depth, because partition
// intersection reuses level ℓ work at level ℓ+1 where the legacy miner
// starts every check from the raw rows.
//
// Outputs are cross-checked per point: at MaxLHS <= 2 the two miners must
// be semantically identical; at MaxLHS 3 the lattice set must be a subset
// of the legacy set (the legacy miner's non-transitive pruning emits
// redundant rules there). The legacy miner is capped at legacyCap tuples
// for MaxLHS 3 — its cubic-ish growth would dominate the experiment's
// runtime without adding information.
func RunD6(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D6", "CFD discovery: legacy row-store miner vs PLI lattice miner")
	type point struct {
		tuples int
		maxLHS int
	}
	points := []point{
		{10000, 2}, {100000, 2}, {1000000, 2},
		{100000, 1}, {100000, 3}, {1000000, 3},
	}
	reps := 3
	legacyCap3 := 100000
	if quick {
		points = []point{{2000, 2}, {10000, 2}, {10000, 3}}
		reps = 1
		legacyCap3 = 10000
	}
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	workers := runtime.GOMAXPROCS(0)
	fmt.Fprintf(w, "workers=%d best-of=%d (clean reference data, default support)\n", workers, reps)
	fmt.Fprintf(w, "%10s %7s %11s %12s %12s %8s %8s %6s\n",
		"tuples", "maxLHS", "legacy_ms", "lat_cold_ms", "lat_warm_ms",
		"cold_x", "warm_x", "cfds")
	for _, pt := range points {
		skipLegacy := pt.maxLHS >= 3 && pt.tuples > legacyCap3
		if err := runD6Point(ctx, w, pt.tuples, pt.maxLHS, reps, skipLegacy); err != nil {
			return err
		}
	}
	return nil
}

// crossCheckMiners verifies the miners' outputs against each other: equal
// sets at maxLHS <= 2, lattice ⊆ legacy at deeper levels. The canonical
// rendering is the discovery package's own (discovery.CanonicalRules), so
// this check and the package's cross-check tests enforce one contract.
func crossCheckMiners(legacy, lattice []*cfd.CFD, maxLHS, n int) error {
	lc := discovery.CanonicalRules(legacy)
	nc := discovery.CanonicalRules(lattice)
	if maxLHS <= 2 {
		if len(lc) != len(nc) {
			return fmt.Errorf("D6: miners diverged at n=%d maxLHS=%d: %d legacy vs %d lattice patterns", n, maxLHS, len(lc), len(nc))
		}
		for i := range lc {
			if lc[i] != nc[i] {
				return fmt.Errorf("D6: miners diverged at n=%d maxLHS=%d: %q vs %q", n, maxLHS, lc[i], nc[i])
			}
		}
		return nil
	}
	inLegacy := make(map[string]bool, len(lc))
	for _, s := range lc {
		inLegacy[s] = true
	}
	for _, s := range nc {
		if !inLegacy[s] {
			return fmt.Errorf("D6: lattice rule missing from legacy set at n=%d maxLHS=%d: %s", n, maxLHS, s)
		}
	}
	return nil
}

// runD6Point measures both miners at one (size, maxLHS) workload point.
func runD6Point(ctx context.Context, w io.Writer, n, maxLHS, reps int, skipLegacy bool) error {
	ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 7})
	opts := discovery.Options{MaxLHS: maxLHS}

	// measure times run over reps (minimum wins). setup, run untimed before
	// each rep, provides the table — the cold path clones there so the
	// deep copy stays outside the figure, matching DiscoverBench's
	// definition of "cold" (snapshot + PLI build + mine, no clone).
	measure := func(setup func() *relstore.Table, run func(tab *relstore.Table) ([]*cfd.CFD, error)) (float64, []*cfd.CFD, error) {
		best := math.Inf(1)
		var out []*cfd.CFD
		for i := 0; i < reps; i++ {
			tab := ds.Clean
			if setup != nil {
				tab = setup()
			}
			runtime.GC()
			var cfds []*cfd.CFD
			dur, err := timed(func() error {
				var err error
				cfds, err = run(tab)
				return err
			})
			if err != nil {
				return 0, nil, err
			}
			out = cfds
			best = math.Min(best, float64(dur.Microseconds())/1000)
		}
		return best, out, nil
	}

	mine := func(tab *relstore.Table) ([]*cfd.CFD, error) {
		rep, err := discovery.Mine(ctx, tab.Snapshot(), opts)
		if err != nil {
			return nil, err
		}
		return rep.CFDs, nil
	}

	legacyMS := math.NaN()
	var legacyCFDs []*cfd.CFD
	if !skipLegacy {
		var err error
		legacyMS, legacyCFDs, err = measure(nil, func(tab *relstore.Table) ([]*cfd.CFD, error) {
			return discovery.LegacyDiscover(tab, opts)
		})
		if err != nil {
			return fmt.Errorf("D6: legacy at n=%d maxLHS=%d: %w", n, maxLHS, err)
		}
	}
	// Cold: a fresh (untimed) clone per rep, so the timed run rebuilds the
	// snapshot, columnar view and PLIs from scratch.
	coldMS, _, err := measure(func() *relstore.Table { return ds.Clean.Clone() }, mine)
	if err != nil {
		return fmt.Errorf("D6: lattice cold at n=%d maxLHS=%d: %w", n, maxLHS, err)
	}
	if _, err := mine(ds.Clean); err != nil { // ensure the warm path is warm
		return err
	}
	warmMS, latticeCFDs, err := measure(nil, mine)
	if err != nil {
		return fmt.Errorf("D6: lattice warm at n=%d maxLHS=%d: %w", n, maxLHS, err)
	}
	if !skipLegacy {
		if err := crossCheckMiners(legacyCFDs, latticeCFDs, maxLHS, n); err != nil {
			return err
		}
	}
	legacyCol, coldX, warmX := "-", "-", "-"
	if !skipLegacy {
		legacyCol = fmt.Sprintf("%.2f", legacyMS)
		coldX = fmt.Sprintf("%.1fx", legacyMS/coldMS)
		warmX = fmt.Sprintf("%.1fx", legacyMS/warmMS)
	}
	fmt.Fprintf(w, "%10d %7d %11s %12.2f %12.2f %8s %8s %6d\n",
		n, maxLHS, legacyCol, coldMS, warmMS, coldX, warmX, len(latticeCFDs))
	return nil
}

// ---------------------------------------------------------------------------
// Machine-readable discovery benchmarks: cmd/semandaq-bench -discoverjson
// writes the report to BENCH_discover.json so successive PRs accumulate a
// discovery performance trajectory next to BENCH_detect.json.

// DiscoverBenchSchema versions the JSON layout.
const DiscoverBenchSchema = "semandaq/bench-discover/v1"

// DiscoverBenchEntry is one (miner, size, maxLHS) measurement.
type DiscoverBenchEntry struct {
	Miner      string  `json:"miner"` // legacy | lattice-cold | lattice-warm
	Tuples     int     `json:"tuples"`
	MaxLHS     int     `json:"max_lhs"`
	Workers    int     `json:"workers,omitempty"`
	NsOp       int64   `json:"ns_op"`
	RowsPerSec float64 `json:"rows_per_sec"`
	CFDs       int     `json:"cfds"`
	Patterns   int     `json:"patterns"`
}

// DiscoverBenchReport is the full sweep: both miners over growing clean
// reference workloads and lattice depths, outputs cross-checked.
type DiscoverBenchReport struct {
	Schema      string               `json:"schema"`
	GeneratedAt string               `json:"generated_at"`
	GoVersion   string               `json:"go_version"`
	GoMaxProcs  int                  `json:"gomaxprocs"`
	Quick       bool                 `json:"quick"`
	Results     []DiscoverBenchEntry `json:"results"`
}

// DiscoverBench measures both miners at each (size, maxLHS) point and
// returns the report. The legacy miner is capped at MaxLHS 3 sizes above
// 100k (it is orders of magnitude slower and would dominate the sweep);
// per-point outputs are cross-checked, a mismatch fails the sweep.
func DiscoverBench(ctx context.Context, quick bool) (*DiscoverBenchReport, error) {
	type point struct {
		tuples int
		maxLHS int
	}
	points := []point{
		{10000, 1}, {10000, 2},
		{100000, 1}, {100000, 2}, {100000, 3},
		{1000000, 2}, {1000000, 3},
	}
	legacyCap3 := 100000
	if quick {
		points = []point{{2000, 2}, {10000, 2}, {10000, 3}}
		legacyCap3 = 10000
	}
	workers := runtime.GOMAXPROCS(0)
	rep := &DiscoverBenchReport{
		Schema:      DiscoverBenchSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  workers,
		Quick:       quick,
	}
	patternCount := func(cfds []*cfd.CFD) int {
		n := 0
		for _, c := range cfds {
			n += len(c.Tableau)
		}
		return n
	}
	for _, pt := range points {
		ds := datagen.Generate(datagen.Config{Tuples: pt.tuples, Seed: 7})
		opts := discovery.Options{MaxLHS: pt.maxLHS}
		add := func(miner string, workers int, dur time.Duration, cfds []*cfd.CFD) {
			rep.Results = append(rep.Results, DiscoverBenchEntry{
				Miner:      miner,
				Tuples:     pt.tuples,
				MaxLHS:     pt.maxLHS,
				Workers:    workers,
				NsOp:       dur.Nanoseconds(),
				RowsPerSec: float64(pt.tuples) / dur.Seconds(),
				CFDs:       len(cfds),
				Patterns:   patternCount(cfds),
			})
		}
		var legacyCFDs []*cfd.CFD
		skipLegacy := pt.maxLHS >= 3 && pt.tuples > legacyCap3
		if !skipLegacy {
			dur, err := timed(func() error {
				var err error
				legacyCFDs, err = discovery.LegacyDiscover(ds.Clean, opts)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench legacy n=%d lhs=%d: %w", pt.tuples, pt.maxLHS, err)
			}
			add("legacy", 0, dur, legacyCFDs)
		}
		var cold *relstore.Table
		var coldRep *discovery.Report
		cold = ds.Clean.Clone()
		dur, err := timed(func() error {
			var err error
			coldRep, err = discovery.Mine(ctx, cold.Snapshot(), opts)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench lattice-cold n=%d lhs=%d: %w", pt.tuples, pt.maxLHS, err)
		}
		add("lattice-cold", workers, dur, coldRep.CFDs)
		snap := ds.Clean.Snapshot()
		if _, err := discovery.Mine(ctx, snap, opts); err != nil {
			return nil, err
		}
		var warmRep *discovery.Report
		dur, err = timed(func() error {
			var err error
			warmRep, err = discovery.Mine(ctx, snap, opts)
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("bench lattice-warm n=%d lhs=%d: %w", pt.tuples, pt.maxLHS, err)
		}
		add("lattice-warm", workers, dur, warmRep.CFDs)
		if !skipLegacy {
			if err := crossCheckMiners(legacyCFDs, warmRep.CFDs, pt.maxLHS, pt.tuples); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// WriteDiscoverBenchJSON runs the sweep, writes the JSON report to path
// and prints a human-readable summary table to w.
func WriteDiscoverBenchJSON(ctx context.Context, path string, quick bool, w io.Writer) (*DiscoverBenchReport, error) {
	rep, err := DiscoverBench(ctx, quick)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "wrote %s (gomaxprocs=%d)\n", path, rep.GoMaxProcs)
	fmt.Fprintf(w, "%-14s %10s %7s %14s %14s %6s %9s\n",
		"miner", "tuples", "maxLHS", "ns_op", "rows_per_sec", "cfds", "patterns")
	for _, e := range rep.Results {
		fmt.Fprintf(w, "%-14s %10d %7d %14d %14.0f %6d %9d\n",
			e.Miner, e.Tuples, e.MaxLHS, e.NsOp, e.RowsPerSec, e.CFDs, e.Patterns)
	}
	return rep, nil
}

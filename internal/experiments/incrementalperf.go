package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// RunD7 costs the two ways of serving fresh artifacts after a burst of
// edits: a cold rebuild (batch snapshot + batch detection + cold mine) vs
// the incremental path (snapshot delta-patch + tracker report + session
// cache-refresh). Per the repo's 1-CPU rule the comparison is ops-counted,
// not wall-clocked: relstore's build counters (interned cells, patch ops,
// PLI builds vs patches) and runtime malloc deltas are the figure, so the
// O(delta) claim is machine-checkable — 100 edits on a 1M-tuple table must
// cost on the order of 100 cells of interning, not 7M.
//
// Both paths are cross-checked per point before the numbers are reported:
// the patched snapshot must be byte-identical to the rebuild
// (relstore.DiffSnapshots), the tracker report equivalent to batch
// detection, and the session's refreshed report equal to a cold mine.
func RunD7(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D7", "incremental serving: cold rebuild vs delta patch after an edit burst")
	tuples := 1000000
	if quick {
		tuples = 20000
	}
	const edits = 100
	fmt.Fprintf(w, "tuples=%d edits=%d (ops-counted per the 1-CPU rule; mallocs from runtime.ReadMemStats)\n", tuples, edits)
	fmt.Fprintf(w, "%6s %6s %13s %13s %12s %12s %11s %11s %10s\n",
		"noise", "path", "interned", "patched_ops", "pli_builds", "pli_patches",
		"mallocs", "va_reuse", "full/incr")
	for _, noise := range []float64{0, 0.02, 0.10} {
		p, err := runD7Point(ctx, tuples, edits, noise)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6.2f %6s %13d %13d %12d %12d %11d %11s %10s\n",
			noise, "cold", p.Cold.StoreOps.InternedCells, p.Cold.StoreOps.PatchedCells,
			p.Cold.StoreOps.PLIBuilds, p.Cold.StoreOps.PLIPatches, p.Cold.Mallocs, "-", "-")
		fmt.Fprintf(w, "%6.2f %6s %13d %13d %12d %12d %11d %5d/%-5d %6d/%-3d\n",
			noise, "incr", p.Incremental.StoreOps.InternedCells, p.Incremental.StoreOps.PatchedCells,
			p.Incremental.StoreOps.PLIBuilds, p.Incremental.StoreOps.PLIPatches, p.Incremental.Mallocs,
			p.Discovery.VAChecksReused, p.Discovery.VAChecksComputed,
			p.Discovery.FullRuns, p.Discovery.IncrementalRuns)
	}
	return nil
}

// IncrementalCost is one path's ops bill for refreshing every serving
// artifact after the edit burst.
type IncrementalCost struct {
	// StoreOps is the delta of relstore's build counters across the refresh.
	StoreOps relstore.BuildOps `json:"store_ops"`
	// Mallocs is the heap-allocation count across the refresh.
	Mallocs uint64 `json:"mallocs"`
}

// IncrementalBenchEntry is one (tuples, noise) measurement.
type IncrementalBenchEntry struct {
	Tuples      int                    `json:"tuples"`
	NoiseRate   float64                `json:"noise_rate"`
	Edits       int                    `json:"edits"`
	Cold        IncrementalCost        `json:"cold"`
	Incremental IncrementalCost        `json:"incremental"`
	Discovery   discovery.SessionStats `json:"discovery"`
}

// runD7Point builds the workload at one noise rate, warms the incremental
// stack, applies the edit burst, then bills the incremental refresh and the
// cold rebuild separately — cross-checking that both produce identical
// artifacts.
func runD7Point(ctx context.Context, tuples, edits int, noise float64) (*IncrementalBenchEntry, error) {
	ds := datagen.Generate(datagen.Config{Tuples: tuples, Seed: 7, NoiseRate: noise})
	tab := ds.Dirty
	cfds := datagen.StandardCFDs()
	opts := discovery.Options{MaxLHS: 2, Workers: runtime.GOMAXPROCS(0)}

	tr, err := detect.NewTracker(tab, cfds)
	if err != nil {
		return nil, fmt.Errorf("D7: tracker: %w", err)
	}
	sess := discovery.NewSession(tab)

	// Warm serving state at the pre-edit version: the snapshot's columnar
	// artifacts exist (built by the first mine) and the session holds a
	// report to refresh from. This is the steady state the incremental path
	// is designed for — the first request after a restart always pays the
	// batch build.
	if _, err := sess.Discover(ctx, opts); err != nil {
		return nil, fmt.Errorf("D7: warm mine: %w", err)
	}

	// The edit burst: cell rewrites routed through the tracker, which
	// maintains violations per edit and logs column deltas for the patcher.
	rng := rand.New(rand.NewSource(11))
	cities := []string{"Edinburgh", "London", "New York", "Chicago"}
	ids := tab.Snapshot().IDs()
	for i := 0; i < edits; i++ {
		id := ids[rng.Intn(len(ids))]
		if _, err := tr.SetCell(id, "CITY", types.NewString(cities[rng.Intn(len(cities))])); err != nil {
			return nil, fmt.Errorf("D7: edit %d: %w", i, err)
		}
	}

	bill := func(f func() error) (IncrementalCost, error) {
		var m0, m1 runtime.MemStats
		before := relstore.ReadBuildOps()
		runtime.ReadMemStats(&m0)
		if err := f(); err != nil {
			return IncrementalCost{}, err
		}
		runtime.ReadMemStats(&m1)
		return IncrementalCost{
			StoreOps: relstore.ReadBuildOps().Sub(before),
			Mallocs:  m1.Mallocs - m0.Mallocs,
		}, nil
	}

	// Incremental refresh: patch the snapshot from the pre-edit version's
	// caches, materialize the tracker's maintained report, cache-refresh the
	// discovery session.
	var snap *relstore.Snapshot
	var incDet *detect.Report
	var incMine *discovery.Report
	inc, err := bill(func() error {
		snap = tab.Snapshot()
		incDet = tr.Report()
		var err error
		incMine, err = sess.Discover(ctx, opts)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("D7: incremental refresh: %w", err)
	}
	stats := sess.LastStats()

	// Cold rebuild of the same three artifacts from the raw rows.
	var rebuilt *relstore.Snapshot
	var coldDet *detect.Report
	var coldMine *discovery.Report
	cold, err := bill(func() error {
		rebuilt = tab.RebuildSnapshot()
		var err error
		if coldDet, err = (detect.ColumnarDetector{}).DetectSnapshot(ctx, rebuilt, cfds); err != nil {
			return err
		}
		coldMine, err = discovery.Mine(ctx, rebuilt, opts)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("D7: cold rebuild: %w", err)
	}

	// Identity cross-checks: the billed paths must have produced the same
	// artifacts, or the comparison is meaningless.
	if err := relstore.DiffSnapshots(snap, rebuilt); err != nil {
		return nil, fmt.Errorf("D7: patched snapshot != rebuild at noise %v: %w", noise, err)
	}
	if err := detect.Equivalent(coldDet, incDet); err != nil {
		return nil, fmt.Errorf("D7: tracker report != batch detection at noise %v: %w", noise, err)
	}
	if len(incMine.CFDs) != len(coldMine.CFDs) || len(incMine.Candidates) != len(coldMine.Candidates) {
		return nil, fmt.Errorf("D7: session mine (%d/%d) != cold mine (%d/%d) at noise %v",
			len(incMine.Candidates), len(incMine.CFDs), len(coldMine.Candidates), len(coldMine.CFDs), noise)
	}
	// The O(delta) claim itself, as a hard gate: the incremental path's
	// interning bill must be a small multiple of the edit count, nowhere
	// near the table-sized bill of the cold path.
	if inc.StoreOps.InternedCells*10 > cold.StoreOps.InternedCells {
		return nil, fmt.Errorf("D7: incremental path interned %d cells vs %d cold — not O(delta)",
			inc.StoreOps.InternedCells, cold.StoreOps.InternedCells)
	}
	if stats.IncrementalRuns == 0 {
		return nil, fmt.Errorf("D7: discovery session fell back to a full mine (stats %+v)", stats)
	}
	return &IncrementalBenchEntry{
		Tuples:      tuples,
		NoiseRate:   noise,
		Edits:       edits,
		Cold:        cold,
		Incremental: inc,
		Discovery:   stats,
	}, nil
}

// ---------------------------------------------------------------------------
// Machine-readable incremental benchmarks: cmd/semandaq-bench -incrjson
// writes the report to BENCH_incremental.json so successive PRs accumulate
// an ops trajectory for the O(delta) serving path next to BENCH_detect.json
// and BENCH_discover.json.

// IncrementalBenchSchema versions the JSON layout.
const IncrementalBenchSchema = "semandaq/bench-incremental/v1"

// IncrementalBenchReport is the full sweep: cold vs incremental refresh
// bills across noise rates, with the discovery session's reuse counters.
type IncrementalBenchReport struct {
	Schema      string                  `json:"schema"`
	GeneratedAt string                  `json:"generated_at"`
	GoVersion   string                  `json:"go_version"`
	GoMaxProcs  int                     `json:"gomaxprocs"`
	Quick       bool                    `json:"quick"`
	Results     []IncrementalBenchEntry `json:"results"`
}

// IncrementalBench measures the D7 points and returns the report.
func IncrementalBench(ctx context.Context, quick bool) (*IncrementalBenchReport, error) {
	tuples := 1000000
	if quick {
		tuples = 20000
	}
	rep := &IncrementalBenchReport{
		Schema:      IncrementalBenchSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Quick:       quick,
	}
	for _, noise := range []float64{0, 0.02, 0.10} {
		p, err := runD7Point(ctx, tuples, 100, noise)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, *p)
	}
	return rep, nil
}

// WriteIncrementalBenchJSON runs the sweep, writes the JSON report to path
// and prints a human-readable summary table to w.
func WriteIncrementalBenchJSON(ctx context.Context, path string, quick bool, w io.Writer) (*IncrementalBenchReport, error) {
	rep, err := IncrementalBench(ctx, quick)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "wrote %s (gomaxprocs=%d)\n", path, rep.GoMaxProcs)
	fmt.Fprintf(w, "%8s %6s %6s %15s %15s %13s %13s\n",
		"tuples", "noise", "edits", "interned_incr", "interned_cold", "mallocs_incr", "mallocs_cold")
	for _, e := range rep.Results {
		fmt.Fprintf(w, "%8d %6.2f %6d %15d %15d %13d %13d\n",
			e.Tuples, e.NoiseRate, e.Edits,
			e.Incremental.StoreOps.InternedCells, e.Cold.StoreOps.InternedCells,
			e.Incremental.Mallocs, e.Cold.Mallocs)
	}
	return rep, nil
}

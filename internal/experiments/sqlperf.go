package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"semandaq/internal/datagen"
	"semandaq/internal/relstore"
	"semandaq/internal/sqleng"
)

// RunD8 compares the streaming SQL executor against the legacy
// materialize-everything row-scan path on the workloads the detector
// actually issues: a code-filtered scan feeding an aggregate, a GROUP BY,
// and a PLI self-join. Per the repo's 1-CPU rule the headline figure is
// ops-counted — heap allocations from runtime.ReadMemStats across each
// run — with wall time reported for context only.
//
// Three properties are hard gates, not observations:
//
//  1. identity: where both paths run, their Results are deeply equal;
//  2. the streaming path never allocates more than the legacy path;
//  3. the self-join at the largest size stays under n/10 allocations —
//     the pipeline streams the (much larger) join without materializing
//     any intermediate row set.
func RunD8(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D8", "streaming SQL executor vs legacy materializing path (ops-counted)")
	sizes := []int{10000, 100000, 1000000}
	if quick {
		sizes = []int{2000, 10000}
	}
	fmt.Fprintf(w, "%-12s %9s %14s %14s %12s %12s %7s\n",
		"query", "tuples", "mallocs_strm", "mallocs_legacy", "ns_strm", "ns_legacy", "ratio")
	for _, n := range sizes {
		entries, err := runD8Point(ctx, n, n == sizes[len(sizes)-1])
		if err != nil {
			return err
		}
		for _, e := range entries {
			legacyM, legacyNs, ratio := "-", "-", "-"
			if e.Legacy != nil {
				legacyM = fmt.Sprintf("%d", e.Legacy.Mallocs)
				legacyNs = fmt.Sprintf("%d", e.Legacy.NsOp)
				if e.Streaming.Mallocs > 0 {
					ratio = fmt.Sprintf("%.1fx", float64(e.Legacy.Mallocs)/float64(e.Streaming.Mallocs))
				}
			}
			fmt.Fprintf(w, "%-12s %9d %14d %14s %12d %12s %7s\n",
				e.Query, e.Tuples, e.Streaming.Mallocs, legacyM, e.Streaming.NsOp, legacyNs, ratio)
		}
	}
	return nil
}

// SQLStreamCost is one executor's bill for one query.
type SQLStreamCost struct {
	// Mallocs is the heap-allocation count across the query (the 1-CPU
	// ops figure).
	Mallocs uint64 `json:"mallocs"`
	// NsOp is wall time, reported for context only.
	NsOp int64 `json:"ns_op"`
	// Rows is the output row count, as a sanity anchor.
	Rows int `json:"rows"`
}

// SQLStreamEntry is one (query, size) comparison. Legacy is nil where the
// materializing path was capped (the self-join result it would build is
// quadratic in the class size).
type SQLStreamEntry struct {
	Query     string         `json:"query"`
	Tuples    int            `json:"tuples"`
	SQL       string         `json:"sql"`
	Streaming SQLStreamCost  `json:"streaming"`
	Legacy    *SQLStreamCost `json:"legacy,omitempty"`
}

// d8Queries are the workload shapes, over the datagen customer relation.
var d8Queries = []struct {
	name string
	sql  string
	// legacyCap caps the sizes the materializing path is asked to run at
	// (0 = no cap). The self-join's intermediate result is ~4n rows; the
	// legacy path materializes all of them.
	legacyCap int
}{
	{"filter-count", "SELECT COUNT(*) FROM customer WHERE CNT = 'UK' AND CITY = 'Edinburgh'", 0},
	{"group-city", "SELECT CITY, COUNT(*) AS n FROM customer GROUP BY CITY", 0},
	{"self-join", "SELECT COUNT(*) FROM customer t1, customer t2 WHERE t1.ZIP = t2.ZIP", 100000},
}

// runD8Point measures every D8 query at one size. maxSize additionally
// arms the constant-memory gate on the self-join.
func runD8Point(ctx context.Context, n int, maxSize bool) ([]SQLStreamEntry, error) {
	ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 7, NoiseRate: 0.05})
	store := relstore.NewStore()
	store.Put(ds.Dirty)
	// Force the columnar artifacts once so neither path is billed for the
	// one-time dictionary/PLI build.
	ds.Dirty.Snapshot().Columnar()

	bill := func(eng *sqleng.Engine, sql string) (SQLStreamCost, *sqleng.Result, error) {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		res, err := eng.QueryContext(ctx, sql)
		dur := time.Since(t0)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return SQLStreamCost{}, nil, err
		}
		return SQLStreamCost{
			Mallocs: m1.Mallocs - m0.Mallocs,
			NsOp:    dur.Nanoseconds(),
			Rows:    len(res.Rows),
		}, res, nil
	}

	var out []SQLStreamEntry
	for _, q := range d8Queries {
		stream := sqleng.New(store)
		legacy := sqleng.New(store)
		legacy.SetColumnarScan(false)

		sc, sres, err := bill(stream, q.sql)
		if err != nil {
			return nil, fmt.Errorf("D8 %s n=%d streaming: %w", q.name, n, err)
		}
		e := SQLStreamEntry{Query: q.name, Tuples: n, SQL: q.sql, Streaming: sc}
		if q.legacyCap == 0 || n <= q.legacyCap {
			lc, lres, err := bill(legacy, q.sql)
			if err != nil {
				return nil, fmt.Errorf("D8 %s n=%d legacy: %w", q.name, n, err)
			}
			// Identity gate: the byte-identity contract, checked on the
			// exact workload being billed.
			if !reflect.DeepEqual(sres, lres) {
				return nil, fmt.Errorf("D8 %s n=%d: streaming and legacy results diverged", q.name, n)
			}
			// Allocation gate: lazy evaluation must never cost more heap
			// than materialization.
			if sc.Mallocs > lc.Mallocs {
				return nil, fmt.Errorf("D8 %s n=%d: streaming allocated more than legacy (%d > %d)",
					q.name, n, sc.Mallocs, lc.Mallocs)
			}
			e.Legacy = &lc
		}
		// Constant-intermediate-memory gate: at the top size the self-join
		// streams ~4n pairs through the aggregate; its allocation bill must
		// stay far below the row count, let alone the pair count.
		if q.name == "self-join" && maxSize && sc.Mallocs >= uint64(n/10) {
			return nil, fmt.Errorf("D8 self-join n=%d: %d mallocs, want < %d — intermediate state is not constant",
				n, sc.Mallocs, n/10)
		}
		out = append(out, e)
	}
	return out, nil
}

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"time"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/fdset"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/sqleng"
	"semandaq/internal/types"
)

// RunD9 costs the three FD-aware factorised paths against their exploded
// or FD-blind counterparts, ops-counted per the 1-CPU rule:
//
//   - closure-pruned discovery vs a DisableClosure mine of the same data:
//     partitions collapsed instead of intersected, with the reports held
//     DeepEqual (pruning may only skip work, never change output);
//   - the factorised violation report vs the exploded one on a single
//     giant dirty group: per-run allocation bills as the group grows 10x;
//   - an FD-collapsed composite join vs the hash join the planner builds
//     without registered FDs: lead-class expansions vs hash build rows.
//
// Each section carries its acceptance gate inline: closure pruning must
// strictly reduce intersections on every dataset, the factorised report's
// allocations must stay flat across the 10x group growth, and the
// collapsed join's builds must stay within the lead column's class count
// with zero hash build rows.
func RunD9(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D9", "FD-aware factorised evaluation: closure pruning, factorised reports, collapsed joins")
	rep, err := FactorisedBench(ctx, quick)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "closure-pruned discovery (partitions; pruned mine vs DisableClosure mine)\n")
	fmt.Fprintf(w, "%16s %9s %12s %12s %10s %10s %10s\n",
		"dataset", "tuples", "isect_prune", "isect_flat", "collapsed", "derived", "va_checks")
	for _, e := range rep.Closure {
		fmt.Fprintf(w, "%16s %9d %12d %12d %10d %10d %10d\n",
			e.Dataset, e.Tuples, e.Pruned.PartitionsIntersected, e.Flat.PartitionsIntersected,
			e.Pruned.PartitionsCollapsed, e.Pruned.VerdictsDerived, e.Pruned.VAChecksComputed)
	}
	fmt.Fprintf(w, "factorised violation report (allocs/run on one dirty group, warm snapshot)\n")
	fmt.Fprintf(w, "%12s %15s %17s\n", "group_rows", "factor_allocs", "exploded_allocs")
	for _, e := range rep.Factor {
		fmt.Fprintf(w, "%12d %15.0f %17.0f\n", e.GroupRows, e.FactorAllocs, e.ExplodedAllocs)
	}
	fmt.Fprintf(w, "FD-collapsed composite join (ops; registered FDs vs FD-blind hash join)\n")
	fmt.Fprintf(w, "%10s %8s %9s %12s %12s %12s %12s\n",
		"fact_rows", "classes", "dim_rows", "clps_builds", "clps_probes", "hash_rows", "hash_probes")
	for _, e := range rep.Joins {
		fmt.Fprintf(w, "%10d %8d %9d %12d %12d %12d %12d\n",
			e.FactRows, e.Classes, e.DimRows,
			e.Collapsed.CollapsedBuilds, e.Collapsed.CollapsedProbes,
			e.Hash.HashBuildRows, e.Hash.HashProbes)
	}
	return nil
}

// ClosurePruneEntry is one dataset's lattice bill, mined both ways.
type ClosurePruneEntry struct {
	Dataset string              `json:"dataset"`
	Tuples  int                 `json:"tuples"`
	Pruned  discovery.MineStats `json:"pruned"`
	Flat    discovery.MineStats `json:"flat"`
}

// FactorAllocEntry is the per-run allocation bill of reporting one dirty
// group of GroupRows members, factorised and exploded.
type FactorAllocEntry struct {
	GroupRows      int     `json:"group_rows"`
	FactorAllocs   float64 `json:"factor_allocs_per_run"`
	ExplodedAllocs float64 `json:"exploded_allocs_per_run"`
}

// FDJoinEntry is the ops bill of one composite equi-join, run with
// registered FDs (Collapsed) and without (Hash).
type FDJoinEntry struct {
	FactRows  int               `json:"fact_rows"`
	DimRows   int               `json:"dim_rows"`
	Classes   int               `json:"classes"`
	Collapsed sqleng.OpCounters `json:"collapsed"`
	Hash      sqleng.OpCounters `json:"hash"`
}

// runD9Closure mines tab with and without closure pruning and gates the
// pruning claim: strictly fewer intersections, every skipped intersection
// accounted for as a collapse, and a byte-identical report.
func runD9Closure(ctx context.Context, dataset string, tab *relstore.Table, opts discovery.Options) (*ClosurePruneEntry, error) {
	pruned, ps, err := discovery.MineWithStats(ctx, tab.Snapshot(), opts)
	if err != nil {
		return nil, fmt.Errorf("D9 %s: pruned mine: %w", dataset, err)
	}
	off := opts
	off.DisableClosure = true
	flat, fs, err := discovery.MineWithStats(ctx, tab.RebuildSnapshot(), off)
	if err != nil {
		return nil, fmt.Errorf("D9 %s: flat mine: %w", dataset, err)
	}
	// Options are echoed in the report; align the flag before comparing.
	flat.Options.DisableClosure = false
	if !reflect.DeepEqual(pruned, flat) {
		return nil, fmt.Errorf("D9 %s: closure pruning changed the report", dataset)
	}
	if ps.PartitionsCollapsed == 0 {
		return nil, fmt.Errorf("D9 %s: no partition collapsed — pruning never fired (%+v)", dataset, ps)
	}
	if fs.PartitionsCollapsed != 0 {
		return nil, fmt.Errorf("D9 %s: DisableClosure still collapsed partitions (%+v)", dataset, fs)
	}
	if ps.PartitionsIntersected >= fs.PartitionsIntersected {
		return nil, fmt.Errorf("D9 %s: pruned mine intersected %d partitions, flat mine %d — no reduction",
			dataset, ps.PartitionsIntersected, fs.PartitionsIntersected)
	}
	if ps.PartitionsIntersected+ps.PartitionsCollapsed != fs.PartitionsIntersected {
		return nil, fmt.Errorf("D9 %s: work accounting off: %d intersected + %d collapsed != flat %d",
			dataset, ps.PartitionsIntersected, ps.PartitionsCollapsed, fs.PartitionsIntersected)
	}
	return &ClosurePruneEntry{Dataset: dataset, Tuples: tab.Len(), Pruned: ps, Flat: fs}, nil
}

// fdLatticeTable builds a table where A -> B holds exactly while C and D
// cycle with coprime periods so no other FD holds: the {A,B} node must
// collapse onto {A}'s partition.
func fdLatticeTable(n int) *relstore.Table {
	tab := relstore.NewTable(schema.New("r", "A", "B", "C", "D"))
	for i := 0; i < n; i++ {
		a := i % 4
		tab.MustInsert(relstore.Tuple{
			types.NewString(fmt.Sprintf("a%d", a)),
			types.NewString(fmt.Sprintf("b%d", a/2)),
			types.NewString(fmt.Sprintf("c%d", i%3)),
			types.NewString(fmt.Sprintf("d%d", i%5)),
		})
	}
	return tab
}

// giantGroupD9Table builds one all-rows LHS class disagreeing on two RHS
// values: the worst case for exploded reporting, the best for factorised.
func giantGroupD9Table(n int) *relstore.Table {
	tab := relstore.NewTable(schema.New("g", "K", "V"))
	for i := 0; i < n; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewString("k"),
			types.NewString(fmt.Sprintf("v%d", i%2)),
		})
	}
	return tab
}

// allocsPerRun bills f's steady-state heap allocations per run, after one
// warm run, pinned to one P like testing.AllocsPerRun.
func allocsPerRun(runs int, f func() error) (float64, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if err := f(); err != nil {
		return 0, err
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < runs; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(runs), nil
}

// runD9Factor bills factorised vs exploded reporting of one dirty group of
// n members over a warm snapshot.
func runD9Factor(ctx context.Context, n int) (*FactorAllocEntry, error) {
	cfds := []*cfd.CFD{cfd.NewFD("fd", "g", []string{"K"}, []string{"V"})}
	snap := giantGroupD9Table(n).Snapshot()
	var fr *detect.FactorReport
	factor, err := allocsPerRun(5, func() error {
		var err error
		fr, err = detect.DetectFactorised(ctx, snap, cfds)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("D9 factor n=%d: %w", n, err)
	}
	exploded, err := allocsPerRun(3, func() error {
		if rep := fr.Explode(); len(rep.Groups) != 1 {
			return fmt.Errorf("D9 factor n=%d: exploded to %d groups, want 1", n, len(rep.Groups))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &FactorAllocEntry{GroupRows: n, FactorAllocs: factor, ExplodedAllocs: exploded}, nil
}

// runD9Join builds a fact table of n rows referencing a dim table whose
// DID is a key (so DID -> DNAME genuinely holds), then bills the composite
// join three ways: FD-collapsed, FD-blind hash, and the legacy
// materializing oracle for the identity check.
func runD9Join(ctx context.Context, n, classes int) (*FDJoinEntry, error) {
	store := relstore.NewStore()
	dim, err := store.Create(schema.New("dim", "DID", "DNAME", "CITY"))
	if err != nil {
		return nil, err
	}
	for i := 0; i < classes; i++ {
		dim.MustInsert(relstore.Tuple{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("d%d", i)),
			types.NewString(fmt.Sprintf("city%d", i%7)),
		})
	}
	fact, err := store.Create(schema.New("fact", "FID", "DID", "DNAME"))
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		fact.MustInsert(relstore.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % classes)),
			types.NewString(fmt.Sprintf("d%d", i%classes)),
		})
	}
	fds := fdset.New(3)
	fds.Add([]int{0}, 1)

	const q = `SELECT d.CITY, COUNT(*) AS n FROM fact f, dim d
		WHERE f.DID = d.DID AND f.DNAME = d.DNAME GROUP BY d.CITY ORDER BY d.CITY`

	collapsedEng := sqleng.New(store)
	collapsedEng.RegisterFDs("dim", fds)
	cres, err := collapsedEng.QueryContext(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("D9 join n=%d: collapsed: %w", n, err)
	}
	cops := collapsedEng.OpStats()

	hashEng := sqleng.New(store)
	hres, err := hashEng.QueryContext(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("D9 join n=%d: hash: %w", n, err)
	}
	hops := hashEng.OpStats()

	legacy := sqleng.New(store)
	legacy.SetColumnarScan(false)
	lres, err := legacy.QueryContext(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("D9 join n=%d: legacy: %w", n, err)
	}
	if !reflect.DeepEqual(cres, lres) || !reflect.DeepEqual(hres, lres) {
		return nil, fmt.Errorf("D9 join n=%d: collapsed/hash/legacy results diverged", n)
	}
	// The perf claim as hard gates: the collapsed path expands each lead
	// class at most once (memoized), builds no hash index, and actually
	// ran collapsed — while the FD-blind plan pays a build per dim row.
	if cops.CollapsedBuilds == 0 || cops.CollapsedProbes == 0 {
		return nil, fmt.Errorf("D9 join n=%d: collapse never fired (%+v)", n, cops)
	}
	if cops.CollapsedBuilds > int64(classes) {
		return nil, fmt.Errorf("D9 join n=%d: %d collapsed builds exceed the %d lead classes",
			n, cops.CollapsedBuilds, classes)
	}
	if cops.HashBuildRows != 0 {
		return nil, fmt.Errorf("D9 join n=%d: collapsed path still built a hash index (%+v)", n, cops)
	}
	if hops.HashBuildRows < int64(classes) {
		return nil, fmt.Errorf("D9 join n=%d: FD-blind path built only %d hash rows over %d dim rows",
			n, hops.HashBuildRows, classes)
	}
	return &FDJoinEntry{FactRows: n, DimRows: classes, Classes: classes, Collapsed: cops, Hash: hops}, nil
}

// ---------------------------------------------------------------------------
// Machine-readable factorised benchmarks: cmd/semandaq-bench -factorjson
// writes the report to BENCH_factorised.json so successive PRs accumulate
// an ops trajectory for the FD-aware paths next to the other BENCH files.

// FactorisedBenchSchema versions the JSON layout.
const FactorisedBenchSchema = "semandaq/bench-factorised/v1"

// FactorisedBenchReport is the full D9 sweep.
type FactorisedBenchReport struct {
	Schema      string              `json:"schema"`
	GeneratedAt string              `json:"generated_at"`
	GoVersion   string              `json:"go_version"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	Quick       bool                `json:"quick"`
	Closure     []ClosurePruneEntry `json:"closure"`
	Factor      []FactorAllocEntry  `json:"factor_report"`
	Joins       []FDJoinEntry       `json:"fd_joins"`
}

// FactorisedBench measures the D9 points, enforcing every gate, and
// returns the report.
func FactorisedBench(ctx context.Context, quick bool) (*FactorisedBenchReport, error) {
	tuples := 1000000
	if quick {
		tuples = 20000
	}
	rep := &FactorisedBenchReport{
		Schema:      FactorisedBenchSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Quick:       quick,
	}

	// Closure pruning on two datasets at full size: the clean generated
	// customer relation (whose constant CFDs hold exactly) and the
	// synthetic lattice table built around one exact FD.
	customer := datagen.Generate(datagen.Config{Tuples: tuples, Seed: 7, NoiseRate: 0}).Dirty
	for _, pt := range []struct {
		name string
		tab  *relstore.Table
		opts discovery.Options
	}{
		{"customer-clean", customer, discovery.Options{MaxLHS: 2, Workers: runtime.GOMAXPROCS(0)}},
		{"fd-lattice", fdLatticeTable(tuples), discovery.Options{MinSupport: 2, MaxLHS: 2, Workers: runtime.GOMAXPROCS(0)}},
	} {
		e, err := runD9Closure(ctx, pt.name, pt.tab, pt.opts)
		if err != nil {
			return nil, err
		}
		rep.Closure = append(rep.Closure, *e)
	}

	// Factorised report allocations across a 10x group-size step, with
	// the sublinearity gate on the pair.
	small, err := runD9Factor(ctx, tuples/10)
	if err != nil {
		return nil, err
	}
	large, err := runD9Factor(ctx, tuples)
	if err != nil {
		return nil, err
	}
	rep.Factor = append(rep.Factor, *small, *large)
	if large.FactorAllocs > small.FactorAllocs+16 {
		return nil, fmt.Errorf("D9: factorised allocations scale with group size: %d rows -> %.0f allocs, %d rows -> %.0f",
			small.GroupRows, small.FactorAllocs, large.GroupRows, large.FactorAllocs)
	}

	// FD-collapsed join at full size over 1024 lead classes.
	j, err := runD9Join(ctx, tuples, 1024)
	if err != nil {
		return nil, err
	}
	rep.Joins = append(rep.Joins, *j)
	return rep, nil
}

// WriteFactorisedBenchJSON runs the sweep, writes the JSON report to path
// and prints a human-readable summary table to w.
func WriteFactorisedBenchJSON(ctx context.Context, path string, quick bool, w io.Writer) (*FactorisedBenchReport, error) {
	rep, err := FactorisedBench(ctx, quick)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "wrote %s (gomaxprocs=%d)\n", path, rep.GoMaxProcs)
	for _, e := range rep.Closure {
		fmt.Fprintf(w, "closure %-16s tuples=%d intersected %d -> %d (collapsed %d)\n",
			e.Dataset, e.Tuples, e.Flat.PartitionsIntersected, e.Pruned.PartitionsIntersected,
			e.Pruned.PartitionsCollapsed)
	}
	for _, e := range rep.Factor {
		fmt.Fprintf(w, "factor group_rows=%-8d factor=%.0f exploded=%.0f allocs/run\n",
			e.GroupRows, e.FactorAllocs, e.ExplodedAllocs)
	}
	for _, e := range rep.Joins {
		fmt.Fprintf(w, "fdjoin fact=%d classes=%d collapsed_builds=%d hash_rows(blind)=%d\n",
			e.FactRows, e.Classes, e.Collapsed.CollapsedBuilds, e.Hash.HashBuildRows)
	}
	return rep, nil
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"semandaq/internal/audit"
	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/explore"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// fig2Table builds the exact running example of the paper's Fig. 2: a
// customer table where the UK zip EH2 4SD carries three distinct streets.
func fig2Table() *relstore.Table {
	tab := relstore.NewTable(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
	rows := [][]string{
		{"Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Rick", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Nora", "UK", "Edinburgh", "EH2 4SD", "Crichton", "44", "131"},
		{"Olaf", "UK", "Edinburgh", "EH2 4SD", "Lauriston", "44", "131"},
		{"Ann", "UK", "London", "SW1A 1AA", "Downing", "44", "20"},
		{"Joe", "US", "New York", "01202", "Mtn Ave", "1", "908"},
	}
	for _, r := range rows {
		row := make(relstore.Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	return tab
}

func fig2CFDs() []*cfd.CFD {
	cfds, err := cfd.ParseSet(`
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi4@ customer: [CC=44] -> [CNT=UK]
`)
	if err != nil {
		panic(err)
	}
	return cfds
}

// RunF2 regenerates the Fig. 2 drill-down: select the FD, its pattern
// tuples, the matching LHS values, and the distinct RHS values for one
// group — each level annotated with violation counts, as in the demo.
func RunF2(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "F2", "data exploration drill-down (paper Fig. 2)")
	tab := fig2Table()
	cfds := fig2CFDs()
	rep, err := detect.NativeDetector{}.Detect(ctx, tab, cfds)
	if err != nil {
		return err
	}
	ex, err := explore.New(tab.Snapshot(), cfds, rep)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "\n[1] CFDs (embedded FDs):")
	for _, info := range ex.CFDs() {
		fmt.Fprintf(w, "    %-6s %-40s violations=%d\n", info.ID, info.FD, info.Violations)
	}

	fmt.Fprintln(w, "\n[2] pattern tuples of phi2:")
	pats, err := ex.Patterns("phi2")
	if err != nil {
		return err
	}
	for _, p := range pats {
		fmt.Fprintf(w, "    #%d %-20s matches=%d violations=%d\n",
			p.Index, p.Pattern, p.Matches, p.Violations)
	}

	fmt.Fprintln(w, "\n[3] distinct LHS values matching pattern (UK, _):")
	groups, err := ex.LHSGroups("phi2", 0)
	if err != nil {
		return err
	}
	for _, g := range groups {
		vals := make([]string, len(g.Values))
		for i, v := range g.Values {
			vals[i] = v.String()
		}
		fmt.Fprintf(w, "    [%s]  tuples=%d rhsValues=%d violations=%d\n",
			strings.Join(vals, ", "), g.Tuples, g.RHSValues, g.Violations)
	}

	fmt.Fprintln(w, "\n[4] distinct RHS (STR) values for [UK, EH2 4SD] — the paper's three streets:")
	lhs := []types.Value{types.NewString("UK"), types.NewString("EH2 4SD")}
	rhs, err := ex.RHSValues("phi2", 0, lhs)
	if err != nil {
		return err
	}
	for _, v := range rhs {
		marker := ""
		if v.Majority {
			marker = "  <- majority"
		}
		fmt.Fprintf(w, "    %-12s tuples=%d violations=%d%s\n", v.Value, v.Tuples, v.Violations, marker)
	}

	fmt.Fprintln(w, "\n[5] tuples holding RHS value Mayfield:")
	tuples, err := ex.Tuples("phi2", 0, lhs, types.NewString("Mayfield"))
	if err != nil {
		return err
	}
	for _, t := range tuples {
		fmt.Fprintf(w, "    t%d vio=%d %v\n", t.ID, t.Vio, t.Row)
	}

	fmt.Fprintln(w, "\n[reverse] CFDs relevant to tuple 0 (Mike):")
	rels, err := ex.ForTuple(0)
	if err != nil {
		return err
	}
	for _, r := range rels {
		fmt.Fprintf(w, "    %-6s pattern %s violated=%v\n", r.CFDID, r.Text, r.Violated)
	}
	return nil
}

// f3Workload is the shared 10k/5% workload of F3–F5.
func f3Workload(quick bool) (*datagen.Dataset, []*cfd.CFD) {
	n := 10000
	if quick {
		n = 1000
	}
	ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 42, NoiseRate: 0.05})
	return ds, datagen.StandardCFDs()
}

// RunF3 regenerates Fig. 3: SQL-based detection plus the tuple-level data
// quality map (vio(t) bucketed into color intensities).
func RunF3(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "F3", "error detection and data quality map (paper Fig. 3)")
	ds, cfds := f3Workload(quick)
	store := relstore.NewStore()
	store.Put(ds.Dirty)
	rep, err := detect.NewSQLDetector(store).Detect(ctx, ds.Dirty, cfds)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d tuples, %d injected errors -> %d dirty tuples, %d violation records\n",
		rep.TupleCount, len(ds.Corruptions), len(rep.Vio), rep.TotalViolations())
	fmt.Fprintln(w, "per CFD:")
	for _, id := range sortedCFDIDs(rep) {
		st := rep.PerCFD[id]
		fmt.Fprintf(w, "  %-12s single=%-5d multi=%-5d groups=%d\n", id, st.SingleTuple, st.MultiTuple, st.Groups)
	}
	ex, err := explore.New(ds.Dirty.Snapshot(), cfds, rep)
	if err != nil {
		return err
	}
	entries, hist := ex.QualityMap()
	fmt.Fprintf(w, "quality-map histogram (clean .. dirtiest): %v\n", hist)
	fmt.Fprintln(w, "first dirty rows of the map (darker = dirtier):")
	shades := []string{" ", "░", "▒", "▓", "█"}
	shown := 0
	for _, e := range entries {
		if e.Vio == 0 {
			continue
		}
		fmt.Fprintf(w, "  t%-6d %s vio=%d\n", e.ID, shades[e.Bucket], e.Vio)
		shown++
		if shown >= 10 {
			break
		}
	}
	return nil
}

func sortedCFDIDs(rep *detect.Report) []string {
	ids := make([]string, 0, len(rep.PerCFD))
	for id := range rep.PerCFD {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// RunF4 regenerates Fig. 4: the data quality report with the
// verified/probably/arguably clean bar chart and the violation pie chart.
func RunF4(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "F4", "data quality report (paper Fig. 4)")
	ds, cfds := f3Workload(quick)
	rep, err := detect.NativeDetector{}.Detect(ctx, ds.Dirty, cfds)
	if err != nil {
		return err
	}
	a, err := audit.Audit(ds.Dirty.Snapshot(), cfds, rep)
	if err != nil {
		return err
	}
	fmt.Fprint(w, a.Render())
	return nil
}

// RunF5 regenerates Fig. 5: the data cleansing review — the candidate
// repair with highlighted modifications and ranked alternatives, plus the
// incremental re-detection triggered by a user edit.
func RunF5(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "F5", "data cleansing review (paper Fig. 5)")
	ds, cfds := f3Workload(quick)
	res, err := repair.NewRepairer().Repair(ctx, ds.Dirty, cfds)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "candidate repair: %d modifications, cost %.2f, %d passes, converged=%v\n",
		len(res.Modifications), res.Cost, res.Passes, res.Converged)
	score := ds.ScoreRepairCells(res.Repaired, res.ModifiedCells())
	fmt.Fprintf(w, "quality vs ground truth: precision=%.3f recall=%.3f F1=%.3f\n",
		score.Precision(), score.Recall(), score.F1())
	fmt.Fprintln(w, "first modifications (red cells of Fig. 5), with ranked alternatives:")
	for i, m := range res.Modifications {
		if i >= 5 {
			break
		}
		fmt.Fprintf(w, "  t%d %s: %v -> %v   (%s; %s)\n", m.TupleID, m.Attr, m.Old, m.New, m.CFDID, m.Reason)
		for j, a := range m.Alternatives {
			if j >= 3 {
				break
			}
			fmt.Fprintf(w, "      alt %d: %v (cost %.2f)\n", j+1, a.Value, a.Cost)
		}
	}
	if len(res.Modifications) == 0 {
		return nil
	}

	// The review interaction: the user overrides one repaired value; a
	// background incremental detection immediately shows the conflicts the
	// change (re)introduces.
	m := res.Modifications[0]
	tr, err := detect.NewTracker(res.Repaired, cfds)
	if err != nil {
		return err
	}
	before := tr.DirtyCount()
	delta, err := tr.SetCell(m.TupleID, m.Attr, m.Old)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nuser reverts t%d.%s to %v: incremental re-detection flags %d tuple(s) (dirty %d -> %d)\n",
		m.TupleID, m.Attr, m.Old, len(delta.Changed), before, tr.DirtyCount())
	return nil
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("experiments = %d, want 20", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("F2"); !ok {
		t.Error("ByID(F2) missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
	if got := len(IDs()); got != 20 {
		t.Errorf("IDs = %d", got)
	}
}

// TestAllExperimentsRunQuick executes every experiment on the shrunk
// workload and sanity-checks the printed tables. This is the end-to-end
// test that every paper artifact can actually be regenerated.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	wants := map[string][]string{
		"F2": {"drill-down", "phi2", "(UK, _ || _)", "EH2 4SD", "Mayfield", "majority"},
		"F3": {"data quality map", "dirty tuples", "histogram", "phi"},
		"F4": {"Data quality report", "attribute-value quality", "violations per CFD"},
		"F5": {"candidate repair", "precision", "alt", "incremental re-detection"},
		"D1": {"tuples", "sql_ms", "native_ms", "ratio"},
		"D2": {"patterns", "queries"},
		"D3": {"delta", "incremental_ms", "speedup"},
		"D4": {"workers", "native_ms", "parallel_ms", "sql_ms", "speedup"},
		"D5": {"workers", "native_ms", "col_cold_ms", "col_warm_ms", "warm_x", "dirty"},
		"D7": {"interned", "pli_patches", "mallocs", "va_reuse", "cold", "incr"},
		"D8": {"mallocs_strm", "mallocs_legacy", "filter-count", "group-city", "self-join", "ratio"},
		"D9": {"isect_prune", "collapsed", "group_rows", "factor_allocs", "clps_builds", "hash_rows"},
		"R1": {"noise", "prec", "recall", "clean"},
		"R2": {"repair_ms", "passes"},
		"R3": {"inc_ms", "batch_ms", "dirty_after"},
		"S1": {"cfds", "sat_ms", "unsat_ms"},
		"M1": {"updates", "repairs", "stayed clean"},
		"A1": {"patterns", "merged_ms", "unmerged_ms"},
		"A2": {"variant", "full", "naive", "converged"},
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(t.Context(), &buf, true); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			for _, want := range wants[e.ID] {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q:\n%s", e.ID, want, out)
				}
			}
		})
	}
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
)

// RunD5 measures the columnar read path: the row-scanning native detector
// versus the sequential columnar detector versus the sharded
// parallel-columnar detector, over growing data up to 1M tuples.
//
// Columnar timings are reported twice: cold includes building the table's
// columnar snapshot (the first detection after a mutation pays it; each
// cold rep runs on a fresh table copy so the version cache cannot help),
// warm reuses the version-cached snapshot (every detection until the next
// mutation). Expected shape: columnar beats the row path even cold — the
// scan does integer code comparisons and packs fixed-width group keys,
// while the row path re-derives length-prefixed key strings per tuple per
// CFD — and parallel-columnar divides the warm scan by the effective core
// count.
//
// Two noise rates separate the two regimes. At 5% noise virtually every
// FD group contains a corrupted member (the [CC] -> [CNT] dependency has
// country-sized groups), so every tuple is dirty and both engines spend
// much of their time building the multi-million-record report — the
// columnar advantage is damped by shared output cost. At 0% noise the
// report is empty and the run is pure scan and group-build — the
// monitoring-clean-data steady state, and exactly the work the columnar
// layer accelerates.
//
// Methodology: at 1M tuples a detection report can hold millions of
// violation records, so a single timed run mostly measures where the GC
// heap ceiling happens to be. Each figure is the minimum of `reps` runs,
// with a forced GC before each and the collector's target ratio relaxed
// for the duration of the experiment.
func RunD5(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D5", "columnar detection: row vs columnar vs parallel-columnar")
	sizes := []int{10000, 100000, 1000000}
	noises := []float64{0.05, 0}
	reps := 3
	if quick {
		sizes = []int{2000, 10000}
		noises = []float64{0.05}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	workers := runtime.GOMAXPROCS(0)
	cfds := datagen.StandardCFDs()
	fmt.Fprintf(w, "workers=%d best-of=%d\n", workers, reps)
	fmt.Fprintf(w, "%10s %7s %10s %12s %12s %12s %7s %7s %7s %8s\n",
		"tuples", "noise", "native_ms", "col_cold_ms", "col_warm_ms", "parallel_ms",
		"cold_x", "warm_x", "par_x", "dirty")
	for _, size := range sizes {
		for _, noise := range noises {
			if err := runD5Point(ctx, w, size, noise, reps, cfds); err != nil {
				return err
			}
		}
	}
	return nil
}

// runD5Point measures all engines at one (size, noise) workload point.
func runD5Point(ctx context.Context, w io.Writer, n int, noise float64, reps int, cfds []*cfd.CFD) error {
	ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 7, NoiseRate: noise})

	// measure times det over reps runs (minimum wins), cross-checking
	// every report against the native baseline. setup, run untimed,
	// provides the table for each rep.
	var natRep *detect.Report
	measure := func(det detect.Detector, label string, setup func() *relstore.Table) (float64, int, error) {
		best := math.Inf(1)
		dirty := 0
		for i := 0; i < reps; i++ {
			tab := ds.Dirty
			if setup != nil {
				tab = setup()
			}
			runtime.GC()
			var r *detect.Report
			dur, err := timed(func() error {
				var err error
				r, err = det.Detect(ctx, tab, cfds)
				return err
			})
			if err != nil {
				return 0, 0, fmt.Errorf("D5: %s at n=%d: %w", label, n, err)
			}
			dirty = len(r.Vio)
			if natRep == nil {
				natRep = r
			} else if err := detect.Equivalent(natRep, r); err != nil {
				return 0, 0, fmt.Errorf("D5: %s diverged at n=%d: %w", label, n, err)
			}
			best = math.Min(best, float64(dur.Microseconds())/1000)
		}
		return best, dirty, nil
	}
	natMS, dirty, err := measure(detect.NativeDetector{}, "native", nil)
	if err != nil {
		return err
	}
	coldMS, _, err := measure(detect.ColumnarDetector{Workers: 1}, "columnar cold",
		func() *relstore.Table { return ds.Dirty.Clone() })
	if err != nil {
		return err
	}
	ds.Dirty.Snapshot().Columnar() // ensure the warm path really is warm
	warmMS, _, err := measure(detect.ColumnarDetector{Workers: 1}, "columnar warm", nil)
	if err != nil {
		return err
	}
	parMS, _, err := measure(detect.ParallelDetector{}, "parallel-columnar", nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10d %6.1f%% %10.2f %12.2f %12.2f %12.2f %6.2fx %6.2fx %6.2fx %8d\n",
		n, noise*100, natMS, coldMS, warmMS, parMS,
		natMS/coldMS, natMS/warmMS, natMS/parMS, dirty)
	return nil
}

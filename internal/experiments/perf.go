package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
)

// RunD1 measures batch detection scalability: the SQL technique of the
// TODS paper versus the native hash-grouping baseline, over growing data.
// Expected shape: both near-linear; SQL within a small constant factor.
func RunD1(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D1", "detection scalability: SQL technique vs native baseline")
	sizes := []int{10000, 25000, 50000, 100000, 200000}
	if quick {
		sizes = []int{2000, 5000, 10000}
	}
	cfds := datagen.StandardCFDs()
	fmt.Fprintf(w, "%10s %12s %12s %8s %8s\n", "tuples", "sql_ms", "native_ms", "ratio", "dirty")
	for _, n := range sizes {
		ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 7, NoiseRate: 0.05})
		store := relstore.NewStore()
		store.Put(ds.Dirty)

		var sqlRep, natRep *detect.Report
		sqlTime, err := timed(func() error {
			var err error
			sqlRep, err = detect.NewSQLDetector(store).Detect(ctx, ds.Dirty, cfds)
			return err
		})
		if err != nil {
			return err
		}
		natTime, err := timed(func() error {
			var err error
			natRep, err = detect.NativeDetector{}.Detect(ctx, ds.Dirty, cfds)
			return err
		})
		if err != nil {
			return err
		}
		if err := detect.Equivalent(sqlRep, natRep); err != nil {
			return fmt.Errorf("D1: detectors disagree at n=%d: %w", n, err)
		}
		ratio := float64(sqlTime) / float64(natTime)
		fmt.Fprintf(w, "%10d %12s %12s %8.2f %8d\n", n, ms(sqlTime), ms(natTime), ratio, len(sqlRep.Vio))
	}
	return nil
}

// RunD4 measures multi-core detection: the sharded ParallelDetector against
// the single-threaded native baseline and the SQL technique, over growing
// data up to 1M tuples. Expected shape: parallel tracks native's linear
// growth divided by the effective core count; the SQL engine (interpreted,
// single-threaded) trails both and is skipped at the largest size to keep
// the full run tractable.
func RunD4(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D4", "parallel detection: sharded vs native vs SQL")
	sizes := []int{10000, 100000, 1000000}
	sqlCap := 100000 // the interpreted SQL engine is too slow beyond this
	if quick {
		sizes = []int{2000, 10000}
		sqlCap = 10000
	}
	workers := runtime.GOMAXPROCS(0)
	cfds := datagen.StandardCFDs()
	fmt.Fprintf(w, "workers=%d\n", workers)
	fmt.Fprintf(w, "%10s %12s %12s %12s %8s %8s\n",
		"tuples", "native_ms", "parallel_ms", "sql_ms", "speedup", "dirty")
	for _, n := range sizes {
		ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 7, NoiseRate: 0.05})
		store := relstore.NewStore()
		store.Put(ds.Dirty)

		var natRep, parRep *detect.Report
		natTime, err := timed(func() error {
			var err error
			natRep, err = detect.NativeDetector{}.Detect(ctx, ds.Dirty, cfds)
			return err
		})
		if err != nil {
			return err
		}
		parTime, err := timed(func() error {
			var err error
			parRep, err = detect.ParallelDetector{}.Detect(ctx, ds.Dirty, cfds)
			return err
		})
		if err != nil {
			return err
		}
		if err := detect.Equivalent(natRep, parRep); err != nil {
			return fmt.Errorf("D4: parallel diverged at n=%d: %w", n, err)
		}
		sqlMS := "-"
		if n <= sqlCap {
			var sqlRep *detect.Report
			sqlTime, err := timed(func() error {
				var err error
				sqlRep, err = detect.NewSQLDetector(store).Detect(ctx, ds.Dirty, cfds)
				return err
			})
			if err != nil {
				return err
			}
			if err := detect.Equivalent(natRep, sqlRep); err != nil {
				return fmt.Errorf("D4: sql diverged at n=%d: %w", n, err)
			}
			sqlMS = ms(sqlTime)
		}
		speedup := float64(natTime) / float64(parTime)
		fmt.Fprintf(w, "%10d %12s %12s %12s %7.2fx %8d\n",
			n, ms(natTime), ms(parTime), sqlMS, speedup, len(natRep.Vio))
	}
	return nil
}

// RunD2 measures detection cost against tableau size: the SQL technique
// issues the same two queries regardless of the number of pattern tuples,
// so time should grow sub-linearly in the pattern count.
func RunD2(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D2", "detection vs number of pattern tuples (tableau-merged SQL)")
	n := 50000
	if quick {
		n = 5000
	}
	ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 11, NoiseRate: 0.05})
	store := relstore.NewStore()
	store.Put(ds.Dirty)

	// Collect distinct UK zips to turn into pattern constants.
	sc := ds.Dirty.Schema()
	zipPos := sc.MustPos("ZIP")
	cntPos := sc.MustPos("CNT")
	seen := map[string]bool{}
	var zips []string
	ds.Dirty.Snapshot().Scan(func(_ relstore.TupleID, row relstore.Tuple) bool {
		if row[cntPos].String() == "UK" && !seen[row[zipPos].String()] {
			seen[row[zipPos].String()] = true
			zips = append(zips, row[zipPos].String())
		}
		return true
	})

	counts := []int{1, 2, 4, 8, 16, 32, 64}
	fmt.Fprintf(w, "%10s %12s %12s %8s\n", "patterns", "sql_ms", "queries", "dirty")
	for _, k := range counts {
		if k > len(zips) {
			break
		}
		// One CFD [CNT=UK, ZIP=z_i] -> [STR=_] per zip, merged into a
		// single tableau of k patterns.
		c := &cfd.CFD{ID: fmt.Sprintf("p%d", k), Table: "customer",
			LHS: []string{"CNT", "ZIP"}, RHS: []string{"STR"}}
		for i := 0; i < k; i++ {
			c.Tableau = append(c.Tableau, cfd.PatternTuple{
				LHS: []cfd.PatternValue{cfd.ConstStr("UK"), cfd.ConstStr(zips[i])},
				RHS: []cfd.PatternValue{cfd.Wild},
			})
		}
		det := detect.NewSQLDetector(store)
		queries := 0
		det.Trace = func(string) { queries++ }
		var rep *detect.Report
		dur, err := timed(func() error {
			var err error
			rep, err = det.Detect(ctx, ds.Dirty, []*cfd.CFD{c})
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%10d %12s %12d %8d\n", k, ms(dur), queries, len(rep.Vio))
	}
	return nil
}

// RunD3 compares incremental detection (the tracker) against re-running
// batch detection, for growing update batches over a fixed base. Expected
// shape: incremental wins by a wide factor while |Δ| << |I|.
func RunD3(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "D3", "incremental vs batch detection")
	n := 50000
	deltas := []int{10, 100, 1000, 5000}
	if quick {
		n = 5000
		deltas = []int{10, 100, 500}
	}
	cfds := datagen.StandardCFDs()
	base := datagen.Generate(datagen.Config{Tuples: n, Seed: 13, NoiseRate: 0.02})
	fresh := datagen.Generate(datagen.Config{Tuples: deltas[len(deltas)-1], Seed: 99, NoiseRate: 0.10})
	freshRows := fresh.Dirty.Snapshot().Rows()

	fmt.Fprintf(w, "%10s %14s %12s %10s\n", "delta", "incremental_ms", "batch_ms", "speedup")
	for _, d := range deltas {
		// Fresh copies per measurement so state is comparable.
		tab := base.Dirty.Clone()
		tr, err := detect.NewTracker(tab, cfds)
		if err != nil {
			return err
		}
		incTime, err := timed(func() error {
			for i := 0; i < d; i++ {
				if _, _, err := tr.Insert(freshRows[i]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}

		tab2 := base.Dirty.Clone()
		for i := 0; i < d; i++ {
			tab2.MustInsert(freshRows[i])
		}
		var batchRep *detect.Report
		batchTime, err := timed(func() error {
			var err error
			batchRep, err = detect.NativeDetector{}.Detect(ctx, tab2, cfds)
			return err
		})
		if err != nil {
			return err
		}
		// Correctness: tracker state equals batch result.
		if err := detect.Equivalent(batchRep, tr.Report()); err != nil {
			return fmt.Errorf("D3: incremental diverged at delta=%d: %w", d, err)
		}
		speedup := float64(batchTime) / float64(incTime)
		fmt.Fprintf(w, "%10d %14s %12s %9.1fx\n", d, ms(incTime), ms(batchTime), speedup)
	}
	return nil
}

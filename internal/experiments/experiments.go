// Package experiments regenerates every figure of the Semandaq paper and
// every performance claim it imports from its companion papers (TODS 2008
// detection, VLDB 2007 repair). Each experiment prints the table/series the
// paper's artifact shows; cmd/semandaq-bench runs them from the command
// line and the root bench_test.go wraps them as testing.B benchmarks.
//
// The experiment index (IDs, workloads, expected shapes) lives in
// DESIGN.md; measured outputs are recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"
)

// Exp is one reproducible experiment.
type Exp struct {
	// ID is the experiment key from DESIGN.md (F2..F5, D1..D3, R1..R3,
	// S1, M1).
	ID string
	// Title says which paper artifact it regenerates.
	Title string
	// Run executes the experiment, printing its table to w. The caller's
	// ctx cancels long sweeps mid-flight (semandaq-bench wires it to
	// SIGINT; tests use the test context). quick shrinks the workload for
	// smoke tests and testing.B iterations.
	Run func(ctx context.Context, w io.Writer, quick bool) error
}

// All returns every experiment in presentation order.
func All() []Exp {
	return []Exp{
		{ID: "F2", Title: "Fig. 2 — data exploration drill-down", Run: RunF2},
		{ID: "F3", Title: "Fig. 3 — error detection and data quality map", Run: RunF3},
		{ID: "F4", Title: "Fig. 4 — data quality report", Run: RunF4},
		{ID: "F5", Title: "Fig. 5 — data cleansing review", Run: RunF5},
		{ID: "D1", Title: "detection scalability (SQL vs native)", Run: RunD1},
		{ID: "D2", Title: "detection vs number of pattern tuples", Run: RunD2},
		{ID: "D3", Title: "incremental vs batch detection", Run: RunD3},
		{ID: "D4", Title: "parallel detection: sharded vs native vs SQL", Run: RunD4},
		{ID: "D5", Title: "columnar detection: row vs columnar vs parallel-columnar", Run: RunD5},
		{ID: "D6", Title: "CFD discovery: legacy row-store miner vs PLI lattice miner", Run: RunD6},
		{ID: "D7", Title: "incremental serving: cold rebuild vs delta patch (ops-counted)", Run: RunD7},
		{ID: "D8", Title: "streaming SQL executor vs legacy materializing path (ops-counted)", Run: RunD8},
		{ID: "D9", Title: "FD-aware factorised evaluation: closure pruning, factorised reports, collapsed joins", Run: RunD9},
		{ID: "R1", Title: "repair quality vs noise rate", Run: RunR1},
		{ID: "R2", Title: "repair scalability", Run: RunR2},
		{ID: "R3", Title: "incremental vs batch repair", Run: RunR3},
		{ID: "S1", Title: "consistency checking cost", Run: RunS1},
		{ID: "M1", Title: "data monitor under a sustained update stream", Run: RunM1},
		{ID: "A1", Title: "ablation: tableau merging in SQL detection", Run: RunA1},
		{ID: "A2", Title: "ablation: repair oscillation arbitration", Run: RunA2},
	}
}

// ByID finds one experiment.
func ByID(id string) (Exp, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Exp{}, false
}

// IDs lists the experiment IDs.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// timed runs f and returns its wall-clock duration.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// ms renders a duration in milliseconds with 2 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// header prints an experiment banner.
func header(w io.Writer, e string, title string) {
	fmt.Fprintf(w, "== %s: %s ==\n", e, title)
}

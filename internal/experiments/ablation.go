package experiments

import (
	"context"
	"fmt"
	"io"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// RunA1 ablates the tableau merging of the SQL technique: detecting one
// merged k-pattern CFD (2 queries total) versus k single-pattern CFDs
// detected one by one (2 queries each). Merging is the reason the paper's
// query count is independent of the tableau size.
func RunA1(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "A1", "ablation: tableau merging in SQL detection")
	n := 20000
	if quick {
		n = 3000
	}
	ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 51, NoiseRate: 0.05})
	store := relstore.NewStore()
	store.Put(ds.Dirty)

	// k zip-conditioned patterns over [CNT=UK, ZIP=z] -> [STR=_].
	sc := ds.Dirty.Schema()
	zipPos, cntPos := sc.MustPos("ZIP"), sc.MustPos("CNT")
	seen := map[string]bool{}
	var zips []string
	ds.Dirty.Snapshot().Scan(func(_ relstore.TupleID, row relstore.Tuple) bool {
		if row[cntPos].String() == "UK" && !seen[row[zipPos].String()] {
			seen[row[zipPos].String()] = true
			zips = append(zips, row[zipPos].String())
		}
		return true
	})

	fmt.Fprintf(w, "%10s %12s %10s %14s %12s\n", "patterns", "merged_ms", "queries", "unmerged_ms", "queries")
	for _, k := range []int{2, 8, 32} {
		if k > len(zips) {
			break
		}
		// Merged: one CFD, k patterns.
		merged := &cfd.CFD{ID: "m", Table: "customer",
			LHS: []string{"CNT", "ZIP"}, RHS: []string{"STR"}}
		// Unmerged: k CFDs with ARTIFICIALLY distinct embedded FDs cannot
		// be built (merging keys on the FD), so we ablate by detecting
		// each single-pattern CFD in a separate detector run.
		var singles []*cfd.CFD
		for i := 0; i < k; i++ {
			pt := cfd.PatternTuple{
				LHS: []cfd.PatternValue{cfd.ConstStr("UK"), cfd.ConstStr(zips[i])},
				RHS: []cfd.PatternValue{cfd.Wild},
			}
			merged.Tableau = append(merged.Tableau, pt)
			singles = append(singles, &cfd.CFD{ID: fmt.Sprintf("s%d", i), Table: "customer",
				LHS: []string{"CNT", "ZIP"}, RHS: []string{"STR"},
				Tableau: []cfd.PatternTuple{pt}})
		}
		mergedDet := detect.NewSQLDetector(store)
		mq := 0
		mergedDet.Trace = func(string) { mq++ }
		mergedTime, err := timed(func() error {
			_, err := mergedDet.Detect(ctx, ds.Dirty, []*cfd.CFD{merged})
			return err
		})
		if err != nil {
			return err
		}
		uq := 0
		unmergedTime, err := timed(func() error {
			for _, s := range singles {
				det := detect.NewSQLDetector(store)
				det.Trace = func(string) { uq++ }
				if _, err := det.Detect(ctx, ds.Dirty, []*cfd.CFD{s}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%10d %12s %10d %14s %12d\n", k, ms(mergedTime), mq, ms(unmergedTime), uq)
	}
	return nil
}

// RunA2 ablates the repair oscillation arbitration: BatchRepair with and
// without the cost-from-original arbitration + LHS membership breaking, on
// a workload where two FDs share the RHS attribute CITY. The naive variant
// thrashes until the per-cell change cap and fails to converge.
func RunA2(ctx context.Context, w io.Writer, quick bool) error {
	header(w, "A2", "ablation: repair oscillation arbitration")
	// The two-FD tug workload, scaled: per city pair, one victim tuple
	// with a corrupted AC sits between a zip group and an AC group.
	n := 40
	if quick {
		n = 12
	}
	tab := relstore.NewTable(schema.New("customer", "CNT", "CITY", "ZIP", "AC"))
	ins := func(cnt, city, zip string, ac int64) {
		tab.MustInsert(relstore.Tuple{
			types.NewString(cnt), types.NewString(city),
			types.NewString(zip), types.NewInt(ac)})
	}
	for i := 0; i < n; i++ {
		zipA, zipB := fmt.Sprintf("EH%d", i), fmt.Sprintf("SW%d", i)
		acA, acB := int64(1000+i), int64(2000+i)
		cityA, cityB := fmt.Sprintf("Edi%d", i), fmt.Sprintf("Lon%d", i)
		ins("UK", cityA, zipA, acA)
		ins("UK", cityA, zipA, acA)
		ins("UK", cityA, zipA, acB) // victim: wrong AC
		ins("UK", cityB, zipB, acB)
		ins("UK", cityB, zipB, acB)
		ins("UK", cityB, zipB, acB)
	}
	cfds, err := cfd.ParseSet(`
zipcity@ customer: [CNT=_, ZIP=_] -> [CITY=_]
accity@  customer: [CNT=_, AC=_] -> [CITY=_]
`)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%12s %10s %8s %8s %10s %10s\n",
		"variant", "mods", "passes", "cost", "converged", "remaining")
	for _, variant := range []struct {
		name  string
		naive bool
	}{{"full", false}, {"naive", true}} {
		r := repair.NewRepairer()
		r.NaiveMerges = variant.naive
		res, err := r.Repair(ctx, tab, cfds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%12s %10d %8d %8.1f %10v %10d\n",
			variant.name, len(res.Modifications), res.Passes, res.Cost,
			res.Converged, res.Remaining)
	}
	return nil
}

package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
)

// Machine-readable detection benchmarks. cmd/semandaq-bench -json writes
// the report to BENCH_detect.json so successive PRs accumulate a
// performance trajectory that scripts (and the CI bench-smoke job) can
// diff, instead of eyeballing text tables.

// DetectBenchSchema versions the JSON layout.
const DetectBenchSchema = "semandaq/bench-detect/v2"

// DetectBenchEntry is one (engine, size) measurement.
type DetectBenchEntry struct {
	Engine     string  `json:"engine"`
	Tuples     int     `json:"tuples"`
	Workers    int     `json:"workers,omitempty"`
	NsOp       int64   `json:"ns_op"`
	RowsPerSec float64 `json:"rows_per_sec"`
	Dirty      int     `json:"dirty"`
}

// DetectBenchReport is the full sweep: every detection engine over growing
// generated workloads (5% noise, the standard CFD set).
type DetectBenchReport struct {
	Schema      string             `json:"schema"`
	GeneratedAt string             `json:"generated_at"`
	GoVersion   string             `json:"go_version"`
	GoMaxProcs  int                `json:"gomaxprocs"`
	Quick       bool               `json:"quick"`
	NoiseRate   float64            `json:"noise_rate"`
	Results     []DetectBenchEntry `json:"results"`
	// SQLStream is the D8 sweep: the streaming SQL executor against the
	// legacy materializing path, ops-counted, with its hard gates
	// (identity, never-more-allocations, constant-memory self-join)
	// enforced while measuring.
	SQLStream []SQLStreamEntry `json:"sql_stream"`
}

// DetectBench measures every detection engine at each size and returns the
// report. The interpreted SQL engine is capped (it is orders of magnitude
// slower and would dominate the sweep's runtime). Engines are cross-checked
// per size; a mismatch fails the sweep.
func DetectBench(ctx context.Context, quick bool) (*DetectBenchReport, error) {
	// The streaming executor brought SQL detection within ~2x of the
	// columnar engine, so the sweep runs it at full size now (it was
	// capped at 100k when the materializing path was ~9x slower).
	sizes := []int{10000, 100000, 1000000}
	sqlCap := 1000000
	if quick {
		sizes = []int{2000, 10000}
		sqlCap = 10000
	}
	const noise = 0.05
	workers := runtime.GOMAXPROCS(0)
	cfds := datagen.StandardCFDs()
	rep := &DetectBenchReport{
		Schema:      DetectBenchSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  workers,
		Quick:       quick,
		NoiseRate:   noise,
	}
	for _, n := range sizes {
		ds := datagen.Generate(datagen.Config{Tuples: n, Seed: 7, NoiseRate: noise})
		store := relstore.NewStore()
		store.Put(ds.Dirty)
		engines := []struct {
			name    string
			workers int
			det     detect.Detector
		}{
			{"native", 0, detect.NativeDetector{}},
			{"columnar", 1, detect.ColumnarDetector{Workers: 1}},
			{"parallel", workers, detect.ParallelDetector{}},
			{"sql", 0, detect.NewSQLDetector(store)},
		}
		var baseline *detect.Report
		for _, eng := range engines {
			if eng.name == "sql" && n > sqlCap {
				continue
			}
			var r *detect.Report
			dur, err := timed(func() error {
				var err error
				r, err = eng.det.Detect(ctx, ds.Dirty, cfds)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("bench %s n=%d: %w", eng.name, n, err)
			}
			if baseline == nil {
				baseline = r
			} else if err := detect.Equivalent(baseline, r); err != nil {
				return nil, fmt.Errorf("bench %s n=%d diverged: %w", eng.name, n, err)
			}
			rep.Results = append(rep.Results, DetectBenchEntry{
				Engine:     eng.name,
				Tuples:     n,
				Workers:    eng.workers,
				NsOp:       dur.Nanoseconds(),
				RowsPerSec: float64(n) / dur.Seconds(),
				Dirty:      len(r.Vio),
			})
		}
	}
	// D8: streaming-vs-legacy executor comparison, gates included — a
	// gate violation fails the whole sweep (and the CI bench-smoke job).
	for i, n := range sizes {
		entries, err := runD8Point(ctx, n, i == len(sizes)-1)
		if err != nil {
			return nil, err
		}
		rep.SQLStream = append(rep.SQLStream, entries...)
	}
	return rep, nil
}

// WriteDetectBenchJSON runs the sweep, writes the JSON report to path and
// prints a human-readable summary table to w.
func WriteDetectBenchJSON(ctx context.Context, path string, quick bool, w io.Writer) (*DetectBenchReport, error) {
	rep, err := DetectBench(ctx, quick)
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "wrote %s (gomaxprocs=%d)\n", path, rep.GoMaxProcs)
	fmt.Fprintf(w, "%-10s %10s %14s %14s %8s\n", "engine", "tuples", "ns_op", "rows_per_sec", "dirty")
	for _, e := range rep.Results {
		fmt.Fprintf(w, "%-10s %10d %14d %14.0f %8d\n",
			e.Engine, e.Tuples, e.NsOp, e.RowsPerSec, e.Dirty)
	}
	fmt.Fprintf(w, "%-12s %10s %14s %14s\n", "sql_stream", "tuples", "mallocs_strm", "mallocs_legacy")
	for _, e := range rep.SQLStream {
		legacy := "-"
		if e.Legacy != nil {
			legacy = fmt.Sprintf("%d", e.Legacy.Mallocs)
		}
		fmt.Fprintf(w, "%-12s %10d %14d %14s\n", e.Query, e.Tuples, e.Streaming.Mallocs, legacy)
	}
	return rep, nil
}

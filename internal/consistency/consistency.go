// Package consistency implements the static analysis of CFD sets from the
// TODS paper, surfaced by Semandaq's constraint engine: before CFDs are used
// for cleaning, the system tells the user whether the set "makes sense".
//
// Unlike classical FDs, a set of CFDs can be unsatisfiable — e.g.
// [A=_] -> [B=b1] together with [A=_] -> [B=b2]. Satisfiability checking is
// NP-complete in general (when attributes range over finite domains) and
// polynomial when all attributes have infinite domains. This package
// implements both regimes with one procedure: a chase-style constant
// propagation that is complete for infinite domains, extended with
// backtracking over the attributes the caller declares finite.
package consistency

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// Domains declares finite attribute domains (attribute name → the values
// the attribute may take). Attributes absent from the map are treated as
// having infinite domains: a "fresh" value distinct from every pattern
// constant always exists for them.
type Domains map[string][]types.Value

// normalized lowercases keys.
func (d Domains) normalized() map[string][]types.Value {
	out := make(map[string][]types.Value, len(d))
	for k, vs := range d {
		out[strings.ToLower(k)] = vs
	}
	return out
}

// Conflict explains why a CFD set is unsatisfiable: two rules force
// different constants onto the same attribute under a common assignment.
type Conflict struct {
	Attr   string
	Value1 types.Value
	Value2 types.Value
	CFD1   string // ID of the rule that first forced Value1
	CFD2   string // ID of the rule whose RHS clashed with it
}

// String renders the conflict for user display.
func (c Conflict) String() string {
	return fmt.Sprintf("attribute %s forced to both %v (by %s) and %v (by %s)",
		c.Attr, c.Value1, c.CFD1, c.Value2, c.CFD2)
}

// Report is the result of a satisfiability check.
type Report struct {
	Satisfiable bool
	// Witness maps attribute names to values of a single-tuple witness
	// instance, when satisfiable. Infinite-domain attributes not forced by
	// any rule carry a synthesized fresh value.
	Witness map[string]types.Value
	// Conflict explains unsatisfiability, when not satisfiable.
	Conflict *Conflict
}

// rule is a normalized constant-RHS pattern: "if the tuple matches the LHS
// cells, attribute rhsAttr must equal rhsVal". Variable (wildcard-RHS)
// patterns are irrelevant to single-tuple satisfiability: TODS shows a CFD
// set is satisfiable iff some single tuple satisfies it, and one tuple can
// never raise a multi-tuple violation.
type rule struct {
	id      string
	lhs     []ruleCell
	rhsAttr string // lowercased
	rhsVal  types.Value
}

type ruleCell struct {
	attr string // lowercased
	wild bool
	val  types.Value
}

// Check decides satisfiability of the CFD set over the given schema.
// Every CFD must validate against sc. domains may be nil.
func Check(sc *schema.Relation, cfds []*cfd.CFD, domains Domains) (*Report, error) {
	for _, c := range cfds {
		if err := c.Validate(sc); err != nil {
			return nil, err
		}
	}
	dom := domains.normalized()
	for attr, vs := range dom {
		if len(vs) == 0 {
			return nil, fmt.Errorf("consistency: attribute %q has an empty domain", attr)
		}
		if !sc.Has(attr) {
			return nil, fmt.Errorf("consistency: domain for unknown attribute %q", attr)
		}
	}

	rules := collectRules(cfds)

	// The assignment under construction: lowercased attr → value; absence
	// means "unconstrained". For infinite-domain attributes, absence means
	// a fresh value that dodges every pattern constant.
	assign := map[string]assigned{}
	conflict, ok := chase(rules, assign, dom)
	if !ok {
		return &Report{Satisfiable: false, Conflict: conflict}, nil
	}

	// Branch over finite-domain attributes that occur in some rule LHS and
	// are still unassigned; the chase alone is complete otherwise.
	finiteVars := finiteLHSVars(rules, assign, dom)
	conflict, ok = search(rules, assign, dom, finiteVars)
	if !ok {
		return &Report{Satisfiable: false, Conflict: conflict}, nil
	}
	return &Report{Satisfiable: true, Witness: witness(sc, assign, rules, dom)}, nil
}

// assigned is one attribute's state in the assignment.
type assigned struct {
	val types.Value
	by  string // rule/choice that set it
}

// collectRules normalizes the CFDs and extracts constant-RHS rules.
func collectRules(cfds []*cfd.CFD) []rule {
	var rules []rule
	for _, c := range cfds {
		for _, nc := range c.Normalize() {
			for i, pt := range nc.Tableau {
				if pt.RHS[0].Wildcard {
					continue
				}
				r := rule{
					id:      fmt.Sprintf("%s#%d", nc.ID, i),
					rhsAttr: strings.ToLower(nc.RHS[0]),
					rhsVal:  pt.RHS[0].Const,
				}
				for k, p := range pt.LHS {
					r.lhs = append(r.lhs, ruleCell{
						attr: strings.ToLower(nc.LHS[k]),
						wild: p.Wildcard,
						val:  p.Const,
					})
				}
				rules = append(rules, r)
			}
		}
	}
	return rules
}

// chase propagates forced constants to a fixpoint. A rule fires when every
// LHS cell *necessarily* matches: wildcards always match; a constant cell
// matches only if the attribute is already assigned that constant, or the
// attribute's finite domain has shrunk to exactly that constant. (An
// unassigned infinite-domain attribute can always dodge a constant, so it
// never forces a match.) Returns ok=false with an explanation on clash.
func chase(rules []rule, assign map[string]assigned, dom map[string][]types.Value) (*Conflict, bool) {
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			if !necessarilyMatches(r, assign, dom) {
				continue
			}
			cur, ok := assign[r.rhsAttr]
			if !ok {
				// Check the forced value is allowed by a finite domain.
				if vs, fin := dom[r.rhsAttr]; fin && !domainHas(vs, r.rhsVal) {
					return &Conflict{
						Attr:   r.rhsAttr,
						Value1: r.rhsVal,
						Value2: types.Null,
						CFD1:   r.id,
						CFD2:   "finite domain",
					}, false
				}
				assign[r.rhsAttr] = assigned{val: r.rhsVal, by: r.id}
				changed = true
				continue
			}
			if !cur.val.Equal(r.rhsVal) {
				return &Conflict{
					Attr:   r.rhsAttr,
					Value1: cur.val,
					Value2: r.rhsVal,
					CFD1:   cur.by,
					CFD2:   r.id,
				}, false
			}
		}
	}
	return nil, true
}

func necessarilyMatches(r rule, assign map[string]assigned, dom map[string][]types.Value) bool {
	for _, c := range r.lhs {
		if c.wild {
			continue
		}
		a, ok := assign[c.attr]
		if ok {
			if !a.val.Equal(c.val) {
				return false
			}
			continue
		}
		// Unassigned: only a singleton finite domain equal to the constant
		// forces a match.
		vs, fin := dom[c.attr]
		if !fin || len(vs) != 1 || !vs[0].Equal(c.val) {
			return false
		}
	}
	return true
}

func domainHas(vs []types.Value, v types.Value) bool {
	for _, x := range vs {
		if x.Equal(v) {
			return true
		}
	}
	return false
}

// finiteLHSVars lists unassigned finite-domain attributes occurring on some
// rule LHS as a constant cell — the only branch points that matter.
func finiteLHSVars(rules []rule, assign map[string]assigned, dom map[string][]types.Value) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rules {
		for _, c := range r.lhs {
			if c.wild {
				continue
			}
			if _, ok := assign[c.attr]; ok {
				continue
			}
			if _, fin := dom[c.attr]; fin && !seen[c.attr] {
				seen[c.attr] = true
				out = append(out, c.attr)
			}
		}
	}
	sort.Strings(out)
	return out
}

// search branches over the finite-domain variables, chasing after each
// choice. Satisfiable iff some branch completes without clash.
func search(rules []rule, assign map[string]assigned, dom map[string][]types.Value, vars []string) (*Conflict, bool) {
	if len(vars) == 0 {
		return nil, true
	}
	attr := vars[0]
	if _, done := assign[attr]; done {
		return search(rules, assign, dom, vars[1:])
	}
	var lastConflict *Conflict
	for _, v := range dom[attr] {
		trial := cloneAssign(assign)
		trial[attr] = assigned{val: v, by: "choice(" + attr + ")"}
		conf, ok := chase(rules, trial, dom)
		if !ok {
			lastConflict = conf
			continue
		}
		conf, ok = search(rules, trial, dom, vars[1:])
		if !ok {
			lastConflict = conf
			continue
		}
		// Commit the successful branch.
		for k, a := range trial {
			assign[k] = a
		}
		return nil, true
	}
	return lastConflict, false
}

func cloneAssign(a map[string]assigned) map[string]assigned {
	out := make(map[string]assigned, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// witness builds a concrete single-tuple witness: forced values as chased,
// finite attributes getting any non-conflicting domain value, infinite
// attributes a fresh string distinct from every constant in the rules.
func witness(sc *schema.Relation, assign map[string]assigned, rules []rule, dom map[string][]types.Value) map[string]types.Value {
	used := map[string]bool{}
	for _, r := range rules {
		used[r.rhsVal.Key()] = true
		for _, c := range r.lhs {
			if !c.wild {
				used[c.val.Key()] = true
			}
		}
	}
	out := make(map[string]types.Value, sc.Arity())
	fresh := 0
	for _, a := range sc.Attrs {
		low := strings.ToLower(a.Name)
		if v, ok := assign[low]; ok {
			out[a.Name] = v.val
			continue
		}
		if vs, fin := dom[low]; fin {
			out[a.Name] = vs[0]
			continue
		}
		for {
			cand := types.NewString(fmt.Sprintf("fresh%d", fresh))
			fresh++
			if !used[cand.Key()] {
				out[a.Name] = cand
				break
			}
		}
	}
	return out
}

// ImpliesConstant tests whether Σ implies the single-pattern constant CFD
// target over infinite domains: starting from the target's LHS constants
// (its wildcard LHS attributes stand for arbitrary fresh values), the chase
// must force the target's RHS constant. Implication also holds vacuously
// when the premise assignment already clashes.
func ImpliesConstant(sigma []*cfd.CFD, target *cfd.CFD) (bool, error) {
	norm := target.Normalize()
	for _, nt := range norm {
		for i, pt := range nt.Tableau {
			if pt.RHS[0].Wildcard {
				return false, fmt.Errorf("consistency: ImpliesConstant requires a constant RHS (pattern %d of %s)", i, nt.ID)
			}
			assign := map[string]assigned{}
			for k, p := range pt.LHS {
				if !p.Wildcard {
					assign[strings.ToLower(nt.LHS[k])] = assigned{val: p.Const, by: "premise"}
				}
			}
			rules := collectRules(sigma)
			if _, ok := chase(rules, assign, nil); !ok {
				continue // clashing premise: vacuously implied
			}
			got, ok := assign[strings.ToLower(nt.RHS[0])]
			if !ok || !got.val.Equal(pt.RHS[0].Const) {
				return false, nil
			}
		}
	}
	return true, nil
}

// Subsumes reports whether pattern q makes pattern p redundant within one
// CFD: q's LHS is at least as general cell-wise (so q matches every tuple p
// matches) and q's RHS constraint implies p's (equal cells, or p wildcard
// with q constant — a forced constant implies pairwise equality).
func Subsumes(q, p cfd.PatternTuple) bool {
	if len(q.LHS) != len(p.LHS) || len(q.RHS) != len(p.RHS) {
		return false
	}
	for i := range q.LHS {
		if q.LHS[i].Wildcard {
			continue
		}
		if p.LHS[i].Wildcard || !q.LHS[i].Equal(p.LHS[i]) {
			return false
		}
	}
	for i := range q.RHS {
		if q.RHS[i].Equal(p.RHS[i]) {
			continue
		}
		if p.RHS[i].Wildcard && !q.RHS[i].Wildcard {
			continue
		}
		return false
	}
	return true
}

// MinimizeTableau removes patterns subsumed by another pattern of the same
// CFD, returning a copy with an irredundant tableau (order preserved).
func MinimizeTableau(c *cfd.CFD) *cfd.CFD {
	out := c.Clone()
	var kept []cfd.PatternTuple
	for i, p := range out.Tableau {
		redundant := false
		for j, q := range out.Tableau {
			if i == j {
				continue
			}
			if Subsumes(q, p) {
				// Break symmetric ties (identical patterns) by index.
				if Subsumes(p, q) && i < j {
					continue
				}
				redundant = true
				break
			}
		}
		if !redundant {
			kept = append(kept, p)
		}
	}
	out.Tableau = kept
	return out
}

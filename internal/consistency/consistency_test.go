package consistency

import (
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func sc() *schema.Relation {
	return schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC")
}

func mustParseSet(t *testing.T, text string) []*cfd.CFD {
	t.Helper()
	cfds, err := cfd.ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	return cfds
}

func TestSatisfiableBasicSet(t *testing.T) {
	cfds := mustParseSet(t, `
customer: [CNT=_, ZIP=_] -> [CITY=_]
customer: [CNT=UK, ZIP=_] -> [STR=_]
customer: [CC=44] -> [CNT=UK]
`)
	rep, err := Check(sc(), cfds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfiable {
		t.Fatalf("should be satisfiable: %v", rep.Conflict)
	}
	if len(rep.Witness) != sc().Arity() {
		t.Errorf("witness = %v", rep.Witness)
	}
}

func TestUnsatisfiableWildcardClash(t *testing.T) {
	// [NAME=_] -> [CNT=UK] and [NAME=_] -> [CNT=US] clash on every tuple.
	cfds := mustParseSet(t, `
customer: [NAME=_] -> [CNT=UK]
customer: [NAME=_] -> [CNT=US]
`)
	rep, err := Check(sc(), cfds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfiable {
		t.Fatal("should be unsatisfiable")
	}
	if rep.Conflict == nil || rep.Conflict.Attr != "cnt" {
		t.Errorf("conflict = %+v", rep.Conflict)
	}
	if rep.Conflict.String() == "" {
		t.Error("conflict should render")
	}
}

func TestSatisfiableViaDodging(t *testing.T) {
	// Conflicting RHS constants but constant LHS patterns: an infinite
	// domain lets CC dodge 44, so the set is satisfiable.
	cfds := mustParseSet(t, `
customer: [CC=44] -> [CNT=UK]
customer: [CC=44] -> [CNT=US]
`)
	rep, err := Check(sc(), cfds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfiable {
		t.Fatalf("infinite domain should dodge: %v", rep.Conflict)
	}
	// Witness must not have CC=44.
	if rep.Witness["CC"].Equal(types.NewInt(44)) {
		t.Errorf("witness CC = %v", rep.Witness["CC"])
	}
}

func TestUnsatisfiableWithFiniteDomain(t *testing.T) {
	// Same set, but CC can only be 44: no dodging possible.
	cfds := mustParseSet(t, `
customer: [CC=44] -> [CNT=UK]
customer: [CC=44] -> [CNT=US]
`)
	dom := Domains{"CC": {types.NewInt(44)}}
	rep, err := Check(sc(), cfds, dom)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfiable {
		t.Fatal("singleton finite domain should force the clash")
	}
}

func TestFiniteDomainBacktracking(t *testing.T) {
	// CC ∈ {1, 44}. CC=44 branch clashes, CC=1 branch is fine.
	cfds := mustParseSet(t, `
customer: [CC=44] -> [CNT=UK]
customer: [CC=44] -> [CNT=US]
`)
	dom := Domains{"CC": {types.NewInt(44), types.NewInt(1)}}
	rep, err := Check(sc(), cfds, dom)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfiable {
		t.Fatalf("CC=1 branch should work: %v", rep.Conflict)
	}
	if !rep.Witness["CC"].Equal(types.NewInt(1)) {
		t.Errorf("witness CC = %v", rep.Witness["CC"])
	}
}

func TestUnsatisfiableAllFiniteBranches(t *testing.T) {
	// Every CC value forces a clash somewhere.
	cfds := mustParseSet(t, `
customer: [CC=1] -> [CNT=US]
customer: [CC=1] -> [CNT=CA]
customer: [CC=44] -> [CNT=UK]
customer: [CC=44] -> [CNT=IE]
`)
	dom := Domains{"CC": {types.NewInt(1), types.NewInt(44)}}
	rep, err := Check(sc(), cfds, dom)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfiable {
		t.Fatal("all branches clash; should be unsatisfiable")
	}
}

func TestChasePropagation(t *testing.T) {
	// [NAME=_] -> [CNT=UK]; [CNT=UK] -> [CC=44]; [CC=44] -> [AC=131]
	// forces a chain; then a clashing rule on AC makes it unsat.
	base := `
customer: [NAME=_] -> [CNT=UK]
customer: [CNT=UK] -> [CC=44]
customer: [CC=44] -> [AC=131]
`
	rep, err := Check(sc(), mustParseSet(t, base), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfiable {
		t.Fatalf("chain should be satisfiable: %v", rep.Conflict)
	}
	if !rep.Witness["AC"].Equal(types.NewInt(131)) {
		t.Errorf("chase should force AC=131, witness=%v", rep.Witness)
	}

	rep, err = Check(sc(), mustParseSet(t, base+"customer: [CNT=UK] -> [AC=20]\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfiable {
		t.Fatal("AC forced to both 131 and 20 should be unsatisfiable")
	}
}

func TestVariablePatternsIgnoredForSatisfiability(t *testing.T) {
	// Pure FDs are always satisfiable.
	cfds := []*cfd.CFD{
		cfd.NewFD("f1", "customer", []string{"CNT", "ZIP"}, []string{"CITY", "STR"}),
	}
	rep, err := Check(sc(), cfds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfiable {
		t.Error("FDs are always satisfiable")
	}
}

func TestCheckValidatesInputs(t *testing.T) {
	bad := mustParseSet(t, "customer: [NOPE=_] -> [CITY=_]")
	if _, err := Check(sc(), bad, nil); err == nil {
		t.Error("unknown attribute should error")
	}
	good := mustParseSet(t, "customer: [CNT=_] -> [CITY=_]")
	if _, err := Check(sc(), good, Domains{"CITY": {}}); err == nil {
		t.Error("empty domain should error")
	}
	if _, err := Check(sc(), good, Domains{"NOPE": {types.NewInt(1)}}); err == nil {
		t.Error("domain for unknown attribute should error")
	}
}

func TestFiniteDomainExcludesForcedValue(t *testing.T) {
	// The chase forces CNT=UK but the finite domain only allows US.
	cfds := mustParseSet(t, "customer: [NAME=_] -> [CNT=UK]")
	dom := Domains{"CNT": {types.NewString("US")}}
	rep, err := Check(sc(), cfds, dom)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Satisfiable {
		t.Fatal("forced value outside finite domain should be unsatisfiable")
	}
}

func TestImpliesConstant(t *testing.T) {
	sigma := mustParseSet(t, `
customer: [CC=44] -> [CNT=UK]
customer: [CNT=UK] -> [CITY=Edinburgh]
`)
	implied := mustParseSet(t, "customer: [CC=44] -> [CITY=Edinburgh]")[0]
	got, err := ImpliesConstant(sigma, implied)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("transitive implication should hold")
	}
	notImplied := mustParseSet(t, "customer: [CC=1] -> [CITY=Edinburgh]")[0]
	got, err = ImpliesConstant(sigma, notImplied)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("CC=1 premise implies nothing")
	}
	variable := mustParseSet(t, "customer: [CC=44] -> [CITY=_]")[0]
	if _, err := ImpliesConstant(sigma, variable); err == nil {
		t.Error("variable target should error")
	}
}

func TestImpliesConstantVacuous(t *testing.T) {
	// The premise CC=44 clashes inside sigma (CNT forced two ways under a
	// singleton chain), so any conclusion is vacuously implied... build a
	// premise that the chase itself contradicts:
	sigma := mustParseSet(t, `
customer: [CC=44] -> [CNT=UK]
customer: [CC=44] -> [CNT=US]
`)
	target := mustParseSet(t, "customer: [CC=44] -> [CITY=Anything]")[0]
	got, err := ImpliesConstant(sigma, target)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("clashing premise implies everything")
	}
}

func TestSubsumes(t *testing.T) {
	wild := cfd.Wild
	uk := cfd.ConstStr("UK")
	lon := cfd.ConstStr("London")
	// q = ([_, _] || [_]) subsumes p = ([UK, _] || [_]).
	q := cfd.PatternTuple{LHS: []cfd.PatternValue{wild, wild}, RHS: []cfd.PatternValue{wild}}
	p := cfd.PatternTuple{LHS: []cfd.PatternValue{uk, wild}, RHS: []cfd.PatternValue{wild}}
	if !Subsumes(q, p) {
		t.Error("more general LHS should subsume")
	}
	if Subsumes(p, q) {
		t.Error("less general LHS should not subsume")
	}
	// Constant RHS subsumes wildcard RHS at same LHS.
	qc := cfd.PatternTuple{LHS: []cfd.PatternValue{uk, wild}, RHS: []cfd.PatternValue{lon}}
	if !Subsumes(qc, p) {
		t.Error("constant RHS should subsume wildcard RHS")
	}
	if Subsumes(p, qc) {
		t.Error("wildcard RHS should not subsume constant RHS")
	}
	// Different constants on RHS: no subsumption either way.
	qd := cfd.PatternTuple{LHS: []cfd.PatternValue{uk, wild}, RHS: []cfd.PatternValue{cfd.ConstStr("Leeds")}}
	if Subsumes(qc, qd) || Subsumes(qd, qc) {
		t.Error("different RHS constants should not subsume")
	}
}

func TestMinimizeTableau(t *testing.T) {
	c, err := cfd.ParseLine("customer: [CNT=_, ZIP=_] -> [CITY=_]")
	if err != nil {
		t.Fatal(err)
	}
	// Add a pattern subsumed by the all-wildcard one.
	c.AddPattern(cfd.PatternTuple{
		LHS: []cfd.PatternValue{cfd.ConstStr("UK"), cfd.Wild},
		RHS: []cfd.PatternValue{cfd.Wild},
	})
	min := MinimizeTableau(c)
	if len(min.Tableau) != 1 {
		t.Errorf("minimized tableau = %d patterns", len(min.Tableau))
	}
	if !min.Tableau[0].LHS[0].Wildcard {
		t.Error("kept pattern should be the general one")
	}
	// Identical duplicates: exactly one survives.
	d := c.Clone()
	d.Tableau = []cfd.PatternTuple{c.Tableau[0], c.Tableau[0].Clone()}
	min = MinimizeTableau(d)
	if len(min.Tableau) != 1 {
		t.Errorf("duplicate minimize = %d", len(min.Tableau))
	}
}

package oracle

import (
	"math"
	"reflect"
)

// deepEqual is reflect.DeepEqual with one repair: floats compare by their
// IEEE-754 bits, so NaN equals NaN (same payload) and the oracle can keep
// NaN in its value alphabet — reflect.DeepEqual would reject every report
// containing a NaN candidate, cold-vs-cold included. Bit comparison is
// stricter than ==, which is the point: the oracle asserts byte identity.
func deepEqual(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return eqValue(reflect.ValueOf(a), reflect.ValueOf(b))
}

func eqValue(a, b reflect.Value) bool {
	if !a.IsValid() || !b.IsValid() {
		return a.IsValid() == b.IsValid()
	}
	if a.Type() != b.Type() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case reflect.Bool:
		return a.Bool() == b.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() == b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return a.Uint() == b.Uint()
	case reflect.String:
		return a.String() == b.String()
	case reflect.Complex64, reflect.Complex128:
		ac, bc := a.Complex(), b.Complex()
		return math.Float64bits(real(ac)) == math.Float64bits(real(bc)) &&
			math.Float64bits(imag(ac)) == math.Float64bits(imag(bc))
	case reflect.Pointer, reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		return eqValue(a.Elem(), b.Elem())
	case reflect.Slice:
		if a.IsNil() != b.IsNil() { // DeepEqual distinguishes nil from empty
			return false
		}
		fallthrough
	case reflect.Array:
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !eqValue(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		// Keys look up directly (no NaN keys in any report type); values
		// recurse.
		if a.IsNil() != b.IsNil() || a.Len() != b.Len() {
			return false
		}
		for _, k := range a.MapKeys() {
			bv := b.MapIndex(k)
			if !bv.IsValid() || !eqValue(a.MapIndex(k), bv) {
				return false
			}
		}
		return true
	case reflect.Struct:
		for i := 0; i < a.NumField(); i++ {
			if !eqValue(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	default:
		// Chan/Func/UnsafePointer never appear in reports; identity is the
		// only sane meaning if they ever do.
		return a.Interface() == b.Interface()
	}
}

// Package oracle is the reusable incremental-vs-batch cross-check harness:
// it decodes byte strings into mutation sequences over a seeded schema,
// applies them through the incremental serving stack (the detect.Tracker,
// which also drives the relstore snapshot patcher, plus a discovery
// Session), and asserts at every intermediate version that the patched
// state is byte-identical to a cold rebuild:
//
//   - the patched Snapshot/Columnar/PLI artifacts equal a from-scratch
//     batch build (relstore.DiffSnapshots);
//   - the tracker's materialized report equals a batch NativeDetector pass
//     and a ColumnarDetector pass over a rebuilt snapshot (DeepEqual);
//   - the factorised detection report, exploded, equals that same batch
//     report (DeepEqual) — the factorisation is lossless at every version;
//   - the discovery session's refreshed report equals a cold Mine over a
//     rebuilt snapshot (DeepEqual).
//
// The detect-package cross-check tests and the FuzzIncrementalOracle fuzz
// target both drive this harness; experiments reuse its mutation decoding
// for reproducible edit workloads. Values are drawn from small per-column
// alphabets that include the adversarial representations (INT 1 vs FLOAT
// 1.0, NaN, NULL) so the Equal-vs-exact distinction the patcher relies on
// is always in play.
package oracle

import (
	"context"
	"fmt"
	"math"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// Config seeds one harness: the schema, a value alphabet per column, the
// constraints the tracker maintains, the number of seed rows inserted
// before the tracker attaches, and the discovery options the session runs.
type Config struct {
	Schema    *schema.Relation
	Domain    [][]types.Value
	CFDs      []*cfd.CFD
	SeedRows  int
	Discovery discovery.Options
}

// DefaultConfig returns the standard oracle workload: a 3-attribute
// relation under one variable and one constant CFD, with tiny domains so
// multi-tuple groups constantly flip between clean and violating, and with
// Equal-but-not-identical numerics in the V column.
func DefaultConfig() Config {
	cfds, err := cfd.ParseSet(`
f: [K=_] -> [V=_]
f: [K=k0] -> [W=good]
`)
	if err != nil {
		panic(err) // static text; cannot fail
	}
	return Config{
		Schema: schema.New("f", "K", "V", "W"),
		Domain: [][]types.Value{
			{types.NewString("k0"), types.NewString("k1"), types.NewString("k2")},
			{types.NewString("v0"), types.NewString("v1"), types.NewInt(1),
				types.NewFloat(1.0), types.NewFloat(math.NaN()), types.Null},
			{types.NewString("good"), types.NewString("bad"), types.Null},
		},
		CFDs:      cfds,
		SeedRows:  8,
		Discovery: discovery.Options{MinSupport: 2, MaxLHS: 2, Workers: 2},
	}
}

// Harness is one live oracle run: the table, the incremental maintainers
// over it, and the id set the mutation decoder targets.
type Harness struct {
	Cfg     Config
	Tab     *relstore.Table
	Tracker *detect.Tracker
	Sess    *discovery.Session
	ids     []relstore.TupleID
}

// New builds the table, inserts the seed rows (cycling the domain), and
// attaches the tracker and the discovery session.
func New(cfg Config) (*Harness, error) {
	tab := relstore.NewTable(cfg.Schema)
	arity := cfg.Schema.Arity()
	h := &Harness{Cfg: cfg, Tab: tab}
	for i := 0; i < cfg.SeedRows; i++ {
		row := make(relstore.Tuple, arity)
		for j := range row {
			row[j] = cfg.Domain[j][(i+j)%len(cfg.Domain[j])]
		}
		h.ids = append(h.ids, tab.MustInsert(row))
	}
	tr, err := detect.NewTracker(tab, cfg.CFDs)
	if err != nil {
		return nil, err
	}
	h.Tracker = tr
	h.Sess = discovery.NewSession(tab)
	return h, nil
}

// Attach wraps an existing table — e.g. a datagen workload at a chosen
// noise rate — in a harness: tracker and discovery session attach to the
// table as it stands. The returned harness has no decoder domain; callers
// drive their own mutations through Tracker and call the Check methods.
func Attach(tab *relstore.Table, cfds []*cfd.CFD, opts discovery.Options) (*Harness, error) {
	tr, err := detect.NewTracker(tab, cfds)
	if err != nil {
		return nil, err
	}
	return &Harness{
		Cfg:     Config{Schema: tab.Schema(), CFDs: cfds, Discovery: opts},
		Tab:     tab,
		Tracker: tr,
		Sess:    discovery.NewSession(tab),
	}, nil
}

// Drive decodes data as a mutation program and applies it through the
// tracker, invoking check after every checkEvery ops and once at the end.
// The decoding is total: any byte string is a valid program (reads past
// the end yield zero), which is what makes it a fuzz alphabet.
func (h *Harness) Drive(data []byte, checkEvery int, check func() error) error {
	if checkEvery <= 0 {
		checkEvery = 1
	}
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	arity := h.Cfg.Schema.Arity()
	nops := 0
	for pos < len(data) {
		op := int(next()) % 4
		if len(h.ids) == 0 {
			op = 0 // only inserts make sense on an empty table
		}
		switch op {
		case 0: // insert
			row := make(relstore.Tuple, arity)
			for j := range row {
				row[j] = h.Cfg.Domain[j][int(next())%len(h.Cfg.Domain[j])]
			}
			id, _, err := h.Tracker.Insert(row)
			if err != nil {
				return err
			}
			h.ids = append(h.ids, id)
		case 1: // delete
			k := int(next()) % len(h.ids)
			if _, err := h.Tracker.Delete(h.ids[k]); err != nil {
				return err
			}
			h.ids = append(h.ids[:k], h.ids[k+1:]...)
		default: // set cell (two opcodes: sets dominate real workloads)
			id := h.ids[int(next())%len(h.ids)]
			j := int(next()) % arity
			v := h.Cfg.Domain[j][int(next())%len(h.Cfg.Domain[j])]
			if _, err := h.Tracker.SetCell(id, h.Cfg.Schema.Attrs[j].Name, v); err != nil {
				return err
			}
		}
		if nops++; nops%checkEvery == 0 {
			if err := check(); err != nil {
				return fmt.Errorf("after op %d (version %d): %w", nops, h.Tab.Version(), err)
			}
		}
	}
	return check()
}

// Check asserts every incremental artifact equals its cold rebuild at the
// table's current version. It is the union of the per-layer oracles; use
// the narrower methods to scope a failure.
func (h *Harness) Check(ctx context.Context) error {
	if err := h.CheckStore(); err != nil {
		return err
	}
	if err := h.CheckDetect(ctx); err != nil {
		return err
	}
	return h.CheckDiscovery(ctx)
}

// CheckStore asserts the (possibly delta-patched) snapshot and all its
// columnar/PLI artifacts are byte-identical to a from-scratch batch build.
func (h *Harness) CheckStore() error {
	if err := relstore.DiffSnapshots(h.Tab.Snapshot(), h.Tab.RebuildSnapshot()); err != nil {
		return fmt.Errorf("relstore: patched snapshot != cold rebuild: %w", err)
	}
	return nil
}

// CheckDetect asserts the tracker's materialized report is DeepEqual to
// batch detection — the row-store engine on the live table and the
// columnar engine on a freshly rebuilt snapshot.
func (h *Harness) CheckDetect(ctx context.Context) error {
	got := h.Tracker.Report()
	batch, err := detect.NativeDetector{}.Detect(ctx, h.Tab, h.Cfg.CFDs)
	if err != nil {
		return err
	}
	if !deepEqual(batch, got) {
		if err := detect.Equivalent(batch, got); err != nil {
			return fmt.Errorf("detect: tracker diverged from batch: %w", err)
		}
		return fmt.Errorf("detect: tracker report equivalent but not byte-identical to batch\nbatch: %+v\ntracker: %+v", batch, got)
	}
	col, err := detect.ColumnarDetector{}.DetectSnapshot(ctx, h.Tab.RebuildSnapshot(), h.Cfg.CFDs)
	if err != nil {
		return err
	}
	if !deepEqual(col, got) {
		return fmt.Errorf("detect: tracker report != columnar engine over rebuilt snapshot")
	}
	fr, err := detect.DetectFactorised(ctx, h.Tab.RebuildSnapshot(), h.Cfg.CFDs)
	if err != nil {
		return err
	}
	if !deepEqual(fr.Explode(), got) {
		return fmt.Errorf("detect: factorised report exploded != tracker report")
	}
	return nil
}

// CheckDiscovery asserts the session's (possibly cache-refreshed) report
// is DeepEqual to a cold Mine over a freshly rebuilt snapshot.
func (h *Harness) CheckDiscovery(ctx context.Context) error {
	got, err := h.Sess.Discover(ctx, h.Cfg.Discovery)
	if err != nil {
		return err
	}
	want, err := discovery.Mine(ctx, h.Tab.RebuildSnapshot(), h.Cfg.Discovery)
	if err != nil {
		return err
	}
	if !deepEqual(got, want) {
		return fmt.Errorf("discovery: session report != cold mine (got %d/%d candidates/cfds, want %d/%d)",
			len(got.Candidates), len(got.CFDs), len(want.Candidates), len(want.CFDs))
	}
	return nil
}

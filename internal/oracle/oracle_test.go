package oracle

import (
	"math/rand"
	"testing"
)

// TestHarnessRandomizedSequences drives seeded random mutation programs
// through the full oracle — relstore patch, tracker report, discovery
// session — checking byte-identity at every version.
func TestHarnessRandomizedSequences(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		h, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 160)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		if err := h.Drive(data, 1, func() error { return h.Check(t.Context()) }); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestHarnessEmptiesTable drains the table to zero rows and rebuilds it,
// crossing the structural edge cases (empty snapshot, empty PLIs, empty
// mine) with the oracle active.
func TestHarnessEmptiesTable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SeedRows = 3
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 deletes (opcode 1), then 4 inserts (opcode 0 + 3 domain bytes).
	prog := []byte{
		1, 0, 1, 0, 1, 0,
		0, 0, 0, 0, 0, 1, 1, 1, 0, 2, 2, 2, 0, 0, 3, 1,
	}
	if err := h.Drive(prog, 1, func() error { return h.Check(t.Context()) }); err != nil {
		t.Fatal(err)
	}
}

func FuzzIncrementalOracle(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 0, 2, 0, 1, 3, 1, 1, 2, 0, 0, 4})
	f.Add([]byte{2, 0, 1, 3, 2, 1, 1, 4, 2, 2, 1, 5, 3, 3, 1, 2})
	f.Add([]byte{1, 0, 1, 1, 1, 2, 0, 1, 1, 1, 0, 2, 2, 2})
	f.Add([]byte{0, 2, 5, 2, 2, 4, 1, 3, 3, 5, 1, 0, 2, 6, 1, 1, 0, 1, 2, 0})
	// Pile inserts onto one K class while flipping V through the numeric
	// corner values: drives a single large multi-tuple group through RHS
	// histogram ties, the MajorityKey tie-break the factorised report must
	// reproduce byte for byte when exploded.
	f.Add([]byte{0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0, 2, 0, 0, 0, 3, 0, 2, 0, 1, 5, 2, 1, 1, 4})
	// Set-heavy program: rewrite V across existing rows so groups flip
	// clean <-> violating without membership changes.
	f.Add([]byte{3, 0, 1, 0, 3, 1, 1, 1, 3, 2, 1, 2, 3, 3, 1, 3, 3, 4, 1, 4, 3, 5, 1, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512] // bound per-exec cost, not coverage
		}
		h, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Drive(data, 1, func() error { return h.Check(t.Context()) }); err != nil {
			t.Fatal(err)
		}
	})
}

package types

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"london", "londom", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDamerauLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"ab", "ba", 1},     // transposition
		{"abcd", "acbd", 1}, // inner transposition
		{"ca", "abc", 3},    // restricted DL classic case
		{"kitten", "sitting", 3},
		{"edinburgh", "edinbrugh", 1},
		{"x", "", 1},
		{"", "xy", 2},
	}
	for _, c := range cases {
		if got := DamerauLevenshtein(c.a, c.b); got != c.want {
			t.Errorf("DL(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceNormalization(t *testing.T) {
	if d := Distance(NewString("abc"), NewString("abc")); d != 0 {
		t.Errorf("identical distance = %v", d)
	}
	if d := Distance(NewString("abc"), NewString("xyz")); d != 1 {
		t.Errorf("disjoint distance = %v, want 1", d)
	}
	if d := Distance(Null, Null); d != 0 {
		t.Errorf("null-null distance = %v", d)
	}
	if d := Distance(Null, NewString("abcd")); d != 1 {
		t.Errorf("null-string distance = %v, want 1", d)
	}
	d := Distance(NewString("london"), NewString("londom"))
	if d <= 0 || d >= 1 {
		t.Errorf("near-miss distance = %v, want in (0,1)", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry.
	sym := func(a, b string) bool {
		return Distance(NewString(a), NewString(b)) == Distance(NewString(b), NewString(a))
	}
	if err := quick.Check(sym, nil); err != nil {
		t.Error(err)
	}
	// Bounds [0,1].
	bounds := func(a, b string) bool {
		d := Distance(NewString(a), NewString(b))
		return d >= 0 && d <= 1
	}
	if err := quick.Check(bounds, nil); err != nil {
		t.Error(err)
	}
	// Identity of indiscernibles (one direction): d(a,a) == 0.
	ident := func(a string) bool { return Distance(NewString(a), NewString(a)) == 0 }
	if err := quick.Check(ident, nil); err != nil {
		t.Error(err)
	}
	// DL never exceeds Levenshtein.
	dl := func(a, b string) bool {
		if len(a) > 64 || len(b) > 64 {
			return true
		}
		return DamerauLevenshtein(a, b) <= Levenshtein(a, b)
	}
	if err := quick.Check(dl, nil); err != nil {
		t.Error(err)
	}
}

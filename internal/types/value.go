// Package types defines the value model shared by every layer of Semandaq:
// the relational store, the SQL engine, the CFD formalism and the repair
// cost model all operate on Value.
//
// A Value is a small tagged union over the SQL-ish scalar types the paper's
// customer relation needs (strings, integers, floats, booleans) plus NULL.
// Values are immutable; all operations return new values.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNull sorts before every other kind;
// comparisons across the numeric kinds coerce to float64.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64   // KindInt, KindBool (0/1)
	f    float64 // KindFloat
	s    string  // KindString
}

// Null is the NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating-point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if v is not an INT.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload, coercing INT. Panics on other kinds.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("types: Float() on %s value", v.kind))
	}
}

// Str returns the string payload. It panics if v is not a STRING.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if v is not a BOOL.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// String renders the value for display. NULL renders as "NULL"; strings are
// rendered bare (use SQLString for quoted form).
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// SQLString renders the value as a SQL literal (strings single-quoted with
// embedded quotes doubled).
func (v Value) SQLString() string {
	if v.kind == KindString {
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	}
	return v.String()
}

// Equal reports whether two values are equal. NULL equals only NULL
// (this is the store-level identity notion, not SQL ternary logic; the SQL
// engine layers three-valued logic on top). INT and FLOAT compare
// numerically across kinds.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// Compare orders two values: -1, 0, +1. The total order is
// NULL < BOOL < numbers < STRING across kinds, with numeric kinds compared
// by value.
func (v Value) Compare(o Value) int {
	vr, or := v.rank(), o.rank()
	if vr != or {
		if vr < or {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return cmpInt64(v.i, o.i)
	case KindInt:
		if o.kind == KindInt {
			return cmpInt64(v.i, o.i)
		}
		return cmpFloat64(float64(v.i), o.f)
	case KindFloat:
		if o.kind == KindInt {
			return cmpFloat64(v.f, float64(o.i))
		}
		return cmpFloat64(v.f, o.f)
	case KindString:
		return strings.Compare(v.s, o.s)
	default:
		return 0
	}
}

// rank groups kinds into comparison classes: numbers share a class.
func (v Value) rank() int {
	switch v.kind {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpFloat64 orders floats totally: NaN sorts before every number and all
// NaNs compare equal. Without the explicit NaN arm, a NaN would compare
// "equal" to every float (both < and > are false), making Equal fail to be
// an equivalence relation and contradicting Key(), which gives NaN its own
// class — the grouping layers require Equal and Key to induce the same
// partition.
func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	switch an, bn := math.IsNaN(a), math.IsNaN(b); {
	case an && bn:
		return 0
	case an:
		return -1
	default:
		return 1
	}
}

// Key returns a compact string that is equal for equal values and distinct
// for distinct values; it is used as a map key by indexes, group-by and the
// violation bookkeeping. The leading tag byte keeps kinds from colliding
// (numbers share a tag so 1 == 1.0 keys identically).
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindBool:
		if v.i != 0 {
			return "bt"
		}
		return "bf"
	case KindInt:
		return "d" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		f := v.f
		if f == float64(int64(f)) {
			// Key integral floats like ints so 1 and 1.0 group together.
			return "d" + strconv.FormatInt(int64(f), 10)
		}
		return "f" + strconv.FormatFloat(f, 'g', -1, 64)
	case KindString:
		return "s" + v.s
	default:
		return "?"
	}
}

// WriteGroupKey appends v's Key() to b in length-prefixed form. Composite
// grouping keys — store indexes, detection groups, SQL joins/GROUP
// BY/DISTINCT — concatenate several value keys; the length prefix keeps a
// byte sequence inside one key from aliasing the boundary between values,
// which a plain separator byte cannot guarantee. Every layer building a
// multi-value key must use this one encoding: some of the keys are compared
// across packages.
func (v Value) WriteGroupKey(b *strings.Builder) {
	k := v.Key()
	b.WriteString(strconv.Itoa(len(k)))
	b.WriteByte(':')
	b.WriteString(k)
}

// AppendGroupKey appends exactly the bytes WriteGroupKey would write to a
// reusable byte slice. Streaming consumers (the SQL engine's hash probes
// and grouping sink) build composite keys into a scratch buffer and look
// maps up via string(buf) — which Go compiles to an allocation-free lookup
// — instead of paying a strings.Builder per row.
func (v Value) AppendGroupKey(dst []byte) []byte {
	// Emit Key()'s bytes without materializing the string: a stack scratch
	// holds the short numeric/tag keys, and string payloads are appended
	// straight from the value. The bytes must stay identical to
	// WriteGroupKey — tests diff the two encodings.
	var scratch [32]byte
	var k []byte
	switch v.kind {
	case KindNull:
		k = append(scratch[:0], 'n')
	case KindBool:
		if v.i != 0 {
			k = append(scratch[:0], 'b', 't')
		} else {
			k = append(scratch[:0], 'b', 'f')
		}
	case KindInt:
		k = strconv.AppendInt(append(scratch[:0], 'd'), v.i, 10)
	case KindFloat:
		if f := v.f; f == float64(int64(f)) {
			k = strconv.AppendInt(append(scratch[:0], 'd'), int64(f), 10)
		} else {
			k = strconv.AppendFloat(append(scratch[:0], 'f'), f, 'g', -1, 64)
		}
	case KindString:
		dst = strconv.AppendInt(dst, int64(len(v.s))+1, 10)
		dst = append(dst, ':', 's')
		return append(dst, v.s...)
	default:
		k = append(scratch[:0], '?')
	}
	dst = strconv.AppendInt(dst, int64(len(k)), 10)
	dst = append(dst, ':')
	return append(dst, k...)
}

// Parse converts a raw text field (e.g. from CSV) into a Value, inferring
// the kind: empty → NULL, integer syntax → INT, float syntax → FLOAT,
// TRUE/FALSE → BOOL, otherwise STRING.
func Parse(raw string) Value {
	if raw == "" {
		return Null
	}
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return NewFloat(f)
	}
	switch strings.ToUpper(raw) {
	case "TRUE":
		return NewBool(true)
	case "FALSE":
		return NewBool(false)
	}
	return NewString(raw)
}

// CoerceString renders any value as the string the CFD layer pattern-matches
// against. NULL coerces to the empty string.
func (v Value) CoerceString() string {
	if v.kind == KindNull {
		return ""
	}
	return v.String()
}

package types

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int() = %d, want 42", got)
	}
	if got := NewFloat(3.5).Float(); got != 3.5 {
		t.Errorf("Float() = %v, want 3.5", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str() = %q, want abc", got)
	}
	if !NewBool(true).Bool() {
		t.Error("Bool() = false, want true")
	}
	if !Null.IsNull() {
		t.Error("Null.IsNull() = false")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be NULL")
	}
}

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null, KindNull},
		{NewBool(false), KindBool},
		{NewInt(1), KindInt},
		{NewFloat(1), KindFloat},
		{NewString(""), KindString},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() of %v = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOL", KindInt: "INT",
		KindFloat: "FLOAT", KindString: "STRING",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"Int on string", func() { NewString("x").Int() }},
		{"Str on int", func() { NewInt(1).Str() }},
		{"Bool on null", func() { Null.Bool() }},
		{"Float on string", func() { NewString("x").Float() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.f()
		})
	}
}

func TestFloatCoercesInt(t *testing.T) {
	if got := NewInt(7).Float(); got != 7.0 {
		t.Errorf("NewInt(7).Float() = %v, want 7", got)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NewInt(-3), "-3"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSQLString(t *testing.T) {
	if got := NewString("O'Brien").SQLString(); got != "'O''Brien'" {
		t.Errorf("SQLString = %q", got)
	}
	if got := NewInt(5).SQLString(); got != "5" {
		t.Errorf("SQLString = %q", got)
	}
	if got := Null.SQLString(); got != "NULL" {
		t.Errorf("SQLString = %q", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Ascending sequence across kinds.
	seq := []Value{
		Null,
		NewBool(false), NewBool(true),
		NewInt(-5), NewFloat(-1.5), NewInt(0), NewFloat(0.5), NewInt(1), NewInt(10),
		NewString(""), NewString("a"), NewString("b"),
	}
	for i := range seq {
		for j := range seq {
			got := seq[i].Compare(seq[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", seq[i], seq[j], got, want)
			}
		}
	}
}

func TestNumericCrossKindEquality(t *testing.T) {
	if !NewInt(3).Equal(NewFloat(3)) {
		t.Error("3 should equal 3.0")
	}
	if NewInt(3).Equal(NewFloat(3.1)) {
		t.Error("3 should not equal 3.1")
	}
	if NewInt(3).Key() != NewFloat(3).Key() {
		t.Error("3 and 3.0 should share a Key")
	}
}

func TestKeyDistinctness(t *testing.T) {
	vals := []Value{
		Null, NewBool(true), NewBool(false),
		NewInt(1), NewInt(2), NewFloat(1.5),
		NewString("1"), NewString("TRUE"), NewString(""), NewString("n"),
	}
	keys := map[string]Value{}
	for _, v := range vals {
		k := v.Key()
		if prev, ok := keys[k]; ok {
			t.Errorf("Key collision between %v and %v: %q", prev, v, k)
		}
		keys[k] = v
	}
}

// TestAppendGroupKeyMatchesWriteGroupKey pins the two group-key encoders
// to identical bytes: AppendGroupKey is the allocation-free fast path the
// SQL engine's hash probes and grouping sink use, and any drift from
// WriteGroupKey would silently split (or merge) groups across layers that
// share the composite-key encoding.
func TestAppendGroupKeyMatchesWriteGroupKey(t *testing.T) {
	vals := []Value{
		Null, NewBool(true), NewBool(false),
		NewInt(0), NewInt(1), NewInt(-7), NewInt(1<<62 + 3),
		NewFloat(1.0), NewFloat(-2.0), NewFloat(1.5),
		NewFloat(-1.7976931348623157e+308), NewFloat(0.1),
		NewString(""), NewString("x"), NewString("12:ab"),
		NewString("with\x00nul"), NewString("EH2 4SD"),
	}
	for _, v := range vals {
		var b strings.Builder
		v.WriteGroupKey(&b)
		if got := string(v.AppendGroupKey(nil)); got != b.String() {
			t.Errorf("%v: AppendGroupKey = %q, WriteGroupKey = %q", v, got, b.String())
		}
	}
	// Composite keys concatenate; both encoders must agree there too.
	var b strings.Builder
	var app []byte
	for _, v := range vals {
		v.WriteGroupKey(&b)
		app = v.AppendGroupKey(app)
	}
	if string(app) != b.String() {
		t.Errorf("composite: AppendGroupKey = %q, WriteGroupKey = %q", app, b.String())
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		raw  string
		want Value
	}{
		{"", Null},
		{"42", NewInt(42)},
		{"-7", NewInt(-7)},
		{"3.25", NewFloat(3.25)},
		{"true", NewBool(true)},
		{"FALSE", NewBool(false)},
		{"hello", NewString("hello")},
		{"EH2 4SD", NewString("EH2 4SD")},
	}
	for _, c := range cases {
		if got := Parse(c.raw); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("Parse(%q) = %v (%v), want %v (%v)",
				c.raw, got, got.Kind(), c.want, c.want.Kind())
		}
	}
}

func TestCoerceString(t *testing.T) {
	if got := Null.CoerceString(); got != "" {
		t.Errorf("NULL coerces to %q, want empty", got)
	}
	if got := NewInt(9).CoerceString(); got != "9" {
		t.Errorf("got %q", got)
	}
}

func TestCompareProperties(t *testing.T) {
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Reflexivity of Equal for strings.
	g := func(s string) bool { return NewString(s).Equal(NewString(s)) }
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	// Key equality iff Equal, for mixed ints/strings.
	h := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return (va.Key() == vb.Key()) == va.Equal(vb)
	}
	if err := quick.Check(h, nil); err != nil {
		t.Error(err)
	}
}

// TestCompareNaN pins the NaN arm of the float comparison: without it,
// NaN compared "equal" to every number (both < and > are false), so Equal
// was not an equivalence relation and disagreed with the partition Key()
// induces — the columnar dictionary and the row-path grouping would then
// split NaN rows differently.
func TestCompareNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if nan.Compare(NewFloat(5)) == 0 || nan.Equal(NewInt(5)) {
		t.Error("NaN must not compare equal to a number")
	}
	if nan.Compare(NewFloat(math.NaN())) != 0 {
		t.Error("NaN must compare equal to NaN")
	}
	if got, want := nan.Compare(NewFloat(-1e300)), -1; got != want {
		t.Errorf("NaN vs -1e300 = %d, want %d (NaN sorts before numbers)", got, want)
	}
	if got, want := NewInt(0).Compare(nan), 1; got != want {
		t.Errorf("0 vs NaN = %d, want %d", got, want)
	}
	// Key agrees: NaN is its own class.
	if nan.Key() == NewFloat(5).Key() {
		t.Error("NaN Key must differ from a number's Key")
	}
}

package types

// This file implements the string-distance machinery behind the repair cost
// model of Cong et al. (VLDB 2007): the cost of changing a cell from v to v'
// is w(t, A) * dist(v, v') / max(|v|, |v'|), where dist is the
// Damerau–Levenshtein edit distance.

// Levenshtein returns the classic edit distance (insert, delete, substitute)
// between a and b, operating on bytes. It is O(len(a)*len(b)) time and
// O(min) space.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	prev := make([]int, len(a)+1)
	cur := make([]int, len(a)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(b); j++ {
		cur[0] = j
		for i := 1; i <= len(a); i++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[i] = min3(prev[i]+1, cur[i-1]+1, prev[i-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(a)]
}

// DamerauLevenshtein returns the restricted Damerau–Levenshtein distance
// (edit distance with adjacent transposition) between a and b.
func DamerauLevenshtein(a, b string) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	// Three rolling rows: two-back, previous, current.
	d2 := make([]int, lb+1)
	d1 := make([]int, lb+1)
	d0 := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		d1[j] = j
	}
	for i := 1; i <= la; i++ {
		d0[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d0[j] = min3(d1[j]+1, d0[j-1]+1, d1[j-1]+cost)
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := d2[j-2] + 1; t < d0[j] {
					d0[j] = t
				}
			}
		}
		d2, d1, d0 = d1, d0, d2
	}
	return d1[lb]
}

// Distance returns the normalized edit distance in [0,1] between two values
// rendered as strings: DL(a,b) / max(|a|,|b|). Equal values cost 0; changing
// to or from NULL (empty string) costs 1 unless both are empty.
func Distance(a, b Value) float64 {
	as, bs := a.CoerceString(), b.CoerceString()
	if as == bs {
		return 0
	}
	m := len(as)
	if len(bs) > m {
		m = len(bs)
	}
	if m == 0 {
		return 0
	}
	return float64(DamerauLevenshtein(as, bs)) / float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

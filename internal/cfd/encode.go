package cfd

import (
	"fmt"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// This file implements the relational representation of pattern tableaux
// from the TODS paper: a CFD's tableau is itself stored as a relation, so
// the constraint engine "maximally leverages the use of indices and other
// optimizations provided by the DBMS" (Semandaq, §2), and the generated
// detection SQL can simply join the data table with the tableau table.
//
// Encoding: one column per attribute of X followed by one per attribute of
// Y; constants keep their typed value, the wildcard is stored as the string
// "_" (the paper's convention). A data value that is literally the string
// "_" would be indistinguishable from the wildcard — the same caveat the
// paper's SQL technique carries.

// TableauTableName returns the canonical name for a CFD's encoded tableau.
func TableauTableName(c *CFD) string { return "cfd_tp_" + c.ID }

// wildcardValue is the stored representation of "_".
var wildcardValue = types.NewString(WildcardToken)

// EncodeTableau materializes the CFD's tableau as a table named name (or
// TableauTableName(c) if name is empty) and registers it in the store,
// replacing any previous version.
func EncodeTableau(store *relstore.Store, c *CFD, name string) (*relstore.Table, error) {
	if err := c.checkArity(); err != nil {
		return nil, err
	}
	if name == "" {
		name = TableauTableName(c)
	}
	attrs := append(append([]string{}, c.LHS...), c.RHS...)
	tab := relstore.NewTable(schema.New(name, attrs...))
	for _, pt := range c.Tableau {
		row := make(relstore.Tuple, 0, len(attrs))
		for _, p := range pt.LHS {
			row = append(row, encodeCell(p))
		}
		for _, p := range pt.RHS {
			row = append(row, encodeCell(p))
		}
		if _, err := tab.Insert(row); err != nil {
			return nil, err
		}
	}
	store.Put(tab)
	return tab, nil
}

func encodeCell(p PatternValue) types.Value {
	if p.Wildcard {
		return wildcardValue
	}
	return p.Const
}

// DecodeTableau reconstructs a CFD from an encoded tableau table. The
// caller supplies the embedded FD's attribute split (the encoding stores X
// then Y, but the table alone does not record where X ends).
func DecodeTableau(tab *relstore.Table, id, dataTable string, lhs, rhs []string) (*CFD, error) {
	sc := tab.Schema()
	if sc.Arity() != len(lhs)+len(rhs) {
		return nil, fmt.Errorf("cfd: tableau %s has %d columns, want %d",
			sc.Name, sc.Arity(), len(lhs)+len(rhs))
	}
	c := &CFD{ID: id, Table: dataTable,
		LHS: append([]string(nil), lhs...),
		RHS: append([]string(nil), rhs...)}
	var err error
	tab.Snapshot().Scan(func(_ relstore.TupleID, row relstore.Tuple) bool {
		pt := PatternTuple{}
		for i := range lhs {
			pt.LHS = append(pt.LHS, decodeCell(row[i]))
		}
		for i := range rhs {
			pt.RHS = append(pt.RHS, decodeCell(row[len(lhs)+i]))
		}
		c.Tableau = append(c.Tableau, pt)
		return true
	})
	if err != nil {
		return nil, err
	}
	if cerr := c.checkArity(); cerr != nil {
		return nil, cerr
	}
	return c, nil
}

func decodeCell(v types.Value) PatternValue {
	if v.Kind() == types.KindString && v.Str() == WildcardToken {
		return Wild
	}
	return Constant(v)
}

package cfd

import (
	"strings"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func customerSchema() *schema.Relation {
	return schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC")
}

// phi2 is the paper's φ2: [CNT=UK, ZIP=_] -> [STR=_].
func phi2() *CFD {
	return New("phi2", "customer",
		[]string{"CNT", "ZIP"}, []string{"STR"},
		PatternTuple{
			LHS: []PatternValue{ConstStr("UK"), Wild},
			RHS: []PatternValue{Wild},
		})
}

// phi4 is the paper's φ4: [CC=44] -> [CNT=UK].
func phi4() *CFD {
	return New("phi4", "customer",
		[]string{"CC"}, []string{"CNT"},
		PatternTuple{
			LHS: []PatternValue{Constant(types.NewInt(44))},
			RHS: []PatternValue{ConstStr("UK")},
		})
}

func TestPatternValueMatches(t *testing.T) {
	if !Wild.Matches(types.NewString("anything")) || !Wild.Matches(types.Null) {
		t.Error("wildcard should match everything")
	}
	c := ConstStr("UK")
	if !c.Matches(types.NewString("UK")) {
		t.Error("constant should match equal value")
	}
	if c.Matches(types.NewString("US")) || c.Matches(types.Null) {
		t.Error("constant should not match different value")
	}
}

func TestPatternValueEqualAndString(t *testing.T) {
	if !Wild.Equal(Wild) {
		t.Error("wild == wild")
	}
	if Wild.Equal(ConstStr("_x")) {
		t.Error("wild != const")
	}
	if !ConstStr("a").Equal(ConstStr("a")) || ConstStr("a").Equal(ConstStr("b")) {
		t.Error("const equality")
	}
	if Wild.String() != "_" || ConstStr("UK").String() != "UK" {
		t.Error("pattern String")
	}
}

func TestNewFDAllWildcards(t *testing.T) {
	fd := NewFD("f1", "customer", []string{"CNT", "ZIP"}, []string{"CITY"})
	if len(fd.Tableau) != 1 {
		t.Fatal("tableau size")
	}
	for _, p := range fd.Tableau[0].LHS {
		if !p.Wildcard {
			t.Error("LHS should be wildcards")
		}
	}
	if !fd.Tableau[0].RHS[0].Wildcard {
		t.Error("RHS should be wildcard")
	}
	if fd.IsConstantPattern(0) {
		t.Error("FD pattern is variable")
	}
	if !fd.HasVariablePattern() {
		t.Error("FD has a variable pattern")
	}
}

func TestIsConstantPattern(t *testing.T) {
	if phi2().IsConstantPattern(0) {
		t.Error("phi2 is variable")
	}
	if !phi4().IsConstantPattern(0) {
		t.Error("phi4 is constant")
	}
	if phi4().HasVariablePattern() {
		t.Error("phi4 has no variable pattern")
	}
}

func TestValidate(t *testing.T) {
	sc := customerSchema()
	if err := phi2().Validate(sc); err != nil {
		t.Errorf("phi2 should validate: %v", err)
	}
	bad := phi2()
	bad.LHS = []string{"CNT", "NOPE"}
	bad.Tableau[0].LHS = []PatternValue{ConstStr("UK"), Wild}
	if err := bad.Validate(sc); err == nil {
		t.Error("unknown attribute should fail")
	}
	dup := New("d", "customer", []string{"CNT"}, []string{"CNT"},
		PatternTuple{LHS: []PatternValue{Wild}, RHS: []PatternValue{Wild}})
	if err := dup.Validate(sc); err == nil {
		t.Error("duplicate attribute should fail")
	}
	wrongTable := phi2()
	wrongTable.Table = "orders"
	if err := wrongTable.Validate(sc); err == nil {
		t.Error("table mismatch should fail")
	}
}

func TestMatchLHSAndRHS(t *testing.T) {
	sc := customerSchema()
	c := phi2()
	lhsPos, _ := sc.Positions(c.LHS)
	rhsPos, _ := sc.Positions(c.RHS)
	ukRow := relstore.Tuple{
		types.NewString("Mike"), types.NewString("UK"), types.NewString("Edinburgh"),
		types.NewString("EH2 4SD"), types.NewString("Mayfield"),
		types.NewInt(44), types.NewInt(131)}
	usRow := ukRow.Clone()
	usRow[1] = types.NewString("US")
	if !c.MatchLHS(0, ukRow, lhsPos) {
		t.Error("UK row should match LHS")
	}
	if c.MatchLHS(0, usRow, lhsPos) {
		t.Error("US row should not match LHS")
	}
	if !c.MatchRHS(0, ukRow, rhsPos) {
		t.Error("wildcard RHS always matches")
	}

	c4 := phi4()
	lhs4, _ := sc.Positions(c4.LHS)
	rhs4, _ := sc.Positions(c4.RHS)
	if !c4.MatchLHS(0, ukRow, lhs4) || !c4.MatchRHS(0, ukRow, rhs4) {
		t.Error("CC=44/CNT=UK row should match phi4 on both sides")
	}
	if c4.MatchRHS(0, usRow, rhs4) {
		t.Error("CC=44/CNT=US should fail phi4's RHS")
	}
}

func TestNormalize(t *testing.T) {
	c := New("phi1", "customer",
		[]string{"CNT", "ZIP"}, []string{"CITY", "STR"},
		PatternTuple{
			LHS: []PatternValue{ConstStr("UK"), Wild},
			RHS: []PatternValue{Wild, ConstStr("Main")},
		})
	norm := c.Normalize()
	if len(norm) != 2 {
		t.Fatalf("normalize produced %d", len(norm))
	}
	if norm[0].RHS[0] != "CITY" || norm[1].RHS[0] != "STR" {
		t.Errorf("RHS split = %v %v", norm[0].RHS, norm[1].RHS)
	}
	if !norm[0].Tableau[0].RHS[0].Wildcard {
		t.Error("CITY pattern should stay wildcard")
	}
	if norm[1].Tableau[0].RHS[0].Wildcard {
		t.Error("STR pattern should stay constant")
	}
	if !strings.Contains(norm[0].ID, "CITY") {
		t.Errorf("ID = %q", norm[0].ID)
	}
	// Single-RHS CFDs normalize to a clone of themselves.
	single := phi2()
	n := single.Normalize()
	if len(n) != 1 || n[0] == single {
		t.Error("single-RHS normalize should return one clone")
	}
}

func TestMergeByFD(t *testing.T) {
	a := phi2()
	b := phi2()
	b.ID = "phi2b"
	b.Tableau[0].LHS[0] = ConstStr("US")
	c := phi4()
	merged := MergeByFD([]*CFD{a, b, c})
	if len(merged) != 2 {
		t.Fatalf("merged = %d CFDs", len(merged))
	}
	if len(merged[0].Tableau) != 2 {
		t.Errorf("merged tableau = %d patterns", len(merged[0].Tableau))
	}
	// Duplicate patterns are dropped.
	dup := phi2()
	merged2 := MergeByFD([]*CFD{phi2(), dup})
	if len(merged2) != 1 || len(merged2[0].Tableau) != 1 {
		t.Errorf("duplicate merge = %+v", merged2)
	}
}

func TestFDKeyCaseInsensitive(t *testing.T) {
	a := phi2()
	b := phi2()
	b.Table = "CUSTOMER"
	b.LHS = []string{"cnt", "zip"}
	b.RHS = []string{"str"}
	if a.FDKey() != b.FDKey() {
		t.Errorf("FDKey mismatch: %q vs %q", a.FDKey(), b.FDKey())
	}
}

func TestAddPattern(t *testing.T) {
	c := phi2()
	err := c.AddPattern(PatternTuple{
		LHS: []PatternValue{ConstStr("US"), Wild},
		RHS: []PatternValue{Wild},
	})
	if err != nil || len(c.Tableau) != 2 {
		t.Errorf("AddPattern: %v, tableau=%d", err, len(c.Tableau))
	}
	if err := c.AddPattern(PatternTuple{LHS: []PatternValue{Wild}}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := phi2()
	d := c.Clone()
	d.Tableau[0].LHS[0] = ConstStr("FR")
	d.LHS[0] = "X"
	if c.Tableau[0].LHS[0].Const.Str() != "UK" || c.LHS[0] != "CNT" {
		t.Error("Clone should be deep")
	}
}

func TestCFDString(t *testing.T) {
	got := phi2().String()
	want := "customer: [CNT=UK, ZIP=_] -> [STR=_]"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	// Round-trips through the parser.
	back, err := ParseLine(got)
	if err != nil {
		t.Fatal(err)
	}
	if back.FDKey() != phi2().FDKey() || !back.Tableau[0].Equal(phi2().Tableau[0]) {
		t.Errorf("round trip = %v", back)
	}
	// Multi-pattern CFDs print one line per pattern.
	c := phi2()
	c.AddPattern(PatternTuple{
		LHS: []PatternValue{ConstStr("US"), Wild},
		RHS: []PatternValue{Wild},
	})
	if lines := strings.Split(c.String(), "\n"); len(lines) != 2 {
		t.Errorf("multi-pattern String = %q", c.String())
	}
}

func TestStringQuotesAwkwardConstants(t *testing.T) {
	c := New("q", "customer", []string{"ZIP"}, []string{"STR"},
		PatternTuple{
			LHS: []PatternValue{ConstStr("EH2 4SD")},
			RHS: []PatternValue{Constant(types.NewString("_"))},
		})
	s := c.String()
	if !strings.Contains(s, "'EH2 4SD'") {
		t.Errorf("space constant not quoted: %q", s)
	}
	if !strings.Contains(s, "'_'") {
		t.Errorf("literal underscore not quoted: %q", s)
	}
	back, err := ParseLine(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tableau[0].RHS[0].Wildcard {
		t.Error("quoted '_' must parse as a constant, not the wildcard")
	}
	if back.Tableau[0].LHS[0].Const.Str() != "EH2 4SD" {
		t.Errorf("quoted constant = %v", back.Tableau[0].LHS[0])
	}
}

func TestNewPanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New("bad", "r", []string{"A"}, []string{"B"},
		PatternTuple{LHS: []PatternValue{Wild, Wild}, RHS: []PatternValue{Wild}})
}

// Package cfd implements conditional functional dependencies, the
// constraint formalism at the core of Semandaq (Fan, Geerts, Jia,
// Kementsietsidis, TODS 2008).
//
// A CFD φ = (R: X → Y, Tp) consists of a standard FD X → Y embedded in it
// together with a pattern tableau Tp: each pattern tuple assigns to every
// attribute of X ∪ Y either a constant or the "don't care" wildcard "_".
// The embedded FD must hold on all tuples matching the LHS pattern, and
// those tuples must also match the RHS pattern. The paper's examples:
//
//	φ1: customer: [CNT=_, ZIP=_] -> [CITY=_]      (a classical FD)
//	φ2: customer: [CNT=UK, ZIP=_] -> [STR=_]      (FD holding only in the UK)
//	φ4: customer: [CC=44] -> [CNT=UK]             (a constant binding)
package cfd

import (
	"fmt"
	"strings"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// WildcardToken is the textual representation of the "don't care" symbol,
// both in the parse syntax and in the relational encoding of tableaux.
const WildcardToken = "_"

// PatternValue is one cell of a pattern tuple: a constant or the wildcard.
type PatternValue struct {
	Wildcard bool
	Const    types.Value
}

// Wild is the wildcard pattern value.
var Wild = PatternValue{Wildcard: true}

// Constant builds a constant pattern value.
func Constant(v types.Value) PatternValue { return PatternValue{Const: v} }

// ConstStr builds a constant string pattern value.
func ConstStr(s string) PatternValue { return Constant(types.Parse(s)) }

// Matches reports whether a data value matches this pattern cell:
// wildcards match everything (including NULL); constants match equal values.
func (p PatternValue) Matches(v types.Value) bool {
	if p.Wildcard {
		return true
	}
	return p.Const.Equal(v)
}

// String renders the pattern value ("_" for wildcards).
func (p PatternValue) String() string {
	if p.Wildcard {
		return WildcardToken
	}
	return p.Const.String()
}

// Equal reports pattern-cell equality.
func (p PatternValue) Equal(o PatternValue) bool {
	if p.Wildcard != o.Wildcard {
		return false
	}
	return p.Wildcard || p.Const.Equal(o.Const)
}

// PatternTuple assigns a PatternValue to every LHS and RHS attribute of the
// embedded FD (in the CFD's attribute order).
type PatternTuple struct {
	LHS []PatternValue
	RHS []PatternValue
}

// Clone deep-copies the pattern tuple.
func (pt PatternTuple) Clone() PatternTuple {
	l := make([]PatternValue, len(pt.LHS))
	copy(l, pt.LHS)
	r := make([]PatternValue, len(pt.RHS))
	copy(r, pt.RHS)
	return PatternTuple{LHS: l, RHS: r}
}

// Equal reports component-wise pattern equality.
func (pt PatternTuple) Equal(o PatternTuple) bool {
	if len(pt.LHS) != len(o.LHS) || len(pt.RHS) != len(o.RHS) {
		return false
	}
	for i := range pt.LHS {
		if !pt.LHS[i].Equal(o.LHS[i]) {
			return false
		}
	}
	for i := range pt.RHS {
		if !pt.RHS[i].Equal(o.RHS[i]) {
			return false
		}
	}
	return true
}

// String renders the pattern tuple as ([a, b] || [c]).
func (pt PatternTuple) String() string {
	return "(" + joinPatterns(pt.LHS) + " || " + joinPatterns(pt.RHS) + ")"
}

func joinPatterns(ps []PatternValue) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, ", ")
}

// CFD is a conditional functional dependency over one relation.
type CFD struct {
	// ID is a short identifier used in reports (e.g. "phi2"). Optional.
	ID string
	// Table names the relation the CFD constrains.
	Table string
	// LHS and RHS are the attributes of the embedded FD X → Y.
	LHS []string
	RHS []string
	// Tableau is the pattern tableau Tp; it must be non-empty and every
	// pattern tuple must have len(LHS) LHS cells and len(RHS) RHS cells.
	Tableau []PatternTuple
}

// New builds a single-pattern CFD. It panics on arity mismatch (the
// programmatic constructors are used with literal slices; the text parser
// returns errors instead).
func New(id, table string, lhs []string, rhs []string, pattern PatternTuple) *CFD {
	c := &CFD{ID: id, Table: table, LHS: lhs, RHS: rhs, Tableau: []PatternTuple{pattern}}
	if err := c.checkArity(); err != nil {
		panic(err)
	}
	return c
}

// NewFD builds the CFD form of a classical FD X → Y (all-wildcard pattern).
func NewFD(id, table string, lhs []string, rhs []string) *CFD {
	pt := PatternTuple{
		LHS: make([]PatternValue, len(lhs)),
		RHS: make([]PatternValue, len(rhs)),
	}
	for i := range pt.LHS {
		pt.LHS[i] = Wild
	}
	for i := range pt.RHS {
		pt.RHS[i] = Wild
	}
	return New(id, table, lhs, rhs, pt)
}

func (c *CFD) checkArity() error {
	if len(c.LHS) == 0 {
		return fmt.Errorf("cfd %s: empty LHS", c.ID)
	}
	if len(c.RHS) == 0 {
		return fmt.Errorf("cfd %s: empty RHS", c.ID)
	}
	if len(c.Tableau) == 0 {
		return fmt.Errorf("cfd %s: empty tableau", c.ID)
	}
	for _, pt := range c.Tableau {
		if len(pt.LHS) != len(c.LHS) || len(pt.RHS) != len(c.RHS) {
			return fmt.Errorf("cfd %s: pattern arity mismatch", c.ID)
		}
	}
	return nil
}

// Validate checks the CFD's shape and that every attribute exists in sc.
func (c *CFD) Validate(sc *schema.Relation) error {
	if err := c.checkArity(); err != nil {
		return err
	}
	if c.Table != "" && !strings.EqualFold(c.Table, sc.Name) {
		return fmt.Errorf("cfd %s: relation %q does not match schema %q", c.ID, c.Table, sc.Name)
	}
	seen := map[string]bool{}
	for _, a := range append(append([]string{}, c.LHS...), c.RHS...) {
		if !sc.Has(a) {
			return fmt.Errorf("cfd %s: relation %s has no attribute %q", c.ID, sc.Name, a)
		}
		key := strings.ToLower(a)
		if seen[key] {
			return fmt.Errorf("cfd %s: attribute %q appears twice", c.ID, a)
		}
		seen[key] = true
	}
	return nil
}

// FDKey identifies the embedded FD (table + X → Y), used to merge tableaux
// of CFDs sharing an embedded FD as the SQL detection technique requires.
func (c *CFD) FDKey() string {
	norm := func(attrs []string) string {
		low := make([]string, len(attrs))
		for i, a := range attrs {
			low[i] = strings.ToLower(a)
		}
		return strings.Join(low, ",")
	}
	return strings.ToLower(c.Table) + ":" + norm(c.LHS) + "->" + norm(c.RHS)
}

// AddPattern appends a pattern tuple to the tableau.
func (c *CFD) AddPattern(pt PatternTuple) error {
	if len(pt.LHS) != len(c.LHS) || len(pt.RHS) != len(c.RHS) {
		return fmt.Errorf("cfd %s: pattern arity mismatch", c.ID)
	}
	c.Tableau = append(c.Tableau, pt)
	return nil
}

// Clone deep-copies the CFD.
func (c *CFD) Clone() *CFD {
	out := &CFD{
		ID:    c.ID,
		Table: c.Table,
		LHS:   append([]string(nil), c.LHS...),
		RHS:   append([]string(nil), c.RHS...),
	}
	for _, pt := range c.Tableau {
		out.Tableau = append(out.Tableau, pt.Clone())
	}
	return out
}

// IsConstantPattern reports whether pattern i has only constants on the RHS
// (every matching tuple is checked against fixed values; violations are
// single-tuple).
func (c *CFD) IsConstantPattern(i int) bool {
	for _, p := range c.Tableau[i].RHS {
		if p.Wildcard {
			return false
		}
	}
	return true
}

// HasVariablePattern reports whether any pattern has a wildcard RHS cell
// (such patterns can only be violated by tuple pairs).
func (c *CFD) HasVariablePattern() bool {
	for i := range c.Tableau {
		if !c.IsConstantPattern(i) {
			return true
		}
	}
	return false
}

// Normalize rewrites the CFD into the normal form of the TODS paper: one
// CFD per RHS attribute, so every produced CFD has a single-attribute RHS.
// Pattern tuples are projected accordingly. IDs get a ".<attr>" suffix when
// splitting occurs.
func (c *CFD) Normalize() []*CFD {
	if len(c.RHS) == 1 {
		return []*CFD{c.Clone()}
	}
	out := make([]*CFD, 0, len(c.RHS))
	for j, attr := range c.RHS {
		nc := &CFD{
			ID:    fmt.Sprintf("%s.%s", c.ID, attr),
			Table: c.Table,
			LHS:   append([]string(nil), c.LHS...),
			RHS:   []string{attr},
		}
		for _, pt := range c.Tableau {
			nc.Tableau = append(nc.Tableau, PatternTuple{
				LHS: append([]PatternValue(nil), pt.LHS...),
				RHS: []PatternValue{pt.RHS[j]},
			})
		}
		out = append(out, nc)
	}
	return out
}

// MatchLHS reports whether the tuple (with attribute positions lhsPos,
// aligned with c.LHS) matches the LHS of pattern i.
func (c *CFD) MatchLHS(i int, row relstore.Tuple, lhsPos []int) bool {
	pt := c.Tableau[i]
	for k, p := range pt.LHS {
		if !p.Matches(row[lhsPos[k]]) {
			return false
		}
	}
	return true
}

// MatchRHS reports whether the tuple matches the RHS of pattern i.
func (c *CFD) MatchRHS(i int, row relstore.Tuple, rhsPos []int) bool {
	pt := c.Tableau[i]
	for k, p := range pt.RHS {
		if !p.Matches(row[rhsPos[k]]) {
			return false
		}
	}
	return true
}

// String renders the CFD in the paper's notation, one pattern per line for
// multi-pattern tableaux:
//
//	customer: [CNT=UK, ZIP=_] -> [STR=_]
func (c *CFD) String() string {
	var b strings.Builder
	for i, pt := range c.Tableau {
		if i > 0 {
			b.WriteByte('\n')
		}
		if c.Table != "" {
			b.WriteString(c.Table)
			b.WriteString(": ")
		}
		b.WriteByte('[')
		for k, a := range c.LHS {
			if k > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a)
			b.WriteByte('=')
			b.WriteString(patternToken(pt.LHS[k]))
		}
		b.WriteString("] -> [")
		for k, a := range c.RHS {
			if k > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a)
			b.WriteByte('=')
			b.WriteString(patternToken(pt.RHS[k]))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// patternToken renders a pattern cell in the parseable syntax: wildcards as
// "_", string constants quoted when they contain delimiters.
func patternToken(p PatternValue) string {
	if p.Wildcard {
		return WildcardToken
	}
	s := p.Const.String()
	if p.Const.Kind() == types.KindString && strings.ContainsAny(s, ",[]'= \t") ||
		s == WildcardToken || s == "" {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return s
}

// MergeByFD groups CFDs by embedded FD and merges their tableaux, the
// preprocessing step the SQL detection technique relies on: a whole set of
// CFDs with the same embedded FD is checked with just two SQL queries.
// IDs of merged groups join with "+". Order is preserved.
func MergeByFD(cfds []*CFD) []*CFD {
	var order []string
	groups := map[string]*CFD{}
	for _, c := range cfds {
		key := c.FDKey()
		if g, ok := groups[key]; ok {
			for _, pt := range c.Tableau {
				dup := false
				for _, have := range g.Tableau {
					if have.Equal(pt) {
						dup = true
						break
					}
				}
				if !dup {
					g.Tableau = append(g.Tableau, pt.Clone())
				}
			}
			if c.ID != "" {
				g.ID = g.ID + "+" + c.ID
			}
			continue
		}
		groups[key] = c.Clone()
		order = append(order, key)
	}
	out := make([]*CFD, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	return out
}

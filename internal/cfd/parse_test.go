package cfd

import (
	"testing"

	"semandaq/internal/types"
)

func TestParseLineBasics(t *testing.T) {
	c, err := ParseLine("customer: [CNT=UK, ZIP=_] -> [STR=_]")
	if err != nil {
		t.Fatal(err)
	}
	if c.Table != "customer" {
		t.Errorf("table = %q", c.Table)
	}
	if len(c.LHS) != 2 || c.LHS[0] != "CNT" || c.LHS[1] != "ZIP" {
		t.Errorf("LHS = %v", c.LHS)
	}
	if len(c.RHS) != 1 || c.RHS[0] != "STR" {
		t.Errorf("RHS = %v", c.RHS)
	}
	pt := c.Tableau[0]
	if pt.LHS[0].Wildcard || pt.LHS[0].Const.Str() != "UK" {
		t.Errorf("LHS[0] = %v", pt.LHS[0])
	}
	if !pt.LHS[1].Wildcard || !pt.RHS[0].Wildcard {
		t.Error("wildcards not parsed")
	}
}

func TestParseLineNoTable(t *testing.T) {
	c, err := ParseLine("[CC=44] -> [CNT=UK]")
	if err != nil {
		t.Fatal(err)
	}
	if c.Table != "" {
		t.Errorf("table = %q", c.Table)
	}
	// 44 infers as INT.
	if c.Tableau[0].LHS[0].Const.Kind() != types.KindInt {
		t.Errorf("CC kind = %v", c.Tableau[0].LHS[0].Const.Kind())
	}
}

func TestParseLineImplicitWildcard(t *testing.T) {
	c, err := ParseLine("customer: [CNT, ZIP] -> [CITY]")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Tableau[0].LHS {
		if !p.Wildcard {
			t.Error("attr without '=' should be wildcard")
		}
	}
}

func TestParseLineQuotedValues(t *testing.T) {
	c, err := ParseLine("customer: [ZIP='EH2 4SD'] -> [STR='O''Connell St']")
	if err != nil {
		t.Fatal(err)
	}
	if c.Tableau[0].LHS[0].Const.Str() != "EH2 4SD" {
		t.Errorf("LHS = %v", c.Tableau[0].LHS[0])
	}
	if c.Tableau[0].RHS[0].Const.Str() != "O'Connell St" {
		t.Errorf("RHS = %v", c.Tableau[0].RHS[0])
	}
}

func TestParseLineErrors(t *testing.T) {
	cases := []string{
		"",
		"customer: [CNT=UK]",        // missing arrow
		"customer: CNT -> [STR]",    // missing bracket
		"customer: [CNT=UK] -> STR", // missing RHS bracket
		"customer: [] -> [STR]",     // empty LHS
		"customer: [CNT='unterminated] -> [STR]",
		"customer: [CNT=] -> [STR]",      // empty value
		": [CNT] -> [STR]",               // empty table
		"customer: [CNT] -> [STR] extra", // trailing
	}
	for _, src := range cases {
		if _, err := ParseLine(src); err == nil {
			t.Errorf("ParseLine(%q) should fail", src)
		}
	}
}

func TestParseSetMergesAndNumbers(t *testing.T) {
	text := `
# the paper's running example
customer: [CNT=_, ZIP=_] -> [CITY=_]
customer: [CNT=UK, ZIP=_] -> [STR=_]
customer: [CNT=US, ZIP=_] -> [STR=_]
customer: [CC=44] -> [CNT=UK]
`
	cfds, err := ParseSet(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfds) != 3 {
		t.Fatalf("got %d CFDs, want 3 (UK/US patterns merge)", len(cfds))
	}
	if cfds[0].ID != "phi1" || cfds[1].ID != "phi2" || cfds[2].ID != "phi3" {
		t.Errorf("IDs = %v %v %v", cfds[0].ID, cfds[1].ID, cfds[2].ID)
	}
	if len(cfds[1].Tableau) != 2 {
		t.Errorf("merged tableau = %d", len(cfds[1].Tableau))
	}
}

func TestParseSetExplicitID(t *testing.T) {
	cfds, err := ParseSet("zipstr@ customer: [CNT=UK, ZIP=_] -> [STR=_]")
	if err != nil {
		t.Fatal(err)
	}
	if cfds[0].ID != "zipstr" {
		t.Errorf("ID = %q", cfds[0].ID)
	}
}

func TestParseSetErrorsCarryLine(t *testing.T) {
	_, err := ParseSet("customer: [CNT] -> [STR]\nbroken line")
	if err == nil {
		t.Fatal("expected error")
	}
	if want := "line 2"; !contains(err.Error(), want) {
		t.Errorf("error %q should mention %q", err, want)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

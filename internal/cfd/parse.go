package cfd

import (
	"fmt"
	"strings"

	"semandaq/internal/types"
)

// This file implements the text syntax for CFDs used by the CLI, the HTTP
// API and the test corpus. One line per pattern tuple:
//
//	[table ':'] '[' attr['='value] (',' attr['='value])* ']'
//	    '->' '[' attr['='value] (',' attr['='value])* ']'
//
// A missing '=value' or the token '_' denotes the wildcard. Values may be
// bare words (no commas/brackets/spaces) or single-quoted strings with ''
// as the escape. Examples:
//
//	customer: [CNT=UK, ZIP=_] -> [STR=_]
//	[CC=44] -> [CNT=UK]
//	customer: [CNT, ZIP] -> [CITY]            (a classical FD)

// ParseLine parses a single-pattern CFD from one line of text.
func ParseLine(line string) (*CFD, error) {
	p := &lineParser{src: line}
	c, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("cfd: parse %q: %w", strings.TrimSpace(line), err)
	}
	return c, nil
}

// ParseSet parses a multi-line CFD specification. Blank lines and lines
// starting with '#' are skipped. Lines whose embedded FD matches an earlier
// line are merged into that CFD's tableau. IDs are assigned phi1, phi2, ...
// per distinct embedded FD; a line may override with "id@" prefix:
//
//	zipstr@ customer: [CNT=UK, ZIP=_] -> [STR=_]
func ParseSet(text string) ([]*CFD, error) {
	var singles []*CFD
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		id := ""
		if at := strings.Index(line, "@"); at > 0 && !strings.ContainsAny(line[:at], "[]':,=") {
			id = strings.TrimSpace(line[:at])
			line = strings.TrimSpace(line[at+1:])
		}
		c, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		c.ID = id
		singles = append(singles, c)
	}
	merged := MergeByFD(singles)
	n := 0
	for _, c := range merged {
		n++
		if c.ID == "" {
			c.ID = fmt.Sprintf("phi%d", n)
		} else {
			// Merged IDs may have accumulated "+"; keep the first token.
			c.ID = strings.SplitN(c.ID, "+", 2)[0]
		}
	}
	return merged, nil
}

type lineParser struct {
	src string
	pos int
}

func (p *lineParser) parse() (*CFD, error) {
	c := &CFD{}
	p.skipSpace()
	// Optional "table:" prefix — present when the next ':' appears before
	// the first '['.
	if i := strings.IndexByte(p.src[p.pos:], ':'); i >= 0 {
		j := strings.IndexByte(p.src[p.pos:], '[')
		if j < 0 || i < j {
			c.Table = strings.TrimSpace(p.src[p.pos : p.pos+i])
			if c.Table == "" {
				return nil, fmt.Errorf("empty table name")
			}
			p.pos += i + 1
		}
	}
	lhsAttrs, lhsPats, err := p.parseSide()
	if err != nil {
		return nil, fmt.Errorf("LHS: %w", err)
	}
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], "->") {
		return nil, fmt.Errorf("expected '->' at byte %d", p.pos)
	}
	p.pos += 2
	rhsAttrs, rhsPats, err := p.parseSide()
	if err != nil {
		return nil, fmt.Errorf("RHS: %w", err)
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("trailing input %q", p.src[p.pos:])
	}
	c.LHS, c.RHS = lhsAttrs, rhsAttrs
	c.Tableau = []PatternTuple{{LHS: lhsPats, RHS: rhsPats}}
	if err := c.checkArity(); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *lineParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *lineParser) parseSide() ([]string, []PatternValue, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '[' {
		return nil, nil, fmt.Errorf("expected '[' at byte %d", p.pos)
	}
	p.pos++
	var attrs []string
	var pats []PatternValue
	for {
		p.skipSpace()
		attr, err := p.parseWord()
		if err != nil {
			return nil, nil, err
		}
		pv := Wild
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '=' {
			p.pos++
			p.skipSpace()
			v, err := p.parsePatternValue()
			if err != nil {
				return nil, nil, err
			}
			pv = v
		}
		attrs = append(attrs, attr)
		pats = append(pats, pv)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	if p.pos >= len(p.src) || p.src[p.pos] != ']' {
		return nil, nil, fmt.Errorf("expected ']' at byte %d", p.pos)
	}
	p.pos++
	return attrs, pats, nil
}

func (p *lineParser) parseWord() (string, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ',' || c == ']' || c == '=' || c == ' ' || c == '\t' || c == '[' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected attribute name at byte %d", start)
	}
	return p.src[start:p.pos], nil
}

func (p *lineParser) parsePatternValue() (PatternValue, error) {
	if p.pos < len(p.src) && p.src[p.pos] == '\'' {
		// Quoted string constant.
		p.pos++
		var b strings.Builder
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if c == '\'' {
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\'' {
					b.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				return Constant(types.NewString(b.String())), nil
			}
			b.WriteByte(c)
			p.pos++
		}
		return PatternValue{}, fmt.Errorf("unterminated quoted value")
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ',' || c == ']' {
			break
		}
		p.pos++
	}
	raw := strings.TrimSpace(p.src[start:p.pos])
	if raw == "" {
		return PatternValue{}, fmt.Errorf("empty pattern value at byte %d", start)
	}
	if raw == WildcardToken {
		return Wild, nil
	}
	return Constant(types.Parse(raw)), nil
}

package cfd

import (
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

func TestEncodeTableau(t *testing.T) {
	store := relstore.NewStore()
	c := phi2()
	c.AddPattern(PatternTuple{
		LHS: []PatternValue{ConstStr("US"), Wild},
		RHS: []PatternValue{Wild},
	})
	tab, err := EncodeTableau(store, c, "")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Schema().Name != "cfd_tp_phi2" {
		t.Errorf("name = %q", tab.Schema().Name)
	}
	if tab.Schema().Arity() != 3 || tab.Len() != 2 {
		t.Errorf("shape = %d cols, %d rows", tab.Schema().Arity(), tab.Len())
	}
	_, rows := tab.Rows()
	if rows[0][0].Str() != "UK" || rows[0][1].Str() != "_" || rows[0][2].Str() != "_" {
		t.Errorf("row0 = %v", rows[0])
	}
	// Registered in the store.
	if _, ok := store.Table("cfd_tp_phi2"); !ok {
		t.Error("tableau not registered")
	}
}

func TestEncodePreservesTypes(t *testing.T) {
	store := relstore.NewStore()
	tab, err := EncodeTableau(store, phi4(), "tp4")
	if err != nil {
		t.Fatal(err)
	}
	_, rows := tab.Rows()
	if rows[0][0].Kind() != types.KindInt || rows[0][0].Int() != 44 {
		t.Errorf("CC pattern = %v (%v)", rows[0][0], rows[0][0].Kind())
	}
}

func TestDecodeTableauRoundTrip(t *testing.T) {
	store := relstore.NewStore()
	orig := phi2()
	orig.AddPattern(PatternTuple{
		LHS: []PatternValue{ConstStr("US"), ConstStr("07974")},
		RHS: []PatternValue{ConstStr("Mtn Ave")},
	})
	tab, err := EncodeTableau(store, orig, "")
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTableau(tab, "phi2", "customer", orig.LHS, orig.RHS)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tableau) != 2 {
		t.Fatalf("tableau = %d", len(back.Tableau))
	}
	for i := range orig.Tableau {
		if !back.Tableau[i].Equal(orig.Tableau[i]) {
			t.Errorf("pattern %d: %v != %v", i, back.Tableau[i], orig.Tableau[i])
		}
	}
}

func TestDecodeTableauArityMismatch(t *testing.T) {
	store := relstore.NewStore()
	tab, err := EncodeTableau(store, phi2(), "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTableau(tab, "x", "customer", []string{"A"}, []string{"B"}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestEncodeReplacesPrevious(t *testing.T) {
	store := relstore.NewStore()
	c := phi2()
	if _, err := EncodeTableau(store, c, ""); err != nil {
		t.Fatal(err)
	}
	c.AddPattern(PatternTuple{
		LHS: []PatternValue{ConstStr("US"), Wild},
		RHS: []PatternValue{Wild},
	})
	tab, err := EncodeTableau(store, c, "")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Errorf("re-encode rows = %d", tab.Len())
	}
	got, _ := store.Table("cfd_tp_phi2")
	if got != tab {
		t.Error("store should hold the new tableau")
	}
}

// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer / Pass /
// Diagnostic surface for semandaq-vet's custom checkers, built only on the
// standard library (go/ast, go/types), plus the interprocedural layer the
// x/tools framework calls facts (facts.go): typed, serializable statements
// about package-level objects that flow across package boundaries when the
// driver analyzes packages in import-DAG order.
//
// Why not the real thing: the repo builds offline with no module
// dependencies, and the x/tools framework is not vendored. The API shape
// is kept deliberately close to x/tools so the analyzers read idiomatically
// and could be ported to the real framework by swapping the import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //semandaq:vet-ignore directives. By convention it is a single
	// lowercase word.
	Name string
	// Doc is the one-paragraph description printed by semandaq-vet -list.
	Doc string
	// Run applies the check to a single type-checked package, reporting
	// findings through pass.Report / pass.Reportf.
	Run func(pass *Pass) error
	// Requires lists analyzers whose facts this one imports; the driver
	// runs them over each package first (callgraph is the usual entry).
	Requires []*Analyzer
	// FactTypes lists one zero value per fact type the analyzer exports,
	// so the driver can register them with gob before the run.
	FactTypes []Fact
	// End, if non-nil, runs once after every package has been analyzed,
	// with the module-wide fact store: whole-program checks (lock-order
	// cycles) that no single package can decide live here.
	End func(pass *EndPass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	store       *FactStore
	directives  *Directives
	diagnostics []Diagnostic
}

// Diagnostic is one finding. Pos locates it when the finding comes from a
// per-package pass; End-phase findings carry a pre-resolved Posn instead
// (their witnessing positions travel through serialized facts, outliving
// any single pass's FileSet).
type Diagnostic struct {
	Pos      token.Pos
	Posn     token.Position // authoritative when Posn.Filename != ""
	Message  string
	Analyzer string
}

// Position resolves the diagnostic's location against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	if d.Posn.Filename != "" {
		return d.Posn
	}
	return fset.Position(d.Pos)
}

// IgnoreDirective is the comment prefix that suppresses a diagnostic on
// the same line or on the line immediately below the comment:
//
//	//semandaq:vet-ignore ctxloop deprecated context-free wrapper
//
// The first word after the prefix names the analyzer (or "all"); the rest
// of the line is a free-form reason, which is mandatory by convention so
// every suppression is self-documenting. A directive that suppresses
// nothing is itself a finding (Directives.Stale): stale suppressions hide
// real diagnostics at the same line from future readers.
const IgnoreDirective = "//semandaq:vet-ignore"

// Directives indexes every //semandaq:vet-ignore comment of a run and
// records which ones actually suppressed a diagnostic. One instance is
// shared by all passes of a run so usage accumulates across analyzers and
// packages.
type Directives struct {
	// byLine maps "filename:line" to the directives on that line.
	byLine map[string][]*directive
	all    []*directive
}

type directive struct {
	posn     token.Position
	analyzer string // analyzer name or "all"
	used     bool
}

// NewDirectives returns an empty index.
func NewDirectives() *Directives {
	return &Directives{byLine: map[string][]*directive{}}
}

// AddFiles indexes the ignore directives of a package's files.
func (ds *Directives) AddFiles(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				name, _, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				posn := fset.Position(c.Pos())
				d := &directive{posn: posn, analyzer: name}
				key := fmt.Sprintf("%s:%d", posn.Filename, posn.Line)
				ds.byLine[key] = append(ds.byLine[key], d)
				ds.all = append(ds.all, d)
			}
		}
	}
}

// suppresses reports whether a directive on posn's line or the line above
// covers analyzer, marking the matching directive used.
func (ds *Directives) suppresses(posn token.Position, analyzer string) bool {
	if ds == nil {
		return false
	}
	hit := false
	for _, line := range []int{posn.Line, posn.Line - 1} {
		key := fmt.Sprintf("%s:%d", posn.Filename, line)
		for _, d := range ds.byLine[key] {
			if d.analyzer == analyzer || d.analyzer == "all" {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// Stale returns one diagnostic per directive that suppressed nothing during
// the run. ran is the set of analyzer names that executed: a directive
// naming an analyzer that did not run is not judged (a -run subset must not
// condemn the others' suppressions), and an "all" directive is only judged
// when allRan. Unknown analyzer names are always stale — a typo suppresses
// nothing forever.
func (ds *Directives) Stale(ran map[string]bool, allRan bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds.all {
		if d.used {
			continue
		}
		switch {
		case d.analyzer == "all":
			if !allRan {
				continue
			}
		case !ran[d.analyzer]:
			// Directive names a known analyzer that was skipped this run:
			// cannot judge. Unknown names fall through via ran[...] == false
			// only when the caller includes every registered name in ran —
			// the driver passes known=false names separately.
			if _, known := knownAnalyzers[d.analyzer]; known {
				continue
			}
		}
		msg := fmt.Sprintf("stale //semandaq:vet-ignore %s: the directive suppresses nothing", d.analyzer)
		if _, known := knownAnalyzers[d.analyzer]; !known && d.analyzer != "all" {
			msg += " (no analyzer by that name; use semandaq-vet -list)"
		}
		out = append(out, Diagnostic{Posn: d.posn, Message: msg, Analyzer: SuppressionCheck})
	}
	return out
}

// SuppressionCheck is the pseudo-analyzer name stale-directive findings are
// reported under.
const SuppressionCheck = "suppression"

// knownAnalyzers collects every analyzer name ever registered with the
// framework in this process (RegisterName); Stale uses it to distinguish
// "skipped this run" from "no such analyzer".
var knownAnalyzers = map[string]bool{}

// RegisterName records an analyzer name as existing. The driver registers
// its full suite before judging staleness.
func RegisterName(names ...string) {
	for _, n := range names {
		knownAnalyzers[n] = true
	}
}

// NewPass builds a Pass over a type-checked package. store carries facts
// across passes (nil for a fact-free run); directives is the run's shared
// suppression index (nil disables suppression).
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, store *FactStore, directives *Directives) *Pass {
	return &Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		store:      store,
		directives: directives,
	}
}

// Report records a finding unless an ignore directive covers it.
func (p *Pass) Report(d Diagnostic) {
	if p.directives.suppresses(d.Position(p.Fset), p.Analyzer.Name) {
		return
	}
	d.Analyzer = p.Analyzer.Name
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// ExportObjectFact attaches fact to obj for downstream passes. obj must be
// a package-level function, method or type of any package in the module
// (facts about dependency objects let a summary grow monotonically).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) error {
	if p.store == nil {
		return fmt.Errorf("%s: no fact store in this run", p.Analyzer.Name)
	}
	key, ok := KeyOf(obj)
	if !ok {
		return fmt.Errorf("%s: cannot attach a fact to %v: not a package-level function, method or type", p.Analyzer.Name, obj)
	}
	return p.store.export(p.Analyzer.Name, key, fact)
}

// ImportObjectFact decodes the fact of fact's type attached to obj by this
// analyzer (over any previously analyzed package) into fact, reporting
// whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	key, ok := KeyOf(obj)
	if !ok {
		return false
	}
	return p.ImportFactByKey(key, fact)
}

// ExportFactByKey attaches a fact addressed by an explicit key — for
// summaries computed about functions identified positionally rather than
// through a types.Object in hand.
func (p *Pass) ExportFactByKey(key ObjKey, fact Fact) error {
	if p.store == nil {
		return fmt.Errorf("%s: no fact store in this run", p.Analyzer.Name)
	}
	return p.store.export(p.Analyzer.Name, key, fact)
}

// ImportFactByKey is ImportObjectFact by explicit key; fact-space graph
// walks (transitive call-graph closures) use it when no types.Object for
// the key is in scope.
func (p *Pass) ImportFactByKey(key ObjKey, fact Fact) bool {
	if p.store == nil {
		return false
	}
	return p.store.importInto(p.Analyzer.Name, key, fact)
}

// ImportRequiredFact imports a fact exported by one of the analyzers this
// one Requires (e.g. the callgraph pass's callee lists).
func (p *Pass) ImportRequiredFact(from *Analyzer, key ObjKey, fact Fact) bool {
	if p.store == nil {
		return false
	}
	return p.store.importInto(from.Name, key, fact)
}

// ExportPackageFact attaches a fact to the package being analyzed; EndPass
// unions package facts module-wide.
func (p *Pass) ExportPackageFact(fact Fact) error {
	if p.store == nil {
		return fmt.Errorf("%s: no fact store in this run", p.Analyzer.Name)
	}
	return p.store.export(p.Analyzer.Name, ObjKey{Pkg: p.Pkg.Path()}, fact)
}

// EndPass is the module-wide view an analyzer's End hook runs with.
type EndPass struct {
	Analyzer    *Analyzer
	store       *FactStore
	directives  *Directives
	diagnostics []Diagnostic
}

// NewEndPass builds the End-phase pass; the driver calls it after the last
// package.
func NewEndPass(a *Analyzer, store *FactStore, directives *Directives) *EndPass {
	return &EndPass{Analyzer: a, store: store, directives: directives}
}

// PackageFactKeys returns the package paths this analyzer attached a fact
// of fact's type to, in sorted order.
func (p *EndPass) PackageFactKeys(fact Fact) []string {
	return p.store.packageFacts(p.Analyzer.Name, fact)
}

// ImportPackageFact decodes the package fact of fact's type for pkgPath.
func (p *EndPass) ImportPackageFact(pkgPath string, fact Fact) bool {
	return p.store.importInto(p.Analyzer.Name, ObjKey{Pkg: pkgPath}, fact)
}

// ObjectFactKeys returns every object key this analyzer attached a fact of
// fact's type to, in sorted order.
func (p *EndPass) ObjectFactKeys(fact Fact) []ObjKey {
	return p.store.objectFacts(p.Analyzer.Name, fact)
}

// ImportObjectFact decodes the fact of fact's type attached to key.
func (p *EndPass) ImportObjectFact(key ObjKey, fact Fact) bool {
	return p.store.importInto(p.Analyzer.Name, key, fact)
}

// Reportf records a module-level finding at a pre-resolved position
// (typically carried in a fact), honouring ignore directives at that line.
func (p *EndPass) Reportf(posn token.Position, format string, args ...any) {
	if p.directives.suppresses(posn, p.Analyzer.Name) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Posn:     posn,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Diagnostics returns the End-phase findings.
func (p *EndPass) Diagnostics() []Diagnostic { return p.diagnostics }

// Run applies the analyzer to one package and returns its findings,
// threading the run's fact store and directive index. Either may be nil
// for single-package, fact-free use.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return RunPass(a, fset, files, pkg, info, nil, nil)
}

// RunPass is Run with an explicit fact store and directive index.
func RunPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, store *FactStore, directives *Directives) ([]Diagnostic, error) {
	pass := NewPass(a, fset, files, pkg, info, store, directives)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
	}
	return pass.Diagnostics(), nil
}

// Plan expands analyzers into execution order: every analyzer's Requires
// run before it, each analyzer exactly once, input order otherwise
// preserved. It also registers all names and fact types.
func Plan(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := map[string]bool{}
	var add func(a *Analyzer)
	add = func(a *Analyzer) {
		if seen[a.Name] {
			return
		}
		seen[a.Name] = true
		for _, r := range a.Requires {
			add(r)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		add(a)
	}
	RegisterFactTypes(out...)
	for _, a := range out {
		RegisterName(a.Name)
	}
	return out
}

// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework: just enough Analyzer / Pass /
// Diagnostic surface for semandaq-vet's custom checkers, built only on the
// standard library (go/ast, go/types).
//
// Why not the real thing: the repo builds offline with no module
// dependencies, and the x/tools framework is not vendored. The API shape
// is kept deliberately close to x/tools so the analyzers read idiomatically
// and could be ported to the real framework by swapping the import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //semandaq:vet-ignore directives. By convention it is a single
	// lowercase word.
	Name string
	// Doc is the one-paragraph description printed by semandaq-vet -list.
	Doc string
	// Run applies the check to a single type-checked package, reporting
	// findings through pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ignores maps "filename:line" to the set of analyzer names suppressed
	// at that line by a //semandaq:vet-ignore directive.
	ignores map[string]map[string]bool

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// IgnoreDirective is the comment prefix that suppresses a diagnostic on
// the same line or on the line immediately below the comment:
//
//	//semandaq:vet-ignore ctxloop deprecated context-free wrapper
//
// The first word after the prefix names the analyzer (or "all"); the rest
// of the line is a free-form reason, which is mandatory by convention so
// every suppression is self-documenting.
const IgnoreDirective = "//semandaq:vet-ignore"

// NewPass builds a Pass over a type-checked package, pre-indexing ignore
// directives from the files' comments.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	p := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		ignores:   map[string]map[string]bool{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				name, _, _ := strings.Cut(rest, " ")
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if p.ignores[key] == nil {
					p.ignores[key] = map[string]bool{}
				}
				p.ignores[key][name] = true
			}
		}
	}
	return p
}

// ignored reports whether a diagnostic at pos is suppressed by a directive
// on the same line or the line directly above.
func (p *Pass) ignored(pos token.Pos) bool {
	pp := p.Fset.Position(pos)
	for _, line := range []int{pp.Line, pp.Line - 1} {
		key := fmt.Sprintf("%s:%d", pp.Filename, line)
		if m := p.ignores[key]; m != nil && (m[p.Analyzer.Name] || m["all"]) {
			return true
		}
	}
	return false
}

// Report records a finding unless an ignore directive covers it.
func (p *Pass) Report(d Diagnostic) {
	if p.ignored(d.Pos) {
		return
	}
	d.Analyzer = p.Analyzer.Name
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings recorded so far, in report order.
func (p *Pass) Diagnostics() []Diagnostic { return p.diagnostics }

// Run applies the analyzer to one package and returns its findings.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := NewPass(a, fset, files, pkg, info)
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
	}
	return pass.Diagnostics(), nil
}

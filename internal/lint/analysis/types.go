package analysis

import (
	"go/ast"
	"go/types"
)

// Deref unwraps pointer types.
func Deref(t types.Type) types.Type {
	for {
		p, ok := t.Underlying().(*types.Pointer)
		if !ok {
			return t
		}
		t = p.Elem()
	}
}

// IsNamed reports whether t (after pointer unwrapping) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ReceiverOf resolves the method call or method value x.Sel to the named
// type of its receiver, or nil if sel is not a method selection.
func ReceiverOf(info *types.Info, sel *ast.SelectorExpr) types.Type {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	return s.Recv()
}

// CalleeFunc returns the *types.Func a call expression statically resolves
// to (method or package-level function), or nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

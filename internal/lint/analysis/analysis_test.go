package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

type tfact struct {
	N     int
	Words []string
}

func (*tfact) AFact() {}

// TestFactRoundTrip pins the store semantics: gob round-trip isolation (an
// importer never shares memory with the exporter), per-(analyzer, key,
// type) addressing, and sorted enumeration.
func TestFactRoundTrip(t *testing.T) {
	s := NewFactStore()
	k1 := ObjKey{Pkg: "p", Recv: "T", Name: "M"}
	k2 := ObjKey{Pkg: "p", Name: "f"}
	orig := &tfact{N: 7, Words: []string{"a", "b"}}
	if err := s.export("an", k1, orig); err != nil {
		t.Fatal(err)
	}
	if err := s.export("an", k2, &tfact{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Mutating the exported value must not leak into later imports.
	orig.Words[0] = "mutated"

	var got tfact
	if !s.importInto("an", k1, &got) {
		t.Fatalf("no fact at %s", k1)
	}
	if got.N != 7 || got.Words[0] != "a" {
		t.Errorf("round-trip got %+v, want N=7 Words[0]=a", got)
	}
	if s.importInto("other", k1, &got) {
		t.Error("fact visible under a different analyzer name")
	}
	if s.importInto("an", ObjKey{Pkg: "p", Name: "absent"}, &got) {
		t.Error("import of absent key reported ok")
	}
	keys := s.objectFacts("an", &tfact{})
	if len(keys) != 2 || keys[0] != k2 || keys[1] != k1 {
		t.Errorf("objectFacts = %v, want [%v %v]", keys, k2, k1)
	}

	// Package facts (empty Name) enumerate separately from object facts.
	if err := s.export("an", ObjKey{Pkg: "q"}, &tfact{N: 2}); err != nil {
		t.Fatal(err)
	}
	if paths := s.packageFacts("an", &tfact{}); len(paths) != 1 || paths[0] != "q" {
		t.Errorf("packageFacts = %v, want [q]", paths)
	}
	if keys := s.objectFacts("an", &tfact{}); len(keys) != 2 {
		t.Errorf("package fact leaked into objectFacts: %v", keys)
	}
}

type unserializable struct {
	Ch chan int
}

func (*unserializable) AFact() {}

func TestFactMustSerialize(t *testing.T) {
	s := NewFactStore()
	err := s.export("an", ObjKey{Pkg: "p", Name: "f"}, &unserializable{Ch: make(chan int)})
	if err == nil || !strings.Contains(err.Error(), "not gob-serializable") {
		t.Errorf("export of chan-bearing fact: err = %v, want not-serializable error", err)
	}
}

const directivesSrc = `package d

//semandaq:vet-ignore usedcheck reason one
func a() {}

//semandaq:vet-ignore usedcheck this one suppresses nothing
func b() {}

//semandaq:vet-ignore skippedcheck not judged when the analyzer did not run
func c() {}

//semandaq:vet-ignore nosuchcheck typo, always stale
func d1() {}

//semandaq:vet-ignore all only judged on a full run
func e() {}
`

// TestDirectivesStale pins the staleness rules: used directives are never
// stale, unused ones are stale when their analyzer ran, directives for
// analyzers skipped by -run are not judged, unknown names always are, and
// "all" is judged only on a full run.
func TestDirectivesStale(t *testing.T) {
	RegisterName("usedcheck", "skippedcheck")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", directivesSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	ds := NewDirectives()
	ds.AddFiles(fset, []*ast.File{f})

	// The directive above func a suppresses a finding on the decl line.
	aLine := fset.Position(f.Decls[0].Pos()).Line
	if !ds.suppresses(token.Position{Filename: "d.go", Line: aLine}, "usedcheck") {
		t.Fatal("directive above func a did not suppress")
	}
	if ds.suppresses(token.Position{Filename: "d.go", Line: aLine}, "othercheck") {
		t.Fatal("directive suppressed a different analyzer")
	}

	stale := ds.Stale(map[string]bool{"usedcheck": true}, false)
	got := map[string]bool{}
	for _, d := range stale {
		if d.Analyzer != SuppressionCheck {
			t.Errorf("stale diagnostic attributed to %q, want %q", d.Analyzer, SuppressionCheck)
		}
		got[d.Message] = true
	}
	wantSub := []string{
		"stale //semandaq:vet-ignore usedcheck",
		"stale //semandaq:vet-ignore nosuchcheck",
	}
	for _, sub := range wantSub {
		found := false
		for m := range got {
			if strings.Contains(m, sub) {
				found = true
			}
		}
		if !found {
			t.Errorf("no stale finding containing %q in %v", sub, got)
		}
	}
	if len(stale) != 2 {
		t.Errorf("partial run: %d stale findings, want 2 (skippedcheck and all must not be judged): %v", len(stale), got)
	}
	for m := range got {
		if strings.Contains(m, "nosuchcheck") && !strings.Contains(m, "no analyzer by that name") {
			t.Errorf("unknown-name staleness should mention the name is unknown: %q", m)
		}
	}

	// Full run: "all" becomes judgeable too.
	stale = ds.Stale(map[string]bool{"usedcheck": true, "skippedcheck": true}, true)
	if len(stale) != 4 {
		msgs := make([]string, 0, len(stale))
		for _, d := range stale {
			msgs = append(msgs, d.Message)
		}
		t.Errorf("full run: %d stale findings, want 4: %v", len(stale), msgs)
	}
}

// Facts: the interprocedural layer of the framework. An analyzer exports
// typed facts about package-level objects (functions, methods, types) while
// analyzing the package that declares them; analyzers running later — on the
// same package or on any package that imports it — import those facts and
// reason across the call boundary. The driver loads packages in import-DAG
// order (loader.Load), so by the time a package is analyzed every fact about
// its dependencies is already in the store.
//
// Facts are serialized through encoding/gob on export and decoded on import,
// mirroring x/tools' gob-based fact files: the round-trip both proves the
// fact type is serializable (a prerequisite for ever caching facts on disk)
// and guarantees importers cannot share mutable state with the exporter.
//
// Object identity: the loader type-checks each package from source but
// resolves its imports from compiled export data, so the *types.Object for
// relstore.(*Table).Insert seen from package core is NOT the same object the
// relstore pass saw. Facts are therefore keyed by ObjKey — (package path,
// receiver type name, object name) — which is stable across the two
// type-check universes for the package-level objects facts are allowed on.
package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"sort"
)

// Fact is a typed, serializable statement an analyzer makes about a
// package-level object or a whole package. Implementations must be
// gob-encodable (exported fields) and listed in the owning Analyzer's
// FactTypes so the driver can register them.
type Fact interface {
	// AFact marks the type as a fact; it has no behaviour.
	AFact()
}

// ObjKey names a package-level object stably across type-check universes:
// the same function seen from source and from export data yields the same
// key.
type ObjKey struct {
	Pkg  string // package import path
	Recv string // receiver type name for methods, "" otherwise
	Name string // object name
}

// String renders the key the way diagnostics name functions:
// pkg.Name or pkg.(Recv).Name.
func (k ObjKey) String() string {
	if k.Recv != "" {
		return fmt.Sprintf("%s.(%s).%s", k.Pkg, k.Recv, k.Name)
	}
	return k.Pkg + "." + k.Name
}

// KeyOf derives the fact key for obj. It supports package-level functions,
// methods (keyed by their receiver's named type), and package-level type
// names; other objects (locals, fields, imported package names) have no
// stable cross-package identity and return ok=false.
func KeyOf(obj types.Object) (ObjKey, bool) {
	if obj == nil || obj.Pkg() == nil {
		return ObjKey{}, false
	}
	switch o := obj.(type) {
	case *types.Func:
		k := ObjKey{Pkg: o.Pkg().Path(), Name: o.Name()}
		sig, ok := o.Type().(*types.Signature)
		if !ok {
			return ObjKey{}, false
		}
		if recv := sig.Recv(); recv != nil {
			n, ok := Deref(recv.Type()).(*types.Named)
			if !ok || n.Obj() == nil {
				return ObjKey{}, false
			}
			k.Recv = n.Obj().Name()
		}
		return k, true
	case *types.TypeName:
		if o.Parent() != o.Pkg().Scope() {
			return ObjKey{}, false
		}
		return ObjKey{Pkg: o.Pkg().Path(), Name: o.Name()}, true
	}
	return ObjKey{}, false
}

// factKey addresses one fact: at most one fact of each concrete type may be
// attached per (analyzer, object).
type factKey struct {
	analyzer string
	obj      ObjKey // Name=="" and Recv=="" ⇒ package fact about Pkg
	typ      string
}

// FactStore is the driver-owned module-wide fact database shared by every
// pass of a run. It is not safe for concurrent use; the driver analyzes
// packages sequentially in import order.
type FactStore struct {
	facts map[factKey][]byte
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[factKey][]byte{}}
}

func factTypeName(fact Fact) string { return fmt.Sprintf("%T", fact) }

func (s *FactStore) export(analyzer string, obj ObjKey, fact Fact) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		return fmt.Errorf("fact %s on %s is not gob-serializable: %v", factTypeName(fact), obj, err)
	}
	s.facts[factKey{analyzer, obj, factTypeName(fact)}] = buf.Bytes()
	return nil
}

func (s *FactStore) importInto(analyzer string, obj ObjKey, fact Fact) bool {
	enc, ok := s.facts[factKey{analyzer, obj, factTypeName(fact)}]
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(enc)).Decode(fact); err != nil {
		// An undecodable fact is a bug in the fact type, not in the target
		// code; fail loudly.
		panic(fmt.Sprintf("analysis: decoding fact %s on %s: %v", factTypeName(fact), obj, err))
	}
	return true
}

// objectFacts returns the keys of every object the analyzer attached a fact
// of fact's type to, sorted for determinism.
func (s *FactStore) objectFacts(analyzer string, fact Fact) []ObjKey {
	typ := factTypeName(fact)
	var keys []ObjKey
	for k := range s.facts {
		if k.analyzer == analyzer && k.typ == typ && k.obj.Name != "" {
			keys = append(keys, k.obj)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Recv != b.Recv {
			return a.Recv < b.Recv
		}
		return a.Name < b.Name
	})
	return keys
}

// packageFacts returns the package paths the analyzer attached a fact of
// fact's type to, sorted.
func (s *FactStore) packageFacts(analyzer string, fact Fact) []string {
	typ := factTypeName(fact)
	var paths []string
	for k := range s.facts {
		if k.analyzer == analyzer && k.typ == typ && k.obj.Name == "" {
			paths = append(paths, k.obj.Pkg)
		}
	}
	sort.Strings(paths)
	return paths
}

// RegisterFactTypes registers an analyzer's fact types (and, transitively,
// its requirements') with gob. The driver calls this once per run.
func RegisterFactTypes(analyzers ...*Analyzer) {
	seen := map[string]bool{}
	var reg func(a *Analyzer)
	reg = func(a *Analyzer) {
		if seen[a.Name] {
			return
		}
		seen[a.Name] = true
		for _, r := range a.Requires {
			reg(r)
		}
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
	for _, a := range analyzers {
		reg(a)
	}
}

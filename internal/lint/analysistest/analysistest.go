// Package analysistest runs a lint analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures
// themselves — a dependency-free miniature of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A line that should
// trigger a diagnostic carries a trailing comment of the form
//
//	code() // want `regexp`
//
// with one backquoted regexp per expected diagnostic on that line. Lines
// without a want comment must stay clean; both missed expectations and
// unexpected diagnostics fail the test.
//
// Fixture packages may import each other (by their path under src/), so a
// fixture can ship a fake semandaq/internal/relstore whose import path —
// which is what the type-driven analyzers key on — matches the real one.
// Standard-library imports are resolved from compiled export data via one
// `go list -export` call, exactly like the production loader.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/loader"
)

// expectation is one `// want` entry: a regexp expected to match a
// diagnostic at file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the backquoted patterns of a want comment.
var wantRE = regexp.MustCompile("`([^`]+)`")

// Run applies the analyzer to each fixture package and reports every
// mismatch between its diagnostics and the fixtures' want comments.
//
// The run mirrors the production driver: the analyzer's Requires expand
// into an execution plan, every loaded fixture package (requested or
// pulled in as a dependency) is analyzed in import-DAG order over a shared
// fact store, and End hooks fire once at the close. Diagnostics — and want
// expectations — are only checked for the requested packages, so shared
// scaffolding fixtures (a fake relstore, say) stay out of each test's
// assertions while still contributing facts.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld, err := newFixtureLoader(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	plan := analysis.Plan([]*analysis.Analyzer{a})
	store := analysis.NewFactStore()
	dirs := analysis.NewDirectives()
	requested := map[string]bool{}
	for _, path := range pkgPaths {
		requested[path] = true
		if _, err := ld.load(path); err != nil {
			t.Fatalf("analysistest: loading %s: %v", path, err)
		}
	}
	var diags []analysis.Diagnostic
	var reqFiles []*ast.File
	for _, path := range ld.order {
		pe := ld.pkgs[path]
		dirs.AddFiles(ld.fset, pe.files)
		for _, an := range plan {
			ds, err := analysis.RunPass(an, ld.fset, pe.files, pe.pkg, pe.info, store, dirs)
			if err != nil {
				t.Fatalf("analysistest: running %s on %s: %v", an.Name, path, err)
			}
			if requested[path] {
				diags = append(diags, ds...)
			}
		}
		if requested[path] {
			reqFiles = append(reqFiles, pe.files...)
		}
	}
	reqFilenames := map[string]bool{}
	for _, f := range reqFiles {
		reqFilenames[ld.fset.Position(f.Pos()).Filename] = true
	}
	for _, an := range plan {
		if an.End == nil {
			continue
		}
		ep := analysis.NewEndPass(an, store, dirs)
		if err := an.End(ep); err != nil {
			t.Fatalf("analysistest: %s end phase: %v", an.Name, err)
		}
		for _, d := range ep.Diagnostics() {
			if reqFilenames[d.Position(ld.fset).Filename] {
				diags = append(diags, d)
			}
		}
	}
	checkExpectations(t, ld.fset, reqFiles, diags)
}

// checkExpectations matches diagnostics against the files' want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[i:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := d.Position(fset)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// fixtureLoader type-checks fixture packages from a src root, resolving
// fixture-local imports from source and everything else from stdlib
// export data.
type fixtureLoader struct {
	fset *token.FileSet
	src  string
	std  types.Importer
	pkgs map[string]*pkgEntry
	// order lists loaded package paths dependencies-first: a dependency's
	// load completes (and appends) during its importer's type-check.
	order []string
}

type pkgEntry struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func newFixtureLoader(src string) (*fixtureLoader, error) {
	ld := &fixtureLoader{
		fset: token.NewFileSet(),
		src:  src,
		pkgs: map[string]*pkgEntry{},
	}
	stdPaths, err := ld.stdlibImports()
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	if len(stdPaths) > 0 {
		// One go list call resolves every stdlib import (and its transitive
		// dependencies) to compiled export data, as in the production loader.
		_, exports, err = loader.GoList(".", stdPaths...)
		if err != nil {
			return nil, err
		}
	}
	ld.std = loader.ExportImporter(ld.fset, exports)
	return ld, nil
}

// stdlibImports walks every fixture file and collects the imports that are
// not fixture packages themselves.
func (ld *fixtureLoader) stdlibImports() ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(ld.src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(ld.fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "unsafe" || ld.isLocal(p) {
				continue
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

// isLocal reports whether the import path is a fixture package under src.
func (ld *fixtureLoader) isLocal(path string) bool {
	st, err := os.Stat(filepath.Join(ld.src, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// Import implements types.Importer over the two-level resolution scheme.
func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if ld.isLocal(path) {
		pe, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pe.pkg, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks one fixture package, memoized by path.
func (ld *fixtureLoader) load(path string) (*pkgEntry, error) {
	if pe, ok := ld.pkgs[path]; ok {
		return pe, nil
	}
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	files, pkg, info, err := loader.Check(ld.fset, ld, path, dir, goFiles)
	if err != nil {
		return nil, err
	}
	pe := &pkgEntry{files: files, pkg: pkg, info: info}
	ld.pkgs[path] = pe
	ld.order = append(ld.order, path)
	return pe, nil
}

// Package locks exercises the blocking-under-lock rule.
package locks

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
}

func (b *box) sendHeld() {
	b.mu.Lock()
	b.ch <- 1 // want `channel send while holding b.mu`
	b.mu.Unlock()
}

func (b *box) sendReleased() {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 1
}

func (b *box) recvHeld() int {
	b.mu.Lock()
	v := <-b.ch // want `channel receive while holding b.mu`
	b.mu.Unlock()
	return v
}

func (b *box) deferHoldsToEnd() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ch <- 1 // want `channel send while holding b.mu`
}

func (b *box) readLockCounts() {
	b.rw.RLock()
	b.ch <- 1 // want `channel send while holding b.rw`
	b.rw.RUnlock()
}

func (b *box) sleepHeld() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding b.mu`
	b.mu.Unlock()
}

func (b *box) waitHeld(wg *sync.WaitGroup) {
	b.mu.Lock()
	wg.Wait() // want `sync.Wait while holding b.mu`
	b.mu.Unlock()
}

func (b *box) blockingSelect(done chan struct{}) {
	b.mu.Lock()
	select { // want `blocking select while holding b.mu`
	case <-done:
	case b.ch <- 1:
	}
	b.mu.Unlock()
}

func (b *box) nonBlockingSelect() {
	b.mu.Lock()
	select {
	case b.ch <- 1:
	default:
	}
	b.mu.Unlock()
}

// A spawned goroutine does not run under the caller's lock.
func (b *box) goroutine() {
	b.mu.Lock()
	go func() { b.ch <- 1 }()
	b.mu.Unlock()
}

// A stored closure runs later, outside the lock window.
func (b *box) storedClosure() func() {
	b.mu.Lock()
	f := func() { b.ch <- 1 }
	b.mu.Unlock()
	return f
}

// Unrelated locks do not cover each other: releasing rw leaves mu held.
func (b *box) twoLocks() {
	b.mu.Lock()
	b.rw.Lock()
	b.rw.Unlock()
	b.ch <- 1 // want `channel send while holding b.mu`
	b.mu.Unlock()
}

func (b *box) suppressed() {
	b.mu.Lock()
	//semandaq:vet-ignore lockdiscipline fixture exercises the directive
	b.ch <- 1
	b.mu.Unlock()
}

// Package lockdiscipline complements go vet's copylocks with the blocking
// rule the concurrent write path (PR 4) depends on: while a sync.Mutex or
// sync.RWMutex is held, code must not perform a blocking channel
// operation (send, receive, or a select with no default) or a known
// long-blocking call (time.Sleep, sync.WaitGroup.Wait). A reader blocked
// on a channel while holding the table or tracker lock stalls every
// writer behind it — and with a second lock in the picture, deadlocks.
//
// The check is lexical and intra-procedural: it walks each function body
// in statement order, tracking Lock/RLock...Unlock/RUnlock windows
// (`defer mu.Unlock()` holds to function end), and flags blocking
// operations inside a window. Function literals are skipped — a goroutine
// or deferred closure does not run under the caller's lock.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"semandaq/internal/lint/analysis"
)

// Analyzer is the lockdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "forbid blocking channel operations and long-blocking calls " +
		"while holding a sync.Mutex/RWMutex",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				w := &walker{pass: pass}
				w.block(body)
			}
			return true
		})
	}
	return nil
}

// walker tracks which mutexes are held at the current statement. The
// held set is keyed by the rendered receiver expression (e.g. "t.mu"),
// which is exact enough for the straight-line lock windows the repo uses.
type walker struct {
	pass *analysis.Pass
	held []string // in acquisition order
}

func (w *walker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if recv, locks, ok := w.lockOp(st.X); ok {
			if locks {
				w.acquire(recv)
			} else {
				w.release(recv)
			}
			return
		}
		w.checkExpr(st.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the remaining
		// statements; any other deferred call runs after this frame's
		// blocking behaviour matters, so it is not inspected.
	case *ast.GoStmt:
		// A spawned goroutine does not hold the caller's locks.
	case *ast.BlockStmt:
		w.block(st)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.checkExpr(st.Cond)
		w.block(st.Body)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond)
		}
		w.block(st.Body)
	case *ast.RangeStmt:
		w.checkExpr(st.X)
		w.block(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		for _, c := range st.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				w.stmt(cs)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				w.stmt(cs)
			}
		}
	case *ast.SelectStmt:
		if len(w.held) > 0 && !selectHasDefault(st) {
			w.pass.Reportf(st.Pos(),
				"blocking select while holding %s: release the lock first or add a default case", w.heldName())
		}
		for _, c := range st.Body.List {
			for _, cs := range c.(*ast.CommClause).Body {
				w.stmt(cs)
			}
		}
	case *ast.SendStmt:
		if len(w.held) > 0 {
			w.pass.Reportf(st.Arrow,
				"channel send while holding %s: release the lock before communicating", w.heldName())
		}
		w.checkExpr(st.Value)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	}
}

// checkExpr flags blocking operations inside an expression evaluated while
// a lock is held. Function literals are not descended into.
func (w *walker) checkExpr(e ast.Expr) {
	if e == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.pass.Reportf(x.Pos(),
					"channel receive while holding %s: release the lock before communicating", w.heldName())
			}
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(w.pass.TypesInfo, x); fn != nil && isLongBlocking(fn) {
				w.pass.Reportf(x.Pos(),
					"%s.%s while holding %s: long-blocking call under a lock", fn.Pkg().Name(), fn.Name(), w.heldName())
			}
		}
		return true
	})
}

// lockOp classifies e as a Lock/RLock (locks=true) or Unlock/RUnlock
// (locks=false) call on a sync.Mutex / sync.RWMutex, returning the
// rendered receiver expression.
func (w *walker) lockOp(e ast.Expr) (recv string, locks, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", false, false
	}
	rt := analysis.ReceiverOf(w.pass.TypesInfo, sel)
	if rt == nil {
		return "", false, false
	}
	if !analysis.IsNamed(rt, "sync", "Mutex") && !analysis.IsNamed(rt, "sync", "RWMutex") {
		return "", false, false
	}
	return types.ExprString(sel.X), locks, true
}

// isLongBlocking reports whether fn is one of the known long-blocking
// calls the discipline forbids under a lock.
func isLongBlocking(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		if fn.Name() != "Wait" {
			return false
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return false
		}
		return analysis.IsNamed(sig.Recv().Type(), "sync", "WaitGroup")
	}
	return false
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, c := range st.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

func (w *walker) acquire(recv string) {
	for _, h := range w.held {
		if h == recv {
			return
		}
	}
	w.held = append(w.held, recv)
}

func (w *walker) release(recv string) {
	for i, h := range w.held {
		if h == recv {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// heldName names the most recently acquired lock for diagnostics.
func (w *walker) heldName() string {
	if len(w.held) == 0 {
		return "a lock"
	}
	return w.held[len(w.held)-1]
}

package lockdiscipline_test

import (
	"testing"

	"semandaq/internal/lint/analysistest"
	"semandaq/internal/lint/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer, "locks")
}

package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"semandaq/internal/lint"
	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/loader"
)

// TestEveryAnalyzerHasFailingFixture is the suite's meta-test: an analyzer
// whose fixtures contain no `// want` expectation proves nothing — it
// would pass vacuously even if its Run func reported nothing at all. Every
// registered analyzer must ship at least one fixture line it flags.
func TestEveryAnalyzerHasFailingFixture(t *testing.T) {
	for _, a := range lint.All() {
		src := filepath.Join(a.Name, "testdata", "src")
		wants := 0
		err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
				return err
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			wants += strings.Count(string(data), "// want `")
			return nil
		})
		if err != nil {
			t.Errorf("%s: no fixture tree at %s: %v", a.Name, src, err)
			continue
		}
		if wants == 0 {
			t.Errorf("%s: fixtures contain no `// want` expectation; the analyzer is untested against a violation", a.Name)
		}
	}
}

// TestAnalyzerNamesAndDocs pins the registration contract the driver and
// the ignore directive depend on: stable single-word names, non-empty
// docs, no duplicates.
func TestAnalyzerNamesAndDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range lint.All() {
		if a.Name == "" || strings.ContainsAny(a.Name, " \t") || strings.ToLower(a.Name) != a.Name {
			t.Errorf("analyzer name %q must be a single lowercase word", a.Name)
		}
		if a.Doc == "" {
			t.Errorf("%s: missing Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("%s: missing Run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestRepoClean runs the full suite over the real module — the same sweep
// `semandaq-vet ./...` performs in CI, including the interprocedural
// passes, the End phases, and the stale-suppression judgment — and
// requires zero diagnostics, so a contract regression fails go test even
// where CI is not wired up.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped with -short")
	}
	fset, pkgs, err := loader.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	plan := analysis.Plan(lint.All())
	store := analysis.NewFactStore()
	dirs := analysis.NewDirectives()
	loadFailed := false
	for _, pkg := range pkgs {
		if pkg.Err != nil {
			t.Errorf("%s: %v", pkg.ImportPath, pkg.Err)
			loadFailed = true
			continue
		}
		dirs.AddFiles(fset, pkg.Files)
		for _, a := range plan {
			diags, err := analysis.RunPass(a, fset, pkg.Files, pkg.Types, pkg.Info, store, dirs)
			if err != nil {
				t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			for _, d := range diags {
				t.Errorf("%s: %s [%s]", d.Position(fset), d.Message, a.Name)
			}
		}
	}
	ran := map[string]bool{}
	for _, a := range plan {
		ran[a.Name] = true
		if a.End == nil {
			continue
		}
		ep := analysis.NewEndPass(a, store, dirs)
		if err := a.End(ep); err != nil {
			t.Fatalf("%s end phase: %v", a.Name, err)
		}
		for _, d := range ep.Diagnostics() {
			t.Errorf("%s: %s [%s]", d.Position(fset), d.Message, a.Name)
		}
	}
	if !loadFailed {
		for _, d := range dirs.Stale(ran, true) {
			t.Errorf("%s: %s [%s]", d.Position(fset), d.Message, d.Analyzer)
		}
	}
}

// Package lockcycle seeds a genuine lock-order cycle: ab acquires A.mu
// then B.mu, while ba acquires B.mu and then reaches A.mu through the
// helper lockA. The End phase must report the cycle with both witnessing
// edges, including the call chain through the helper.
package lockcycle

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `potential deadlock: lock-order cycle lockcycle\.A\.mu -> lockcycle\.B\.mu -> lockcycle\.A\.mu; .*then lockcycle\.B\.mu acquired .*\[in lockcycle\.ab\]; .*then lockcycle\.A\.mu acquired .* via lockcycle\.lockA \[in lockcycle\.ba\]`
	b.n++
	a.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	lockA(a)
	b.n++
	a.mu.Unlock()
	b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.n++
}

// Package lockok holds every ordering a consistent hierarchy allows: the
// parent lock is always taken before the child, directly or through a
// helper, including an RLock on the way down. No cycle, no findings.
package lockok

import "sync"

type Parent struct {
	mu    sync.RWMutex
	child *Child
	n     int
}

type Child struct {
	mu sync.Mutex
	n  int
}

func direct(p *Parent) {
	p.mu.Lock()
	p.child.mu.Lock()
	p.child.n++
	p.child.mu.Unlock()
	p.mu.Unlock()
}

func viaHelper(p *Parent) {
	p.mu.RLock()
	bumpChild(p.child)
	p.mu.RUnlock()
}

func bumpChild(c *Child) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// childOnly takes the child alone: acquiring a lower lock without the
// parent held introduces no ordering edge.
func childOnly(c *Child) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// sequential takes the locks one after the other, never together: no edge.
func sequential(p *Parent, c *Child) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
}

// Package lockorder detects potential deadlocks from inconsistent lock
// acquisition order, module-wide. Named locks are sync.Mutex / sync.RWMutex
// values identified structurally — a receiver-field mutex is pkg.Type.field
// (every relstore.Table shares the ID relstore.Table.mu), a package-level
// mutex is pkg.var — so the analysis reasons about lock *classes*, the
// granularity at which an ordering convention can be stated and checked.
//
// Per function, a lexical walk (the lockdiscipline walker, upgraded with
// lock identities) tracks which named locks are held at each statement.
// Acquiring lock B while holding lock A — directly, or transitively because
// a callee's summary says it acquires B — records the edge A → B with its
// witnessing positions and call chain. Summaries flow across package
// boundaries as LockFact facts over the import DAG; within a package they
// are computed callee-first by memoized recursion, and interface calls are
// over-approximated by the callgraph resolver's implementing types.
//
// After the last package, the End hook unions every package's edges into
// the global lock-order graph and reports each cycle as a potential
// deadlock, witnessed edge by edge: where the held lock was taken, where
// the next one was acquired, and through which call chain. An acyclic
// graph IS the lock hierarchy; docs/INVARIANTS.md documents the one this
// repo proves.
//
// Known blind spots, shared with lockdiscipline: function literals are not
// walked under the caller's held set (a synchronously invoked closure is
// invisible; a goroutine correctly so), calls through function values are
// unresolvable, and locks reached only through locals (e.g. a mutex taken
// out of a map) have no class name. sync.RWMutex read locks participate in
// ordering like write locks: R-R cannot deadlock alone, but any R-W pair
// across two lock classes can.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/callgraph"
)

// LockID names a lock class: "pkg.Type.field" or "pkg.var".
type LockID string

// Posn is a serializable source position (token.Position minus offset).
type Posn struct {
	File string
	Line int
}

func (p Posn) String() string { return fmt.Sprintf("%s:%d", p.File, p.Line) }

func posnOf(fset *token.FileSet, pos token.Pos) Posn {
	pp := fset.Position(pos)
	return Posn{File: pp.Filename, Line: pp.Line}
}

// Acq records that a function may acquire Lock while running: directly
// (empty Chain) or through the named chain of callees. At is the directly
// witnessing site — the Lock()/RLock() call, or the call expression that
// enters the chain.
type Acq struct {
	Lock  LockID
	At    Posn
	Chain []string
}

// LockFact is the per-function summary fact: every lock class the function
// may acquire, transitively, each with one witness.
type LockFact struct {
	Acquires []Acq
}

// AFact marks LockFact as a fact.
func (*LockFact) AFact() {}

// Edge is one observed ordering: To was acquired while From was held.
type Edge struct {
	From, To LockID
	Fn       string // function in which the ordering was observed
	HeldAt   Posn   // where From was taken
	AcqAt    Posn   // the acquisition (or the call leading to it)
	Chain    []string
}

// Edges is the package fact carrying the orderings observed in one package.
type Edges struct {
	List []Edge
}

// AFact marks Edges as a fact.
func (*Edges) AFact() {}

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "summarize which named locks each function holds and acquires, " +
		"build the module-wide lock-order graph, and report any cycle as a " +
		"potential deadlock with its witnessing acquisition chain",
	Run:       run,
	End:       end,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*LockFact)(nil), (*Edges)(nil)},
}

// pkgAnalysis carries the per-package summarization state.
type pkgAnalysis struct {
	pass      *analysis.Pass
	res       *callgraph.Resolver
	decls     map[analysis.ObjKey]*ast.FuncDecl
	summaries map[analysis.ObjKey]*LockFact
	inflight  map[analysis.ObjKey]bool
	edges     []Edge
}

func run(pass *analysis.Pass) error {
	pa := &pkgAnalysis{
		pass:      pass,
		res:       callgraph.NewResolver(pass.Pkg),
		decls:     map[analysis.ObjKey]*ast.FuncDecl{},
		summaries: map[analysis.ObjKey]*LockFact{},
		inflight:  map[analysis.ObjKey]bool{},
	}
	fns := callgraph.Functions(pass.Files, pass.TypesInfo)
	for _, fi := range fns {
		pa.decls[fi.Key] = fi.Decl
	}
	for _, fi := range fns {
		sum := pa.summarize(fi.Key)
		if err := pass.ExportFactByKey(fi.Key, sum); err != nil {
			return err
		}
	}
	if len(pa.edges) > 0 {
		return pass.ExportPackageFact(&Edges{List: pa.edges})
	}
	return nil
}

// summarize computes (once) the lock summary of a same-package function,
// recording lock-order edges observed inside it as a side effect.
// Recursion cycles yield an empty in-progress summary, which is sound for
// edge recording (the recursive call adds nothing new on the second visit).
func (pa *pkgAnalysis) summarize(key analysis.ObjKey) *LockFact {
	if s, ok := pa.summaries[key]; ok {
		return s
	}
	if pa.inflight[key] {
		return &LockFact{}
	}
	decl, ok := pa.decls[key]
	if !ok {
		return &LockFact{}
	}
	pa.inflight[key] = true
	w := &lockWalker{pa: pa, fnKey: key, acquired: map[LockID]bool{}}
	w.block(decl.Body)
	pa.inflight[key] = false
	sum := &LockFact{Acquires: w.acqs}
	pa.summaries[key] = sum
	return sum
}

// acquiresOf resolves a callee's summary: same-package functions by local
// recursion, cross-package ones from the fact store. Unknown functions
// (stdlib, function values) contribute nothing.
func (pa *pkgAnalysis) acquiresOf(fn *types.Func) []Acq {
	key, ok := analysis.KeyOf(fn)
	if !ok {
		return nil
	}
	if fn.Pkg() == pa.pass.Pkg {
		return pa.summarize(key).Acquires
	}
	var fact LockFact
	if pa.pass.ImportFactByKey(key, &fact) {
		return fact.Acquires
	}
	return nil
}

// heldLock is one currently-held acquisition.
type heldLock struct {
	expr string // rendered receiver expression, the instance-ish key
	id   LockID
	at   Posn
}

// lockWalker walks one function body in statement order, maintaining the
// held set and recording acquisitions and ordering edges.
type lockWalker struct {
	pa       *pkgAnalysis
	fnKey    analysis.ObjKey
	held     []heldLock
	acqs     []Acq
	acquired map[LockID]bool // dedup for the exported summary
}

// event registers an acquisition of lock id (directly or via chain) at
// posn: ordering edges against everything currently held, plus the
// function's own summary entry.
func (w *lockWalker) event(id LockID, posn Posn, chain []string) {
	for _, h := range w.held {
		w.pa.edges = append(w.pa.edges, Edge{
			From: h.id, To: id, Fn: w.fnKey.String(),
			HeldAt: h.at, AcqAt: posn, Chain: chain,
		})
	}
	if !w.acquired[id] {
		w.acquired[id] = true
		w.acqs = append(w.acqs, Acq{Lock: id, At: posn, Chain: chain})
	}
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if expr, id, locks, ok := w.lockOp(st.X); ok {
			if locks {
				w.acquire(expr, id, posnOf(w.pa.pass.Fset, st.X.Pos()))
			} else {
				w.release(expr)
			}
			return
		}
		w.checkExpr(st.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() holds the lock to function end; other deferred
		// calls run after the function's own acquisition windows closed.
	case *ast.GoStmt:
		// A spawned goroutine does not hold the caller's locks.
	case *ast.BlockStmt:
		w.block(st)
	case *ast.IfStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		w.checkExpr(st.Cond)
		w.block(st.Body)
		if st.Else != nil {
			w.stmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Cond != nil {
			w.checkExpr(st.Cond)
		}
		w.block(st.Body)
	case *ast.RangeStmt:
		w.checkExpr(st.X)
		w.block(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.stmt(st.Init)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag)
		}
		for _, c := range st.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				w.stmt(cs)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			for _, cs := range c.(*ast.CaseClause).Body {
				w.stmt(cs)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			for _, cs := range c.(*ast.CommClause).Body {
				w.stmt(cs)
			}
		}
	case *ast.SendStmt:
		w.checkExpr(st.Chan)
		w.checkExpr(st.Value)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.checkExpr(e)
		}
		for _, e := range st.Lhs {
			w.checkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.checkExpr(e)
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	}
}

// checkExpr scans an expression for calls whose callees acquire locks,
// turning each callee summary into transitive acquisition events. Function
// literals are not descended into (they do not run under this window by
// construction — see the package comment).
func (w *lockWalker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	info := w.pa.pass.TypesInfo
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			static, ifaceMethod := callgraph.Resolve(info, x)
			var callees []*types.Func
			if static != nil {
				callees = append(callees, static)
			}
			if ifaceMethod != nil {
				callees = append(callees, w.pa.res.Implementations(ifaceMethod)...)
			}
			callPosn := posnOf(w.pa.pass.Fset, x.Pos())
			for _, fn := range callees {
				key, _ := analysis.KeyOf(fn)
				for _, acq := range w.pa.acquiresOf(fn) {
					chain := append([]string{key.String()}, acq.Chain...)
					w.event(acq.Lock, callPosn, chain)
				}
			}
		}
		return true
	})
}

// lockOp classifies e as a Lock/RLock (locks=true) or Unlock/RUnlock call
// on a named sync.Mutex / sync.RWMutex, returning the rendered receiver
// expression and the lock class.
func (w *lockWalker) lockOp(e ast.Expr) (expr string, id LockID, locks, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", "", false, false
	}
	info := w.pa.pass.TypesInfo
	rt := analysis.ReceiverOf(info, sel)
	if rt == nil {
		return "", "", false, false
	}
	if !analysis.IsNamed(rt, "sync", "Mutex") && !analysis.IsNamed(rt, "sync", "RWMutex") {
		return "", "", false, false
	}
	id, named := NameLock(info, sel.X)
	if !named {
		return "", "", false, false
	}
	return types.ExprString(sel.X), id, locks, true
}

// NameLock derives the lock class of the mutex-valued expression e:
// pkg.Type.field for a field of a named struct type, pkg.var for a
// package-level variable. Anything else (locals, map values, anonymous
// structs) is unnamed.
func NameLock(info *types.Info, e ast.Expr) (LockID, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := info.Selections[x]
		if ok && sel.Kind() == types.FieldVal {
			n, isNamed := analysis.Deref(sel.Recv()).(*types.Named)
			if !isNamed || n.Obj() == nil || n.Obj().Pkg() == nil {
				return "", false
			}
			return LockID(fmt.Sprintf("%s.%s.%s",
				n.Obj().Pkg().Path(), n.Obj().Name(), x.Sel.Name)), true
		}
		// Qualified package-level var: pkg.Var.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && isPackageLevel(v) {
			return LockID(v.Pkg().Path() + "." + v.Name()), true
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && isPackageLevel(v) {
			return LockID(v.Pkg().Path() + "." + v.Name()), true
		}
	}
	return "", false
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func (w *lockWalker) acquire(expr string, id LockID, posn Posn) {
	for _, h := range w.held {
		if h.expr == expr {
			return // re-entrant on the same instance: lockdiscipline's bug to flag
		}
	}
	w.event(id, posn, nil)
	w.held = append(w.held, heldLock{expr: expr, id: id, at: posn})
}

func (w *lockWalker) release(expr string) {
	for i, h := range w.held {
		if h.expr == expr {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// --- End phase: global graph + cycle report ------------------------------

// maxReportedCycles bounds the End-phase report; past this the graph is so
// tangled that listing more cycles adds noise, not signal.
const maxReportedCycles = 20

func end(pass *analysis.EndPass) error {
	var all []Edge
	for _, pkgPath := range pass.PackageFactKeys(&Edges{}) {
		var fact Edges
		if pass.ImportPackageFact(pkgPath, &fact) {
			all = append(all, fact.List...)
		}
	}
	if len(all) == 0 {
		return nil
	}
	// One witness per (From, To), deterministically the smallest position.
	type pair struct{ from, to LockID }
	witness := map[pair]Edge{}
	for _, e := range all {
		p := pair{e.From, e.To}
		if w, ok := witness[p]; !ok || lessEdge(e, w) {
			witness[p] = e
		}
	}
	adj := map[LockID][]LockID{}
	for p := range witness {
		adj[p.from] = append(adj[p.from], p.to)
	}
	nodes := make([]LockID, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, n := range nodes {
		sort.Slice(adj[n], func(i, j int) bool { return adj[n][i] < adj[n][j] })
	}

	var cycles [][]LockID
	seen := map[string]bool{}
	var path []LockID
	onPath := map[LockID]bool{}
	var dfs func(start, cur LockID)
	dfs = func(start, cur LockID) {
		if len(cycles) >= maxReportedCycles {
			return
		}
		for _, next := range adj[cur] {
			if next < start {
				continue // canonical cycles start at their smallest node
			}
			if next == start {
				cyc := append(append([]LockID{}, path...), start)
				key := fmt.Sprint(cyc)
				if !seen[key] {
					seen[key] = true
					cycles = append(cycles, cyc)
				}
				continue
			}
			if onPath[next] {
				continue
			}
			onPath[next] = true
			path = append(path, next)
			dfs(start, next)
			path = path[:len(path)-1]
			delete(onPath, next)
		}
	}
	for _, n := range nodes {
		path = path[:0]
		path = append(path, n)
		onPath = map[LockID]bool{n: true}
		dfs(n, n)
	}

	for _, cyc := range cycles {
		var b strings.Builder
		fmt.Fprintf(&b, "potential deadlock: lock-order cycle %s", joinCycle(cyc))
		for i := 0; i+1 < len(cyc); i++ {
			e := witness[pair{cyc[i], cyc[i+1]}]
			fmt.Fprintf(&b, "; %s held (%s) then %s acquired at %s", e.From, e.HeldAt, e.To, e.AcqAt)
			if len(e.Chain) > 0 {
				fmt.Fprintf(&b, " via %s", strings.Join(e.Chain, " -> "))
			}
			fmt.Fprintf(&b, " [in %s]", e.Fn)
		}
		first := witness[pair{cyc[0], cyc[1]}]
		pass.Reportf(token.Position{Filename: first.AcqAt.File, Line: first.AcqAt.Line}, "%s", b.String())
	}
	return nil
}

func lessEdge(a, b Edge) bool {
	if a.AcqAt.File != b.AcqAt.File {
		return a.AcqAt.File < b.AcqAt.File
	}
	if a.AcqAt.Line != b.AcqAt.Line {
		return a.AcqAt.Line < b.AcqAt.Line
	}
	return len(a.Chain) < len(b.Chain)
}

func joinCycle(cyc []LockID) string {
	parts := make([]string, len(cyc))
	for i, l := range cyc {
		parts[i] = string(l)
	}
	return strings.Join(parts, " -> ")
}

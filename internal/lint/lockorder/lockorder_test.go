package lockorder_test

import (
	"testing"

	"semandaq/internal/lint/analysistest"
	"semandaq/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockcycle", "lockok")
}

// Package audit is a fixture: a consumer hot package of the factorised
// report, exercising the cross-package cases of the noexplode rule.
package audit

import "semandaq/internal/detect"

// perGroupExplode explodes once per group in a 3-clause for: flagged.
func perGroupExplode(frs []*detect.FactorReport) {
	for i := 0; i < len(frs); i++ {
		_ = frs[i].Explode() // want `FactorReport\.Explode\(\) inside a loop of a factorised hot path`
	}
}

// legacyBridge is the sanctioned shape: explode once, outside loops.
func legacyBridge(fr *detect.FactorReport) *detect.Report {
	return fr.Explode()
}

// suppressed documents a deliberate exception with the directive.
func suppressed(frs []*detect.FactorReport) {
	for _, fr := range frs {
		//semandaq:vet-ignore noexplode fixture: deliberate exploded fallback
		_ = fr.Explode()
	}
}

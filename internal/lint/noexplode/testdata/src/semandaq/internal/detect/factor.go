// Package detect is a fixture stub: the factorised report surface the
// noexplode rule keys on, plus in-package hot loops exercising it.
package detect

// Report is the exploded legacy shape.
type Report struct{}

// Group is one exploded violation group.
type Group struct{}

// FactorGroup is one factorised violation group.
type FactorGroup struct{}

// AsGroup rebuilds the exploded per-member maps — the O(members) bridge.
func (g *FactorGroup) AsGroup() *Group { return &Group{} }

// MemberAt is the factorised accessor loops should use.
func (g *FactorGroup) MemberAt(i int) int { return i }

// FactorReport is the factorised report.
type FactorReport struct {
	FactorGroups []*FactorGroup
}

// Explode materializes the full legacy report — the compatibility shim.
func (fr *FactorReport) Explode() *Report { return &Report{} }

// shim is the allowed shape: a one-shot explode outside any loop.
func shim(fr *FactorReport) *Report {
	return fr.Explode()
}

// hotLoop pays the exploded cost once per iteration: both calls flagged.
func hotLoop(frs []*FactorReport) {
	for _, fr := range frs {
		_ = fr.Explode() // want `FactorReport\.Explode\(\) inside a loop of a factorised hot path`
		for _, g := range fr.FactorGroups {
			_ = g.AsGroup() // want `FactorGroup\.AsGroup\(\) inside a loop of a factorised hot path`
		}
	}
}

// factorisedLoop consumes the groups through the accessors: clean.
func factorisedLoop(fr *FactorReport) int {
	n := 0
	for i, g := range fr.FactorGroups {
		n += g.MemberAt(i)
	}
	return n
}

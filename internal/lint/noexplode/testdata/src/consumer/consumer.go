// Package consumer is outside the hot set: in-loop explodes are allowed
// here (external tooling may pay the exploded cost knowingly).
package consumer

import "semandaq/internal/detect"

func explodeAll(frs []*detect.FactorReport) []*detect.Report {
	var out []*detect.Report
	for _, fr := range frs {
		out = append(out, fr.Explode())
	}
	return out
}

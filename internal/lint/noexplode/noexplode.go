// Package noexplode guards the factorised-report contract from PR 10: the
// detection, audit and repair packages consume violation groups in their
// factorised form (FactorGroup refs + RHS histograms), and the exploding
// compatibility surface — FactorReport.Explode, which materializes the
// full per-tuple legacy report, and FactorGroup.AsGroup, which rebuilds a
// group's per-member maps — exists only as a one-shot bridge for callers
// that still need the legacy shape. Calling either inside a loop of a hot
// package reintroduces exactly the O(members) (or O(groups x members))
// cost the factorisation removed, silently, at the call site hardest to
// spot in review.
//
// The rule is lexical and package-scoped: inside semandaq/internal/detect,
// internal/audit and internal/repair, no Explode/AsGroup call may appear
// within a for or range statement. Top-level one-shot calls (the
// compatibility shims themselves) are allowed; a deliberate in-loop use
// carries a //semandaq:vet-ignore noexplode directive with a reason.
package noexplode

import (
	"go/ast"
	"go/token"
	"go/types"

	"semandaq/internal/lint/analysis"
)

// hotPkgs are the packages whose loops must stay factorised.
var hotPkgs = map[string]bool{
	"semandaq/internal/detect": true,
	"semandaq/internal/audit":  true,
	"semandaq/internal/repair": true,
}

// exploders maps the per-member materializing methods of the factorised
// report types to the accessor callers should use instead.
var exploders = map[[2]string]string{
	{"FactorReport", "Explode"}: "keep the report factorised or hoist the one-shot explode out of the loop",
	{"FactorGroup", "AsGroup"}:  "use the FactorGroup accessors (MemberAt/RHSKeyAt/PartnersAt) instead of rebuilding per-member maps",
}

// Analyzer is the noexplode check.
var Analyzer = &analysis.Analyzer{
	Name: "noexplode",
	Doc: "forbid FactorReport.Explode / FactorGroup.AsGroup inside loops of " +
		"the detect/audit/repair hot paths; the factorised form must survive " +
		"hot loops",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !hotPkgs[pass.Pkg.Path()] {
		return nil
	}
	seen := map[token.Pos]bool{} // nested loops visit a call twice
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.CalleeFunc(pass.TypesInfo, call)
				if fn == nil || seen[call.Pos()] {
					return true
				}
				recv, hint, ok := exploder(fn)
				if !ok {
					return true
				}
				seen[call.Pos()] = true
				pass.Reportf(call.Pos(),
					"%s.%s() inside a loop of a factorised hot path: %s",
					recv, fn.Name(), hint)
				return true
			})
			return true
		})
	}
	return nil
}

// exploder reports whether fn is one of the materializing methods, and if
// so returns its receiver type name and the remediation hint.
func exploder(fn *types.Func) (recv, hint string, ok bool) {
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil {
		return "", "", false
	}
	named, isNamed := analysis.Deref(sig.Recv().Type()).(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "semandaq/internal/detect" {
		return "", "", false
	}
	hint, ok = exploders[[2]string{obj.Name(), fn.Name()}]
	return obj.Name(), hint, ok
}

package noexplode_test

import (
	"testing"

	"semandaq/internal/lint/analysistest"
	"semandaq/internal/lint/noexplode"
)

func TestNoExplode(t *testing.T) {
	analysistest.Run(t, "testdata", noexplode.Analyzer,
		"semandaq/internal/detect", "semandaq/internal/audit", "consumer")
}

// Package sqleng is a fixture stand-in for the SQL engine: its Result
// stamps per-base-table versions through the plural Versions map, which
// the analyzer accepts as the stamp field.
package sqleng

// Result carries per-table versions.
type Result struct {
	Versions map[string]int64
	Rows     [][]string
}

func empty() *Result {
	return &Result{Versions: map[string]int64{}}
}

func deferred(versions map[string]int64) *Result {
	res := &Result{}
	res.Rows = nil
	res.Versions = versions
	return res
}

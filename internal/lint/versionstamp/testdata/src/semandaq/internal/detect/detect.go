// Package detect is a fixture stand-in for the real detection package:
// same import path (the analyzer's contract keys on it), minimal types.
package detect

// Report carries the stamp field and is constructed by the client fixture.
type Report struct {
	Version int64
	Vio     []int
}

// Result is missing its stamp field, which the declaration check flags.
type Result struct { // want `detect.Result must carry a Version`
	N int
}

// Summary is not a contract name; no field is required.
type Summary struct {
	N int
}

func fresh(version int64) *Report {
	return &Report{Version: version}
}

func unstamped() *Report {
	return &Report{Vio: []int{1}} // want `detect.Report constructed without stamping Version`
}

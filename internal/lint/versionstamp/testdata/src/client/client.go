// Package client constructs contract structs from outside their home
// packages; the stamping rule follows the type, not the constructing
// package.
package client

import (
	"semandaq/internal/detect"
	"semandaq/internal/sqleng"
)

func unstamped() *detect.Report {
	return &detect.Report{Vio: []int{1}} // want `detect.Report constructed without stamping Version`
}

func unstampedValue() detect.Report {
	return detect.Report{} // want `detect.Report constructed without stamping Version`
}

func stamped(v int64) *detect.Report {
	return &detect.Report{Version: v, Vio: nil}
}

func positional() detect.Report {
	// A full positional literal sets every field, the stamp included.
	return detect.Report{3, nil}
}

func stampedLater(v int64) *detect.Report {
	rep := &detect.Report{}
	rep.Version = v
	return rep
}

func pluralStamp() *sqleng.Result {
	return &sqleng.Result{Versions: map[string]int64{"customer": 4}}
}

func pluralUnstamped() *sqleng.Result {
	return &sqleng.Result{Rows: nil} // want `sqleng.Result constructed without stamping Versions`
}

// Summary is not a contract type; no stamp is required.
func summary() detect.Summary {
	return detect.Summary{N: 1}
}

func suppressed() *detect.Report {
	//semandaq:vet-ignore versionstamp fixture exercises the directive
	return &detect.Report{}
}

package versionstamp_test

import (
	"testing"

	"semandaq/internal/lint/analysistest"
	"semandaq/internal/lint/versionstamp"
)

func TestVersionStamp(t *testing.T) {
	analysistest.Run(t, "testdata", versionstamp.Analyzer,
		"semandaq/internal/detect", "semandaq/internal/sqleng", "client")
}

// Package versionstamp enforces the versioned-report contract from PR 4:
// the exported Report / Result structs of the read-path packages (detect,
// audit, discovery, sqleng) must carry a Version (or per-table Versions)
// field, and every construction site must stamp it — either in the
// composite literal itself or by an explicit assignment in the same
// function. A report that does not name the snapshot version it reflects
// is unverifiable against concurrent writers.
package versionstamp

import (
	"go/ast"
	"go/token"
	"go/types"

	"semandaq/internal/lint/analysis"
)

// StampedPackages lists the import paths whose Report/Result types are
// under contract.
var StampedPackages = map[string]bool{
	"semandaq/internal/detect":    true,
	"semandaq/internal/audit":     true,
	"semandaq/internal/discovery": true,
	"semandaq/internal/sqleng":    true,
}

// stampedNames are the struct type names under contract.
var stampedNames = map[string]bool{"Report": true, "Result": true}

// versionFields are the accepted stamp field names: Version for a single
// pinned snapshot, Versions for the SQL engine's per-base-table map.
var versionFields = map[string]bool{"Version": true, "Versions": true}

// Analyzer is the versionstamp check.
var Analyzer = &analysis.Analyzer{
	Name: "versionstamp",
	Doc: "require a Version field on detect/audit/discovery/sqleng " +
		"Report and Result structs, stamped at every construction site",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if StampedPackages[pass.Pkg.Path()] {
		checkDeclarations(pass)
	}
	checkLiterals(pass)
	return nil
}

// checkDeclarations verifies that every contract struct declared in this
// package carries a version field at all.
func checkDeclarations(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if !stampedNames[ts.Name.Name] {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				if versionField(st) == "" {
					pass.Reportf(ts.Name.Pos(),
						"%s.%s must carry a Version (or Versions) field naming the snapshot version it reflects",
						pass.Pkg.Name(), ts.Name.Name)
				}
			}
		}
	}
}

// versionField returns the stamp field name of st, or "".
func versionField(st *types.Struct) string {
	for i := 0; i < st.NumFields(); i++ {
		if name := st.Field(i).Name(); versionFields[name] {
			return name
		}
	}
	return ""
}

// contractType resolves t to (named type, stamp field) if t is a contract
// struct that has a version field; otherwise ok is false.
func contractType(t types.Type) (named *types.Named, field string, ok bool) {
	n, isNamed := analysis.Deref(t).(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil ||
		!StampedPackages[obj.Pkg().Path()] || !stampedNames[obj.Name()] {
		return nil, "", false
	}
	st, isStruct := n.Underlying().(*types.Struct)
	if !isStruct {
		return nil, "", false
	}
	f := versionField(st)
	if f == "" {
		// The declaration check already reports the missing field.
		return nil, "", false
	}
	return n, f, true
}

// checkLiterals flags composite literals of contract types that neither
// set the version field in the literal nor assign it later in the same
// function.
func checkLiterals(pass *analysis.Pass) {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok {
				return true
			}
			named, field, ok := contractType(tv.Type)
			if !ok {
				return true
			}
			if literalStamps(cl, named, field) {
				return true
			}
			if assignsFieldLater(pass, stack, named, field) {
				return true
			}
			pass.Reportf(cl.Pos(),
				"%s.%s constructed without stamping %s: set it in the literal or assign it before the value escapes",
				named.Obj().Pkg().Name(), named.Obj().Name(), field)
			return true
		})
	}
}

// literalStamps reports whether the literal itself sets the version field:
// either as a keyed element or as a full positional literal.
func literalStamps(cl *ast.CompositeLit, named *types.Named, field string) bool {
	st := named.Underlying().(*types.Struct)
	keyed := false
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return true
		}
	}
	// A full positional literal sets every field, the stamp included.
	return !keyed && len(cl.Elts) == st.NumFields() && len(cl.Elts) > 0
}

// assignsFieldLater reports whether the function enclosing the literal
// contains an assignment to the stamp field of the same contract type
// (e.g. res.Versions = qp.versions() after the literal).
func assignsFieldLater(pass *analysis.Pass, stack []ast.Node, named *types.Named, field string) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for _, lhs := range as.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != field {
				continue
			}
			base := pass.TypesInfo.Types[sel.X].Type
			if base == nil {
				continue
			}
			if bn, _, ok := contractType(base); ok && bn.Obj() == named.Obj() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

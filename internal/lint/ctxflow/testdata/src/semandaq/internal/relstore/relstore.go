// Package relstore is a fixture stand-in: the analyzer classifies
// collections as row-scale by these type names at this import path.
package relstore

type TupleID int64

type Tuple []string

type Partition struct{ IDs []TupleID }

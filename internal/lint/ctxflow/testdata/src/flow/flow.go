// Package flow exercises the ctx-severing rule: ctx-taking functions
// calling row-scale callees (directly, transitively, or across packages)
// must pass the context down.
package flow

import (
	"context"

	"flowdep"

	"semandaq/internal/relstore"
)

// scanCtx is directly row-scale and well-behaved.
func scanCtx(ctx context.Context, rows []relstore.Tuple) int {
	n := 0
	for _, r := range rows {
		if ctx.Err() != nil {
			break
		}
		n += len(r)
	}
	return n
}

// viaHelper has no loop of its own but reaches one: transitively row-scale.
func viaHelper(ctx context.Context, rows []relstore.Tuple) int {
	return scanCtx(ctx, rows)
}

// goodDirect passes ctx straight down.
func goodDirect(ctx context.Context, rows []relstore.Tuple) int {
	return scanCtx(ctx, rows)
}

// goodDerived passes a derived context: still a mention, still cancellable.
func goodDerived(ctx context.Context, rows []relstore.Tuple) int {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return scanCtx(sub, rows)
}

// badSever has ctx in scope but mints a root context for the row-scale
// call, cutting the cancellation chain.
func badSever(ctx context.Context, rows []relstore.Tuple) int {
	return scanCtx(context.Background(), rows) // want `badSever takes a ctx but calls row-scale scanCtx without passing it`
}

// badTransitive severs through the helper: viaHelper is row-scale only by
// propagation.
func badTransitive(ctx context.Context, rows []relstore.Tuple) int {
	return viaHelper(context.TODO(), rows) // want `badTransitive takes a ctx but calls row-scale viaHelper without passing it`
}

// badCrossPkg severs a call into another package: the callee's row-scale
// fact crossed the package boundary through the store.
func badCrossPkg(ctx context.Context, rows []relstore.Tuple) int {
	return flowdep.Scan(context.Background(), rows) // want `badCrossPkg takes a ctx but calls row-scale Scan without passing it`
}

// goodCrossPkg passes ctx into the other package.
func goodCrossPkg(ctx context.Context, rows []relstore.Tuple) int {
	return flowdep.Scan(ctx, rows)
}

// noCtxCaller takes no context: nothing to sever, nothing to report, even
// though the callee is row-scale.
func noCtxCaller(rows []relstore.Tuple) int {
	return scanCtx(context.Background(), rows)
}

// countAll is row-scale but takes no ctx parameter: callers cannot pass
// one, so call sites are exempt — the fix belongs on this signature.
func countAll(rows []relstore.Tuple) int {
	n := 0
	for range rows {
		n++
	}
	return n
}

// goodNoCtxParamCallee calls a row-scale function that cannot accept a
// context; the call site is not the place to report it.
func goodNoCtxParamCallee(ctx context.Context, rows []relstore.Tuple) int {
	return countAll(rows)
}

// goodInnerDomain declares a func lit with its own ctx parameter: an
// independent cancellation domain, checked on its own terms.
func goodInnerDomain(ctx context.Context, rows []relstore.Tuple) func(context.Context) int {
	return func(inner context.Context) int {
		return scanCtx(inner, rows)
	}
}

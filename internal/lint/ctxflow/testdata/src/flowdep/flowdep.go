// Package flowdep exports a row-scale function for the cross-package
// propagation fixture: flow imports it, so its RowScaleFact must arrive
// through the fact store, not local analysis.
package flowdep

import (
	"context"

	"semandaq/internal/relstore"
)

// Scan is directly row-scale: it ranges the tuples.
func Scan(ctx context.Context, rows []relstore.Tuple) int {
	n := 0
	for _, r := range rows {
		if ctx.Err() != nil {
			break
		}
		n += len(r)
	}
	return n
}

package ctxflow_test

import (
	"testing"

	"semandaq/internal/lint/analysistest"
	"semandaq/internal/lint/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "flow")
}

// Package ctxflow extends ctxloop's cancellation contract across calls: a
// function that accepts a context.Context and calls — directly or
// transitively — a function doing row-scale work must pass the context
// down at that call. ctxloop catches the loop that ignores ctx; ctxflow
// catches the caller that severs the chain, where ctx is in scope but the
// row-scale callee is invoked without it, making everything below the call
// uncancellable no matter how diligent the callee's own loops are.
//
// Row-scale-ness is interprocedural: a function is row-scale if it
// contains a row-scale loop itself (ctxloop's classification) or if any
// in-module callee is (via callgraph facts, so the property flows across
// package boundaries in import-DAG order). A call discharges the
// obligation if any argument lexically mentions a context — passing ctx
// itself, a derived context, or a closure that captures one all qualify.
// Row-scale callees that take no ctx parameter at all are the callee's
// design problem, not the call site's; they are still counted for
// propagation (the caller stays row-scale) but the call is not reported
// unless the callee could have accepted the context.
package ctxflow

import (
	"go/ast"
	"go/types"

	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/callgraph"
	"semandaq/internal/lint/ctxloop"
)

// RowScaleFact marks a function whose execution touches row-scale state,
// directly or through in-module callees.
type RowScaleFact struct {
	Direct bool // contains a row-scale loop itself
}

// AFact marks RowScaleFact as a fact.
func (*RowScaleFact) AFact() {}

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "require ctx-taking functions to pass the context down when calling " +
		"(transitively) row-scale functions",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*RowScaleFact)(nil)},
}

func run(pass *analysis.Pass) error {
	pa := &pkgAnalysis{
		pass:     pass,
		decls:    map[analysis.ObjKey]callgraph.FuncInfo{},
		rowScale: map[analysis.ObjKey]bool{},
		inflight: map[analysis.ObjKey]bool{},
	}
	fns := callgraph.Functions(pass.Files, pass.TypesInfo)
	for _, fi := range fns {
		pa.decls[fi.Key] = fi
	}

	// Classify and export facts first so the diagnostics pass below (and
	// future importers) see the full package.
	for _, fi := range fns {
		if pa.rowScaleOf(fi.Key) {
			if err := pass.ExportFactByKey(fi.Key, &RowScaleFact{Direct: pa.direct(fi)}); err != nil {
				return err
			}
		}
	}

	res := callgraph.NewResolver(pass.Pkg)
	for _, fi := range fns {
		pa.checkFunc(fi, res)
	}
	return nil
}

type pkgAnalysis struct {
	pass     *analysis.Pass
	decls    map[analysis.ObjKey]callgraph.FuncInfo
	rowScale map[analysis.ObjKey]bool
	inflight map[analysis.ObjKey]bool
}

// direct reports whether the function body itself contains a row-scale
// loop (including inside function literals it declares — the work happens
// under this function's dynamic extent or on its behalf).
func (pa *pkgAnalysis) direct(fi callgraph.FuncInfo) bool {
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := ctxloop.RowScaleLoop(pa.pass.TypesInfo, n); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// rowScaleOf resolves row-scale-ness for a key: same-package functions by
// walking their bodies and callgraph callees (memoized, cycle-guarded),
// cross-package functions via the imported fact.
func (pa *pkgAnalysis) rowScaleOf(key analysis.ObjKey) bool {
	if rs, ok := pa.rowScale[key]; ok {
		return rs
	}
	fi, ok := pa.decls[key]
	if !ok {
		// Not declared here: consult the fact store (dependency packages
		// were analyzed earlier in the import DAG).
		var fact RowScaleFact
		rs := pa.pass.ImportFactByKey(key, &fact)
		pa.rowScale[key] = rs
		return rs
	}
	if pa.inflight[key] {
		return false // recursion cycle: resolved by the outer call
	}
	pa.inflight[key] = true
	rs := pa.direct(fi)
	if !rs {
		var callees callgraph.Callees
		if pa.pass.ImportRequiredFact(callgraph.Analyzer, key, &callees) {
			for _, ck := range callees.Keys {
				if ck == key {
					continue
				}
				if pa.rowScaleOf(ck) {
					rs = true
					break
				}
			}
		}
	}
	delete(pa.inflight, key)
	pa.rowScale[key] = rs
	return rs
}

// checkFunc reports ctx-severing calls inside one ctx-taking function.
func (pa *pkgAnalysis) checkFunc(fi callgraph.FuncInfo, res *callgraph.Resolver) {
	if !ctxloop.HasCtxParam(pa.pass.TypesInfo, fi.Decl.Type) {
		return
	}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		// A nested func lit with its own ctx parameter is an independent
		// cancellation domain; its calls answer to its own parameter, which
		// is in scope for every call inside, so there is nothing to check.
		if lit, ok := n.(*ast.FuncLit); ok && ctxloop.HasCtxParam(pa.pass.TypesInfo, lit.Type) {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := pa.rowScaleCallee(call, res)
		if callee == nil {
			return true
		}
		if pa.callPassesCtx(call) {
			return true
		}
		pa.pass.Reportf(call.Pos(),
			"%s takes a ctx but calls row-scale %s without passing it: the work below this call cannot be cancelled",
			fi.Fn.Name(), callee.Name())
		return true
	})
}

// rowScaleCallee resolves a call and returns the row-scale callee that
// could have accepted the context, or nil if the call is exempt. Callees
// with no ctx parameter are exempt at the call site (there is no way to
// pass it); they surface instead through their own callers or by fixing
// the signature.
func (pa *pkgAnalysis) rowScaleCallee(call *ast.CallExpr, res *callgraph.Resolver) *types.Func {
	static, ifaceMethod := callgraph.Resolve(pa.pass.TypesInfo, call)
	fn := static
	if fn == nil && ifaceMethod != nil {
		for _, impl := range res.Implementations(ifaceMethod) {
			if key, ok := analysis.KeyOf(impl); ok && pa.rowScaleOf(key) {
				fn = ifaceMethod // report in terms of the interface method
				break
			}
		}
		if fn == nil {
			return nil
		}
	} else if fn != nil {
		key, ok := analysis.KeyOf(fn)
		if !ok || !pa.rowScaleOf(key) {
			return nil
		}
	} else {
		return nil
	}
	if !acceptsCtx(fn) {
		return nil
	}
	return fn
}

// acceptsCtx reports whether fn has a context.Context parameter.
func acceptsCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if analysis.IsNamed(sig.Params().At(i).Type(), "context", "Context") {
			return true
		}
	}
	return false
}

// callPassesCtx reports whether any argument lexically mentions a context
// value — ctx itself, a derived context, or a closure capturing one.
func (pa *pkgAnalysis) callPassesCtx(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if ctxloop.MentionsContext(pa.pass.TypesInfo, arg) {
			return true
		}
	}
	return false
}

package snapshotpin_test

import (
	"testing"

	"semandaq/internal/lint/analysistest"
	"semandaq/internal/lint/snapshotpin"
)

func TestSnapshotPin(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotpin.Analyzer,
		"semandaq/internal/relstore", "pin")
}

// TestPR4RaceRegression keeps the exact bug shape PR 4 fixed on file: two
// unpinned scans in one logical read.
func TestPR4RaceRegression(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotpin.Analyzer, "pr4race")
}

// Package pin exercises the snapshotpin analyzer: direct multi-row reads
// of a live Table are flagged, snapshot reads and point reads are not.
package pin

import "semandaq/internal/relstore"

func scansLive(tab *relstore.Table) {
	tab.Scan(func(relstore.TupleID, relstore.Tuple) bool { return true }) // want `direct Table.Scan outside relstore`
	_, _ = tab.Rows()                                                     // want `direct Table.Rows outside relstore`
	_ = tab.IDs()                                                         // want `direct Table.IDs outside relstore`
	_ = tab.Columnar()                                                    // want `direct Table.Columnar outside relstore`
}

func pinned(tab *relstore.Table) {
	snap := tab.Snapshot()
	snap.Scan(func(relstore.TupleID, relstore.Tuple) bool { return true })
	_ = snap.Rows()
	_ = snap.IDs()
	_ = snap.Columnar()
	_ = tab.Snapshot().IDs()
}

func pointReads(tab *relstore.Table) {
	_, _ = tab.Get(0)
	_ = tab.Len()
}

func suppressed(tab *relstore.Table) {
	//semandaq:vet-ignore snapshotpin fixture exercises the directive
	_ = tab.IDs()
}

// Package pr4race is the regression fixture for the PR-4 unpinned-read
// race: the SQL engine's UPDATE path scanned the live table once to find
// the matching rows and later again to apply, so a writer landing between
// the two scans made the report's version a lie. The analyzer must flag
// both unpinned scans; the pinned rewrite below must stay clean.
package pr4race

import "semandaq/internal/relstore"

func updateWhereRacy(tab *relstore.Table, match func(relstore.Tuple) bool) int {
	var hits []relstore.TupleID
	tab.Scan(func(id relstore.TupleID, row relstore.Tuple) bool { // want `direct Table.Scan outside relstore`
		if match(row) {
			hits = append(hits, id)
		}
		return true
	})
	// A concurrent writer can slip in here; the second scan then observes
	// a different table version than the first.
	n := 0
	tab.Scan(func(id relstore.TupleID, row relstore.Tuple) bool { // want `direct Table.Scan outside relstore`
		for _, h := range hits {
			if h == id {
				n++
			}
		}
		return true
	})
	return n
}

func updateWherePinned(tab *relstore.Table, match func(relstore.Tuple) bool) int {
	snap := tab.Snapshot()
	var hits []relstore.TupleID
	snap.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if match(row) {
			hits = append(hits, id)
		}
		return true
	})
	n := 0
	snap.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		for _, h := range hits {
			if h == id {
				n++
			}
		}
		return true
	})
	return n
}

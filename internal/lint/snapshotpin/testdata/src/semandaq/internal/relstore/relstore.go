// Package relstore is a fixture stand-in for the real row store: same
// import path (which is what the analyzer keys on), same method shapes,
// no behaviour.
package relstore

// TupleID identifies a stored tuple.
type TupleID int64

// Tuple is one stored row.
type Tuple []string

// Partition groups tuple IDs.
type Partition struct{ IDs []TupleID }

// Columnar is the column-oriented snapshot face.
type Columnar struct{}

// Table is the live, mutable row store.
type Table struct{ rows []Tuple }

func (t *Table) Scan(fn func(TupleID, Tuple) bool) {}
func (t *Table) Rows() ([]TupleID, []Tuple)        { return nil, nil }
func (t *Table) IDs() []TupleID                    { return nil }
func (t *Table) Columnar() *Columnar               { return nil }
func (t *Table) Get(id TupleID) (Tuple, bool)      { return nil, false }
func (t *Table) Len() int                          { return len(t.rows) }
func (t *Table) Snapshot() *Snapshot               { return nil }

// compact scans the live store from inside the owning package, which the
// analyzer must allow: relstore owns the representation.
func (t *Table) compact() {
	t.Scan(func(TupleID, Tuple) bool { return true })
	_ = t.IDs()
}

// Snapshot is the pinned immutable view.
type Snapshot struct{}

func (s *Snapshot) Scan(fn func(TupleID, Tuple) bool) {}
func (s *Snapshot) Rows() []Tuple                     { return nil }
func (s *Snapshot) IDs() []TupleID                    { return nil }
func (s *Snapshot) Columnar() *Columnar               { return nil }

// Package snapshotpin enforces the repo's snapshot-pinned read contract:
// outside internal/relstore, no code may scan a live *relstore.Table
// directly. Every multi-row read must pin an immutable view first
// (Table.Snapshot()) and iterate that, so the whole read observes exactly
// one table version while writers proceed.
//
// This is the PR-4 race class turned into a compile-time fact: a direct
// Table.Scan / Rows / IDs / Columnar call re-pins (or used to tear) per
// call, so two calls in one logical read can observe two different
// versions — the exact drift the versioned-report contract forbids.
// Point reads (Table.Get) and mutations are not scans and stay allowed.
package snapshotpin

import (
	"go/ast"

	"semandaq/internal/lint/analysis"
)

// RelstorePath is the package whose Table type the analyzer guards. The
// package itself is exempt: it owns the representation.
const RelstorePath = "semandaq/internal/relstore"

// scanMethods are the *relstore.Table methods that read more than one row
// from the live store. Snapshot() is the sanctioned entry point; Len,
// Version, Schema and the mutation surface are fine.
var scanMethods = map[string]bool{
	"Scan":     true,
	"Rows":     true,
	"IDs":      true,
	"Columnar": true,
}

// Analyzer is the snapshotpin check.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotpin",
	Doc: "forbid direct Table row scans outside relstore; reads must go " +
		"through a pinned Snapshot so one read observes one version",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == RelstorePath {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !scanMethods[sel.Sel.Name] {
				return true
			}
			recv := analysis.ReceiverOf(pass.TypesInfo, sel)
			if recv == nil || !analysis.IsNamed(recv, RelstorePath, "Table") {
				return true
			}
			pass.Reportf(sel.Sel.Pos(),
				"direct Table.%s outside relstore: pin a read view with Table.Snapshot() and scan that instead",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}

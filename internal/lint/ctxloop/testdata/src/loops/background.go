package loops

import "context"

func mintBackground() context.Context {
	return context.Background() // want `context.Background\(\) in library code`
}

func mintTODO() context.Context {
	return context.TODO() // want `context.TODO\(\) in library code`
}

func allowedWrapper() context.Context {
	//semandaq:vet-ignore ctxloop deliberate context-free wrapper
	return context.Background()
}

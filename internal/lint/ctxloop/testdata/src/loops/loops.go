// Package loops exercises the per-stride cancellation rule: row-scale
// loops inside ctx-taking functions must mention the context.
package loops

import (
	"context"

	"semandaq/internal/detect"
	"semandaq/internal/relstore"
)

func unchecked(ctx context.Context, rows []relstore.Tuple) int {
	n := 0
	for range rows { // want `row-scale loop in a ctx-taking function has no cancellation check`
		n++
	}
	return n
}

func uncheckedIndexed(ctx context.Context, ids []relstore.TupleID) {
	for i := 0; i < len(ids); i++ { // want `row-scale loop in a ctx-taking function has no cancellation check`
		_ = ids[i]
	}
}

func uncheckedChan(ctx context.Context, ch chan detect.Violation) {
	for v := range ch { // want `row-scale loop in a ctx-taking function has no cancellation check`
		_ = v
	}
}

func uncheckedMap(ctx context.Context, parts map[relstore.TupleID]relstore.Partition) {
	for id := range parts { // want `row-scale loop in a ctx-taking function has no cancellation check`
		_ = id
	}
}

func stride(ctx context.Context, rows []relstore.Tuple) error {
	for i := range rows {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

func selectDone(ctx context.Context, ch chan detect.Violation) {
	for v := range ch {
		select {
		case <-ctx.Done():
			return
		default:
		}
		_ = v
	}
}

func passesCtx(ctx context.Context, groups []detect.Group) {
	for _, g := range groups {
		perGroup(ctx, g)
	}
}

func perGroup(ctx context.Context, g detect.Group) {}

// noCtx has no context parameter; its loops are out of the rule's scope.
func noCtx(rows []relstore.Tuple) {
	for range rows {
	}
}

// schemaScale loops track schema size, not data size.
func schemaScale(ctx context.Context, attrs []string) {
	for range attrs {
	}
}

func suppressed(ctx context.Context, rows []relstore.Tuple) {
	//semandaq:vet-ignore ctxloop fixture exercises the directive
	for range rows {
	}
}

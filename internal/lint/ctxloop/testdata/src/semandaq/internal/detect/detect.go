// Package detect is a fixture stand-in for the row-scale detect types.
package detect

type Violation struct{ Tuples []int64 }

type Group struct{ Members []int64 }

// Command mainpkg shows the package-main exemption: an entry point is
// exactly where a root context belongs.
package main

import "context"

func main() {
	_ = context.Background()
}

// Package ctxloop enforces the cancellation contract from PR 3: a
// function that accepts a context.Context and iterates row-scale state
// (tuples, tuple IDs, partitions, violations) must consult the context
// somewhere inside the loop — a per-stride ctx.Err() check, a select on
// ctx.Done(), or passing ctx to the per-item work, which moves the
// obligation into the callee. A ctx-taking function whose hot loop never
// mentions any context cannot be cancelled and silently breaks every
// timeout and shutdown path above it.
//
// It also forbids minting fresh root contexts with context.Background() /
// context.TODO() outside package main and the allowlist: library code must
// thread the caller's context, not invent its own. Deliberately
// context-free compatibility wrappers carry a //semandaq:vet-ignore
// ctxloop directive with a reason.
package ctxloop

import (
	"go/ast"
	"go/types"

	"semandaq/internal/lint/analysis"
)

// AllowBackground lists import paths exempt from the Background/TODO rule
// (beyond package main, which is always exempt). It is empty by default;
// semandaq-vet's -allow-background flag populates it. Prefer a per-site
// //semandaq:vet-ignore ctxloop directive with a reason: it is visible at
// the offending line and reviewed with it.
var AllowBackground = map[string]bool{}

// rowyElems are the named types whose collections count as row-scale:
// iterating one of these tracks the size of the data, not of the schema.
var rowyElems = map[[2]string]bool{
	{"semandaq/internal/relstore", "Tuple"}:     true,
	{"semandaq/internal/relstore", "TupleID"}:   true,
	{"semandaq/internal/relstore", "Partition"}: true,
	{"semandaq/internal/detect", "Violation"}:   true,
	{"semandaq/internal/detect", "Group"}:       true,
}

// Analyzer is the ctxloop check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc: "require a cancellation check in tuple/partition-scale loops of " +
		"ctx-taking functions, and forbid context.Background()/TODO() " +
		"outside package main",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkBackground(pass)
	checkLoops(pass)
	return nil
}

// checkBackground flags context.Background() / context.TODO() calls in
// library packages.
func checkBackground(pass *analysis.Pass) {
	if pass.Pkg.Name() == "main" || AllowBackground[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s() in library code: thread the caller's ctx instead of minting a root context",
					name)
			}
			return true
		})
	}
}

// checkLoops applies the per-stride rule to every function that takes a
// context.Context parameter.
func checkLoops(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var ftyp *ast.FuncType
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				ftyp, body = fn.Type, fn.Body
			case *ast.FuncLit:
				ftyp, body = fn.Type, fn.Body
			default:
				return true
			}
			if body == nil || !HasCtxParam(pass.TypesInfo, ftyp) {
				return true
			}
			checkBody(pass, body)
			// Nested func lits with their own ctx param are visited by the
			// enclosing Inspect as independent functions; loops inside them
			// are also checked as part of this body, which is fine — a
			// context mention satisfies both.
			return true
		})
	}
}

// HasCtxParam reports whether the function type has a context.Context
// parameter.
func HasCtxParam(info *types.Info, ftyp *ast.FuncType) bool {
	if ftyp.Params == nil {
		return false
	}
	for _, field := range ftyp.Params.List {
		if t := info.Types[field.Type].Type; t != nil && isContext(t) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	return analysis.IsNamed(t, "context", "Context")
}

// checkBody flags row-scale loops in body that never mention a context.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loopBody, ok := RowScaleLoop(pass.TypesInfo, n)
		if !ok {
			return true
		}
		if !MentionsContext(pass.TypesInfo, loopBody) {
			pass.Reportf(n.Pos(),
				"row-scale loop in a ctx-taking function has no cancellation check: consult ctx per stride (ctx.Err()/ctx.Done()) or pass ctx to the per-item work")
		}
		return true
	})
}

// RowScaleLoop classifies n: if it is a loop whose trip count tracks the
// data (a range over a row-scale collection, or a 3-clause for whose
// condition mentions one), it returns the loop body. ctxflow shares this
// classification to decide which functions count as row-scale.
func RowScaleLoop(info *types.Info, n ast.Node) (*ast.BlockStmt, bool) {
	switch loop := n.(type) {
	case *ast.RangeStmt:
		if IsRowy(info.TypeOf(loop.X)) {
			return loop.Body, true
		}
	case *ast.ForStmt:
		if condMentionsRowy(info, loop.Cond) {
			return loop.Body, true
		}
	}
	return nil, false
}

// IsRowy reports whether t is a collection (slice, array, map or channel)
// of row-scale elements.
func IsRowy(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := analysis.Deref(t).Underlying().(type) {
	case *types.Slice:
		return rowyElem(u.Elem())
	case *types.Array:
		return rowyElem(u.Elem())
	case *types.Map:
		return rowyElem(u.Key()) || rowyElem(u.Elem())
	case *types.Chan:
		return rowyElem(u.Elem())
	}
	return false
}

// rowyElem reports whether t (after pointer unwrapping) is one of the
// row-scale named types.
func rowyElem(t types.Type) bool {
	n, ok := analysis.Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return rowyElems[[2]string{obj.Pkg().Path(), obj.Name()}]
}

// condMentionsRowy reports whether a 3-clause for condition ranges a
// row-scale collection, e.g. `for i := 0; i < len(rows); i++`.
func condMentionsRowy(info *types.Info, cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && IsRowy(info.TypeOf(e)) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// MentionsContext reports whether n lexically references any value of
// type context.Context — an Err/Done call, a select case, or passing ctx
// onward all qualify.
func MentionsContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := info.Uses[id]; obj != nil && isContext(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

package ctxloop_test

import (
	"testing"

	"semandaq/internal/lint/analysistest"
	"semandaq/internal/lint/ctxloop"
)

func TestCtxLoop(t *testing.T) {
	analysistest.Run(t, "testdata", ctxloop.Analyzer, "loops", "mainpkg")
}

package mutationlog_test

import (
	"testing"

	"semandaq/internal/lint/analysistest"
	"semandaq/internal/lint/mutationlog"
)

func TestMutationLog(t *testing.T) {
	analysistest.Run(t, "testdata", mutationlog.Analyzer, "semandaq/internal/relstore")
}

// Package mutationlog enforces the relstore change-log contract that the
// PR 7 O(delta) incremental patcher depends on: every code path that
// mutates a Table's row storage (the rows map or the order slice) must
// reach noteMutationLocked before the table lock is released or the
// function returns. A write that escapes the log leaves snapshots and the
// version counter stale, which silently corrupts every incremental
// consumer downstream.
//
// The analysis is scoped to semandaq/internal/relstore (the only package
// allowed to touch Table storage directly — touchstore guards the rest of
// the module). Within it, the walk is path-sensitive: a write to
// t.rows/t.order sets a "pending" bit, a direct noteMutationLocked call
// (or a deferred one) clears it, and a return or a Table-mutex Unlock
// with the bit still set is a finding. Calls to same-package functions
// propagate pending-ness through MutFact summaries, so a helper that
// mutates without noting taints its callers too — the caller must note
// after the helper, or the helper must note itself.
package mutationlog

import (
	"go/ast"
	"go/types"

	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/callgraph"
)

// RelstorePath is the package this contract governs. Fixture packages use
// the same import path so the analyzer sees the real shape.
const RelstorePath = "semandaq/internal/relstore"

// noteMethod is the mutation epilogue every row-storage write must reach.
const noteMethod = "noteMutationLocked"

// guardedFields are the Table fields whose writes must be logged.
var guardedFields = map[string]bool{"rows": true, "order": true}

// MutFact summarizes a function for its callers: WritesPending means some
// path through the function can end (return) with a row-storage write not
// yet noted, so the caller inherits the logging obligation.
type MutFact struct {
	WritesPending bool
}

// AFact marks MutFact as a fact.
func (*MutFact) AFact() {}

// Analyzer is the mutationlog check.
var Analyzer = &analysis.Analyzer{
	Name: "mutationlog",
	Doc: "require every relstore function that writes Table.rows/Table.order " +
		"to reach noteMutationLocked before the table lock is released or " +
		"the function returns",
	Run:       run,
	Requires:  []*analysis.Analyzer{callgraph.Analyzer},
	FactTypes: []analysis.Fact{(*MutFact)(nil)},
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != RelstorePath {
		return nil
	}
	pa := &pkgAnalysis{
		pass:      pass,
		decls:     map[analysis.ObjKey]callgraph.FuncInfo{},
		summaries: map[analysis.ObjKey]bool{},
		inflight:  map[analysis.ObjKey]bool{},
	}
	fns := callgraph.Functions(pass.Files, pass.TypesInfo)
	for _, fi := range fns {
		pa.decls[fi.Key] = fi
	}
	for _, fi := range fns {
		pa.summarize(fi.Key)
	}
	return nil
}

type pkgAnalysis struct {
	pass      *analysis.Pass
	decls     map[analysis.ObjKey]callgraph.FuncInfo
	summaries map[analysis.ObjKey]bool // WritesPending per function
	inflight  map[analysis.ObjKey]bool
}

// summarize walks one function (memoized), reports its violations, and
// returns whether it can end with an unlogged write.
func (pa *pkgAnalysis) summarize(key analysis.ObjKey) bool {
	if wp, ok := pa.summaries[key]; ok {
		return wp
	}
	if pa.inflight[key] {
		return false // recursion: optimistic, the outer walk still checks
	}
	fi, ok := pa.decls[key]
	if !ok {
		return false
	}
	pa.inflight[key] = true
	w := &walker{pa: pa, fi: fi, bases: paramBases(pa.pass.TypesInfo, fi.Decl)}
	exit := w.stmts(fi.Decl.Body.List, state{})
	pending := exit.pending && !w.deferredNote
	if !exit.terminated && pending {
		// Report at the declaration: the defect is the function's shape (no
		// epilogue on the implicit return), and a suppression directive above
		// the func line can cover it.
		pa.pass.Reportf(fi.Decl.Name.Pos(),
			"%s writes Table row storage but falls off the end without calling %s",
			fi.Fn.Name(), noteMethod)
	}
	delete(pa.inflight, key)
	wp := pending || w.pendingReturn
	pa.summaries[key] = wp
	if wp {
		if err := pa.pass.ExportFactByKey(key, &MutFact{WritesPending: true}); err != nil {
			panic(err)
		}
	}
	return wp
}

// writesPendingOf resolves a callee's summary: same-package via the
// memoized walk, cross-package via the exported fact.
func (pa *pkgAnalysis) writesPendingOf(fn *types.Func) bool {
	key, ok := analysis.KeyOf(fn)
	if !ok {
		return false
	}
	if fn.Pkg() == pa.pass.Pkg {
		return pa.summarize(key)
	}
	var fact MutFact
	if pa.pass.ImportFactByKey(key, &fact) {
		return fact.WritesPending
	}
	return false
}

// paramBases collects the variables through which guarded writes count:
// the receiver and any parameter of type (*)Table. Writes through locals
// (e.g. a fresh NewTable() clone being populated) carry no obligation —
// nothing observes the new table until it is published.
func paramBases(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	bases := map[types.Object]bool{}
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil && isTable(obj.Type()) {
				bases[obj] = true
			}
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			addField(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			addField(f)
		}
	}
	return bases
}

func isTable(t types.Type) bool {
	return analysis.IsNamed(t, RelstorePath, "Table")
}

// state is the per-path walk state.
type state struct {
	pending    bool // a guarded write has happened and is not yet noted
	terminated bool // the path ended (return)
}

func merge(a, b state) state {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	return state{pending: a.pending || b.pending}
}

type walker struct {
	pa            *pkgAnalysis
	fi            callgraph.FuncInfo
	bases         map[types.Object]bool
	deferredNote  bool // a defer guarantees noteMutationLocked at every return
	pendingReturn bool // some return was reached with pending set
}

func (w *walker) stmts(list []ast.Stmt, st state) state {
	for _, s := range list {
		st = w.stmt(s, st)
		if st.terminated {
			break
		}
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st state) state {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return w.expr(s.X, st)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st = w.expr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			st = w.expr(lhs, st)
			if w.guardedWrite(lhs) {
				st.pending = true
			}
		}
		return st
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.expr(r, st)
		}
		if st.pending && !w.deferredNote {
			w.pendingReturn = true
			w.pa.pass.Reportf(s.Pos(),
				"%s returns with an unlogged Table mutation: call %s before returning",
				w.fi.Fn.Name(), noteMethod)
		}
		return state{terminated: true}
	case *ast.DeferStmt:
		if w.isNoteCall(s.Call) {
			w.deferredNote = true
			return st
		}
		// Deferred unlocks run at return, after any deferred note; other
		// deferred calls contribute no ordered events we can track.
		return st
	case *ast.GoStmt:
		return st
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		st = w.expr(s.Cond, st)
		then := w.stmts(s.Body.List, st)
		els := st
		if s.Else != nil {
			els = w.stmt(s.Else, st)
		}
		return merge(then, els)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			st = w.expr(s.Cond, st)
		}
		body := w.stmts(s.Body.List, st)
		if s.Post != nil {
			body = w.stmt(s.Post, body)
		}
		return merge(st, body) // zero or more iterations
	case *ast.RangeStmt:
		st = w.expr(s.X, st)
		body := w.stmts(s.Body.List, st)
		return merge(st, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = w.expr(s.Tag, st)
		}
		return w.caseBodies(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		return w.caseBodies(s.Body, st)
	case *ast.SelectStmt:
		return w.caseBodies(s.Body, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.IncDecStmt:
		return w.expr(s.X, st)
	case *ast.SendStmt:
		st = w.expr(s.Chan, st)
		return w.expr(s.Value, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = w.expr(v, st)
					}
				}
			}
		}
		return st
	default:
		return st
	}
}

// caseBodies merges the exits of a switch/select's clauses. Conservative
// about termination: the fall-through (no clause taken) path is always
// merged in, so a switch never terminates the walk by itself.
func (w *walker) caseBodies(body *ast.BlockStmt, st state) state {
	out := st
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				st = w.expr(e, st)
			}
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		out = merge(out, w.stmts(list, st))
	}
	return out
}

// expr processes calls inside an expression in source order: note calls
// clear pending, delete(t.rows, ...) sets it, other same-module calls
// propagate their summaries, and a Table-mutex Unlock with pending set is
// a finding. Function literals are not walked: their bodies run at some
// other time (or not at all) and are summarized only if they are
// themselves declared functions.
func (w *walker) expr(e ast.Expr, st state) state {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Arguments evaluate before the call: visit them via the ongoing
		// Inspect; the classification below only inspects the call itself.
		switch {
		case w.isNoteCall(call):
			st.pending = false
		case w.isGuardedDelete(call):
			st.pending = true
		case w.isTableUnlock(call):
			if st.pending && !w.deferredNote {
				w.pa.pass.Reportf(call.Pos(),
					"%s releases the table lock with an unlogged mutation: call %s before unlocking",
					w.fi.Fn.Name(), noteMethod)
				st.pending = false // one report per escape, not per unlock
			}
		default:
			if fn, _ := callgraph.Resolve(w.pa.pass.TypesInfo, call); fn != nil {
				if w.pa.writesPendingOf(fn) {
					st.pending = true
				}
			}
		}
		return true
	})
	return st
}

// isNoteCall reports whether call is x.noteMutationLocked(...) on a Table.
func (w *walker) isNoteCall(call *ast.CallExpr) bool {
	fn, _ := callgraph.Resolve(w.pa.pass.TypesInfo, call)
	if fn == nil || fn.Name() != noteMethod {
		return false
	}
	recv := methodRecvType(fn)
	return recv != nil && isTable(recv)
}

// methodRecvType returns the receiver type of a method, or nil for a
// plain function.
func methodRecvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isGuardedDelete reports whether call is delete(t.rows, ...) with t a
// tracked base.
func (w *walker) isGuardedDelete(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	if _, ok := w.pa.pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return false
	}
	return len(call.Args) > 0 && w.guardedWrite(call.Args[0])
}

// isTableUnlock reports whether call is t.mu.Unlock() (or RUnlock) on a
// mutex field of a tracked Table.
func (w *walker) isTableUnlock(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	fn, ok := w.pa.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := methodRecvType(fn)
	if recv == nil {
		return false
	}
	if !analysis.IsNamed(recv, "sync", "Mutex") && !analysis.IsNamed(recv, "sync", "RWMutex") {
		return false
	}
	// The mutex must itself be a field selected from a tracked Table.
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return w.trackedBase(muSel.X)
}

// guardedWrite reports whether lhs denotes t.rows / t.order (possibly via
// indexing or slicing) with t a tracked receiver or parameter.
func (w *walker) guardedWrite(lhs ast.Expr) bool {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.SliceExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !guardedFields[sel.Sel.Name] {
		return false
	}
	if s, ok := w.pa.pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal || !isTable(s.Recv()) {
		return false
	}
	return w.trackedBase(sel.X)
}

// trackedBase reports whether e (after unwrapping derefs/parens) is an
// identifier bound to the receiver or a Table parameter.
func (w *walker) trackedBase(e ast.Expr) bool {
	e = ast.Unparen(e)
	if star, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(star.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return w.bases[w.pa.pass.TypesInfo.Uses[id]]
}

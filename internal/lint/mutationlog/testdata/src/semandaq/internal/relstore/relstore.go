// Package relstore is a fixture stand-in shaped like the real store: the
// analyzer keys on this import path, the Table type, its rows/order
// fields, and the noteMutationLocked epilogue.
package relstore

import "sync"

type TupleID int64

type Tuple []string

type Table struct {
	mu    sync.Mutex
	rows  map[TupleID]Tuple
	order []TupleID
	ver   uint64
}

func NewTable() *Table {
	return &Table{rows: map[TupleID]Tuple{}}
}

func (t *Table) noteMutationLocked(ids ...TupleID) {
	t.ver++
}

// goodInsert notes the write before returning: clean.
func (t *Table) goodInsert(id TupleID, tup Tuple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[id] = tup
	t.order = append(t.order, id)
	t.noteMutationLocked(id)
}

// goodDeferredNote notes through a defer, which covers every return path.
func (t *Table) goodDeferredNote(id TupleID, tup Tuple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	defer t.noteMutationLocked(id)
	t.rows[id] = tup
}

// goodBranches notes on each writing path.
func (t *Table) goodBranches(id TupleID, tup Tuple, drop bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if drop {
		delete(t.rows, id)
		t.noteMutationLocked(id)
		return
	}
	t.rows[id] = tup
	t.noteMutationLocked(id)
}

// goodClone populates a fresh local table: nothing observes it before
// publication, so there is no logging obligation.
func (t *Table) goodClone() *Table {
	c := NewTable()
	for id, tup := range t.rows {
		c.rows[id] = tup
	}
	c.order = append(c.order, t.order...)
	return c
}

// badReturn writes and returns without noting.
func (t *Table) badReturn(id TupleID, tup Tuple) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows[id] = tup
	return nil // want `badReturn returns with an unlogged Table mutation`
}

// badFallOff writes and falls off the end.
func (t *Table) badFallOff(id TupleID) { // want `badFallOff writes Table row storage but falls off the end without calling noteMutationLocked`
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.rows, id)
}

// badBranch notes on one path but not the other.
func (t *Table) badBranch(id TupleID, tup Tuple, drop bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if drop {
		delete(t.rows, id)
		return // want `badBranch returns with an unlogged Table mutation`
	}
	t.rows[id] = tup
	t.noteMutationLocked(id)
}

// badUnlock releases the table lock with the write still unlogged: a
// reader can observe the mutation before the version advances.
func (t *Table) badUnlock(id TupleID, tup Tuple) {
	t.mu.Lock()
	t.rows[id] = tup
	t.mu.Unlock() // want `badUnlock releases the table lock with an unlogged mutation`
	t.noteMutationLocked(id)
}

// helperWrite mutates without noting; the pending write escapes to its
// callers through the summary fact.
func (t *Table) helperWrite(id TupleID, tup Tuple) { // want `helperWrite writes Table row storage but falls off the end without calling noteMutationLocked`
	t.rows[id] = tup
}

// goodCaller notes after the tainted helper: clean.
func (t *Table) goodCaller(id TupleID, tup Tuple) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.helperWrite(id, tup)
	t.noteMutationLocked(id)
}

// badCaller inherits the helper's pending write and never notes.
func (t *Table) badCaller(id TupleID, tup Tuple) { // want `badCaller writes Table row storage but falls off the end without calling noteMutationLocked`
	t.mu.Lock()
	defer t.mu.Unlock()
	t.helperWrite(id, tup)
}

// suppressedCompact mirrors the real compactLocked: a locked helper whose
// caller owns the note, with the contract stated at the directive.
//
//semandaq:vet-ignore mutationlog the caller's epilogue logs the write
func (t *Table) suppressedCompact() {
	t.order = t.order[:0]
}

// goodSuppressedCaller still notes after the suppressed helper — the
// suppression hides the helper's own finding, not the propagated summary.
func (t *Table) goodSuppressedCaller() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.suppressedCompact()
	t.noteMutationLocked()
}

package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"testing"

	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/callgraph"
)

const src = `package cg

type Doer interface{ Do() }

type T struct{}

func (T) Do() { helper() }

type U struct{}

func (*U) Do() {}

func helper() {}

func direct() { helper() }

func viaIface(d Doer) { d.Do() }

func viaValue(f func()) { f() } // unresolvable: no edges
`

// load type-checks src as a standalone package (no imports needed).
func load(t *testing.T) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cg.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, err := (&types.Config{}).Check("cg", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

func TestCallees(t *testing.T) {
	fset, files, pkg, info := load(t)
	store := analysis.NewFactStore()
	analysis.RegisterFactTypes(callgraph.Analyzer)
	if _, err := analysis.RunPass(callgraph.Analyzer, fset, files, pkg, info, store, nil); err != nil {
		t.Fatal(err)
	}
	ep := analysis.NewEndPass(callgraph.Analyzer, store, nil)
	got := map[string][]string{}
	for _, key := range ep.ObjectFactKeys(&callgraph.Callees{}) {
		var fact callgraph.Callees
		if !ep.ImportObjectFact(key, &fact) {
			t.Fatalf("no Callees fact for %s", key)
		}
		var callees []string
		for _, ck := range fact.Keys {
			callees = append(callees, ck.String())
		}
		sort.Strings(callees)
		got[key.String()] = callees
	}
	want := map[string][]string{
		"cg.(T).Do":   {"cg.helper"},
		"cg.(U).Do":   nil,
		"cg.direct":   {"cg.helper"},
		"cg.helper":   nil,
		"cg.viaIface": {"cg.(T).Do", "cg.(U).Do"}, // interface call over-approximated by implementers
		"cg.viaValue": nil,
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("callees:\n got %v\nwant %v", got, want)
	}
}

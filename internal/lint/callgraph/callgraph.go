// Package callgraph builds the module-wide static call graph every
// interprocedural analyzer shares. For each declared function or method of
// a package it exports a Callees fact — the set of in-module functions the
// body may call:
//
//   - direct calls to package-level functions;
//   - method calls resolved by the concrete receiver type;
//   - interface method calls, over-approximated by the matching method of
//     every in-module type implementing the interface (among the packages
//     visible at the call site: the current package and its transitive
//     imports).
//
// Calls through function values (callbacks, stored closures) are not
// resolvable statically and are omitted; analyzers that must be sound
// around them handle callbacks lexically (the way ctxloop treats a
// ctx-mentioning closure as discharging the obligation).
//
// The pass reports no diagnostics; it exists for its facts and for the
// resolution helpers (Resolver, Functions) the downstream analyzers reuse.
package callgraph

import (
	"go/ast"
	"go/types"
	"strings"

	"semandaq/internal/lint/analysis"
)

// ModulePrefix gates which callees enter the graph: the module's own
// packages (facts only exist for those) plus whatever package is currently
// under analysis (so analysistest fixtures with short import paths still
// see their intra-package edges).
const ModulePrefix = "semandaq"

// Callees is the fact: the in-module functions a function may call.
type Callees struct {
	Keys []analysis.ObjKey
}

// AFact marks Callees as a fact.
func (*Callees) AFact() {}

// Analyzer is the callgraph pass.
var Analyzer = &analysis.Analyzer{
	Name:      "callgraph",
	Doc:       "build the module-wide static call graph (facts only, no diagnostics)",
	Run:       run,
	FactTypes: []analysis.Fact{(*Callees)(nil)},
}

func run(pass *analysis.Pass) error {
	res := NewResolver(pass.Pkg)
	for _, fi := range Functions(pass.Files, pass.TypesInfo) {
		seen := map[analysis.ObjKey]bool{}
		var keys []analysis.ObjKey
		add := func(fn *types.Func) {
			if !inModule(fn, pass.Pkg) {
				return
			}
			if key, ok := analysis.KeyOf(fn); ok && !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
		}
		ast.Inspect(fi.Decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			static, ifaceMethod := Resolve(pass.TypesInfo, call)
			if static != nil {
				add(static)
			}
			if ifaceMethod != nil {
				for _, impl := range res.Implementations(ifaceMethod) {
					add(impl)
				}
			}
			return true
		})
		if err := pass.ExportFactByKey(fi.Key, &Callees{Keys: keys}); err != nil {
			return err
		}
	}
	return nil
}

// inModule reports whether fn belongs to the module (or to the package
// under analysis itself — fixture packages use short paths).
func inModule(fn *types.Func, cur *types.Package) bool {
	p := fn.Pkg()
	if p == nil {
		return false
	}
	return p == cur || p.Path() == ModulePrefix || strings.HasPrefix(p.Path(), ModulePrefix+"/")
}

// FuncInfo pairs one declared function or method with its fact key.
type FuncInfo struct {
	Key  analysis.ObjKey
	Fn   *types.Func
	Decl *ast.FuncDecl
}

// Functions lists the declared functions and methods of a package's files
// (bodies present), in file order.
func Functions(files []*ast.File, info *types.Info) []FuncInfo {
	var out []FuncInfo
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key, ok := analysis.KeyOf(fn)
			if !ok {
				continue
			}
			out = append(out, FuncInfo{Key: key, Fn: fn, Decl: fd})
		}
	}
	return out
}

// Resolve classifies a call expression: static is the *types.Func the call
// resolves to when the callee is a package-level function or a method on a
// concrete receiver; ifaceMethod is the interface method when the call
// dispatches through an interface. At most one of the two is non-nil.
func Resolve(info *types.Info, call *ast.CallExpr) (static, ifaceMethod *types.Func) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil, nil
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil, fn
			}
		}
		return fn, nil
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, nil
		}
	}
	return nil, nil
}

// Resolver enumerates in-module implementations of interface methods. The
// universe is the analyzed package plus its transitive imports, filtered to
// the module — the packages whose facts can exist at this point of the
// import-DAG walk.
type Resolver struct {
	pkg      *types.Package
	universe []*types.Named
	built    bool
	cache    map[*types.Func][]*types.Func
}

// NewResolver builds a resolver for the package under analysis.
func NewResolver(pkg *types.Package) *Resolver {
	return &Resolver{pkg: pkg, cache: map[*types.Func][]*types.Func{}}
}

func (r *Resolver) buildUniverse() {
	if r.built {
		return
	}
	r.built = true
	seen := map[*types.Package]bool{}
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		if p == r.pkg || p.Path() == ModulePrefix || strings.HasPrefix(p.Path(), ModulePrefix+"/") {
			scope := p.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok || types.IsInterface(named) {
					continue
				}
				r.universe = append(r.universe, named)
			}
		}
		for _, imp := range p.Imports() {
			visit(imp)
		}
	}
	visit(r.pkg)
}

// Implementations returns the concrete methods that an interface method
// call may dispatch to, among the in-module types visible from the
// analyzed package.
func (r *Resolver) Implementations(m *types.Func) []*types.Func {
	if impls, ok := r.cache[m]; ok {
		return impls
	}
	r.buildUniverse()
	var iface *types.Interface
	if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil {
		iface, _ = sig.Recv().Type().Underlying().(*types.Interface)
	}
	var impls []*types.Func
	if iface != nil {
		for _, named := range r.universe {
			var recv types.Type = named
			if !types.Implements(recv, iface) {
				recv = types.NewPointer(named)
				if !types.Implements(recv, iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				impls = append(impls, fn)
			}
		}
	}
	r.cache[m] = impls
	return impls
}

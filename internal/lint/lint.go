// Package lint registers semandaq's custom analyzers: the machine-checked
// versions of the snapshot/version/context contract that PRs 3-5
// established by convention. cmd/semandaq-vet runs them; each analyzer
// package documents and tests its own rule. docs/INVARIANTS.md is the
// human-readable index of what they enforce and why.
package lint

import (
	"semandaq/internal/lint/analysis"
	"semandaq/internal/lint/ctxflow"
	"semandaq/internal/lint/ctxloop"
	"semandaq/internal/lint/lockdiscipline"
	"semandaq/internal/lint/lockorder"
	"semandaq/internal/lint/mutationlog"
	"semandaq/internal/lint/noexplode"
	"semandaq/internal/lint/snapshotpin"
	"semandaq/internal/lint/versionstamp"
)

// All returns every registered analyzer, in stable order. The callgraph
// pass is not listed: it reports nothing and is pulled in through the
// interprocedural analyzers' Requires when analysis.Plan expands the run.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		snapshotpin.Analyzer,
		versionstamp.Analyzer,
		ctxloop.Analyzer,
		lockdiscipline.Analyzer,
		noexplode.Analyzer,
		lockorder.Analyzer,
		mutationlog.Analyzer,
		ctxflow.Analyzer,
	}
}

// Package loader type-checks Go packages from source using only the
// standard library. It shells out to `go list -export` for the build
// graph and for compiled export data (the same artifacts `go vet` uses),
// parses each target package's non-test sources with go/parser, and
// type-checks them with go/types against an export-data importer.
//
// This is the piece x/tools' go/packages would normally provide; it is
// reimplemented here because the repo builds fully offline with zero
// module dependencies. Test files are deliberately out of scope: the
// semandaq-vet contract covers production read/write paths, and tests
// exercise deprecated and context-free surfaces on purpose.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string // direct imports, as listed by go list
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// Err records a parse or type error; such packages have no Types/Info
	// and must be skipped (go build will report the error better).
	Err error
}

// ListPackage mirrors the subset of `go list -json` output the loader reads.
type ListPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// GoList runs `go list -e -export -deps -json` in dir over patterns and
// returns the decoded package graph plus the path -> export-data map for
// every buildable package in it (targets and dependencies alike).
func GoList(dir string, patterns ...string) ([]ListPackage, map[string]string, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Imports,Standard,DepOnly,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []ListPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p ListPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, exports, nil
}

// ExportImporter builds a types.Importer that resolves every import from
// the given path -> export-data-file map.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Load type-checks the packages matched by patterns (their dependencies
// are consumed as export data only). dir is the working directory for the
// underlying go list call, typically the module root.
//
// The returned packages are in import-DAG order — every package after all
// of its in-module dependencies — which is what lets fact-exporting
// analyzers see their dependencies' facts before analyzing the importer.
// Ties (unrelated packages) break by import path for determinism.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, exports, err := GoList(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || lp.Dir == "" || len(lp.GoFiles) == 0 {
			continue
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			GoFiles:    lp.GoFiles,
			Imports:    lp.Imports,
		}
		if lp.Error != nil {
			p.Err = fmt.Errorf("%s", lp.Error.Err)
			out = append(out, p)
			continue
		}
		p.Files, p.Types, p.Info, p.Err = Check(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		out = append(out, p)
	}
	return fset, SortDAG(out), nil
}

// SortDAG orders packages dependencies-first (topological over the direct
// Imports edges restricted to the given set), breaking ties by import path.
// Cycles cannot occur in a valid Go build graph; if the input is somehow
// cyclic the members are emitted in path order rather than dropped.
func SortDAG(pkgs []*Package) []*Package {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	out := make([]*Package, 0, len(pkgs))
	state := make(map[string]int, len(pkgs)) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.ImportPath] {
		case 1, 2:
			return
		}
		state[p.ImportPath] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// Check parses the named files in dir and type-checks them as the package
// at importPath, resolving imports through imp.
func Check(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return files, nil, nil, err
	}
	return files, pkg, info, nil
}

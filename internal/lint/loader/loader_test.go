package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestLoadDAGOrder pins the dependencies-first ordering interprocedural
// analyzers rely on: by the time a package is analyzed, every in-module
// dependency has already been.
func TestLoadDAGOrder(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module m\n\ngo 1.24\n",
		"a/a.go":   "package a\n\nimport \"m/b\"\n\nfunc A() int { return b.B() }\n",
		"b/b.go":   "package b\n\nimport \"m/c\"\n\nfunc B() int { return c.C() }\n",
		"c/c.go":   "package c\n\nfunc C() int { return 1 }\n",
		"zz/zz.go": "package zz\n\nfunc Z() int { return 0 }\n",
		"main.go":  "package m\n\nimport \"m/a\"\n\nfunc M() int { return a.A() }\n",
	})
	_, pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, p := range pkgs {
		if p.Err != nil {
			t.Fatalf("%s: %v", p.ImportPath, p.Err)
		}
		pos[p.ImportPath] = i
	}
	for _, dep := range [][2]string{{"m/c", "m/b"}, {"m/b", "m/a"}, {"m/a", "m"}} {
		if pos[dep[0]] >= pos[dep[1]] {
			t.Errorf("%s (index %d) must precede its importer %s (index %d)",
				dep[0], pos[dep[0]], dep[1], pos[dep[1]])
		}
	}
}

// TestLoadTypeError pins the error path the driver's exit-2 behaviour
// depends on: a package that does not type-check comes back with Err set
// (with a useful position), not as a panic and not silently dropped.
func TestLoadTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":    "module bad\n\ngo 1.24\n",
		"oops/o.go": "package oops\n\nfunc F() int { return \"not an int\" }\n",
		"fine/f.go": "package fine\n\nfunc G() int { return 2 }\n",
	})
	_, pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load must not fail wholesale on a package type error: %v", err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	bad := byPath["bad/oops"]
	if bad == nil {
		t.Fatal("broken package missing from the result")
	}
	if bad.Err == nil {
		t.Fatal("broken package has no Err")
	}
	if !strings.Contains(bad.Err.Error(), "o.go") {
		t.Errorf("type error should carry the offending position, got: %v", bad.Err)
	}
	if fine := byPath["bad/fine"]; fine == nil || fine.Err != nil {
		t.Errorf("healthy sibling package must still load, got %+v", fine)
	}
}

// TestLoadMissingExportData pins the other error path: when a dependency
// fails to compile it has no export data, and the importing package must
// degrade to a per-package Err mentioning the missing dependency rather
// than panicking.
func TestLoadMissingExportData(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":      "module bad\n\ngo 1.24\n",
		"broken/b.go": "package broken\n\nfunc B() int { return \"nope\" }\n",
		"user/u.go":   "package user\n\nimport \"bad/broken\"\n\nfunc U() int { return broken.B() }\n",
	})
	_, pkgs, err := Load(dir, "./user")
	if err != nil {
		t.Fatalf("Load must not fail wholesale: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	u := pkgs[0]
	if u.Err == nil {
		t.Fatal("importer of a broken dependency has no Err")
	}
	if !strings.Contains(u.Err.Error(), "bad/broken") {
		t.Errorf("error should name the missing dependency, got: %v", u.Err)
	}
}

// TestSortDAG covers the pure ordering helper, including the tie-break.
func TestSortDAG(t *testing.T) {
	mk := func(path string, imports ...string) *Package {
		return &Package{ImportPath: path, Imports: imports}
	}
	pkgs := []*Package{
		mk("z"),
		mk("a", "z", "m"),
		mk("m", "z"),
		mk("b"), // unrelated: path order among roots
	}
	got := SortDAG(pkgs)
	var order []string
	for _, p := range got {
		order = append(order, p.ImportPath)
	}
	want := "z m a b"
	if s := strings.Join(order, " "); s != want {
		t.Errorf("SortDAG order = %q, want %q", s, want)
	}
}

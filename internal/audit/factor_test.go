package audit

import (
	"context"
	"reflect"
	"testing"

	"semandaq/internal/datagen"
	"semandaq/internal/detect"
)

// TestAuditFactorisedMatchesAudit is the equivalence contract: auditing
// the factorised detection result must produce exactly the report that
// auditing the exploded legacy report does — same classifications, bars,
// pie and statistics — across noise rates.
func TestAuditFactorisedMatchesAudit(t *testing.T) {
	ctx := context.Background()
	cfds := datagen.StandardCFDs()
	for _, noise := range []float64{0, 0.08, 0.25} {
		ds := datagen.Generate(datagen.Config{Tuples: 700, Seed: 17, NoiseRate: noise})
		snap := ds.Dirty.Snapshot()
		rep, err := detect.ColumnarDetector{}.DetectSnapshot(ctx, snap, cfds)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Audit(snap, cfds, rep)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := detect.DetectFactorised(ctx, snap, cfds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AuditFactorised(snap, cfds, fr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("noise=%.2f: factorised audit != legacy audit\ngot:  %+v\nwant: %+v",
				noise, got, want)
		}
	}
}

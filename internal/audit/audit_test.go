package audit

import (
	"context"
	"strings"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// fixture: 6 tuples exercising every tuple class.
//
//	t0 Mike: UK/EH2/Mayfield, CC=44 — multi-tuple violation (minority? no:
//	   majority with Rick 2-1 vs Nora) + verified by phi4 → arguably clean.
//	t1 Rick: same as Mike → arguably clean.
//	t2 Nora: typo street (minority of the group) → dirty.
//	t3 Joe: CC=44 but CNT=US → single-tuple violation → dirty.
//	t4 Ann: CC=44, CNT=UK, unique zip → verified clean (phi4 applies).
//	t5 Ben: CC=1, US — no CFD with constant RHS applies → probably clean.
func fixture(t *testing.T) (*relstore.Table, []*cfd.CFD, *detect.Report) {
	t.Helper()
	tab := relstore.NewTable(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
	rows := [][]string{
		{"Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Rick", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Nora", "UK", "Edinburgh", "EH2 4SD", "Mayfeild", "44", "131"},
		{"Joe", "US", "New York", "01202", "Mtn Ave", "44", "908"},
		{"Ann", "UK", "London", "SW1A", "Downing", "44", "20"},
		{"Ben", "US", "Chicago", "60601", "Wacker", "1", "312"},
	}
	for _, r := range rows {
		row := make(relstore.Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	cfds, err := cfd.ParseSet(`
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi4@ customer: [CC=44] -> [CNT=UK]
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := detect.NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	return tab, cfds, rep
}

func TestTupleClassification(t *testing.T) {
	tab, cfds, rep := fixture(t)
	a, err := Audit(tab.Snapshot(), cfds, rep)
	if err != nil {
		t.Fatal(err)
	}
	want := map[relstore.TupleID]TupleClass{
		0: ArguablyClean,
		1: ArguablyClean,
		2: Dirty,
		3: Dirty,
		4: VerifiedClean,
		5: ProbablyClean,
	}
	for id, cls := range want {
		if got := a.Tuples[id]; got != cls {
			t.Errorf("tuple %d = %v, want %v", id, got, cls)
		}
	}
}

func TestCumulativeCounts(t *testing.T) {
	tab, cfds, rep := fixture(t)
	a, err := Audit(tab.Snapshot(), cfds, rep)
	if err != nil {
		t.Fatal(err)
	}
	if a.VerifiedTuples != 1 {
		t.Errorf("verified = %d", a.VerifiedTuples)
	}
	if a.ProbablyTuples != 2 { // verified ⊆ probably
		t.Errorf("probably = %d", a.ProbablyTuples)
	}
	if a.ArguablyTuples != 4 { // + Mike, Rick
		t.Errorf("arguably = %d", a.ArguablyTuples)
	}
	if a.DirtyTuples != 2 {
		t.Errorf("dirty = %d", a.DirtyTuples)
	}
	// Nesting invariant.
	if !(a.VerifiedTuples <= a.ProbablyTuples && a.ProbablyTuples <= a.ArguablyTuples) {
		t.Error("classes must nest")
	}
	if a.ArguablyTuples+a.DirtyTuples != a.TupleCount {
		t.Error("partition must cover all tuples")
	}
}

func TestAttributeLevel(t *testing.T) {
	tab, cfds, rep := fixture(t)
	a, err := Audit(tab.Snapshot(), cfds, rep)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AttrQuality{}
	for _, q := range a.Attrs {
		byName[q.Attr] = q
	}
	// STR carries the multi-tuple conflicts: Mike/Rick arguably (majority),
	// Nora dirty.
	str := byName["STR"]
	if str.Dirty != 1 {
		t.Errorf("STR dirty = %d", str.Dirty)
	}
	if str.Arguably != 5 {
		t.Errorf("STR arguably = %d", str.Arguably)
	}
	// CNT carries Joe's single-tuple violation, and is verified for the
	// CC=44,CNT=UK tuples (Mike, Rick, Nora, Ann).
	cnt := byName["CNT"]
	if cnt.Dirty != 1 {
		t.Errorf("CNT dirty = %d", cnt.Dirty)
	}
	if cnt.Verified != 4 {
		t.Errorf("CNT verified = %d", cnt.Verified)
	}
	// NAME is untouched by any CFD: all probably clean, none verified.
	name := byName["NAME"]
	if name.Verified != 0 || name.Probably != 6 || name.Dirty != 0 {
		t.Errorf("NAME = %+v", name)
	}
	// Percentages.
	if p := name.PctProbably(); p != 100 {
		t.Errorf("NAME pct = %v", p)
	}
	if cnt.PctVerified() <= 0 || cnt.PctArguably() > 100 {
		t.Errorf("CNT pcts = %v %v", cnt.PctVerified(), cnt.PctArguably())
	}
}

func TestPieChart(t *testing.T) {
	tab, cfds, rep := fixture(t)
	a, err := Audit(tab.Snapshot(), cfds, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pie) != 2 {
		t.Fatalf("pie = %+v", a.Pie)
	}
	// phi2 involves 3 tuples, phi4 one: descending order.
	if a.Pie[0].CFDID != "phi2" || a.Pie[0].Violations != 3 {
		t.Errorf("pie[0] = %+v", a.Pie[0])
	}
	if a.Pie[1].CFDID != "phi4" || a.Pie[1].Violations != 1 {
		t.Errorf("pie[1] = %+v", a.Pie[1])
	}
}

func TestVioStats(t *testing.T) {
	tab, cfds, rep := fixture(t)
	a, err := Audit(tab.Snapshot(), cfds, rep)
	if err != nil {
		t.Fatal(err)
	}
	s := a.Stats
	if s.DirtyTuples != 4 {
		t.Errorf("dirty = %d", s.DirtyTuples)
	}
	// Mike: 1 partner (Nora), Rick: 1, Nora: 2, Joe: 1 → total 5.
	if s.TotalVio != 5 {
		t.Errorf("total = %d", s.TotalVio)
	}
	if s.MinVio != 1 || s.MaxVio != 2 {
		t.Errorf("min/max = %d/%d", s.MinVio, s.MaxVio)
	}
	if s.Groups != 1 || s.MinGroup != 3 || s.MaxGroup != 3 || s.AvgGroup != 3 {
		t.Errorf("groups = %+v", s)
	}
}

func TestCleanTableAudit(t *testing.T) {
	tab := relstore.NewTable(schema.New("r", "A", "B"))
	tab.MustInsert(relstore.Tuple{types.NewString("x"), types.NewString("1")})
	fd := cfd.NewFD("f", "r", []string{"A"}, []string{"B"})
	rep, err := detect.NativeDetector{}.Detect(context.Background(), tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Audit(tab.Snapshot(), []*cfd.CFD{fd}, rep)
	if err != nil {
		t.Fatal(err)
	}
	if a.DirtyTuples != 0 || a.ProbablyTuples != 1 {
		t.Errorf("audit = %+v", a)
	}
	// No constant-RHS CFD exists, so nothing is verified.
	if a.VerifiedTuples != 0 {
		t.Errorf("verified = %d", a.VerifiedTuples)
	}
	if a.Stats.DirtyTuples != 0 || a.Stats.Groups != 0 {
		t.Errorf("stats = %+v", a.Stats)
	}
}

func TestMajorityNotStrictIsDirty(t *testing.T) {
	// 2-2 split group: nobody holds a strict majority; all dirty.
	tab := relstore.NewTable(schema.New("r", "K", "V"))
	for _, v := range []string{"a", "a", "b", "b"} {
		tab.MustInsert(relstore.Tuple{types.NewString("k"), types.NewString(v)})
	}
	fd := cfd.NewFD("f", "r", []string{"K"}, []string{"V"})
	rep, err := detect.NativeDetector{}.Detect(context.Background(), tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Audit(tab.Snapshot(), []*cfd.CFD{fd}, rep)
	if err != nil {
		t.Fatal(err)
	}
	if a.DirtyTuples != 4 || a.ArguablyTuples != 0 {
		t.Errorf("audit = verified %d probably %d arguably %d dirty %d",
			a.VerifiedTuples, a.ProbablyTuples, a.ArguablyTuples, a.DirtyTuples)
	}
}

func TestRenderContainsKeySections(t *testing.T) {
	tab, cfds, rep := fixture(t)
	a, err := Audit(tab.Snapshot(), cfds, rep)
	if err != nil {
		t.Fatal(err)
	}
	out := a.Render()
	for _, want := range []string{
		"Data quality report", "attribute-value quality", "violations per CFD",
		"vio(t):", "multi-tuple groups", "phi2", "STR",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestClassString(t *testing.T) {
	names := map[TupleClass]string{
		VerifiedClean: "verified clean",
		ProbablyClean: "probably clean",
		ArguablyClean: "arguably clean",
		Dirty:         "dirty",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d = %q", c, c.String())
		}
	}
}

func TestAuditValidatesCFDs(t *testing.T) {
	tab, _, rep := fixture(t)
	bad, err := cfd.ParseSet("customer: [NOPE=_] -> [CITY=_]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Audit(tab.Snapshot(), bad, rep); err == nil {
		t.Error("unknown attribute should fail")
	}
}

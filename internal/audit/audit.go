// Package audit implements Semandaq's data auditor: it enriches the error
// detector's vio(t) counts with the statistical summary the paper's data
// quality report (Fig. 4) presents — the verified/probably/arguably clean
// classification at the tuple and attribute-value level, the violation pie
// chart, and distribution statistics over multi-tuple violations.
//
// The classifications, per the paper:
//
//   - verified clean: the tuple violates no CFD and at least one CFD with a
//     constant RHS applies to it — its values are positively vouched for;
//   - probably clean: the tuple violates no CFD;
//   - arguably clean: probably clean, or involved in a multi-tuple
//     violation where the bulk of the jointly violating tuples agree with
//     it (substantial evidence it is the correct one).
//
// The classes nest: verified ⊆ probably ⊆ arguably.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
)

// TupleClass is the cleanliness classification of one tuple.
type TupleClass int

// Tuple classes, from dirtiest to cleanest.
const (
	Dirty TupleClass = iota
	ArguablyClean
	ProbablyClean
	VerifiedClean
)

// String names the class.
func (c TupleClass) String() string {
	switch c {
	case VerifiedClean:
		return "verified clean"
	case ProbablyClean:
		return "probably clean"
	case ArguablyClean:
		return "arguably clean"
	default:
		return "dirty"
	}
}

// AttrQuality is the per-attribute value-level summary (one bar of the
// Fig. 4 bar chart).
type AttrQuality struct {
	Attr     string
	Total    int // cells
	Verified int
	Probably int
	Arguably int
	Dirty    int
}

// PctVerified returns the verified-clean percentage of the attribute.
func (a AttrQuality) PctVerified() float64 { return pct(a.Verified, a.Total) }

// PctProbably returns the probably-clean percentage.
func (a AttrQuality) PctProbably() float64 { return pct(a.Probably, a.Total) }

// PctArguably returns the arguably-clean percentage.
func (a AttrQuality) PctArguably() float64 { return pct(a.Arguably, a.Total) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// VioStats summarizes the distribution of vio(t) over dirty tuples and the
// multi-tuple group sizes.
type VioStats struct {
	DirtyTuples int
	TotalVio    int
	MinVio      int
	MaxVio      int
	AvgVio      float64
	Groups      int
	MinGroup    int
	MaxGroup    int
	AvgGroup    float64
}

// CFDSlice is one slice of the violation pie chart (Fig. 4).
type CFDSlice struct {
	CFDID      string
	Violations int // tuples involved (single + multi)
}

// Report is the full audit result.
type Report struct {
	Table      string
	TupleCount int
	// Version is the table version the audit reflects: the classification
	// scan runs over the same pinned snapshot the detection report was
	// computed from.
	Version int64
	// Tuples classifies every tuple (class of the cleanest bucket it
	// reaches; the cumulative counts below follow the nesting).
	Tuples map[relstore.TupleID]TupleClass
	// Cumulative tuple counts per class.
	VerifiedTuples int
	ProbablyTuples int
	ArguablyTuples int
	DirtyTuples    int
	// Attrs is the attribute-value-level bar chart data, schema order.
	Attrs []AttrQuality
	// Pie is the violations-per-CFD pie chart data, sorted descending.
	Pie   []CFDSlice
	Stats VioStats
}

// Audit computes the quality report from a detection report. snap must be
// the pinned snapshot the detection ran on (same version — the
// classification scan re-reads the rows and must agree with the report's
// violations), and cfds the same constraint set.
func Audit(snap *relstore.Snapshot, cfds []*cfd.CFD, rep *detect.Report) (*Report, error) {
	sc := snap.Schema()
	// Normalize + merge the same way detection does so pattern bookkeeping
	// lines up with violation records.
	var normalized []*cfd.CFD
	for _, c := range cfds {
		if err := c.Validate(sc); err != nil {
			return nil, err
		}
		normalized = append(normalized, c.Normalize()...)
	}
	merged := cfd.MergeByFD(normalized)

	out := &Report{
		Table:      rep.Table,
		TupleCount: rep.TupleCount,
		Version:    rep.Version,
		Tuples:     make(map[relstore.TupleID]TupleClass, rep.TupleCount),
	}

	// Index violations by tuple, split by kind; index groups by tuple.
	singleBy := map[relstore.TupleID][]*detect.Violation{}
	multiBy := map[relstore.TupleID][]*detect.Violation{}
	attrViol := map[relstore.TupleID]map[string]detect.Kind{}
	for i := range rep.Violations {
		v := &rep.Violations[i]
		if v.Kind == detect.SingleTuple {
			singleBy[v.TupleID] = append(singleBy[v.TupleID], v)
		} else {
			multiBy[v.TupleID] = append(multiBy[v.TupleID], v)
		}
		m := attrViol[v.TupleID]
		if m == nil {
			m = map[string]detect.Kind{}
			attrViol[v.TupleID] = m
		}
		// Single-tuple beats multi-tuple when both hit the same attribute.
		if prev, ok := m[strings.ToLower(v.Attr)]; !ok || prev == detect.MultiTuple {
			m[strings.ToLower(v.Attr)] = v.Kind
		}
	}
	groupsBy := map[relstore.TupleID][]*detect.Group{}
	for _, g := range rep.Groups {
		for _, id := range g.Members {
			groupsBy[id] = append(groupsBy[id], g)
		}
	}

	// Precompute, per merged CFD, the positions needed for the "applies"
	// check of verified-cleanliness.
	type applier struct {
		c      *cfd.CFD
		lhsPos []int
		rhsPos []int
		consts []int // constant-RHS pattern indexes
	}
	var appliers []applier
	for _, c := range merged {
		lhsPos, err := sc.Positions(c.LHS)
		if err != nil {
			return nil, err
		}
		rhsPos, err := sc.Positions(c.RHS)
		if err != nil {
			return nil, err
		}
		a := applier{c: c, lhsPos: lhsPos, rhsPos: rhsPos}
		for i := range c.Tableau {
			if !c.Tableau[i].RHS[0].Wildcard {
				a.consts = append(a.consts, i)
			}
		}
		if len(a.consts) > 0 {
			appliers = append(appliers, a)
		}
	}

	// Attribute-level accumulators, schema order.
	attrAcc := make([]AttrQuality, sc.Arity())
	for i, a := range sc.Attrs {
		attrAcc[i].Attr = a.Name
	}

	// majorityHolder reports whether t agrees with the strict majority in
	// every group it belongs to.
	majorityHolder := func(id relstore.TupleID) bool {
		gs := groupsBy[id]
		if len(gs) == 0 {
			return false
		}
		for _, g := range gs {
			if g.RHSOf[id] != g.MajorityKey {
				return false
			}
			if 2*g.MajoritySize() <= len(g.Members) {
				return false
			}
		}
		return true
	}

	snap.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		hasViolation := rep.Vio[id] > 0
		hasSingle := len(singleBy[id]) > 0

		// Does a constant-RHS pattern apply to (and verify) this tuple?
		verifiedApplies := false
		verifiedAttrs := map[string]bool{}
		for _, a := range appliers {
			for _, pi := range a.consts {
				if !a.c.MatchLHS(pi, row, a.lhsPos) {
					continue
				}
				if a.c.MatchRHS(pi, row, a.rhsPos) {
					verifiedApplies = true
					verifiedAttrs[strings.ToLower(a.c.RHS[0])] = true
				}
			}
		}

		var class TupleClass
		switch {
		case !hasViolation && verifiedApplies:
			class = VerifiedClean
		case !hasViolation:
			class = ProbablyClean
		case !hasSingle && majorityHolder(id):
			class = ArguablyClean
		default:
			class = Dirty
		}
		out.Tuples[id] = class
		switch class {
		case VerifiedClean:
			out.VerifiedTuples++
		case ProbablyClean:
			out.ProbablyTuples++
		case ArguablyClean:
			out.ArguablyTuples++
		default:
			out.DirtyTuples++
		}

		// Attribute-value level: a cell is implicated when its attribute
		// carries one of the tuple's violations.
		for i, attr := range sc.Attrs {
			acc := &attrAcc[i]
			acc.Total++
			kind, implicated := attrViol[id][strings.ToLower(attr.Name)]
			switch {
			case !implicated && verifiedAttrs[strings.ToLower(attr.Name)]:
				acc.Verified++
				acc.Probably++
				acc.Arguably++
			case !implicated:
				acc.Probably++
				acc.Arguably++
			case kind == detect.MultiTuple && majorityHolder(id):
				acc.Arguably++
			default:
				acc.Dirty++
			}
		}
		return true
	})
	// Dirty at the attribute level = total - arguably.
	for i := range attrAcc {
		attrAcc[i].Dirty = attrAcc[i].Total - attrAcc[i].Arguably
	}
	out.Attrs = attrAcc

	// Cumulative nesting at the tuple level.
	out.ProbablyTuples += out.VerifiedTuples
	out.ArguablyTuples += out.ProbablyTuples

	// Pie chart: tuples involved per CFD.
	for id, st := range rep.PerCFD {
		n := st.SingleTuple + st.MultiTuple
		if n > 0 {
			out.Pie = append(out.Pie, CFDSlice{CFDID: id, Violations: n})
		}
	}
	sort.Slice(out.Pie, func(i, j int) bool {
		if out.Pie[i].Violations != out.Pie[j].Violations {
			return out.Pie[i].Violations > out.Pie[j].Violations
		}
		return out.Pie[i].CFDID < out.Pie[j].CFDID
	})

	// Distribution statistics.
	st := &out.Stats
	st.DirtyTuples = len(rep.Vio)
	first := true
	for _, n := range rep.Vio {
		st.TotalVio += n
		if first || n < st.MinVio {
			st.MinVio = n
		}
		if n > st.MaxVio {
			st.MaxVio = n
		}
		first = false
	}
	if st.DirtyTuples > 0 {
		st.AvgVio = float64(st.TotalVio) / float64(st.DirtyTuples)
	}
	st.Groups = len(rep.Groups)
	firstG := true
	totalG := 0
	for _, g := range rep.Groups {
		n := len(g.Members)
		totalG += n
		if firstG || n < st.MinGroup {
			st.MinGroup = n
		}
		if n > st.MaxGroup {
			st.MaxGroup = n
		}
		firstG = false
	}
	if st.Groups > 0 {
		st.AvgGroup = float64(totalG) / float64(st.Groups)
	}
	return out, nil
}

// Render prints the report as the text analogue of the Fig. 4 screen: the
// per-attribute bar chart, the pie chart, and the statistics block.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data quality report for %s (%d tuples, version %d)\n", r.Table, r.TupleCount, r.Version)
	fmt.Fprintf(&b, "tuples: %d verified / %d probably / %d arguably clean, %d dirty\n",
		r.VerifiedTuples, r.ProbablyTuples, r.ArguablyTuples, r.DirtyTuples)
	b.WriteString("\nattribute-value quality (% verified / probably / arguably clean):\n")
	for _, a := range r.Attrs {
		fmt.Fprintf(&b, "  %-10s %6.2f%% / %6.2f%% / %6.2f%%  %s\n",
			a.Attr, a.PctVerified(), a.PctProbably(), a.PctArguably(),
			bar(a.PctArguably()))
	}
	b.WriteString("\nviolations per CFD:\n")
	for _, s := range r.Pie {
		fmt.Fprintf(&b, "  %-16s %d\n", s.CFDID, s.Violations)
	}
	s := r.Stats
	fmt.Fprintf(&b, "\nvio(t): dirty=%d total=%d min=%d max=%d avg=%.2f\n",
		s.DirtyTuples, s.TotalVio, s.MinVio, s.MaxVio, s.AvgVio)
	fmt.Fprintf(&b, "multi-tuple groups: n=%d min=%d max=%d avg=%.2f\n",
		s.Groups, s.MinGroup, s.MaxGroup, s.AvgGroup)
	return b.String()
}

// bar renders a 0–100 percentage as a 20-char bar.
func bar(p float64) string {
	n := int(p / 5)
	if n < 0 {
		n = 0
	}
	if n > 20 {
		n = 20
	}
	return strings.Repeat("#", n) + strings.Repeat(".", 20-n)
}

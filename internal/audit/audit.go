// Package audit implements Semandaq's data auditor: it enriches the error
// detector's vio(t) counts with the statistical summary the paper's data
// quality report (Fig. 4) presents — the verified/probably/arguably clean
// classification at the tuple and attribute-value level, the violation pie
// chart, and distribution statistics over multi-tuple violations.
//
// The classifications, per the paper:
//
//   - verified clean: the tuple violates no CFD and at least one CFD with a
//     constant RHS applies to it — its values are positively vouched for;
//   - probably clean: the tuple violates no CFD;
//   - arguably clean: probably clean, or involved in a multi-tuple
//     violation where the bulk of the jointly violating tuples agree with
//     it (substantial evidence it is the correct one).
//
// The classes nest: verified ⊆ probably ⊆ arguably.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
)

// TupleClass is the cleanliness classification of one tuple.
type TupleClass int

// Tuple classes, from dirtiest to cleanest.
const (
	Dirty TupleClass = iota
	ArguablyClean
	ProbablyClean
	VerifiedClean
)

// String names the class.
func (c TupleClass) String() string {
	switch c {
	case VerifiedClean:
		return "verified clean"
	case ProbablyClean:
		return "probably clean"
	case ArguablyClean:
		return "arguably clean"
	default:
		return "dirty"
	}
}

// AttrQuality is the per-attribute value-level summary (one bar of the
// Fig. 4 bar chart).
type AttrQuality struct {
	Attr     string
	Total    int // cells
	Verified int
	Probably int
	Arguably int
	Dirty    int
}

// PctVerified returns the verified-clean percentage of the attribute.
func (a AttrQuality) PctVerified() float64 { return pct(a.Verified, a.Total) }

// PctProbably returns the probably-clean percentage.
func (a AttrQuality) PctProbably() float64 { return pct(a.Probably, a.Total) }

// PctArguably returns the arguably-clean percentage.
func (a AttrQuality) PctArguably() float64 { return pct(a.Arguably, a.Total) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// VioStats summarizes the distribution of vio(t) over dirty tuples and the
// multi-tuple group sizes.
type VioStats struct {
	DirtyTuples int
	TotalVio    int
	MinVio      int
	MaxVio      int
	AvgVio      float64
	Groups      int
	MinGroup    int
	MaxGroup    int
	AvgGroup    float64
}

// CFDSlice is one slice of the violation pie chart (Fig. 4).
type CFDSlice struct {
	CFDID      string
	Violations int // tuples involved (single + multi)
}

// Report is the full audit result.
type Report struct {
	Table      string
	TupleCount int
	// Version is the table version the audit reflects: the classification
	// scan runs over the same pinned snapshot the detection report was
	// computed from.
	Version int64
	// Tuples classifies every tuple (class of the cleanest bucket it
	// reaches; the cumulative counts below follow the nesting).
	Tuples map[relstore.TupleID]TupleClass
	// Cumulative tuple counts per class.
	VerifiedTuples int
	ProbablyTuples int
	ArguablyTuples int
	DirtyTuples    int
	// Attrs is the attribute-value-level bar chart data, schema order.
	Attrs []AttrQuality
	// Pie is the violations-per-CFD pie chart data, sorted descending.
	Pie   []CFDSlice
	Stats VioStats
}

// auditIndex is the per-tuple violation evidence the classification scan
// consumes, abstracted over the report representation: the legacy exploded
// Report and the factorised FactorReport both project onto it, and the
// shared core guarantees the two audit paths classify identically.
type auditIndex struct {
	table      string
	tupleCount int
	version    int64
	// vio is vio(t) for every dirty tuple (the legacy Report.Vio).
	vio map[relstore.TupleID]int
	// hasSingle marks tuples with at least one single-tuple violation.
	hasSingle map[relstore.TupleID]bool
	// attrViol maps tuple -> lowercased attribute -> strongest violation
	// kind on that attribute (single-tuple beats multi-tuple).
	attrViol map[relstore.TupleID]map[string]detect.Kind
	// inGroup marks multi-tuple group members; majorityBad marks members
	// that fail the strict-majority test in at least one of their groups.
	inGroup     map[relstore.TupleID]bool
	majorityBad map[relstore.TupleID]bool
	perCFD      map[string]*detect.CFDStats
	groupSizes  []int
}

// noteAttrViol records one violated attribute with kind precedence.
func (ix *auditIndex) noteAttrViol(id relstore.TupleID, attr string, kind detect.Kind) {
	m := ix.attrViol[id]
	if m == nil {
		m = map[string]detect.Kind{}
		ix.attrViol[id] = m
	}
	// Single-tuple beats multi-tuple when both hit the same attribute.
	if prev, ok := m[strings.ToLower(attr)]; !ok || prev == detect.MultiTuple {
		m[strings.ToLower(attr)] = kind
	}
}

func newAuditIndex(table string, tupleCount int, version int64) *auditIndex {
	return &auditIndex{
		table:       table,
		tupleCount:  tupleCount,
		version:     version,
		vio:         map[relstore.TupleID]int{},
		hasSingle:   map[relstore.TupleID]bool{},
		attrViol:    map[relstore.TupleID]map[string]detect.Kind{},
		inGroup:     map[relstore.TupleID]bool{},
		majorityBad: map[relstore.TupleID]bool{},
	}
}

// Audit computes the quality report from a detection report. snap must be
// the pinned snapshot the detection ran on (same version — the
// classification scan re-reads the rows and must agree with the report's
// violations), and cfds the same constraint set.
func Audit(snap *relstore.Snapshot, cfds []*cfd.CFD, rep *detect.Report) (*Report, error) {
	ix := newAuditIndex(rep.Table, rep.TupleCount, rep.Version)
	ix.vio = rep.Vio
	ix.perCFD = rep.PerCFD
	for i := range rep.Violations {
		v := &rep.Violations[i]
		if v.Kind == detect.SingleTuple {
			ix.hasSingle[v.TupleID] = true
		}
		ix.noteAttrViol(v.TupleID, v.Attr, v.Kind)
	}
	for _, g := range rep.Groups {
		ix.groupSizes = append(ix.groupSizes, len(g.Members))
		strict := 2*g.MajoritySize() > len(g.Members)
		for _, id := range g.Members {
			ix.inGroup[id] = true
			if !strict || g.RHSOf[id] != g.MajorityKey {
				ix.majorityBad[id] = true
			}
		}
	}
	return auditCore(snap, cfds, ix)
}

// AuditFactorised computes the same quality report directly from the
// factorised detection result: group evidence is folded per member via the
// lazy RHSKeyAt accessor, so the exploded report — its per-member
// violation records and RHSOf maps — is never materialized.
func AuditFactorised(snap *relstore.Snapshot, cfds []*cfd.CFD, fr *detect.FactorReport) (*Report, error) {
	ix := newAuditIndex(fr.Table, fr.TupleCount, fr.Version)
	ix.perCFD = fr.PerCFD
	// vio(t): +1 per CFD with a single-tuple violation (dedup across
	// patterns), +partners per group — the finish() accounting, computed
	// without the violation records.
	type idCFD struct {
		id relstore.TupleID
		c  string
	}
	seen := map[idCFD]bool{}
	for i := range fr.Violations {
		v := &fr.Violations[i]
		ix.hasSingle[v.TupleID] = true
		ix.noteAttrViol(v.TupleID, v.Attr, v.Kind)
		if k := (idCFD{v.TupleID, v.CFDID}); !seen[k] {
			seen[k] = true
			ix.vio[v.TupleID]++
		}
	}
	for _, g := range fr.FactorGroups {
		ix.groupSizes = append(ix.groupSizes, g.Size())
		strict := 2*g.MajoritySize() > g.Size()
		for i := 0; i < g.Size(); i++ {
			id := g.MemberAt(i)
			rk := g.RHSKeyAt(i)
			ix.vio[id] += g.Size() - g.RHSCounts[rk]
			ix.inGroup[id] = true
			ix.noteAttrViol(id, g.Attr, detect.MultiTuple)
			if !strict || rk != g.MajorityKey {
				ix.majorityBad[id] = true
			}
		}
	}
	return auditCore(snap, cfds, ix)
}

// auditCore is the classification scan shared by Audit and
// AuditFactorised.
func auditCore(snap *relstore.Snapshot, cfds []*cfd.CFD, ix *auditIndex) (*Report, error) {
	sc := snap.Schema()
	// Normalize + merge the same way detection does so pattern bookkeeping
	// lines up with violation records.
	var normalized []*cfd.CFD
	for _, c := range cfds {
		if err := c.Validate(sc); err != nil {
			return nil, err
		}
		normalized = append(normalized, c.Normalize()...)
	}
	merged := cfd.MergeByFD(normalized)

	out := &Report{
		Table:      ix.table,
		TupleCount: ix.tupleCount,
		Version:    ix.version,
		Tuples:     make(map[relstore.TupleID]TupleClass, ix.tupleCount),
	}

	// Precompute, per merged CFD, the positions needed for the "applies"
	// check of verified-cleanliness.
	type applier struct {
		c      *cfd.CFD
		lhsPos []int
		rhsPos []int
		consts []int // constant-RHS pattern indexes
	}
	var appliers []applier
	for _, c := range merged {
		lhsPos, err := sc.Positions(c.LHS)
		if err != nil {
			return nil, err
		}
		rhsPos, err := sc.Positions(c.RHS)
		if err != nil {
			return nil, err
		}
		a := applier{c: c, lhsPos: lhsPos, rhsPos: rhsPos}
		for i := range c.Tableau {
			if !c.Tableau[i].RHS[0].Wildcard {
				a.consts = append(a.consts, i)
			}
		}
		if len(a.consts) > 0 {
			appliers = append(appliers, a)
		}
	}

	// Attribute-level accumulators, schema order.
	attrAcc := make([]AttrQuality, sc.Arity())
	for i, a := range sc.Attrs {
		attrAcc[i].Attr = a.Name
	}

	// majorityHolder reports whether t agrees with the strict majority in
	// every group it belongs to.
	majorityHolder := func(id relstore.TupleID) bool {
		return ix.inGroup[id] && !ix.majorityBad[id]
	}

	snap.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		hasViolation := ix.vio[id] > 0
		hasSingle := ix.hasSingle[id]

		// Does a constant-RHS pattern apply to (and verify) this tuple?
		verifiedApplies := false
		verifiedAttrs := map[string]bool{}
		for _, a := range appliers {
			for _, pi := range a.consts {
				if !a.c.MatchLHS(pi, row, a.lhsPos) {
					continue
				}
				if a.c.MatchRHS(pi, row, a.rhsPos) {
					verifiedApplies = true
					verifiedAttrs[strings.ToLower(a.c.RHS[0])] = true
				}
			}
		}

		var class TupleClass
		switch {
		case !hasViolation && verifiedApplies:
			class = VerifiedClean
		case !hasViolation:
			class = ProbablyClean
		case !hasSingle && majorityHolder(id):
			class = ArguablyClean
		default:
			class = Dirty
		}
		out.Tuples[id] = class
		switch class {
		case VerifiedClean:
			out.VerifiedTuples++
		case ProbablyClean:
			out.ProbablyTuples++
		case ArguablyClean:
			out.ArguablyTuples++
		default:
			out.DirtyTuples++
		}

		// Attribute-value level: a cell is implicated when its attribute
		// carries one of the tuple's violations.
		for i, attr := range sc.Attrs {
			acc := &attrAcc[i]
			acc.Total++
			kind, implicated := ix.attrViol[id][strings.ToLower(attr.Name)]
			switch {
			case !implicated && verifiedAttrs[strings.ToLower(attr.Name)]:
				acc.Verified++
				acc.Probably++
				acc.Arguably++
			case !implicated:
				acc.Probably++
				acc.Arguably++
			case kind == detect.MultiTuple && majorityHolder(id):
				acc.Arguably++
			default:
				acc.Dirty++
			}
		}
		return true
	})
	// Dirty at the attribute level = total - arguably.
	for i := range attrAcc {
		attrAcc[i].Dirty = attrAcc[i].Total - attrAcc[i].Arguably
	}
	out.Attrs = attrAcc

	// Cumulative nesting at the tuple level.
	out.ProbablyTuples += out.VerifiedTuples
	out.ArguablyTuples += out.ProbablyTuples

	// Pie chart: tuples involved per CFD.
	for id, st := range ix.perCFD {
		n := st.SingleTuple + st.MultiTuple
		if n > 0 {
			out.Pie = append(out.Pie, CFDSlice{CFDID: id, Violations: n})
		}
	}
	sort.Slice(out.Pie, func(i, j int) bool {
		if out.Pie[i].Violations != out.Pie[j].Violations {
			return out.Pie[i].Violations > out.Pie[j].Violations
		}
		return out.Pie[i].CFDID < out.Pie[j].CFDID
	})

	// Distribution statistics.
	st := &out.Stats
	st.DirtyTuples = len(ix.vio)
	first := true
	for _, n := range ix.vio {
		st.TotalVio += n
		if first || n < st.MinVio {
			st.MinVio = n
		}
		if n > st.MaxVio {
			st.MaxVio = n
		}
		first = false
	}
	if st.DirtyTuples > 0 {
		st.AvgVio = float64(st.TotalVio) / float64(st.DirtyTuples)
	}
	st.Groups = len(ix.groupSizes)
	firstG := true
	totalG := 0
	for _, n := range ix.groupSizes {
		totalG += n
		if firstG || n < st.MinGroup {
			st.MinGroup = n
		}
		if n > st.MaxGroup {
			st.MaxGroup = n
		}
		firstG = false
	}
	if st.Groups > 0 {
		st.AvgGroup = float64(totalG) / float64(st.Groups)
	}
	return out, nil
}

// Render prints the report as the text analogue of the Fig. 4 screen: the
// per-attribute bar chart, the pie chart, and the statistics block.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data quality report for %s (%d tuples, version %d)\n", r.Table, r.TupleCount, r.Version)
	fmt.Fprintf(&b, "tuples: %d verified / %d probably / %d arguably clean, %d dirty\n",
		r.VerifiedTuples, r.ProbablyTuples, r.ArguablyTuples, r.DirtyTuples)
	b.WriteString("\nattribute-value quality (% verified / probably / arguably clean):\n")
	for _, a := range r.Attrs {
		fmt.Fprintf(&b, "  %-10s %6.2f%% / %6.2f%% / %6.2f%%  %s\n",
			a.Attr, a.PctVerified(), a.PctProbably(), a.PctArguably(),
			bar(a.PctArguably()))
	}
	b.WriteString("\nviolations per CFD:\n")
	for _, s := range r.Pie {
		fmt.Fprintf(&b, "  %-16s %d\n", s.CFDID, s.Violations)
	}
	s := r.Stats
	fmt.Fprintf(&b, "\nvio(t): dirty=%d total=%d min=%d max=%d avg=%.2f\n",
		s.DirtyTuples, s.TotalVio, s.MinVio, s.MaxVio, s.AvgVio)
	fmt.Fprintf(&b, "multi-tuple groups: n=%d min=%d max=%d avg=%.2f\n",
		s.Groups, s.MinGroup, s.MaxGroup, s.AvgGroup)
	return b.String()
}

// bar renders a 0–100 percentage as a 20-char bar.
func bar(p float64) string {
	n := int(p / 5)
	if n < 0 {
		n = 0
	}
	if n > 20 {
		n = 20
	}
	return strings.Repeat("#", n) + strings.Repeat(".", 20-n)
}

package monitor

import (
	"context"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func setup(t *testing.T) (*relstore.Table, []*cfd.CFD) {
	t.Helper()
	tab := relstore.NewTable(schema.New("customer", "CNT", "ZIP", "STR", "CC"))
	ins := func(cnt, zip, str string, cc int64) {
		tab.MustInsert(relstore.Tuple{
			types.NewString(cnt), types.NewString(zip),
			types.NewString(str), types.NewInt(cc)})
	}
	ins("UK", "EH2", "Mayfield", 44)
	ins("UK", "EH2", "Mayfield", 44)
	ins("US", "07974", "Mtn Ave", 1)
	cfds, err := cfd.ParseSet(`
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi3@ customer: [CC=44] -> [CNT=UK]
`)
	if err != nil {
		t.Fatal(err)
	}
	return tab, cfds
}

func row(cnt, zip, str string, cc int64) relstore.Tuple {
	return relstore.Tuple{
		types.NewString(cnt), types.NewString(zip),
		types.NewString(str), types.NewInt(cc)}
}

func TestDetectionModeReportsViolations(t *testing.T) {
	tab, cfds := setup(t)
	m, err := New(tab, cfds, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cleansed() {
		t.Error("should start uncleansed")
	}
	res, err := m.Apply([]Update{
		{Op: OpInsert, Row: row("UK", "EH2", "Wrongstreet", 44)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inserted) != 1 {
		t.Fatalf("inserted = %v", res.Inserted)
	}
	// Detection only: the violation is reported, not repaired.
	if len(res.Repairs) != 0 {
		t.Errorf("repairs in detection mode: %+v", res.Repairs)
	}
	if res.Dirty != 3 { // new tuple + the two Mayfield tuples
		t.Errorf("dirty = %d", res.Dirty)
	}
	if res.Changed[res.Inserted[0]] == 0 {
		t.Errorf("changed = %v", res.Changed)
	}
}

func TestRepairModeFixesIncoming(t *testing.T) {
	tab, cfds := setup(t)
	m, err := New(tab, cfds, true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Apply([]Update{
		{Op: OpInsert, Row: row("UK", "EH2", "Wrongstreet", 44)},
		{Op: OpInsert, Row: row("US", "X1", "Elm", 44)}, // CC=44 but US
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dirty != 0 {
		t.Errorf("dirty after repair mode batch = %d", res.Dirty)
	}
	if len(res.Repairs) < 2 {
		t.Errorf("repairs = %+v", res.Repairs)
	}
	// The first insert was aligned with the existing street.
	sc := tab.Schema()
	got, _ := tab.Get(res.Inserted[0])
	if got[sc.MustPos("STR")].Str() != "Mayfield" {
		t.Errorf("STR = %v", got[sc.MustPos("STR")])
	}
	got, _ = tab.Get(res.Inserted[1])
	if got[sc.MustPos("CNT")].Str() != "UK" {
		t.Errorf("CNT = %v", got[sc.MustPos("CNT")])
	}
	// Changed map reflects post-repair state (all zero).
	for id, v := range res.Changed {
		if v != 0 {
			t.Errorf("changed[%d] = %d after repair", id, v)
		}
	}
}

func TestMarkCleansedSwitchesMode(t *testing.T) {
	tab, cfds := setup(t)
	m, err := New(tab, cfds, false)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty insert in detection mode: stays dirty.
	res, err := m.Apply([]Update{{Op: OpInsert, Row: row("UK", "EH2", "Wrong", 44)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dirty == 0 {
		t.Fatal("expected dirt")
	}
	// Clean the table (the cleanser would do this), then mark cleansed.
	rres, err := repair.NewRepairer().Repair(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := repair.Apply(tab, rres.Modifications); err != nil {
		t.Fatal(err)
	}
	// The monitor's tracker is stale now; rebuild (realistic flow: new
	// monitor after cleansing).
	m, err = New(tab, cfds, false)
	if err != nil {
		t.Fatal(err)
	}
	m.MarkCleansed()
	if !m.Cleansed() {
		t.Error("MarkCleansed")
	}
	res, err = m.Apply([]Update{{Op: OpInsert, Row: row("UK", "EH2", "Wrng", 44)}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dirty != 0 {
		t.Errorf("dirty = %d in cleansed mode", res.Dirty)
	}
}

func TestDeleteAndSetUpdates(t *testing.T) {
	tab, cfds := setup(t)
	m, err := New(tab, cfds, false)
	if err != nil {
		t.Fatal(err)
	}
	// Create a conflict by changing tuple 1's street.
	res, err := m.Apply([]Update{
		{Op: OpSet, ID: 1, Attr: "STR", Value: types.NewString("Other")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dirty != 2 {
		t.Errorf("dirty = %d", res.Dirty)
	}
	// Deleting the changed tuple resolves it.
	res, err = m.Apply([]Update{{Op: OpDelete, ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dirty != 0 {
		t.Errorf("dirty after delete = %d", res.Dirty)
	}
	// Tracker state still matches batch detection.
	batch, err := detect.NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if err := detect.Equivalent(batch, m.Report()); err != nil {
		t.Fatal(err)
	}
}

func TestApplyErrors(t *testing.T) {
	tab, cfds := setup(t)
	m, err := New(tab, cfds, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply([]Update{{Op: OpDelete, ID: 999}}); err == nil {
		t.Error("bad delete should fail")
	}
	if _, err := m.Apply([]Update{{Op: OpSet, ID: 0, Attr: "NOPE"}}); err == nil {
		t.Error("bad attr should fail")
	}
	if _, err := m.Apply([]Update{{Op: Op(99)}}); err == nil {
		t.Error("bad op should fail")
	}
	if _, err := m.Apply([]Update{{Op: OpInsert, Row: relstore.Tuple{}}}); err == nil {
		t.Error("bad arity should fail")
	}
}

func TestMonitorAccessors(t *testing.T) {
	tab, cfds := setup(t)
	m, err := New(tab, cfds, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.DirtyCount() != 0 {
		t.Errorf("dirty = %d", m.DirtyCount())
	}
	if m.Tracker() == nil || m.Report() == nil {
		t.Error("accessors returned nil")
	}
}

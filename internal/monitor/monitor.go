// Package monitor implements Semandaq's data monitor: it watches updates to
// a table and keeps its quality from degrading. Per the paper (§2), the
// monitor responds to updates by (1) incremental detection when the
// database has not been cleansed yet, or (2) incremental repair when it
// has — new errors are fixed as they arrive, aligning fresh tuples with the
// trusted cleaned data.
package monitor

import (
	"fmt"
	"sync"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/repair"
	"semandaq/internal/types"
)

// Op is the kind of one update.
type Op int

// The update kinds.
const (
	OpInsert Op = iota
	OpDelete
	OpSet
)

// Update is one element of an update batch.
type Update struct {
	Op Op
	// Row is the tuple to insert (OpInsert).
	Row relstore.Tuple
	// ID targets an existing tuple (OpDelete, OpSet).
	ID relstore.TupleID
	// Attr / Value are the cell update (OpSet).
	Attr  string
	Value types.Value
}

// BatchResult reports what one update batch did.
type BatchResult struct {
	// Inserted lists IDs assigned to OpInsert updates, in order.
	Inserted []relstore.TupleID
	// Changed maps tuples whose vio(t) changed to the new value
	// (post-repair when the monitor is in cleansed mode).
	Changed map[relstore.TupleID]int
	// Repairs lists incremental repairs applied (cleansed mode only).
	Repairs []repair.Modification
	// Dirty is the table's dirty-tuple count after the batch.
	Dirty int
	// Version is the table version after the batch (including any
	// incremental repairs it triggered).
	Version int64
}

// Monitor watches one table under one CFD set. A Monitor is safe for
// concurrent use: Apply serializes update batches on an internal lock
// (batches from concurrent clients never interleave), while the read
// surface (Report, DirtyCount, Tracker reads) proceeds concurrently
// through the tracker's read lock.
type Monitor struct {
	mu       sync.Mutex // serializes Apply batches and mode flips
	tab      *relstore.Table
	cfds     []*cfd.CFD
	tracker  *detect.Tracker
	cleansed bool
	inc      *repair.IncRepairer
}

// New builds a monitor. cleansed declares whether the table has already
// been cleaned: if true, the monitor repairs incoming errors incrementally;
// if false, it only detects them.
func New(tab *relstore.Table, cfds []*cfd.CFD, cleansed bool) (*Monitor, error) {
	tr, err := detect.NewTracker(tab, cfds)
	if err != nil {
		return nil, err
	}
	return &Monitor{
		tab:      tab,
		cfds:     cfds,
		tracker:  tr,
		cleansed: cleansed,
		inc:      repair.NewIncRepairer(),
	}, nil
}

// Cleansed reports the monitor's mode.
func (m *Monitor) Cleansed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cleansed
}

// MarkCleansed switches the monitor into incremental-repair mode (call
// after running the data cleanser on the table).
func (m *Monitor) MarkCleansed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cleansed = true
}

// Tracker exposes the underlying violation index (read-only use).
func (m *Monitor) Tracker() *detect.Tracker { return m.tracker }

// CFDs returns the constraint set the monitor tracks (fixed at New). The
// serving layer compares it against a detection request's constraints to
// decide whether the tracker's incrementally maintained report can answer
// the request.
func (m *Monitor) CFDs() []*cfd.CFD {
	return append([]*cfd.CFD(nil), m.cfds...)
}

// DirtyCount returns the number of tuples with violations.
func (m *Monitor) DirtyCount() int { return m.tracker.DirtyCount() }

// Report returns the current full detection report.
func (m *Monitor) Report() *detect.Report { return m.tracker.Report() }

// Apply runs one update batch through the monitor. All updates are applied
// through the violation tracker (incremental detection); in cleansed mode
// the monitor then incrementally repairs the tuples the batch touched.
// Concurrent Apply calls serialize: one batch fully lands (including its
// repairs) before the next begins.
func (m *Monitor) Apply(batch []Update) (*BatchResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	res := &BatchResult{Changed: map[relstore.TupleID]int{}}
	var touched []relstore.TupleID
	for i, u := range batch {
		switch u.Op {
		case OpInsert:
			id, d, err := m.tracker.Insert(u.Row)
			if err != nil {
				return nil, fmt.Errorf("monitor: update %d: %w", i, err)
			}
			res.Inserted = append(res.Inserted, id)
			touched = append(touched, id)
			mergeDelta(res.Changed, d)
		case OpDelete:
			d, err := m.tracker.Delete(u.ID)
			if err != nil {
				return nil, fmt.Errorf("monitor: update %d: %w", i, err)
			}
			mergeDelta(res.Changed, d)
		case OpSet:
			d, err := m.tracker.SetCell(u.ID, u.Attr, u.Value)
			if err != nil {
				return nil, fmt.Errorf("monitor: update %d: %w", i, err)
			}
			touched = append(touched, u.ID)
			mergeDelta(res.Changed, d)
		default:
			return nil, fmt.Errorf("monitor: update %d: unknown op %d", i, u.Op)
		}
	}
	if m.cleansed && len(touched) > 0 {
		mods, err := m.inc.RepairDelta(m.tracker, m.tab, m.cfds, touched)
		if err != nil {
			return nil, err
		}
		res.Repairs = mods
		// Refresh the changed map with post-repair values.
		for id := range res.Changed {
			res.Changed[id] = m.tracker.Vio(id)
		}
		for _, mod := range mods {
			res.Changed[mod.TupleID] = m.tracker.Vio(mod.TupleID)
		}
	}
	res.Dirty = m.tracker.DirtyCount()
	res.Version = m.tab.Version()
	return res, nil
}

// Version returns the monitored table's current version.
func (m *Monitor) Version() int64 { return m.tab.Version() }

func mergeDelta(into map[relstore.TupleID]int, d *detect.Delta) {
	if d == nil {
		return
	}
	for id, v := range d.Changed {
		into[id] = v
	}
}

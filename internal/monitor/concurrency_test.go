package monitor

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestConcurrentApplyBatches runs update batches from several goroutines —
// the unsynchronized-map-write crash of the old Tracker — interleaved with
// Report readers, then cross-checks the final tracked state against batch
// detection. Run under -race in CI.
func TestConcurrentApplyBatches(t *testing.T) {
	tab := relstore.NewTable(schema.New("m", "K", "V"))
	cfds, err := cfd.ParseSet(`m: [K=_] -> [V=_]`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewString(fmt.Sprintf("k%d", i%4)),
			types.NewString(fmt.Sprintf("v%d", i%3)),
		})
	}
	m, err := New(tab, cfds, false)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []relstore.TupleID
			for i := 0; i < 40; i++ {
				batch := []Update{{Op: OpInsert, Row: relstore.Tuple{
					types.NewString(fmt.Sprintf("k%d", rng.Intn(4))),
					types.NewString(fmt.Sprintf("v%d", rng.Intn(3))),
				}}}
				if len(mine) > 0 {
					batch = append(batch, Update{
						Op: OpSet, ID: mine[rng.Intn(len(mine))],
						Attr: "V", Value: types.NewString(fmt.Sprintf("v%d", rng.Intn(3))),
					})
				}
				if len(mine) > 2 {
					batch = append(batch, Update{Op: OpDelete, ID: mine[0]})
					mine = mine[1:]
				}
				res, err := m.Apply(batch)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Version <= 0 {
					t.Errorf("batch result not version-stamped: %d", res.Version)
					return
				}
				mine = append(mine, res.Inserted...)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				_ = m.DirtyCount()
				_ = m.Report()
			}
		}()
	}
	wg.Wait()

	batch, err := detect.NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if err := detect.Equivalent(batch, m.Report()); err != nil {
		t.Fatalf("monitor diverged from batch detection after concurrent updates: %v", err)
	}
}

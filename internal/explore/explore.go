// Package explore implements Semandaq's data explorer: the interactive
// drill-down of the paper's Fig. 2 (FD → pattern tuples → matching LHS
// values → RHS values → tuples, with violation counts at every step), the
// reverse exploration (tuple → relevant CFDs and patterns), and the Fig. 3
// tuple-level data quality map.
package explore

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// Explorer answers drill-down queries over one pinned table snapshot, one
// CFD set and one detection report — every level of the drill-down reads
// the exact version the report was detected on, so counts never drift
// while the live table keeps mutating. Build a new Explorer to see fresher
// data.
type Explorer struct {
	tab    *relstore.Snapshot
	merged []*cfd.CFD
	rep    *detect.Report

	lhsPos map[string][]int // by CFD ID
	rhsPos map[string]int
	// violatingIDs is the set of tuples with a violation per CFD.
	violatingIDs map[string]map[relstore.TupleID]bool
	// groupByLHSKey indexes multi-tuple groups by CFD and LHS key.
	groupByLHSKey map[string]map[string]*detect.Group
}

// New builds an explorer. snap must be the pinned snapshot the report was
// detected on; cfds must be the set the report was detected with (they are
// normalized and merged identically).
func New(snap *relstore.Snapshot, cfds []*cfd.CFD, rep *detect.Report) (*Explorer, error) {
	sc := snap.Schema()
	var normalized []*cfd.CFD
	for _, c := range cfds {
		if err := c.Validate(sc); err != nil {
			return nil, err
		}
		normalized = append(normalized, c.Normalize()...)
	}
	merged := cfd.MergeByFD(normalized)
	e := &Explorer{
		tab:           snap,
		merged:        merged,
		rep:           rep,
		lhsPos:        map[string][]int{},
		rhsPos:        map[string]int{},
		violatingIDs:  map[string]map[relstore.TupleID]bool{},
		groupByLHSKey: map[string]map[string]*detect.Group{},
	}
	for _, c := range merged {
		lp, err := sc.Positions(c.LHS)
		if err != nil {
			return nil, err
		}
		rp, err := sc.Positions(c.RHS)
		if err != nil {
			return nil, err
		}
		e.lhsPos[c.ID] = lp
		e.rhsPos[c.ID] = rp[0]
		e.violatingIDs[c.ID] = map[relstore.TupleID]bool{}
	}
	for _, v := range rep.Violations {
		if m := e.violatingIDs[v.CFDID]; m != nil {
			m[v.TupleID] = true
		}
	}
	for _, g := range rep.Groups {
		m := e.groupByLHSKey[g.CFDID]
		if m == nil {
			m = map[string]*detect.Group{}
			e.groupByLHSKey[g.CFDID] = m
		}
		m[groupKey(g.LHSValues)] = g
	}
	return e, nil
}

// groupKey mirrors relstore's Tuple.KeyOn encoding (the shared
// WriteGroupKey form) so the drill-down can match detector groups against
// scanned rows.
func groupKey(vals []types.Value) string {
	var b strings.Builder
	for _, v := range vals {
		v.WriteGroupKey(&b)
	}
	return b.String()
}

// CFDInfo is the first drill-down level: one embedded FD with its tableau
// size and total violation count (the leftmost table in Fig. 2).
type CFDInfo struct {
	ID         string
	FD         string // "customer: [CNT, ZIP] -> [STR]"
	Patterns   int
	Violations int // tuples violating this CFD
}

// CFDs lists the constraints, in registration order.
func (e *Explorer) CFDs() []CFDInfo {
	out := make([]CFDInfo, 0, len(e.merged))
	for _, c := range e.merged {
		out = append(out, CFDInfo{
			ID:         c.ID,
			FD:         fmt.Sprintf("%s: [%s] -> [%s]", c.Table, strings.Join(c.LHS, ", "), strings.Join(c.RHS, ", ")),
			Patterns:   len(c.Tableau),
			Violations: len(e.violatingIDs[c.ID]),
		})
	}
	return out
}

func (e *Explorer) find(cfdID string) (*cfd.CFD, error) {
	for _, c := range e.merged {
		if c.ID == cfdID {
			return c, nil
		}
	}
	return nil, fmt.Errorf("explore: no CFD %q", cfdID)
}

// PatternInfo is the second level: one pattern tuple with the number of
// matching tuples and the number of violations among them.
type PatternInfo struct {
	Index      int
	Pattern    string // "(UK, _ || _)"
	Constant   bool   // constant RHS
	Matches    int
	Violations int
}

// Patterns lists the tableau of one CFD with per-pattern statistics.
func (e *Explorer) Patterns(cfdID string) ([]PatternInfo, error) {
	c, err := e.find(cfdID)
	if err != nil {
		return nil, err
	}
	lhsPos := e.lhsPos[cfdID]
	out := make([]PatternInfo, len(c.Tableau))
	for i := range c.Tableau {
		out[i] = PatternInfo{
			Index:    i,
			Pattern:  c.Tableau[i].String(),
			Constant: c.IsConstantPattern(i),
		}
	}
	viol := e.violatingIDs[cfdID]
	e.tab.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		for i := range c.Tableau {
			if !c.MatchLHS(i, row, lhsPos) {
				continue
			}
			out[i].Matches++
			if viol[id] {
				out[i].Violations++
			}
		}
		return true
	})
	return out, nil
}

// LHSGroup is the third level: one distinct LHS value vector among the
// tuples matching a pattern, with tuple and violation counts.
type LHSGroup struct {
	Values     []types.Value
	Tuples     int
	RHSValues  int // distinct RHS values within the group
	Violations int
}

// LHSGroups lists the distinct matching LHS values for one pattern.
func (e *Explorer) LHSGroups(cfdID string, pattern int) ([]LHSGroup, error) {
	c, err := e.find(cfdID)
	if err != nil {
		return nil, err
	}
	if pattern < 0 || pattern >= len(c.Tableau) {
		return nil, fmt.Errorf("explore: CFD %s has no pattern %d", cfdID, pattern)
	}
	lhsPos := e.lhsPos[cfdID]
	rhsPos := e.rhsPos[cfdID]
	viol := e.violatingIDs[cfdID]
	type acc struct {
		vals  []types.Value
		n     int
		rhs   map[string]bool
		nViol int
	}
	groups := map[string]*acc{}
	var order []string
	e.tab.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if !c.MatchLHS(pattern, row, lhsPos) {
			return true
		}
		key := row.KeyOn(lhsPos)
		g, ok := groups[key]
		if !ok {
			vals := make([]types.Value, len(lhsPos))
			for k, p := range lhsPos {
				vals[k] = row[p]
			}
			g = &acc{vals: vals, rhs: map[string]bool{}}
			groups[key] = g
			order = append(order, key)
		}
		g.n++
		g.rhs[row[rhsPos].Key()] = true
		if viol[id] {
			g.nViol++
		}
		return true
	})
	out := make([]LHSGroup, 0, len(order))
	for _, key := range order {
		g := groups[key]
		out = append(out, LHSGroup{
			Values:     g.vals,
			Tuples:     g.n,
			RHSValues:  len(g.rhs),
			Violations: g.nViol,
		})
	}
	// Violating groups first, then by size.
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].Violations > 0) != (out[j].Violations > 0) {
			return out[i].Violations > 0
		}
		return out[i].Tuples > out[j].Tuples
	})
	return out, nil
}

// RHSValue is the fourth level: one distinct RHS value among a LHS group's
// tuples (Fig. 2's fourth table — three streets for one UK zip).
type RHSValue struct {
	Value      types.Value
	Tuples     int
	Violations int
	Majority   bool // the bulk value of the group, when in conflict
}

// RHSValues lists the distinct RHS values within one LHS group.
func (e *Explorer) RHSValues(cfdID string, pattern int, lhsVals []types.Value) ([]RHSValue, error) {
	c, err := e.find(cfdID)
	if err != nil {
		return nil, err
	}
	if pattern < 0 || pattern >= len(c.Tableau) {
		return nil, fmt.Errorf("explore: CFD %s has no pattern %d", cfdID, pattern)
	}
	lhsPos := e.lhsPos[cfdID]
	rhsPos := e.rhsPos[cfdID]
	viol := e.violatingIDs[cfdID]
	want := groupKey(lhsVals)
	type acc struct {
		val   types.Value
		n     int
		nViol int
	}
	vals := map[string]*acc{}
	var order []string
	e.tab.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if !c.MatchLHS(pattern, row, lhsPos) || row.KeyOn(lhsPos) != want {
			return true
		}
		k := row[rhsPos].Key()
		a, ok := vals[k]
		if !ok {
			a = &acc{val: row[rhsPos]}
			vals[k] = a
			order = append(order, k)
		}
		a.n++
		if viol[id] {
			a.nViol++
		}
		return true
	})
	var majKey string
	if m := e.groupByLHSKey[cfdID]; m != nil {
		if g, ok := m[want]; ok {
			majKey = g.MajorityKey
		}
	}
	out := make([]RHSValue, 0, len(order))
	for _, k := range order {
		a := vals[k]
		out = append(out, RHSValue{
			Value:      a.val,
			Tuples:     a.n,
			Violations: a.nViol,
			Majority:   majKey != "" && k == majKey,
		})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Tuples > out[j].Tuples })
	return out, nil
}

// TupleRow pairs a tuple with its vio(t) for the final drill-down level.
type TupleRow struct {
	ID  relstore.TupleID
	Row relstore.Tuple
	Vio int
}

// Tuples lists the tuples of one LHS group holding one RHS value.
func (e *Explorer) Tuples(cfdID string, pattern int, lhsVals []types.Value, rhsVal types.Value) ([]TupleRow, error) {
	c, err := e.find(cfdID)
	if err != nil {
		return nil, err
	}
	if pattern < 0 || pattern >= len(c.Tableau) {
		return nil, fmt.Errorf("explore: CFD %s has no pattern %d", cfdID, pattern)
	}
	lhsPos := e.lhsPos[cfdID]
	rhsPos := e.rhsPos[cfdID]
	want := groupKey(lhsVals)
	var out []TupleRow
	e.tab.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if !c.MatchLHS(pattern, row, lhsPos) || row.KeyOn(lhsPos) != want {
			return true
		}
		if !row[rhsPos].Equal(rhsVal) {
			return true
		}
		out = append(out, TupleRow{ID: id, Row: row.Clone(), Vio: e.rep.Vio[id]})
		return true
	})
	return out, nil
}

// Relevance is the reverse exploration: one (CFD, pattern) applying to a
// tuple, with whether the tuple violates it — "the reasons why the tuple is
// regarded as a violation".
type Relevance struct {
	CFDID    string
	Pattern  int
	Text     string // pattern rendering
	Violated bool
	Kind     detect.Kind // meaningful when Violated
}

// Version returns the table version the explorer's drill-down reflects.
func (e *Explorer) Version() int64 { return e.tab.Version() }

// ForTuple lists every CFD pattern whose LHS the tuple matches.
func (e *Explorer) ForTuple(id relstore.TupleID) ([]Relevance, error) {
	row, ok := e.tab.Get(id)
	if !ok {
		return nil, fmt.Errorf("explore: no tuple %d", id)
	}
	// Index this tuple's violations by CFD and kind.
	kinds := map[string]detect.Kind{}
	violated := map[string]bool{}
	for _, v := range e.rep.Violations {
		if v.TupleID != id {
			continue
		}
		violated[v.CFDID] = true
		if prev, ok := kinds[v.CFDID]; !ok || prev == detect.MultiTuple {
			kinds[v.CFDID] = v.Kind
		}
	}
	var out []Relevance
	for _, c := range e.merged {
		lhsPos := e.lhsPos[c.ID]
		for i := range c.Tableau {
			if !c.MatchLHS(i, row, lhsPos) {
				continue
			}
			out = append(out, Relevance{
				CFDID:    c.ID,
				Pattern:  i,
				Text:     c.Tableau[i].String(),
				Violated: violated[c.ID],
				Kind:     kinds[c.ID],
			})
		}
	}
	return out, nil
}

// MapEntry is one row of the Fig. 3 tuple-level data quality map.
type MapEntry struct {
	ID     relstore.TupleID
	Vio    int
	Bucket int // 0 (clean) .. 4 (dirtiest), the "color" of the row
}

// QualityMap returns every tuple's vio(t) bucketed into 5 intensity levels
// scaled by the maximum observed vio, plus a histogram of the buckets.
func (e *Explorer) QualityMap() ([]MapEntry, [5]int) {
	max := e.rep.MaxVio()
	var hist [5]int
	var out []MapEntry
	e.tab.Scan(func(id relstore.TupleID, _ relstore.Tuple) bool {
		v := e.rep.Vio[id]
		b := bucket(v, max)
		hist[b]++
		out = append(out, MapEntry{ID: id, Vio: v, Bucket: b})
		return true
	})
	return out, hist
}

// bucket maps a vio count to a 0..4 intensity on a log scale: vio(t) is
// dominated by multi-tuple partner counts, which span orders of magnitude
// when group sizes differ (one bad tuple in a 1000-tuple group gives every
// member vio >= 1), so a linear scale would wash the map out.
func bucket(v, max int) int {
	if v == 0 || max == 0 {
		return 0
	}
	if v > max {
		v = max
	}
	den := math.Log2(float64(max) + 1)
	if den <= 0 {
		return 1
	}
	b := 1 + int(3*math.Log2(float64(v)+1)/den)
	if b > 4 {
		b = 4
	}
	return b
}

package explore

import (
	"context"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/detect"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// fig2Fixture reproduces the paper's Fig. 2 scenario: the CFD
// [CNT=UK, ZIP=_] -> [STR=_] explored over a customer table where the UK
// zip EH2 4SD has three distinct street values.
func fig2Fixture(t *testing.T) (*Explorer, *relstore.Table, []*cfd.CFD) {
	t.Helper()
	tab := relstore.NewTable(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
	rows := [][]string{
		{"Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Rick", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Nora", "UK", "Edinburgh", "EH2 4SD", "Crichton", "44", "131"},
		{"Olaf", "UK", "Edinburgh", "EH2 4SD", "Lauriston", "44", "131"},
		{"Ann", "UK", "London", "SW1A", "Downing", "44", "20"},
		{"Joe", "US", "New York", "01202", "Mtn Ave", "1", "908"},
	}
	for _, r := range rows {
		row := make(relstore.Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	cfds, err := cfd.ParseSet(`
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi4@ customer: [CC=44] -> [CNT=UK]
`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := detect.NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tab.Snapshot(), cfds, rep)
	if err != nil {
		t.Fatal(err)
	}
	return e, tab, cfds
}

func TestCFDsLevel(t *testing.T) {
	e, _, _ := fig2Fixture(t)
	infos := e.CFDs()
	if len(infos) != 2 {
		t.Fatalf("cfds = %+v", infos)
	}
	if infos[0].ID != "phi2" || infos[0].Violations != 4 {
		t.Errorf("phi2 info = %+v", infos[0])
	}
	if infos[0].FD != "customer: [CNT, ZIP] -> [STR]" {
		t.Errorf("FD = %q", infos[0].FD)
	}
	if infos[1].ID != "phi4" || infos[1].Violations != 0 {
		t.Errorf("phi4 info = %+v", infos[1])
	}
}

func TestPatternsLevel(t *testing.T) {
	e, _, _ := fig2Fixture(t)
	pats, err := e.Patterns("phi2")
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 1 {
		t.Fatalf("patterns = %+v", pats)
	}
	p := pats[0]
	if p.Pattern != "(UK, _ || _)" {
		t.Errorf("pattern = %q", p.Pattern)
	}
	if p.Constant {
		t.Error("phi2 is variable")
	}
	if p.Matches != 5 { // 5 UK tuples
		t.Errorf("matches = %d", p.Matches)
	}
	if p.Violations != 4 { // the EH2 group
		t.Errorf("violations = %d", p.Violations)
	}
	if _, err := e.Patterns("nope"); err == nil {
		t.Error("unknown CFD should fail")
	}
}

func TestLHSGroupsLevel(t *testing.T) {
	e, _, _ := fig2Fixture(t)
	groups, err := e.LHSGroups("phi2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 { // EH2 4SD and SW1A
		t.Fatalf("groups = %+v", groups)
	}
	// Violating group sorts first.
	g := groups[0]
	if g.Values[0].Str() != "UK" || g.Values[1].Str() != "EH2 4SD" {
		t.Errorf("group values = %v", g.Values)
	}
	if g.Tuples != 4 || g.RHSValues != 3 || g.Violations != 4 {
		t.Errorf("group = %+v", g)
	}
	if groups[1].Violations != 0 {
		t.Errorf("clean group = %+v", groups[1])
	}
	if _, err := e.LHSGroups("phi2", 9); err == nil {
		t.Error("bad pattern index should fail")
	}
}

func TestRHSValuesLevel(t *testing.T) {
	e, _, _ := fig2Fixture(t)
	lhs := []types.Value{types.NewString("UK"), types.NewString("EH2 4SD")}
	vals, err := e.RHSValues("phi2", 0, lhs)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 2's fourth table: three distinct streets.
	if len(vals) != 3 {
		t.Fatalf("rhs values = %+v", vals)
	}
	if vals[0].Value.Str() != "Mayfield" || vals[0].Tuples != 2 {
		t.Errorf("top value = %+v", vals[0])
	}
	if !vals[0].Majority {
		t.Error("Mayfield should be the majority value")
	}
	if vals[1].Majority || vals[2].Majority {
		t.Error("minority values flagged as majority")
	}
	if _, err := e.RHSValues("nope", 0, lhs); err == nil {
		t.Error("unknown CFD should fail")
	}
	if _, err := e.RHSValues("phi2", 7, lhs); err == nil {
		t.Error("bad pattern index should fail")
	}
}

func TestTuplesLevel(t *testing.T) {
	e, _, _ := fig2Fixture(t)
	lhs := []types.Value{types.NewString("UK"), types.NewString("EH2 4SD")}
	rows, err := e.Tuples("phi2", 0, lhs, types.NewString("Mayfield"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("tuples = %+v", rows)
	}
	for _, r := range rows {
		if r.Vio == 0 {
			t.Errorf("tuple %d should carry violations", r.ID)
		}
		if r.Row[0].Str() != "Mike" && r.Row[0].Str() != "Rick" {
			t.Errorf("unexpected tuple %v", r.Row)
		}
	}
	if _, err := e.Tuples("phi2", 9, lhs, types.Null); err == nil {
		t.Error("bad pattern index should fail")
	}
	if _, err := e.Tuples("nope", 0, lhs, types.Null); err == nil {
		t.Error("unknown CFD should fail")
	}
}

func TestForTupleReverseExploration(t *testing.T) {
	e, _, _ := fig2Fixture(t)
	// Mike matches phi2 (violated, multi-tuple) and phi4 (satisfied).
	rels, err := e.ForTuple(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("relevances = %+v", rels)
	}
	byID := map[string]Relevance{}
	for _, r := range rels {
		byID[r.CFDID] = r
	}
	if r := byID["phi2"]; !r.Violated || r.Kind != detect.MultiTuple {
		t.Errorf("phi2 relevance = %+v", r)
	}
	if r := byID["phi4"]; r.Violated {
		t.Errorf("phi4 relevance = %+v", r)
	}
	// Joe (US, CC=1) matches nothing but... phi2 LHS needs UK; phi4 needs
	// CC=44: no relevances.
	rels, err = e.ForTuple(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Errorf("Joe relevances = %+v", rels)
	}
	if _, err := e.ForTuple(999); err == nil {
		t.Error("missing tuple should fail")
	}
}

func TestQualityMap(t *testing.T) {
	e, tab, _ := fig2Fixture(t)
	entries, hist := e.QualityMap()
	if len(entries) != tab.Len() {
		t.Fatalf("entries = %d", len(entries))
	}
	// Clean tuples are bucket 0; conflict members have vio=2 or 3.
	byID := map[relstore.TupleID]MapEntry{}
	for _, en := range entries {
		byID[en.ID] = en
	}
	if byID[4].Bucket != 0 || byID[5].Bucket != 0 {
		t.Error("clean tuples should be bucket 0")
	}
	if byID[0].Bucket == 0 || byID[2].Bucket == 0 {
		t.Error("dirty tuples should have non-zero buckets")
	}
	// Nora and Olaf (unique streets) have 3 partners; Mike/Rick 2 — Nora's
	// bucket must be >= Mike's.
	if byID[2].Vio <= byID[0].Vio {
		t.Errorf("vio: nora=%d mike=%d", byID[2].Vio, byID[0].Vio)
	}
	if byID[2].Bucket < byID[0].Bucket {
		t.Error("darker color for dirtier tuple")
	}
	if hist[0] != 2 {
		t.Errorf("hist = %v", hist)
	}
	total := 0
	for _, n := range hist {
		total += n
	}
	if total != tab.Len() {
		t.Errorf("hist covers %d", total)
	}
}

func TestBucketScaling(t *testing.T) {
	if bucket(0, 10) != 0 {
		t.Error("0 is clean")
	}
	if bucket(10, 10) != 4 {
		t.Error("max is darkest")
	}
	if bucket(1, 1) != 4 {
		t.Error("vio equal to the maximum should be darkest")
	}
	if b := bucket(1, 1000); b != 1 {
		t.Errorf("small vio under a large max should be light, got %d", b)
	}
	if b := bucket(5, 10); b < 1 || b > 4 {
		t.Errorf("mid bucket = %d", b)
	}
}

func TestExplorerValidates(t *testing.T) {
	tab := relstore.NewTable(schema.New("r", "A"))
	bad, err := cfd.ParseSet("r: [NOPE=_] -> [A=_]")
	if err != nil {
		t.Fatal(err)
	}
	rep := &detect.Report{Vio: map[relstore.TupleID]int{}}
	if _, err := New(tab.Snapshot(), bad, rep); err == nil {
		t.Error("unknown attribute should fail")
	}
}

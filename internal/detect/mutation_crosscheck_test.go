package detect

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// assertByteIdentical cross-checks the tracker's materialized report
// against a batch NativeDetector pass over the current table with
// reflect.DeepEqual — not just vio(t) equivalence but identical violation
// records, group members, RHS bookkeeping and the version stamp.
func assertByteIdentical(t *testing.T, tab *relstore.Table, cfds []*cfd.CFD, tr *Tracker) {
	t.Helper()
	batch, err := NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Report()
	if got.Version != batch.Version {
		t.Fatalf("versions differ: tracker %d, batch %d", got.Version, batch.Version)
	}
	if !reflect.DeepEqual(batch, got) {
		if err := Equivalent(batch, got); err != nil {
			t.Fatalf("tracker diverged from batch: %v", err)
		}
		t.Fatalf("reports equivalent but not byte-identical:\nbatch: %+v\ntracker: %+v", batch, got)
	}
}

// TestTrackerMutationSequenceByteIdentical drives a randomized
// insert/delete/set stream — tuned so multi-tuple groups repeatedly flip
// dirty and heal clean — and asserts the tracker's report stays
// byte-identical to batch detection throughout and on the final table.
func TestTrackerMutationSequenceByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := relstore.NewTable(schema.New("m", "K", "V", "W"))
	cfds, err := cfd.ParseSet(`
m: [K=_] -> [V=_]
m: [K=k0] -> [W=good]
`)
	if err != nil {
		t.Fatal(err)
	}
	// Tiny domains: 3 keys, 2 values — groups of ~7 tuples constantly gain
	// and lose dissenters, exercising the flip (clean group turns
	// violating: every member becomes dirty) and heal (violating group
	// turns clean: every member loses the dirty source) transitions.
	randRow := func() relstore.Tuple {
		return relstore.Tuple{
			types.NewString(fmt.Sprintf("k%d", rng.Intn(3))),
			types.NewString(fmt.Sprintf("v%d", rng.Intn(2))),
			types.NewString([]string{"good", "bad"}[rng.Intn(2)]),
		}
	}
	for i := 0; i < 20; i++ {
		tab.MustInsert(randRow())
	}
	tr, err := NewTracker(tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	ids := tab.IDs()
	for step := 0; step < 300; step++ {
		switch op := rng.Intn(4); {
		case op == 0:
			id, _, err := tr.Insert(randRow())
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		case op == 1 && len(ids) > 4:
			k := rng.Intn(len(ids))
			if _, err := tr.Delete(ids[k]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids[:k], ids[k+1:]...)
		default:
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			attr := []string{"K", "V", "W"}[rng.Intn(3)]
			var val types.Value
			switch attr {
			case "K":
				val = types.NewString(fmt.Sprintf("k%d", rng.Intn(3)))
			case "V":
				val = types.NewString(fmt.Sprintf("v%d", rng.Intn(2)))
			default:
				val = types.NewString([]string{"good", "bad"}[rng.Intn(2)])
			}
			if _, err := tr.SetCell(id, attr, val); err != nil {
				t.Fatal(err)
			}
		}
		if step%25 == 0 {
			assertByteIdentical(t, tab, cfds, tr)
		}
	}
	assertByteIdentical(t, tab, cfds, tr)
}

// TestTrackerConcurrentUseRace hits the tracker from concurrent writers
// and readers. Writes serialize on the tracker's lock; Vio, VioMap,
// DirtyCount and Report run concurrently. Before the tracker was
// goroutine-safe this was a guaranteed -race failure (and often a runtime
// "concurrent map writes" crash).
func TestTrackerConcurrentUseRace(t *testing.T) {
	tab := relstore.NewTable(schema.New("m", "K", "V"))
	cfds, err := cfd.ParseSet(`m: [K=_] -> [V=_]`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewString(fmt.Sprintf("k%d", i%5)),
			types.NewString(fmt.Sprintf("v%d", i%2)),
		})
	}
	tr, err := NewTracker(tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []relstore.TupleID
			for i := 0; i < 150; i++ {
				switch {
				case len(mine) > 0 && rng.Intn(3) == 0:
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if _, err := tr.Delete(id); err != nil {
						t.Error(err)
						return
					}
				case len(mine) > 0 && rng.Intn(3) == 0:
					if _, err := tr.SetCell(mine[len(mine)-1], "V",
						types.NewString(fmt.Sprintf("v%d", rng.Intn(2)))); err != nil {
						t.Error(err)
						return
					}
				default:
					id, _, err := tr.Insert(relstore.Tuple{
						types.NewString(fmt.Sprintf("k%d", rng.Intn(5))),
						types.NewString(fmt.Sprintf("v%d", rng.Intn(2))),
					})
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				_ = tr.DirtyCount()
				_ = tr.VioMap()
				rep := tr.Report()
				// Internal sanity: every reported dirty tuple has vio > 0.
				for id, n := range rep.Vio {
					if n <= 0 {
						t.Errorf("report lists vio(%d) = %d", id, n)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	assertByteIdentical(t, tab, cfds, tr)
}

// The mutation cross-check tier, rebuilt on the reusable oracle harness
// (internal/oracle): every test drives mutations through the incremental
// stack — tracker, snapshot patcher, discovery session — and asserts the
// maintained state is byte-identical to cold rebuilds at every
// intermediate version. An external test package, because the oracle
// imports detect.
package detect_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
	"semandaq/internal/discovery"
	"semandaq/internal/oracle"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestTrackerMutationSequenceByteIdentical drives a randomized
// insert/delete/set stream — tiny domains, so multi-tuple groups
// repeatedly flip dirty and heal clean — and asserts the whole
// incremental stack stays byte-identical to cold rebuilds throughout.
func TestTrackerMutationSequenceByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h, err := oracle.New(oracle.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog := make([]byte, 600)
	for i := range prog {
		prog[i] = byte(rng.Intn(256))
	}
	// Check every 5 decoded ops: dense enough to pin a divergence to a
	// handful of mutations, cheap enough to run a long program.
	if err := h.Drive(prog, 5, func() error { return h.Check(t.Context()) }); err != nil {
		t.Fatal(err)
	}
}

// TestOracleAcrossNoiseRates replays edit workloads over the paper's
// customer relation at 0%, 2% and 10% noise, cross-checking tracker,
// patcher and discovery session against cold rebuilds at every version.
func TestOracleAcrossNoiseRates(t *testing.T) {
	for _, noise := range []float64{0, 0.02, 0.10} {
		t.Run(fmt.Sprintf("noise=%v", noise), func(t *testing.T) {
			ds := datagen.Generate(datagen.Config{Tuples: 200, Seed: 7, NoiseRate: noise})
			tab := ds.Dirty
			cfds := datagen.StandardCFDs()
			h, err := oracle.Attach(tab, cfds, discovery.Options{MinSupport: 4, MaxLHS: 2, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(noise * 100)))
			sc := tab.Schema()
			cities := []string{"Edinburgh", "London", "New York", "Chicago"}
			countries := []string{"UK", "US"}
			ids := tab.IDs()
			for step := 0; step < 12; step++ {
				id := ids[rng.Intn(len(ids))]
				switch rng.Intn(3) {
				case 0:
					if _, err := h.Tracker.SetCell(id, "CITY", types.NewString(cities[rng.Intn(len(cities))])); err != nil {
						t.Fatal(err)
					}
				case 1:
					if _, err := h.Tracker.SetCell(id, "CNT", types.NewString(countries[rng.Intn(len(countries))])); err != nil {
						t.Fatal(err)
					}
				default:
					row, ok := tab.Get(id)
					if !ok {
						t.Fatalf("lost tuple %d", id)
					}
					if _, err := h.Tracker.Delete(id); err != nil {
						t.Fatal(err)
					}
					nid, _, err := h.Tracker.Insert(append(relstore.Tuple(nil), row...))
					if err != nil {
						t.Fatal(err)
					}
					ids[len(ids)-1] = nid
					_ = sc
				}
				if err := h.Check(t.Context()); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
			}
		})
	}
}

// TestTrackerConcurrentUseRace hits the tracker from concurrent writers
// and readers. Writes serialize on the tracker's lock; Vio, VioMap,
// DirtyCount and Report run concurrently. Before the tracker was
// goroutine-safe this was a guaranteed -race failure (and often a runtime
// "concurrent map writes" crash).
func TestTrackerConcurrentUseRace(t *testing.T) {
	tab := relstore.NewTable(schema.New("m", "K", "V"))
	cfds, err := cfd.ParseSet(`m: [K=_] -> [V=_]`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewString(fmt.Sprintf("k%d", i%5)),
			types.NewString(fmt.Sprintf("v%d", i%2)),
		})
	}
	tr, err := detect.NewTracker(tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var mine []relstore.TupleID
			for i := 0; i < 150; i++ {
				switch {
				case len(mine) > 0 && rng.Intn(3) == 0:
					id := mine[len(mine)-1]
					mine = mine[:len(mine)-1]
					if _, err := tr.Delete(id); err != nil {
						t.Error(err)
						return
					}
				case len(mine) > 0 && rng.Intn(3) == 0:
					if _, err := tr.SetCell(mine[len(mine)-1], "V",
						types.NewString(fmt.Sprintf("v%d", rng.Intn(2)))); err != nil {
						t.Error(err)
						return
					}
				default:
					id, _, err := tr.Insert(relstore.Tuple{
						types.NewString(fmt.Sprintf("k%d", rng.Intn(5))),
						types.NewString(fmt.Sprintf("v%d", rng.Intn(2))),
					})
					if err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, id)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				_ = tr.DirtyCount()
				_ = tr.VioMap()
				rep := tr.Report()
				// Internal sanity: every reported dirty tuple has vio > 0.
				for id, n := range rep.Vio {
					if n <= 0 {
						t.Errorf("report lists vio(%d) = %d", id, n)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	h, err := oracle.Attach(tab, cfds, discovery.Options{MinSupport: 2, MaxLHS: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The post-race harness attaches a fresh tracker; cross-check the one
	// that absorbed the concurrent writes against batch detection too.
	if err := h.CheckStore(); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckDiscovery(t.Context()); err != nil {
		t.Fatal(err)
	}
	batchCheck(t, tab, cfds, tr)
}

// batchCheck cross-checks a live tracker's report against a batch pass.
func batchCheck(t *testing.T, tab *relstore.Table, cfds []*cfd.CFD, tr *detect.Tracker) {
	t.Helper()
	batch, err := detect.NativeDetector{}.Detect(t.Context(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if err := detect.Equivalent(batch, tr.Report()); err != nil {
		t.Fatalf("tracker diverged from batch: %v", err)
	}
}

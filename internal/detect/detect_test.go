package detect

import (
	"context"
	"strings"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// paperStore builds the paper's running example: a customer table with the
// Fig. 3 flavour of errors and the φ1/φ2/φ4 CFDs.
func paperStore(t *testing.T) (*relstore.Store, *relstore.Table, []*cfd.CFD) {
	t.Helper()
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		// Two UK tuples sharing a ZIP but with different STR: multi-tuple
		// violation of phi2.
		{"Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Rick", "UK", "Edinburgh", "EH2 4SD", "Crichton", "44", "131"},
		// CC=44 but CNT=US: single-tuple violation of phi4.
		{"Joe", "US", "New York", "01202", "Mtn Ave", "44", "908"},
		// Clean tuples.
		{"Ann", "UK", "London", "SW1A 1AA", "Downing", "44", "20"},
		{"Ben", "US", "Chicago", "60601", "Wacker", "1", "312"},
	}
	for _, r := range rows {
		row := make(relstore.Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	cfds, err := cfd.ParseSet(`
phi1@ customer: [CNT=_, ZIP=_] -> [CITY=_]
phi2@ customer: [CNT=UK, ZIP=_] -> [STR=_]
phi4@ customer: [CC=44] -> [CNT=UK]
`)
	if err != nil {
		t.Fatal(err)
	}
	return store, tab, cfds
}

func detectors(store *relstore.Store) map[string]Detector {
	return map[string]Detector{
		"native": NativeDetector{},
		"sql":    NewSQLDetector(store),
	}
}

func TestPaperExampleBothDetectors(t *testing.T) {
	store, tab, cfds := paperStore(t)
	for name, det := range detectors(store) {
		t.Run(name, func(t *testing.T) {
			rep, err := det.Detect(context.Background(), tab, cfds)
			if err != nil {
				t.Fatal(err)
			}
			if rep.TupleCount != 5 {
				t.Errorf("tuple count = %d", rep.TupleCount)
			}
			// Mike and Rick: multi-tuple violators of phi2 (1 partner each).
			// Joe: single-tuple violator of phi4.
			if len(rep.Vio) != 3 {
				t.Fatalf("dirty tuples = %v", rep.Vio)
			}
			if rep.Vio[0] != 1 || rep.Vio[1] != 1 {
				t.Errorf("vio(Mike)=%d vio(Rick)=%d, want 1,1", rep.Vio[0], rep.Vio[1])
			}
			if rep.Vio[2] != 1 {
				t.Errorf("vio(Joe)=%d, want 1", rep.Vio[2])
			}
			st2 := rep.PerCFD["phi2"]
			if st2 == nil || st2.MultiTuple != 2 || st2.Groups != 1 || st2.SingleTuple != 0 {
				t.Errorf("phi2 stats = %+v", st2)
			}
			st4 := rep.PerCFD["phi4"]
			if st4 == nil || st4.SingleTuple != 1 || st4.MultiTuple != 0 {
				t.Errorf("phi4 stats = %+v", st4)
			}
			// phi1 is satisfied.
			st1 := rep.PerCFD["phi1"]
			if st1 == nil || st1.SingleTuple+st1.MultiTuple != 0 {
				t.Errorf("phi1 stats = %+v", st1)
			}
			if rep.MaxVio() != 1 {
				t.Errorf("MaxVio = %d", rep.MaxVio())
			}
			dirty := rep.DirtyTuples()
			if len(dirty) != 3 || dirty[0] != 0 || dirty[2] != 2 {
				t.Errorf("dirty = %v", dirty)
			}
		})
	}
}

func TestSingleTupleViolationDetails(t *testing.T) {
	_, tab, cfds := paperStore(t)
	rep, err := NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	var v *Violation
	for i := range rep.Violations {
		if rep.Violations[i].Kind == SingleTuple {
			v = &rep.Violations[i]
			break
		}
	}
	if v == nil {
		t.Fatal("no single-tuple violation found")
	}
	if v.CFDID != "phi4" || v.Attr != "CNT" {
		t.Errorf("violation = %+v", v)
	}
	if v.Expected.String() != "UK" || v.Got.String() != "US" {
		t.Errorf("expected/got = %v/%v", v.Expected, v.Got)
	}
	if v.Kind.String() != "single-tuple" || MultiTuple.String() != "multi-tuple" {
		t.Error("Kind.String")
	}
}

func TestGroupsStructure(t *testing.T) {
	store, tab, cfds := paperStore(t)
	for name, det := range detectors(store) {
		t.Run(name, func(t *testing.T) {
			rep, err := det.Detect(context.Background(), tab, cfds)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Groups) != 1 {
				t.Fatalf("groups = %d", len(rep.Groups))
			}
			g := rep.Groups[0]
			if g.CFDID != "phi2" || g.Attr != "STR" {
				t.Errorf("group = %+v", g)
			}
			if len(g.Members) != 2 || len(g.RHSCounts) != 2 {
				t.Errorf("members = %v counts = %v", g.Members, g.RHSCounts)
			}
			if g.MajoritySize() != 1 {
				t.Errorf("majority = %d", g.MajoritySize())
			}
		})
	}
}

func TestMultiplePatternsMerged(t *testing.T) {
	// Two constant patterns on the same FD: still one CFD after merging,
	// violations found under both.
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "CC", "CNT"))
	ins := func(cc int64, cnt string) {
		tab.MustInsert(relstore.Tuple{types.NewInt(cc), types.NewString(cnt)})
	}
	ins(44, "UK") // clean
	ins(44, "US") // violates 44->UK
	ins(1, "UK")  // violates 1->US
	ins(1, "US")  // clean
	cfds, err := cfd.ParseSet(`
r: [CC=44] -> [CNT=UK]
r: [CC=1] -> [CNT=US]
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfds) != 1 || len(cfds[0].Tableau) != 2 {
		t.Fatalf("expected merged CFD, got %+v", cfds)
	}
	for name, det := range detectors(store) {
		t.Run(name, func(t *testing.T) {
			rep, err := det.Detect(context.Background(), tab, cfds)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Vio) != 2 {
				t.Errorf("vio = %v", rep.Vio)
			}
			if rep.Vio[1] != 1 || rep.Vio[2] != 1 {
				t.Errorf("vio = %v", rep.Vio)
			}
		})
	}
}

func TestVioCountsPartners(t *testing.T) {
	// Group of 4: three agree on RHS, one differs. The odd one has 3
	// partners; each majority member has 1.
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "ZIP", "STR"))
	ins := func(zip, str string) relstore.TupleID {
		return tab.MustInsert(relstore.Tuple{types.NewString(zip), types.NewString(str)})
	}
	a := ins("Z1", "Main")
	b := ins("Z1", "Main")
	c := ins("Z1", "Main")
	d := ins("Z1", "Elm")
	ins("Z2", "Oak") // other group, clean
	fd := cfd.NewFD("f", "r", []string{"ZIP"}, []string{"STR"})
	for name, det := range detectors(store) {
		t.Run(name, func(t *testing.T) {
			rep, err := det.Detect(context.Background(), tab, []*cfd.CFD{fd})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Vio[d] != 3 {
				t.Errorf("vio(odd) = %d, want 3", rep.Vio[d])
			}
			for _, id := range []relstore.TupleID{a, b, c} {
				if rep.Vio[id] != 1 {
					t.Errorf("vio(%d) = %d, want 1", id, rep.Vio[id])
				}
			}
			if len(rep.Groups) != 1 || rep.Groups[0].MajoritySize() != 3 {
				t.Errorf("groups = %+v", rep.Groups)
			}
		})
	}
}

func TestCleanTable(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	tab.MustInsert(relstore.Tuple{types.NewString("x"), types.NewString("1")})
	tab.MustInsert(relstore.Tuple{types.NewString("y"), types.NewString("2")})
	fd := cfd.NewFD("f", "r", []string{"A"}, []string{"B"})
	for name, det := range detectors(store) {
		t.Run(name, func(t *testing.T) {
			rep, err := det.Detect(context.Background(), tab, []*cfd.CFD{fd})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Violations) != 0 || len(rep.Vio) != 0 || rep.MaxVio() != 0 {
				t.Errorf("clean table produced %+v", rep.Violations)
			}
		})
	}
}

func TestNullSemanticsConsistent(t *testing.T) {
	// NULLs: a NULL LHS never matches a constant pattern cell; NULL RHS is
	// not a single-tuple violation; NULL groups as an ordinary value in
	// multi-tuple detection. Both detectors must agree.
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	ins := func(a, b types.Value) { tab.MustInsert(relstore.Tuple{a, b}) }
	ins(types.NewString("k"), types.Null)           // NULL RHS
	ins(types.NewString("k"), types.NewString("v")) // conflicts with NULL above
	ins(types.Null, types.NewString("x"))           // NULL LHS
	ins(types.Null, types.NewString("y"))           // NULL LHS, different RHS
	cfds, err := cfd.ParseSet(`
r: [A=_] -> [B=_]
r: [A=k] -> [B=v]
`)
	if err != nil {
		t.Fatal(err)
	}
	native, err := NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	sqlRep, err := NewSQLDetector(store).Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(native, sqlRep); err != nil {
		t.Fatalf("detectors disagree: %v", err)
	}
	// The k-group {NULL, v} counts NULL as a distinct value: group of 2.
	// The NULL-LHS group {x, y} also violates.
	if len(native.Groups) != 2 {
		t.Errorf("groups = %d", len(native.Groups))
	}
	// No single-tuple violation: B=NULL under [A=k]->[B=v] is not flagged.
	for _, v := range native.Violations {
		if v.Kind == SingleTuple {
			t.Errorf("unexpected single-tuple violation %+v", v)
		}
	}
}

func TestDetectValidatesCFDs(t *testing.T) {
	store, tab, _ := paperStore(t)
	bad, err := cfd.ParseSet("customer: [NOPE=_] -> [CITY=_]")
	if err != nil {
		t.Fatal(err)
	}
	for name, det := range detectors(store) {
		t.Run(name, func(t *testing.T) {
			if _, err := det.Detect(context.Background(), tab, bad); err == nil {
				t.Error("unknown attribute should fail")
			}
		})
	}
}

func TestSQLDetectorRequiresRegisteredTable(t *testing.T) {
	store, _, cfds := paperStore(t)
	other := relstore.NewTable(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
	if _, err := NewSQLDetector(store).Detect(context.Background(), other, cfds); err == nil {
		t.Error("unregistered table should fail")
	}
}

func TestSQLDetectorCleansUpArtifacts(t *testing.T) {
	store, tab, cfds := paperStore(t)
	d := NewSQLDetector(store)
	if _, err := d.Detect(context.Background(), tab, cfds); err != nil {
		t.Fatal(err)
	}
	for _, name := range store.Names() {
		if strings.HasPrefix(name, "_tp_") || strings.HasPrefix(name, "_vg_") {
			t.Errorf("artifact %q left in store", name)
		}
	}
	// KeepArtifacts leaves the tableau tables.
	d.KeepArtifacts = true
	if _, err := d.Detect(context.Background(), tab, cfds); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range store.Names() {
		if strings.HasPrefix(name, "_tp_") {
			found = true
		}
	}
	if !found {
		t.Error("KeepArtifacts should leave tableau tables")
	}
}

func TestSQLTrace(t *testing.T) {
	store, tab, cfds := paperStore(t)
	d := NewSQLDetector(store)
	var queries []string
	d.Trace = func(sql string) { queries = append(queries, sql) }
	if _, err := d.Detect(context.Background(), tab, cfds); err != nil {
		t.Fatal(err)
	}
	// phi1: Qv only (1 or 2 queries depending on hits); phi2: Qv + join
	// back; phi4: Qc. At least 3 queries total.
	if len(queries) < 3 {
		t.Errorf("traced %d queries: %v", len(queries), queries)
	}
	for _, q := range queries {
		if !strings.HasPrefix(q, "SELECT") {
			t.Errorf("unexpected statement %q", q)
		}
	}
}

func TestGenerateSQL(t *testing.T) {
	_, tab, cfds := paperStore(t)
	stmts, err := GenerateSQL(tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	// phi1 (variable), phi2 (variable), phi4 (constant) → 3 statements.
	if len(stmts) != 3 {
		t.Fatalf("statements = %d:\n%s", len(stmts), strings.Join(stmts, "\n"))
	}
	joined := strings.Join(stmts, "\n")
	if !strings.Contains(joined, "GROUP BY") || !strings.Contains(joined, "COUNT(DISTINCT") {
		t.Errorf("Qv shape missing:\n%s", joined)
	}
	if !strings.Contains(joined, "Qc") || !strings.Contains(joined, "Qv") {
		t.Errorf("comments missing:\n%s", joined)
	}
}

func TestEquivalentDetectsDifferences(t *testing.T) {
	a := &Report{TupleCount: 1, Vio: map[relstore.TupleID]int{}, PerCFD: map[string]*CFDStats{}}
	b := &Report{TupleCount: 2, Vio: map[relstore.TupleID]int{}, PerCFD: map[string]*CFDStats{}}
	if err := Equivalent(a, b); err == nil {
		t.Error("tuple count difference not caught")
	}
	b.TupleCount = 1
	b.Vio[1] = 1
	if err := Equivalent(a, b); err == nil {
		t.Error("vio difference not caught")
	}
	delete(b.Vio, 1)
	b.PerCFD["x"] = &CFDStats{SingleTuple: 1}
	if err := Equivalent(a, b); err == nil {
		t.Error("per-CFD difference not caught")
	}
	if err := Equivalent(a, &Report{TupleCount: 1, Vio: map[relstore.TupleID]int{}, PerCFD: map[string]*CFDStats{}}); err != nil {
		t.Errorf("equal reports flagged: %v", err)
	}
}

func TestMultiAttributeRHSNormalized(t *testing.T) {
	// A CFD with a two-attribute RHS splits; violations are reported per
	// normalized CFD.
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "K", "A", "B"))
	ins := func(k, a, b string) {
		tab.MustInsert(relstore.Tuple{types.NewString(k), types.NewString(a), types.NewString(b)})
	}
	ins("k1", "a1", "b1")
	ins("k1", "a2", "b1") // violates K->A only
	c := cfd.NewFD("f", "r", []string{"K"}, []string{"A", "B"})
	for name, det := range detectors(store) {
		t.Run(name, func(t *testing.T) {
			rep, err := det.Detect(context.Background(), tab, []*cfd.CFD{c})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.PerCFD) != 2 {
				t.Fatalf("normalized CFDs = %d", len(rep.PerCFD))
			}
			if st := rep.PerCFD["f.A"]; st == nil || st.MultiTuple != 2 {
				t.Errorf("f.A stats = %+v", st)
			}
			if st := rep.PerCFD["f.B"]; st == nil || st.MultiTuple != 0 {
				t.Errorf("f.B stats = %+v", st)
			}
		})
	}
}

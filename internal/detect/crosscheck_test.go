package detect

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestCrossCheckRandomized generates random tables and random CFD sets and
// verifies that the SQL detection technique and the native detector agree
// on every report — the central correctness property of the SQL generation
// path (and of the engine underneath it).
func TestCrossCheckRandomized(t *testing.T) {
	attrs := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		store := relstore.NewStore()
		tab, err := store.Create(schema.New(fmt.Sprintf("r%d", trial), attrs...))
		if err != nil {
			t.Fatal(err)
		}
		// Small value domains force plenty of grouping and collisions;
		// occasional NULLs and ints exercise the key paths.
		n := 20 + rng.Intn(120)
		for i := 0; i < n; i++ {
			row := make(relstore.Tuple, len(attrs))
			for j := range row {
				switch rng.Intn(10) {
				case 0:
					row[j] = types.Null
				case 1, 2:
					row[j] = types.NewInt(int64(rng.Intn(4)))
				default:
					row[j] = types.NewString(fmt.Sprintf("v%d", rng.Intn(5)))
				}
			}
			tab.MustInsert(row)
		}
		// Random CFDs: 1-3 LHS attrs, 1 RHS attr, patterns mixing
		// wildcards with constants drawn from the same domain.
		var cfds []*cfd.CFD
		numCFDs := 1 + rng.Intn(4)
		for c := 0; c < numCFDs; c++ {
			perm := rng.Perm(len(attrs))
			k := 1 + rng.Intn(3)
			lhs := make([]string, k)
			for i := 0; i < k; i++ {
				lhs[i] = attrs[perm[i]]
			}
			rhs := []string{attrs[perm[k]]}
			cc := &cfd.CFD{ID: fmt.Sprintf("c%d", c), Table: tab.Schema().Name, LHS: lhs, RHS: rhs}
			numPat := 1 + rng.Intn(3)
			for p := 0; p < numPat; p++ {
				pt := cfd.PatternTuple{}
				for range lhs {
					pt.LHS = append(pt.LHS, randPattern(rng))
				}
				pt.RHS = []cfd.PatternValue{randPattern(rng)}
				cc.Tableau = append(cc.Tableau, pt)
			}
			cfds = append(cfds, cc)
		}

		native, err := NativeDetector{}.Detect(context.Background(), tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: native: %v", trial, err)
		}
		sqlRep, err := NewSQLDetector(store).Detect(context.Background(), tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: sql: %v", trial, err)
		}
		if err := Equivalent(native, sqlRep); err != nil {
			t.Fatalf("trial %d: detectors disagree: %v\ncfds:\n%v", trial, err, cfds)
		}
		workers := []int{1, 2, 8}[trial%3]
		parRep, err := ParallelDetector{Workers: workers}.Detect(context.Background(), tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		if err := Equivalent(native, parRep); err != nil {
			t.Fatalf("trial %d: parallel (workers=%d) disagrees: %v\ncfds:\n%v",
				trial, workers, err, cfds)
		}
		colRep, err := ColumnarDetector{Workers: 1}.Detect(context.Background(), tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: columnar: %v", trial, err)
		}
		// The columnar report must be byte-identical to the native one,
		// not merely equivalent: same violations, same order, same groups.
		if !reflect.DeepEqual(native, colRep) {
			t.Fatalf("trial %d: columnar report not identical to native\ncfds:\n%v", trial, cfds)
		}

		// And the tracker, seeded from the same table, agrees too.
		tr, err := NewTracker(tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: tracker: %v", trial, err)
		}
		if err := Equivalent(native, tr.Report()); err != nil {
			t.Fatalf("trial %d: tracker disagrees: %v", trial, err)
		}
	}
}

// TestParallelCrossCheckDatagen runs the three detectors over generated
// customer tables at several noise rates and worker counts: ParallelDetector
// must be Equivalent to both NativeDetector and SQLDetector on realistic
// workloads (the standard CFD set mixes constant and variable patterns).
func TestParallelCrossCheckDatagen(t *testing.T) {
	for _, noise := range []float64{0, 0.02, 0.10} {
		ds := datagen.Generate(datagen.Config{Tuples: 2000, Seed: 42, NoiseRate: noise})
		store := relstore.NewStore()
		store.Put(ds.Dirty)
		cfds := datagen.StandardCFDs()
		native, err := NativeDetector{}.Detect(context.Background(), ds.Dirty, cfds)
		if err != nil {
			t.Fatalf("noise=%.2f: native: %v", noise, err)
		}
		sqlRep, err := NewSQLDetector(store).Detect(context.Background(), ds.Dirty, cfds)
		if err != nil {
			t.Fatalf("noise=%.2f: sql: %v", noise, err)
		}
		if err := Equivalent(native, sqlRep); err != nil {
			t.Fatalf("noise=%.2f: native vs sql: %v", noise, err)
		}
		if noise > 0 && len(native.Vio) == 0 {
			t.Fatalf("noise=%.2f produced no violations; test is vacuous", noise)
		}
		for _, workers := range []int{1, 2, 8} {
			par, err := ParallelDetector{Workers: workers}.Detect(context.Background(), ds.Dirty, cfds)
			if err != nil {
				t.Fatalf("noise=%.2f workers=%d: %v", noise, workers, err)
			}
			if err := Equivalent(native, par); err != nil {
				t.Errorf("noise=%.2f workers=%d: parallel vs native: %v", noise, workers, err)
			}
			if err := Equivalent(sqlRep, par); err != nil {
				t.Errorf("noise=%.2f workers=%d: parallel vs sql: %v", noise, workers, err)
			}
		}
	}
}

// TestColumnarByteIdenticalDatagen is the cross-snapshot acceptance check
// for the columnar read path: at noise 0, 2% and 10%, the sequential
// columnar report and every sharded configuration must be deep-equal to
// the native row-scan report — same violation records in the same order,
// same groups, same members, same value representatives — not merely
// statistics-equivalent.
func TestColumnarByteIdenticalDatagen(t *testing.T) {
	for _, noise := range []float64{0, 0.02, 0.10} {
		ds := datagen.Generate(datagen.Config{Tuples: 2000, Seed: 77, NoiseRate: noise})
		cfds := datagen.StandardCFDs()
		native, err := NativeDetector{}.Detect(context.Background(), ds.Dirty, cfds)
		if err != nil {
			t.Fatalf("noise=%.2f: native: %v", noise, err)
		}
		if noise > 0 && len(native.Vio) == 0 {
			t.Fatalf("noise=%.2f produced no violations; test is vacuous", noise)
		}
		for _, workers := range []int{1, 2, 8} {
			col, err := ColumnarDetector{Workers: workers}.Detect(context.Background(), ds.Dirty, cfds)
			if err != nil {
				t.Fatalf("noise=%.2f workers=%d: columnar: %v", noise, workers, err)
			}
			if !reflect.DeepEqual(native, col) {
				t.Errorf("noise=%.2f workers=%d: columnar report not byte-identical to native", noise, workers)
			}
		}
	}
}

func randPattern(rng *rand.Rand) cfd.PatternValue {
	switch rng.Intn(4) {
	case 0:
		return cfd.Constant(types.NewString(fmt.Sprintf("v%d", rng.Intn(5))))
	case 1:
		return cfd.Constant(types.NewInt(int64(rng.Intn(4))))
	default:
		return cfd.Wild
	}
}

// TestVioDefinitionOnKnownGroups pins the paper's vio(t) arithmetic on a
// hand-computed instance: group sizes 2+3 sharing an LHS value space.
func TestVioDefinitionOnKnownGroups(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "K", "V"))
	ins := func(k, v string) relstore.TupleID {
		return tab.MustInsert(relstore.Tuple{types.NewString(k), types.NewString(v)})
	}
	// Group k1: values a,a,b,c (4 members, counts a:2 b:1 c:1).
	a1 := ins("k1", "a")
	a2 := ins("k1", "a")
	b := ins("k1", "b")
	c := ins("k1", "c")
	// Group k2: clean.
	ins("k2", "z")
	ins("k2", "z")
	fd := cfd.NewFD("f", "r", []string{"K"}, []string{"V"})
	for name, det := range map[string]Detector{
		"native":   NativeDetector{},
		"sql":      NewSQLDetector(store),
		"parallel": ParallelDetector{Workers: 3},
		"columnar": ColumnarDetector{Workers: 1},
	} {
		t.Run(name, func(t *testing.T) {
			rep, err := det.Detect(context.Background(), tab, []*cfd.CFD{fd})
			if err != nil {
				t.Fatal(err)
			}
			// vio = members - count(own value): a:2, b:3, c:3.
			want := map[relstore.TupleID]int{a1: 2, a2: 2, b: 3, c: 3}
			for id, n := range want {
				if rep.Vio[id] != n {
					t.Errorf("vio(%d) = %d, want %d", id, rep.Vio[id], n)
				}
			}
			if len(rep.Vio) != 4 {
				t.Errorf("dirty = %v", rep.Vio)
			}
		})
	}
}

// TestColumnarIdenticalOnFloatEdgeCases pins the float edge cases that
// once diverged between the row and columnar paths: NaN (which compared
// "equal" to every number before cmpFloat64 grew its NaN arm) and the
// -0.0/0.0 pair (bit-distinct, Equal, one Equal-class).
func TestColumnarIdenticalOnFloatEdgeCases(t *testing.T) {
	// NaN table: the constant pattern a=5 -> b=7 must flag the NaN row
	// (NaN != 7), and the FD must see {NaN, 7} disagree in one group.
	// reflect.DeepEqual cannot compare reports containing NaN (NaN != NaN
	// under ==), so this half checks structure with Value.Equal.
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	nanID := tab.MustInsert(relstore.Tuple{types.NewInt(5), types.NewFloat(math.NaN())})
	tab.MustInsert(relstore.Tuple{types.NewInt(5), types.NewInt(7)})
	cfds := []*cfd.CFD{
		cfd.New("c1", "r", []string{"A"}, []string{"B"}, cfd.PatternTuple{
			LHS: []cfd.PatternValue{cfd.Constant(types.NewInt(5))},
			RHS: []cfd.PatternValue{cfd.Constant(types.NewInt(7))},
		}),
		cfd.NewFD("c2", "r", []string{"A"}, []string{"B"}),
	}
	native, err := NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if native.Vio[nanID] != 2 { // one single-tuple + one multi-tuple partner
		t.Fatalf("native vio(NaN row) = %d, want 2", native.Vio[nanID])
	}
	for _, workers := range []int{1, 4} {
		col, err := ColumnarDetector{Workers: workers}.Detect(context.Background(), tab, cfds)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := Equivalent(native, col); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(col.Violations) != len(native.Violations) {
			t.Fatalf("workers=%d: %d violations, native %d",
				workers, len(col.Violations), len(native.Violations))
		}
		for i, nv := range native.Violations {
			cv := col.Violations[i]
			if cv.CFDID != nv.CFDID || cv.Kind != nv.Kind || cv.TupleID != nv.TupleID ||
				cv.Pattern != nv.Pattern || cv.Partners != nv.Partners ||
				!cv.Expected.Equal(nv.Expected) || !cv.Got.Equal(nv.Got) ||
				cv.Got.Kind() != nv.Got.Kind() {
				t.Fatalf("workers=%d: violation %d differs: %+v vs %+v", workers, i, cv, nv)
			}
		}
	}

	// -0.0 table: bit-distinct, Equal values in one LHS group. No NaNs,
	// so full deep-equality applies.
	store2 := relstore.NewStore()
	tab2, _ := store2.Create(schema.New("r", "A", "B"))
	tab2.MustInsert(relstore.Tuple{types.NewFloat(math.Copysign(0, -1)), types.NewInt(1)})
	tab2.MustInsert(relstore.Tuple{types.NewFloat(0), types.NewInt(2)})
	tab2.MustInsert(relstore.Tuple{types.NewInt(0), types.NewInt(2)})
	fd := cfd.NewFD("c2", "r", []string{"A"}, []string{"B"})
	native2, err := NativeDetector{}.Detect(context.Background(), tab2, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	if len(native2.Vio) != 3 {
		t.Fatalf("-0.0 group: native dirty = %v, want all 3 tuples", native2.Vio)
	}
	for _, workers := range []int{1, 4} {
		col, err := ColumnarDetector{Workers: workers}.Detect(context.Background(), tab2, []*cfd.CFD{fd})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(native2, col) {
			t.Errorf("workers=%d: columnar diverges from native on -0.0/0.0/0 grouping", workers)
		}
	}
}

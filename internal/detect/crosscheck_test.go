package detect

import (
	"fmt"
	"math/rand"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestCrossCheckRandomized generates random tables and random CFD sets and
// verifies that the SQL detection technique and the native detector agree
// on every report — the central correctness property of the SQL generation
// path (and of the engine underneath it).
func TestCrossCheckRandomized(t *testing.T) {
	attrs := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		store := relstore.NewStore()
		tab, err := store.Create(schema.New(fmt.Sprintf("r%d", trial), attrs...))
		if err != nil {
			t.Fatal(err)
		}
		// Small value domains force plenty of grouping and collisions;
		// occasional NULLs and ints exercise the key paths.
		n := 20 + rng.Intn(120)
		for i := 0; i < n; i++ {
			row := make(relstore.Tuple, len(attrs))
			for j := range row {
				switch rng.Intn(10) {
				case 0:
					row[j] = types.Null
				case 1, 2:
					row[j] = types.NewInt(int64(rng.Intn(4)))
				default:
					row[j] = types.NewString(fmt.Sprintf("v%d", rng.Intn(5)))
				}
			}
			tab.MustInsert(row)
		}
		// Random CFDs: 1-3 LHS attrs, 1 RHS attr, patterns mixing
		// wildcards with constants drawn from the same domain.
		var cfds []*cfd.CFD
		numCFDs := 1 + rng.Intn(4)
		for c := 0; c < numCFDs; c++ {
			perm := rng.Perm(len(attrs))
			k := 1 + rng.Intn(3)
			lhs := make([]string, k)
			for i := 0; i < k; i++ {
				lhs[i] = attrs[perm[i]]
			}
			rhs := []string{attrs[perm[k]]}
			cc := &cfd.CFD{ID: fmt.Sprintf("c%d", c), Table: tab.Schema().Name, LHS: lhs, RHS: rhs}
			numPat := 1 + rng.Intn(3)
			for p := 0; p < numPat; p++ {
				pt := cfd.PatternTuple{}
				for range lhs {
					pt.LHS = append(pt.LHS, randPattern(rng))
				}
				pt.RHS = []cfd.PatternValue{randPattern(rng)}
				cc.Tableau = append(cc.Tableau, pt)
			}
			cfds = append(cfds, cc)
		}

		native, err := NativeDetector{}.Detect(tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: native: %v", trial, err)
		}
		sqlRep, err := NewSQLDetector(store).Detect(tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: sql: %v", trial, err)
		}
		if err := Equivalent(native, sqlRep); err != nil {
			t.Fatalf("trial %d: detectors disagree: %v\ncfds:\n%v", trial, err, cfds)
		}
		workers := []int{1, 2, 8}[trial%3]
		parRep, err := ParallelDetector{Workers: workers}.Detect(tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: parallel: %v", trial, err)
		}
		if err := Equivalent(native, parRep); err != nil {
			t.Fatalf("trial %d: parallel (workers=%d) disagrees: %v\ncfds:\n%v",
				trial, workers, err, cfds)
		}

		// And the tracker, seeded from the same table, agrees too.
		tr, err := NewTracker(tab, cfds)
		if err != nil {
			t.Fatalf("trial %d: tracker: %v", trial, err)
		}
		if err := Equivalent(native, tr.Report()); err != nil {
			t.Fatalf("trial %d: tracker disagrees: %v", trial, err)
		}
	}
}

// TestParallelCrossCheckDatagen runs the three detectors over generated
// customer tables at several noise rates and worker counts: ParallelDetector
// must be Equivalent to both NativeDetector and SQLDetector on realistic
// workloads (the standard CFD set mixes constant and variable patterns).
func TestParallelCrossCheckDatagen(t *testing.T) {
	for _, noise := range []float64{0, 0.02, 0.10} {
		ds := datagen.Generate(datagen.Config{Tuples: 2000, Seed: 42, NoiseRate: noise})
		store := relstore.NewStore()
		store.Put(ds.Dirty)
		cfds := datagen.StandardCFDs()
		native, err := NativeDetector{}.Detect(ds.Dirty, cfds)
		if err != nil {
			t.Fatalf("noise=%.2f: native: %v", noise, err)
		}
		sqlRep, err := NewSQLDetector(store).Detect(ds.Dirty, cfds)
		if err != nil {
			t.Fatalf("noise=%.2f: sql: %v", noise, err)
		}
		if err := Equivalent(native, sqlRep); err != nil {
			t.Fatalf("noise=%.2f: native vs sql: %v", noise, err)
		}
		if noise > 0 && len(native.Vio) == 0 {
			t.Fatalf("noise=%.2f produced no violations; test is vacuous", noise)
		}
		for _, workers := range []int{1, 2, 8} {
			par, err := ParallelDetector{Workers: workers}.Detect(ds.Dirty, cfds)
			if err != nil {
				t.Fatalf("noise=%.2f workers=%d: %v", noise, workers, err)
			}
			if err := Equivalent(native, par); err != nil {
				t.Errorf("noise=%.2f workers=%d: parallel vs native: %v", noise, workers, err)
			}
			if err := Equivalent(sqlRep, par); err != nil {
				t.Errorf("noise=%.2f workers=%d: parallel vs sql: %v", noise, workers, err)
			}
		}
	}
}

func randPattern(rng *rand.Rand) cfd.PatternValue {
	switch rng.Intn(4) {
	case 0:
		return cfd.Constant(types.NewString(fmt.Sprintf("v%d", rng.Intn(5))))
	case 1:
		return cfd.Constant(types.NewInt(int64(rng.Intn(4))))
	default:
		return cfd.Wild
	}
}

// TestVioDefinitionOnKnownGroups pins the paper's vio(t) arithmetic on a
// hand-computed instance: group sizes 2+3 sharing an LHS value space.
func TestVioDefinitionOnKnownGroups(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "K", "V"))
	ins := func(k, v string) relstore.TupleID {
		return tab.MustInsert(relstore.Tuple{types.NewString(k), types.NewString(v)})
	}
	// Group k1: values a,a,b,c (4 members, counts a:2 b:1 c:1).
	a1 := ins("k1", "a")
	a2 := ins("k1", "a")
	b := ins("k1", "b")
	c := ins("k1", "c")
	// Group k2: clean.
	ins("k2", "z")
	ins("k2", "z")
	fd := cfd.NewFD("f", "r", []string{"K"}, []string{"V"})
	for name, det := range map[string]Detector{
		"native":   NativeDetector{},
		"sql":      NewSQLDetector(store),
		"parallel": ParallelDetector{Workers: 3},
	} {
		t.Run(name, func(t *testing.T) {
			rep, err := det.Detect(tab, []*cfd.CFD{fd})
			if err != nil {
				t.Fatal(err)
			}
			// vio = members - count(own value): a:2, b:3, c:3.
			want := map[relstore.TupleID]int{a1: 2, a2: 2, b: 3, c: 3}
			for id, n := range want {
				if rep.Vio[id] != n {
					t.Errorf("vio(%d) = %d, want %d", id, rep.Vio[id], n)
				}
			}
			if len(rep.Vio) != 4 {
				t.Errorf("dirty = %v", rep.Vio)
			}
		})
	}
}

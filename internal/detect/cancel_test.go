package detect

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"semandaq/internal/datagen"
	"semandaq/internal/relstore"
)

// cancelEngines is the engine matrix for the cancellation tests: every
// registered kind, built the way the registry builds it (the SQL engine
// over a store holding the table).
func cancelEngines(store *relstore.Store) map[string]Detector {
	return map[string]Detector{
		"sql":      NewSQLDetector(store),
		"native":   NativeDetector{},
		"columnar": ColumnarDetector{Workers: 1},
		"parallel": ParallelDetector{Workers: 4},
	}
}

// TestPreCancelledContext asserts every engine refuses to scan under an
// already-cancelled context and surfaces ctx.Err().
func TestPreCancelledContext(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 500, Seed: 11, NoiseRate: 0.05})
	store := relstore.NewStore()
	store.Put(ds.Dirty)
	cfds := datagen.StandardCFDs()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, det := range cancelEngines(store) {
		rep, err := det.Detect(ctx, ds.Dirty, cfds)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if rep != nil {
			t.Errorf("%s: got a report despite cancellation", name)
		}
	}
}

// bigDirty memoizes the 1M-tuple workload the mid-scan tests share, with
// the columnar snapshot pre-built so cancellation latency measures the
// scan, not the snapshot construction.
var bigDirty = sync.OnceValue(func() *datagen.Dataset {
	ds := datagen.Generate(datagen.Config{Tuples: 1_000_000, Seed: 7, NoiseRate: 0.05})
	ds.Dirty.Columnar()
	return ds
})

// TestMidScanCancellation cancels each engine partway through a 1M-tuple
// scan and asserts it aborts with ctx.Err() well before a full pass would
// have completed.
func TestMidScanCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-tuple workload; skipped under -short")
	}
	ds := bigDirty()
	cfds := datagen.StandardCFDs()
	store := relstore.NewStore()
	store.Put(ds.Dirty)
	for name, det := range cancelEngines(store) {
		t.Run(name, func(t *testing.T) {
			// 30ms is deep inside any engine's 1M-tuple pass (the fastest,
			// sharded columnar, needs hundreds of milliseconds) yet late
			// enough that every engine is mid-scan rather than preparing.
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			start := time.Now()
			rep, err := det.Detect(ctx, ds.Dirty, cfds)
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v (report %v) after %v, want context.DeadlineExceeded", err, rep != nil, elapsed)
			}
			// Promptness: the abort must not degenerate into finishing the
			// scan anyway. The bound is loose to stay robust on slow CI.
			if elapsed > 5*time.Second {
				t.Errorf("cancellation took %v", elapsed)
			}
		})
	}
}

// TestMidScanCancellationStream covers the streaming path: a consumer that
// stops reading (context cancelled while the producer is mid-scan) gets
// the terminal ctx error and no further violations.
func TestMidScanCancellationStream(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-tuple workload; skipped under -short")
	}
	ds := bigDirty()
	cfds := datagen.StandardCFDs()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var n int
	var terminal error
	for v, err := range (ColumnarDetector{Workers: 4}).DetectStream(ctx, ds.Dirty, cfds) {
		if err != nil {
			terminal = err
			break
		}
		_ = v
		if n++; n == 10 {
			cancel() // drop the client mid-stream
		}
		if n > 10_000_000 {
			t.Fatal("stream did not stop after cancellation")
		}
	}
	if !errors.Is(terminal, context.Canceled) {
		t.Errorf("terminal err = %v, want context.Canceled", terminal)
	}
}

// TestCancelErrorsDoNotPoisonDetectors asserts an engine remains usable
// after a cancelled run (no shared state is corrupted).
func TestCancelErrorsDoNotPoisonDetectors(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 2000, Seed: 5, NoiseRate: 0.05})
	store := relstore.NewStore()
	store.Put(ds.Dirty)
	cfds := datagen.StandardCFDs()
	want, err := NativeDetector{}.Detect(context.Background(), ds.Dirty, cfds)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for name, det := range cancelEngines(store) {
		if _, err := det.Detect(cancelled, ds.Dirty, cfds); err == nil {
			t.Fatalf("%s: cancelled run succeeded", name)
		}
		rep, err := det.Detect(context.Background(), ds.Dirty, cfds)
		if err != nil {
			t.Fatalf("%s: rerun after cancel: %v", name, err)
		}
		if err := Equivalent(want, rep); err != nil {
			t.Errorf("%s: report after cancelled run differs: %v", name, err)
		}
	}
}

// TestEngineRegistry pins the registry round-trip: every built-in kind
// resolves to a working detector and parses back from its name.
func TestEngineRegistry(t *testing.T) {
	kinds := EngineKinds()
	if len(kinds) != 4 {
		t.Fatalf("EngineKinds() = %v", kinds)
	}
	ds := datagen.Generate(datagen.Config{Tuples: 300, Seed: 2, NoiseRate: 0.1})
	store := relstore.NewStore()
	store.Put(ds.Dirty)
	cfds := datagen.StandardCFDs()
	want, err := NativeDetector{}.Detect(context.Background(), ds.Dirty, cfds)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range kinds {
		parsed, err := ParseEngineKind(k.String())
		if err != nil || parsed != k {
			t.Errorf("ParseEngineKind(%q) = %v, %v", k.String(), parsed, err)
		}
		det, err := NewDetector(k, Config{Workers: 3, Store: store})
		if err != nil {
			t.Fatalf("NewDetector(%v): %v", k, err)
		}
		rep, err := det.Detect(context.Background(), ds.Dirty, cfds)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if err := Equivalent(want, rep); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
	if _, err := ParseEngineKind("vectorized"); err == nil {
		t.Error("ParseEngineKind accepted an unknown engine")
	}
	if _, err := NewDetector(EngineKind(99), Config{}); err == nil {
		t.Error("NewDetector accepted an unregistered kind")
	}
}

package detect

import (
	"context"
	"encoding/binary"
	"runtime"
	"sync"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// ColumnarDetector computes the NativeDetector report over the table's
// columnar snapshot (relstore.Columnar) instead of the row store. The
// semantics and the produced report are identical — same violations, same
// group and member order — but the hot loop is integer work:
//
//   - a pattern constant is translated once per detection into the
//     column's Equal-class code, so matching a tuple against a pattern
//     cell is one uint32 comparison instead of a Value.Equal call;
//   - the multi-tuple group key is the fixed-width vector of the tuple's
//     LHS Equal-class codes, packed into a small byte buffer, instead of a
//     length-prefixed Key() string rebuilt per tuple per CFD (the
//     WriteGroupKey encoding remains the cross-snapshot key format, used
//     by the incremental tracker and the SQL engine's generic paths);
//   - the RHS value key of a group member is the dictionary's precomputed
//     Key() string, shared by every member with that value.
//
// Workers selects the evaluation shape: <= 1 runs a sequential scan; more
// run the two-phase sharded evaluation ParallelDetector describes (chunked
// scan, then per-shard grouping routed by a hash of the code vector). The
// report does not depend on the worker count.
type ColumnarDetector struct {
	Workers int
}

// colCell is one LHS pattern cell translated into a column's code space.
type colCell struct {
	wild bool
	code uint32 // Equal-class code of the constant; valid when !wild
}

// colPattern is one tableau pattern resolved against a snapshot. dead
// marks patterns with an LHS constant that no stored value Equals: they
// cannot match any row of this snapshot.
type colPattern struct {
	idx  int // index in the (merged, normalized) tableau
	lhs  []colCell
	dead bool
	// Constant-RHS patterns only: the expected Equal-class code. expOK is
	// false when the constant is absent from the column's dictionary, in
	// which case every matching tuple with a non-NULL RHS is a violation.
	expCode uint32
	expOK   bool
}

// colPrep is one prepared CFD bound to a columnar snapshot.
type colPrep struct {
	p         prepared
	lhsCols   []*relstore.Column
	rhsCol    *relstore.Column
	rhsNull   uint32 // exact (= Equal-class) code of NULL in the RHS column
	hasNull   bool
	constPats []colPattern
	varPats   []colPattern
}

// newColPrep resolves the prepared CFD's patterns into snapshot codes.
func newColPrep(p prepared, snap *relstore.Columnar) colPrep {
	cp := colPrep{
		p:       p,
		lhsCols: make([]*relstore.Column, len(p.lhsPos)),
		rhsCol:  snap.Col(p.rhsPos),
	}
	cp.rhsNull, cp.hasNull = cp.rhsCol.NullCode()
	for k, pos := range p.lhsPos {
		cp.lhsCols[k] = snap.Col(pos)
	}
	if p.c.HasVariablePattern() {
		cp.rhsCol.EnsureKeys() // group RHS keys sit in the scan's hot loop
	}
	for i := range p.c.Tableau {
		pat := colPattern{idx: i, lhs: make([]colCell, len(p.lhsPos))}
		for k, pv := range p.c.Tableau[i].LHS {
			if pv.Wildcard {
				pat.lhs[k] = colCell{wild: true}
				continue
			}
			code, ok := cp.lhsCols[k].EqCodeOf(pv.Const)
			if !ok {
				pat.dead = true
			}
			pat.lhs[k] = colCell{code: code}
		}
		if rhs := p.c.Tableau[i].RHS[0]; rhs.Wildcard {
			cp.varPats = append(cp.varPats, pat)
		} else {
			pat.expCode, pat.expOK = cp.rhsCol.EqCodeOf(rhs.Const)
			cp.constPats = append(cp.constPats, pat)
		}
	}
	return cp
}

// matchCells reports whether snapshot row idx matches the pattern cells.
func matchCells(cells []colCell, cols []*relstore.Column, idx int) bool {
	for k := range cells {
		if cells[k].wild {
			continue
		}
		if cols[k].EqCode(idx) != cells[k].code {
			return false
		}
	}
	return true
}

// appendConstViolationsColumnar is appendConstViolations over codes: it
// appends row idx's single-tuple violations and reports whether any fired.
func appendConstViolationsColumnar(dst []Violation, cp *colPrep, idx int,
	id relstore.TupleID) ([]Violation, bool) {
	if len(cp.constPats) == 0 {
		return dst, false
	}
	fired := false
	rhsExact := cp.rhsCol.Code(idx)
	if cp.hasNull && rhsExact == cp.rhsNull {
		return dst, false // NULL RHS is never flagged, matching the SQL path
	}
	rhsEq := cp.rhsCol.EqOf(rhsExact)
	for pi := range cp.constPats {
		pat := &cp.constPats[pi]
		if pat.dead || !matchCells(pat.lhs, cp.lhsCols, idx) {
			continue
		}
		if pat.expOK && rhsEq == pat.expCode {
			continue
		}
		dst = append(dst, Violation{
			CFDID:    cp.p.c.ID,
			Kind:     SingleTuple,
			Pattern:  pat.idx,
			TupleID:  id,
			Attr:     cp.p.c.RHS[0],
			Expected: cp.p.c.Tableau[pat.idx].RHS[0].Const,
			Got:      cp.rhsCol.Value(rhsExact),
		})
		fired = true
	}
	return dst, fired
}

// matchesVarColumnar reports whether row idx matches at least one live
// variable pattern's LHS.
func matchesVarColumnar(cp *colPrep, idx int) bool {
	for pi := range cp.varPats {
		pat := &cp.varPats[pi]
		if !pat.dead && matchCells(pat.lhs, cp.lhsCols, idx) {
			return true
		}
	}
	return false
}

// packLHSCodes writes row idx's LHS Equal-class code vector into buf
// (little-endian uint32 per attribute). Two rows pack identically iff
// their LHS projections are component-wise Equal, so string(buf) is a
// collision-free group key within one snapshot.
func packLHSCodes(buf []byte, cp *colPrep, idx int) {
	for k, col := range cp.lhsCols {
		binary.LittleEndian.PutUint32(buf[4*k:], col.EqCode(idx))
	}
}

// addToGroupColumnar folds row idx into the group keyed by its packed code
// vector, materializing the representative LHS values (exact, from the
// first member — exactly what the row path stores) on group creation.
func addToGroupColumnar(groups map[string]*groupAcc, keyBuf []byte,
	cp *colPrep, idx int, id relstore.TupleID) {
	g, ok := groups[string(keyBuf)]
	if !ok {
		lhsVals := make([]types.Value, len(cp.lhsCols))
		for k, col := range cp.lhsCols {
			lhsVals[k] = col.Value(col.Code(idx))
		}
		g = &groupAcc{
			lhsVals:   lhsVals,
			rhsOf:     map[relstore.TupleID]string{},
			rhsCounts: map[string]int{},
		}
		groups[string(keyBuf)] = g
	}
	g.members = append(g.members, id)
	rk := cp.rhsCol.KeyOf(cp.rhsCol.Code(idx))
	g.rhsOf[id] = rk
	g.rhsCounts[rk]++
}

// Detect implements Detector.
func (d ColumnarDetector) Detect(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) (*Report, error) {
	return d.DetectSnapshot(ctx, tab.Snapshot(), cfds)
}

// DetectSnapshot implements SnapshotDetector: the columnar evaluation over
// one pinned table version (its lazily built columnar decomposition).
func (d ColumnarDetector) DetectSnapshot(ctx context.Context, rsnap *relstore.Snapshot, cfds []*cfd.CFD) (*Report, error) {
	preps, err := prepare(rsnap.Schema(), cfds)
	if err != nil {
		return nil, err
	}
	snap := rsnap.Columnar()
	rep := &Report{
		Table:      snap.Schema().Name,
		TupleCount: snap.Len(),
		Version:    snap.Version(),
		PerCFD:     make(map[string]*CFDStats),
	}
	cps := make([]colPrep, len(preps))
	for i, p := range preps {
		rep.PerCFD[p.c.ID] = &CFDStats{}
		cps[i] = newColPrep(p, snap)
	}
	workers := clampWorkers(d.Workers, snap.Len())
	if workers <= 1 {
		for i := range cps {
			if err := detectOneColumnar(ctx, snap, &cps[i], rep, rep.PerCFD[preps[i].c.ID]); err != nil {
				return nil, err
			}
		}
	} else {
		if err := detectShardedColumnar(ctx, snap, cps, rep, workers); err != nil {
			return nil, err
		}
	}
	finish(rep)
	return rep, nil
}

// clampWorkers bounds untrusted worker counts (the HTTP API forwards
// them): beyond the core count extra workers only add scheduling and
// routing-buffer overhead, and beyond the tuple count they do nothing at
// all.
func clampWorkers(workers, tuples int) int {
	if maxW := 8 * runtime.GOMAXPROCS(0); workers > maxW {
		workers = maxW
	}
	if workers > tuples {
		workers = tuples
	}
	return workers
}

// detectOneColumnar is the sequential scan for one CFD: single-tuple
// checks inline, group accumulation keyed by packed code vectors.
func detectOneColumnar(ctx context.Context, snap *relstore.Columnar, cp *colPrep, rep *Report, st *CFDStats) error {
	groups := map[string]*groupAcc{}
	keyBuf := make([]byte, 4*len(cp.lhsCols))
	ids := snap.IDs()
	for idx := range ids {
		if idx%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		var fired bool
		rep.Violations, fired = appendConstViolationsColumnar(rep.Violations, cp, idx, ids[idx])
		if fired {
			st.SingleTuple++
		}
		if matchesVarColumnar(cp, idx) {
			packLHSCodes(keyBuf, cp, idx)
			addToGroupColumnar(groups, keyBuf, cp, idx, ids[idx])
		}
	}
	var ng, nm int
	rep.Groups, rep.Violations, ng, nm = flushGroups(groups, cp.p, rep.Groups, rep.Violations)
	st.Groups += ng
	st.MultiTuple += nm
	return nil
}

// colChunkResult is one scan worker's output in the sharded evaluation.
type colChunkResult struct {
	violations []Violation
	// singles counts, per prepared CFD, the chunk's tuples with at least
	// one single-tuple violation (chunks partition the tuples, so these
	// add up without double counting).
	singles []int
	// routed[cfdIdx][shard] lists the snapshot indexes of this chunk's
	// tuples whose group lands in that shard, in snapshot order.
	routed [][][]int32
}

// colShardResult is one group worker's output.
type colShardResult struct {
	violations []Violation
	groups     []*Group
	// multis and groupCounts are per prepared CFD.
	multis      []int
	groupCounts []int
}

// detectShardedColumnar runs the two-phase evaluation: chunked scan (phase
// 1), then per-shard grouping (phase 2), merged by concatenation under the
// deterministic finish() ordering — the same structure the row-based
// ParallelDetector used, now routing 4-byte code vectors instead of keys.
// Cancellation is checked inside every worker; a cancelled run returns
// ctx.Err() after the workers unwind.
func detectShardedColumnar(ctx context.Context, snap *relstore.Columnar, cps []colPrep, rep *Report, workers int) error {
	ids := snap.IDs()
	shards := workers
	bounds := chunkBounds(len(ids), workers)
	chunks := make([]colChunkResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scanChunkColumnar(ctx, &chunks[w], cps, ids, bounds[w], bounds[w+1], shards)
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 2: shard s consumes, for every CFD, the indexes routed to it
	// by every chunk, in chunk order — which is snapshot order, so group
	// members accumulate exactly as the sequential scan would.
	results := make([]colShardResult, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			groupShardColumnar(ctx, &results[s], cps, chunks, s, ids)
		}(s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	for w := range chunks {
		rep.Violations = append(rep.Violations, chunks[w].violations...)
		for ci, n := range chunks[w].singles {
			rep.PerCFD[cps[ci].p.c.ID].SingleTuple += n
		}
	}
	for s := range results {
		rep.Violations = append(rep.Violations, results[s].violations...)
		rep.Groups = append(rep.Groups, results[s].groups...)
		for ci := range cps {
			st := rep.PerCFD[cps[ci].p.c.ID]
			st.MultiTuple += results[s].multis[ci]
			st.Groups += results[s].groupCounts[ci]
		}
	}
	return nil
}

// scanChunkColumnar is phase 1 for one worker: single-tuple checks inline,
// variable matches routed to shards by a hash of the packed code vector.
// On cancellation the worker abandons its chunk; the caller notices via
// ctx.Err() and discards every chunk's partial output.
func scanChunkColumnar(ctx context.Context, out *colChunkResult, cps []colPrep,
	ids []relstore.TupleID, lo, hi, shards int) {
	out.singles = make([]int, len(cps))
	out.routed = make([][][]int32, len(cps))
	keyBufs := make([][]byte, len(cps))
	for ci := range cps {
		out.routed[ci] = make([][]int32, shards)
		keyBufs[ci] = make([]byte, 4*len(cps[ci].lhsCols))
	}
	for idx := lo; idx < hi; idx++ {
		if (idx-lo)%cancelStride == 0 && ctx.Err() != nil {
			return
		}
		id := ids[idx]
		for ci := range cps {
			cp := &cps[ci]
			var fired bool
			out.violations, fired = appendConstViolationsColumnar(out.violations, cp, idx, id)
			if fired {
				out.singles[ci]++
			}
			if matchesVarColumnar(cp, idx) {
				packLHSCodes(keyBufs[ci], cp, idx)
				s := shardOfBytes(keyBufs[ci], shards)
				out.routed[ci][s] = append(out.routed[ci][s], int32(idx))
			}
		}
	}
}

// groupShardColumnar is phase 2 for one shard: re-pack each routed index's
// code vector and accumulate groups, exactly as the sequential scan does.
func groupShardColumnar(ctx context.Context, out *colShardResult, cps []colPrep,
	chunks []colChunkResult, shard int, ids []relstore.TupleID) {
	out.multis = make([]int, len(cps))
	out.groupCounts = make([]int, len(cps))
	n := 0
	for ci := range cps {
		cp := &cps[ci]
		groups := map[string]*groupAcc{}
		keyBuf := make([]byte, 4*len(cp.lhsCols))
		for w := range chunks {
			for _, idx := range chunks[w].routed[ci][shard] {
				if n++; n%cancelStride == 0 && ctx.Err() != nil {
					return
				}
				packLHSCodes(keyBuf, cp, int(idx))
				addToGroupColumnar(groups, keyBuf, cp, int(idx), ids[idx])
			}
		}
		var ng, nm int
		out.groups, out.violations, ng, nm = flushGroups(groups, cp.p, out.groups, out.violations)
		out.groupCounts[ci] += ng
		out.multis[ci] += nm
	}
}

// chunkBounds splits n items into w contiguous ranges; returns w+1 offsets.
func chunkBounds(n, w int) []int {
	bounds := make([]int, w+1)
	for i := 0; i <= w; i++ {
		bounds[i] = i * n / w
	}
	return bounds
}

// shardOfBytes assigns a packed code vector to a shard with FNV-1a; any
// deterministic hash works, since the merged report is re-sorted by
// finish().
func shardOfBytes(key []byte, shards int) int {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h % uint32(shards))
}

package detect

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestLHSKeySeparatorCollision is the regression test for the 0x1f grouping
// bug: under the old separator-joined encoding, the LHS vectors
// ("x", "y\x1fsz") and ("x\x1fsy", "z") produced the same group key — the
// separator byte inside a value aliased the attribute boundary — so two
// tuples with different LHS values were grouped together and falsely
// reported as an FD violation. Length-prefixed keys keep them apart.
func TestLHSKeySeparatorCollision(t *testing.T) {
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("r", "A", "B", "C"))
	if err != nil {
		t.Fatal(err)
	}
	ins := func(a, b, c string) relstore.TupleID {
		return tab.MustInsert(relstore.Tuple{
			types.NewString(a), types.NewString(b), types.NewString(c)})
	}
	// Adversarial pair: distinct LHS vectors whose old keys collided.
	ins("x", "y\x1fsz", "c1")
	ins("x\x1fsy", "z", "c2")
	// Control pair: genuinely equal LHS, disagreeing RHS — must still fire.
	d1 := ins("k", "k", "v1")
	d2 := ins("k", "k", "v2")

	fd := cfd.NewFD("f", "r", []string{"A", "B"}, []string{"C"})
	want := map[relstore.TupleID]int{d1: 1, d2: 1}

	dets := map[string]Detector{
		"native":    NativeDetector{},
		"sql":       NewSQLDetector(store),
		"parallel1": ParallelDetector{Workers: 1},
		"parallel4": ParallelDetector{Workers: 4},
		"columnar":  ColumnarDetector{Workers: 1},
	}
	for name, det := range dets {
		rep, err := det.Detect(context.Background(), tab, []*cfd.CFD{fd})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(rep.Vio, want) {
			t.Errorf("%s: vio = %v, want %v (adversarial LHS vectors aliased?)", name, rep.Vio, want)
		}
	}
	// The incremental tracker groups with the same keys.
	tr, err := NewTracker(tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Report().Vio; !reflect.DeepEqual(got, want) {
		t.Errorf("tracker: vio = %v, want %v", got, want)
	}
}

// TestParallelIdenticalToNative checks the strongest form of the contract:
// the parallel report is deep-equal to the native one — same violation
// order, same group order, same member order — for several worker counts,
// including counts that exceed the tuple count.
func TestParallelIdenticalToNative(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "K", "L", "V", "W"))
	for i := 0; i < 200; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewString(fmt.Sprintf("k%d", i%17)),
			types.NewInt(int64(i % 5)),
			types.NewString(fmt.Sprintf("v%d", i%3)),
			types.NewString(fmt.Sprintf("w%d", i%7)),
		})
	}
	cfds := []*cfd.CFD{
		cfd.NewFD("f1", "r", []string{"K", "L"}, []string{"V"}),
		cfd.New("f2", "r", []string{"K"}, []string{"W"}, cfd.PatternTuple{
			LHS: []cfd.PatternValue{cfd.ConstStr("k3")},
			RHS: []cfd.PatternValue{cfd.ConstStr("w0")},
		}),
	}
	native, err := NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if len(native.Vio) == 0 {
		t.Fatal("workload produced no violations; test is vacuous")
	}
	for _, w := range []int{0, 1, 2, 3, 8, 500} {
		par, err := ParallelDetector{Workers: w}.Detect(context.Background(), tab, cfds)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(native, par) {
			t.Errorf("workers=%d: parallel report differs from native", w)
		}
	}
}

// TestParallelEmptyAndCleanTables covers the degenerate inputs.
func TestParallelEmptyAndCleanTables(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	fd := cfd.NewFD("f", "r", []string{"A"}, []string{"B"})

	rep, err := ParallelDetector{Workers: 4}.Detect(context.Background(), tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TupleCount != 0 || len(rep.Vio) != 0 {
		t.Errorf("empty table: %+v", rep)
	}

	for i := 0; i < 10; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewString(fmt.Sprintf("a%d", i)), types.NewString("b")})
	}
	rep, err = ParallelDetector{Workers: 4}.Detect(context.Background(), tab, []*cfd.CFD{fd})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TupleCount != 10 || len(rep.Vio) != 0 || len(rep.Groups) != 0 {
		t.Errorf("clean table: vio=%v groups=%d", rep.Vio, len(rep.Groups))
	}
}

// TestParallelValidatesCFDs confirms error paths surface like the native
// detector's.
func TestParallelValidatesCFDs(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	bad := cfd.NewFD("f", "r", []string{"NOPE"}, []string{"B"})
	if _, err := (ParallelDetector{}).Detect(context.Background(), tab, []*cfd.CFD{bad}); err == nil {
		t.Fatal("expected validation error for unknown attribute")
	}
}

package detect

import (
	"context"
	"reflect"
	"testing"

	"semandaq/internal/datagen"
)

// TestStreamMatchesBlockingReport is the streaming path's core contract:
// over a full iteration the streamed violation set is byte-identical to
// the blocking report's Violations, for several worker counts and noise
// rates.
func TestStreamMatchesBlockingReport(t *testing.T) {
	cfds := datagen.StandardCFDs()
	for _, noise := range []float64{0, 0.05, 0.2} {
		ds := datagen.Generate(datagen.Config{Tuples: 4000, Seed: 21, NoiseRate: noise})
		want, err := (ColumnarDetector{Workers: 1}).Detect(context.Background(), ds.Dirty, cfds)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			var got []Violation
			for v, err := range (ColumnarDetector{Workers: workers}).DetectStream(context.Background(), ds.Dirty, cfds) {
				if err != nil {
					t.Fatalf("noise=%v workers=%d: %v", noise, workers, err)
				}
				got = append(got, v)
			}
			sortViolations(got)
			if len(got) == 0 {
				got = nil // DeepEqual treats nil and empty as different
			}
			if !reflect.DeepEqual(got, want.Violations) {
				t.Errorf("noise=%v workers=%d: streamed set (%d) differs from blocking report (%d)",
					noise, workers, len(got), len(want.Violations))
			}
		}
	}
}

// TestStreamEarlyBreak stops consuming after a handful of violations; the
// producers must unwind (the race detector would flag leaked writers) and
// a fresh stream over the same table must still be complete.
func TestStreamEarlyBreak(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 4000, Seed: 3, NoiseRate: 0.1})
	cfds := datagen.StandardCFDs()
	d := ColumnarDetector{Workers: 4}
	n := 0
	for v, err := range d.DetectStream(context.Background(), ds.Dirty, cfds) {
		if err != nil {
			t.Fatal(err)
		}
		_ = v
		if n++; n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("consumed %d violations, want 5", n)
	}
	want, err := d.Detect(context.Background(), ds.Dirty, cfds)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, err := range d.DetectStream(context.Background(), ds.Dirty, cfds) {
		if err != nil {
			t.Fatal(err)
		}
		total++
	}
	if total != len(want.Violations) {
		t.Errorf("second stream yielded %d violations, want %d", total, len(want.Violations))
	}
}

// TestStreamBadCFDs asserts preparation errors surface as the stream's
// first (and only) element.
func TestStreamBadCFDs(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 50, Seed: 1})
	bad := datagen.StandardCFDs()[:1]
	bad[0].LHS = []string{"NO_SUCH_ATTR"}
	sawErr := false
	for _, err := range (ColumnarDetector{Workers: 2}).DetectStream(context.Background(), ds.Dirty, bad) {
		if err == nil {
			t.Fatal("stream yielded a violation for invalid CFDs")
		}
		sawErr = true
	}
	if !sawErr {
		t.Fatal("stream ended without surfacing the preparation error")
	}
}

// TestStreamCleanTable asserts a clean table streams zero violations and
// terminates.
func TestStreamCleanTable(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 1000, Seed: 9})
	for v, err := range (ColumnarDetector{Workers: 4}).DetectStream(context.Background(), ds.Clean, datagen.StandardCFDs()) {
		if err != nil {
			t.Fatal(err)
		}
		t.Fatalf("clean table streamed violation %+v", v)
	}
}

package detect

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestFactorisedExplodeMatchesColumnar is the byte-identity oracle on the
// generated workload: DetectFactorised().Explode() must DeepEqual the
// legacy columnar report — violations, groups, member order, RHSOf maps,
// vio(t), everything — across noise rates. StandardCFDs cover both
// factorisation paths: phi1/phi4 have all-wildcard variable patterns
// (partition fast path), phi2 conditions on CNT=UK (scan fallback).
func TestFactorisedExplodeMatchesColumnar(t *testing.T) {
	ctx := context.Background()
	cfds := datagen.StandardCFDs()
	for _, noise := range []float64{0, 0.05, 0.2} {
		ds := datagen.Generate(datagen.Config{Tuples: 900, Seed: 11, NoiseRate: noise})
		snap := ds.Dirty.Snapshot()
		want, err := ColumnarDetector{}.DetectSnapshot(ctx, snap, cfds)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := DetectFactorised(ctx, snap, cfds)
		if err != nil {
			t.Fatal(err)
		}
		got := fr.Explode()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("noise=%.2f: exploded factorised report != columnar report", noise)
		}
		// Exploding twice must not corrupt the factorised form (it is served
		// repeatedly): the second explosion matches too.
		if again := fr.Explode(); !reflect.DeepEqual(again, want) {
			t.Fatalf("noise=%.2f: second Explode() diverged", noise)
		}
	}
}

// adversarialTable builds the nasty fixture: INT 1 vs FLOAT 1.0 (one
// Equal-class, distinct exact keys), NaN, NULLs in LHS and RHS positions.
func adversarialTable() *relstore.Table {
	tab := relstore.NewTable(schema.New("f", "K", "V", "W"))
	vals := []types.Value{
		types.NewInt(1), types.NewFloat(1.0), types.NewFloat(math.NaN()),
		types.Null, types.NewString("x"), types.NewString("y"),
	}
	n := 0
	for _, k := range vals {
		for _, v := range vals {
			tab.MustInsert(relstore.Tuple{k, v, types.NewInt(int64(n % 3))})
			n++
		}
	}
	return tab
}

// TestFactorisedAdversarial pins byte-identity on the fixtures that break
// naive key handling: NULL LHS classes, NULL RHS members, INT 1 / FLOAT
// 1.0 sharing an Equal-class but not an exact RHS key, multi-attribute
// LHS, and a merged tableau mixing constant and variable patterns.
func TestFactorisedAdversarial(t *testing.T) {
	ctx := context.Background()
	tab := adversarialTable()
	mixed := cfd.NewFD("mix", "f", []string{"K"}, []string{"V"})
	if err := mixed.AddPattern(cfd.PatternTuple{
		LHS: []cfd.PatternValue{cfd.Constant(types.NewString("x"))},
		RHS: []cfd.PatternValue{cfd.Constant(types.NewString("y"))},
	}); err != nil {
		t.Fatal(err)
	}
	suites := map[string][]*cfd.CFD{
		"fd-single-lhs": {cfd.NewFD("c1", "f", []string{"K"}, []string{"V"})},
		"fd-multi-lhs":  {cfd.NewFD("c2", "f", []string{"K", "W"}, []string{"V"})},
		"const-lhs-var-rhs": {cfd.New("c3", "f", []string{"K"}, []string{"V"}, cfd.PatternTuple{
			LHS: []cfd.PatternValue{cfd.Constant(types.NewInt(1))},
			RHS: []cfd.PatternValue{cfd.Wild},
		})},
		"mixed-tableau": {mixed},
	}
	for name, cfds := range suites {
		snap := tab.Snapshot()
		want, err := ColumnarDetector{}.DetectSnapshot(ctx, snap, cfds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fr, err := DetectFactorised(ctx, snap, cfds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := fr.Explode(); !reflect.DeepEqual(keyNormalize(got), keyNormalize(want)) {
			t.Fatalf("%s: exploded factorised report != columnar report\ngot:  %+v\nwant: %+v",
				name, got, want)
		}
	}
}

// keyNormalize rewrites every types.Value in the report to its canonical
// Key() string. The fixture deliberately contains NaN, and NaN != NaN
// makes reflect.DeepEqual unconditionally false on otherwise identical
// reports (the two legacy engines fail it on this fixture too); comparing
// in key space keeps the comparison exact — Key() is collision-free.
func keyNormalize(rep *Report) *Report {
	cp := *rep
	cp.Violations = append([]Violation(nil), rep.Violations...)
	for i := range cp.Violations {
		v := &cp.Violations[i]
		v.Expected = types.NewString(v.Expected.Key())
		v.Got = types.NewString(v.Got.Key())
	}
	cp.Groups = make([]*Group, len(rep.Groups))
	for i, g := range rep.Groups {
		gc := *g
		gc.LHSValues = make([]types.Value, len(g.LHSValues))
		for k, v := range g.LHSValues {
			gc.LHSValues[k] = types.NewString(v.Key())
		}
		cp.Groups[i] = &gc
	}
	return &cp
}

// TestFactorGroupAccessors asserts the lazy per-member accessors resolve
// exactly what the exploded group materializes.
func TestFactorGroupAccessors(t *testing.T) {
	ctx := context.Background()
	ds := datagen.Generate(datagen.Config{Tuples: 600, Seed: 3, NoiseRate: 0.1})
	snap := ds.Dirty.Snapshot()
	fr, err := DetectFactorised(ctx, snap, datagen.StandardCFDs())
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.FactorGroups) == 0 {
		t.Fatal("workload produced no dirty groups")
	}
	rep := fr.Explode()
	if len(rep.Groups) != len(fr.FactorGroups) {
		t.Fatalf("group counts differ: %d factorised vs %d exploded",
			len(fr.FactorGroups), len(rep.Groups))
	}
	for gi, g := range fr.FactorGroups {
		eg := rep.Groups[gi]
		if g.Size() != len(eg.Members) || g.MajoritySize() != eg.MajoritySize() {
			t.Fatalf("group %d: size/majority mismatch", gi)
		}
		if !reflect.DeepEqual(g.Members(), eg.Members) {
			t.Fatalf("group %d: Members() != exploded members", gi)
		}
		for i := range eg.Members {
			if g.MemberAt(i) != eg.Members[i] {
				t.Fatalf("group %d member %d: MemberAt mismatch", gi, i)
			}
			if g.RHSKeyAt(i) != eg.RHSOf[eg.Members[i]] {
				t.Fatalf("group %d member %d: RHSKeyAt != RHSOf", gi, i)
			}
			if g.PartnersAt(i) != len(eg.Members)-eg.RHSCounts[eg.RHSOf[eg.Members[i]]] {
				t.Fatalf("group %d member %d: PartnersAt mismatch", gi, i)
			}
		}
	}
}

// giantGroupTable builds one all-rows LHS class disagreeing on two RHS
// values: the worst case for exploded reporting, the best for factorised.
func giantGroupTable(n int) *relstore.Table {
	tab := relstore.NewTable(schema.New("g", "K", "V"))
	for i := 0; i < n; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewString("k"),
			types.NewString(fmt.Sprintf("v%d", i%2)),
		})
	}
	return tab
}

// TestFactorisedAllocsSublinear is the perf contract stated in the issue:
// reporting a dirty group factorised costs O(distinct RHS values), not
// O(members). Over warmed snapshots (columnar caches built), a 10x larger
// group must not cost meaningfully more allocations — while the exploded
// report provably scales per member.
func TestFactorisedAllocsSublinear(t *testing.T) {
	ctx := context.Background()
	cfds := []*cfd.CFD{cfd.NewFD("fd", "g", []string{"K"}, []string{"V"})}
	allocsAt := func(n int) float64 {
		snap := giantGroupTable(n).Snapshot()
		if _, err := DetectFactorised(ctx, snap, cfds); err != nil {
			t.Fatal(err) // warm the dictionaries, PLI, key tables
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := DetectFactorised(ctx, snap, cfds); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocsAt(2_000), allocsAt(20_000)
	if large > small+8 {
		t.Fatalf("factorised allocations scale with group size: %d rows -> %.0f allocs, %d rows -> %.0f",
			2_000, small, 20_000, large)
	}
}

// TestFactorisedNDJSON checks the stream shape: one header, the exact
// single-tuple violations, one line per group (no per-member lines), one
// terminal line with the totals.
func TestFactorisedNDJSON(t *testing.T) {
	ctx := context.Background()
	ds := datagen.Generate(datagen.Config{Tuples: 400, Seed: 5, NoiseRate: 0.15})
	fr, err := DetectFactorised(ctx, ds.Dirty.Snapshot(), datagen.StandardCFDs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var headers, viols, groups, dones int
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line["header"] != nil:
			headers++
		case line["violation"] != nil:
			viols++
		case line["group"] != nil:
			groups++
			var g struct {
				Group struct {
					Members   int            `json:"members"`
					RHSCounts map[string]int `json:"rhs_counts"`
				} `json:"group"`
			}
			if err := json.Unmarshal(sc.Bytes(), &g); err != nil {
				t.Fatal(err)
			}
			sum := 0
			for _, n := range g.Group.RHSCounts {
				sum += n
			}
			if sum != g.Group.Members || len(g.Group.RHSCounts) < 2 {
				t.Fatalf("group line inconsistent: %s", sc.Text())
			}
		case line["done"] != nil:
			dones++
		default:
			t.Fatalf("unrecognized NDJSON line: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if headers != 1 || dones != 1 {
		t.Fatalf("want exactly one header and one done line, got %d/%d", headers, dones)
	}
	if viols != len(fr.Violations) || groups != len(fr.FactorGroups) {
		t.Fatalf("stream emitted %d violations, %d groups; report has %d, %d",
			viols, groups, len(fr.Violations), len(fr.FactorGroups))
	}
}

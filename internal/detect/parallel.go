package detect

import (
	"runtime"
	"sync"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
)

// ParallelDetector computes the same report as NativeDetector with the work
// partitioned across multiple goroutines. Detection runs in two phases over
// a consistent snapshot of the table:
//
//  1. Scan: the tuples are split into contiguous chunks, one per worker.
//     Each chunk worker checks every constant pattern directly (single-tuple
//     violations are per-tuple independent) and, for tuples matching a
//     variable pattern, routes a (tuple, LHS key) record to a shard chosen
//     by hashing the CFD's LHS key — so every multi-tuple violation group
//     lands wholly in one shard.
//  2. Group: one worker per shard folds the routed records into per-shard
//     group maps (the same accumulation NativeDetector performs globally)
//     and emits the multi-tuple violations for groups disagreeing on the
//     RHS.
//
// Both phases run the helpers detectOne uses, and shard results merge by
// concatenation under the shared finish/majorityKey ordering, so the report
// is byte-identical to NativeDetector's. Workers selects the goroutine
// count; <= 0 means runtime.GOMAXPROCS(0).
type ParallelDetector struct {
	Workers int
}

// groupRec routes one tuple (by snapshot position) into a shard's group map
// under the LHS key computed during the scan phase.
type groupRec struct {
	idx int
	key string
}

// chunkResult is one scan worker's output.
type chunkResult struct {
	violations []Violation
	// singles counts, per prepared CFD, the chunk's tuples with at least
	// one single-tuple violation (chunks partition the tuples, so these
	// add up without double counting).
	singles []int
	// routed[cfdIdx][shard] holds the group records this chunk sends to
	// each shard, in snapshot order.
	routed [][][]groupRec
}

// shardResult is one group worker's output.
type shardResult struct {
	violations []Violation
	groups     []*Group
	// multis and groupCounts are per prepared CFD.
	multis      []int
	groupCounts []int
}

// Detect implements Detector.
func (d ParallelDetector) Detect(tab *relstore.Table, cfds []*cfd.CFD) (*Report, error) {
	preps, err := prepare(tab, cfds)
	if err != nil {
		return nil, err
	}
	ids, rows := tab.RowsView() // one consistent snapshot for both phases
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Clamp untrusted worker counts (the HTTP API forwards them): beyond
	// the core count extra workers only add scheduling and routing-buffer
	// overhead, and beyond the tuple count they do nothing at all.
	if maxW := 8 * runtime.GOMAXPROCS(0); workers > maxW {
		workers = maxW
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	rep := &Report{
		Table:      tab.Schema().Name,
		TupleCount: len(ids),
		PerCFD:     make(map[string]*CFDStats),
	}
	constPats := make([][]int, len(preps))
	varPats := make([][]int, len(preps))
	for ci, p := range preps {
		rep.PerCFD[p.c.ID] = &CFDStats{}
		constPats[ci], varPats[ci] = splitPatterns(p)
	}

	// Phase 1: chunk scan. Worker w owns rows [bounds[w], bounds[w+1]).
	shards := workers
	bounds := chunkBounds(len(ids), workers)
	chunks := make([]chunkResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scanChunk(&chunks[w], preps, constPats, varPats, ids, rows,
				bounds[w], bounds[w+1], shards)
		}(w)
	}
	wg.Wait()

	// Phase 2: per-shard grouping. Shard s consumes, for every CFD, the
	// records routed to it by every chunk, in chunk order — which is
	// snapshot order, so group members accumulate exactly as a sequential
	// scan would.
	results := make([]shardResult, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			groupShard(&results[s], preps, chunks, s, ids, rows)
		}(s)
	}
	wg.Wait()

	// Merge: concatenate and add; finish() establishes the deterministic
	// order shared with the other detectors.
	for w := range chunks {
		rep.Violations = append(rep.Violations, chunks[w].violations...)
		for ci, n := range chunks[w].singles {
			rep.PerCFD[preps[ci].c.ID].SingleTuple += n
		}
	}
	for s := range results {
		rep.Violations = append(rep.Violations, results[s].violations...)
		rep.Groups = append(rep.Groups, results[s].groups...)
		for ci := range preps {
			st := rep.PerCFD[preps[ci].c.ID]
			st.MultiTuple += results[s].multis[ci]
			st.Groups += results[s].groupCounts[ci]
		}
	}
	finish(rep)
	return rep, nil
}

// chunkBounds splits n items into w contiguous ranges; returns w+1 offsets.
func chunkBounds(n, w int) []int {
	bounds := make([]int, w+1)
	for i := 0; i <= w; i++ {
		bounds[i] = i * n / w
	}
	return bounds
}

// scanChunk is phase 1 for one worker: single-tuple checks inline, variable
// matches routed to shards by LHS-key hash.
func scanChunk(out *chunkResult, preps []prepared, constPats, varPats [][]int,
	ids []relstore.TupleID, rows []relstore.Tuple, lo, hi, shards int) {
	out.singles = make([]int, len(preps))
	out.routed = make([][][]groupRec, len(preps))
	for ci := range preps {
		out.routed[ci] = make([][]groupRec, shards)
	}
	for idx := lo; idx < hi; idx++ {
		id, row := ids[idx], rows[idx]
		for ci, p := range preps {
			var fired bool
			out.violations, fired = appendConstViolations(out.violations, p, constPats[ci], id, row)
			if fired {
				out.singles[ci]++
			}
			if matchesVarPattern(p, varPats[ci], row) {
				key := row.KeyOn(p.lhsPos)
				s := shardOf(key, shards)
				out.routed[ci][s] = append(out.routed[ci][s], groupRec{idx: idx, key: key})
			}
		}
	}
}

// groupShard is phase 2 for one shard: accumulate groups and emit the
// multi-tuple violations, exactly as NativeDetector's per-CFD grouping does.
func groupShard(out *shardResult, preps []prepared, chunks []chunkResult,
	shard int, ids []relstore.TupleID, rows []relstore.Tuple) {
	out.multis = make([]int, len(preps))
	out.groupCounts = make([]int, len(preps))
	for ci, p := range preps {
		groups := map[string]*groupAcc{}
		for w := range chunks {
			for _, rec := range chunks[w].routed[ci][shard] {
				addToGroup(groups, rec.key, p, ids[rec.idx], rows[rec.idx])
			}
		}
		var ng, nm int
		out.groups, out.violations, ng, nm = flushGroups(groups, p, out.groups, out.violations)
		out.groupCounts[ci] += ng
		out.multis[ci] += nm
	}
}

// shardOf assigns a group key to a shard with FNV-1a; any deterministic
// hash works, since the merged report is re-sorted by finish().
func shardOf(key string, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(shards))
}

package detect

import (
	"context"
	"runtime"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
)

// ParallelDetector computes the same report as NativeDetector with the
// work partitioned across multiple goroutines. Since the columnar
// read-path refactor it is the multi-worker configuration of
// ColumnarDetector: detection runs in two phases over the table's columnar
// snapshot:
//
//  1. Scan: the tuples are split into contiguous chunks, one per worker.
//     Each chunk worker checks every constant pattern directly against
//     dictionary codes (single-tuple violations are per-tuple independent)
//     and, for tuples matching a variable pattern, routes the tuple's
//     snapshot index to a shard chosen by hashing the CFD's packed LHS
//     code vector — so every multi-tuple violation group lands wholly in
//     one shard.
//  2. Group: one worker per shard folds the routed tuples into per-shard
//     group maps (the same accumulation the sequential scan performs
//     globally) and emits the multi-tuple violations for groups
//     disagreeing on the RHS.
//
// Shard results merge by concatenation under the shared finish() ordering,
// so the report is byte-identical to NativeDetector's. Workers selects the
// goroutine count; <= 0 means runtime.GOMAXPROCS(0).
type ParallelDetector struct {
	Workers int
}

// Detect implements Detector.
func (d ParallelDetector) Detect(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) (*Report, error) {
	return d.DetectSnapshot(ctx, tab.Snapshot(), cfds)
}

// DetectSnapshot implements SnapshotDetector over one pinned table version.
func (d ParallelDetector) DetectSnapshot(ctx context.Context, snap *relstore.Snapshot, cfds []*cfd.CFD) (*Report, error) {
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return ColumnarDetector{Workers: workers}.DetectSnapshot(ctx, snap, cfds)
}

// DetectStream implements Streamer by delegating to the sharded columnar
// streaming path with the configured worker count.
func (d ParallelDetector) DetectStream(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) ViolationSeq {
	return d.DetectStreamSnapshot(ctx, tab.Snapshot(), cfds)
}

// DetectStreamSnapshot implements SnapshotStreamer over one pinned version.
func (d ParallelDetector) DetectStreamSnapshot(ctx context.Context, snap *relstore.Snapshot, cfds []*cfd.CFD) ViolationSeq {
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return ColumnarDetector{Workers: workers}.DetectStreamSnapshot(ctx, snap, cfds)
}

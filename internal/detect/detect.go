// Package detect implements Semandaq's error detector: it finds all CFD
// violations in a table and computes the per-tuple violation count vio(t)
// exactly as the paper defines it.
//
// Two kinds of violations exist (Semandaq §2, "Error Detector"):
//
//   - single-tuple violations: a tuple matching a pattern's LHS whose RHS
//     value differs from the pattern's RHS constant — the tuple conflicts
//     with the CFD all by itself;
//   - multi-tuple violations: tuples that agree on the embedded FD's LHS,
//     match a wildcard-RHS pattern, and disagree on the RHS — the FD-style
//     conflict.
//
// vio(t) starts at 0, is incremented by 1 per CFD for which t is a
// single-tuple violation, and by the cardinality of the set of tuples that
// jointly conflict with t per CFD with a multi-tuple violation.
//
// The package provides interchangeable detectors producing one report:
// SQLDetector generates the two SQL queries of the TODS paper per merged
// CFD and runs them on the sqleng engine (the paper's technique, end to
// end); NativeDetector computes the same report with hand-rolled hash
// grouping over the row store (the reference semantics and the row-path
// baseline the benches compare against); ColumnarDetector evaluates over
// the table's columnar snapshot with dictionary-code group keys, either
// sequentially or sharded across workers (ParallelDetector is its
// multi-worker configuration). The incremental layer builds on the native
// semantics.
package detect

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// cancelStride is how many tuples the scan loops process between context
// checks: frequent enough that a cancelled 1M-tuple scan aborts within a
// few thousand rows, rare enough to stay invisible in profiles.
const cancelStride = 4096

// Kind distinguishes the two violation classes.
type Kind int

// The violation kinds.
const (
	SingleTuple Kind = iota
	MultiTuple
)

// String names the kind.
func (k Kind) String() string {
	if k == SingleTuple {
		return "single-tuple"
	}
	return "multi-tuple"
}

// Violation records one tuple's involvement in one CFD violation.
type Violation struct {
	CFDID string
	Kind  Kind
	// Pattern is the index of the violated pattern tuple in the (merged,
	// normalized) CFD's tableau; -1 when not attributable to one pattern.
	Pattern int
	TupleID relstore.TupleID
	// Attr is the RHS attribute in conflict.
	Attr string
	// Partners is, for multi-tuple violations, the number of tuples that
	// jointly conflict with this one (the vio(t) increment).
	Partners int
	// Expected is the pattern's RHS constant for single-tuple violations.
	Expected types.Value
	// Got is the tuple's conflicting RHS value.
	Got types.Value
}

// Group describes one multi-tuple violation group: the tuples sharing an
// LHS value that disagree on the RHS. The audit layer's "arguably clean"
// classification needs the per-value counts.
type Group struct {
	CFDID string
	// Attr is the RHS attribute the group disagrees on.
	Attr string
	// LHSAttrs names the embedded FD's LHS attributes (parallel to
	// LHSValues); the repair layer uses them to break group memberships.
	LHSAttrs []string
	// LHSValues is the shared LHS value vector.
	LHSValues []types.Value
	// Members lists the group's tuples.
	Members []relstore.TupleID
	// RHSOf maps each member to its RHS value key.
	RHSOf map[relstore.TupleID]string
	// RHSCounts counts members per RHS value key.
	RHSCounts map[string]int
	// MajorityKey is the RHS value key held by the largest sub-group
	// (ties broken by key order for determinism).
	MajorityKey string
}

// MajoritySize returns the size of the largest agreeing sub-group.
func (g *Group) MajoritySize() int { return g.RHSCounts[g.MajorityKey] }

// CFDStats summarizes one CFD's violations.
type CFDStats struct {
	SingleTuple int // tuples with a single-tuple violation
	MultiTuple  int // tuples involved in multi-tuple violations
	Groups      int // multi-tuple violation groups
}

// Report is the full detection result over one table.
type Report struct {
	Table      string
	TupleCount int
	// Version is the table version the report reflects: every engine
	// evaluates one pinned snapshot, so all violations, groups and counts
	// in a report describe exactly this version even while concurrent
	// writers keep mutating the live table.
	Version    int64
	Violations []Violation
	// Vio is vio(t) for every tuple with vio(t) > 0.
	Vio map[relstore.TupleID]int
	// PerCFD indexes statistics by (normalized) CFD ID.
	PerCFD map[string]*CFDStats
	Groups []*Group
}

// DirtyTuples returns the IDs with vio(t) > 0, ascending.
func (r *Report) DirtyTuples() []relstore.TupleID {
	ids := make([]relstore.TupleID, 0, len(r.Vio))
	for id := range r.Vio {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TotalViolations returns the number of violation records.
func (r *Report) TotalViolations() int { return len(r.Violations) }

// MaxVio returns the largest vio(t); 0 on a clean table.
func (r *Report) MaxVio() int {
	m := 0
	for _, v := range r.Vio {
		if v > m {
			m = v
		}
	}
	return m
}

// Detector finds CFD violations in a table.
type Detector interface {
	// Detect checks the table against the CFDs and returns the report.
	// Detection is cancellable: when ctx is done mid-scan the engine
	// returns ctx.Err() promptly instead of finishing the pass. The
	// engine pins the table's current snapshot up front, so the report
	// reflects a single version (stamped in Report.Version).
	Detect(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) (*Report, error)
}

// SnapshotDetector is implemented by detectors that can evaluate an
// explicitly pinned snapshot. Callers that need several reads to agree on
// one table version (audit classifies rows against the report it just
// detected; explore drills into it) snapshot once and drive everything off
// it. All built-in engines implement it; Detect(tab) is shorthand for
// DetectSnapshot(tab.Snapshot()).
type SnapshotDetector interface {
	DetectSnapshot(ctx context.Context, snap *relstore.Snapshot, cfds []*cfd.CFD) (*Report, error)
}

// prepared is a normalized CFD with resolved attribute positions.
type prepared struct {
	c      *cfd.CFD
	lhsPos []int
	rhsPos int // single RHS attribute after normalization
}

// prepare validates, normalizes (single-attribute RHS) and merges the CFDs
// by embedded FD, then resolves attribute positions against the schema.
func prepare(sc *schema.Relation, cfds []*cfd.CFD) ([]prepared, error) {
	var normalized []*cfd.CFD
	for _, c := range cfds {
		if err := c.Validate(sc); err != nil {
			return nil, err
		}
		normalized = append(normalized, c.Normalize()...)
	}
	merged := cfd.MergeByFD(normalized)
	out := make([]prepared, 0, len(merged))
	for _, c := range merged {
		lhsPos, err := sc.Positions(c.LHS)
		if err != nil {
			return nil, err
		}
		rhsPos, err := sc.Positions(c.RHS)
		if err != nil {
			return nil, err
		}
		out = append(out, prepared{c: c, lhsPos: lhsPos, rhsPos: rhsPos[0]})
	}
	return out, nil
}

// finish sorts the report deterministically and fills vio(t).
func finish(rep *Report) {
	sortViolations(rep.Violations)
	rep.Vio = make(map[relstore.TupleID]int)
	// Per the paper: +1 per CFD with a single-tuple violation (however many
	// patterns fire), +partners per CFD with a multi-tuple violation.
	type key struct {
		id relstore.TupleID
		c  string
		k  Kind
	}
	seen := map[key]bool{}
	for _, v := range rep.Violations {
		kk := key{v.TupleID, v.CFDID, v.Kind}
		if v.Kind == SingleTuple {
			if seen[kk] {
				continue
			}
			seen[kk] = true
			rep.Vio[v.TupleID]++
		} else {
			if seen[kk] {
				continue
			}
			seen[kk] = true
			rep.Vio[v.TupleID] += v.Partners
		}
	}
	sort.Slice(rep.Groups, func(i, j int) bool {
		a, b := rep.Groups[i], rep.Groups[j]
		if a.CFDID != b.CFDID {
			return a.CFDID < b.CFDID
		}
		return lhsKey(a.LHSValues) < lhsKey(b.LHSValues)
	})
}

// lhsKey encodes an LHS value vector as a grouping key, in the shared
// collision-free encoding (types.Value.WriteGroupKey): with a plain
// separator, values containing the separator byte could make distinct LHS
// vectors collide into one group. It matches relstore's Tuple.KeyOn, which
// the detectors use when grouping whole-row projections.
func lhsKey(vals []types.Value) string {
	var b strings.Builder
	for _, v := range vals {
		v.WriteGroupKey(&b)
	}
	return b.String()
}

// majorityKey picks the most frequent RHS key, ties broken by key order.
func majorityKey(counts map[string]int) string {
	best, bestN := "", -1
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best
}

// NativeDetector computes the report with in-memory scans and hash
// grouping. It is the reference implementation of the semantics and the
// baseline the SQL technique is compared against in the benches.
type NativeDetector struct{}

// Detect implements Detector.
func (d NativeDetector) Detect(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) (*Report, error) {
	return d.DetectSnapshot(ctx, tab.Snapshot(), cfds)
}

// DetectSnapshot implements SnapshotDetector: the row-scan evaluation over
// one pinned table version.
func (NativeDetector) DetectSnapshot(ctx context.Context, snap *relstore.Snapshot, cfds []*cfd.CFD) (*Report, error) {
	preps, err := prepare(snap.Schema(), cfds)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Table:      snap.Schema().Name,
		TupleCount: snap.Len(),
		Version:    snap.Version(),
		PerCFD:     make(map[string]*CFDStats),
	}
	for _, p := range preps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st := &CFDStats{}
		rep.PerCFD[p.c.ID] = st
		if err := detectOne(ctx, snap, p, rep, st); err != nil {
			return nil, err
		}
	}
	finish(rep)
	return rep, nil
}

// detectOne processes one prepared CFD over the whole snapshot. The group
// bookkeeping (groupAcc, flushGroups) is shared with ColumnarDetector,
// whose code-vector evaluation must stay byte-identical to this row scan.
func detectOne(ctx context.Context, snap *relstore.Snapshot, p prepared, rep *Report, st *CFDStats) error {
	constPatterns, varPatterns := splitPatterns(p)
	groups := map[string]*groupAcc{}
	n := 0
	snap.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if n++; n%cancelStride == 0 && ctx.Err() != nil {
			return false
		}
		var fired bool
		rep.Violations, fired = appendConstViolations(rep.Violations, p, constPatterns, id, row)
		if fired {
			st.SingleTuple++
		}
		if matchesVarPattern(p, varPatterns, row) {
			addToGroup(groups, row.KeyOn(p.lhsPos), p, id, row)
		}
		return true
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	var ng, nm int
	rep.Groups, rep.Violations, ng, nm = flushGroups(groups, p, rep.Groups, rep.Violations)
	st.Groups += ng
	st.MultiTuple += nm
	return nil
}

// splitPatterns classifies the tableau indexes: constant-RHS patterns can
// only be violated by single tuples, wildcard-RHS patterns only by tuple
// groups.
func splitPatterns(p prepared) (constPatterns, varPatterns []int) {
	for i := range p.c.Tableau {
		if p.c.Tableau[i].RHS[0].Wildcard {
			varPatterns = append(varPatterns, i)
		} else {
			constPatterns = append(constPatterns, i)
		}
	}
	return constPatterns, varPatterns
}

// appendConstViolations appends row's single-tuple violations against the
// constant patterns to dst and reports whether any fired (the per-CFD
// SingleTuple statistic counts tuples, not pattern firings). NULL RHS
// values are not flagged — matching the SQL technique, where t.Y <> tp.Y
// is unknown on NULL.
func appendConstViolations(dst []Violation, p prepared, constPatterns []int,
	id relstore.TupleID, row relstore.Tuple) ([]Violation, bool) {
	fired := false
	for _, i := range constPatterns {
		if !p.c.MatchLHS(i, row, p.lhsPos) {
			continue
		}
		want := p.c.Tableau[i].RHS[0].Const
		got := row[p.rhsPos]
		if got.IsNull() || got.Equal(want) {
			continue
		}
		dst = append(dst, Violation{
			CFDID:    p.c.ID,
			Kind:     SingleTuple,
			Pattern:  i,
			TupleID:  id,
			Attr:     p.c.RHS[0],
			Expected: want,
			Got:      got,
		})
		fired = true
	}
	return dst, fired
}

// matchesVarPattern reports whether row matches at least one variable
// pattern's LHS. Tuples with equal LHS match the same patterns, so one
// group membership per tuple suffices.
func matchesVarPattern(p prepared, varPatterns []int, row relstore.Tuple) bool {
	for _, i := range varPatterns {
		if p.c.MatchLHS(i, row, p.lhsPos) {
			return true
		}
	}
	return false
}

// groupAcc accumulates one multi-tuple candidate group: the tuples sharing
// an LHS value, with their RHS value keys and counts.
type groupAcc struct {
	lhsVals   []types.Value
	members   []relstore.TupleID
	rhsOf     map[relstore.TupleID]string
	rhsCounts map[string]int
}

// addToGroup folds one tuple into its LHS group, creating the group on
// first use. Callers must present tuples in snapshot order: member order is
// part of the detectors' byte-identical-report contract.
func addToGroup(groups map[string]*groupAcc, key string, p prepared,
	id relstore.TupleID, row relstore.Tuple) {
	g, ok := groups[key]
	if !ok {
		lhsVals := make([]types.Value, len(p.lhsPos))
		for k, pos := range p.lhsPos {
			lhsVals[k] = row[pos]
		}
		g = &groupAcc{
			lhsVals:   lhsVals,
			rhsOf:     map[relstore.TupleID]string{},
			rhsCounts: map[string]int{},
		}
		groups[key] = g
	}
	g.members = append(g.members, id)
	rk := row[p.rhsPos].Key()
	g.rhsOf[id] = rk
	g.rhsCounts[rk]++
}

// flushGroups emits every accumulated group that disagrees on the RHS: the
// Group record plus one multi-tuple Violation per member, with the vio(t)
// partner count. It returns the grown slices and the group/member counts
// for the per-CFD statistics.
func flushGroups(groups map[string]*groupAcc, p prepared,
	outGroups []*Group, outViols []Violation) ([]*Group, []Violation, int, int) {
	ng, nm := 0, 0
	// Pre-grow the violation slice: a dirty group emits one record per
	// member, and at millions of members the append-doubling copies would
	// otherwise dominate the flush.
	total := 0
	for _, g := range groups {
		if len(g.rhsCounts) > 1 {
			total += len(g.members)
		}
	}
	if free := cap(outViols) - len(outViols); free < total {
		grown := make([]Violation, len(outViols), len(outViols)+total)
		copy(grown, outViols)
		outViols = grown
	}
	for _, g := range groups {
		if len(g.rhsCounts) <= 1 {
			continue
		}
		ng++
		outGroups = append(outGroups, &Group{
			CFDID:       p.c.ID,
			Attr:        p.c.RHS[0],
			LHSAttrs:    append([]string(nil), p.c.LHS...),
			LHSValues:   g.lhsVals,
			Members:     g.members,
			RHSOf:       g.rhsOf,
			RHSCounts:   g.rhsCounts,
			MajorityKey: majorityKey(g.rhsCounts),
		})
		for _, id := range g.members {
			outViols = append(outViols, Violation{
				CFDID:    p.c.ID,
				Kind:     MultiTuple,
				Pattern:  -1,
				TupleID:  id,
				Attr:     p.c.RHS[0],
				Partners: len(g.members) - g.rhsCounts[g.rhsOf[id]],
			})
			nm++
		}
	}
	return outGroups, outViols, ng, nm
}

// Equivalent reports whether two reports agree on vio(t) and per-CFD
// statistics; used by tests to cross-check the SQL and native detectors.
func Equivalent(a, b *Report) error {
	if a.TupleCount != b.TupleCount {
		return fmt.Errorf("tuple counts differ: %d vs %d", a.TupleCount, b.TupleCount)
	}
	if len(a.Vio) != len(b.Vio) {
		return fmt.Errorf("dirty tuple counts differ: %d vs %d", len(a.Vio), len(b.Vio))
	}
	for id, n := range a.Vio {
		if b.Vio[id] != n {
			return fmt.Errorf("vio(%d) differs: %d vs %d", id, n, b.Vio[id])
		}
	}
	if len(a.PerCFD) != len(b.PerCFD) {
		return fmt.Errorf("per-CFD sizes differ: %d vs %d", len(a.PerCFD), len(b.PerCFD))
	}
	for id, s := range a.PerCFD {
		o, ok := b.PerCFD[id]
		if !ok {
			return fmt.Errorf("CFD %s missing from second report", id)
		}
		if *s != *o {
			return fmt.Errorf("CFD %s stats differ: %+v vs %+v", id, *s, *o)
		}
	}
	return nil
}

package detect

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func TestTrackerMatchesBatchInitially(t *testing.T) {
	_, tab, cfds := paperStore(t)
	tr, err := NewTracker(tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(batch, tr.Report()); err != nil {
		t.Fatalf("initial state disagrees: %v", err)
	}
	if tr.DirtyCount() != 3 {
		t.Errorf("dirty = %d", tr.DirtyCount())
	}
	if tr.String() == "" {
		t.Error("String should render")
	}
}

func TestTrackerInsertCreatesViolation(t *testing.T) {
	_, tab, cfds := paperStore(t)
	tr, err := NewTracker(tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a third EH2 4SD tuple with yet another street: joins the
	// multi-tuple group; everyone's partner counts grow.
	row := relstore.Tuple{
		types.NewString("New"), types.NewString("UK"), types.NewString("Edinburgh"),
		types.NewString("EH2 4SD"), types.NewString("ThirdSt"),
		types.NewInt(44), types.NewInt(131)}
	id, delta, err := tr.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Vio(id) != 2 {
		t.Errorf("vio(new) = %d, want 2 (conflicts with both streets)", tr.Vio(id))
	}
	if tr.Vio(0) != 2 || tr.Vio(1) != 2 {
		t.Errorf("vio(Mike)=%d vio(Rick)=%d, want 2,2", tr.Vio(0), tr.Vio(1))
	}
	// The group was already violating: only the new tuple is a status
	// change, existing members merely gained a partner.
	if delta.Changed[id] != 2 {
		t.Errorf("delta = %v", delta.Changed)
	}
	assertMatchesBatch(t, tab, cfds, tr)
}

func TestTrackerInsertCleanTuple(t *testing.T) {
	_, tab, cfds := paperStore(t)
	tr, _ := NewTracker(tab, cfds)
	row := relstore.Tuple{
		types.NewString("Cl"), types.NewString("FR"), types.NewString("Paris"),
		types.NewString("75001"), types.NewString("Rivoli"),
		types.NewInt(33), types.NewInt(1)}
	id, delta, err := tr.Insert(row)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Vio(id) != 0 {
		t.Errorf("vio = %d", tr.Vio(id))
	}
	if delta.Changed[id] != 0 {
		t.Errorf("delta = %v", delta.Changed)
	}
	assertMatchesBatch(t, tab, cfds, tr)
}

func TestTrackerDeleteResolvesGroup(t *testing.T) {
	_, tab, cfds := paperStore(t)
	tr, _ := NewTracker(tab, cfds)
	// Deleting Rick resolves the Mike/Rick conflict.
	delta, err := tr.Delete(1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Vio(0) != 0 {
		t.Errorf("vio(Mike) = %d after delete", tr.Vio(0))
	}
	if delta.Changed[0] != 0 || delta.Changed[1] != 0 {
		t.Errorf("delta = %v", delta.Changed)
	}
	assertMatchesBatch(t, tab, cfds, tr)
	if _, err := tr.Delete(999); err == nil {
		t.Error("deleting a missing tuple should fail")
	}
}

func TestTrackerSetCellRepairsViolation(t *testing.T) {
	_, tab, cfds := paperStore(t)
	tr, _ := NewTracker(tab, cfds)
	// Fix Joe's CNT: the phi4 single-tuple violation disappears.
	delta, err := tr.SetCell(2, "CNT", types.NewString("UK"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Vio(2) != 0 {
		t.Errorf("vio(Joe) = %d", tr.Vio(2))
	}
	if _, ok := delta.Changed[2]; !ok {
		t.Errorf("delta = %v", delta.Changed)
	}
	assertMatchesBatch(t, tab, cfds, tr)
}

func TestTrackerSetCellCreatesViolation(t *testing.T) {
	_, tab, cfds := paperStore(t)
	tr, _ := NewTracker(tab, cfds)
	// Move Ben into the Edinburgh ZIP with a different street: new member
	// of the multi-tuple group.
	if _, err := tr.SetCell(4, "CNT", types.NewString("UK")); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.SetCell(4, "ZIP", types.NewString("EH2 4SD")); err != nil {
		t.Fatal(err)
	}
	if tr.Vio(4) == 0 {
		t.Error("Ben should now conflict")
	}
	assertMatchesBatch(t, tab, cfds, tr)

	if _, err := tr.SetCell(4, "NOPE", types.Null); err == nil {
		t.Error("unknown attribute should fail")
	}
	if _, err := tr.SetCell(999, "CNT", types.Null); err == nil {
		t.Error("missing tuple should fail")
	}
}

func TestTrackerVioMapCopy(t *testing.T) {
	_, tab, cfds := paperStore(t)
	tr, _ := NewTracker(tab, cfds)
	m := tr.VioMap()
	m[0] = 999
	if tr.Vio(0) == 999 {
		t.Error("VioMap should return a copy")
	}
}

// assertMatchesBatch verifies that the tracker state equals a from-scratch
// batch detection on the current table.
func assertMatchesBatch(t *testing.T, tab *relstore.Table, cfds []*cfd.CFD, tr *Tracker) {
	t.Helper()
	batch, err := NativeDetector{}.Detect(context.Background(), tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if err := Equivalent(batch, tr.Report()); err != nil {
		t.Fatalf("tracker diverged from batch: %v", err)
	}
	// vio maps agree too.
	for id, n := range batch.Vio {
		if tr.Vio(id) != n {
			t.Fatalf("vio(%d): tracker %d, batch %d", id, tr.Vio(id), n)
		}
	}
	if len(batch.Vio) != tr.DirtyCount() {
		t.Fatalf("dirty: tracker %d, batch %d", tr.DirtyCount(), len(batch.Vio))
	}
}

// TestTrackerRandomizedAgainstBatch drives a random update stream and
// cross-checks the tracker against batch detection after every operation —
// the key correctness property of incremental detection.
func TestTrackerRandomizedAgainstBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "K1", "K2", "V", "W"))
	cfds, err := cfd.ParseSet(`
r: [K1=_, K2=_] -> [V=_]
r: [K1=a] -> [W=ok]
`)
	if err != nil {
		t.Fatal(err)
	}
	randRow := func() relstore.Tuple {
		return relstore.Tuple{
			types.NewString(fmt.Sprintf("%c", 'a'+rng.Intn(3))),
			types.NewString(fmt.Sprintf("k%d", rng.Intn(4))),
			types.NewString(fmt.Sprintf("v%d", rng.Intn(3))),
			types.NewString([]string{"ok", "bad"}[rng.Intn(2)]),
		}
	}
	for i := 0; i < 20; i++ {
		tab.MustInsert(randRow())
	}
	tr, err := NewTracker(tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	ids := tab.IDs()
	for step := 0; step < 200; step++ {
		switch op := rng.Intn(3); {
		case op == 0:
			id, _, err := tr.Insert(randRow())
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		case op == 1 && len(ids) > 5:
			k := rng.Intn(len(ids))
			if _, err := tr.Delete(ids[k]); err != nil {
				t.Fatal(err)
			}
			ids = append(ids[:k], ids[k+1:]...)
		default:
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			attr := []string{"K1", "K2", "V", "W"}[rng.Intn(4)]
			val := types.NewString(fmt.Sprintf("v%d", rng.Intn(3)))
			if _, err := tr.SetCell(id, attr, val); err != nil {
				t.Fatal(err)
			}
		}
		if step%10 == 0 {
			assertMatchesBatch(t, tab, cfds, tr)
		}
	}
	assertMatchesBatch(t, tab, cfds, tr)
}

func TestTrackerNullTransitions(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	cfds, err := cfd.ParseSet("r: [A=k] -> [B=v]")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTracker(tab, cfds)
	if err != nil {
		t.Fatal(err)
	}
	// NULL RHS: not a violation.
	id, _, err := tr.Insert(relstore.Tuple{types.NewString("k"), types.Null})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Vio(id) != 0 {
		t.Errorf("NULL RHS vio = %d", tr.Vio(id))
	}
	// Setting it to a wrong constant creates the violation.
	if _, err := tr.SetCell(id, "B", types.NewString("wrong")); err != nil {
		t.Fatal(err)
	}
	if tr.Vio(id) != 1 {
		t.Errorf("vio = %d", tr.Vio(id))
	}
	// Back to NULL clears it.
	if _, err := tr.SetCell(id, "B", types.Null); err != nil {
		t.Fatal(err)
	}
	if tr.Vio(id) != 0 {
		t.Errorf("vio = %d", tr.Vio(id))
	}
	assertMatchesBatch(t, tab, cfds, tr)
}

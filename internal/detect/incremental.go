package detect

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// Tracker implements the incremental detection of the TODS paper, used by
// Semandaq's data monitor: instead of re-running batch detection after every
// update, it maintains the violation state (single-tuple hits and the
// multi-tuple group index) and updates it in time proportional to the size
// of the change, not the size of the data.
//
// vio(t) is NOT materialized per tuple: in large violating groups every
// member's count changes on every membership change, which would make
// updates O(|group|). Instead the tracker maintains a dirty-status
// reference count per tuple (transitions are O(1) amortized; a whole group
// flipping between clean and violating costs O(|group|) exactly once per
// flip) and computes vio(t) on demand in O(#CFDs).
//
// The Tracker owns mutations: route inserts, deletes and cell updates
// through it so the violation index stays in sync with the table.
//
// A Tracker is safe for concurrent use: mutations (Insert, Delete,
// SetCell) serialize on an internal write lock, while the read surface
// (Vio, VioMap, DirtyCount, Report) runs under a shared read lock, so any
// number of readers proceed concurrently between updates and always
// observe a fully applied update — never a half-indexed tuple.
type Tracker struct {
	mu    sync.RWMutex
	tab   *relstore.Table
	preps []prepared
	state []*cfdState
	// dirtyRef counts, per tuple, how many sources make it dirty: CFDs
	// with a single-tuple violation plus violating groups it belongs to.
	dirtyRef map[relstore.TupleID]int
}

// cfdState is the per-CFD violation index.
type cfdState struct {
	p prepared
	// constPatterns / varPatterns split the tableau by RHS kind.
	constPatterns []int
	varPatterns   []int
	// single counts violated constant patterns per tuple (absent = 0).
	single map[relstore.TupleID]int
	// groups indexes multi-tuple state by LHS key.
	groups map[string]*groupState
	// memberKey records which group each tuple belongs to.
	memberKey map[relstore.TupleID]string
}

// groupState is one LHS-value group of tuples matching a variable pattern.
type groupState struct {
	lhsVals   []types.Value
	members   map[relstore.TupleID]string // tuple → RHS value key
	rhsCounts map[string]int
}

func (g *groupState) violating() bool { return len(g.rhsCounts) > 1 }

// contribution returns the vio(t) contribution of this group for member id.
func (g *groupState) contribution(id relstore.TupleID) int {
	if !g.violating() {
		return 0
	}
	rk, ok := g.members[id]
	if !ok {
		return 0
	}
	return len(g.members) - g.rhsCounts[rk]
}

// NewTracker builds a tracker over the table and CFD set, performing one
// initial full pass to seed the violation index.
func NewTracker(tab *relstore.Table, cfds []*cfd.CFD) (*Tracker, error) {
	preps, err := prepare(tab.Schema(), cfds)
	if err != nil {
		return nil, err
	}
	t := &Tracker{
		tab:      tab,
		preps:    preps,
		dirtyRef: make(map[relstore.TupleID]int),
	}
	for _, p := range preps {
		cs := &cfdState{
			p:         p,
			single:    map[relstore.TupleID]int{},
			groups:    map[string]*groupState{},
			memberKey: map[relstore.TupleID]string{},
		}
		for i := range p.c.Tableau {
			if p.c.Tableau[i].RHS[0].Wildcard {
				cs.varPatterns = append(cs.varPatterns, i)
			} else {
				cs.constPatterns = append(cs.constPatterns, i)
			}
		}
		t.state = append(t.state, cs)
	}
	// Seed from one pinned snapshot (rows are frozen, no clone needed);
	// the tracker is not shared yet, so no locking either.
	tab.Snapshot().Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		t.addTuple(id, row, nil)
		return true
	})
	return t, nil
}

// Vio computes vio(t) for the given tuple on demand: one unit per CFD with
// a single-tuple violation plus the partner count per violating group.
func (t *Tracker) Vio(id relstore.TupleID) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.vioLocked(id)
}

// vioLocked is Vio under an already-held lock (any mode).
func (t *Tracker) vioLocked(id relstore.TupleID) int {
	if t.dirtyRef[id] == 0 {
		return 0
	}
	n := 0
	for _, cs := range t.state {
		if cs.single[id] > 0 {
			n++
		}
		if key, ok := cs.memberKey[id]; ok {
			n += cs.groups[key].contribution(id)
		}
	}
	return n
}

// VioMap returns the full vio(t) map (dirty tuples only).
func (t *Tracker) VioMap() map[relstore.TupleID]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[relstore.TupleID]int, len(t.dirtyRef))
	for id := range t.dirtyRef {
		if v := t.vioLocked(id); v > 0 {
			out[id] = v
		}
	}
	return out
}

// DirtyCount returns the number of tuples with vio(t) > 0.
func (t *Tracker) DirtyCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.dirtyRef)
}

// Version returns the tracked table's current version. Between tracker
// updates (which serialize on the tracker lock) it is the version every
// tracker read reflects, provided mutations are routed through the
// tracker as the contract requires.
func (t *Tracker) Version() int64 { return t.tab.Version() }

// Delta lists the tuples an operation touched or whose dirty status
// flipped, with their new vio(t) (0 = now clean). Members of a large
// violating group whose partner count merely shifted are not listed —
// tracking them would make updates O(|group|).
type Delta struct {
	Changed map[relstore.TupleID]int
}

func newDelta() *Delta { return &Delta{Changed: map[relstore.TupleID]int{}} }

// touch records id's current vio in the delta. Caller holds the lock.
func (t *Tracker) touch(d *Delta, id relstore.TupleID) {
	if d != nil {
		d.Changed[id] = t.vioLocked(id)
	}
}

// ref adjusts a tuple's dirty reference count, recording transitions.
func (t *Tracker) ref(d *Delta, id relstore.TupleID, diff int) {
	if diff == 0 {
		return
	}
	old := t.dirtyRef[id]
	n := old + diff
	switch {
	case n <= 0:
		delete(t.dirtyRef, id)
		if old > 0 && d != nil {
			d.Changed[id] = 0
		}
	default:
		t.dirtyRef[id] = n
		if old == 0 && d != nil {
			d.Changed[id] = -1 // placeholder; resolved in finishDelta
		}
	}
}

// finishDelta fills in the vio values for transition placeholders. Caller
// holds the lock.
func (t *Tracker) finishDelta(d *Delta) *Delta {
	if d == nil {
		return nil
	}
	for id, v := range d.Changed {
		if v < 0 {
			d.Changed[id] = t.vioLocked(id)
		}
	}
	return d
}

// Insert adds a tuple through the tracker.
func (t *Tracker) Insert(row relstore.Tuple) (relstore.TupleID, *Delta, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, err := t.tab.Insert(row)
	if err != nil {
		return 0, nil, err
	}
	d := newDelta()
	stored, _ := t.tab.Get(id)
	t.addTuple(id, stored, d)
	t.touch(d, id)
	return id, t.finishDelta(d), nil
}

// Delete removes a tuple through the tracker.
func (t *Tracker) Delete(id relstore.TupleID) (*Delta, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.tab.Get(id)
	if !ok {
		return nil, fmt.Errorf("detect: tracker delete: no tuple %d", id)
	}
	d := newDelta()
	t.removeTuple(id, row, d)
	t.tab.Delete(id)
	delete(t.dirtyRef, id)
	d.Changed[id] = 0
	return t.finishDelta(d), nil
}

// SetCell updates one attribute through the tracker.
func (t *Tracker) SetCell(id relstore.TupleID, attr string, v types.Value) (*Delta, error) {
	pos, ok := t.tab.Schema().Pos(attr)
	if !ok {
		return nil, fmt.Errorf("detect: tracker set: no attribute %q", attr)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.tab.Get(id)
	if !ok {
		return nil, fmt.Errorf("detect: tracker set: no tuple %d", id)
	}
	d := newDelta()
	t.removeTuple(id, old, d)
	if _, err := t.tab.SetCell(id, pos, v); err != nil {
		// Re-index the unchanged row: the removal above must not leak.
		t.addTuple(id, old, nil)
		return nil, err
	}
	nrow, _ := t.tab.Get(id)
	t.addTuple(id, nrow, d)
	t.touch(d, id)
	return t.finishDelta(d), nil
}

// addTuple indexes a tuple into every CFD state.
func (t *Tracker) addTuple(id relstore.TupleID, row relstore.Tuple, d *Delta) {
	for _, cs := range t.state {
		// Single-tuple violations.
		n := 0
		for _, i := range cs.constPatterns {
			if !cs.p.c.MatchLHS(i, row, cs.p.lhsPos) {
				continue
			}
			got := row[cs.p.rhsPos]
			if got.IsNull() || got.Equal(cs.p.c.Tableau[i].RHS[0].Const) {
				continue
			}
			n++
		}
		if n > 0 {
			cs.single[id] = n
			t.ref(d, id, 1)
		}
		// Multi-tuple group membership.
		matched := false
		for _, i := range cs.varPatterns {
			if cs.p.c.MatchLHS(i, row, cs.p.lhsPos) {
				matched = true
				break
			}
		}
		if !matched {
			continue
		}
		key := row.KeyOn(cs.p.lhsPos)
		g, ok := cs.groups[key]
		if !ok {
			lhsVals := make([]types.Value, len(cs.p.lhsPos))
			for k, pos := range cs.p.lhsPos {
				lhsVals[k] = row[pos]
			}
			g = &groupState{
				lhsVals:   lhsVals,
				members:   map[relstore.TupleID]string{},
				rhsCounts: map[string]int{},
			}
			cs.groups[key] = g
		}
		wasViolating := g.violating()
		rk := row[cs.p.rhsPos].Key()
		g.members[id] = rk
		g.rhsCounts[rk]++
		cs.memberKey[id] = key
		switch {
		case !wasViolating && g.violating():
			// The group flipped: every member becomes dirty.
			for mid := range g.members {
				t.ref(d, mid, 1)
			}
		case g.violating():
			t.ref(d, id, 1)
		}
	}
}

// removeTuple unindexes a tuple from every CFD state.
func (t *Tracker) removeTuple(id relstore.TupleID, row relstore.Tuple, d *Delta) {
	for _, cs := range t.state {
		if n, ok := cs.single[id]; ok && n > 0 {
			delete(cs.single, id)
			t.ref(d, id, -1)
		}
		key, ok := cs.memberKey[id]
		if !ok {
			continue
		}
		g := cs.groups[key]
		wasViolating := g.violating()
		rk := g.members[id]
		delete(g.members, id)
		if g.rhsCounts[rk] <= 1 {
			delete(g.rhsCounts, rk)
		} else {
			g.rhsCounts[rk]--
		}
		delete(cs.memberKey, id)
		if len(g.members) == 0 {
			delete(cs.groups, key)
		}
		switch {
		case wasViolating && !g.violating():
			// The group healed: the removed member plus all remaining
			// members lose this dirty source.
			t.ref(d, id, -1)
			for mid := range g.members {
				t.ref(d, mid, -1)
			}
		case wasViolating:
			t.ref(d, id, -1)
		}
	}
}

// Report materializes a full detection report from the tracked state; it
// matches what a batch detector would produce on the current table, and is
// stamped with the table version it reflects. It runs under the tracker's
// read lock, so it never observes a half-applied update; with mutations
// routed through the tracker (the contract), the whole report describes
// one table version.
func (t *Tracker) Report() *Report {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rep := &Report{
		Table:   t.tab.Schema().Name,
		Version: t.tab.Version(),
		PerCFD:  make(map[string]*CFDStats),
	}
	rep.TupleCount = t.tab.Len()
	for _, cs := range t.state {
		st := &CFDStats{}
		rep.PerCFD[cs.p.c.ID] = st
		// Single-tuple violations: re-derive details from the live rows.
		ids := make([]relstore.TupleID, 0, len(cs.single))
		for id := range cs.single {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			row, ok := t.tab.Get(id)
			if !ok {
				continue
			}
			had := false
			for _, i := range cs.constPatterns {
				if !cs.p.c.MatchLHS(i, row, cs.p.lhsPos) {
					continue
				}
				got := row[cs.p.rhsPos]
				want := cs.p.c.Tableau[i].RHS[0].Const
				if got.IsNull() || got.Equal(want) {
					continue
				}
				rep.Violations = append(rep.Violations, Violation{
					CFDID:    cs.p.c.ID,
					Kind:     SingleTuple,
					Pattern:  i,
					TupleID:  id,
					Attr:     cs.p.c.RHS[0],
					Expected: want,
					Got:      got,
				})
				had = true
			}
			if had {
				st.SingleTuple++
			}
		}
		for _, g := range cs.groups {
			if !g.violating() {
				continue
			}
			st.Groups++
			grp := &Group{
				CFDID:       cs.p.c.ID,
				Attr:        cs.p.c.RHS[0],
				LHSAttrs:    append([]string(nil), cs.p.c.LHS...),
				LHSValues:   append([]types.Value(nil), g.lhsVals...),
				RHSOf:       map[relstore.TupleID]string{},
				RHSCounts:   map[string]int{},
				MajorityKey: majorityKey(g.rhsCounts),
			}
			memberIDs := make([]relstore.TupleID, 0, len(g.members))
			for id := range g.members {
				memberIDs = append(memberIDs, id)
			}
			sort.Slice(memberIDs, func(i, j int) bool { return memberIDs[i] < memberIDs[j] })
			for _, id := range memberIDs {
				grp.Members = append(grp.Members, id)
				grp.RHSOf[id] = g.members[id]
			}
			for k, n := range g.rhsCounts {
				grp.RHSCounts[k] = n
			}
			rep.Groups = append(rep.Groups, grp)
			for _, id := range memberIDs {
				rep.Violations = append(rep.Violations, Violation{
					CFDID:    cs.p.c.ID,
					Kind:     MultiTuple,
					Pattern:  -1,
					TupleID:  id,
					Attr:     cs.p.c.RHS[0],
					Partners: g.contribution(id),
				})
				st.MultiTuple++
			}
		}
	}
	finish(rep)
	return rep
}

// String renders a short tracker summary.
func (t *Tracker) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b strings.Builder
	fmt.Fprintf(&b, "tracker(%s): %d tuples, %d dirty", t.tab.Schema().Name, t.tab.Len(), len(t.dirtyRef))
	return b.String()
}

// Factorised violation reports: the PLI partitions the columnar layer
// already maintains *are* a factorised representation of the relation, so
// multi-tuple violations don't need exploding into per-tuple rows and
// per-member maps to be reported. A FactorGroup carries the group's row
// refs (on the common all-wildcard path a zero-copy alias of the LHS
// partition class) plus an RHS histogram; everything per-member — the
// member's RHS key, its partner count, its Violation row — is derivable
// in O(1) from the columnar dictionaries, so reporting a 10k-member dirty
// group allocates O(distinct RHS values), not O(members).
//
// The factorised report is the primary form; Explode() lowers it to the
// exact legacy Report (byte-identity is the oracle, enforced by the fuzz
// and cross-check tiers), and WriteNDJSON streams it one group per line
// without ever materializing members. Audit and repair consume the
// factorised form directly (AuditFactorised, repair.RunFactorised);
// calling Explode() inside those hot paths is forbidden by the noexplode
// vet analyzer.
package detect

import (
	"context"
	"encoding/json"
	"io"
	"sort"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// FactorGroup is one multi-tuple violation group in factorised form: the
// rows sharing an LHS value (a partition class), the histogram of their
// RHS value keys, and the column refs needed to resolve any member's RHS
// lazily. It carries no per-member maps.
type FactorGroup struct {
	CFDID string
	// Attr is the RHS attribute the group disagrees on.
	Attr string
	// LHSAttrs names the embedded FD's LHS attributes (parallel to
	// LHSValues).
	LHSAttrs []string
	// LHSValues is the shared LHS value vector (exact values of the first
	// member, matching the legacy Group contract).
	LHSValues []types.Value
	// Rows lists the members as ascending snapshot row indexes. On the
	// all-wildcard fast path this aliases the LHS partition class's
	// backing storage — callers must not mutate it.
	Rows []int32
	// RHSCounts counts members per RHS value key; MajorityKey is the key
	// of the largest sub-group (ties broken by key order).
	RHSCounts   map[string]int
	MajorityKey string

	rhsCol *relstore.Column
	ids    []relstore.TupleID
}

// Size returns the member count.
func (g *FactorGroup) Size() int { return len(g.Rows) }

// MajoritySize returns the size of the largest agreeing sub-group.
func (g *FactorGroup) MajoritySize() int { return g.RHSCounts[g.MajorityKey] }

// MemberAt returns the i-th member's tuple ID.
func (g *FactorGroup) MemberAt(i int) relstore.TupleID { return g.ids[g.Rows[i]] }

// RHSKeyAt returns the i-th member's RHS value key, resolved from the
// columnar dictionary in O(1) — the factorised replacement for the legacy
// RHSOf map.
func (g *FactorGroup) RHSKeyAt(i int) string {
	return g.rhsCol.KeyOf(g.rhsCol.Code(int(g.Rows[i])))
}

// PartnersAt returns the i-th member's vio(t) increment: the number of
// members disagreeing with it.
func (g *FactorGroup) PartnersAt(i int) int {
	return len(g.Rows) - g.RHSCounts[g.RHSKeyAt(i)]
}

// Members materializes the member tuple IDs, in snapshot order.
func (g *FactorGroup) Members() []relstore.TupleID {
	return g.AppendMembers(make([]relstore.TupleID, 0, len(g.Rows)))
}

// AppendMembers appends the member tuple IDs to dst (the allocation-free
// form for consumers reusing a buffer across groups).
func (g *FactorGroup) AppendMembers(dst []relstore.TupleID) []relstore.TupleID {
	for _, r := range g.Rows {
		dst = append(dst, g.ids[r])
	}
	return dst
}

// FactorReport is the factorised detection result: single-tuple
// violations stay explicit (they are one row each by nature), multi-tuple
// violations are factorised into FactorGroups. PerCFD statistics match
// the legacy report's exactly. Ordering is deterministic: violations in
// the legacy sort order, groups by (CFDID, LHS key) — the same order
// finish() gives the exploded report.
type FactorReport struct {
	Table      string
	TupleCount int
	// Version is the pinned snapshot version the report describes.
	Version    int64
	Violations []Violation
	PerCFD     map[string]*CFDStats
	FactorGroups []*FactorGroup
}

// DirtyGroups returns the number of factor groups.
func (fr *FactorReport) DirtyGroups() int { return len(fr.FactorGroups) }

// DetectFactorised evaluates the CFDs over one pinned snapshot and
// returns the factorised report. CFDs whose variable patterns include an
// all-wildcard row (plain FDs — the common case, and everything
// discovery's variable lattice emits globally) group through the LHS
// columns' cached PLI partitions: the group rows are partition classes,
// zero-copy, and only the RHS histogram is computed per class. Patterns
// with LHS constants fall back to a code-filtered scan. Either way no
// per-member map or per-member violation row is built.
func DetectFactorised(ctx context.Context, rsnap *relstore.Snapshot, cfds []*cfd.CFD) (*FactorReport, error) {
	preps, err := prepare(rsnap.Schema(), cfds)
	if err != nil {
		return nil, err
	}
	snap := rsnap.Columnar()
	fr := &FactorReport{
		Table:      snap.Schema().Name,
		TupleCount: snap.Len(),
		Version:    snap.Version(),
		PerCFD:     make(map[string]*CFDStats),
	}
	ids := snap.IDs()
	for i := range preps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cp := newColPrep(preps[i], snap)
		st := &CFDStats{}
		fr.PerCFD[cp.p.c.ID] = st
		if len(cp.constPats) > 0 {
			if err := factorConstScan(ctx, &cp, ids, fr, st); err != nil {
				return nil, err
			}
		}
		if len(cp.varPats) == 0 {
			continue
		}
		if hasAllWildcardVar(&cp) {
			err = factorFromPartitions(ctx, snap, &cp, ids, fr, st)
		} else {
			err = factorFromScan(ctx, &cp, ids, fr, st)
		}
		if err != nil {
			return nil, err
		}
	}
	sortViolations(fr.Violations)
	sort.Slice(fr.FactorGroups, func(i, j int) bool {
		a, b := fr.FactorGroups[i], fr.FactorGroups[j]
		if a.CFDID != b.CFDID {
			return a.CFDID < b.CFDID
		}
		return lhsKey(a.LHSValues) < lhsKey(b.LHSValues)
	})
	return fr, nil
}

// factorConstScan finds the single-tuple violations for one CFD — the
// same code-filtered scan the columnar detector runs.
func factorConstScan(ctx context.Context, cp *colPrep, ids []relstore.TupleID,
	fr *FactorReport, st *CFDStats) error {
	for idx := range ids {
		if idx%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		var fired bool
		fr.Violations, fired = appendConstViolationsColumnar(fr.Violations, cp, idx, ids[idx])
		if fired {
			st.SingleTuple++
		}
	}
	return nil
}

// hasAllWildcardVar reports whether some variable pattern's LHS is all
// wildcards — then every row matches the variable side and grouping is
// exactly the LHS partition.
func hasAllWildcardVar(cp *colPrep) bool {
	for pi := range cp.varPats {
		pat := &cp.varPats[pi]
		if pat.dead {
			continue
		}
		all := true
		for k := range pat.lhs {
			if !pat.lhs[k].wild {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// factorFromPartitions is the fast path: the LHS partition (the first LHS
// column's cached PLI, refined by Intersect per further attribute) is the
// grouping — each multi-row class is a candidate group whose rows are
// emitted by reference.
func factorFromPartitions(ctx context.Context, snap *relstore.Columnar, cp *colPrep,
	ids []relstore.TupleID, fr *FactorReport, st *CFDStats) error {
	part := cp.lhsCols[0].PLI()
	for _, col := range cp.lhsCols[1:] {
		if err := ctx.Err(); err != nil {
			return err
		}
		part = part.Intersect(col.EqProbe())
	}
	codeCounts := make(map[uint32]int, 8)
	seen := 0
	for c := 0; c < part.NumClasses(); c++ {
		rows := part.Class(c)
		if len(rows) < 2 {
			continue
		}
		if seen += len(rows); seen >= cancelStride {
			seen = 0
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		emitFactorGroup(cp, rows, codeCounts, ids, fr, st)
	}
	return nil
}

// factorFromScan is the fallback for variable patterns with LHS
// constants: a code-filtered scan routes matching rows into per-LHS-class
// row lists (no per-member maps), then each list factorises like a
// partition class.
func factorFromScan(ctx context.Context, cp *colPrep, ids []relstore.TupleID,
	fr *FactorReport, st *CFDStats) error {
	rowsByClass := map[string][]int32{}
	var order []string // first-occurrence order, for deterministic emission
	keyBuf := make([]byte, 4*len(cp.lhsCols))
	for idx := range ids {
		if idx%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !matchesVarColumnar(cp, idx) {
			continue
		}
		packLHSCodes(keyBuf, cp, idx)
		k := string(keyBuf)
		if _, ok := rowsByClass[k]; !ok {
			order = append(order, k)
		}
		rowsByClass[k] = append(rowsByClass[k], int32(idx))
	}
	codeCounts := make(map[uint32]int, 8)
	for _, k := range order {
		rows := rowsByClass[k]
		if len(rows) < 2 {
			continue
		}
		emitFactorGroup(cp, rows, codeCounts, ids, fr, st)
	}
	return nil
}

// emitFactorGroup computes one candidate group's RHS histogram over exact
// dictionary codes and, when the group disagrees, appends the factorised
// group. codeCounts is the caller's reusable scratch map.
func emitFactorGroup(cp *colPrep, rows []int32, codeCounts map[uint32]int,
	ids []relstore.TupleID, fr *FactorReport, st *CFDStats) {
	// Purity pre-check in raw codes: a clean group (the overwhelmingly
	// common case) costs zero allocations.
	rhs := cp.rhsCol
	pure := true
	first := rhs.Code(int(rows[0]))
	for _, r := range rows[1:] {
		if rhs.Code(int(r)) != first {
			pure = false
			break
		}
	}
	if pure {
		return
	}
	clear(codeCounts)
	for _, r := range rows {
		codeCounts[rhs.Code(int(r))]++
	}
	counts := make(map[string]int, len(codeCounts))
	for code, n := range codeCounts {
		counts[rhs.KeyOf(code)] += n
	}
	if len(counts) <= 1 {
		return // distinct codes rendered one key (cannot happen; belt and braces)
	}
	lhsVals := make([]types.Value, len(cp.lhsCols))
	for k, col := range cp.lhsCols {
		lhsVals[k] = col.Value(col.Code(int(rows[0])))
	}
	fr.FactorGroups = append(fr.FactorGroups, &FactorGroup{
		CFDID:       cp.p.c.ID,
		Attr:        cp.p.c.RHS[0],
		LHSAttrs:    append([]string(nil), cp.p.c.LHS...),
		LHSValues:   lhsVals,
		Rows:        rows,
		RHSCounts:   counts,
		MajorityKey: majorityKey(counts),
		rhsCol:      rhs,
		ids:         ids,
	})
	st.Groups++
	st.MultiTuple += len(rows)
}

// AsGroup materializes the legacy Group view of one factor group WITHOUT
// the per-member RHSOf map — Members and the histogram only, which is all
// the repair planner consumes. Per-member RHS keys stay lazy (RHSKeyAt);
// consumers needing the full map should Explode the report instead.
func (g *FactorGroup) AsGroup() *Group {
	counts := make(map[string]int, len(g.RHSCounts))
	for k, n := range g.RHSCounts {
		counts[k] = n
	}
	return &Group{
		CFDID:       g.CFDID,
		Attr:        g.Attr,
		LHSAttrs:    append([]string(nil), g.LHSAttrs...),
		LHSValues:   append([]types.Value(nil), g.LHSValues...),
		Members:     g.Members(),
		RHSCounts:   counts,
		MajorityKey: g.MajorityKey,
	}
}

// Explode lowers the factorised report to the exact legacy Report: every
// member's Violation row, the RHSOf maps, vio(t) and the finish() sort
// order — byte-identical (DeepEqual) to what the legacy engines produce
// over the same snapshot. It is the compatibility shim for consumers that
// still want the exploded form; hot paths consume the factorised report
// directly instead (the noexplode analyzer enforces this).
func (fr *FactorReport) Explode() *Report {
	rep := &Report{
		Table:      fr.Table,
		TupleCount: fr.TupleCount,
		Version:    fr.Version,
		PerCFD:     make(map[string]*CFDStats, len(fr.PerCFD)),
	}
	for id, st := range fr.PerCFD {
		cp := *st
		rep.PerCFD[id] = &cp
	}
	total := 0
	for _, g := range fr.FactorGroups {
		total += len(g.Rows)
	}
	if len(fr.Violations)+total > 0 {
		rep.Violations = make([]Violation, 0, len(fr.Violations)+total)
		rep.Violations = append(rep.Violations, fr.Violations...)
	}
	for _, g := range fr.FactorGroups {
		members := g.Members()
		rhsOf := make(map[relstore.TupleID]string, len(members))
		counts := make(map[string]int, len(g.RHSCounts))
		for k, n := range g.RHSCounts {
			counts[k] = n
		}
		for i, id := range members {
			rk := g.RHSKeyAt(i)
			rhsOf[id] = rk
			rep.Violations = append(rep.Violations, Violation{
				CFDID:    g.CFDID,
				Kind:     MultiTuple,
				Pattern:  -1,
				TupleID:  id,
				Attr:     g.Attr,
				Partners: len(members) - g.RHSCounts[rk],
			})
		}
		rep.Groups = append(rep.Groups, &Group{
			CFDID:       g.CFDID,
			Attr:        g.Attr,
			LHSAttrs:    append([]string(nil), g.LHSAttrs...),
			LHSValues:   append([]types.Value(nil), g.LHSValues...),
			Members:     members,
			RHSOf:       rhsOf,
			RHSCounts:   counts,
			MajorityKey: g.MajorityKey,
		})
	}
	finish(rep)
	return rep
}

// WriteNDJSON streams the factorised report: a header line, one line per
// single-tuple violation, one line per factor group (member count + RHS
// histogram — members stay factorised), and a terminal line. Lines are
// self-describing JSON objects keyed "header", "violation", "group",
// "done".
func (fr *FactorReport) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]any{"header": map[string]any{
		"table":   fr.Table,
		"tuples":  fr.TupleCount,
		"version": fr.Version,
	}}); err != nil {
		return err
	}
	for i := range fr.Violations {
		v := &fr.Violations[i]
		if err := enc.Encode(map[string]any{"violation": map[string]any{
			"cfd":      v.CFDID,
			"kind":     v.Kind.String(),
			"pattern":  v.Pattern,
			"tuple":    int64(v.TupleID),
			"attr":     v.Attr,
			"expected": v.Expected.String(),
			"got":      v.Got.String(),
		}}); err != nil {
			return err
		}
	}
	for _, g := range fr.FactorGroups {
		lhs := make([]string, len(g.LHSValues))
		for i, v := range g.LHSValues {
			lhs[i] = v.String()
		}
		if err := enc.Encode(map[string]any{"group": map[string]any{
			"cfd":        g.CFDID,
			"attr":       g.Attr,
			"lhs_attrs":  g.LHSAttrs,
			"lhs":        lhs,
			"members":    len(g.Rows),
			"rhs_counts": g.RHSCounts,
			"majority":   g.MajorityKey,
		}}); err != nil {
			return err
		}
	}
	return enc.Encode(map[string]any{"done": true,
		"violations": len(fr.Violations), "groups": len(fr.FactorGroups)})
}

// sortViolations applies the canonical report order (the finish() sort).
func sortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.TupleID != b.TupleID {
			return a.TupleID < b.TupleID
		}
		if a.CFDID != b.CFDID {
			return a.CFDID < b.CFDID
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Pattern < b.Pattern
	})
}

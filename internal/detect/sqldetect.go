package detect

import (
	"context"
	"fmt"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/sqleng"
	"semandaq/internal/types"
)

// SQLDetector implements the detection technique of the TODS paper: for
// every merged CFD it generates exactly two SQL queries — Qc catching
// single-tuple (constant-pattern) violations and Qv catching multi-tuple
// (variable-pattern) violations — and runs them on the sqleng engine over
// the relationally encoded tableau. The number of queries is independent of
// the number of pattern tuples, which is the technique's selling point.
type SQLDetector struct {
	// Engine runs the generated SQL. Its store must contain the data table.
	Engine *sqleng.Engine
	// KeepArtifacts, when set, leaves the tableau and group tables in the
	// store after detection (the CLI uses it for -explain).
	KeepArtifacts bool
	// Trace receives every generated SQL statement, when non-nil.
	Trace func(sql string)
}

// nullSentinel stands in for NULL inside COALESCE-normalized join keys and
// COUNT(DISTINCT ...) so that NULL behaves as an ordinary (single) value,
// matching the native detector's Key()-based grouping.
const nullSentinel = "\x00null"

// NewSQLDetector builds a SQL detector over the store holding the data.
func NewSQLDetector(store *relstore.Store) *SQLDetector {
	return &SQLDetector{Engine: sqleng.New(store)}
}

// Detect implements Detector.
func (d *SQLDetector) Detect(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) (*Report, error) {
	store := d.Engine.Store()
	if got, ok := store.Table(tab.Schema().Name); !ok || got != tab {
		return nil, fmt.Errorf("detect: table %q is not registered in the detector's store", tab.Schema().Name)
	}
	return d.DetectSnapshot(ctx, tab.Snapshot(), cfds)
}

// DetectSnapshot implements SnapshotDetector. The snapshot is pinned in the
// detector's SQL engine for the duration of the run, so the several
// generated queries (Qc and the two Qv steps, per merged CFD) all read the
// data table at one version even while writers mutate it; the report is
// stamped with that version. The snapshot's table must be registered in
// the engine's store under its schema name.
func (d *SQLDetector) DetectSnapshot(ctx context.Context, snap *relstore.Snapshot, cfds []*cfd.CFD) (*Report, error) {
	preps, err := prepare(snap.Schema(), cfds)
	if err != nil {
		return nil, err
	}
	dataName := snap.Schema().Name
	if _, ok := d.Engine.Store().Table(dataName); !ok {
		return nil, fmt.Errorf("detect: table %q is not registered in the detector's store", dataName)
	}
	d.Engine.Pin(snap)
	defer d.Engine.Unpin(dataName)
	rep := &Report{
		Table:      dataName,
		TupleCount: snap.Len(),
		Version:    snap.Version(),
		PerCFD:     make(map[string]*CFDStats),
	}
	for i, p := range preps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st := &CFDStats{}
		rep.PerCFD[p.c.ID] = st
		if err := d.detectOneSQL(ctx, dataName, p, i, rep, st); err != nil {
			return nil, err
		}
	}
	finish(rep)
	return rep, nil
}

// sanitizeIdent makes a CFD ID usable inside a table name.
func sanitizeIdent(id string) string {
	var b strings.Builder
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (d *SQLDetector) run(ctx context.Context, sql string) (*sqleng.Result, error) {
	if d.Trace != nil {
		d.Trace(sql)
	}
	return d.Engine.QueryContext(ctx, sql)
}

// stream runs sql through the engine's lazy executor, calling yield once
// per output row. The non-grouped Qc and Qv join-back queries go through
// here so violations are assembled as the join produces rows, without the
// engine ever materializing the full result set.
func (d *SQLDetector) stream(ctx context.Context, sql string, yield func(row []types.Value) bool) error {
	if d.Trace != nil {
		d.Trace(sql)
	}
	ss, err := d.Engine.Stream(ctx, sql)
	if err != nil {
		return err
	}
	return ss.Each(ctx, yield)
}

// detectOneSQL generates and runs Qc and Qv for one merged CFD. The
// context reaches the SQL engine's scan loops, so a mid-query cancel
// aborts inside the generated query rather than between queries.
func (d *SQLDetector) detectOneSQL(ctx context.Context, dataName string, p prepared, seq int, rep *Report, st *CFDStats) error {
	store := d.Engine.Store()
	tpName := fmt.Sprintf("_tp_%d_%s", seq, sanitizeIdent(p.c.ID))
	store.Drop(tpName)
	if _, err := cfd.EncodeTableau(store, p.c, tpName); err != nil {
		return err
	}
	if !d.KeepArtifacts {
		defer store.Drop(tpName)
	}

	q := func(a string) string { return `"` + a + `"` }
	rhs := p.c.RHS[0]

	// The LHS match condition shared by both queries: each X attribute is
	// either the wildcard in the pattern or equal to the data value.
	var matchConds []string
	for _, a := range p.c.LHS {
		matchConds = append(matchConds,
			fmt.Sprintf("(tp.%s = '%s' OR t.%s = tp.%s)", q(a), cfd.WildcardToken, q(a), q(a)))
	}
	match := strings.Join(matchConds, " AND ")

	hasConst, hasVar := false, false
	for i := range p.c.Tableau {
		if p.c.Tableau[i].RHS[0].Wildcard {
			hasVar = true
		} else {
			hasConst = true
		}
	}

	// Qc — single-tuple violations: the tuple matches the LHS pattern but
	// its RHS value differs from the pattern's RHS constant.
	if hasConst {
		qc := fmt.Sprintf(
			"SELECT t.%s, tp.%s, tp.%s, t.%s FROM %s t, %s tp WHERE %s AND tp.%s <> '%s' AND t.%s <> tp.%s",
			sqleng.TIDColumn, sqleng.TIDColumn, q(rhs), q(rhs),
			q(dataName), q(tpName), match,
			q(rhs), cfd.WildcardToken, q(rhs), q(rhs))
		seen := map[relstore.TupleID]bool{}
		if err := d.stream(ctx, qc, func(row []types.Value) bool {
			id := relstore.TupleID(row[0].Int())
			rep.Violations = append(rep.Violations, Violation{
				CFDID:    p.c.ID,
				Kind:     SingleTuple,
				Pattern:  int(row[1].Int()),
				TupleID:  id,
				Attr:     rhs,
				Expected: row[2],
				Got:      row[3],
			})
			if !seen[id] {
				seen[id] = true
				st.SingleTuple++
			}
			return true
		}); err != nil {
			return fmt.Errorf("detect: Qc for %s: %w", p.c.ID, err)
		}
	}

	// Qv — multi-tuple violations, in two SQL steps: (1) group the tuples
	// matching some wildcard-RHS pattern by the embedded FD's LHS and keep
	// groups with more than one distinct RHS value; (2) join the groups
	// back to fetch the member tuples.
	if hasVar {
		coalesce := func(col string) string {
			return fmt.Sprintf("COALESCE(%s, '%s')", col, nullSentinel)
		}
		var groupCols, selCols []string
		for _, a := range p.c.LHS {
			groupCols = append(groupCols, "t."+q(a))
			selCols = append(selCols, fmt.Sprintf("t.%s AS %s", q(a), q(a)))
		}
		qv1 := fmt.Sprintf(
			"SELECT %s FROM %s t, %s tp WHERE %s AND tp.%s = '%s' GROUP BY %s HAVING COUNT(DISTINCT %s) > 1",
			strings.Join(selCols, ", "),
			q(dataName), q(tpName), match,
			q(rhs), cfd.WildcardToken,
			strings.Join(groupCols, ", "),
			coalesce("t."+q(rhs)))
		// Stream the violating group keys straight into the group table:
		// the engine yields each finished group without materializing a
		// result, and the table is the only buffer the keys ever occupy.
		gName := fmt.Sprintf("_vg_%d_%s", seq, sanitizeIdent(p.c.ID))
		store.Drop(gName)
		gTab := relstore.NewTable(schema.New(gName, p.c.LHS...))
		var insErr error
		if err := d.stream(ctx, qv1, func(row []types.Value) bool {
			if _, insErr = gTab.Insert(relstore.Tuple(row)); insErr != nil {
				return false
			}
			return true
		}); err != nil {
			return fmt.Errorf("detect: Qv step 1 for %s: %w", p.c.ID, err)
		}
		if insErr != nil {
			return insErr
		}
		if gTab.Len() == 0 {
			return nil
		}
		store.Put(gTab)
		if !d.KeepArtifacts {
			defer store.Drop(gName)
		}
		var joinConds []string
		for _, a := range p.c.LHS {
			joinConds = append(joinConds, fmt.Sprintf("%s = %s",
				coalesce("t."+q(a)), coalesce("g."+q(a))))
		}
		var lhsSel []string
		for _, a := range p.c.LHS {
			lhsSel = append(lhsSel, "t."+q(a))
		}
		qv2 := fmt.Sprintf(
			"SELECT t.%s, t.%s, %s FROM %s t, %s g WHERE %s",
			sqleng.TIDColumn, q(rhs), strings.Join(lhsSel, ", "),
			q(dataName), q(gName), strings.Join(joinConds, " AND "))
		// Assemble groups in Go as the join streams: key on the LHS vector.
		type acc struct {
			lhsVals   []types.Value
			members   []relstore.TupleID
			rhsOf     map[relstore.TupleID]string
			rhsCounts map[string]int
		}
		groups := map[string]*acc{}
		if err := d.stream(ctx, qv2, func(row []types.Value) bool {
			id := relstore.TupleID(row[0].Int())
			rhsVal := row[1]
			lhsVals := row[2:]
			key := lhsKey(lhsVals)
			g, ok := groups[key]
			if !ok {
				g = &acc{
					lhsVals:   lhsVals,
					rhsOf:     map[relstore.TupleID]string{},
					rhsCounts: map[string]int{},
				}
				groups[key] = g
			}
			g.members = append(g.members, id)
			rk := rhsVal.Key()
			g.rhsOf[id] = rk
			g.rhsCounts[rk]++
			return true
		}); err != nil {
			return fmt.Errorf("detect: Qv step 2 for %s: %w", p.c.ID, err)
		}
		n := 0
		for _, g := range groups {
			st.Groups++
			rep.Groups = append(rep.Groups, &Group{
				CFDID:       p.c.ID,
				Attr:        rhs,
				LHSAttrs:    append([]string(nil), p.c.LHS...),
				LHSValues:   g.lhsVals,
				Members:     g.members,
				RHSOf:       g.rhsOf,
				RHSCounts:   g.rhsCounts,
				MajorityKey: majorityKey(g.rhsCounts),
			})
			for _, id := range g.members {
				if n++; n%cancelStride == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				partners := len(g.members) - g.rhsCounts[g.rhsOf[id]]
				rep.Violations = append(rep.Violations, Violation{
					CFDID:    p.c.ID,
					Kind:     MultiTuple,
					Pattern:  -1,
					TupleID:  id,
					Attr:     rhs,
					Partners: partners,
				})
				st.MultiTuple++
			}
		}
	}
	return nil
}

// GenerateSQL returns the detection SQL that Detect would run for the given
// CFDs (after normalization and merging), without executing anything. The
// CLI's -explain mode and the docs use it.
func GenerateSQL(tab *relstore.Table, cfds []*cfd.CFD) ([]string, error) {
	preps, err := prepare(tab.Schema(), cfds)
	if err != nil {
		return nil, err
	}
	var out []string
	for seq, p := range preps {
		tpName := fmt.Sprintf("_tp_%d_%s", seq, sanitizeIdent(p.c.ID))
		q := func(a string) string { return `"` + a + `"` }
		rhs := p.c.RHS[0]
		var matchConds []string
		for _, a := range p.c.LHS {
			matchConds = append(matchConds,
				fmt.Sprintf("(tp.%s = '%s' OR t.%s = tp.%s)", q(a), cfd.WildcardToken, q(a), q(a)))
		}
		match := strings.Join(matchConds, " AND ")
		hasConst, hasVar := false, false
		for i := range p.c.Tableau {
			if p.c.Tableau[i].RHS[0].Wildcard {
				hasVar = true
			} else {
				hasConst = true
			}
		}
		if hasConst {
			out = append(out, fmt.Sprintf(
				"-- %s: Qc (single-tuple violations)\nSELECT t.* FROM %s t, %s tp WHERE %s AND tp.%s <> '%s' AND t.%s <> tp.%s",
				p.c.ID, q(tab.Schema().Name), q(tpName), match,
				q(rhs), cfd.WildcardToken, q(rhs), q(rhs)))
		}
		if hasVar {
			var groupCols []string
			for _, a := range p.c.LHS {
				groupCols = append(groupCols, "t."+q(a))
			}
			out = append(out, fmt.Sprintf(
				"-- %s: Qv (multi-tuple violation groups)\nSELECT %s FROM %s t, %s tp WHERE %s AND tp.%s = '%s' GROUP BY %s HAVING COUNT(DISTINCT COALESCE(t.%s, '%s')) > 1",
				p.c.ID, strings.Join(groupCols, ", "),
				q(tab.Schema().Name), q(tpName), match,
				q(rhs), cfd.WildcardToken,
				strings.Join(groupCols, ", "), q(rhs), nullSentinel))
		}
	}
	return out, nil
}

package detect

import (
	"context"
	"iter"
	"sync"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
)

// ViolationSeq is a stream of violations: the iterator yields each
// violation as the engine finds it, or one terminal non-nil error (bad
// CFDs, or ctx cancelled mid-scan). The set of yielded violations over a
// full, uncancelled iteration equals the blocking Report's Violations —
// only the order differs, since workers emit concurrently.
type ViolationSeq = iter.Seq2[Violation, error]

// Streamer is implemented by detectors that can emit violations
// incrementally instead of materializing a full Report. Consumers that
// stop iterating early cancel the underlying scan; no goroutines leak.
type Streamer interface {
	DetectStream(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) ViolationSeq
}

// SnapshotStreamer is the snapshot-pinned face of Streamer: the stream
// evaluates exactly the given table version, so the caller can surface the
// version alongside the violations (the HTTP streaming endpoint stamps its
// terminal line with it).
type SnapshotStreamer interface {
	DetectStreamSnapshot(ctx context.Context, snap *relstore.Snapshot, cfds []*cfd.CFD) ViolationSeq
}

// streamBuffer is the bounded channel capacity between the scan workers
// and the consumer: deep enough to decouple producer bursts from a slow
// consumer, small enough that a cancelled consumer wastes little work.
const streamBuffer = 256

// DetectStream implements Streamer over the sharded columnar evaluation.
// Single-tuple violations are emitted while the scan chunks are still
// running — on a large table the first violation reaches the consumer long
// before the pass completes — and multi-tuple violations follow as each
// grouping shard flushes. The stream never materializes a Report.
func (d ColumnarDetector) DetectStream(ctx context.Context, tab *relstore.Table, cfds []*cfd.CFD) ViolationSeq {
	return d.DetectStreamSnapshot(ctx, tab.Snapshot(), cfds)
}

// DetectStreamSnapshot implements SnapshotStreamer: the same sharded
// streaming evaluation over one pinned table version.
func (d ColumnarDetector) DetectStreamSnapshot(ctx context.Context, rsnap *relstore.Snapshot, cfds []*cfd.CFD) ViolationSeq {
	return func(yield func(Violation, error) bool) {
		preps, err := prepare(rsnap.Schema(), cfds)
		if err != nil {
			yield(Violation{}, err)
			return
		}
		snap := rsnap.Columnar()
		cps := make([]colPrep, len(preps))
		for i, p := range preps {
			cps[i] = newColPrep(p, snap)
		}
		workers := clampWorkers(d.Workers, snap.Len())
		if workers < 1 {
			workers = 1
		}
		// cancel stops the producers when the consumer breaks out of the
		// loop early (range-over-func runs deferred calls on break).
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ch := make(chan Violation, streamBuffer)
		go func() {
			defer close(ch)
			streamSharded(sctx, snap, cps, workers, ch)
		}()
		for v := range ch {
			// The producers stop and close ch on cancellation; checking
			// here as well stops the replay without draining the buffer.
			if sctx.Err() != nil {
				break
			}
			if !yield(v, nil) {
				return
			}
		}
		// The channel closed: either the scan finished or ctx was
		// cancelled. Surface the cancellation as the terminal error.
		if err := ctx.Err(); err != nil {
			yield(Violation{}, err)
		}
	}
}

// streamSend delivers one violation to the consumer, or reports false when
// the stream is cancelled.
func streamSend(ctx context.Context, ch chan<- Violation, v Violation) bool {
	select {
	case ch <- v:
		return true
	case <-ctx.Done():
		return false
	}
}

// streamSharded runs the same two-phase sharded evaluation as
// detectShardedColumnar, but emits violations into ch as they are found
// instead of accumulating a Report. Phase 1 chunk scanners emit
// single-tuple violations inline while routing variable-pattern matches to
// shards; phase 2 shard workers emit each dirty group's multi-tuple
// violations as the group flushes.
func streamSharded(ctx context.Context, snap *relstore.Columnar, cps []colPrep, workers int, ch chan<- Violation) {
	ids := snap.IDs()
	shards := workers
	bounds := chunkBounds(len(ids), workers)
	chunks := make([]colChunkResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			streamScanChunk(ctx, &chunks[w], cps, ids, bounds[w], bounds[w+1], shards, ch)
		}(w)
	}
	wg.Wait()
	if ctx.Err() != nil {
		return
	}
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			streamGroupShard(ctx, cps, chunks, s, ids, ch)
		}(s)
	}
	wg.Wait()
}

// streamScanChunk is the streaming variant of scanChunkColumnar: identical
// routing, but single-tuple violations go straight to the channel.
func streamScanChunk(ctx context.Context, out *colChunkResult, cps []colPrep,
	ids []relstore.TupleID, lo, hi, shards int, ch chan<- Violation) {
	out.routed = make([][][]int32, len(cps))
	keyBufs := make([][]byte, len(cps))
	for ci := range cps {
		out.routed[ci] = make([][]int32, shards)
		keyBufs[ci] = make([]byte, 4*len(cps[ci].lhsCols))
	}
	var scratch []Violation
	for idx := lo; idx < hi; idx++ {
		if (idx-lo)%cancelStride == 0 && ctx.Err() != nil {
			return
		}
		id := ids[idx]
		for ci := range cps {
			cp := &cps[ci]
			scratch, _ = appendConstViolationsColumnar(scratch[:0], cp, idx, id)
			for _, v := range scratch {
				if !streamSend(ctx, ch, v) {
					return
				}
			}
			if matchesVarColumnar(cp, idx) {
				packLHSCodes(keyBufs[ci], cp, idx)
				s := shardOfBytes(keyBufs[ci], shards)
				out.routed[ci][s] = append(out.routed[ci][s], int32(idx))
			}
		}
	}
}

// streamGroupShard is the streaming variant of groupShardColumnar: groups
// accumulate exactly as in the blocking path, and each dirty group's
// violations are emitted as it flushes.
func streamGroupShard(ctx context.Context, cps []colPrep,
	chunks []colChunkResult, shard int, ids []relstore.TupleID, ch chan<- Violation) {
	n := 0
	for ci := range cps {
		cp := &cps[ci]
		groups := map[string]*groupAcc{}
		keyBuf := make([]byte, 4*len(cp.lhsCols))
		for w := range chunks {
			for _, idx := range chunks[w].routed[ci][shard] {
				if n++; n%cancelStride == 0 && ctx.Err() != nil {
					return
				}
				packLHSCodes(keyBuf, cp, int(idx))
				addToGroupColumnar(groups, keyBuf, cp, int(idx), ids[idx])
			}
		}
		var viols []Violation
		_, viols, _, _ = flushGroups(groups, cp.p, nil, nil)
		for _, v := range viols {
			if !streamSend(ctx, ch, v) {
				return
			}
		}
	}
}

package detect

import (
	"fmt"
	"sort"
	"sync"

	"semandaq/internal/relstore"
)

// EngineKind identifies one of the interchangeable detection engines. All
// registered engines produce byte-identical reports; they differ only in
// evaluation strategy (generated SQL, row scan, columnar scan, sharded
// columnar scan).
type EngineKind int

// The built-in engines. The constants double as the wire/CLI order, so
// their values are part of the public surface (core re-exports them).
const (
	// SQLEngine generates and runs the two SQL queries per CFD (the
	// paper's technique).
	SQLEngine EngineKind = iota
	// NativeEngine is the single-threaded in-memory row scan.
	NativeEngine
	// ParallelEngine shards the columnar evaluation across workers.
	ParallelEngine
	// ColumnarEngine is the sequential columnar-snapshot scan.
	ColumnarEngine
)

// String names the engine as the CLI/HTTP surface spells it.
func (k EngineKind) String() string {
	switch k {
	case SQLEngine:
		return "sql"
	case NativeEngine:
		return "native"
	case ParallelEngine:
		return "parallel"
	case ColumnarEngine:
		return "columnar"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// ParseEngineKind maps the CLI/HTTP engine names ("sql", "native",
// "parallel", "columnar") to an EngineKind.
func ParseEngineKind(s string) (EngineKind, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	for k := range registry {
		if k.String() == s {
			return k, nil
		}
	}
	return SQLEngine, fmt.Errorf("semandaq: unknown detection engine %q (want one of %v)", s, kindsLocked())
}

// Config carries the per-request parameters an engine factory may consume.
// Engines ignore fields they do not need.
type Config struct {
	// Workers is the goroutine count for sharded engines; <= 0 means
	// runtime.GOMAXPROCS.
	Workers int
	// Store must contain the data table for the SQL engine (the generated
	// queries join against tableau tables materialized in it).
	Store *relstore.Store
}

// Factory builds a detector for one request.
type Factory func(cfg Config) Detector

var (
	regMu    sync.RWMutex
	registry = map[EngineKind]Factory{}
)

// Register installs (or replaces) an engine factory. The built-in engines
// register themselves; tests and extensions may add more kinds.
func Register(kind EngineKind, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[kind] = f
}

// NewDetector builds the detector for an engine kind from the registry.
func NewDetector(kind EngineKind, cfg Config) (Detector, error) {
	regMu.RLock()
	f, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("semandaq: no detection engine registered for %v", kind)
	}
	return f(cfg), nil
}

// EngineKinds lists the registered engine kinds in ascending order — the
// cache-invalidation and matrix-test iteration order.
func EngineKinds() []EngineKind {
	regMu.RLock()
	defer regMu.RUnlock()
	return kindsLocked()
}

func kindsLocked() []EngineKind {
	out := make([]EngineKind, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func init() {
	Register(SQLEngine, func(cfg Config) Detector { return NewSQLDetector(cfg.Store) })
	Register(NativeEngine, func(cfg Config) Detector { return NativeDetector{} })
	Register(ParallelEngine, func(cfg Config) Detector { return ParallelDetector{Workers: cfg.Workers} })
	Register(ColumnarEngine, func(cfg Config) Detector { return ColumnarDetector{Workers: 1} })
}

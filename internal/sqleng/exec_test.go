package sqleng

import (
	"fmt"
	"strings"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// newTestEngine builds a store with the paper's customer relation loaded.
func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("customer", "NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"))
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"Mike", "UK", "Edinburgh", "EH2 4SD", "Mayfield", "44", "131"},
		{"Rick", "UK", "Edinburgh", "EH2 4SD", "Crichton", "44", "131"},
		{"Joe", "US", "New York", "01202", "Mtn Ave", "1", "908"},
		{"Ann", "UK", "London", "SW1A", "Downing", "44", "20"},
		{"Ben", "US", "Chicago", "60601", "Wacker", "1", "312"},
	}
	for _, r := range rows {
		row := make(relstore.Tuple, len(r))
		for i, f := range r {
			row[i] = types.Parse(f)
		}
		tab.MustInsert(row)
	}
	return New(store)
}

func rowStrings(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestSelectStar(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT * FROM customer")
	if len(res.Columns) != 7 {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Columns[0] != "NAME" {
		t.Errorf("col0 = %q", res.Columns[0])
	}
	if len(res.Rows) != 5 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestSelectWhere(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT NAME FROM customer WHERE CNT = 'UK' AND CITY = 'Edinburgh'")
	got := rowStrings(res)
	if len(got) != 2 || got[0] != "Mike" || got[1] != "Rick" {
		t.Errorf("rows = %v", got)
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT NAME AS who, CC + 1 AS cc1 FROM customer WHERE NAME = 'Joe'")
	if res.Columns[0] != "who" || res.Columns[1] != "cc1" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][1].Int() != 2 {
		t.Errorf("cc1 = %v", res.Rows[0][1])
	}
}

func TestSelectTIDPseudoColumn(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT t._tid, t.NAME FROM customer t WHERE t.NAME = 'Rick'")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", rowStrings(res))
	}
	if res.Rows[0][0].Kind() != types.KindInt {
		t.Errorf("_tid kind = %v", res.Rows[0][0].Kind())
	}
	// _tid must not leak through *.
	star := e.MustQuery("SELECT * FROM customer")
	for _, c := range star.Columns {
		if c == TIDColumn {
			t.Error("_tid leaked into *")
		}
	}
}

func TestComparisonOperators(t *testing.T) {
	e := newTestEngine(t)
	cases := []struct {
		sql  string
		want int
	}{
		{"SELECT * FROM customer WHERE CC = 44", 3},
		{"SELECT * FROM customer WHERE CC <> 44", 2},
		{"SELECT * FROM customer WHERE CC < 44", 2},
		{"SELECT * FROM customer WHERE CC <= 44", 5},
		{"SELECT * FROM customer WHERE CC > 1", 3},
		{"SELECT * FROM customer WHERE CC >= 44", 3},
		{"SELECT * FROM customer WHERE NAME LIKE 'M%'", 1},
		{"SELECT * FROM customer WHERE NAME LIKE '_ick'", 1},
		{"SELECT * FROM customer WHERE NAME NOT LIKE '%e%'", 2},
		{"SELECT * FROM customer WHERE CITY IN ('London', 'Chicago')", 2},
		{"SELECT * FROM customer WHERE CC BETWEEN 2 AND 50", 3},
		{"SELECT * FROM customer WHERE AC NOT BETWEEN 100 AND 1000", 1},
	}
	for _, c := range cases {
		res := e.MustQuery(c.sql)
		if len(res.Rows) != c.want {
			t.Errorf("%s: %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	tab.MustInsert(relstore.Tuple{types.NewInt(1), types.Null})
	tab.MustInsert(relstore.Tuple{types.NewInt(2), types.NewInt(5)})
	e := New(store)

	// NULL comparisons never match.
	if res := e.MustQuery("SELECT * FROM r WHERE B = 5"); len(res.Rows) != 1 {
		t.Errorf("B = 5 rows = %d", len(res.Rows))
	}
	if res := e.MustQuery("SELECT * FROM r WHERE B <> 5"); len(res.Rows) != 0 {
		t.Errorf("B <> 5 rows = %d", len(res.Rows))
	}
	if res := e.MustQuery("SELECT * FROM r WHERE B IS NULL"); len(res.Rows) != 1 {
		t.Errorf("IS NULL rows = %d", len(res.Rows))
	}
	if res := e.MustQuery("SELECT * FROM r WHERE B IS NOT NULL"); len(res.Rows) != 1 {
		t.Errorf("IS NOT NULL rows = %d", len(res.Rows))
	}
	// OR with one true side survives a NULL.
	if res := e.MustQuery("SELECT * FROM r WHERE B = 999 OR A = 1"); len(res.Rows) != 1 {
		t.Errorf("OR rows = %d", len(res.Rows))
	}
	// NOT(NULL) is NULL → filtered out.
	if res := e.MustQuery("SELECT * FROM r WHERE NOT (B = 5)"); len(res.Rows) != 0 {
		t.Errorf("NOT rows = %d", len(res.Rows))
	}
	// IN with NULL in list: no match yields NULL, not FALSE.
	if res := e.MustQuery("SELECT * FROM r WHERE A NOT IN (2, NULL)"); len(res.Rows) != 0 {
		t.Errorf("NOT IN with NULL rows = %d", len(res.Rows))
	}
}

func TestAggregatesGlobal(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT COUNT(*), COUNT(DISTINCT CNT), MIN(CC), MAX(AC), SUM(CC), AVG(CC) FROM customer")
	row := res.Rows[0]
	if row[0].Int() != 5 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if row[1].Int() != 2 {
		t.Errorf("COUNT(DISTINCT CNT) = %v", row[1])
	}
	if row[2].Int() != 1 {
		t.Errorf("MIN = %v", row[2])
	}
	if row[3].Int() != 908 {
		t.Errorf("MAX = %v", row[3])
	}
	if row[4].Int() != 44*3+2 {
		t.Errorf("SUM = %v", row[4])
	}
	if got := row[5].Float(); got != (44.0*3+2)/5 {
		t.Errorf("AVG = %v", got)
	}
}

func TestAggregatesEmptyInput(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT COUNT(*), SUM(CC), MIN(CC) FROM customer WHERE CNT = 'FR'")
	row := res.Rows[0]
	if row[0].Int() != 0 {
		t.Errorf("COUNT over empty = %v", row[0])
	}
	if !row[1].IsNull() || !row[2].IsNull() {
		t.Errorf("SUM/MIN over empty = %v %v", row[1], row[2])
	}
}

func TestGroupByHaving(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery(`
		SELECT CNT, COUNT(*) AS n FROM customer
		GROUP BY CNT HAVING COUNT(*) >= 2 ORDER BY CNT`)
	got := rowStrings(res)
	if len(got) != 2 || got[0] != "UK|3" || got[1] != "US|2" {
		t.Errorf("rows = %v", got)
	}
}

func TestGroupByMultiKey(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery(`
		SELECT CNT, ZIP, COUNT(DISTINCT STR) AS streets FROM customer
		GROUP BY CNT, ZIP HAVING COUNT(DISTINCT STR) > 1`)
	got := rowStrings(res)
	if len(got) != 1 || got[0] != "UK|EH2 4SD|2" {
		t.Errorf("rows = %v", got)
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT NAME FROM customer ORDER BY NAME")
	got := rowStrings(res)
	want := []string{"Ann", "Ben", "Joe", "Mike", "Rick"}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("order %d = %q, want %q", i, got[i], w)
		}
	}
	res = e.MustQuery("SELECT NAME FROM customer ORDER BY NAME DESC LIMIT 2")
	got = rowStrings(res)
	if len(got) != 2 || got[0] != "Rick" || got[1] != "Mike" {
		t.Errorf("desc limit = %v", got)
	}
	res = e.MustQuery("SELECT NAME FROM customer ORDER BY NAME LIMIT 2 OFFSET 4")
	got = rowStrings(res)
	if len(got) != 1 || got[0] != "Rick" {
		t.Errorf("offset = %v", got)
	}
	res = e.MustQuery("SELECT NAME FROM customer ORDER BY NAME OFFSET 99")
	if len(res.Rows) != 0 {
		t.Errorf("big offset rows = %d", len(res.Rows))
	}
}

func TestOrderByOutputAlias(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT CNT, COUNT(*) AS n FROM customer GROUP BY CNT ORDER BY n DESC")
	got := rowStrings(res)
	if got[0] != "UK|3" {
		t.Errorf("rows = %v", got)
	}
}

func TestDistinct(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT DISTINCT CNT FROM customer ORDER BY CNT")
	got := rowStrings(res)
	if len(got) != 2 || got[0] != "UK" || got[1] != "US" {
		t.Errorf("rows = %v", got)
	}
}

func TestCommaJoinWithHash(t *testing.T) {
	e := newTestEngine(t)
	// Self-join: pairs in the same CNT+ZIP with different STR — the shape
	// of the paper's multi-tuple violation query.
	res := e.MustQuery(`
		SELECT t1.NAME, t2.NAME FROM customer t1, customer t2
		WHERE t1.CNT = t2.CNT AND t1.ZIP = t2.ZIP AND t1.STR <> t2.STR`)
	if len(res.Rows) != 2 { // (Mike,Rick) and (Rick,Mike)
		t.Errorf("rows = %v", rowStrings(res))
	}
}

func TestInnerJoinOn(t *testing.T) {
	store := relstore.NewStore()
	c, _ := store.Create(schema.New("c", "ID", "NAME"))
	o, _ := store.Create(schema.New("o", "CID", "ITEM"))
	c.MustInsert(relstore.Tuple{types.NewInt(1), types.NewString("a")})
	c.MustInsert(relstore.Tuple{types.NewInt(2), types.NewString("b")})
	o.MustInsert(relstore.Tuple{types.NewInt(1), types.NewString("x")})
	o.MustInsert(relstore.Tuple{types.NewInt(1), types.NewString("y")})
	o.MustInsert(relstore.Tuple{types.NewInt(3), types.NewString("z")})
	e := New(store)
	res := e.MustQuery("SELECT c.NAME, o.ITEM FROM c JOIN o ON c.ID = o.CID ORDER BY o.ITEM")
	got := rowStrings(res)
	if len(got) != 2 || got[0] != "a|x" || got[1] != "a|y" {
		t.Errorf("rows = %v", got)
	}
}

func TestLeftJoin(t *testing.T) {
	store := relstore.NewStore()
	c, _ := store.Create(schema.New("c", "ID", "NAME"))
	o, _ := store.Create(schema.New("o", "CID", "ITEM"))
	c.MustInsert(relstore.Tuple{types.NewInt(1), types.NewString("a")})
	c.MustInsert(relstore.Tuple{types.NewInt(2), types.NewString("b")})
	o.MustInsert(relstore.Tuple{types.NewInt(1), types.NewString("x")})
	e := New(store)
	res := e.MustQuery("SELECT c.NAME, o.ITEM FROM c LEFT JOIN o ON c.ID = o.CID ORDER BY c.NAME")
	got := rowStrings(res)
	if len(got) != 2 || got[0] != "a|x" || got[1] != "b|NULL" {
		t.Errorf("rows = %v", got)
	}
}

func TestCrossJoinNoKeys(t *testing.T) {
	store := relstore.NewStore()
	a, _ := store.Create(schema.New("a", "X"))
	b, _ := store.Create(schema.New("b", "Y"))
	for i := 0; i < 3; i++ {
		a.MustInsert(relstore.Tuple{types.NewInt(int64(i))})
		b.MustInsert(relstore.Tuple{types.NewInt(int64(i))})
	}
	e := New(store)
	res := e.MustQuery("SELECT * FROM a, b")
	if len(res.Rows) != 9 {
		t.Errorf("cross join rows = %d", len(res.Rows))
	}
	// Non-equi condition still applies via residual filter.
	res = e.MustQuery("SELECT * FROM a, b WHERE a.X < b.Y")
	if len(res.Rows) != 3 {
		t.Errorf("filtered cross join rows = %d", len(res.Rows))
	}
}

func TestJoinThreeTables(t *testing.T) {
	store := relstore.NewStore()
	for _, n := range []string{"a", "b", "c"} {
		tab, _ := store.Create(schema.New(n, "K", "V"+n))
		for i := 0; i < 4; i++ {
			tab.MustInsert(relstore.Tuple{types.NewInt(int64(i)), types.NewString(fmt.Sprintf("%s%d", n, i))})
		}
	}
	e := New(store)
	res := e.MustQuery(`SELECT a.Va, b.Vb, c.Vc FROM a, b, c
		WHERE a.K = b.K AND b.K = c.K AND a.K >= 2 ORDER BY a.Va`)
	got := rowStrings(res)
	if len(got) != 2 || got[0] != "a2|b2|c2" || got[1] != "a3|b3|c3" {
		t.Errorf("rows = %v", got)
	}
}

func TestScalarFunctions(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery(`SELECT UPPER(NAME), LOWER(CNT), LENGTH(NAME),
		SUBSTR(NAME, 1, 2), COALESCE(NULL, NAME), CONCAT(NAME, '-', CNT), ABS(-5)
		FROM customer WHERE NAME = 'Mike'`)
	row := res.Rows[0]
	want := []string{"MIKE", "uk", "4", "Mi", "Mike", "Mike-UK", "5"}
	for i, w := range want {
		if row[i].String() != w {
			t.Errorf("func %d = %v, want %q", i, row[i], w)
		}
	}
}

func TestCaseExpression(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery(`SELECT NAME, CASE WHEN CC = 44 THEN 'gb' WHEN CC = 1 THEN 'us' ELSE 'other' END AS tag
		FROM customer ORDER BY NAME`)
	got := rowStrings(res)
	if got[0] != "Ann|gb" || got[2] != "Joe|us" {
		t.Errorf("rows = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery("SELECT 2 + 3 * 4, 10 / 3, 10 % 3, 1.5 + 1, -(2 - 5)")
	row := res.Rows[0]
	if row[0].Int() != 14 || row[1].Int() != 3 || row[2].Int() != 1 {
		t.Errorf("ints = %v", row)
	}
	if row[3].Float() != 2.5 {
		t.Errorf("float = %v", row[3])
	}
	if row[4].Int() != 3 {
		t.Errorf("neg = %v", row[4])
	}
}

func TestDivisionByZero(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Query("SELECT 1 / 0"); err == nil {
		t.Error("expected division-by-zero error")
	}
	if _, err := e.Query("SELECT 1 % 0"); err == nil {
		t.Error("expected modulo-by-zero error")
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	e := newTestEngine(t)
	res, err := e.Query("INSERT INTO customer VALUES ('Zed', 'NL', 'Amsterdam', '1011', 'Dam', 31, 20)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Errorf("affected = %d", res.Affected)
	}
	res, err = e.Query("INSERT INTO customer (NAME, CNT) VALUES ('Part', 'DE')")
	if err != nil {
		t.Fatal(err)
	}
	check := e.MustQuery("SELECT CITY FROM customer WHERE NAME = 'Part'")
	if !check.Rows[0][0].IsNull() {
		t.Errorf("unspecified column = %v", check.Rows[0][0])
	}

	res, err = e.Query("UPDATE customer SET CITY = 'Rotterdam' WHERE NAME = 'Zed'")
	if err != nil || res.Affected != 1 {
		t.Fatalf("update: %v affected=%d", err, res.Affected)
	}
	check = e.MustQuery("SELECT CITY FROM customer WHERE NAME = 'Zed'")
	if check.Rows[0][0].Str() != "Rotterdam" {
		t.Errorf("city = %v", check.Rows[0][0])
	}

	res, err = e.Query("DELETE FROM customer WHERE CNT = 'US'")
	if err != nil || res.Affected != 2 {
		t.Fatalf("delete: %v affected=%d", err, res.Affected)
	}
	if n := e.MustQuery("SELECT COUNT(*) FROM customer").Rows[0][0].Int(); n != 5 {
		t.Errorf("count after delete = %d", n)
	}
}

func TestUpdateUsesOldValues(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	tab.MustInsert(relstore.Tuple{types.NewInt(1), types.NewInt(2)})
	e := New(store)
	if _, err := e.Query("UPDATE r SET A = B, B = A"); err != nil {
		t.Fatal(err)
	}
	res := e.MustQuery("SELECT A, B FROM r")
	if res.Rows[0][0].Int() != 2 || res.Rows[0][1].Int() != 1 {
		t.Errorf("swap failed: %v", rowStrings(res))
	}
}

func TestCreateDropTable(t *testing.T) {
	e := New(relstore.NewStore())
	if _, err := e.Query("CREATE TABLE t (a INT, b STRING)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("INSERT INTO t VALUES (1, 'x')"); err != nil {
		t.Fatal(err)
	}
	if n := e.MustQuery("SELECT COUNT(*) FROM t").Rows[0][0].Int(); n != 1 {
		t.Errorf("count = %d", n)
	}
	if _, err := e.Query("CREATE TABLE t (a INT)"); err == nil {
		t.Error("duplicate create should fail")
	}
	if _, err := e.Query("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT * FROM t"); err == nil {
		t.Error("select after drop should fail")
	}
	if _, err := e.Query("DROP TABLE t"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestExecErrors(t *testing.T) {
	e := newTestEngine(t)
	cases := []string{
		"SELECT nope FROM customer",
		"SELECT * FROM nope",
		"SELECT t1.NAME FROM customer t1, customer t2 WHERE NAME = 'x'", // ambiguous
		"INSERT INTO customer VALUES (1)",
		"INSERT INTO customer (NOPE) VALUES (1)",
		"UPDATE customer SET NOPE = 1",
		"UPDATE nope SET a = 1",
		"DELETE FROM nope",
		"SELECT SUM(NAME) FROM customer",
		"SELECT COUNT(*) + MAX(COUNT(*)) FROM customer", // nested aggregate
		"SELECT * FROM customer WHERE SUM(CC) > 1",      // aggregate in WHERE
		"SELECT *",
	}
	for _, sql := range cases {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Query("SELECT NAME FROM customer WHERE COUNT(*) > 1"); err == nil {
		t.Error("aggregate in WHERE should be rejected")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"a%", "bac", false},
		{"%c", "abc", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%b%", "abc", true},
		{"", "", true},
		{"", "x", false},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"__", "ab", true},
		{"__", "a", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v", c.pattern, c.s, got)
		}
	}
}

func TestSelectNoFrom(t *testing.T) {
	e := New(relstore.NewStore())
	res := e.MustQuery("SELECT 1 + 1 AS two, 'x'")
	if res.Rows[0][0].Int() != 2 || res.Rows[0][1].Str() != "x" {
		t.Errorf("rows = %v", rowStrings(res))
	}
	if res.Columns[0] != "two" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestGroupByExpression(t *testing.T) {
	e := newTestEngine(t)
	res := e.MustQuery(`SELECT SUBSTR(NAME, 1, 1) AS initial, COUNT(*) FROM customer
		GROUP BY SUBSTR(NAME, 1, 1) ORDER BY initial`)
	if len(res.Rows) != 5 {
		t.Errorf("rows = %v", rowStrings(res))
	}
}

func TestPatternTableauJoinShape(t *testing.T) {
	// The exact shape of the paper's constant-violation detection query:
	// a customer row joined to a tableau row via "don't care or equal".
	store := relstore.NewStore()
	cust, _ := store.Create(schema.New("customer", "CNT", "ZIP", "STR"))
	tp, _ := store.Create(schema.New("tp", "CNT", "ZIP", "STR"))
	rows := [][]string{
		{"UK", "EH2", "Mayfield"},
		{"UK", "EH2", "Crichton"},
		{"US", "07974", "Mtn Ave"},
	}
	for _, r := range rows {
		cust.MustInsert(relstore.Tuple{types.NewString(r[0]), types.NewString(r[1]), types.NewString(r[2])})
	}
	// Pattern (UK, _, _) on LHS — matches UK rows only.
	tp.MustInsert(relstore.Tuple{types.NewString("UK"), types.NewString("_"), types.NewString("_")})
	e := New(store)
	res := e.MustQuery(`
		SELECT t.CNT, t.ZIP, t.STR FROM customer t, tp
		WHERE (tp.CNT = '_' OR t.CNT = tp.CNT)
		  AND (tp.ZIP = '_' OR t.ZIP = tp.ZIP)`)
	if len(res.Rows) != 2 {
		t.Errorf("pattern match rows = %v", rowStrings(res))
	}
}

func TestRunPreparsedStatement(t *testing.T) {
	e := newTestEngine(t)
	st, err := Parse("SELECT COUNT(*) FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(st)
	if err != nil || res.Rows[0][0].Int() != 5 {
		t.Errorf("Run: %v %v", res, err)
	}
}

func TestMustQueryPanics(t *testing.T) {
	e := newTestEngine(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e.MustQuery("SELECT nope FROM customer")
}

package sqleng

import (
	"fmt"
	"math/rand"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestFilterAgainstReference runs randomly generated WHERE clauses through
// the engine and checks the result against a direct in-Go evaluation of
// the same predicate over the same rows.
func TestFilterAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B", "C"))
	var rows []relstore.Tuple
	for i := 0; i < 200; i++ {
		row := relstore.Tuple{
			types.NewInt(int64(rng.Intn(10))),
			types.NewInt(int64(rng.Intn(10))),
			types.NewString(fmt.Sprintf("s%d", rng.Intn(5))),
		}
		if rng.Intn(10) == 0 {
			row[1] = types.Null
		}
		rows = append(rows, row)
		tab.MustInsert(row)
	}
	e := New(store)

	type pred struct {
		sql string
		ref func(row relstore.Tuple) bool
	}
	notNull := func(v types.Value) bool { return !v.IsNull() }
	preds := []pred{
		{"A = 5", func(r relstore.Tuple) bool { return r[0].Equal(types.NewInt(5)) }},
		{"A < B", func(r relstore.Tuple) bool { return notNull(r[1]) && r[0].Compare(r[1]) < 0 }},
		{"A <= 3 AND B >= 5", func(r relstore.Tuple) bool {
			return r[0].Int() <= 3 && notNull(r[1]) && r[1].Int() >= 5
		}},
		{"A = 1 OR C = 's2'", func(r relstore.Tuple) bool {
			return r[0].Int() == 1 || r[2].Str() == "s2"
		}},
		{"B IS NULL", func(r relstore.Tuple) bool { return r[1].IsNull() }},
		{"B IS NOT NULL AND B <> 4", func(r relstore.Tuple) bool {
			return notNull(r[1]) && r[1].Int() != 4
		}},
		{"A IN (1, 3, 5)", func(r relstore.Tuple) bool {
			n := r[0].Int()
			return n == 1 || n == 3 || n == 5
		}},
		{"A BETWEEN 2 AND 6", func(r relstore.Tuple) bool {
			return r[0].Int() >= 2 && r[0].Int() <= 6
		}},
		{"C LIKE 's%'", func(r relstore.Tuple) bool { return true }},
		{"NOT (A = 0)", func(r relstore.Tuple) bool { return r[0].Int() != 0 }},
		{"A + B = 9", func(r relstore.Tuple) bool {
			return notNull(r[1]) && r[0].Int()+r[1].Int() == 9
		}},
		{"A * 2 > B", func(r relstore.Tuple) bool {
			return notNull(r[1]) && r[0].Int()*2 > r[1].Int()
		}},
		{"CASE WHEN A > 5 THEN TRUE ELSE FALSE END", func(r relstore.Tuple) bool {
			return r[0].Int() > 5
		}},
	}
	for _, p := range preds {
		res, err := e.Query("SELECT COUNT(*) FROM r WHERE " + p.sql)
		if err != nil {
			t.Fatalf("%s: %v", p.sql, err)
		}
		want := 0
		for _, row := range rows {
			if p.ref(row) {
				want++
			}
		}
		if got := res.Rows[0][0].Int(); got != int64(want) {
			t.Errorf("WHERE %s: engine %d, reference %d", p.sql, got, want)
		}
	}
}

// TestGroupByAgainstReference cross-checks aggregates against direct maps.
func TestGroupByAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "G", "X"))
	sums := map[int64]int64{}
	counts := map[int64]int64{}
	distinct := map[int64]map[int64]bool{}
	for i := 0; i < 500; i++ {
		g := int64(rng.Intn(7))
		x := int64(rng.Intn(20))
		sums[g] += x
		counts[g]++
		if distinct[g] == nil {
			distinct[g] = map[int64]bool{}
		}
		distinct[g][x] = true
		tab.MustInsert(relstore.Tuple{types.NewInt(g), types.NewInt(x)})
	}
	e := New(store)
	res := e.MustQuery("SELECT G, COUNT(*), SUM(X), COUNT(DISTINCT X), MIN(X), MAX(X), AVG(X) FROM r GROUP BY G ORDER BY G")
	if len(res.Rows) != len(counts) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(counts))
	}
	for _, row := range res.Rows {
		g := row[0].Int()
		if row[1].Int() != counts[g] {
			t.Errorf("G=%d COUNT = %v, want %d", g, row[1], counts[g])
		}
		if row[2].Int() != sums[g] {
			t.Errorf("G=%d SUM = %v, want %d", g, row[2], sums[g])
		}
		if row[3].Int() != int64(len(distinct[g])) {
			t.Errorf("G=%d COUNT DISTINCT = %v, want %d", g, row[3], len(distinct[g]))
		}
		if avg := row[6].Float(); avg != float64(sums[g])/float64(counts[g]) {
			t.Errorf("G=%d AVG = %v", g, avg)
		}
	}
}

// TestJoinAgainstReference cross-checks the hash join against a
// nested-loop reference over random key distributions.
func TestJoinAgainstReference(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(200 + trial)))
		store := relstore.NewStore()
		l, _ := store.Create(schema.New("l", "K", "V"))
		r, _ := store.Create(schema.New("r", "K", "W"))
		var lrows, rrows []relstore.Tuple
		for i := 0; i < 50+rng.Intn(100); i++ {
			row := relstore.Tuple{types.NewInt(int64(rng.Intn(12))), types.NewInt(int64(i))}
			lrows = append(lrows, row)
			l.MustInsert(row)
		}
		for i := 0; i < 50+rng.Intn(100); i++ {
			row := relstore.Tuple{types.NewInt(int64(rng.Intn(12))), types.NewInt(int64(i))}
			if rng.Intn(15) == 0 {
				row[0] = types.Null // NULL keys never join
			}
			rrows = append(rrows, row)
			r.MustInsert(row)
		}
		want := 0
		for _, lr := range lrows {
			for _, rr := range rrows {
				if !lr[0].IsNull() && !rr[0].IsNull() && lr[0].Equal(rr[0]) {
					want++
				}
			}
		}
		e := New(store)
		res := e.MustQuery("SELECT COUNT(*) FROM l, r WHERE l.K = r.K")
		if got := res.Rows[0][0].Int(); got != int64(want) {
			t.Fatalf("trial %d: join count %d, want %d", trial, got, want)
		}
		// LEFT JOIN row count: inner matches + unmatched left rows.
		unmatched := 0
		for _, lr := range lrows {
			m := false
			for _, rr := range rrows {
				if !lr[0].IsNull() && !rr[0].IsNull() && lr[0].Equal(rr[0]) {
					m = true
					break
				}
			}
			if !m {
				unmatched++
			}
		}
		res = e.MustQuery("SELECT COUNT(*) FROM l LEFT JOIN r ON l.K = r.K")
		if got := res.Rows[0][0].Int(); got != int64(want+unmatched) {
			t.Fatalf("trial %d: left join count %d, want %d", trial, got, want+unmatched)
		}
	}
}

// TestOrderByIsStableSort pins ORDER BY's tie behaviour: equal keys keep
// input order (the executor uses a stable sort).
func TestOrderByIsStableSort(t *testing.T) {
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "K", "Seq"))
	for i := 0; i < 20; i++ {
		tab.MustInsert(relstore.Tuple{types.NewInt(int64(i % 3)), types.NewInt(int64(i))})
	}
	e := New(store)
	res := e.MustQuery("SELECT K, Seq FROM r ORDER BY K")
	lastSeq := map[int64]int64{}
	for _, row := range res.Rows {
		k, seq := row[0].Int(), row[1].Int()
		if prev, ok := lastSeq[k]; ok && seq < prev {
			t.Fatalf("unstable order within key %d: %d after %d", k, seq, prev)
		}
		lastSeq[k] = seq
	}
}

// TestDistinctMatchesGroupBy: SELECT DISTINCT x ≡ GROUP BY x in row count.
func TestDistinctMatchesGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	store := relstore.NewStore()
	tab, _ := store.Create(schema.New("r", "A", "B"))
	for i := 0; i < 300; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewInt(int64(rng.Intn(6))),
			types.NewString(fmt.Sprintf("x%d", rng.Intn(4)))})
	}
	e := New(store)
	d := e.MustQuery("SELECT DISTINCT A, B FROM r")
	g := e.MustQuery("SELECT A, B FROM r GROUP BY A, B")
	if len(d.Rows) != len(g.Rows) {
		t.Errorf("DISTINCT %d rows, GROUP BY %d rows", len(d.Rows), len(g.Rows))
	}
}

package sqleng

import (
	"fmt"
	"strconv"
	"strings"

	"semandaq/internal/types"
)

// ParseError reports a syntax error with the offending token position.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at byte %d: %s", e.Pos, e.Msg)
}

// parser consumes a token stream.
type parser struct {
	toks []token
	i    int
}

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.atEOF() {
		if p.accept(tokSymbol, ";") {
			continue
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(tokSymbol, ";") && !p.atEOF() {
			return nil, p.errorf("expected ';' between statements, got %q", p.peek().text)
		}
	}
	return out, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// accept consumes the next token if it matches kind and text.
func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.advance()
		return true
	}
	return false
}

// acceptKeyword consumes the next token if it is the given keyword.
func (p *parser) acceptKeyword(kw string) bool { return p.accept(tokKeyword, kw) }

// expect consumes a token of the given kind/text or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.peek()
	if t.kind == kind && t.text == text {
		return p.advance(), nil
	}
	return token{}, p.errorf("expected %q, got %q", text, t.text)
}

// expectIdent consumes an identifier (or non-reserved keyword usable as a
// name, such as type names) and returns its text.
func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.text)
}

func (p *parser) errorf(format string, args ...any) error {
	return &ParseError{Pos: p.peek().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected statement keyword, got %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		p.advance()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel}, nil
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	default:
		return nil, p.errorf("unsupported statement %q", t.text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			st.From = append(st.From, fi)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		for {
			left := false
			if p.acceptKeyword("LEFT") {
				left = true
			} else if p.acceptKeyword("INNER") {
				// optional INNER prefix
			} else if p.peek().kind == tokKeyword && p.peek().text == "JOIN" {
				// bare JOIN
			} else {
				break
			}
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Joins = append(st.Joins, JoinClause{Left: left, Item: fi, On: on})
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				oi.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, oi)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseNonNegInt()
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseNonNegInt()
		if err != nil {
			return nil, err
		}
		st.Offset = n
	}
	return st, nil
}

func (p *parser) parseNonNegInt() (int, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, p.errorf("expected number, got %q", t.text)
	}
	p.advance()
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errorf("expected non-negative integer, got %q", t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// Bare * or t.*
	if p.peek().kind == tokSymbol && p.peek().text == "*" {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	if p.peek().kind == tokIdent && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tokSymbol && p.toks[p.i+2].text == "*" {
		tbl := p.advance().text
		p.advance() // .
		p.advance() // *
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tokIdent {
		// Implicit alias: SELECT a b
		item.Alias = p.advance().text
	}
	return item, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	name, err := p.expectIdent()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: name, Alias: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = a
	} else if p.peek().kind == tokIdent {
		fi.Alias = p.advance().text
	}
	return fi, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if _, err := p.expect(tokKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Col: col, Expr: e})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if _, err := p.expect(tokKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	if _, err := p.expect(tokKeyword, "CREATE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		kind, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, ColumnDef{Name: col, Type: kind})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseTypeName() (types.Kind, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		// Untyped column: no type name given.
		return types.KindNull, nil
	}
	switch t.text {
	case "INT":
		p.advance()
		return types.KindInt, nil
	case "FLOAT":
		p.advance()
		return types.KindFloat, nil
	case "BOOL":
		p.advance()
		return types.KindBool, nil
	case "STRING", "TEXT":
		p.advance()
		return types.KindString, nil
	case "VARCHAR":
		p.advance()
		if p.accept(tokSymbol, "(") {
			if _, err := p.parseNonNegInt(); err != nil {
				return 0, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return 0, err
			}
		}
		return types.KindString, nil
	default:
		return types.KindNull, nil
	}
}

func (p *parser) parseDropTable() (*DropTableStmt, error) {
	if _, err := p.expect(tokKeyword, "DROP"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name}, nil
}

// Expression grammar (precedence climbing):
//   expr    := orExpr
//   orExpr  := andExpr (OR andExpr)*
//   andExpr := notExpr (AND notExpr)*
//   notExpr := NOT notExpr | predicate
//   predicate := additive ((=|<>|<|<=|>|>=|LIKE) additive
//               | IS [NOT] NULL | [NOT] IN (...) | [NOT] BETWEEN a AND b)?
//   additive := multiplicative ((+|-|'||') multiplicative)*
//   multiplicative := unary ((*|/|%) unary)*
//   unary   := - unary | primary
//   primary := literal | columnRef | funcCall | ( expr ) | CASE ...

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "<", ">", "<=", ">=":
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, L: l, R: r}, nil
		case "<>", "!=":
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: "<>", L: l, R: r}, nil
		}
	}
	if t.kind == tokKeyword {
		switch t.text {
		case "IS":
			p.advance()
			not := p.acceptKeyword("NOT")
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return nil, err
			}
			return &IsNullExpr{E: l, Not: not}, nil
		case "LIKE":
			p.advance()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: "LIKE", L: l, R: r}, nil
		case "IN":
			return p.parseInTail(l, false)
		case "BETWEEN":
			return p.parseBetweenTail(l, false)
		case "NOT":
			// l NOT IN / l NOT BETWEEN / l NOT LIKE
			p.advance()
			switch {
			case p.peek().kind == tokKeyword && p.peek().text == "IN":
				return p.parseInTail(l, true)
			case p.peek().kind == tokKeyword && p.peek().text == "BETWEEN":
				return p.parseBetweenTail(l, true)
			case p.acceptKeyword("LIKE"):
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				return &UnaryExpr{Op: "NOT", E: &BinaryExpr{Op: "LIKE", L: l, R: r}}, nil
			default:
				return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
			}
		}
	}
	return l, nil
}

func (p *parser) parseInTail(l Expr, not bool) (Expr, error) {
	if _, err := p.expect(tokKeyword, "IN"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	in := &InExpr{E: l, Not: not}
	for {
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, v)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseBetweenTail(l Expr, not bool) (Expr, error) {
	if _, err := p.expect(tokKeyword, "BETWEEN"); err != nil {
		return nil, err
	}
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{E: l, Not: not, Lo: lo, Hi: hi}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.advance()
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.advance()
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: t.text, L: l, R: r}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Value: types.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Value: types.NewInt(n)}, nil
	case tokString:
		p.advance()
		return &Literal{Value: types.NewString(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return &Literal{Value: types.Null}, nil
		case "TRUE":
			p.advance()
			return &Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Value: types.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			p.advance()
			return p.parseFuncTail(t.text)
		}
		return nil, p.errorf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		p.advance()
		// Function call?
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			return p.parseFuncTail(strings.ToUpper(t.text))
		}
		// Qualified column t.c?
		if p.peek().kind == tokSymbol && p.peek().text == "." {
			p.advance()
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	if _, err := p.expect(tokKeyword, "CASE"); err != nil {
		return nil, err
	}
	ce := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if _, err := p.expect(tokKeyword, "END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *parser) parseFuncTail(name string) (Expr, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	fe := &FuncExpr{Name: name}
	if name == "COUNT" && p.accept(tokSymbol, "*") {
		fe.Star = true
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return fe, nil
	}
	fe.Distinct = p.acceptKeyword("DISTINCT")
	if !p.accept(tokSymbol, ")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fe.Args = append(fe.Args, a)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	return fe, nil
}

package sqleng

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// newColumnarCrossStore builds a store with a table whose values attack
// the dictionary encodings: strings shaped like Key() renderings of other
// kinds, the legacy separator byte, NULLs, cross-kind numeric equals and
// duplicated rows.
func newColumnarCrossStore(t *testing.T) *relstore.Store {
	t.Helper()
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("t", "A", "B", "C", "D"))
	if err != nil {
		t.Fatal(err)
	}
	pool := []types.Value{
		types.Null,
		types.NewString("d1"),
		types.NewString("1"),
		types.NewString("x\x1fy"),
		types.NewString(""),
		types.NewString("uk"),
		types.NewString("UK"),
		types.NewInt(1),
		types.NewFloat(2.5),
		types.NewInt(-3),
		types.NewBool(true),
		types.NewInt(0),
		types.NewFloat(math.Copysign(0, -1)), // -0.0: Equal to 0, distinct bits
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		row := make(relstore.Tuple, 4)
		for j := range row {
			row[j] = pool[rng.Intn(len(pool))]
		}
		tab.MustInsert(row)
	}
	// A companion table for joins.
	other, err := store.Create(schema.New("u", "A", "N"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		other.MustInsert(relstore.Tuple{
			pool[rng.Intn(len(pool))], types.NewInt(int64(i % 6))})
	}
	return store
}

// TestColumnarScanMatchesRowScan runs a battery of queries through the
// engine twice — columnar fast path on and off — and requires deep-equal
// results: same columns, same rows, same order, same value kinds. This is
// the read-path cross-check for the SQL engine, the counterpart of the
// detection byte-identity tests.
func TestColumnarScanMatchesRowScan(t *testing.T) {
	queries := []string{
		// Plain scans and projections.
		"SELECT * FROM t",
		"SELECT A, C FROM t",
		"SELECT t._tid FROM t",
		// Equality pushdown, both operand orders, every kind.
		"SELECT * FROM t WHERE A = 'd1'",
		"SELECT * FROM t WHERE 'x\x1fy' = B",
		"SELECT * FROM t WHERE C = 1",   // matches INT 1 (and any FLOAT 1)
		"SELECT * FROM t WHERE C = 1.0", // same Equal-class as above
		"SELECT * FROM t WHERE D = 2.5",
		"SELECT * FROM t WHERE C = 0",        // matches INT 0 and FLOAT -0.0 alike
		"SELECT * FROM t WHERE A = ''",       // empty string is not NULL
		"SELECT * FROM t WHERE A = 'absent'", // no dictionary entry
		"SELECT * FROM t WHERE A = NULL",     // never truthy
		// IS [NOT] NULL pushdown.
		"SELECT * FROM t WHERE B IS NULL",
		"SELECT * FROM t WHERE B IS NOT NULL",
		// Mixed pushdown + residual predicates.
		"SELECT * FROM t WHERE A = 'uk' AND C = 1",
		"SELECT * FROM t WHERE A = 'UK' AND B IS NOT NULL AND C > 0",
		"SELECT * FROM t WHERE A = 'uk' OR A = 'UK'", // disjunction: no pushdown
		// Grouping, distinct, ordering over the loaded relation.
		"SELECT A, COUNT(*) AS n FROM t GROUP BY A ORDER BY n DESC, A",
		"SELECT DISTINCT A, B FROM t ORDER BY A, B",
		"SELECT MIN(D) AS lo, MAX(D) AS hi FROM t WHERE C = 1",
		// Joins (the joined relation drops the fast path; the base loads
		// still use it).
		"SELECT t.A, u.N FROM t JOIN u ON t.A = u.A WHERE u.N = 3 ORDER BY t._tid, u.N",
		"SELECT t.A, u.N FROM t LEFT JOIN u ON t.A = u.A AND u.N = 2 ORDER BY t._tid, u.N",
		"SELECT a.A FROM t a, t b WHERE a.A = b.B AND a.C = 1 ORDER BY a._tid LIMIT 20",
	}
	for _, q := range queries {
		store := newColumnarCrossStore(t)
		colEng := New(store)
		rowEng := New(store)
		rowEng.SetColumnarScan(false)

		colRes, colErr := colEng.Query(q)
		rowRes, rowErr := rowEng.Query(q)
		if (colErr == nil) != (rowErr == nil) {
			t.Fatalf("query %q: columnar err %v, row err %v", q, colErr, rowErr)
		}
		if colErr != nil {
			continue
		}
		if !reflect.DeepEqual(colRes, rowRes) {
			t.Errorf("query %q: columnar and row results differ\ncolumnar: %+v\nrow: %+v",
				q, colRes, rowRes)
		}
	}
}

// TestColumnarScanAfterMutation ensures the engine never serves a stale
// snapshot: results must track inserts, updates and deletes immediately.
func TestColumnarScanAfterMutation(t *testing.T) {
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("t", "A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	eng := New(store)
	count := func() int64 {
		res := eng.MustQuery("SELECT COUNT(*) AS n FROM t WHERE A = 'x'")
		return res.Rows[0][0].Int()
	}
	if count() != 0 {
		t.Fatal("expected empty table")
	}
	id := tab.MustInsert(relstore.Tuple{types.NewString("x"), types.NewInt(1)})
	if got := count(); got != 1 {
		t.Fatalf("after insert: count = %d", got)
	}
	if _, err := tab.SetCell(id, 0, types.NewString("y")); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 0 {
		t.Fatalf("after update: count = %d", got)
	}
	if _, err := tab.SetCell(id, 0, types.NewString("x")); err != nil {
		t.Fatal(err)
	}
	tab.Delete(id)
	if got := count(); got != 0 {
		t.Fatalf("after delete: count = %d", got)
	}
	// DML through the engine itself.
	if _, err := eng.Query("INSERT INTO t VALUES ('x', 5)"); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 1 {
		t.Fatalf("after SQL insert: count = %d", got)
	}
	if _, err := eng.Query("UPDATE t SET B = 6 WHERE A = 'x'"); err != nil {
		t.Fatal(err)
	}
	res := eng.MustQuery("SELECT B FROM t WHERE A = 'x'")
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 6 {
		t.Fatalf("after SQL update: %+v", res.Rows)
	}
	if _, err := eng.Query("DELETE FROM t WHERE A = 'x'"); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 0 {
		t.Fatalf("after SQL delete: count = %d", got)
	}
}

// Package sqleng implements the SQL subset engine Semandaq runs its
// automatically generated detection queries on. It replaces the commercial
// RDBMS of the paper: the error detector emits SQL text (exactly as in
// Fan et al., TODS 2008) and this engine parses, plans and executes it over
// the relstore tables.
//
// Supported surface: SELECT [DISTINCT] with expressions and aliases,
// multi-table FROM (comma joins and INNER JOIN ... ON) executed as hash
// equi-joins where possible, WHERE with three-valued logic, GROUP BY,
// HAVING, aggregates (COUNT, COUNT(DISTINCT), SUM, AVG, MIN, MAX), ORDER
// BY, LIMIT/OFFSET, EXPLAIN SELECT, and the DML statements INSERT, UPDATE,
// DELETE plus CREATE/DROP TABLE.
package sqleng

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords uppercased; idents as written; strings unquoted
	pos  int    // byte offset in the input, for error messages
}

// keywords recognized by the lexer. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true, "ASC": true,
	"DESC": true, "LIMIT": true, "OFFSET": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"IS": true, "IN": true, "LIKE": true, "JOIN": true, "INNER": true,
	"LEFT": true, "ON": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DROP": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "INT": true, "FLOAT": true, "STRING": true,
	"BOOL": true, "TEXT": true, "VARCHAR": true, "UNION": true, "ALL": true,
	"EXISTS": true, "BETWEEN": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "EXPLAIN": true,
}

// lexer turns SQL text into tokens.
type lexer struct {
	src string
	pos int
}

// lexError reports a malformed input with position.
type lexError struct {
	pos int
	msg string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("sql: lex error at byte %d: %s", e.pos, e.msg)
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &lexError{pos: pos, msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the whole input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.lexWord(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	case c == '"':
		return l.lexQuotedIdent(start)
	default:
		return l.lexSymbol(start)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexWord(start int) token {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		return token{kind: tokKeyword, text: up, pos: start}
	}
	return token{kind: tokIdent, text: word, pos: start}
}

func (l *lexer) lexNumber(start int) (token, error) {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	if l.pos < len(l.src) && isIdentStart(l.src[l.pos]) {
		return token{}, l.errorf(l.pos, "malformed number")
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexString(start int) (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated string literal")
}

func (l *lexer) lexQuotedIdent(start int) (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return token{kind: tokIdent, text: b.String(), pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated quoted identifier")
}

// twoByteSymbols are the multi-byte operators; checked before single bytes.
var twoByteSymbols = []string{"<>", "!=", "<=", ">=", "||"}

func (l *lexer) lexSymbol(start int) (token, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		for _, s := range twoByteSymbols {
			if two == s {
				l.pos += 2
				return token{kind: tokSymbol, text: s, pos: start}, nil
			}
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '=', '<', '>', '+', '-', '/', ';', '%':
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	}
	return token{}, l.errorf(start, "unexpected character %q", string(c))
}

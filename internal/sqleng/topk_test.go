package sqleng

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// newTopKStore builds a single table with heavy order-key ties (B cycles
// through 7 values, C through 3) so the heap's seq tie-break is exercised
// against the legacy stable sort on every query.
func newTopKStore(t *testing.T, rows int) *relstore.Store {
	t.Helper()
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("t", "A", "B", "C"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 7)),
			types.NewString("c" + string(rune('a'+i%3))),
		})
	}
	return store
}

// TestTopKHeapIdentity holds the bounded-heap ORDER BY ... LIMIT path to
// the legacy materializing oracle across ties, DESC, OFFSET, DISTINCT and
// grouped queries. The tie-heavy fixture makes any deviation from the
// stable sort's first-arrival tie-break visible.
func TestTopKHeapIdentity(t *testing.T) {
	store := newTopKStore(t, 64)
	heap := New(store)
	oracle := New(store)
	oracle.SetColumnarScan(false)

	queries := []string{
		`SELECT A, B FROM t ORDER BY B LIMIT 5`,
		`SELECT A, B FROM t ORDER BY B, C DESC LIMIT 9`,
		`SELECT A, B FROM t ORDER BY B DESC LIMIT 5 OFFSET 3`,
		`SELECT A FROM t ORDER BY B LIMIT 0`,
		`SELECT A FROM t ORDER BY B LIMIT 500`,
		`SELECT DISTINCT B, C FROM t ORDER BY C, B DESC LIMIT 4`,
		`SELECT C, COUNT(*) AS N FROM t GROUP BY C ORDER BY N DESC LIMIT 2`,
		`SELECT B, MAX(A) FROM t GROUP BY B ORDER BY B DESC LIMIT 3 OFFSET 1`,
	}
	for _, q := range queries {
		got, err := heap.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := oracle.Query(q)
		if err != nil {
			t.Fatalf("%s: oracle: %v", q, err)
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s:\nheap:   %v\noracle: %v", q, got.Rows, want.Rows)
		}
	}
}

// TestTopKHeapExplain pins that the sink advertises the bounded retention,
// and that plain ORDER BY (no LIMIT) does not engage it.
func TestTopKHeapExplain(t *testing.T) {
	e := New(newTopKStore(t, 8))
	lines := planLines(t, e, `EXPLAIN SELECT A FROM t ORDER BY B LIMIT 5 OFFSET 2`)
	if indexOfLine(lines, "top-k heap k=7") < 0 {
		t.Errorf("sink line missing top-k heap:\n%s", strings.Join(lines, "\n"))
	}
	lines = planLines(t, e, `EXPLAIN SELECT A FROM t ORDER BY B`)
	if indexOfLine(lines, "top-k heap") >= 0 {
		t.Errorf("unbounded ORDER BY must not use the heap:\n%s", strings.Join(lines, "\n"))
	}
}

// TestTopKHeapAllocsBounded is the perf contract from the issue: ORDER BY
// ... LIMIT k retains only the k best rows, so once the heap stabilizes,
// further input costs no allocations. The order key cycles through a fixed
// set of values, so a 10x larger scan does the same small number of heap
// insertions — while the legacy path provably allocates two slices per row.
func TestTopKHeapAllocsBounded(t *testing.T) {
	const query = `SELECT A, B FROM t ORDER BY B LIMIT 5`
	allocsAt := func(rows int) float64 {
		e := New(newTopKStore(t, rows))
		if _, err := e.Query(query); err != nil {
			t.Fatal(err) // warm the snapshot's columnar caches
		}
		return testing.AllocsPerRun(5, func() {
			if _, err := e.Query(query); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := allocsAt(2_000), allocsAt(20_000)
	if large > small+8 {
		t.Fatalf("top-k allocations scale with input: %d rows -> %.0f allocs, %d rows -> %.0f",
			2_000, small, 20_000, large)
	}
	if small > 300 {
		t.Fatalf("top-k query allocates too much even at 2k rows: %.0f", small)
	}
}

// TestTopKHeapErrorParity: the heap path must evaluate every projection and
// order key for every row, so an error on a late row surfaces exactly as it
// does on the unbounded path — even when that row could never enter the
// top k.
func TestTopKHeapErrorParity(t *testing.T) {
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("t", "A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tab.MustInsert(relstore.Tuple{types.NewInt(int64(i)), types.NewInt(int64(i))})
	}
	// Division by zero on the last row only; it would lose the ORDER BY.
	tab.MustInsert(relstore.Tuple{types.NewInt(100), types.NewInt(0)})

	const q = `SELECT A, 10 / B FROM t ORDER BY B LIMIT 2`
	heap := New(store)
	if _, err := heap.Query(q); err == nil {
		t.Fatal("heap path swallowed the projection error")
	}
	oracle := New(store)
	oracle.SetColumnarScan(false)
	if _, err := oracle.Query(q); err == nil {
		t.Fatal("oracle did not error; fixture is wrong")
	}
	wantMsg := fmt.Sprintf("%v", errQuery(t, oracle, q))
	gotMsg := fmt.Sprintf("%v", errQuery(t, heap, q))
	if gotMsg != wantMsg {
		t.Errorf("error text diverged:\nheap:   %s\noracle: %s", gotMsg, wantMsg)
	}
}

// errQuery runs q expecting an error and returns it.
func errQuery(t *testing.T, e *Engine, q string) error {
	t.Helper()
	_, err := e.Query(q)
	if err == nil {
		t.Fatalf("%s: expected error", q)
	}
	return err
}

package sqleng

import (
	"reflect"
	"testing"

	"semandaq/internal/fdset"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// fuzzStore seeds the store both fuzz engines query: two joinable tables
// with NULLs, duplicate join keys, mixed INT/FLOAT/STRING/BOOL cells and
// an Equal-vs-exact corner (INT 1 next to FLOAT 1.0).
func fuzzStore(tb testing.TB) *relstore.Store {
	store := relstore.NewStore()
	r, err := store.Create(schema.New("r", "A", "B", "C"))
	if err != nil {
		tb.Fatal(err)
	}
	s, err := store.Create(schema.New("s", "A", "D"))
	if err != nil {
		tb.Fatal(err)
	}
	rRows := []relstore.Tuple{
		{types.NewInt(1), types.NewString("x"), types.NewFloat(1.5)},
		{types.NewInt(1), types.NewString("y"), types.Null},
		{types.NewInt(2), types.Null, types.NewFloat(1.0)},
		{types.NewInt(2), types.NewString("x"), types.NewInt(1)},
		{types.Null, types.NewString("z"), types.NewBool(true)},
		{types.NewInt(3), types.NewString(""), types.NewInt(0)},
	}
	sRows := []relstore.Tuple{
		{types.NewInt(1), types.NewString("p")},
		{types.NewInt(2), types.NewString("q")},
		{types.NewInt(2), types.Null},
		{types.Null, types.NewString("r")},
		{types.NewInt(9), types.NewString("s")},
	}
	for _, row := range rRows {
		r.MustInsert(row)
	}
	for _, row := range sRows {
		s.MustInsert(row)
	}
	return store
}

// fuzzFDs returns deliberately FALSE dependencies over the seed tables
// (r's A does not determine B, s's A does not determine D). The collapsed
// executor re-verifies every key equality per candidate, so registering
// facts the data violates is the sharpest soundness probe: any missing
// guard shows up as a result divergence.
func fuzzFDs() (rFDs, sFDs *fdset.Set) {
	rFDs = fdset.New(3)
	rFDs.Add([]int{0}, 1)
	rFDs.Add([]int{1}, 2)
	sFDs = fdset.New(2)
	sFDs.Add([]int{0}, 1)
	return
}

// checkSQLIdentity runs one SELECT (or EXPLAIN) on the streaming engine,
// on a streaming engine with (false) FDs registered for every table, and
// on the legacy row-scan oracle, and asserts identical outcomes: the same
// error presence, and on mutual success deeply equal Results. Error
// messages may differ between the schedules; presence may not.
func checkSQLIdentity(t *testing.T, sql string) {
	st, err := Parse(sql)
	if err != nil {
		return // not this target's concern
	}
	switch st.(type) {
	case *SelectStmt, *ExplainStmt:
	default:
		return // DML would mutate the shared seed store
	}

	store := fuzzStore(t)
	stream := New(store)
	collapsed := New(store)
	rf, sf := fuzzFDs()
	collapsed.RegisterFDs("r", rf)
	collapsed.RegisterFDs("s", sf)
	legacy := New(store)
	legacy.SetColumnarScan(false)

	sres, serr := stream.Query(sql)
	cres, cerr := collapsed.Query(sql)
	lres, lerr := legacy.Query(sql)
	if (serr == nil) != (lerr == nil) {
		t.Fatalf("error presence diverged for %q:\n streaming: %v\n legacy:    %v", sql, serr, lerr)
	}
	if (cerr == nil) != (lerr == nil) {
		t.Fatalf("error presence diverged for %q:\n fd-collapsed: %v\n legacy:       %v", sql, cerr, lerr)
	}
	if serr != nil {
		return
	}
	if _, isExplain := st.(*ExplainStmt); isExplain {
		return // plan text is streaming-only by design
	}
	if !reflect.DeepEqual(sres, lres) {
		t.Fatalf("results diverged for %q:\n streaming: cols=%v rows=%v versions=%v\n legacy:    cols=%v rows=%v versions=%v",
			sql, sres.Columns, sres.Rows, sres.Versions, lres.Columns, lres.Rows, lres.Versions)
	}
	if !reflect.DeepEqual(cres, lres) {
		t.Fatalf("results diverged for %q:\n fd-collapsed: cols=%v rows=%v\n legacy:       cols=%v rows=%v",
			sql, cres.Columns, cres.Rows, lres.Columns, lres.Rows)
	}
}

// FuzzSQLExec feeds arbitrary SQL text through both executors and demands
// byte-identical results. The seed corpus (testdata/fuzz/FuzzSQLExec)
// covers every pipeline stage: code filters, PLI/hash/nested joins, outer
// joins, residuals, impure predicates, grouping, HAVING, DISTINCT, ORDER
// BY and LIMIT/OFFSET.
func FuzzSQLExec(f *testing.F) {
	seeds := []string{
		"SELECT * FROM r",
		"SELECT A, B FROM r WHERE A = 1",
		"SELECT * FROM r WHERE B IS NULL",
		"SELECT * FROM r WHERE B IS NOT NULL AND A <> 2",
		"SELECT r.A, s.D FROM r, s WHERE r.A = s.A",
		"SELECT r.B, s.D FROM r LEFT JOIN s ON r.A = s.A",
		"SELECT * FROM r, s WHERE r.A = s.A AND s.D = 'q'",
		"SELECT * FROM r, s",
		"SELECT r.A FROM r INNER JOIN s ON r.A = s.A AND s.D <> 'p'",
		"SELECT A, COUNT(*) AS n FROM r GROUP BY A HAVING COUNT(*) > 1",
		"SELECT COUNT(DISTINCT B) FROM r",
		"SELECT DISTINCT A FROM r ORDER BY A DESC LIMIT 2 OFFSET 1",
		"SELECT A + C FROM r",
		"SELECT 1 / A FROM r",
		"SELECT * FROM r WHERE C > 0.5 OR B LIKE 'x%'",
		"SELECT COALESCE(B, 'none') FROM r WHERE A IN (1, 3)",
		"SELECT SUBSTR(B, 1, A) FROM r",
		"SELECT CASE WHEN A = 1 THEN 'one' ELSE B END FROM r",
		"SELECT r1.A FROM r r1, r r2 WHERE r1.A = r2.A AND r1.B <> r2.B",
		"SELECT * FROM r WHERE A BETWEEN 1 AND 2 LIMIT 3",
		"EXPLAIN SELECT r.A FROM r, s WHERE r.A = s.A",
		"SELECT MIN(C), MAX(C), SUM(A), AVG(A) FROM r",
		"SELECT UPPER(B) || '!' FROM r WHERE NOT (A = 2)",
		"SELECT r.A FROM r, s WHERE r.A = s.A AND r.B = s.D",
		"SELECT r.B, s.D FROM r LEFT JOIN s ON r.A = s.A AND r.B = s.D",
		"SELECT r1.A FROM r r1, r r2 WHERE r1.A = r2.A AND r1.B = r2.B AND r1.C = r2.C",
		"SELECT A, B FROM r ORDER BY C LIMIT 3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 4096 {
			return // cap pathological inputs; the grammar fits in far less
		}
		checkSQLIdentity(t, sql)
	})
}

// TestFuzzSeedsIdentity replays the fuzz seed corpus as a plain test so
// the identity gate runs on every `go test`, not only under -fuzz.
func TestFuzzSeedsIdentity(t *testing.T) {
	seeds := []string{
		"SELECT * FROM r",
		"SELECT r.A, s.D FROM r, s WHERE r.A = s.A",
		"SELECT r.B, s.D FROM r LEFT JOIN s ON r.A = s.A",
		"SELECT A, COUNT(*) AS n FROM r GROUP BY A HAVING COUNT(*) > 1",
		"SELECT SUBSTR(B, 1, A) FROM r",
		"SELECT 1 / A FROM r",
		"SELECT r1.A FROM r r1, r r2 WHERE r1.A = r2.A AND r1.B <> r2.B",
		"SELECT DISTINCT A FROM r ORDER BY A DESC LIMIT 2 OFFSET 1",
		"SELECT r.A FROM r, s WHERE r.A = s.A AND r.B = s.D",
		"SELECT r.B, s.D FROM r LEFT JOIN s ON r.A = s.A AND r.B = s.D",
		"SELECT r1.A FROM r r1, r r2 WHERE r1.A = r2.A AND r1.B = r2.B AND r1.C = r2.C",
		"SELECT A, B FROM r ORDER BY C LIMIT 3",
	}
	for _, sql := range seeds {
		checkSQLIdentity(t, sql)
	}
}

package sqleng

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"sync"

	"semandaq/internal/fdset"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// cancelStride is how many rows the executor's hot loops (scans, joins,
// grouping) process between context checks: a cancelled million-row query
// aborts within a few thousand rows without the check showing up in
// profiles.
const cancelStride = 4096

// strideCheck returns ctx.Err() every cancelStride-th call position i.
func strideCheck(ctx context.Context, i int) error {
	if i%cancelStride == 0 {
		return ctx.Err()
	}
	return nil
}

// TIDColumn is the hidden pseudo-column exposing each base tuple's store ID.
// Detection queries select it to attribute violations back to tuples, e.g.
// SELECT t._tid FROM customer t WHERE ...; it never appears in `*` output.
const TIDColumn = "_tid"

// Result is a materialized query result. For DML statements Rows is nil and
// Affected counts modified tuples.
type Result struct {
	Columns  []string
	Rows     [][]types.Value
	Affected int
	// Versions records, per base table the statement touched (lowercased
	// name), the table version the statement read — every base table is
	// resolved to one pinned snapshot per query, so a table referenced
	// twice (a self-join) contributes exactly one version. For DML it is
	// the version after the mutation.
	Versions map[string]int64
}

// Engine executes SQL statements against a relstore.Store.
type Engine struct {
	store *relstore.Store
	// rowScan disables the columnar scan fast path, forcing base-table
	// loads through the snapshot's row scan; the cross-check tests use it
	// to compare both read paths on identical queries.
	rowScan bool
	// pins maps lowercased table names to externally pinned snapshots;
	// queries read a pinned table at that exact version regardless of
	// concurrent mutations. Set via Pin/Unpin.
	pins map[string]*relstore.Snapshot
	// fds maps lowercased table names to registered exact-FD sets; the
	// planner consults them for FD-collapsed joins (fdjoin.go). Unlike
	// Pin and SetColumnarScan, registration is safe against concurrent
	// queries: the map is copy-on-write under fdmu (discovery runs
	// register facts on live engines), and a stale set can never change
	// results — the collapsed probe re-checks every key per candidate.
	fdmu sync.RWMutex
	fds  map[string]*fdset.Set
	// ops accumulates executor operation counters (fdjoin.go), read via
	// OpStats and zeroed via ResetOpStats. Unsynchronized: meaningful
	// only when queries run sequentially.
	ops OpCounters
}

// New creates an engine over the given store.
func New(store *relstore.Store) *Engine { return &Engine{store: store} }

// SetColumnarScan toggles the columnar scan fast path (on by default).
// Both paths produce identical results; the switch exists so tests can
// cross-check them and benchmarks can isolate the row path.
func (e *Engine) SetColumnarScan(enabled bool) { e.rowScan = !enabled }

// Pin makes every subsequent query read the snapshot's table at the
// snapshot's version, regardless of concurrent mutations of the live table.
// The SQL detector pins the data table once per detection so the multiple
// generated queries of one run all see a single version. Like
// SetColumnarScan, Pin configures the engine and must not race with
// running queries: use it on a private engine, not a shared one.
func (e *Engine) Pin(snap *relstore.Snapshot) {
	if e.pins == nil {
		e.pins = map[string]*relstore.Snapshot{}
	}
	e.pins[strings.ToLower(snap.Schema().Name)] = snap
}

// Unpin removes a Pin for the named table.
func (e *Engine) Unpin(name string) { delete(e.pins, strings.ToLower(name)) }

// Store returns the underlying store.
func (e *Engine) Store() *relstore.Store { return e.store }

// queryPins resolves base tables to read snapshots, at most once per table
// per query: the first reference pins the table's current version (or the
// engine-level Pin) and every later reference — a self-join, a second FROM
// item — reuses it, so one statement never mixes two versions of a table.
type queryPins struct {
	e     *Engine
	snaps map[string]*relstore.Snapshot
}

func (e *Engine) newQueryPins() *queryPins {
	return &queryPins{e: e, snaps: map[string]*relstore.Snapshot{}}
}

// snapshot returns the query's pinned snapshot of the named table.
func (q *queryPins) snapshot(name string) (*relstore.Snapshot, bool) {
	key := strings.ToLower(name)
	if s, ok := q.snaps[key]; ok {
		return s, true
	}
	if s, ok := q.e.pins[key]; ok {
		q.snaps[key] = s
		return s, true
	}
	tab, ok := q.e.store.Table(name)
	if !ok {
		return nil, false
	}
	s := tab.Snapshot()
	q.snaps[key] = s
	return s, true
}

// versions reports the pinned version per table read by the query.
func (q *queryPins) versions() map[string]int64 {
	out := make(map[string]int64, len(q.snaps))
	for name, s := range q.snaps {
		out[name] = s.Version()
	}
	return out
}

// Query parses and executes a single statement without cancellation.
//
// Deprecated: use QueryContext so callers can cancel long scans and
// joins; Query is kept only for context-free compatibility.
func (e *Engine) Query(sql string) (*Result, error) {
	//semandaq:vet-ignore ctxloop deprecated context-free wrapper by design
	return e.QueryContext(context.Background(), sql)
}

// QueryContext parses and executes a single statement under a context: a
// cancelled ctx aborts the executor's scan, join and grouping loops
// promptly and returns ctx.Err().
func (e *Engine) QueryContext(ctx context.Context, sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.RunContext(ctx, st)
}

// MustQuery is Query for tests; it panics on error.
//
// Deprecated: production callers use QueryContext; MustQuery exists for
// test fixtures only.
func (e *Engine) MustQuery(sql string) *Result {
	//semandaq:vet-ignore ctxloop deprecated context-free wrapper by design
	r, err := e.QueryContext(context.Background(), sql)
	if err != nil {
		panic(err)
	}
	return r
}

// Run executes a pre-parsed statement without cancellation.
//
// Deprecated: use RunContext so callers can cancel long scans and joins;
// Run is kept only for context-free compatibility.
func (e *Engine) Run(st Statement) (*Result, error) {
	//semandaq:vet-ignore ctxloop deprecated context-free wrapper by design
	return e.RunContext(context.Background(), st)
}

// RunContext executes a pre-parsed statement under a context.
func (e *Engine) RunContext(ctx context.Context, st Statement) (*Result, error) {
	switch s := st.(type) {
	case *SelectStmt:
		return e.runSelect(ctx, s)
	case *ExplainStmt:
		return e.runExplain(s)
	case *InsertStmt:
		return e.runInsert(s)
	case *UpdateStmt:
		return e.runUpdate(ctx, s)
	case *DeleteStmt:
		return e.runDelete(ctx, s)
	case *CreateTableStmt:
		return e.runCreate(s)
	case *DropTableStmt:
		tab, ok := e.store.Table(s.Table)
		if !ok || !e.store.Drop(s.Table) {
			return nil, fmt.Errorf("sql: no table %q", s.Table)
		}
		// Stamp the dropped table's final version: the statement's last
		// observation of the base table it touched.
		return &Result{
			Versions: map[string]int64{strings.ToLower(s.Table): tab.Version()},
		}, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement %T", st)
}

// relation is an intermediate materialized result with a column catalog.
// It belongs to the legacy materializing executor, kept behind
// SetColumnarScan(false) as the cross-check oracle for the streaming path.
type relation struct {
	cat    catalog
	hidden []bool // parallel to cat; hidden columns are excluded from `*`
	rows   [][]types.Value
}

func (r *relation) width() int { return len(r.cat) }

// loadTable materializes a base table with its hidden _tid column first,
// reading from the query's pinned snapshot (queryPins) so the whole
// statement — including self-joins — observes exactly one version of each
// base table.
func (e *Engine) loadTable(ctx context.Context, fi FromItem, qp *queryPins) (*relation, error) {
	snap, ok := qp.snapshot(fi.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", fi.Table)
	}
	sc := snap.Schema()
	rel := &relation{}
	rel.cat = append(rel.cat, colInfo{qual: fi.Alias, name: TIDColumn})
	rel.hidden = append(rel.hidden, true)
	for _, a := range sc.Attrs {
		rel.cat = append(rel.cat, colInfo{qual: fi.Alias, name: a.Name})
		rel.hidden = append(rel.hidden, false)
	}
	n := 0
	snap.Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if n++; n%cancelStride == 0 && ctx.Err() != nil {
			return false
		}
		out := make([]types.Value, 0, len(row)+1)
		out = append(out, types.NewInt(int64(id)))
		out = append(out, row...)
		rel.rows = append(rel.rows, out)
		return true
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}

// splitConjuncts flattens nested ANDs into a conjunct list.
func splitConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// columnRefs collects every column reference in an expression.
func columnRefs(e Expr, out *[]*ColumnRef) {
	switch n := e.(type) {
	case nil:
	case *ColumnRef:
		*out = append(*out, n)
	case *Literal:
	case *BinaryExpr:
		columnRefs(n.L, out)
		columnRefs(n.R, out)
	case *UnaryExpr:
		columnRefs(n.E, out)
	case *IsNullExpr:
		columnRefs(n.E, out)
	case *InExpr:
		columnRefs(n.E, out)
		for _, v := range n.List {
			columnRefs(v, out)
		}
	case *BetweenExpr:
		columnRefs(n.E, out)
		columnRefs(n.Lo, out)
		columnRefs(n.Hi, out)
	case *CaseExpr:
		for _, w := range n.Whens {
			columnRefs(w.Cond, out)
			columnRefs(w.Then, out)
		}
		columnRefs(n.Else, out)
	case *FuncExpr:
		for _, a := range n.Args {
			columnRefs(a, out)
		}
	}
}

// resolvable reports whether every column reference in e resolves in cat.
func resolvable(e Expr, cat catalog) bool {
	var refs []*ColumnRef
	columnRefs(e, &refs)
	for _, r := range refs {
		if _, err := cat.resolve(r); err != nil {
			return false
		}
	}
	return true
}

// validateRefs rejects ambiguous unqualified column references against the
// final joined catalog. Without this up-front pass, an ambiguous WHERE
// conjunct could be silently pushed down to the first table it resolves on.
func (e *Engine) validateRefs(st *SelectStmt) error {
	var fullCat catalog
	load := func(fi FromItem) error {
		tab, ok := e.store.Table(fi.Table)
		if !ok {
			return fmt.Errorf("sql: no table %q", fi.Table)
		}
		fullCat = append(fullCat, colInfo{qual: fi.Alias, name: TIDColumn})
		for _, a := range tab.Schema().Attrs {
			fullCat = append(fullCat, colInfo{qual: fi.Alias, name: a.Name})
		}
		return nil
	}
	for _, fi := range st.From {
		if err := load(fi); err != nil {
			return err
		}
	}
	for _, jc := range st.Joins {
		if err := load(jc.Item); err != nil {
			return err
		}
	}
	check := func(exprs ...Expr) error {
		var refs []*ColumnRef
		for _, ex := range exprs {
			columnRefs(ex, &refs)
		}
		for _, r := range refs {
			if _, err := fullCat.resolve(r); err != nil {
				var amb *AmbiguousColumnError
				if errors.As(err, &amb) {
					return err
				}
			}
		}
		return nil
	}
	all := []Expr{st.Where, st.Having}
	all = append(all, st.GroupBy...)
	for _, it := range st.Items {
		if !it.Star {
			all = append(all, it.Expr)
		}
	}
	for _, jc := range st.Joins {
		all = append(all, jc.On)
	}
	for _, oi := range st.OrderBy {
		all = append(all, oi.Expr)
	}
	return check(all...)
}

// runSelect dispatches a SELECT to the streaming planner/executor
// (plan.go, iterator.go) or, when SetColumnarScan(false) forced the row
// path, to the legacy materializing executor below. Both produce
// byte-identical Results; the legacy path is the cross-check oracle.
func (e *Engine) runSelect(ctx context.Context, st *SelectStmt) (*Result, error) {
	if len(st.From) == 0 {
		return e.selectNoFrom(st)
	}
	if e.rowScan {
		return e.runSelectLegacy(ctx, st)
	}
	p, err := e.buildSelectPlan(st)
	if err != nil {
		return nil, err
	}
	return p.collect(ctx)
}

// runExplain plans the SELECT (without running it) and renders the chosen
// join order, pushed-down predicates and the exact statistics behind each
// choice, one line per plan element.
func (e *Engine) runExplain(st *ExplainStmt) (*Result, error) {
	if len(st.Select.From) == 0 {
		// No FROM clause: nothing to scan, join or push down.
		return &Result{
			Columns:  []string{"plan"},
			Rows:     [][]types.Value{{types.NewString("constant select (no FROM)")}},
			Versions: map[string]int64{},
		}, nil
	}
	p, err := e.buildSelectPlan(st.Select)
	if err != nil {
		return nil, err
	}
	res := &Result{Columns: []string{"plan"}, Versions: p.versions}
	for _, line := range p.describe() {
		res.Rows = append(res.Rows, []types.Value{types.NewString(line)})
	}
	return res, nil
}

// runSelectLegacy is the materializing executor: load whole tables, filter,
// join relation by relation, then project. Retained verbatim as the oracle
// the streaming path is cross-checked against.
func (e *Engine) runSelectLegacy(ctx context.Context, st *SelectStmt) (*Result, error) {
	if err := e.validateRefs(st); err != nil {
		return nil, err
	}
	pending := splitConjuncts(st.Where)

	// One pin set per statement: every base table resolves to a single
	// snapshot for the whole query, so the result reflects exactly one
	// version of each table it reads.
	qp := e.newQueryPins()

	// Build the join tree left to right: comma-list tables first, then the
	// explicit JOIN clauses.
	rel, err := e.loadTable(ctx, st.From[0], qp)
	if err != nil {
		return nil, err
	}
	rel, pending, err = applyResolvable(ctx, rel, pending)
	if err != nil {
		return nil, err
	}
	for _, fi := range st.From[1:] {
		right, err := e.loadTable(ctx, fi, qp)
		if err != nil {
			return nil, err
		}
		rel, pending, err = joinRelations(ctx, rel, right, pending, nil, false)
		if err != nil {
			return nil, err
		}
	}
	for _, jc := range st.Joins {
		right, err := e.loadTable(ctx, jc.Item, qp)
		if err != nil {
			return nil, err
		}
		on := splitConjuncts(jc.On)
		rel, pending, err = joinRelations(ctx, rel, right, pending, on, jc.Left)
		if err != nil {
			return nil, err
		}
	}
	// Any leftover WHERE conjunct must now resolve.
	for _, c := range pending {
		f, err := compileExpr(c, rel.cat)
		if err != nil {
			return nil, err
		}
		var kept [][]types.Value
		for i, row := range rel.rows {
			if err := strideCheck(ctx, i); err != nil {
				return nil, err
			}
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				kept = append(kept, row)
			}
		}
		rel.rows = kept
	}
	return e.projectAndFinish(ctx, st, rel, qp.versions())
}

// selectNoFrom handles SELECT <exprs> with no FROM clause (constants).
func (e *Engine) selectNoFrom(st *SelectStmt) (*Result, error) {
	// No FROM clause: the statement touches no base table, which the
	// stamp records as an explicitly empty version map.
	res := &Result{Versions: map[string]int64{}}
	var row []types.Value
	for _, item := range st.Items {
		if item.Star {
			return nil, fmt.Errorf("sql: * requires FROM")
		}
		f, err := compileExpr(item.Expr, nil)
		if err != nil {
			return nil, err
		}
		v, err := f(nil)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
		res.Columns = append(res.Columns, itemName(item))
	}
	res.Rows = [][]types.Value{row}
	return res, nil
}

// applyResolvable filters rel by every pending conjunct that resolves,
// returning the surviving conjuncts.
func applyResolvable(ctx context.Context, rel *relation, pending []Expr) (*relation, []Expr, error) {
	var rest []Expr
	for _, c := range pending {
		if !resolvable(c, rel.cat) || hasAggregate(c) {
			rest = append(rest, c)
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		f, err := compileExpr(c, rel.cat)
		if err != nil {
			return nil, nil, err
		}
		var evalErr error
		rel.filterInPlace(func(row []types.Value) bool {
			if evalErr != nil {
				return false
			}
			v, err := f(row)
			if err != nil {
				evalErr = err
				return false
			}
			return truthy(v)
		})
		if evalErr != nil {
			return nil, nil, evalErr
		}
	}
	return rel, rest, nil
}

// filterInPlace keeps the rows the predicate selects.
func (r *relation) filterInPlace(keep func(row []types.Value) bool) {
	rows := r.rows[:0]
	for _, row := range r.rows {
		if keep(row) {
			rows = append(rows, row)
		}
	}
	r.rows = rows
}

// joinRelations joins left and right. Equi-join keys are harvested from
// `on` (for JOIN ... ON) and, for inner joins, from the pending WHERE
// conjuncts. Non-key conditions are applied as filters. For LEFT joins the
// whole ON condition is evaluated per pair and unmatched left rows are
// null-extended.
func joinRelations(ctx context.Context, left, right *relation, pending, on []Expr, outer bool) (*relation, []Expr, error) {
	combinedCat := append(append(catalog{}, left.cat...), right.cat...)
	combinedHidden := append(append([]bool{}, left.hidden...), right.hidden...)

	// Right side may have its own single-table filters in ON/WHERE; push
	// them down before hashing (inner joins only — for LEFT JOIN the ON
	// condition must not pre-filter which left rows survive, but filtering
	// the right side is safe and standard).
	var onRest []Expr
	for _, c := range on {
		if resolvable(c, right.cat) {
			f, err := compileExpr(c, right.cat)
			if err != nil {
				return nil, nil, err
			}
			var kept [][]types.Value
			for _, row := range right.rows {
				v, err := f(row)
				if err != nil {
					return nil, nil, err
				}
				if truthy(v) {
					kept = append(kept, row)
				}
			}
			right.rows = kept
			continue
		}
		onRest = append(onRest, c)
	}

	// Harvest equi-join keys: conjuncts of form L = R bridging the sides.
	type keyPair struct{ l, r evalFn }
	var keys []keyPair
	takeKey := func(c Expr) bool {
		b, ok := c.(*BinaryExpr)
		if !ok || b.Op != "=" || hasAggregate(c) {
			return false
		}
		switch {
		case resolvable(b.L, left.cat) && resolvable(b.R, right.cat) &&
			!resolvable(b.L, right.cat) && !resolvable(b.R, left.cat):
			lf, err1 := compileExpr(b.L, left.cat)
			rf, err2 := compileExpr(b.R, right.cat)
			if err1 != nil || err2 != nil {
				return false
			}
			keys = append(keys, keyPair{lf, rf})
			return true
		case resolvable(b.R, left.cat) && resolvable(b.L, right.cat) &&
			!resolvable(b.R, right.cat) && !resolvable(b.L, left.cat):
			lf, err1 := compileExpr(b.R, left.cat)
			rf, err2 := compileExpr(b.L, right.cat)
			if err1 != nil || err2 != nil {
				return false
			}
			keys = append(keys, keyPair{lf, rf})
			return true
		}
		return false
	}
	var onResidual []Expr
	for _, c := range onRest {
		if !takeKey(c) {
			onResidual = append(onResidual, c)
		}
	}
	var pendingRest []Expr
	if !outer {
		for _, c := range pending {
			if !takeKey(c) {
				pendingRest = append(pendingRest, c)
			}
		}
	} else {
		pendingRest = pending
	}

	// Residual ON conditions are evaluated per joined pair.
	var residualFns []evalFn
	for _, c := range onResidual {
		f, err := compileExpr(c, combinedCat)
		if err != nil {
			return nil, nil, err
		}
		residualFns = append(residualFns, f)
	}

	out := &relation{cat: combinedCat, hidden: combinedHidden}
	rightWidth := right.width()

	emit := func(lrow, rrow []types.Value) (bool, error) {
		row := make([]types.Value, 0, len(lrow)+rightWidth)
		row = append(row, lrow...)
		row = append(row, rrow...)
		for _, f := range residualFns {
			v, err := f(row)
			if err != nil {
				return false, err
			}
			if !truthy(v) {
				return false, nil
			}
		}
		out.rows = append(out.rows, row)
		return true, nil
	}

	if len(keys) > 0 {
		// Hash join on the harvested keys.
		buckets := make(map[string][][]types.Value, len(right.rows))
		for _, rrow := range right.rows {
			var kb strings.Builder
			null := false
			for _, k := range keys {
				v, err := k.r(rrow)
				if err != nil {
					return nil, nil, err
				}
				if v.IsNull() {
					null = true
					break
				}
				v.WriteGroupKey(&kb)
			}
			if null {
				continue // NULL never equi-joins
			}
			key := kb.String()
			buckets[key] = append(buckets[key], rrow)
		}
		nullRight := make([]types.Value, rightWidth)
		for li, lrow := range left.rows {
			if err := strideCheck(ctx, li); err != nil {
				return nil, nil, err
			}
			var kb strings.Builder
			null := false
			for _, k := range keys {
				v, err := k.l(lrow)
				if err != nil {
					return nil, nil, err
				}
				if v.IsNull() {
					null = true
					break
				}
				v.WriteGroupKey(&kb)
			}
			matched := false
			if !null {
				for _, rrow := range buckets[kb.String()] {
					ok, err := emit(lrow, rrow)
					if err != nil {
						return nil, nil, err
					}
					matched = matched || ok
				}
			}
			if outer && !matched {
				// Unmatched left rows are null-extended; the ON condition
				// does not filter them (standard LEFT JOIN semantics).
				row := make([]types.Value, 0, len(lrow)+rightWidth)
				row = append(row, lrow...)
				row = append(row, nullRight...)
				out.rows = append(out.rows, row)
			}
		}
	} else {
		// Nested-loop join (cross product with residual filters).
		nullRight := make([]types.Value, rightWidth)
		for li, lrow := range left.rows {
			if err := strideCheck(ctx, li); err != nil {
				return nil, nil, err
			}
			matched := false
			for _, rrow := range right.rows {
				ok, err := emit(lrow, rrow)
				if err != nil {
					return nil, nil, err
				}
				matched = matched || ok
			}
			if outer && !matched {
				row := make([]types.Value, 0, len(lrow)+rightWidth)
				row = append(row, lrow...)
				row = append(row, nullRight...)
				out.rows = append(out.rows, row)
			}
		}
	}

	// Apply any WHERE conjunct that becomes resolvable on the joined shape.
	return applyResolvable(ctx, out, pendingRest)
}

// aggCall pairs an aggregate expression with its accumulator factory.
type aggCall struct {
	fn  *FuncExpr
	arg evalFn // nil for COUNT(*)
}

// collectAggs finds the distinct aggregate calls in the given expressions.
func collectAggs(cat catalog, exprs ...Expr) (map[string]int, []aggCall, error) {
	env := map[string]int{}
	var calls []aggCall
	var walk func(e Expr) error
	walk = func(e Expr) error {
		switch n := e.(type) {
		case nil, *Literal, *ColumnRef:
		case *FuncExpr:
			if aggregateFuncs[n.Name] {
				key := exprString(n)
				if _, ok := env[key]; ok {
					return nil
				}
				var arg evalFn
				if !n.Star {
					if len(n.Args) != 1 {
						return fmt.Errorf("sql: %s takes one argument", n.Name)
					}
					if hasAggregate(n.Args[0]) {
						return fmt.Errorf("sql: nested aggregates are not allowed")
					}
					f, err := compileExpr(n.Args[0], cat)
					if err != nil {
						return err
					}
					arg = f
				}
				env[key] = len(cat) + len(calls)
				calls = append(calls, aggCall{fn: n, arg: arg})
				return nil
			}
			for _, a := range n.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
		case *BinaryExpr:
			if err := walk(n.L); err != nil {
				return err
			}
			return walk(n.R)
		case *UnaryExpr:
			return walk(n.E)
		case *IsNullExpr:
			return walk(n.E)
		case *InExpr:
			if err := walk(n.E); err != nil {
				return err
			}
			for _, v := range n.List {
				if err := walk(v); err != nil {
					return err
				}
			}
		case *BetweenExpr:
			if err := walk(n.E); err != nil {
				return err
			}
			if err := walk(n.Lo); err != nil {
				return err
			}
			return walk(n.Hi)
		case *CaseExpr:
			for _, w := range n.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Then); err != nil {
					return err
				}
			}
			return walk(n.Else)
		}
		return nil
	}
	for _, e := range exprs {
		if err := walk(e); err != nil {
			return nil, nil, err
		}
	}
	return env, calls, nil
}

// aggState accumulates one aggregate over one group.
type aggState struct {
	call     aggCall
	count    int64
	sumI     int64
	sumF     float64
	allInt   bool
	min, max types.Value
	distinct map[string]bool
}

func newAggState(c aggCall) *aggState {
	s := &aggState{call: c, allInt: true, min: types.Null, max: types.Null}
	if c.fn.Distinct {
		s.distinct = map[string]bool{}
	}
	return s
}

func (s *aggState) add(row []types.Value) error {
	if s.call.fn.Star {
		s.count++
		return nil
	}
	v, err := s.call.arg(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // aggregates skip NULLs
	}
	if s.distinct != nil {
		k := v.Key()
		if s.distinct[k] {
			return nil
		}
		s.distinct[k] = true
	}
	s.count++
	switch s.call.fn.Name {
	case "SUM", "AVG":
		switch v.Kind() {
		case types.KindInt:
			s.sumI += v.Int()
			s.sumF += float64(v.Int())
		case types.KindFloat:
			s.allInt = false
			s.sumF += v.Float()
		default:
			return fmt.Errorf("sql: %s over %s values", s.call.fn.Name, v.Kind())
		}
	case "MIN":
		if s.min.IsNull() || v.Compare(s.min) < 0 {
			s.min = v
		}
	case "MAX":
		if s.max.IsNull() || v.Compare(s.max) > 0 {
			s.max = v
		}
	}
	return nil
}

func (s *aggState) result() types.Value {
	switch s.call.fn.Name {
	case "COUNT":
		return types.NewInt(s.count)
	case "SUM":
		if s.count == 0 {
			return types.Null
		}
		if s.allInt {
			return types.NewInt(s.sumI)
		}
		return types.NewFloat(s.sumF)
	case "AVG":
		if s.count == 0 {
			return types.Null
		}
		return types.NewFloat(s.sumF / float64(s.count))
	case "MIN":
		return s.min
	case "MAX":
		return s.max
	}
	return types.Null
}

// projectAndFinish runs grouping, having, projection, distinct, order and
// limit over the filtered relation. versions is the per-base-table pin map
// the query resolved; it stamps the Result at construction.
func (e *Engine) projectAndFinish(ctx context.Context, st *SelectStmt, rel *relation, versions map[string]int64) (*Result, error) {
	var orderExprs []Expr
	for _, oi := range st.OrderBy {
		orderExprs = append(orderExprs, oi.Expr)
	}
	var itemExprs []Expr
	for _, it := range st.Items {
		if !it.Star {
			itemExprs = append(itemExprs, it.Expr)
		}
	}
	needsGroup := len(st.GroupBy) > 0 || st.Having != nil
	if !needsGroup {
		for _, ex := range append(append([]Expr{}, itemExprs...), orderExprs...) {
			if hasAggregate(ex) {
				needsGroup = true
				break
			}
		}
	}

	var aggEnv map[string]int
	if needsGroup {
		all := append(append([]Expr{}, itemExprs...), orderExprs...)
		if st.Having != nil {
			all = append(all, st.Having)
		}
		env, calls, err := collectAggs(rel.cat, all...)
		if err != nil {
			return nil, err
		}
		aggEnv = env

		var keyFns []evalFn
		for _, g := range st.GroupBy {
			f, err := compileExpr(g, rel.cat)
			if err != nil {
				return nil, err
			}
			keyFns = append(keyFns, f)
		}

		type group struct {
			rep    []types.Value
			states []*aggState
		}
		groups := map[string]*group{}
		var order []string
		for i, row := range rel.rows {
			if err := strideCheck(ctx, i); err != nil {
				return nil, err
			}
			var kb strings.Builder
			for _, f := range keyFns {
				v, err := f(row)
				if err != nil {
					return nil, err
				}
				v.WriteGroupKey(&kb)
			}
			key := kb.String()
			g, ok := groups[key]
			if !ok {
				g = &group{rep: row}
				for _, c := range calls {
					g.states = append(g.states, newAggState(c))
				}
				groups[key] = g
				order = append(order, key)
			}
			for _, s := range g.states {
				if err := s.add(row); err != nil {
					return nil, err
				}
			}
		}
		// Global aggregate over an empty input still yields one group.
		if len(groups) == 0 && len(st.GroupBy) == 0 {
			g := &group{rep: make([]types.Value, rel.width())}
			for _, c := range calls {
				g.states = append(g.states, newAggState(c))
			}
			groups[""] = g
			order = append(order, "")
		}
		// Rebuild the relation: representative row + aggregate results.
		grel := &relation{cat: rel.cat, hidden: rel.hidden}
		for range calls {
			grel.cat = append(grel.cat, colInfo{})
			grel.hidden = append(grel.hidden, true)
		}
		for _, key := range order {
			g := groups[key]
			row := make([]types.Value, 0, grel.width())
			row = append(row, g.rep...)
			for _, s := range g.states {
				row = append(row, s.result())
			}
			grel.rows = append(grel.rows, row)
		}
		rel = grel

		if st.Having != nil {
			f, err := compileExprAgg(st.Having, rel.cat, aggEnv)
			if err != nil {
				return nil, err
			}
			var kept [][]types.Value
			for _, row := range rel.rows {
				v, err := f(row)
				if err != nil {
					return nil, err
				}
				if truthy(v) {
					kept = append(kept, row)
				}
			}
			rel.rows = kept
		}
	}

	// Compile the projection.
	type proj struct {
		name string
		fn   evalFn
	}
	var projs []proj
	for _, it := range st.Items {
		if it.Star {
			for i, ci := range rel.cat {
				if rel.hidden[i] {
					continue
				}
				if it.StarTable != "" && !strings.EqualFold(ci.qual, it.StarTable) {
					continue
				}
				idx := i
				projs = append(projs, proj{name: ci.name, fn: func(row []types.Value) (types.Value, error) {
					return row[idx], nil
				}})
			}
			continue
		}
		f, err := compileExprAgg(it.Expr, rel.cat, aggEnv)
		if err != nil {
			return nil, err
		}
		projs = append(projs, proj{name: itemName(it), fn: f})
	}
	if len(projs) == 0 {
		return nil, fmt.Errorf("sql: empty select list")
	}

	// Compile ORDER BY keys: against the relation, or against an output
	// alias when the expression is a bare name matching one.
	type orderKey struct {
		fn    evalFn // against relation row; nil when byOutput >= 0
		byOut int
		desc  bool
	}
	var orderKeys []orderKey
	for _, oi := range st.OrderBy {
		ok := orderKey{byOut: -1, desc: oi.Desc}
		if f, err := compileExprAgg(oi.Expr, rel.cat, aggEnv); err == nil {
			ok.fn = f
		} else if cr, isRef := oi.Expr.(*ColumnRef); isRef && cr.Table == "" {
			found := -1
			for i, p := range projs {
				if strings.EqualFold(p.name, cr.Column) {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, err
			}
			ok.byOut = found
		} else {
			return nil, err
		}
		orderKeys = append(orderKeys, ok)
	}

	res := &Result{Versions: versions}
	for _, p := range projs {
		res.Columns = append(res.Columns, p.name)
	}
	type outRow struct {
		vals []types.Value
		keys []types.Value
	}
	var out []outRow
	seen := map[string]bool{}
	for ri, row := range rel.rows {
		if err := strideCheck(ctx, ri); err != nil {
			return nil, err
		}
		or := outRow{vals: make([]types.Value, len(projs))}
		for i, p := range projs {
			v, err := p.fn(row)
			if err != nil {
				return nil, err
			}
			or.vals[i] = v
		}
		if st.Distinct {
			var kb strings.Builder
			for _, v := range or.vals {
				v.WriteGroupKey(&kb)
			}
			k := kb.String()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		for _, okey := range orderKeys {
			var v types.Value
			if okey.byOut >= 0 {
				v = or.vals[okey.byOut]
			} else {
				var err error
				v, err = okey.fn(row)
				if err != nil {
					return nil, err
				}
			}
			or.keys = append(or.keys, v)
		}
		out = append(out, or)
	}

	if len(orderKeys) > 0 {
		sort.SliceStable(out, func(i, j int) bool {
			for k, okey := range orderKeys {
				c := out[i].keys[k].Compare(out[j].keys[k])
				if c == 0 {
					continue
				}
				if okey.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}

	// OFFSET / LIMIT.
	if st.Offset > 0 {
		if st.Offset >= len(out) {
			out = nil
		} else {
			out = out[st.Offset:]
		}
	}
	if st.Limit >= 0 && st.Limit < len(out) {
		out = out[:st.Limit]
	}
	for _, or := range out {
		res.Rows = append(res.Rows, or.vals)
	}
	return res, nil
}

// itemName returns the output column name of a projection item.
func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*ColumnRef); ok {
		return cr.Column
	}
	return exprString(it.Expr)
}

func (e *Engine) runInsert(st *InsertStmt) (*Result, error) {
	tab, ok := e.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", st.Table)
	}
	sc := tab.Schema()
	var colPos []int
	if len(st.Cols) > 0 {
		pos, err := sc.Positions(st.Cols)
		if err != nil {
			return nil, err
		}
		colPos = pos
	}
	n := 0
	for _, exprRow := range st.Rows {
		if colPos == nil && len(exprRow) != sc.Arity() {
			return nil, fmt.Errorf("sql: INSERT has %d values, table %s has %d columns",
				len(exprRow), st.Table, sc.Arity())
		}
		if colPos != nil && len(exprRow) != len(colPos) {
			return nil, fmt.Errorf("sql: INSERT has %d values for %d columns",
				len(exprRow), len(colPos))
		}
		row := make(relstore.Tuple, sc.Arity())
		for i := range row {
			row[i] = types.Null
		}
		for i, ex := range exprRow {
			f, err := compileExpr(ex, nil)
			if err != nil {
				return nil, err
			}
			v, err := f(nil)
			if err != nil {
				return nil, err
			}
			if colPos != nil {
				row[colPos[i]] = v
			} else {
				row[i] = v
			}
		}
		if _, err := tab.Insert(row); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{
		Affected: n,
		Versions: map[string]int64{strings.ToLower(sc.Name): tab.Version()},
	}, nil
}

// tableEnv builds the catalog for single-table DML (alias = table name, no
// hidden _tid: DML operates on visible columns, IDs are collected aside).
func tableEnv(tab *relstore.Table) catalog {
	sc := tab.Schema()
	cat := make(catalog, 0, sc.Arity())
	for _, a := range sc.Attrs {
		cat = append(cat, colInfo{qual: sc.Name, name: a.Name})
	}
	return cat
}

func (e *Engine) runUpdate(ctx context.Context, st *UpdateStmt) (*Result, error) {
	tab, ok := e.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", st.Table)
	}
	sc := tab.Schema()
	cat := tableEnv(tab)
	var where evalFn
	if st.Where != nil {
		f, err := compileExpr(st.Where, cat)
		if err != nil {
			return nil, err
		}
		where = f
	}
	type change struct {
		pos int
		fn  evalFn
	}
	var changes []change
	for _, setc := range st.Set {
		pos, ok := sc.Pos(setc.Col)
		if !ok {
			return nil, fmt.Errorf("sql: no column %q in %s", setc.Col, st.Table)
		}
		f, err := compileExpr(setc.Expr, cat)
		if err != nil {
			return nil, err
		}
		changes = append(changes, change{pos: pos, fn: f})
	}
	type pendingUpdate struct {
		id  relstore.TupleID
		row relstore.Tuple
	}
	var updates []pendingUpdate
	var scanErr error
	n := 0
	// Pin the read phase: the WHERE scan evaluates exactly one table
	// version even while other writers interleave; the apply phase below
	// then re-locks per tuple as usual.
	tab.Snapshot().Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if n++; n%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				scanErr = err
				return false
			}
		}
		if where != nil {
			v, err := where(row)
			if err != nil {
				scanErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		newRow := row.Clone()
		for _, c := range changes {
			v, err := c.fn(row)
			if err != nil {
				scanErr = err
				return false
			}
			newRow[c.pos] = v
		}
		updates = append(updates, pendingUpdate{id: id, row: newRow})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for _, u := range updates {
		if err := tab.Update(u.id, u.row); err != nil {
			return nil, err
		}
	}
	return &Result{
		Affected: len(updates),
		Versions: map[string]int64{strings.ToLower(sc.Name): tab.Version()},
	}, nil
}

func (e *Engine) runDelete(ctx context.Context, st *DeleteStmt) (*Result, error) {
	tab, ok := e.store.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", st.Table)
	}
	cat := tableEnv(tab)
	var where evalFn
	if st.Where != nil {
		f, err := compileExpr(st.Where, cat)
		if err != nil {
			return nil, err
		}
		where = f
	}
	var ids []relstore.TupleID
	var scanErr error
	n := 0
	// Pin the read phase (see runUpdate): one version for the WHERE scan.
	tab.Snapshot().Scan(func(id relstore.TupleID, row relstore.Tuple) bool {
		if n++; n%cancelStride == 0 {
			if err := ctx.Err(); err != nil {
				scanErr = err
				return false
			}
		}
		if where != nil {
			v, err := where(row)
			if err != nil {
				scanErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	// The apply phase deliberately runs to completion: aborting between
	// deletes would leave the DML half-applied with an error return.
	//semandaq:vet-ignore ctxloop apply phase is atomic by design
	for _, id := range ids {
		tab.Delete(id)
	}
	return &Result{
		Affected: len(ids),
		Versions: map[string]int64{strings.ToLower(tab.Schema().Name): tab.Version()},
	}, nil
}

func (e *Engine) runCreate(st *CreateTableStmt) (*Result, error) {
	attrs := make([]schema.Attribute, len(st.Cols))
	for i, c := range st.Cols {
		attrs[i] = schema.Attribute{Name: c.Name, Type: c.Type}
	}
	tab, err := e.store.Create(schema.NewTyped(st.Table, attrs...))
	if err != nil {
		return nil, err
	}
	return &Result{
		Versions: map[string]int64{strings.ToLower(st.Table): tab.Version()},
	}, nil
}

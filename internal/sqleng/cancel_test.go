package sqleng

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// cancelFixture builds a store with one table big enough that every
// executor phase crosses at least one cancellation stride.
func cancelFixture(t *testing.T, rows int) *Engine {
	t.Helper()
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("r", "A", "B"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		tab.MustInsert(relstore.Tuple{
			types.NewInt(int64(i % 97)),
			types.NewString(fmt.Sprintf("v%d", i%13)),
		})
	}
	return New(store)
}

// TestQueryContextPreCancelled asserts a cancelled context aborts every
// statement class on both read paths (columnar scan and row scan).
func TestQueryContextPreCancelled(t *testing.T) {
	queries := []string{
		"SELECT COUNT(*) FROM r",
		"SELECT A, COUNT(*) FROM r GROUP BY A",
		"SELECT t1.A FROM r t1, r t2 WHERE t1.A = t2.A",
		"UPDATE r SET B = 'x' WHERE A = 1",
		"DELETE FROM r WHERE A = 2",
	}
	for _, rowScan := range []bool{false, true} {
		e := cancelFixture(t, 3*cancelStride)
		e.SetColumnarScan(!rowScan)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, q := range queries {
			if _, err := e.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
				t.Errorf("rowScan=%v %q: err = %v, want context.Canceled", rowScan, q, err)
			}
		}
	}
}

// TestQueryContextBackgroundUnaffected pins that the cancellation plumbing
// does not change results: Query and QueryContext(Background) agree.
func TestQueryContextBackgroundUnaffected(t *testing.T) {
	e := cancelFixture(t, 500)
	a, err := e.Query("SELECT A, COUNT(*) AS n FROM r GROUP BY A ORDER BY n DESC, A LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.QueryContext(context.Background(), "SELECT A, COUNT(*) AS n FROM r GROUP BY A ORDER BY n DESC, A LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("rows %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !a.Rows[i][j].Equal(b.Rows[i][j]) {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

// TestCancelledDMLLeavesTableIntact asserts a cancelled UPDATE/DELETE
// applies nothing: mutations only run after a complete uncancelled scan.
func TestCancelledDMLLeavesTableIntact(t *testing.T) {
	e := cancelFixture(t, 2*cancelStride)
	before := e.MustQuery("SELECT COUNT(*) FROM r WHERE B = 'x'").Rows[0][0].Int()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, "UPDATE r SET B = 'x'"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	after := e.MustQuery("SELECT COUNT(*) FROM r WHERE B = 'x'").Rows[0][0].Int()
	if before != after {
		t.Errorf("cancelled UPDATE modified %d rows", after-before)
	}
	total := e.MustQuery("SELECT COUNT(*) FROM r").Rows[0][0].Int()
	if _, err := e.QueryContext(ctx, "DELETE FROM r"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if got := e.MustQuery("SELECT COUNT(*) FROM r").Rows[0][0].Int(); got != total {
		t.Errorf("cancelled DELETE removed %d rows", total-got)
	}
}

package sqleng

import (
	"context"
	"reflect"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// TestStreamBasic: a streamed query yields the same rows, in the same
// order, as the eager Result.
func TestStreamBasic(t *testing.T) {
	e := New(newJoinStore(t))
	sql := `SELECT o.OID, c.CITY FROM orders o, cust c WHERE o.CID = c.CID`
	want := e.MustQuery(sql)
	ss, err := e.Stream(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ss.Columns, want.Columns) {
		t.Errorf("columns = %v, want %v", ss.Columns, want.Columns)
	}
	var got [][]types.Value
	if err := ss.Each(context.Background(), func(row []types.Value) bool {
		got = append(got, row)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Rows) {
		t.Errorf("rows = %v, want %v", got, want.Rows)
	}
	if !reflect.DeepEqual(ss.Versions, want.Versions) {
		t.Errorf("versions = %v, want %v", ss.Versions, want.Versions)
	}
}

// TestStreamVersionsPinnedAtCreation is the regression test for the
// multi-table version stamp: Versions must record the snapshots pinned
// when the stream (or query) was created, and mutations made between
// creation and consumption must affect neither the stamp nor the rows.
func TestStreamVersionsPinnedAtCreation(t *testing.T) {
	store := relstore.NewStore()
	left, err := store.Create(schema.New("l", "K", "A"))
	if err != nil {
		t.Fatal(err)
	}
	right, err := store.Create(schema.New("r", "K", "B"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		left.MustInsert(relstore.Tuple{types.NewInt(int64(i)), types.NewInt(int64(10 + i))})
		right.MustInsert(relstore.Tuple{types.NewInt(int64(i)), types.NewInt(int64(20 + i))})
	}
	e := New(store)

	lv, rv := left.Version(), right.Version()
	ss, err := e.Stream(context.Background(), "SELECT l.A, r.B FROM l, r WHERE l.K = r.K")
	if err != nil {
		t.Fatal(err)
	}
	if ss.Versions["l"] != lv || ss.Versions["r"] != rv {
		t.Fatalf("versions at creation = %v, want l=%d r=%d", ss.Versions, lv, rv)
	}

	// Mutate both base tables after the stream pinned its snapshots but
	// before any row is consumed.
	left.MustInsert(relstore.Tuple{types.NewInt(99), types.NewInt(999)})
	right.MustInsert(relstore.Tuple{types.NewInt(99), types.NewInt(888)})
	if left.Version() == lv || right.Version() == rv {
		t.Fatal("mutation did not bump table versions")
	}

	rows := 0
	if err := ss.Each(context.Background(), func(row []types.Value) bool {
		if row[0].Int() >= 900 || row[1].Int() >= 800 {
			t.Errorf("row %v leaked from a post-pin mutation", row)
		}
		rows++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 4 {
		t.Errorf("rows = %d, want 4 (pinned snapshot size)", rows)
	}
	// The stamp still reflects pin time, not consumption time.
	if ss.Versions["l"] != lv || ss.Versions["r"] != rv {
		t.Errorf("versions after mutation = %v, want l=%d r=%d", ss.Versions, lv, rv)
	}

	// The eager path stamps the same way: a fresh query now sees the new
	// versions, proving the old stamp was the pinned one.
	res := e.MustQuery("SELECT l.A, r.B FROM l, r WHERE l.K = r.K")
	if res.Versions["l"] != left.Version() || res.Versions["r"] != right.Version() {
		t.Errorf("fresh query versions = %v", res.Versions)
	}
	if len(res.Rows) != 5 {
		t.Errorf("fresh query rows = %d, want 5", len(res.Rows))
	}
}

// TestStreamEarlyStop: yield returning false stops iteration without error.
func TestStreamEarlyStop(t *testing.T) {
	e := New(newJoinStore(t))
	ss, err := e.Stream(context.Background(), "SELECT OID FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ss.Each(context.Background(), func(row []types.Value) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("yielded %d rows, want 3", n)
	}
}

// TestStreamGroupedQuery: grouping queries materialize behind Each but
// must produce identical output.
func TestStreamGroupedQuery(t *testing.T) {
	e := New(newJoinStore(t))
	sql := `SELECT c.CITY, COUNT(*) AS n FROM orders o, cust c
	        WHERE o.CID = c.CID GROUP BY c.CITY ORDER BY n DESC, c.CITY`
	want := e.MustQuery(sql)
	ss, err := e.Stream(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]types.Value
	if err := ss.Each(context.Background(), func(row []types.Value) bool {
		got = append(got, row)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Rows) {
		t.Errorf("rows = %v, want %v", got, want.Rows)
	}
}

// TestStreamLegacyEngine: the row-scan oracle path still supports Stream
// (materialized eagerly) with identical output.
func TestStreamLegacyEngine(t *testing.T) {
	e := New(newJoinStore(t))
	e.SetColumnarScan(false)
	sql := "SELECT OID FROM orders WHERE CID = 1"
	want := e.MustQuery(sql)
	ss, err := e.Stream(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]types.Value
	if err := ss.Each(context.Background(), func(row []types.Value) bool {
		got = append(got, row)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want.Rows) {
		t.Errorf("rows = %v, want %v", got, want.Rows)
	}
}

// TestStreamGroupedYield: grouped queries WITHOUT an ORDER BY stream each
// finished group straight through yield (no output materialization), in
// first-appearance order, with HAVING/DISTINCT/OFFSET/LIMIT applied inline
// and early-stop honored.
func TestStreamGroupedYield(t *testing.T) {
	e := New(newJoinStore(t))
	queries := []string{
		`SELECT c.CITY, COUNT(*) AS n FROM orders o, cust c
		 WHERE o.CID = c.CID GROUP BY c.CITY`,
		`SELECT c.CITY FROM orders o, cust c
		 WHERE o.CID = c.CID GROUP BY c.CITY HAVING COUNT(*) > 4`,
		`SELECT CID, MAX(OID) FROM orders GROUP BY CID LIMIT 1 OFFSET 1`,
		`SELECT COUNT(*) FROM orders WHERE OID < 0`,
	}
	for _, sql := range queries {
		want := e.MustQuery(sql)
		ss, err := e.Stream(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		var got [][]types.Value
		if err := ss.Each(context.Background(), func(row []types.Value) bool {
			got = append(got, row)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Rows) || (len(got) > 0 && !reflect.DeepEqual(got, want.Rows)) {
			t.Errorf("%s:\nstream: %v\neager:  %v", sql, got, want.Rows)
		}
	}

	// Early stop mid-groups: yield false after the first group.
	ss, err := e.Stream(context.Background(),
		`SELECT CID, COUNT(*) FROM orders GROUP BY CID`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ss.Each(context.Background(), func(row []types.Value) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("yielded %d group rows after stop, want 1", n)
	}
}

// The planner for the streaming SELECT path: buildSelectPlan lowers a
// SelectStmt onto the query's pinned snapshots as a left-deep pipeline of
// columnar scans and join steps, placing every WHERE/ON conjunct at exactly
// the stage the legacy materializing executor would have applied it. That
// placement discipline is the identity contract: the streaming executor in
// iterator.go enumerates the same logical rows in the same order as
// exec.go's legacy path, so the two produce byte-identical Results (the
// cross-check battery and FuzzSQLExec hold both paths to it).
//
// On top of the legacy-faithful skeleton the planner layers optimizations
// that provably cannot change the result:
//
//   - code filters: equality-with-literal and IS [NOT] NULL conjuncts on a
//     scan run against dictionary codes before any value is materialized;
//   - join indexes: equi-join steps probe the right side through its PLI
//     classes (single bare column) or a hash index over composite keys,
//     instead of nesting loops;
//   - greedy probe ordering by exact statistics: every indexed inner join
//     whose left key is computable from an earlier prefix is probed as soon
//     as that prefix is filled, most selective first, ranked by expected
//     matches = right rows / PLI class count (or dictionary-cardinality
//     product) — numbers the snapshot carries exactly, never estimates;
//   - filter pushdown of pure right-only WHERE conjuncts into inner join
//     builds, and LIMIT-driven early termination through the pipeline.
//
// Everything that changes *which* rows an expression is evaluated on is
// gated on purity (pureExpr): a pure expression can never return an
// evaluation error, so reordering or skipping its evaluations cannot make
// an error appear or disappear relative to the legacy path. Impure plans
// simply run the legacy staging verbatim, streamed.
package sqleng

import (
	"fmt"
	"strings"

	"semandaq/internal/fdset"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// filterPred is one compiled conjunct plus the metadata the planner needs:
// the source expression (for EXPLAIN and recompilation) and whether it is
// pure (evaluation can never error).
type filterPred struct {
	fn   evalFn
	src  Expr
	pure bool
}

// Code-filter operators: predicates decided per row from dictionary codes
// alone, before any value materializes.
const (
	cfNone    uint8 = iota // no row matches (e.g. col = NULL, absent literal)
	cfEq                   // EqCode(row) == code
	cfIsNull               // Code(row) == code (the NULL code)
	cfNotNull              // Code(row) != code
	cfTrue                 // every row matches (IS NOT NULL, no NULLs stored)
)

// codeFilter is one code-level predicate on a scan's column.
type codeFilter struct {
	op   uint8
	col  *relstore.Column
	code uint32
	src  Expr
}

// match decides the predicate for snapshot row r.
func (cf *codeFilter) match(r int) bool {
	switch cf.op {
	case cfEq:
		return cf.col.EqCode(r) == cf.code
	case cfIsNull:
		return cf.col.Code(r) == cf.code
	case cfNotNull:
		return cf.col.Code(r) != cf.code
	case cfTrue:
		return true
	default: // cfNone
		return false
	}
}

// scanNode is one base-table access: a pinned columnar snapshot plus the
// predicates pushed down to it. start/arity locate the scan's segment
// (hidden _tid first, then the attributes) inside the full pipeline row.
type scanNode struct {
	alias string
	table string
	snap  *relstore.Snapshot
	cnr   *relstore.Columnar
	cat   catalog // this scan's own catalog: [_tid, attrs...]
	start int     // offset of the scan's segment in the full row
	arity int     // segment width (1 + number of attributes)
	// codeFs run against dictionary codes; filters are compiled against the
	// scan's own catalog and evaluated on the scan's local row. The driver
	// scan keeps its compiled WHERE conjuncts in plan.stages[0] instead
	// (they may reference the full prefix catalog conventions); filters here
	// hold right-side pushdown only.
	codeFs  []codeFilter
	filters []filterPred
}

// stepKind selects the join algorithm of one step.
type stepKind uint8

const (
	stepNested stepKind = iota // no equi-key: filtered nested loop
	stepPLI                    // single bare right column: PLI-class probe
	stepHash                   // composite/expression keys: hash index
)

func (k stepKind) String() string {
	switch k {
	case stepPLI:
		return "pli"
	case stepHash:
		return "hash"
	default:
		return "nested"
	}
}

// joinStep joins the pipeline prefix with one more scan. Key expressions
// were harvested exactly like the legacy takeKey (bare `=` conjuncts
// bridging the sides, from ON first, then — inner joins only — from the
// pending WHERE list).
type joinStep struct {
	right    *scanNode
	rightIdx int // scan index of the right side (= step index + 1)
	outer    bool
	kind     stepKind

	keyL    []evalFn // against the full row's filled prefix
	keyLSrc []Expr
	keyR    []evalFn // against the right scan's local row
	keyRSrc []Expr
	keyRCol int  // stepPLI: snapshot column index of the key column
	keyPure bool // every key expression on both sides is pure

	residuals []filterPred // leftover ON conjuncts, against the combined prefix

	// Exact statistics (never estimated): right row count, and the number
	// of key classes when the key is statable — PLI class count for a
	// single column, capped dictionary-cardinality product for composite
	// bare-column keys, 0 when the key is a computed expression.
	rightLen int
	classes  int
	expected float64 // rightLen / classes (rightLen when classes == 0)

	// probeAt is the earliest stage (number of scans filled minus one) at
	// which the step's left key is computable. When the plan is pure and
	// probeAt precedes the step's own stage, the executor probes the index
	// there and kills doomed prefixes early; otherwise probeAt equals the
	// step's own stage.
	probeAt int

	// FD collapse (fdjoin.go): a composite key whose lead column
	// functionally determines the others per the registered FDs probes as
	// stepPLI on the lead, with the remaining key columns checked per
	// candidate by dictionary-code equality.
	collapsed bool
	leadKey   int      // index into keyL/keyR of the PLI probe key (0 unless collapsed)
	guardKeys []int    // collapsed: other key indexes, guarded per candidate
	guardCols []int    // collapsed: right snapshot columns parallel to guardKeys
	fdLines   []string // collapsed: rendered licensing derivations for EXPLAIN
}

// selectPlan is a fully compiled SELECT: scans, join steps, stage filters,
// the greedy probe schedule and the result sink, with the per-table pinned
// versions captured at plan (pin) time.
type selectPlan struct {
	st     *SelectStmt
	cat    catalog
	hidden []bool
	scans  []*scanNode
	steps  []*joinStep
	// stages[d] holds the WHERE conjuncts that become evaluable once scans
	// 0..d are filled, in original WHERE order — exactly the conjuncts the
	// legacy path's applyResolvable claims after join d.
	stages [][]filterPred
	// probesAt[d] lists indexes of steps probed right after stage d's
	// filters pass, most selective first (ascending expected matches).
	probesAt [][]int
	versions map[string]int64
	pure     bool // every predicate and key in the plan is pure
	sink     *streamSink
	// ops points at the owning engine's executor operation counters
	// (fdjoin.go); the executor increments them as it probes and builds.
	ops *OpCounters
}

// prefixCat returns the catalog covering scans 0..i — the same catalog the
// legacy path's joinRelations would have as combinedCat after join i.
func (p *selectPlan) prefixCat(i int) catalog {
	sc := p.scans[i]
	return p.cat[:sc.start+sc.arity]
}

// scanOf maps a full-row column position to the owning scan index.
func (p *selectPlan) scanOf(pos int) int {
	for i := len(p.scans) - 1; i > 0; i-- {
		if pos >= p.scans[i].start {
			return i
		}
	}
	return 0
}

// buildSelectPlan compiles st against the engine's store and pins. Every
// compile error the legacy path would eventually hit surfaces here instead
// (compilation is deterministic, so error presence is preserved; only the
// point in time moves).
func (e *Engine) buildSelectPlan(st *SelectStmt) (*selectPlan, error) {
	if err := e.validateRefs(st); err != nil {
		return nil, err
	}
	pending := splitConjuncts(st.Where)
	qp := e.newQueryPins()
	p := &selectPlan{st: st, ops: &e.ops}

	type fromSpec struct {
		fi    FromItem
		on    []Expr
		outer bool
		join  bool // false for the driver scan
	}
	var specs []fromSpec
	for i, fi := range st.From {
		specs = append(specs, fromSpec{fi: fi, join: i > 0})
	}
	for _, jc := range st.Joins {
		specs = append(specs, fromSpec{fi: jc.Item, on: splitConjuncts(jc.On), outer: jc.Left, join: true})
	}

	for _, spec := range specs {
		snap, ok := qp.snapshot(spec.fi.Table)
		if !ok {
			return nil, fmt.Errorf("sql: no table %q", spec.fi.Table)
		}
		sc := &scanNode{
			alias: spec.fi.Alias,
			table: spec.fi.Table,
			snap:  snap,
			cnr:   snap.Columnar(),
			start: len(p.cat),
		}
		sc.cat = append(sc.cat, colInfo{qual: spec.fi.Alias, name: TIDColumn})
		p.cat = append(p.cat, colInfo{qual: spec.fi.Alias, name: TIDColumn})
		p.hidden = append(p.hidden, true)
		for _, a := range snap.Schema().Attrs {
			sc.cat = append(sc.cat, colInfo{qual: spec.fi.Alias, name: a.Name})
			p.cat = append(p.cat, colInfo{qual: spec.fi.Alias, name: a.Name})
			p.hidden = append(p.hidden, false)
		}
		sc.arity = len(sc.cat)
		p.scans = append(p.scans, sc)
	}
	p.stages = make([][]filterPred, len(p.scans))
	p.versions = qp.versions()

	// Driver scan: claim WHERE conjuncts resolvable on the first table in
	// order, exactly as the legacy applyResolvable does. Code-comparable
	// shapes are implemented as dictionary-code filters, which execute
	// before the compiled ones regardless of claim position — legal only
	// while no impure filter was claimed ahead of them (the code shapes are
	// pure, and jumping a pure filter over another pure filter cannot
	// change any observable outcome; jumping over an impure one could move
	// an evaluation error).
	driver := p.scans[0]
	impureSeen := false
	var later []Expr
	for _, c := range pending {
		if !resolvable(c, driver.cat) || hasAggregate(c) {
			later = append(later, c)
			continue
		}
		if !impureSeen {
			if cf, ok := codeFilterOf(driver, c); ok {
				driver.codeFs = append(driver.codeFs, cf)
				continue
			}
		}
		f, err := compileExpr(c, driver.cat)
		if err != nil {
			return nil, err
		}
		pure := pureExpr(c)
		p.stages[0] = append(p.stages[0], filterPred{fn: f, src: c, pure: pure})
		if !pure {
			impureSeen = true
		}
	}
	pending = later
	var err error

	// Join steps, in written order (the enumeration order is part of the
	// result for queries without ORDER BY, so it is never reordered; the
	// greedy statistics reorder probes, not output).
	for i, spec := range specs[1:] {
		right := p.scans[i+1]
		step := &joinStep{right: right, rightIdx: i + 1, outer: spec.outer, rightLen: right.cnr.Len()}

		// ON conjuncts resolvable on the right side alone are pushed into
		// the right scan (legacy does this for both join kinds, before key
		// harvesting).
		var onRest []Expr
		for _, c := range spec.on {
			if resolvable(c, right.cat) {
				f, err := compileExpr(c, right.cat)
				if err != nil {
					return nil, err
				}
				right.filters = append(right.filters, filterPred{fn: f, src: c, pure: pureExpr(c)})
				continue
			}
			onRest = append(onRest, c)
		}

		leftCat := p.prefixCat(i)
		var onResidual []Expr
		for _, c := range onRest {
			if !p.takeKey(step, c, leftCat, right.cat) {
				onResidual = append(onResidual, c)
			}
		}
		if !spec.outer {
			var rest []Expr
			for _, c := range pending {
				if !p.takeKey(step, c, leftCat, right.cat) {
					rest = append(rest, c)
				}
			}
			pending = rest
		}

		combined := p.prefixCat(i + 1)
		for _, c := range onResidual {
			f, err := compileExpr(c, combined)
			if err != nil {
				return nil, err
			}
			step.residuals = append(step.residuals, filterPred{fn: f, src: c, pure: pureExpr(c)})
		}
		p.steps = append(p.steps, step)

		// WHERE conjuncts that become resolvable on the widened prefix run
		// as stage i+1 filters (the legacy tail applyResolvable after each
		// join; no code pass there — the joined shape has no single
		// columnar snapshot).
		pending, err = p.claimStage(i+1, pending)
		if err != nil {
			return nil, err
		}
	}

	// Leftover WHERE conjuncts must now compile against the full catalog;
	// since every resolvable aggregate-free conjunct was claimed above, a
	// leftover is an unknown column or a misplaced aggregate and this
	// reproduces the legacy error.
	for _, c := range pending {
		f, err := compileExpr(c, p.cat)
		if err != nil {
			return nil, err
		}
		last := len(p.scans) - 1
		p.stages[last] = append(p.stages[last], filterPred{fn: f, src: c, pure: pureExpr(c)})
	}

	p.finalizeSteps(e.snapshotFDs())
	p.pure = p.allPure()
	p.optimize()

	sink, err := newStreamSink(st, p.cat, p.hidden, p.pure)
	if err != nil {
		return nil, err
	}
	p.sink = sink
	return p, nil
}

// claimStage claims every pending conjunct resolvable on the prefix through
// scan d (aggregate-free, in WHERE order) as a stage-d filter, returning
// the survivors.
func (p *selectPlan) claimStage(d int, pending []Expr) ([]Expr, error) {
	cat := p.prefixCat(d)
	var rest []Expr
	for _, c := range pending {
		if !resolvable(c, cat) || hasAggregate(c) {
			rest = append(rest, c)
			continue
		}
		f, err := compileExpr(c, cat)
		if err != nil {
			return nil, err
		}
		p.stages[d] = append(p.stages[d], filterPred{fn: f, src: c, pure: pureExpr(c)})
	}
	return rest, nil
}

// takeKey harvests one equi-join key from conjunct c if it has the legacy
// shape: a bare `=` whose sides resolve exclusively on the left prefix and
// the right scan. Mirrors exec.go's takeKey, including treating a compile
// failure as "not a key" (the conjunct then falls to the residual compile,
// which surfaces the same error the legacy path would).
func (p *selectPlan) takeKey(step *joinStep, c Expr, leftCat, rightCat catalog) bool {
	b, ok := c.(*BinaryExpr)
	if !ok || b.Op != "=" || hasAggregate(c) {
		return false
	}
	var lsrc, rsrc Expr
	switch {
	case resolvable(b.L, leftCat) && resolvable(b.R, rightCat) &&
		!resolvable(b.L, rightCat) && !resolvable(b.R, leftCat):
		lsrc, rsrc = b.L, b.R
	case resolvable(b.R, leftCat) && resolvable(b.L, rightCat) &&
		!resolvable(b.R, rightCat) && !resolvable(b.L, leftCat):
		lsrc, rsrc = b.R, b.L
	default:
		return false
	}
	lf, err1 := compileExpr(lsrc, leftCat)
	rf, err2 := compileExpr(rsrc, rightCat)
	if err1 != nil || err2 != nil {
		return false
	}
	step.keyL = append(step.keyL, lf)
	step.keyLSrc = append(step.keyLSrc, lsrc)
	step.keyR = append(step.keyR, rf)
	step.keyRSrc = append(step.keyRSrc, rsrc)
	return true
}

// codeFilterOf recognizes the code-comparable conjunct shapes: `col =
// literal` (either side) and `col IS [NOT] NULL`, with col a non-_tid
// column of the scan. These are exactly the predicates whose SQL semantics
// coincide with dictionary-code comparison: `=` is true iff both sides are
// non-NULL and Compare as equal (one Equal-class code equality); a literal
// absent from the dictionary, or a NULL literal, selects nothing.
func codeFilterOf(sc *scanNode, c Expr) (codeFilter, bool) {
	colOf := func(e Expr) (*relstore.Column, bool) {
		ref, ok := e.(*ColumnRef)
		if !ok {
			return nil, false
		}
		idx, err := sc.cat.resolve(ref)
		if err != nil || idx == 0 {
			return nil, false // unresolvable, or the synthetic _tid column
		}
		return sc.cnr.Col(idx - 1), true
	}
	switch n := c.(type) {
	case *BinaryExpr:
		if n.Op != "=" {
			return codeFilter{}, false
		}
		var col *relstore.Column
		var lit *Literal
		if cc, ok := colOf(n.L); ok {
			if l, ok := n.R.(*Literal); ok {
				col, lit = cc, l
			}
		} else if cc, ok := colOf(n.R); ok {
			if l, ok := n.L.(*Literal); ok {
				col, lit = cc, l
			}
		}
		if col == nil || lit == nil {
			return codeFilter{}, false
		}
		if lit.Value.IsNull() {
			// x = NULL is NULL for every x: nothing survives.
			return codeFilter{op: cfNone, col: col, src: c}, true
		}
		want, present := col.EqCodeOf(lit.Value)
		if !present {
			return codeFilter{op: cfNone, col: col, src: c}, true
		}
		return codeFilter{op: cfEq, col: col, code: want, src: c}, true
	case *IsNullExpr:
		col, ok := colOf(n.E)
		if !ok {
			return codeFilter{}, false
		}
		nullCode, hasNull := col.NullCode()
		switch {
		case !n.Not && !hasNull:
			return codeFilter{op: cfNone, col: col, src: c}, true
		case !n.Not:
			return codeFilter{op: cfIsNull, col: col, code: nullCode, src: c}, true
		case hasNull:
			return codeFilter{op: cfNotNull, col: col, code: nullCode, src: c}, true
		default:
			return codeFilter{op: cfTrue, col: col, src: c}, true
		}
	}
	return codeFilter{}, false
}

// finalizeSteps picks each step's algorithm and fills in the exact
// statistics that justify it. fds holds the engine's registered exact-FD
// sets (lowercased table name); a composite key one of whose columns
// determines the rest collapses to a PLI probe (fdjoin.go).
func (p *selectPlan) finalizeSteps(fds map[string]*fdset.Set) {
	for _, step := range p.steps {
		step.keyPure = true
		for i := range step.keyLSrc {
			if !pureExpr(step.keyLSrc[i]) || !pureExpr(step.keyRSrc[i]) {
				step.keyPure = false
			}
		}
		step.probeAt = step.rightIdx - 1 // own stage by default
		step.expected = float64(step.rightLen)
		if len(step.keyL) == 0 {
			step.kind = stepNested
			continue
		}
		// Single bare right column: join through its PLI classes. The class
		// count is the exact number of distinct Equal-classes, so
		// rightLen/classes is the exact mean class size.
		if len(step.keyR) == 1 {
			if col, ok := bareScanCol(step.keyRSrc[0], step.right); ok {
				step.kind = stepPLI
				step.keyRCol = col
				step.classes = step.right.snap.ColClassCount(col)
				if step.classes > 0 {
					step.expected = float64(step.rightLen) / float64(step.classes)
				}
				continue
			}
		}
		step.kind = stepHash
		if collapseStep(step, fds[strings.ToLower(step.right.table)]) {
			continue
		}
		// Composite bare-column keys: the dictionary-cardinality product
		// bounds the class count exactly from below per column; cap it at
		// the row count (there cannot be more occupied classes than rows).
		classes := 1
		statable := true
		for _, src := range step.keyRSrc {
			col, ok := bareScanCol(src, step.right)
			if !ok {
				statable = false
				break
			}
			classes *= step.right.snap.ColClassCount(col)
			if classes > step.rightLen {
				classes = step.rightLen
				break
			}
		}
		if statable && classes > 0 {
			step.classes = classes
			step.expected = float64(step.rightLen) / float64(classes)
		}
	}
}

// bareScanCol reports whether e is a bare column reference resolving to a
// real (non-_tid) column of the scan, returning its snapshot column index.
func bareScanCol(e Expr, sc *scanNode) (int, bool) {
	ref, ok := e.(*ColumnRef)
	if !ok {
		return 0, false
	}
	idx, err := sc.cat.resolve(ref)
	if err != nil || idx == 0 {
		return 0, false
	}
	return idx - 1, true
}

// allPure reports whether every predicate and key expression in the plan is
// pure. Pure plans cannot produce evaluation errors, which licenses the
// optimizer to change evaluation sets (probe hoisting, right pushdown,
// early termination) without risking error-presence divergence from the
// legacy path.
func (p *selectPlan) allPure() bool {
	for _, fs := range p.stages {
		for _, f := range fs {
			if !f.pure {
				return false
			}
		}
	}
	for _, sc := range p.scans {
		for _, f := range sc.filters {
			if !f.pure {
				return false
			}
		}
	}
	for _, step := range p.steps {
		if !step.keyPure {
			return false
		}
		for _, f := range step.residuals {
			if !f.pure {
				return false
			}
		}
	}
	return true
}

// optimize applies the result-preserving rewrites gated on plan purity:
// pushing pure right-only stage filters into inner join builds, and
// scheduling index probes greedily at the earliest stage their left key is
// computable, most selective first by exact expected matches.
func (p *selectPlan) optimize() {
	p.probesAt = make([][]int, len(p.scans))
	if !p.pure {
		return
	}
	// Right pushdown: a stage-d filter whose references all live in scan d
	// filters the same rows whether applied to the joined row or to the
	// right side before the (inner) join — and being pure it cannot error
	// on the extra right rows it now sees.
	for d := 1; d < len(p.scans); d++ {
		step := p.steps[d-1]
		if step.outer {
			// Never pre-filter an outer join's right side with WHERE
			// conjuncts: they must see the null-extended rows.
			continue
		}
		kept := p.stages[d][:0]
		for _, f := range p.stages[d] {
			if p.refsOnlyScan(f.src, d) {
				if rf, err := compileExpr(f.src, p.scans[d].cat); err == nil {
					p.scans[d].filters = append(p.scans[d].filters, filterPred{fn: rf, src: f.src, pure: true})
					continue
				}
			}
			kept = append(kept, f)
		}
		p.stages[d] = kept
	}
	// Probe hoisting: an indexed inner step whose left key only reads
	// scans 0..s with s before its own stage is probed at stage s — a
	// prefix with no partner cannot contribute any output row, so killing
	// it early is sound for pure plans.
	for i, step := range p.steps {
		if step.outer || step.kind == stepNested {
			continue
		}
		pd := p.keyDepth(step, i)
		step.probeAt = pd
		if pd < i {
			p.probesAt[pd] = append(p.probesAt[pd], i)
		}
	}
	// Greedy exact-statistics ordering: at each stage, probe the most
	// selective pending join first (fewest expected matches per class).
	for _, probes := range p.probesAt {
		for a := 1; a < len(probes); a++ {
			for b := a; b > 0 && p.steps[probes[b]].expected < p.steps[probes[b-1]].expected; b-- {
				probes[b], probes[b-1] = probes[b-1], probes[b]
			}
		}
	}
}

// refsOnlyScan reports whether every column reference of e resolves into
// scan d's segment of the full catalog.
func (p *selectPlan) refsOnlyScan(e Expr, d int) bool {
	var refs []*ColumnRef
	columnRefs(e, &refs)
	if len(refs) == 0 {
		return false
	}
	sc := p.scans[d]
	for _, r := range refs {
		pos, err := p.cat.resolve(r)
		if err != nil || pos < sc.start || pos >= sc.start+sc.arity {
			return false
		}
	}
	return true
}

// keyDepth returns the earliest stage at which step i's left key is fully
// computable: the maximum owning scan over its column references (the key
// bridges the sides, so it references at least one prefix column).
func (p *selectPlan) keyDepth(step *joinStep, i int) int {
	depth := 0
	cat := p.prefixCat(i)
	for _, src := range step.keyLSrc {
		var refs []*ColumnRef
		columnRefs(src, &refs)
		for _, r := range refs {
			pos, err := cat.resolve(r)
			if err != nil {
				return i // should not happen (it compiled); stay at own stage
			}
			if s := p.scanOf(pos); s > depth {
				depth = s
			}
		}
	}
	return depth
}

// pureExpr reports whether evaluating e can never return an error, for any
// input row. Only pure predicates may be re-sited relative to the legacy
// evaluation order: moving an impure one could make an evaluation error
// appear on rows the legacy path never evaluated it on (or vice versa).
// The analysis is conservative: arithmetic (division by zero, type
// errors), unary minus, SUBSTR/ABS (type errors) and aggregates are impure.
func pureExpr(e Expr) bool {
	switch n := e.(type) {
	case nil:
		return true
	case *Literal, *ColumnRef:
		return true
	case *BinaryExpr:
		switch n.Op {
		case "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE", "||":
			return pureExpr(n.L) && pureExpr(n.R)
		}
		return false // arithmetic can error (type mismatch, division by zero)
	case *UnaryExpr:
		// NOT over a boolean-shaped operand always sees BOOL or NULL and
		// cannot error; unary minus errors on non-numeric values.
		return n.Op == "NOT" && boolShaped(n.E) && pureExpr(n.E)
	case *IsNullExpr:
		return pureExpr(n.E)
	case *InExpr:
		if !pureExpr(n.E) {
			return false
		}
		for _, v := range n.List {
			if !pureExpr(v) {
				return false
			}
		}
		return true
	case *BetweenExpr:
		return pureExpr(n.E) && pureExpr(n.Lo) && pureExpr(n.Hi)
	case *CaseExpr:
		for _, w := range n.Whens {
			if !pureExpr(w.Cond) || !pureExpr(w.Then) {
				return false
			}
		}
		return pureExpr(n.Else)
	case *FuncExpr:
		switch n.Name {
		case "UPPER", "LOWER", "TRIM", "LENGTH", "COALESCE", "CONCAT":
			for _, a := range n.Args {
				if !pureExpr(a) {
					return false
				}
			}
			return true
		}
		return false // aggregates, SUBSTR/ABS (type errors), unknown funcs
	}
	return false
}

// boolShaped reports whether e always evaluates to BOOL or NULL.
func boolShaped(e Expr) bool {
	switch n := e.(type) {
	case *BinaryExpr:
		switch n.Op {
		case "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE":
			return true
		}
		return false
	case *UnaryExpr:
		return n.Op == "NOT" && boolShaped(n.E)
	case *IsNullExpr, *InExpr, *BetweenExpr:
		return true
	case *Literal:
		return n.Value.IsNull() || n.Value.Kind() == types.KindBool
	}
	return false
}

// describe renders the plan for EXPLAIN: one line per scan, join step and
// probe, quoting the pushed-down predicates and the exact cardinalities
// that justified each ordering choice.
func (p *selectPlan) describe() []string {
	var out []string
	add := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	name := func(sc *scanNode) string {
		if strings.EqualFold(sc.alias, sc.table) {
			return sc.table
		}
		return sc.table + " AS " + sc.alias
	}
	for i, sc := range p.scans {
		role := "scan"
		if i == 0 {
			role = "drive"
		}
		add("%s %s rows=%d distinct[%s]", role, name(sc), sc.cnr.Len(), scanStats(sc))
		for _, cf := range sc.codeFs {
			add("  code-filter %s", exprString(cf.src))
		}
		for _, f := range sc.filters {
			add("  filter %s", exprString(f.src))
		}
		if i > 0 {
			step := p.steps[i-1]
			kindTag := step.kind.String()
			if step.outer {
				kindTag = "left " + kindTag
			} else {
				kindTag = "inner " + kindTag
			}
			var keys []string
			for k := range step.keyLSrc {
				keys = append(keys, exprString(step.keyLSrc[k])+" = "+exprString(step.keyRSrc[k]))
			}
			line := fmt.Sprintf("  join %s", kindTag)
			if len(keys) > 0 {
				line += " on " + strings.Join(keys, ", ")
			}
			if step.classes > 0 {
				line += fmt.Sprintf(" classes=%d expect=%.3g", step.classes, step.expected)
			} else {
				line += fmt.Sprintf(" expect=%.3g", step.expected)
			}
			if step.collapsed {
				line += " fd-collapsed"
			}
			if step.probeAt < i-1 {
				line += fmt.Sprintf(" probe@%d", step.probeAt)
			}
			add("%s", line)
			for _, fl := range step.fdLines {
				add("  %s", fl)
			}
			for _, f := range step.residuals {
				add("  residual %s", exprString(f.src))
			}
		}
		for _, f := range p.stages[i] {
			add("  stage-filter %s", exprString(f.src))
		}
		for _, si := range p.probesAt[i] {
			st := p.steps[si]
			add("  probe join#%d (%s, expect=%.3g)", si+1, st.kind, st.expected)
		}
	}
	add("sink %s", p.sink.describe())
	if p.pure {
		out = append(out, "pure plan: probe hoisting, pushdown and early-stop enabled")
	} else {
		out = append(out, "impure predicates: legacy staging preserved verbatim")
	}
	return out
}

// scanStats renders the exact per-attribute class counts of a scan — the
// statistics the greedy ordering reads.
func scanStats(sc *scanNode) string {
	attrs := sc.snap.Schema().Attrs
	parts := make([]string, len(attrs))
	for j, a := range attrs {
		parts[j] = fmt.Sprintf("%s:%d", a.Name, sc.snap.ColClassCount(j))
	}
	return strings.Join(parts, " ")
}

package sqleng

import (
	"strings"
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// newJoinStore builds a three-way star schema with skewed cardinalities:
// orders (8 rows) joins cust on CID (2 distinct values -> expect 2 matches
// per probe) and prod on PID (8 distinct values -> expect 1 match).
func newJoinStore(t *testing.T) *relstore.Store {
	t.Helper()
	store := relstore.NewStore()
	orders, err := store.Create(schema.New("orders", "OID", "CID", "PID"))
	if err != nil {
		t.Fatal(err)
	}
	cust, err := store.Create(schema.New("cust", "CID", "CITY"))
	if err != nil {
		t.Fatal(err)
	}
	prod, err := store.Create(schema.New("prod", "PID", "PNAME"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		orders.MustInsert(relstore.Tuple{
			types.NewInt(int64(100 + i)),
			types.NewInt(int64(i % 2)),
			types.NewInt(int64(i)),
		})
		prod.MustInsert(relstore.Tuple{
			types.NewInt(int64(i)),
			types.NewString("prod" + string(rune('a'+i))),
		})
	}
	cust.MustInsert(relstore.Tuple{types.NewInt(0), types.NewString("York")})
	cust.MustInsert(relstore.Tuple{types.NewInt(0), types.NewString("Hull")})
	cust.MustInsert(relstore.Tuple{types.NewInt(1), types.NewString("York")})
	cust.MustInsert(relstore.Tuple{types.NewInt(1), types.NewString("Bath")})
	return store
}

// planLines runs EXPLAIN and returns the plan rows as strings.
func planLines(t *testing.T, e *Engine, sql string) []string {
	t.Helper()
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("EXPLAIN failed: %v", err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("EXPLAIN columns = %v", res.Columns)
	}
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		lines[i] = row[0].String()
	}
	return lines
}

// indexOfLine returns the first line containing all substrings, or -1.
func indexOfLine(lines []string, subs ...string) int {
	for i, ln := range lines {
		ok := true
		for _, s := range subs {
			if !strings.Contains(ln, s) {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// TestExplainThreeTableJoin pins the plan shape of a 3-table join: exact
// cardinalities from the relstore statistics, the pushed-down filter on
// cust, and the hoisting of the selective prod probe into the driver scan.
func TestExplainThreeTableJoin(t *testing.T) {
	e := New(newJoinStore(t))
	lines := planLines(t, e,
		`EXPLAIN SELECT o.OID, p.PNAME FROM orders o, cust c, prod p
		 WHERE o.CID = c.CID AND o.PID = p.PID AND c.CITY = 'York'`)
	text := strings.Join(lines, "\n")

	drive := indexOfLine(lines, "drive orders AS o rows=8")
	if drive != 0 {
		t.Fatalf("expected driver scan first, got:\n%s", text)
	}
	// Exact statistics: distinct class counts straight from the PLIs.
	if !strings.Contains(lines[0], "OID:8") || !strings.Contains(lines[0], "CID:2") || !strings.Contains(lines[0], "PID:8") {
		t.Errorf("driver stats wrong: %q", lines[0])
	}

	// The prod join keys only on the driver, is the most selective
	// (expect=1 vs cust's expect=2), and must be probed at the driver
	// stage, before any cust pairing happens.
	probe := indexOfLine(lines, "probe join#2", "pli", "expect=1")
	custScan := indexOfLine(lines, "scan cust AS c rows=4")
	if probe < 0 || custScan < 0 || probe > custScan {
		t.Errorf("prod probe not hoisted above cust scan:\n%s", text)
	}

	// WHERE c.CITY = 'York' is pushed into the cust scan.
	filter := indexOfLine(lines, "filter", "c.CITY", "York")
	if filter < custScan {
		t.Errorf("cust filter not pushed down below its scan:\n%s", text)
	}

	// Both joins go through PLI classes with exact counts.
	if indexOfLine(lines, "join inner pli on o.CID = c.CID", "classes=2", "expect=2") < 0 {
		t.Errorf("cust join line wrong:\n%s", text)
	}
	if indexOfLine(lines, "join inner pli on o.PID = p.PID", "classes=8", "expect=1", "probe@0") < 0 {
		t.Errorf("prod join line wrong:\n%s", text)
	}

	if indexOfLine(lines, "sink", "project 2 cols") < 0 {
		t.Errorf("sink line wrong:\n%s", text)
	}
	if !strings.Contains(lines[len(lines)-1], "pure plan") {
		t.Errorf("expected pure-plan note last:\n%s", text)
	}
}

// TestExplainGreedyProbeOrder checks that when two hoisted probes land on
// the same stage, the one with fewer expected matches is probed first.
func TestExplainGreedyProbeOrder(t *testing.T) {
	store := newJoinStore(t)
	wide, err := store.Create(schema.New("wide", "CID", "W"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		wide.MustInsert(relstore.Tuple{types.NewInt(int64(i % 2)), types.NewInt(int64(i))})
	}
	e := New(store)
	// cust joins at its own stage; wide (expect=3) and prod (expect=1) both
	// key on the driver alone, so both hoist to stage 0; greedy ordering
	// must put the selective prod probe first.
	lines := planLines(t, e,
		`EXPLAIN SELECT o.OID FROM orders o, cust c, wide w, prod p
		 WHERE o.CID = c.CID AND o.CID = w.CID AND o.PID = p.PID`)
	text := strings.Join(lines, "\n")
	prodProbe := indexOfLine(lines, "probe join#3", "expect=1")
	wideProbe := indexOfLine(lines, "probe join#2", "expect=3")
	if prodProbe < 0 || wideProbe < 0 {
		t.Fatalf("missing hoisted probes:\n%s", text)
	}
	if prodProbe > wideProbe {
		t.Errorf("greedy order wrong: selective probe after coarse one:\n%s", text)
	}
}

// TestExplainImpurePlan: a plan with an impure predicate must refuse the
// optimizations and say so.
func TestExplainImpurePlan(t *testing.T) {
	e := New(newJoinStore(t))
	lines := planLines(t, e,
		`EXPLAIN SELECT o.OID FROM orders o, cust c
		 WHERE o.CID = c.CID AND o.OID / c.CID > 10`)
	if indexOfLine(lines, "impure predicates: legacy staging preserved") < 0 {
		t.Errorf("expected impure note:\n%s", strings.Join(lines, "\n"))
	}
}

// TestExplainNoFrom covers the constant-select guard.
func TestExplainNoFrom(t *testing.T) {
	e := New(relstore.NewStore())
	lines := planLines(t, e, "EXPLAIN SELECT 1 + 2")
	if len(lines) != 1 || !strings.Contains(lines[0], "constant select") {
		t.Errorf("lines = %v", lines)
	}
}

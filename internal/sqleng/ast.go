package sqleng

import (
	"strings"

	"semandaq/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 if absent
	Offset   int // 0 if absent
}

// SelectItem is one projection: either Star (optionally qualified) or an
// expression with an optional alias.
type SelectItem struct {
	Star      bool
	StarTable string // for t.*
	Expr      Expr
	Alias     string
}

// FromItem is a base table reference with an optional alias.
type FromItem struct {
	Table string
	Alias string
}

// JoinClause is an INNER/LEFT JOIN ... ON clause following the FROM list.
type JoinClause struct {
	Left bool // LEFT OUTER join; false means INNER
	Item FromItem
	On   Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string
	Rows  [][]Expr
}

// UpdateStmt is UPDATE t SET a = e, ... [WHERE e].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one assignment in UPDATE.
type SetClause struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM t [WHERE e].
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE t (col type, ...).
type CreateTableStmt struct {
	Table string
	Cols  []ColumnDef
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type types.Kind
}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct {
	Table string
}

// ExplainStmt is EXPLAIN SELECT ...: plan the query and return the chosen
// join order, pushed-down predicates and the exact statistics behind each
// choice, one plan line per result row, without executing it.
type ExplainStmt struct {
	Select *SelectStmt
}

func (*SelectStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}

// Expr is an expression tree node.
type Expr interface{ expr() }

// ColumnRef names a column, optionally qualified with a table alias.
type ColumnRef struct {
	Table  string // "" if unqualified
	Column string
}

// Literal is a constant value.
type Literal struct {
	Value types.Value
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   string // =, <>, <, <=, >, >=, +, -, *, /, AND, OR, LIKE, ||
	L, R Expr
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // NOT, -
	E  Expr
}

// IsNullExpr is `e IS [NOT] NULL`.
type IsNullExpr struct {
	E   Expr
	Not bool
}

// InExpr is `e [NOT] IN (v1, v2, ...)`.
type InExpr struct {
	E    Expr
	Not  bool
	List []Expr
}

// BetweenExpr is `e [NOT] BETWEEN lo AND hi`.
type BetweenExpr struct {
	E      Expr
	Not    bool
	Lo, Hi Expr
}

// CaseExpr is a searched CASE: CASE WHEN c THEN v ... [ELSE v] END.
type CaseExpr struct {
	Whens []WhenClause
	Else  Expr
}

// WhenClause is one WHEN ... THEN ... arm.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// FuncExpr is a function call: aggregate or scalar.
type FuncExpr struct {
	Name     string // uppercased
	Distinct bool   // COUNT(DISTINCT e)
	Star     bool   // COUNT(*)
	Args     []Expr
}

func (*ColumnRef) expr()   {}
func (*Literal) expr()     {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*IsNullExpr) expr()  {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*CaseExpr) expr()    {}
func (*FuncExpr) expr()    {}

// aggregateFuncs names the supported aggregates.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// hasAggregate reports whether the expression contains an aggregate call
// (not descending into nested aggregates, which are rejected elsewhere).
func hasAggregate(e Expr) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *FuncExpr:
		if aggregateFuncs[n.Name] {
			return true
		}
		for _, a := range n.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return hasAggregate(n.L) || hasAggregate(n.R)
	case *UnaryExpr:
		return hasAggregate(n.E)
	case *IsNullExpr:
		return hasAggregate(n.E)
	case *InExpr:
		if hasAggregate(n.E) {
			return true
		}
		for _, v := range n.List {
			if hasAggregate(v) {
				return true
			}
		}
	case *BetweenExpr:
		return hasAggregate(n.E) || hasAggregate(n.Lo) || hasAggregate(n.Hi)
	case *CaseExpr:
		for _, w := range n.Whens {
			if hasAggregate(w.Cond) || hasAggregate(w.Then) {
				return true
			}
		}
		return hasAggregate(n.Else)
	}
	return false
}

// exprString renders an expression back to SQL-ish text, used for error
// messages and as the synthesized column name of unaliased projections.
func exprString(e Expr) string {
	switch n := e.(type) {
	case nil:
		return ""
	case *ColumnRef:
		if n.Table != "" {
			return n.Table + "." + n.Column
		}
		return n.Column
	case *Literal:
		return n.Value.SQLString()
	case *BinaryExpr:
		return "(" + exprString(n.L) + " " + n.Op + " " + exprString(n.R) + ")"
	case *UnaryExpr:
		return n.Op + " " + exprString(n.E)
	case *IsNullExpr:
		if n.Not {
			return exprString(n.E) + " IS NOT NULL"
		}
		return exprString(n.E) + " IS NULL"
	case *InExpr:
		var parts []string
		for _, v := range n.List {
			parts = append(parts, exprString(v))
		}
		op := " IN ("
		if n.Not {
			op = " NOT IN ("
		}
		return exprString(n.E) + op + strings.Join(parts, ", ") + ")"
	case *BetweenExpr:
		op := " BETWEEN "
		if n.Not {
			op = " NOT BETWEEN "
		}
		return exprString(n.E) + op + exprString(n.Lo) + " AND " + exprString(n.Hi)
	case *CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		for _, w := range n.Whens {
			b.WriteString(" WHEN " + exprString(w.Cond) + " THEN " + exprString(w.Then))
		}
		if n.Else != nil {
			b.WriteString(" ELSE " + exprString(n.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *FuncExpr:
		if n.Star {
			return n.Name + "(*)"
		}
		var parts []string
		for _, a := range n.Args {
			parts = append(parts, exprString(a))
		}
		d := ""
		if n.Distinct {
			d = "DISTINCT "
		}
		return n.Name + "(" + d + strings.Join(parts, ", ") + ")"
	}
	return "?"
}

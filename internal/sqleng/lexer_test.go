package sqleng

import "testing"

func kinds(toks []token) []tokenKind {
	out := make([]tokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT a, t.b FROM r WHERE a = 'x''y' AND b >= 1.5 -- comment\n;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "a", ",", "t", ".", "b", "FROM", "r", "WHERE",
		"a", "=", "x'y", "AND", "b", ">=", "1.5", ";", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexKeywordsUppercased(t *testing.T) {
	toks, err := lex("select From wHeRe")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.kind != tokKeyword {
			t.Errorf("%q should be keyword", tok.text)
		}
	}
	if toks[0].text != "SELECT" || toks[1].text != "FROM" || toks[2].text != "WHERE" {
		t.Errorf("keywords not uppercased: %v", toks)
	}
}

func TestLexIdentifiersPreserveCase(t *testing.T) {
	toks, err := lex("MyTable _col1")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "MyTable" || toks[1].text != "_col1" {
		t.Errorf("idents = %q %q", toks[0].text, toks[1].text)
	}
}

func TestLexQuotedIdent(t *testing.T) {
	toks, err := lex(`"weird name"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokIdent || toks[0].text != "weird name" {
		t.Errorf("quoted ident = %v", toks[0])
	}
}

func TestLexTwoByteOperators(t *testing.T) {
	toks, err := lex("<> != <= >= ||")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<>", "!=", "<=", ">=", "||"}
	for i, w := range want {
		if toks[i].text != w {
			t.Errorf("op %d = %q, want %q", i, toks[i].text, w)
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		"'unterminated",
		`"unterminated`,
		"12abc",
		"@",
	}
	for _, src := range cases {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lex("42 3.25 0.5")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"42", "3.25", "0.5"} {
		if toks[i].kind != tokNumber || toks[i].text != want {
			t.Errorf("number %d = %v", i, toks[i])
		}
	}
}

func TestLexEmptyAndComments(t *testing.T) {
	toks, err := lex("  -- just a comment")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || kinds(toks)[0] != tokEOF {
		t.Errorf("toks = %v", toks)
	}
}

package sqleng

import (
	"testing"

	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

func pinTable(t *testing.T) (*relstore.Store, *relstore.Table) {
	t.Helper()
	store := relstore.NewStore()
	tab, err := store.Create(schema.New("p", "K", "V"))
	if err != nil {
		t.Fatal(err)
	}
	for i, kv := range [][2]string{{"a", "1"}, {"a", "1"}, {"b", "2"}} {
		_ = i
		tab.MustInsert(relstore.Tuple{types.NewString(kv[0]), types.NewString(kv[1])})
	}
	return store, tab
}

// TestEnginePinFreezesReads: a pinned engine keeps answering from the
// pinned version while the live table mutates; unpinning follows the live
// table again. Both scan paths honor the pin.
func TestEnginePinFreezesReads(t *testing.T) {
	for _, rowScan := range []bool{false, true} {
		store, tab := pinTable(t)
		e := New(store)
		e.SetColumnarScan(!rowScan)
		snap := tab.Snapshot()
		e.Pin(snap)

		tab.MustInsert(relstore.Tuple{types.NewString("c"), types.NewString("3")})
		tab.SetCell(0, 1, types.NewString("mutated"))

		res, err := e.Query(`SELECT K, V FROM p`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("rowScan=%v: pinned read saw %d rows, want 3", rowScan, len(res.Rows))
		}
		if got := res.Rows[0][1].Str(); got != "1" {
			t.Fatalf("rowScan=%v: pinned read saw mutated cell %q", rowScan, got)
		}
		if v := res.Versions["p"]; v != snap.Version() {
			t.Fatalf("rowScan=%v: result version %d, want pinned %d", rowScan, v, snap.Version())
		}

		e.Unpin("p")
		res, err = e.Query(`SELECT K, V FROM p`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 4 || res.Rows[0][1].Str() != "mutated" {
			t.Fatalf("rowScan=%v: unpinned read still frozen: %v", rowScan, res.Rows)
		}
		if v := res.Versions["p"]; v != tab.Version() {
			t.Fatalf("rowScan=%v: unpinned version %d, want %d", rowScan, v, tab.Version())
		}
	}
}

// TestSelfJoinSingleVersion: a self-join resolves both references to ONE
// snapshot — the versions map carries a single entry for the table, and
// the join sees a consistent row set.
func TestSelfJoinSingleVersion(t *testing.T) {
	store, tab := pinTable(t)
	e := New(store)
	res, err := e.Query(`SELECT t1.K FROM p t1, p t2 WHERE t1.K = t2.K AND t1.V <> t2.V`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("clean self-join returned %d rows", len(res.Rows))
	}
	if len(res.Versions) != 1 || res.Versions["p"] != tab.Version() {
		t.Fatalf("self-join versions = %v, want one entry at %d", res.Versions, tab.Version())
	}
}

// TestDMLStampsVersion: INSERT/UPDATE/DELETE results carry the table
// version the statement produced.
func TestDMLStampsVersion(t *testing.T) {
	store, tab := pinTable(t)
	e := New(store)
	res, err := e.Query(`INSERT INTO p VALUES ('d', '4')`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Versions["p"] != tab.Version() {
		t.Fatalf("insert version %d, want %d", res.Versions["p"], tab.Version())
	}
	res, err = e.Query(`UPDATE p SET V = '9' WHERE K = 'b'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 || res.Versions["p"] != tab.Version() {
		t.Fatalf("update = %+v, table at %d", res, tab.Version())
	}
	res, err = e.Query(`DELETE FROM p WHERE K = 'a'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 || res.Versions["p"] != tab.Version() {
		t.Fatalf("delete = %+v, table at %d", res, tab.Version())
	}
}

// The streaming executor: runs a selectPlan as a push-style pipeline over
// the pinned columnar snapshots. One reusable full-width row buffer is
// filled scan segment by scan segment; join steps look partners up through
// PLI classes or hash indexes over snapshot row numbers; the sink projects,
// groups, orders and limits. No intermediate relation is ever materialized
// — the only per-row state retained is what the sink keeps (projected
// output rows, or group accumulators).
//
// Identity with the legacy materializing path is by construction: rows are
// enumerated in exactly the legacy nested order (driver scan in snapshot
// order, each join step's matches in right-side snapshot order, unmatched
// outer rows null-extended in place), and every predicate was placed by the
// planner at the stage the legacy executor evaluated it.
//
// All hot loops share one monotonic counter and check the context every
// cancelStride rows, preserving the engine's cancellation contract.
package sqleng

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// scanReader caches the per-scan snapshot accessors the hot loops touch.
type scanReader struct {
	ids  []relstore.TupleID
	cols []*relstore.Column
}

// rightIndex is the build side of one join step: which right rows survive
// the pushed-down filters, plus the lookup structure of the step's kind.
type rightIndex struct {
	surv     []bool  // nil: every row survives (no right-side filters)
	survRows []int32 // stepNested: surviving rows in snapshot order
	allRows  bool    // stepNested: no filters, iterate the whole snapshot
	buckets  map[string][]int32
	pliCol   *relstore.Column
	// FD-collapsed steps: the guarded key columns, and the memoized
	// guard-filtered candidates per (lead class, guard codes) probe key.
	guardCols []*relstore.Column
	memo      map[string][]int32
}

// planExec is one execution of a selectPlan.
type planExec struct {
	p       *selectPlan
	ctx     context.Context
	buf     []types.Value // one reusable full-width row
	readers []scanReader  // per scan
	idx     []*rightIndex // per step
	cached  [][]int32     // per step: candidates from a hoisted probe
	keyBuf  []byte
	guard   []uint32   // scratch: guard codes of the current collapsed probe
	ops     OpCounters // local counters, flushed to the engine once per run
	n       int        // shared row counter for stride context checks
	stop    bool
}

// stride ticks the shared row counter and returns ctx.Err() every
// cancelStride-th row across all of the execution's loops.
func (px *planExec) stride() error {
	if px.n++; px.n%cancelStride == 0 {
		return px.ctx.Err()
	}
	return nil
}

// run drives the pipeline to completion (or early stop) into the plan's
// sink. It may be called once per plan.
func (p *selectPlan) run(ctx context.Context) error {
	px := &planExec{
		p:       p,
		ctx:     ctx,
		buf:     make([]types.Value, len(p.cat)),
		readers: make([]scanReader, len(p.scans)),
		idx:     make([]*rightIndex, len(p.steps)),
		cached:  make([][]int32, len(p.steps)),
	}
	for i, sc := range p.scans {
		r := scanReader{ids: sc.cnr.IDs(), cols: make([]*relstore.Column, sc.arity-1)}
		for j := range r.cols {
			r.cols[j] = sc.cnr.Col(j)
		}
		px.readers[i] = r
	}
	for _, step := range p.steps {
		if len(step.guardKeys) > len(px.guard) {
			px.guard = make([]uint32, len(step.guardKeys))
		}
	}
	defer px.flushOps()
	// Build every join index eagerly, in step order: the legacy path
	// evaluates right-side filters and hash keys over the full right side
	// before probing, even when the left side turns out empty, so building
	// up front keeps evaluation (and error) coverage identical.
	for si := range p.steps {
		if err := px.buildIndex(si); err != nil {
			return err
		}
	}
	return px.scanDriver()
}

// fillScan materializes scan s's snapshot row r into the row buffer:
// hidden _tid first, then the attribute values straight from the exact
// dictionary (bit-identical to the stored tuple).
func (px *planExec) fillScan(s int, r int32) {
	sc := px.p.scans[s]
	rd := &px.readers[s]
	px.buf[sc.start] = types.NewInt(int64(rd.ids[r]))
	for j, col := range rd.cols {
		px.buf[sc.start+1+j] = col.Value(col.Code(int(r)))
	}
}

// buildIndex builds step si's right-side index: applies the pushed-down
// filters row by row on a local scratch row, then indexes the survivors
// according to the step's kind.
func (px *planExec) buildIndex(si int) error {
	step := px.p.steps[si]
	sc := step.right
	n := sc.cnr.Len()
	idx := &rightIndex{}
	px.idx[si] = idx
	if step.kind == stepPLI {
		idx.pliCol = sc.cnr.Col(step.keyRCol)
	}
	if step.collapsed {
		idx.memo = make(map[string][]int32)
		for _, c := range step.guardCols {
			idx.guardCols = append(idx.guardCols, sc.cnr.Col(c))
		}
	}

	needScratch := len(sc.filters) > 0 || step.kind == stepHash
	if !needScratch {
		// PLI steps read candidates straight from the cached partition and
		// nested steps iterate the snapshot; with no filters there is
		// nothing to precompute.
		idx.allRows = true
		return nil
	}

	var scratch []types.Value
	var rd scanReader
	scratch = make([]types.Value, sc.arity)
	rd = scanReader{ids: sc.cnr.IDs(), cols: make([]*relstore.Column, sc.arity-1)}
	for j := range rd.cols {
		rd.cols[j] = sc.cnr.Col(j)
	}
	if len(sc.filters) > 0 {
		idx.surv = make([]bool, n)
	}
	if step.kind == stepHash {
		idx.buckets = make(map[string][]int32, n)
		px.ops.HashBuildRows += int64(n)
	}
rows:
	for r := 0; r < n; r++ {
		if err := px.stride(); err != nil {
			return err
		}
		scratch[0] = types.NewInt(int64(rd.ids[r]))
		for j, col := range rd.cols {
			scratch[1+j] = col.Value(col.Code(r))
		}
		for _, f := range sc.filters {
			v, err := f.fn(scratch)
			if err != nil {
				return err
			}
			if !truthy(v) {
				continue rows
			}
		}
		if idx.surv != nil {
			idx.surv[r] = true
		}
		switch step.kind {
		case stepHash:
			key := px.keyBuf[:0]
			null := false
			for _, kf := range step.keyR {
				v, err := kf(scratch)
				if err != nil {
					return err
				}
				if v.IsNull() {
					null = true
					break
				}
				key = v.AppendGroupKey(key)
			}
			px.keyBuf = key
			if null {
				continue // NULL never equi-joins
			}
			idx.buckets[string(key)] = append(idx.buckets[string(key)], int32(r))
		case stepNested:
			idx.survRows = append(idx.survRows, int32(r))
		}
	}
	return nil
}

// scanDriver iterates the driver scan: code filters on dictionary codes
// first, then the filled row through the stage-0 filters and probes, then
// down the join steps.
func (px *planExec) scanDriver() error {
	p := px.p
	sc := p.scans[0]
	n := sc.cnr.Len()
rows:
	for r := 0; r < n; r++ {
		if err := px.stride(); err != nil {
			return err
		}
		for i := range sc.codeFs {
			if !sc.codeFs[i].match(r) {
				continue rows
			}
		}
		px.fillScan(0, int32(r))
		ok, err := px.stageGate(0)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := px.descend(0); err != nil {
			return err
		}
		if px.stop {
			return nil
		}
	}
	return nil
}

// stageGate runs stage d's filters and hoisted probes over the current
// prefix, reporting whether the prefix survives.
func (px *planExec) stageGate(d int) (bool, error) {
	for _, f := range px.p.stages[d] {
		v, err := f.fn(px.buf)
		if err != nil {
			return false, err
		}
		if !truthy(v) {
			return false, nil
		}
	}
	for _, si := range px.p.probesAt[d] {
		ok, err := px.probe(si)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// lookup finds step si's candidate right rows for the current prefix key,
// nil when the key is NULL or has no partner.
func (px *planExec) lookup(si int) ([]int32, error) {
	step := px.p.steps[si]
	idx := px.idx[si]
	switch step.kind {
	case stepPLI:
		v, err := step.keyL[step.leadKey](px.buf)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			return nil, nil
		}
		eq, ok := idx.pliCol.EqCodeOf(v)
		if !ok {
			return nil, nil
		}
		if step.collapsed {
			return px.collapsedLookup(si, eq)
		}
		px.ops.PLIProbes++
		return idx.pliCol.ClassRows(eq), nil
	default: // stepHash
		key := px.keyBuf[:0]
		for _, kf := range step.keyL {
			v, err := kf(px.buf)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				px.keyBuf = key
				return nil, nil
			}
			key = v.AppendGroupKey(key)
		}
		px.keyBuf = key
		px.ops.HashProbes++
		return idx.buckets[string(key)], nil
	}
}

// probe runs step si's index lookup early, at a stage before the step's
// own, and caches the candidates for the step to consume. A prefix with no
// surviving partner is killed on the spot.
func (px *planExec) probe(si int) (bool, error) {
	cands, err := px.lookup(si)
	if err != nil {
		return false, err
	}
	idx := px.idx[si]
	if idx.surv != nil {
		any := false
		for _, r := range cands {
			if idx.surv[r] {
				any = true
				break
			}
		}
		if !any {
			cands = nil
		}
	}
	px.cached[si] = cands
	return len(cands) > 0, nil
}

// descend runs the pipeline below stage d: the next join step, or the sink
// when every scan is filled.
func (px *planExec) descend(d int) error {
	if d == len(px.p.scans)-1 {
		stop, err := px.p.sink.add(px.buf)
		if err != nil {
			return err
		}
		px.stop = px.stop || stop
		return nil
	}
	step := px.p.steps[d]
	idx := px.idx[d]

	var cands []int32
	switch {
	case step.kind == stepNested:
		// handled below: nested steps iterate rows, not candidate lists
	case step.probeAt < d:
		cands = px.cached[d] // the hoisted probe already looked it up
	default:
		var err error
		cands, err = px.lookup(d)
		if err != nil {
			return err
		}
	}

	matched := false
	tryRight := func(r int32) error {
		if err := px.stride(); err != nil {
			return err
		}
		px.fillScan(d+1, r)
		for _, f := range step.residuals {
			v, err := f.fn(px.buf)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		// The legacy path counts a pair as matched once the ON residuals
		// pass, before the later WHERE conjuncts run — the distinction
		// decides null-extension, so it is preserved exactly.
		matched = true
		ok, err := px.stageGate(d + 1)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		return px.descend(d + 1)
	}

	switch {
	case step.kind == stepNested && idx.allRows:
		n := int32(step.right.cnr.Len())
		for r := int32(0); r < n && !px.stop; r++ {
			if err := tryRight(r); err != nil {
				return err
			}
		}
	case step.kind == stepNested:
		for _, r := range idx.survRows {
			if px.stop {
				break
			}
			if err := tryRight(r); err != nil {
				return err
			}
		}
	default:
		for _, r := range cands {
			if px.stop {
				break
			}
			if idx.surv != nil && !idx.surv[r] {
				continue
			}
			if err := tryRight(r); err != nil {
				return err
			}
		}
	}
	if px.stop {
		return nil
	}

	if step.outer && !matched {
		// Null-extend: the zero types.Value is NULL, so clearing the right
		// segment materializes the unmatched-left row the legacy path
		// appends, and the later-stage WHERE conjuncts see it as such.
		sc := step.right
		for i := sc.start; i < sc.start+sc.arity; i++ {
			px.buf[i] = types.Null
		}
		ok, err := px.stageGate(d + 1)
		if err != nil {
			return err
		}
		if ok {
			return px.descend(d + 1)
		}
	}
	return nil
}

// collect runs the plan and materializes the eager Result the engine API
// returns, stamped with the versions pinned at plan time.
func (p *selectPlan) collect(ctx context.Context) (*Result, error) {
	if err := p.run(ctx); err != nil {
		return nil, err
	}
	return p.sink.finish(ctx, p.versions)
}

// sinkProj is one compiled output column.
type sinkProj struct {
	name string
	fn   evalFn
	pure bool
}

// sinkOrderKey is one compiled ORDER BY key: an expression over the
// (grouped) relation row, or a reference to an output column by alias.
type sinkOrderKey struct {
	fn    evalFn // nil when byOut >= 0
	byOut int
	desc  bool
}

// sinkOutRow pairs an output row with its materialized order keys. seq is
// the arrival index, used by the bounded-heap path to replicate the
// stable sort's tie-break (earlier arrival wins); the unbounded path
// leaves it zero and sorts stably instead.
type sinkOutRow struct {
	vals []types.Value
	keys []types.Value
	seq  int
}

// sinkGroup is one GROUP BY group: the representative row (a retained copy
// of the first member) plus the aggregate accumulators.
type sinkGroup struct {
	rep    []types.Value
	states []*aggState
}

// streamSink terminates the pipeline: grouping/aggregation, HAVING,
// projection, DISTINCT, ORDER BY, OFFSET/LIMIT. It is fully compiled at
// plan time, mirroring the legacy projectAndFinish semantics stage by
// stage, and consumes rows incrementally — for non-grouped queries only
// the projected output rows are retained, never the pipeline rows.
type streamSink struct {
	st         *SelectStmt
	width      int // width of the pipeline row
	needsGroup bool
	calls      []aggCall
	keyFns     []evalFn
	having     evalFn
	projs      []sinkProj
	orderKeys  []sinkOrderKey
	// earlyStop: with a LIMIT, no ORDER BY, no grouping and a pure plan
	// and projection, the pipeline can stop as soon as OFFSET+LIMIT output
	// rows exist — no later row could change the result.
	earlyStop bool
	target    int // earlyStop: rows to accumulate before stopping
	// heapK: with ORDER BY and a LIMIT, only the OFFSET+LIMIT best rows
	// can reach the output, so the sink retains exactly that many in a
	// bounded max-heap (s.out is the heap storage) instead of the full
	// sorted set; rows that cannot make the cut are rejected before any
	// copy is allocated. -1 disables (no LIMIT, or no ORDER BY). Every
	// projection and key expression is still evaluated for every row, so
	// error presence matches the unbounded path exactly.
	heapK int

	// Runtime state.
	groups   map[string]*sinkGroup
	gorder   []string
	out      []sinkOutRow
	seen     map[string]bool
	keyBuf   []byte
	seq      int           // arrival counter for heap tie-breaks
	valBuf   []types.Value // heap path: projected row before acceptance
	ordBuf   []types.Value // heap path: order keys before acceptance
	streamed int           // rows already passed to yield
	yield    func(row []types.Value) bool
	yieldend bool // yield returned false: consumer stopped
}

// newStreamSink compiles the sink for st over the pipeline catalog. The
// compile steps and error messages mirror the legacy projectAndFinish
// exactly; only the point in time moves (plan time instead of interleaved
// with execution), which preserves error presence.
func newStreamSink(st *SelectStmt, cat catalog, hidden []bool, planPure bool) (*streamSink, error) {
	s := &streamSink{st: st, width: len(cat), heapK: -1}

	var orderExprs []Expr
	for _, oi := range st.OrderBy {
		orderExprs = append(orderExprs, oi.Expr)
	}
	var itemExprs []Expr
	for _, it := range st.Items {
		if !it.Star {
			itemExprs = append(itemExprs, it.Expr)
		}
	}
	s.needsGroup = len(st.GroupBy) > 0 || st.Having != nil
	if !s.needsGroup {
		for _, ex := range append(append([]Expr{}, itemExprs...), orderExprs...) {
			if hasAggregate(ex) {
				s.needsGroup = true
				break
			}
		}
	}

	var aggEnv map[string]int
	gcat, ghidden := cat, hidden
	if s.needsGroup {
		all := append(append([]Expr{}, itemExprs...), orderExprs...)
		if st.Having != nil {
			all = append(all, st.Having)
		}
		env, calls, err := collectAggs(cat, all...)
		if err != nil {
			return nil, err
		}
		aggEnv = env
		s.calls = calls
		for _, g := range st.GroupBy {
			f, err := compileExpr(g, cat)
			if err != nil {
				return nil, err
			}
			s.keyFns = append(s.keyFns, f)
		}
		gcat = append(append(catalog{}, cat...), make(catalog, len(calls))...)
		ghidden = append(append([]bool{}, hidden...), make([]bool, len(calls))...)
		for i := range calls {
			ghidden[len(cat)+i] = true
		}
		if st.Having != nil {
			f, err := compileExprAgg(st.Having, gcat, aggEnv)
			if err != nil {
				return nil, err
			}
			s.having = f
		}
		s.groups = map[string]*sinkGroup{}
	}

	for _, it := range st.Items {
		if it.Star {
			for i, ci := range gcat {
				if ghidden[i] {
					continue
				}
				if it.StarTable != "" && !strings.EqualFold(ci.qual, it.StarTable) {
					continue
				}
				idx := i
				s.projs = append(s.projs, sinkProj{name: ci.name, pure: true,
					fn: func(row []types.Value) (types.Value, error) { return row[idx], nil }})
			}
			continue
		}
		f, err := compileExprAgg(it.Expr, gcat, aggEnv)
		if err != nil {
			return nil, err
		}
		s.projs = append(s.projs, sinkProj{name: itemName(it), fn: f, pure: pureExpr(it.Expr)})
	}
	if len(s.projs) == 0 {
		return nil, fmt.Errorf("sql: empty select list")
	}

	for _, oi := range st.OrderBy {
		ok := sinkOrderKey{byOut: -1, desc: oi.Desc}
		if f, err := compileExprAgg(oi.Expr, gcat, aggEnv); err == nil {
			ok.fn = f
		} else if cr, isRef := oi.Expr.(*ColumnRef); isRef && cr.Table == "" {
			found := -1
			for i, pr := range s.projs {
				if strings.EqualFold(pr.name, cr.Column) {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, err
			}
			ok.byOut = found
		} else {
			return nil, err
		}
		s.orderKeys = append(s.orderKeys, ok)
	}

	if st.Distinct {
		s.seen = map[string]bool{}
	}
	if len(s.orderKeys) > 0 && st.Limit >= 0 {
		s.heapK = st.Offset + st.Limit
		s.valBuf = make([]types.Value, len(s.projs))
	}
	if planPure && !s.needsGroup && len(s.orderKeys) == 0 && st.Limit >= 0 {
		s.earlyStop = true
		for _, pr := range s.projs {
			if !pr.pure {
				s.earlyStop = false
			}
		}
		s.target = st.Offset + st.Limit
	}
	return s, nil
}

// columns returns the output column names.
func (s *streamSink) columns() []string {
	cols := make([]string, len(s.projs))
	for i, pr := range s.projs {
		cols[i] = pr.name
	}
	return cols
}

// canStream reports whether output rows can be yielded as they are
// produced (no grouping or ordering barrier).
func (s *streamSink) canStream() bool {
	return !s.needsGroup && len(s.orderKeys) == 0
}

// canYield reports whether a streaming consumer can receive output rows
// without the sink ever materializing them: directly from the pipeline
// (canStream), or group by group out of finishGroups — only an ORDER BY
// forces the full output to exist at once.
func (s *streamSink) canYield() bool {
	return len(s.orderKeys) == 0
}

// describe renders the sink stage for EXPLAIN output.
func (s *streamSink) describe() string {
	var parts []string
	if s.needsGroup {
		parts = append(parts, fmt.Sprintf("group(keys=%d aggs=%d)", len(s.keyFns), len(s.calls)))
	}
	if s.having != nil {
		parts = append(parts, "having")
	}
	parts = append(parts, fmt.Sprintf("project %d cols", len(s.projs)))
	if s.st.Distinct {
		parts = append(parts, "distinct")
	}
	if len(s.orderKeys) > 0 {
		parts = append(parts, fmt.Sprintf("order by %d keys", len(s.orderKeys)))
	}
	if s.heapK >= 0 {
		parts = append(parts, fmt.Sprintf("top-k heap k=%d", s.heapK))
	}
	if s.st.Offset > 0 {
		parts = append(parts, fmt.Sprintf("offset %d", s.st.Offset))
	}
	if s.st.Limit >= 0 {
		parts = append(parts, fmt.Sprintf("limit %d", s.st.Limit))
	}
	if s.earlyStop {
		parts = append(parts, "early-stop")
	}
	return strings.Join(parts, ", ")
}

// add consumes one pipeline row. The row buffer is reused by the caller:
// everything the sink retains is copied. Returns stop=true when the
// pipeline may terminate early (LIMIT satisfied, or a streaming consumer
// declined more rows).
func (s *streamSink) add(row []types.Value) (bool, error) {
	if s.needsGroup {
		key := s.keyBuf[:0]
		for _, f := range s.keyFns {
			v, err := f(row)
			if err != nil {
				return false, err
			}
			key = v.AppendGroupKey(key)
		}
		s.keyBuf = key
		g, ok := s.groups[string(key)]
		if !ok {
			g = &sinkGroup{rep: append([]types.Value(nil), row...)}
			for _, c := range s.calls {
				g.states = append(g.states, newAggState(c))
			}
			s.groups[string(key)] = g
			s.gorder = append(s.gorder, string(key))
		}
		for _, st := range g.states {
			if err := st.add(row); err != nil {
				return false, err
			}
		}
		return false, nil
	}

	if s.heapK >= 0 && s.yield == nil {
		return false, s.addBounded(row)
	}

	or := sinkOutRow{vals: make([]types.Value, len(s.projs))}
	for i, pr := range s.projs {
		v, err := pr.fn(row)
		if err != nil {
			return false, err
		}
		or.vals[i] = v
	}
	if s.seen != nil {
		key := s.keyBuf[:0]
		for _, v := range or.vals {
			key = v.AppendGroupKey(key)
		}
		s.keyBuf = key
		if s.seen[string(key)] {
			return false, nil
		}
		s.seen[string(key)] = true
	}
	for _, okey := range s.orderKeys {
		var v types.Value
		if okey.byOut >= 0 {
			v = or.vals[okey.byOut]
		} else {
			var err error
			v, err = okey.fn(row)
			if err != nil {
				return false, err
			}
		}
		or.keys = append(or.keys, v)
	}

	if s.yield != nil {
		// Streaming consumer: apply OFFSET/LIMIT inline and hand the row
		// over instead of retaining it.
		s.streamed++
		if s.streamed <= s.st.Offset {
			return false, nil
		}
		if s.st.Limit >= 0 && s.streamed > s.st.Offset+s.st.Limit {
			return true, nil
		}
		if !s.yield(or.vals) {
			s.yieldend = true
			return true, nil
		}
		if s.st.Limit >= 0 && s.streamed == s.st.Offset+s.st.Limit {
			return true, nil
		}
		return false, nil
	}

	s.out = append(s.out, or)
	return s.earlyStop && len(s.out) >= s.target, nil
}

// addBounded is the non-grouped add path when heapK >= 0: project and key
// the row into scratch buffers, then copy it into the bounded heap only if
// it beats the current k-th best. The sequence of expression evaluations
// (and hence of possible errors) is identical to the unbounded path; only
// the retention differs, and a rejected row allocates nothing.
func (s *streamSink) addBounded(row []types.Value) error {
	vals := s.valBuf[:len(s.projs)]
	for i, pr := range s.projs {
		v, err := pr.fn(row)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	if s.seen != nil {
		key := s.keyBuf[:0]
		for _, v := range vals {
			key = v.AppendGroupKey(key)
		}
		s.keyBuf = key
		if s.seen[string(key)] {
			return nil
		}
		s.seen[string(key)] = true
	}
	keys := s.ordBuf[:0]
	for _, okey := range s.orderKeys {
		var v types.Value
		if okey.byOut >= 0 {
			v = vals[okey.byOut]
		} else {
			var err error
			v, err = okey.fn(row)
			if err != nil {
				return err
			}
		}
		keys = append(keys, v)
	}
	s.ordBuf = keys

	cand := sinkOutRow{vals: vals, keys: keys, seq: s.seq}
	s.seq++
	if s.heapK == 0 || (len(s.out) == s.heapK && !s.outLess(&cand, &s.out[0])) {
		return nil // cannot enter the top k: rejected without a copy
	}
	cand.vals = append([]types.Value(nil), vals...)
	cand.keys = append([]types.Value(nil), keys...)
	s.boundedInsert(cand)
	return nil
}

// outLess is the total order the heap maintains: ORDER BY keys first, then
// arrival sequence — the first k rows under this order are exactly the
// first k rows of a stable sort by the keys alone, which is what the
// unbounded path produces.
func (s *streamSink) outLess(a, b *sinkOutRow) bool {
	for k, okey := range s.orderKeys {
		c := a.keys[k].Compare(b.keys[k])
		if c == 0 {
			continue
		}
		if okey.desc {
			return c > 0
		}
		return c < 0
	}
	return a.seq < b.seq
}

// boundedInsert places or into the max-heap rooted at s.out[0] (the worst
// retained row), evicting the root when the heap is at capacity. The
// caller has already established that or beats the root in that case.
func (s *streamSink) boundedInsert(or sinkOutRow) {
	if len(s.out) < s.heapK {
		s.out = append(s.out, or)
		i := len(s.out) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !s.outLess(&s.out[p], &s.out[i]) {
				break
			}
			s.out[p], s.out[i] = s.out[i], s.out[p]
			i = p
		}
		return
	}
	s.out[0] = or
	i, n := 0, len(s.out)
	for {
		big, l, r := i, 2*i+1, 2*i+2
		if l < n && s.outLess(&s.out[big], &s.out[l]) {
			big = l
		}
		if r < n && s.outLess(&s.out[big], &s.out[r]) {
			big = r
		}
		if big == i {
			return
		}
		s.out[i], s.out[big] = s.out[big], s.out[i]
		i = big
	}
}

// finish completes grouping/having, sorts, applies OFFSET/LIMIT and builds
// the eager Result, stamped with the plan-time pinned versions.
func (s *streamSink) finish(ctx context.Context, versions map[string]int64) (*Result, error) {
	if s.needsGroup {
		if err := s.finishGroups(ctx); err != nil {
			return nil, err
		}
	}
	res := &Result{Columns: s.columns(), Versions: versions}
	out := s.out
	if len(s.orderKeys) > 0 {
		// outLess breaks key ties by arrival sequence; on the unbounded
		// path every seq is zero and SliceStable supplies the stability, on
		// the heap path the recorded seqs reproduce it under sort.Slice.
		if s.heapK >= 0 {
			sort.Slice(out, func(i, j int) bool { return s.outLess(&out[i], &out[j]) })
		} else {
			sort.SliceStable(out, func(i, j int) bool { return s.outLess(&out[i], &out[j]) })
		}
	}
	if s.st.Offset > 0 {
		if s.st.Offset >= len(out) {
			out = nil
		} else {
			out = out[s.st.Offset:]
		}
	}
	if s.st.Limit >= 0 && s.st.Limit < len(out) {
		out = out[:s.st.Limit]
	}
	for _, or := range out {
		res.Rows = append(res.Rows, or.vals)
	}
	return res, nil
}

// finishGroups turns the accumulated groups into output rows: one row per
// group in first-appearance order (representative + aggregate results),
// filtered by HAVING, projected like the non-grouped path.
func (s *streamSink) finishGroups(ctx context.Context) error {
	// A global aggregate over an empty input still yields one group, with
	// an all-NULL representative row.
	if len(s.groups) == 0 && len(s.st.GroupBy) == 0 {
		g := &sinkGroup{rep: make([]types.Value, s.width)}
		for _, c := range s.calls {
			g.states = append(g.states, newAggState(c))
		}
		s.groups[""] = g
		s.gorder = append(s.gorder, "")
	}
	for gi, key := range s.gorder {
		if err := strideCheck(ctx, gi); err != nil {
			return err
		}
		g := s.groups[key]
		row := make([]types.Value, 0, s.width+len(s.calls))
		row = append(row, g.rep...)
		for _, st := range g.states {
			row = append(row, st.result())
		}
		if s.having != nil {
			v, err := s.having(row)
			if err != nil {
				return err
			}
			if !truthy(v) {
				continue
			}
		}
		or := sinkOutRow{vals: make([]types.Value, len(s.projs))}
		for i, pr := range s.projs {
			v, err := pr.fn(row)
			if err != nil {
				return err
			}
			or.vals[i] = v
		}
		if s.seen != nil {
			kb := s.keyBuf[:0]
			for _, v := range or.vals {
				kb = v.AppendGroupKey(kb)
			}
			s.keyBuf = kb
			if s.seen[string(kb)] {
				continue
			}
			s.seen[string(kb)] = true
		}
		for _, okey := range s.orderKeys {
			var v types.Value
			if okey.byOut >= 0 {
				v = or.vals[okey.byOut]
			} else {
				var err error
				v, err = okey.fn(row)
				if err != nil {
					return err
				}
			}
			or.keys = append(or.keys, v)
		}
		if s.yield != nil {
			// Streaming consumer (only reachable without ORDER BY): apply
			// OFFSET/LIMIT inline, exactly as the non-grouped add path.
			s.streamed++
			if s.streamed <= s.st.Offset {
				continue
			}
			if s.st.Limit >= 0 && s.streamed > s.st.Offset+s.st.Limit {
				return nil
			}
			if !s.yield(or.vals) {
				s.yieldend = true
				return nil
			}
			continue
		}
		if s.heapK >= 0 {
			// Grouped top-k: the group rows are already materialized, but
			// routing them through the bounded heap keeps the retained set
			// (and the seq tie-break finish sorts by) consistent.
			or.seq = s.seq
			s.seq++
			if s.heapK == 0 || (len(s.out) == s.heapK && !s.outLess(&or, &s.out[0])) {
				continue
			}
			s.boundedInsert(or)
			continue
		}
		s.out = append(s.out, or)
	}
	return nil
}

// SelectStream is a lazily evaluated SELECT: the plan is built and the
// base-table snapshots pinned at creation time (Versions records them —
// mutations between creation and iteration are invisible), but rows are
// produced on demand by Each.
type SelectStream struct {
	// Columns names the output columns.
	Columns []string
	// Versions is the per-base-table pinned version map, captured when the
	// stream was created (pin time), not when rows are consumed.
	Versions map[string]int64

	plan  *selectPlan
	eager *Result // legacy-path fallback: fully materialized
}

// Stream plans a SELECT for incremental consumption. For plans with a
// grouping or ordering barrier (and on the legacy row-scan path) the
// result is materialized on the first Each call; otherwise rows flow
// straight from the pipeline. A stream is single-use: Each may be called
// once.
func (e *Engine) Stream(ctx context.Context, sql string) (*SelectStream, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Stream requires a SELECT statement")
	}
	if len(sel.From) == 0 || e.rowScan {
		res, err := e.RunContext(ctx, sel)
		if err != nil {
			return nil, err
		}
		return &SelectStream{Columns: res.Columns, Versions: res.Versions, eager: res}, nil
	}
	p, err := e.buildSelectPlan(sel)
	if err != nil {
		return nil, err
	}
	return &SelectStream{Columns: p.sink.columns(), Versions: p.versions, plan: p}, nil
}

// Each runs the query, calling yield once per output row in result order.
// Yielded rows are freshly allocated and may be retained. A false return
// from yield stops iteration early (no error). Each may be called once.
func (s *SelectStream) Each(ctx context.Context, yield func(row []types.Value) bool) error {
	if s.eager != nil {
		for i, row := range s.eager.Rows {
			if err := strideCheck(ctx, i); err != nil {
				return err
			}
			if !yield(row) {
				return nil
			}
		}
		return nil
	}
	if s.plan.sink.canYield() {
		s.plan.sink.yield = yield
		if err := s.plan.run(ctx); err != nil {
			return err
		}
		if s.plan.sink.needsGroup {
			// Grouped but unordered: the pipeline has accumulated the
			// groups; hand each finished group row straight to the
			// consumer, never building the output set.
			return s.plan.sink.finishGroups(ctx)
		}
		return nil
	}
	res, err := s.plan.collect(ctx)
	if err != nil {
		return err
	}
	for i, row := range res.Rows {
		if err := strideCheck(ctx, i); err != nil {
			return err
		}
		if !yield(row) {
			return nil
		}
	}
	return nil
}

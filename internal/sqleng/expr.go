package sqleng

import (
	"fmt"
	"strings"

	"semandaq/internal/types"
)

// colInfo describes one column of an intermediate row: the table alias it
// came from (empty for synthesized columns) and its name.
type colInfo struct {
	qual string
	name string
}

// catalog is the ordered column layout of an intermediate result.
type catalog []colInfo

// AmbiguousColumnError reports an unqualified column name matching several
// catalog columns.
type AmbiguousColumnError struct{ Name string }

func (e *AmbiguousColumnError) Error() string {
	return fmt.Sprintf("sql: ambiguous column %q", e.Name)
}

// resolve finds the position of a column reference. Unqualified names must
// be unambiguous across the catalog.
func (c catalog) resolve(ref *ColumnRef) (int, error) {
	found := -1
	for i, ci := range c {
		if !strings.EqualFold(ci.name, ref.Column) {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(ci.qual, ref.Table) {
			continue
		}
		if found >= 0 {
			return 0, &AmbiguousColumnError{Name: exprString(ref)}
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", exprString(ref))
	}
	return found, nil
}

// evalFn is a compiled expression: evaluated against one intermediate row.
type evalFn func(row []types.Value) (types.Value, error)

// compileExpr resolves column references against cat and returns an
// evaluator implementing SQL three-valued logic. Aggregate calls are
// rejected here; the grouping stage compiles them separately via
// compileWithAggs.
func compileExpr(e Expr, cat catalog) (evalFn, error) {
	return compileExprAgg(e, cat, nil)
}

// compileExprAgg is compileExpr with an optional aggregate environment: a
// map from aggregate-call text to the slot in the synthetic agg-value area
// appended after the representative row. If aggEnv is nil, aggregates error.
func compileExprAgg(e Expr, cat catalog, aggEnv map[string]int) (evalFn, error) {
	switch n := e.(type) {
	case *Literal:
		v := n.Value
		return func([]types.Value) (types.Value, error) { return v, nil }, nil

	case *ColumnRef:
		idx, err := cat.resolve(n)
		if err != nil {
			return nil, err
		}
		return func(row []types.Value) (types.Value, error) { return row[idx], nil }, nil

	case *UnaryExpr:
		sub, err := compileExprAgg(n.E, cat, aggEnv)
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "NOT":
			return func(row []types.Value) (types.Value, error) {
				v, err := sub(row)
				if err != nil {
					return types.Null, err
				}
				if v.IsNull() {
					return types.Null, nil
				}
				if v.Kind() != types.KindBool {
					return types.Null, fmt.Errorf("sql: NOT applied to %s", v.Kind())
				}
				return types.NewBool(!v.Bool()), nil
			}, nil
		case "-":
			return func(row []types.Value) (types.Value, error) {
				v, err := sub(row)
				if err != nil || v.IsNull() {
					return types.Null, err
				}
				switch v.Kind() {
				case types.KindInt:
					return types.NewInt(-v.Int()), nil
				case types.KindFloat:
					return types.NewFloat(-v.Float()), nil
				}
				return types.Null, fmt.Errorf("sql: unary - applied to %s", v.Kind())
			}, nil
		}
		return nil, fmt.Errorf("sql: unknown unary operator %q", n.Op)

	case *BinaryExpr:
		return compileBinary(n, cat, aggEnv)

	case *IsNullExpr:
		sub, err := compileExprAgg(n.E, cat, aggEnv)
		if err != nil {
			return nil, err
		}
		not := n.Not
		return func(row []types.Value) (types.Value, error) {
			v, err := sub(row)
			if err != nil {
				return types.Null, err
			}
			return types.NewBool(v.IsNull() != not), nil
		}, nil

	case *InExpr:
		sub, err := compileExprAgg(n.E, cat, aggEnv)
		if err != nil {
			return nil, err
		}
		list := make([]evalFn, len(n.List))
		for i, le := range n.List {
			f, err := compileExprAgg(le, cat, aggEnv)
			if err != nil {
				return nil, err
			}
			list[i] = f
		}
		not := n.Not
		return func(row []types.Value) (types.Value, error) {
			v, err := sub(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() {
				return types.Null, nil
			}
			sawNull := false
			for _, f := range list {
				lv, err := f(row)
				if err != nil {
					return types.Null, err
				}
				if lv.IsNull() {
					sawNull = true
					continue
				}
				if v.Equal(lv) {
					return types.NewBool(!not), nil
				}
			}
			if sawNull {
				return types.Null, nil
			}
			return types.NewBool(not), nil
		}, nil

	case *BetweenExpr:
		sub, err := compileExprAgg(n.E, cat, aggEnv)
		if err != nil {
			return nil, err
		}
		lo, err := compileExprAgg(n.Lo, cat, aggEnv)
		if err != nil {
			return nil, err
		}
		hi, err := compileExprAgg(n.Hi, cat, aggEnv)
		if err != nil {
			return nil, err
		}
		not := n.Not
		return func(row []types.Value) (types.Value, error) {
			v, err := sub(row)
			if err != nil {
				return types.Null, err
			}
			lv, err := lo(row)
			if err != nil {
				return types.Null, err
			}
			hv, err := hi(row)
			if err != nil {
				return types.Null, err
			}
			if v.IsNull() || lv.IsNull() || hv.IsNull() {
				return types.Null, nil
			}
			in := v.Compare(lv) >= 0 && v.Compare(hv) <= 0
			return types.NewBool(in != not), nil
		}, nil

	case *CaseExpr:
		type arm struct{ cond, then evalFn }
		arms := make([]arm, len(n.Whens))
		for i, w := range n.Whens {
			c, err := compileExprAgg(w.Cond, cat, aggEnv)
			if err != nil {
				return nil, err
			}
			th, err := compileExprAgg(w.Then, cat, aggEnv)
			if err != nil {
				return nil, err
			}
			arms[i] = arm{c, th}
		}
		var els evalFn
		if n.Else != nil {
			f, err := compileExprAgg(n.Else, cat, aggEnv)
			if err != nil {
				return nil, err
			}
			els = f
		}
		return func(row []types.Value) (types.Value, error) {
			for _, a := range arms {
				c, err := a.cond(row)
				if err != nil {
					return types.Null, err
				}
				if truthy(c) {
					return a.then(row)
				}
			}
			if els != nil {
				return els(row)
			}
			return types.Null, nil
		}, nil

	case *FuncExpr:
		if aggregateFuncs[n.Name] {
			if aggEnv == nil {
				return nil, fmt.Errorf("sql: aggregate %s not allowed here", n.Name)
			}
			slot, ok := aggEnv[exprString(n)]
			if !ok {
				return nil, fmt.Errorf("sql: internal: aggregate %s not registered", exprString(n))
			}
			return func(row []types.Value) (types.Value, error) {
				return row[slot], nil
			}, nil
		}
		return compileScalarFunc(n, cat, aggEnv)
	}
	return nil, fmt.Errorf("sql: cannot compile expression %q", exprString(e))
}

func compileBinary(n *BinaryExpr, cat catalog, aggEnv map[string]int) (evalFn, error) {
	l, err := compileExprAgg(n.L, cat, aggEnv)
	if err != nil {
		return nil, err
	}
	r, err := compileExprAgg(n.R, cat, aggEnv)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case "AND":
		return func(row []types.Value) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			// Short-circuit FALSE.
			if !lv.IsNull() && lv.Kind() == types.KindBool && !lv.Bool() {
				return types.NewBool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			return and3(lv, rv), nil
		}, nil
	case "OR":
		return func(row []types.Value) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			if !lv.IsNull() && lv.Kind() == types.KindBool && lv.Bool() {
				return types.NewBool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			return or3(lv, rv), nil
		}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		op := n.Op
		return func(row []types.Value) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			c := lv.Compare(rv)
			var b bool
			switch op {
			case "=":
				b = c == 0
			case "<>":
				b = c != 0
			case "<":
				b = c < 0
			case "<=":
				b = c <= 0
			case ">":
				b = c > 0
			case ">=":
				b = c >= 0
			}
			return types.NewBool(b), nil
		}, nil
	case "+", "-", "*", "/", "%":
		op := n.Op
		return func(row []types.Value) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			return arith(op, lv, rv)
		}, nil
	case "||":
		return func(row []types.Value) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			return types.NewString(lv.CoerceString() + rv.CoerceString()), nil
		}, nil
	case "LIKE":
		return func(row []types.Value) (types.Value, error) {
			lv, err := l(row)
			if err != nil {
				return types.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return types.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return types.Null, nil
			}
			return types.NewBool(likeMatch(rv.CoerceString(), lv.CoerceString())), nil
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown binary operator %q", n.Op)
}

// and3/or3 implement SQL three-valued logic over BOOL/NULL values.
func and3(a, b types.Value) types.Value {
	af, bf := boolState(a), boolState(b)
	switch {
	case af == 0 || bf == 0:
		return types.NewBool(false)
	case af == 1 && bf == 1:
		return types.NewBool(true)
	default:
		return types.Null
	}
}

func or3(a, b types.Value) types.Value {
	af, bf := boolState(a), boolState(b)
	switch {
	case af == 1 || bf == 1:
		return types.NewBool(true)
	case af == 0 && bf == 0:
		return types.NewBool(false)
	default:
		return types.Null
	}
}

// boolState maps a value to 0 (false), 1 (true) or 2 (unknown).
func boolState(v types.Value) int {
	if v.IsNull() || v.Kind() != types.KindBool {
		return 2
	}
	if v.Bool() {
		return 1
	}
	return 0
}

// truthy reports whether a predicate result selects the row.
func truthy(v types.Value) bool { return boolState(v) == 1 }

func arith(op string, a, b types.Value) (types.Value, error) {
	if a.IsNull() || b.IsNull() {
		return types.Null, nil
	}
	num := func(v types.Value) (float64, bool, error) {
		switch v.Kind() {
		case types.KindInt:
			return float64(v.Int()), true, nil
		case types.KindFloat:
			return v.Float(), false, nil
		}
		return 0, false, fmt.Errorf("sql: arithmetic on %s value", v.Kind())
	}
	af, aInt, err := num(a)
	if err != nil {
		return types.Null, err
	}
	bf, bInt, err := num(b)
	if err != nil {
		return types.Null, err
	}
	bothInt := aInt && bInt
	switch op {
	case "+":
		if bothInt {
			return types.NewInt(a.Int() + b.Int()), nil
		}
		return types.NewFloat(af + bf), nil
	case "-":
		if bothInt {
			return types.NewInt(a.Int() - b.Int()), nil
		}
		return types.NewFloat(af - bf), nil
	case "*":
		if bothInt {
			return types.NewInt(a.Int() * b.Int()), nil
		}
		return types.NewFloat(af * bf), nil
	case "/":
		if bf == 0 {
			return types.Null, fmt.Errorf("sql: division by zero")
		}
		if bothInt {
			return types.NewInt(a.Int() / b.Int()), nil
		}
		return types.NewFloat(af / bf), nil
	case "%":
		if !bothInt {
			return types.Null, fmt.Errorf("sql: %% requires integers")
		}
		if b.Int() == 0 {
			return types.Null, fmt.Errorf("sql: division by zero")
		}
		return types.NewInt(a.Int() % b.Int()), nil
	}
	return types.Null, fmt.Errorf("sql: unknown arithmetic operator %q", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one byte),
// using iterative backtracking (the classic wildcard-match algorithm).
func likeMatch(pattern, s string) bool {
	p, i := 0, 0
	star, mark := -1, 0
	for i < len(s) {
		switch {
		case p < len(pattern) && (pattern[p] == '_' || pattern[p] == s[i]):
			p++
			i++
		case p < len(pattern) && pattern[p] == '%':
			star = p
			mark = i
			p++
		case star >= 0:
			p = star + 1
			mark++
			i = mark
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '%' {
		p++
	}
	return p == len(pattern)
}

// compileScalarFunc compiles the supported scalar functions.
func compileScalarFunc(n *FuncExpr, cat catalog, aggEnv map[string]int) (evalFn, error) {
	args := make([]evalFn, len(n.Args))
	for i, a := range n.Args {
		f, err := compileExprAgg(a, cat, aggEnv)
		if err != nil {
			return nil, err
		}
		args[i] = f
	}
	requireArgs := func(min, max int) error {
		if len(args) < min || (max >= 0 && len(args) > max) {
			return fmt.Errorf("sql: %s: wrong number of arguments (%d)", n.Name, len(args))
		}
		return nil
	}
	evalArgs := func(row []types.Value) ([]types.Value, error) {
		vals := make([]types.Value, len(args))
		for i, f := range args {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return vals, nil
	}
	switch n.Name {
	case "UPPER", "LOWER", "TRIM", "LENGTH":
		if err := requireArgs(1, 1); err != nil {
			return nil, err
		}
		name := n.Name
		return func(row []types.Value) (types.Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return types.Null, err
			}
			v := vals[0]
			if v.IsNull() {
				return types.Null, nil
			}
			s := v.CoerceString()
			switch name {
			case "UPPER":
				return types.NewString(strings.ToUpper(s)), nil
			case "LOWER":
				return types.NewString(strings.ToLower(s)), nil
			case "TRIM":
				return types.NewString(strings.TrimSpace(s)), nil
			default: // LENGTH
				return types.NewInt(int64(len(s))), nil
			}
		}, nil
	case "SUBSTR":
		if err := requireArgs(2, 3); err != nil {
			return nil, err
		}
		return func(row []types.Value) (types.Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return types.Null, err
			}
			if vals[0].IsNull() || vals[1].IsNull() {
				return types.Null, nil
			}
			if vals[1].Kind() != types.KindInt {
				return types.Null, fmt.Errorf("sql: SUBSTR position must be an integer, got %s", vals[1].Kind())
			}
			s := vals[0].CoerceString()
			start := int(vals[1].Int()) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start > len(s) {
				start = len(s)
			}
			end := len(s)
			if len(vals) == 3 && !vals[2].IsNull() {
				if vals[2].Kind() != types.KindInt {
					return types.Null, fmt.Errorf("sql: SUBSTR length must be an integer, got %s", vals[2].Kind())
				}
				n := int(vals[2].Int())
				if n < 0 {
					n = 0
				}
				if start+n < end {
					end = start + n
				}
			}
			return types.NewString(s[start:end]), nil
		}, nil
	case "COALESCE":
		if err := requireArgs(1, -1); err != nil {
			return nil, err
		}
		return func(row []types.Value) (types.Value, error) {
			for _, f := range args {
				v, err := f(row)
				if err != nil {
					return types.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return types.Null, nil
		}, nil
	case "CONCAT":
		return func(row []types.Value) (types.Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return types.Null, err
			}
			var b strings.Builder
			for _, v := range vals {
				b.WriteString(v.CoerceString())
			}
			return types.NewString(b.String()), nil
		}, nil
	case "ABS":
		if err := requireArgs(1, 1); err != nil {
			return nil, err
		}
		return func(row []types.Value) (types.Value, error) {
			vals, err := evalArgs(row)
			if err != nil {
				return types.Null, err
			}
			v := vals[0]
			if v.IsNull() {
				return types.Null, nil
			}
			switch v.Kind() {
			case types.KindInt:
				if v.Int() < 0 {
					return types.NewInt(-v.Int()), nil
				}
				return v, nil
			case types.KindFloat:
				if v.Float() < 0 {
					return types.NewFloat(-v.Float()), nil
				}
				return v, nil
			}
			return types.Null, fmt.Errorf("sql: ABS on %s value", v.Kind())
		}, nil
	}
	return nil, fmt.Errorf("sql: unknown function %q", n.Name)
}

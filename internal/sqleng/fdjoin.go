// FD-collapsed joins: discovered exact FDs registered as plan-time
// algebraic facts.
//
// Engine.RegisterFDs records an fdset.Set (attribute positions = snapshot
// column indexes) for a base table — typically the exact cover a discovery
// run mined (discovery.Report.ExactFDs). The planner consults it in
// finalizeSteps: a composite equi-join key whose columns are all bare right
// columns collapses to a PLI probe on one lead column when the registered
// FDs prove the lead determines every other key column. The remaining key
// equalities become per-candidate dictionary-code guards, so the result is
// identical whether or not the FDs actually hold on the pinned snapshot —
// a stale registration can never produce wrong rows, only cost the memo
// extra entries. What the FDs buy is exactness and work:
//
//   - statistics: the collapsed step's class count is the lead column's
//     exact PLI class count (under the FD, the composite key has exactly
//     as many classes as the lead), replacing the capped
//     dictionary-cardinality product estimate the hash path uses — so the
//     greedy probe orderer ranks the step by an exact number;
//   - execution: no hash index is built over the full right side. Probes
//     read the lead's PLI class and guard-filter it once per distinct
//     (lead class, guard codes) combination, memoized — when the FD holds
//     on the data, each lead class is scanned at most once, so collapsed
//     class scans <= lead class count (the D9 gate), versus the hash
//     build's unconditional full-relation scan.
//
// EXPLAIN prints each collapse with the derivation that licensed it
// (fdset.Set.Derivation), one line per guarded column.
package sqleng

import (
	"fmt"
	"strings"
	"sync/atomic"

	"semandaq/internal/fdset"
)

// flushOps folds the execution's locally accumulated counters into the
// engine's, one atomic add per field — the hot loops count on plain ints.
func (px *planExec) flushOps() {
	o := px.p.ops
	atomic.AddInt64(&o.PLIProbes, px.ops.PLIProbes)
	atomic.AddInt64(&o.HashProbes, px.ops.HashProbes)
	atomic.AddInt64(&o.HashBuildRows, px.ops.HashBuildRows)
	atomic.AddInt64(&o.CollapsedProbes, px.ops.CollapsedProbes)
	atomic.AddInt64(&o.CollapsedBuilds, px.ops.CollapsedBuilds)
}

// OpCounters profiles the executor's join index work. Counters accumulate
// across queries on one engine, atomically (concurrent queries on a
// shared engine each add their work); read a consistent copy via OpStats.
// The factorised-evaluation experiment (D9) gates on them.
type OpCounters struct {
	// PLIProbes counts single-column PLI class lookups.
	PLIProbes int64
	// HashProbes counts hash-bucket lookups, HashBuildRows the right-side
	// rows scanned to build hash indexes.
	HashProbes    int64
	HashBuildRows int64
	// CollapsedProbes counts lookups on FD-collapsed steps;
	// CollapsedBuilds counts the memo misses among them — the lead-class
	// scans that applied the guard filters. When the registered FDs hold
	// on the snapshot, CollapsedBuilds is bounded by the lead column's
	// class count.
	CollapsedProbes int64
	CollapsedBuilds int64
}

// RegisterFDs records exact FDs for the named table, keyed by attribute
// position (snapshot column index, excluding the hidden _tid). The planner
// uses them to collapse composite join keys; see the package comment
// above. Registering nil removes the entry. Safe to call while queries
// run: the registry is copy-on-write, and because collapsed probes
// re-check every key equality per candidate, a set that is stale relative
// to the data can only cost work, never change a result.
func (e *Engine) RegisterFDs(table string, fds *fdset.Set) {
	key := strings.ToLower(table)
	e.fdmu.Lock()
	defer e.fdmu.Unlock()
	next := make(map[string]*fdset.Set, len(e.fds)+1)
	for k, v := range e.fds {
		next[k] = v
	}
	if fds == nil {
		delete(next, key)
	} else {
		next[key] = fds
	}
	e.fds = next
}

// RegisteredFDs returns the FD set registered for the named table, nil
// when none is.
func (e *Engine) RegisteredFDs(table string) *fdset.Set {
	return e.snapshotFDs()[strings.ToLower(table)]
}

// snapshotFDs returns the current FD registry. The returned map is never
// mutated (copy-on-write), so callers may read it lock-free afterwards.
func (e *Engine) snapshotFDs() map[string]*fdset.Set {
	e.fdmu.RLock()
	defer e.fdmu.RUnlock()
	return e.fds
}

// OpStats returns a copy of the accumulated executor operation counters.
func (e *Engine) OpStats() OpCounters {
	return OpCounters{
		PLIProbes:       atomic.LoadInt64(&e.ops.PLIProbes),
		HashProbes:      atomic.LoadInt64(&e.ops.HashProbes),
		HashBuildRows:   atomic.LoadInt64(&e.ops.HashBuildRows),
		CollapsedProbes: atomic.LoadInt64(&e.ops.CollapsedProbes),
		CollapsedBuilds: atomic.LoadInt64(&e.ops.CollapsedBuilds),
	}
}

// ResetOpStats zeroes the executor operation counters.
func (e *Engine) ResetOpStats() {
	atomic.StoreInt64(&e.ops.PLIProbes, 0)
	atomic.StoreInt64(&e.ops.HashProbes, 0)
	atomic.StoreInt64(&e.ops.HashBuildRows, 0)
	atomic.StoreInt64(&e.ops.CollapsedProbes, 0)
	atomic.StoreInt64(&e.ops.CollapsedBuilds, 0)
}

// collapseStep rewrites a composite-key step as an FD-collapsed PLI probe
// if the registered FDs license it: every key column a bare right column,
// and some lead key column determining all the others. Among valid leads
// the one with the most classes wins (fewest expected matches — the most
// selective probe). Requires pure keys: the collapsed path evaluates the
// left key expressions lead-first instead of in written order, which is
// unobservable only when none of them can error.
func collapseStep(step *joinStep, fds *fdset.Set) bool {
	if fds == nil || step.kind != stepHash || len(step.keyR) < 2 || !step.keyPure {
		return false
	}
	snap := step.right.snap
	if fds.Arity() != snap.Schema().Arity() {
		return false // registered against a different schema shape
	}
	cols := make([]int, len(step.keyR))
	for i, src := range step.keyRSrc {
		c, ok := bareScanCol(src, step.right)
		if !ok {
			return false
		}
		cols[i] = c
	}
	best := -1
	for i, lead := range cols {
		licensed := true
		for j, other := range cols {
			if j != i && !fds.Implies([]int{lead}, other) {
				licensed = false
				break
			}
		}
		if !licensed {
			continue
		}
		if best < 0 || snap.ColClassCount(lead) > snap.ColClassCount(cols[best]) {
			best = i
		}
	}
	if best < 0 {
		return false
	}

	step.kind = stepPLI
	step.collapsed = true
	step.leadKey = best
	step.keyRCol = cols[best]
	step.classes = snap.ColClassCount(cols[best])
	step.expected = float64(step.rightLen)
	if step.classes > 0 {
		step.expected = float64(step.rightLen) / float64(step.classes)
	}

	attrs := snap.Schema().Attrs
	names := make([]string, len(attrs))
	for i, a := range attrs {
		names[i] = a.Name
	}
	for j, other := range cols {
		if j == best {
			continue
		}
		step.guardKeys = append(step.guardKeys, j)
		step.guardCols = append(step.guardCols, other)
		witness, _ := fds.Derivation([]int{cols[best]}, other)
		parts := make([]string, len(witness))
		for w, f := range witness {
			parts[w] = f.Render(names)
		}
		licence := strings.Join(parts, ", ")
		if licence == "" {
			licence = "trivial" // duplicate key column: lead == guard
		}
		step.fdLines = append(step.fdLines, fmt.Sprintf(
			"fd-collapse: lead %s guards %s via %s", names[cols[best]], names[other], licence))
	}
	return true
}

// collapsedLookup probes an FD-collapsed step for the current prefix: the
// lead column's PLI class (eq already resolved by the caller), filtered by
// dictionary-code equality on the guarded key columns. Results are
// memoized per (lead class, guard codes): when the registered FD holds on
// the snapshot, every left row probing a given lead class carries the same
// guard values, so each class is scanned at most once.
func (px *planExec) collapsedLookup(si int, eq uint32) ([]int32, error) {
	step := px.p.steps[si]
	idx := px.idx[si]
	px.ops.CollapsedProbes++

	key := px.keyBuf[:0]
	key = append(key, byte(eq), byte(eq>>8), byte(eq>>16), byte(eq>>24))
	for gi, ki := range step.guardKeys {
		v, err := step.keyL[ki](px.buf)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			px.keyBuf = key
			return nil, nil // NULL never equi-joins
		}
		code, ok := idx.guardCols[gi].EqCodeOf(v)
		if !ok {
			px.keyBuf = key
			return nil, nil // value absent from the right column
		}
		px.guard[gi] = code
		key = append(key, byte(code), byte(code>>8), byte(code>>16), byte(code>>24))
	}
	px.keyBuf = key

	if cands, ok := idx.memo[string(key)]; ok {
		return cands, nil
	}
	px.ops.CollapsedBuilds++
	var out []int32
	for _, r := range idx.pliCol.ClassRows(eq) {
		if err := px.stride(); err != nil {
			return nil, err
		}
		pass := true
		for gi, col := range idx.guardCols {
			if col.EqCode(int(r)) != px.guard[gi] {
				pass = false
				break
			}
		}
		if pass {
			out = append(out, r)
		}
	}
	idx.memo[string(key)] = out
	return out, nil
}

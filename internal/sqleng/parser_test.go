package sqleng

import (
	"testing"

	"semandaq/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return st
}

func TestParseSimpleSelect(t *testing.T) {
	st := mustParse(t, "SELECT a, b AS bee FROM r WHERE a = 'x'").(*SelectStmt)
	if len(st.Items) != 2 {
		t.Fatalf("items = %d", len(st.Items))
	}
	if st.Items[1].Alias != "bee" {
		t.Errorf("alias = %q", st.Items[1].Alias)
	}
	if len(st.From) != 1 || st.From[0].Table != "r" || st.From[0].Alias != "r" {
		t.Errorf("from = %+v", st.From)
	}
	if st.Where == nil {
		t.Error("missing where")
	}
	if st.Limit != -1 {
		t.Errorf("limit = %d", st.Limit)
	}
}

func TestParseStarForms(t *testing.T) {
	st := mustParse(t, "SELECT *, t.* FROM r t").(*SelectStmt)
	if !st.Items[0].Star || st.Items[0].StarTable != "" {
		t.Errorf("item0 = %+v", st.Items[0])
	}
	if !st.Items[1].Star || st.Items[1].StarTable != "t" {
		t.Errorf("item1 = %+v", st.Items[1])
	}
	if st.From[0].Alias != "t" {
		t.Errorf("alias = %q", st.From[0].Alias)
	}
}

func TestParseFullSelect(t *testing.T) {
	st := mustParse(t, `
		SELECT DISTINCT cnt, COUNT(*) AS n
		FROM customer c, tableau tp
		WHERE c.zip = tp.zip AND c.cc <> 0
		GROUP BY cnt
		HAVING COUNT(*) > 1
		ORDER BY n DESC, cnt ASC
		LIMIT 10 OFFSET 5`).(*SelectStmt)
	if !st.Distinct {
		t.Error("distinct")
	}
	if len(st.From) != 2 {
		t.Errorf("from = %+v", st.From)
	}
	if len(st.GroupBy) != 1 || st.Having == nil {
		t.Error("group/having")
	}
	if len(st.OrderBy) != 2 || !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Errorf("order = %+v", st.OrderBy)
	}
	if st.Limit != 10 || st.Offset != 5 {
		t.Errorf("limit/offset = %d/%d", st.Limit, st.Offset)
	}
}

func TestParseJoin(t *testing.T) {
	st := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z").(*SelectStmt)
	if len(st.Joins) != 2 {
		t.Fatalf("joins = %d", len(st.Joins))
	}
	if st.Joins[0].Left || !st.Joins[1].Left {
		t.Errorf("join kinds = %+v", st.Joins)
	}
	mustParse(t, "SELECT * FROM a INNER JOIN b ON a.x = b.y")
}

func TestParseExpressionPrecedence(t *testing.T) {
	st := mustParse(t, "SELECT a + b * c FROM r").(*SelectStmt)
	add := st.Items[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op = %q", add.Op)
	}
	mul := add.R.(*BinaryExpr)
	if mul.Op != "*" {
		t.Errorf("inner op = %q", mul.Op)
	}

	st2 := mustParse(t, "SELECT * FROM r WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or := st2.Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top = %q, want OR", or.Op)
	}
	and := or.R.(*BinaryExpr)
	if and.Op != "AND" {
		t.Errorf("right = %q, want AND", and.Op)
	}
}

func TestParsePredicates(t *testing.T) {
	cases := []string{
		"SELECT * FROM r WHERE a IS NULL",
		"SELECT * FROM r WHERE a IS NOT NULL",
		"SELECT * FROM r WHERE a IN (1, 2, 3)",
		"SELECT * FROM r WHERE a NOT IN ('x')",
		"SELECT * FROM r WHERE a BETWEEN 1 AND 10",
		"SELECT * FROM r WHERE a NOT BETWEEN 1 AND 10",
		"SELECT * FROM r WHERE a LIKE 'ab%'",
		"SELECT * FROM r WHERE a NOT LIKE 'ab%'",
		"SELECT * FROM r WHERE NOT (a = 1)",
		"SELECT * FROM r WHERE a <> b AND NOT c = d",
		"SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM r",
		"SELECT COUNT(DISTINCT a) FROM r",
		"SELECT -a, a - -b FROM r",
		"SELECT a || '-' || b FROM r",
		"SELECT UPPER(a), SUBSTR(a, 1, 2) FROM r",
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseDML(t *testing.T) {
	ins := mustParse(t, "INSERT INTO r (a, b) VALUES (1, 'x'), (2, 'y')").(*InsertStmt)
	if ins.Table != "r" || len(ins.Cols) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	ins2 := mustParse(t, "INSERT INTO r VALUES (1, 2)").(*InsertStmt)
	if len(ins2.Cols) != 0 || len(ins2.Rows[0]) != 2 {
		t.Errorf("insert2 = %+v", ins2)
	}
	upd := mustParse(t, "UPDATE r SET a = 1, b = 'z' WHERE c = 2").(*UpdateStmt)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("update = %+v", upd)
	}
	del := mustParse(t, "DELETE FROM r WHERE a = 1").(*DeleteStmt)
	if del.Table != "r" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}
	del2 := mustParse(t, "DELETE FROM r").(*DeleteStmt)
	if del2.Where != nil {
		t.Error("delete without where")
	}
}

func TestParseDDL(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE r (a INT, b STRING, c VARCHAR(20), d FLOAT, e BOOL, f TEXT)").(*CreateTableStmt)
	if ct.Table != "r" || len(ct.Cols) != 6 {
		t.Fatalf("create = %+v", ct)
	}
	wantKinds := []types.Kind{types.KindInt, types.KindString, types.KindString,
		types.KindFloat, types.KindBool, types.KindString}
	for i, w := range wantKinds {
		if ct.Cols[i].Type != w {
			t.Errorf("col %d type = %v, want %v", i, ct.Cols[i].Type, w)
		}
	}
	dt := mustParse(t, "DROP TABLE r").(*DropTableStmt)
	if dt.Table != "r" {
		t.Errorf("drop = %+v", dt)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE r (a INT); INSERT INTO r VALUES (1); SELECT * FROM r;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("stmts = %d", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"BOGUS",
		"SELECT",
		"SELECT FROM r",
		"SELECT * FROM",
		"SELECT * FROM r WHERE",
		"SELECT * FROM r GROUP",
		"SELECT * FROM r LIMIT x",
		"INSERT r VALUES (1)",
		"INSERT INTO r VALUES 1",
		"UPDATE r a = 1",
		"DELETE r",
		"CREATE TABLE r",
		"SELECT a FROM r extra extra",
		"SELECT * FROM r WHERE a NOT 5",
		"SELECT CASE END FROM r",
		"SELECT * FROM r WHERE a IN ()",
		"SELECT (a FROM r",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExprString(t *testing.T) {
	cases := []struct {
		sql, want string
	}{
		{"SELECT a + 1 FROM r", "(a + 1)"},
		{"SELECT t.a FROM r t", "t.a"},
		{"SELECT COUNT(*) FROM r", "COUNT(*)"},
		{"SELECT COUNT(DISTINCT a) FROM r", "COUNT(DISTINCT a)"},
		{"SELECT a IS NULL FROM r", "a IS NULL"},
		{"SELECT a IN (1, 2) FROM r", "a IN (1, 2)"},
		{"SELECT a BETWEEN 1 AND 2 FROM r", "a BETWEEN 1 AND 2"},
		{"SELECT NOT a FROM r", "NOT a"},
		{"SELECT CASE WHEN a THEN 1 ELSE 2 END FROM r", "CASE WHEN a THEN 1 ELSE 2 END"},
		{"SELECT 'it''s' FROM r", "'it''s'"},
	}
	for _, c := range cases {
		st := mustParse(t, c.sql).(*SelectStmt)
		if got := exprString(st.Items[0].Expr); got != c.want {
			t.Errorf("exprString(%q) = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestHasAggregate(t *testing.T) {
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT COUNT(*) FROM r", true},
		{"SELECT a + SUM(b) FROM r", true},
		{"SELECT UPPER(a) FROM r", false},
		{"SELECT a FROM r", false},
		{"SELECT CASE WHEN MAX(a) > 1 THEN 1 END FROM r", true},
		{"SELECT a IN (MIN(b)) FROM r", true},
	}
	for _, c := range cases {
		st := mustParse(t, c.sql).(*SelectStmt)
		if got := hasAggregate(st.Items[0].Expr); got != c.want {
			t.Errorf("hasAggregate(%q) = %v", c.sql, got)
		}
	}
}

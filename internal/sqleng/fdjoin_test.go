package sqleng

import (
	"reflect"
	"strings"
	"testing"

	"semandaq/internal/fdset"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// newFDJoinStore builds log (16 rows) joining dept (8 rows) on the
// composite key (DID, DNAME), where DID -> DNAME genuinely holds on dept
// (DIDs are unique). A third column CHAIN exercises transitive licensing:
// DID -> DNAME -> CHAIN.
func newFDJoinStore(t *testing.T) *relstore.Store {
	t.Helper()
	store := relstore.NewStore()
	log, err := store.Create(schema.New("log", "LID", "DID", "DNAME", "CHAIN"))
	if err != nil {
		t.Fatal(err)
	}
	dept, err := store.Create(schema.New("dept", "DID", "DNAME", "CHAIN", "CITY"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		dept.MustInsert(relstore.Tuple{
			types.NewInt(int64(i)),
			types.NewString("d" + string(rune('a'+i))),
			types.NewString("c" + string(rune('a'+i%4))),
			types.NewString("city" + string(rune('a'+i%3))),
		})
	}
	for i := 0; i < 16; i++ {
		log.MustInsert(relstore.Tuple{
			types.NewInt(int64(100 + i)),
			types.NewInt(int64(i % 8)),
			types.NewString("d" + string(rune('a'+i%8))),
			types.NewString("c" + string(rune('a'+(i%8)%4))),
		})
	}
	return store
}

// deptFDs registers the dependencies that hold on dept: DID -> DNAME and
// DNAME -> CHAIN (positions 0 -> 1 and 1 -> 2).
func deptFDs() *fdset.Set {
	s := fdset.New(4)
	s.Add([]int{0}, 1)
	s.Add([]int{1}, 2)
	return s
}

const fdJoinQuery = `SELECT l.LID, d.CITY FROM log l, dept d
	WHERE l.DID = d.DID AND l.DNAME = d.DNAME AND l.CHAIN = d.CHAIN`

// TestFDCollapseExplain pins the planner rewrite: without registered FDs
// the composite key builds a hash index; with them the join collapses to a
// PLI probe on DID with exact statistics (8 unique DIDs -> expect=1
// exactly) and EXPLAIN names the licensing derivations, including the
// transitive one for CHAIN.
func TestFDCollapseExplain(t *testing.T) {
	store := newFDJoinStore(t)
	e := New(store)

	lines := planLines(t, e, "EXPLAIN "+fdJoinQuery)
	if indexOfLine(lines, "join inner hash") < 0 {
		t.Fatalf("expected hash join without FDs:\n%s", strings.Join(lines, "\n"))
	}

	e.RegisterFDs("dept", deptFDs())
	lines = planLines(t, e, "EXPLAIN "+fdJoinQuery)
	text := strings.Join(lines, "\n")
	if indexOfLine(lines, "join inner pli", "fd-collapsed", "classes=8", "expect=1") < 0 {
		t.Errorf("collapsed join line missing:\n%s", text)
	}
	if indexOfLine(lines, "fd-collapse: lead DID guards DNAME via [DID]->[DNAME]") < 0 {
		t.Errorf("direct licence line missing:\n%s", text)
	}
	if indexOfLine(lines, "fd-collapse: lead DID guards CHAIN via [DID]->[DNAME], [DNAME]->[CHAIN]") < 0 {
		t.Errorf("transitive licence line missing:\n%s", text)
	}

	e.RegisterFDs("dept", nil)
	lines = planLines(t, e, "EXPLAIN "+fdJoinQuery)
	if indexOfLine(lines, "join inner hash") < 0 {
		t.Errorf("unregistering FDs did not restore the hash join:\n%s", strings.Join(lines, "\n"))
	}
}

// TestFDCollapseIdentity holds the collapsed path to the legacy
// materializing oracle, both when the registered FD holds and — the
// soundness case — when it is stale: dept2 breaks DID -> DNAME, so the
// guards must filter the lead class down to the true matches.
func TestFDCollapseIdentity(t *testing.T) {
	store := newFDJoinStore(t)
	dept2, err := store.Create(schema.New("dept2", "DID", "DNAME", "CITY"))
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate DIDs with conflicting DNAMEs: the registered FD is false.
	for i := 0; i < 8; i++ {
		dept2.MustInsert(relstore.Tuple{
			types.NewInt(int64(i % 4)),
			types.NewString("d" + string(rune('a'+i))),
			types.NewString("city" + string(rune('a'+i%3))),
		})
	}
	staleFDs := fdset.New(3)
	staleFDs.Add([]int{0}, 1)

	queries := []string{
		fdJoinQuery,
		`SELECT l.LID, d.DNAME FROM log l, dept d
		 WHERE l.DID = d.DID AND l.DNAME = d.DNAME ORDER BY l.LID DESC LIMIT 5`,
		`SELECT d.CITY, COUNT(*) FROM log l, dept d
		 WHERE l.DID = d.DID AND l.DNAME = d.DNAME GROUP BY d.CITY`,
		`SELECT l.LID, d2.CITY FROM log l LEFT JOIN dept2 d2
		 ON l.DID = d2.DID AND l.DNAME = d2.DNAME`,
		`SELECT l.LID FROM log l, dept2 d2
		 WHERE l.DID = d2.DID AND l.DNAME = d2.DNAME`,
	}

	collapsed := New(store)
	collapsed.RegisterFDs("dept", deptFDs())
	collapsed.RegisterFDs("dept2", staleFDs)
	oracle := New(store)
	oracle.SetColumnarScan(false)

	for _, q := range queries {
		got, err := collapsed.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := oracle.Query(q)
		if err != nil {
			t.Fatalf("%s: oracle: %v", q, err)
		}
		if !reflect.DeepEqual(got.Columns, want.Columns) || !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Errorf("%s:\ncollapsed: %v\noracle:    %v", q, got.Rows, want.Rows)
		}
	}
}

// TestFDCollapseProbeGate is the D9 probe-work gate in miniature: with the
// FD holding on the data, the collapsed join scans each touched lead class
// at most once (memoized guard filtering), so class scans <= class count
// and no hash index is ever built; without FDs the hash build scans the
// whole right side.
func TestFDCollapseProbeGate(t *testing.T) {
	store := newFDJoinStore(t)
	e := New(store)
	e.RegisterFDs("dept", deptFDs())

	if _, err := e.Query(fdJoinQuery); err != nil {
		t.Fatal(err)
	}
	ops := e.OpStats()
	if ops.CollapsedProbes == 0 || ops.CollapsedBuilds == 0 {
		t.Fatalf("collapsed path not exercised: %+v", ops)
	}
	if ops.CollapsedBuilds > 8 {
		t.Errorf("collapsed class scans %d exceed lead class count 8", ops.CollapsedBuilds)
	}
	if ops.HashBuildRows != 0 || ops.HashProbes != 0 {
		t.Errorf("collapsed run still built a hash index: %+v", ops)
	}

	e.RegisterFDs("dept", nil)
	e.ResetOpStats()
	if _, err := e.Query(fdJoinQuery); err != nil {
		t.Fatal(err)
	}
	ops = e.OpStats()
	if ops.HashBuildRows != 8 {
		t.Errorf("hash build scanned %d rows, want the full right side (8)", ops.HashBuildRows)
	}
	if ops.CollapsedProbes != 0 {
		t.Errorf("uncollapsed run used the collapsed path: %+v", ops)
	}
}

package discovery

import (
	"context"
	"fmt"
	"testing"

	"semandaq/internal/cfd"
	"semandaq/internal/datagen"
	"semandaq/internal/detect"
)

// TestMinedCFDsHoldOnOwnSnapshot is the mining/detection consistency
// property: every CFD discovered at confidence 1.0 must produce zero
// violations when fed back through Detect on the exact snapshot it was
// mined from — whatever noise was injected, the miner only asserts rules
// the data actually satisfies. Run across noise levels, support
// thresholds and lattice depths, for exact and approximate mining (in the
// approximate run only the confidence-1.0 candidates are replayed).
func TestMinedCFDsHoldOnOwnSnapshot(t *testing.T) {
	for _, noise := range []float64{0, 0.02, 0.10} {
		for _, minConf := range []float64{1.0, 0.85} {
			noise, minConf := noise, minConf
			t.Run(fmt.Sprintf("noise%g_conf%g", noise, minConf), func(t *testing.T) {
				ds := datagen.Generate(datagen.Config{Tuples: 1500, Seed: 21, NoiseRate: noise})
				snap := ds.Dirty.Snapshot()
				rep, err := Mine(context.Background(), snap, Options{
					MinSupport: 15, MaxLHS: 3, MinConfidence: minConf,
				})
				if err != nil {
					t.Fatal(err)
				}
				// Keep only the patterns mined at confidence 1.0; below-1
				// candidates are approximate by contract and may violate.
				var exact []*cfd.CFD
				for _, c := range rep.Candidates {
					if c.Confidence == 1.0 {
						exact = append(exact, c.CFD)
					}
				}
				if len(exact) == 0 {
					t.Fatal("no exact candidates mined; the property is vacuous")
				}
				if minConf < 1 && len(exact) == len(rep.Candidates) && noise > 0 {
					t.Log("note: approximate run admitted no sub-1.0 candidates")
				}
				merged := cfd.MergeByFD(exact)
				for i, c := range merged {
					c.ID = fmt.Sprintf("x%d", i+1)
				}
				det, err := detect.NativeDetector{}.DetectSnapshot(context.Background(), snap, merged)
				if err != nil {
					t.Fatal(err)
				}
				if len(det.Violations) != 0 {
					v := det.Violations[0]
					t.Errorf("mined-at-1.0 CFDs violated on their own snapshot: %d violations (first: cfd=%s tuple=%d attr=%s)",
						len(det.Violations), v.CFDID, v.TupleID, v.Attr)
				}
				if det.Version != rep.Version {
					t.Errorf("detect ran at version %d but mining reported %d", det.Version, rep.Version)
				}
			})
		}
	}
}

// Incremental lattice refresh: a Session remembers, per (table, options),
// what the last mining run decided and why, keyed by the attribute columns
// each decision depended on. When the table mutates and Discover runs
// again, relstore.Table.ChangesSince names the columns whose cells changed;
// every lattice decision touching only unchanged columns is replayed from
// the cache, and — because node partitions are materialized lazily — the
// partitions, intersections and purity scans behind those decisions are
// never rebuilt. Only nodes whose LHS or RHS columns actually changed are
// re-verified, so Discover on a 1M-tuple table after 100 edits to one
// column re-scans that column's lattice neighborhood, not the table.
//
// The cache is sound because every cached unit depends only on artifacts
// that are bitwise stable for unchanged columns under a stable row set:
//
//   - a variable-lattice check (X → a: purity, confidence, conditional
//     patterns) reads the PLIs, probes and class orders of X ∪ {a} plus the
//     resolved options — cached under the column set, reused iff no member
//     column changed;
//   - a constant-lattice itemset is identified by its (position, PLI class
//     index) pairs — class indices are first-occurrence stable, so the key
//     survives for unchanged columns — and carries its row cover and a
//     verdict per candidate RHS column; a changed RHS column invalidates
//     only that column's verdicts (re-scanning the cached cover), not the
//     itemset.
//
// Reuse never changes the mining walk, only short-circuits its per-node
// work, so the produced Report is byte-identical (DeepEqual) to a cold
// Mine over the same snapshot — the oracle harness and the discovery
// cross-check tests assert exactly that at every intermediate version.
package discovery

import (
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// coverCacheBudget bounds the total row indices retained across cached
// itemset covers (int32 each), so a wide constant lattice cannot pin
// unbounded memory between runs. Covers past the budget are simply not
// cached — the next run recomputes those intersections.
const coverCacheBudget = 4 << 20

// constVerdict is the cached outcome of "is column pos constant over this
// itemset's cover": the exact first-row value when it is.
type constVerdict struct {
	constant bool
	val      types.Value
}

// reuseState is the read-only face of the previous run a miner consults:
// which columns changed since, and the caches keyed as described in the
// package comment. All maps are from the previous run and never written
// during a mine.
type reuseState struct {
	changed []bool
	va      map[string]vaResult
	cover   map[string][]int32
	verdict map[string]constVerdict
}

// unchanged reports whether no column of xs (nor extra, if >= 0) changed.
func (r *reuseState) unchanged(xs []int, extra int) bool {
	for _, x := range xs {
		if r.changed[x] {
			return false
		}
	}
	return extra < 0 || !r.changed[extra]
}

// itemsetUnchanged reports whether none of the itemset's attribute
// positions changed.
func (r *reuseState) itemsetUnchanged(items []citem, set []int) bool {
	for _, it := range set {
		if r.changed[items[it].pos] {
			return false
		}
	}
	return true
}

// recorder collects the caches the *next* run will reuse. The miner fills
// it sequentially (after each level's parallel phase), so no locking.
type recorder struct {
	va          map[string]vaResult
	cover       map[string][]int32
	verdict     map[string]constVerdict
	coverBudget int
}

func newRecorder() *recorder {
	return &recorder{
		va:          map[string]vaResult{},
		cover:       map[string][]int32{},
		verdict:     map[string]constVerdict{},
		coverBudget: coverCacheBudget,
	}
}

func (r *recorder) putCover(key string, rows []int32) {
	if len(rows) > r.coverBudget {
		return
	}
	r.coverBudget -= len(rows)
	r.cover[key] = rows
}

// mineStats counts reuse and closure pruning during one run; fields are
// atomic because the lattice phases are parallel.
type mineStats struct {
	vaReused, vaComputed           atomic.Int64
	verdictReused, verdictComputed atomic.Int64
	coverReused, coverComputed     atomic.Int64
	// Closure-pruning profile (lattice.go): partitions materialized by a
	// real Intersect vs collapsed onto the parent's partition because the
	// exact-FD cover proved the added attribute redundant, and candidate
	// verdicts derived from the cover without a purity scan.
	partsIntersected, partsCollapsed atomic.Int64
	verdictsDerived                  atomic.Int64
}

// vaKey identifies one variable-lattice (X, a) check.
func vaKey(xs []int, a int) string {
	buf := make([]byte, 0, 4*len(xs)+4)
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(a)|0x80000000)
	return string(buf)
}

// itemPairKey appends one (position, class) item to an itemset key.
func itemPairKey(key string, it citem) string {
	buf := make([]byte, 0, len(key)+8)
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(it.pos))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(it.cl))
	return string(buf)
}

// verdictKey identifies one (itemset, RHS column) constant check.
func verdictKey(nodeKey string, p int) string {
	buf := make([]byte, 0, len(nodeKey)+4)
	buf = append(buf, nodeKey...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	return string(buf)
}

// clone returns a vaResult safe to hand across a cache boundary: the
// Candidates' CFDs are deep-copied so neither a caller mutating a served
// report nor a later run can corrupt the cached rules.
func (r vaResult) clone() vaResult {
	if len(r.emits) == 0 {
		return r
	}
	emits := make([]Candidate, len(r.emits))
	copy(emits, r.emits)
	for i := range emits {
		emits[i].CFD = emits[i].CFD.Clone()
	}
	return vaResult{holds: r.holds, emits: emits}
}

// SessionStats describes what the last Session.Discover run reused.
type SessionStats struct {
	// FullRuns / IncrementalRuns / ReportHits classify how runs resolved:
	// cold mine, cache-assisted mine, or same-version report served as is.
	FullRuns        int64 `json:"full_runs"`
	IncrementalRuns int64 `json:"incremental_runs"`
	ReportHits      int64 `json:"report_hits"`
	// Last-run reuse counters.
	VAChecksReused        int64 `json:"va_checks_reused"`
	VAChecksComputed      int64 `json:"va_checks_computed"`
	ConstVerdictsReused   int64 `json:"const_verdicts_reused"`
	ConstVerdictsComputed int64 `json:"const_verdicts_computed"`
	CoversReused          int64 `json:"covers_reused"`
	CoversComputed        int64 `json:"covers_computed"`
	// Closure-pruning counters for the last run (see Options.DisableClosure):
	// lattice partitions paid for with an O(n) Intersect, partitions
	// collapsed onto their parent because the exact-FD cover proved the
	// intersection a no-op, and verdicts derived from the cover without a
	// partition scan.
	PartitionsIntersected int64 `json:"partitions_intersected"`
	PartitionsCollapsed   int64 `json:"partitions_collapsed"`
	VerdictsDerived       int64 `json:"verdicts_derived"`
}

// Session is the incremental serving path for Discover on one table: it
// caches the last report and the per-column-set decision caches behind it,
// and refreshes them with O(changed columns) mining work when the table
// mutates in place. A Session is safe for concurrent use; runs serialize.
type Session struct {
	mu      sync.Mutex
	tab     *relstore.Table
	rawOpts Options // as passed by the caller, pre-defaulting
	report  *Report
	va      map[string]vaResult
	cover   map[string][]int32
	verdict map[string]constVerdict
	stats   SessionStats
}

// NewSession creates an incremental discovery session over tab.
func NewSession(tab *relstore.Table) *Session {
	return &Session{tab: tab}
}

// Discover mines the table's current version, reusing the previous run's
// decisions wherever the change log proves them still valid. The report is
// byte-identical to Mine over the same snapshot; callers must treat it as
// immutable (it may be served again while the version holds).
func (s *Session) Discover(ctx context.Context, opts Options) (*Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.tab.Snapshot()
	if s.report != nil && s.rawOpts == opts && s.report.Version == snap.Version() {
		s.stats.ReportHits++
		return s.report, nil
	}
	var reuse *reuseState
	if s.report != nil && s.rawOpts == opts {
		// ChangesSince reads the live version, which a concurrent writer may
		// have advanced past snap's — that only over-approximates the changed
		// set, never under.
		if changed, rowsStable, ok := s.tab.ChangesSince(s.report.Version); ok && rowsStable {
			reuse = &reuseState{changed: changed, va: s.va, cover: s.cover, verdict: s.verdict}
		}
	}
	rec := newRecorder()
	stats := &mineStats{}
	rep, err := mineSession(ctx, snap, opts, reuse, rec, stats)
	if err != nil {
		return nil, err
	}
	s.report, s.rawOpts = rep, opts
	s.va, s.cover, s.verdict = rec.va, rec.cover, rec.verdict
	if reuse != nil {
		s.stats.IncrementalRuns++
	} else {
		s.stats.FullRuns++
	}
	s.stats.VAChecksReused = stats.vaReused.Load()
	s.stats.VAChecksComputed = stats.vaComputed.Load()
	s.stats.ConstVerdictsReused = stats.verdictReused.Load()
	s.stats.ConstVerdictsComputed = stats.verdictComputed.Load()
	s.stats.CoversReused = stats.coverReused.Load()
	s.stats.CoversComputed = stats.coverComputed.Load()
	s.stats.PartitionsIntersected = stats.partsIntersected.Load()
	s.stats.PartitionsCollapsed = stats.partsCollapsed.Load()
	s.stats.VerdictsDerived = stats.verdictsDerived.Load()
	return rep, nil
}

// LastStats returns the session's cumulative run classification and the
// most recent run's reuse counters. Stats live outside the Report on
// purpose: the report must stay byte-identical to a cold Mine.
func (s *Session) LastStats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

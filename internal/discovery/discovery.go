// Package discovery mines CFDs from reference data. Semandaq's constraint
// engine accepts CFDs "either explicitly specified by users or
// automatically discovered from reference data" (paper §2); this package
// implements the discovery path in the style of the CFDMiner / CTANE
// family: constant CFDs from association rules, and variable CFDs from
// (conditioned) functional-dependency checks over attribute-set
// partitions.
//
// The engine is a level-wise lattice search over position list indexes
// (stripped partitions, relstore.Partition) built from the snapshot's
// columnar dictionary codes: an FD check is a partition purity test in
// integer codes, attribute sets refine by partition intersection, and
// candidate RHS sets propagate down the lattice so non-minimal rules are
// pruned before they are ever checked (free-set/minimality pruning). Each
// lattice level expands in parallel across Workers goroutines with
// per-stride context checks, and the whole search runs over one pinned
// relstore.Snapshot — the Report carries the snapshot version it mined,
// joining the system-wide versioning contract.
//
// The original row-store miner is preserved in legacy.go (LegacyDiscover)
// as the reference the lattice miner is cross-checked against.
package discovery

import (
	"context"
	"fmt"
	"runtime"

	"semandaq/internal/cfd"
	"semandaq/internal/fdset"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
)

// Options tunes the search. The zero value selects every default; the
// defaulting rule is: only non-positive fields are replaced, so every
// explicitly set positive value wins — in particular MinSupport: 1 means
// "every value is frequent" and is honored, never clamped to the
// max(2, N/100) default.
type Options struct {
	// MinSupport is the minimum number of tuples a pattern's condition
	// must cover. Non-positive selects the default max(2, N/100); any
	// explicit positive value — including 1 — is used as given.
	MinSupport int
	// MaxLHS bounds the size of the embedded FD's LHS (the lattice depth).
	// Non-positive selects the default 2; any positive depth is allowed.
	MaxLHS int
	// MaxPatternsPerFD bounds how many condition patterns one embedded FD
	// may accumulate. Non-positive selects the default 8.
	MaxPatternsPerFD int
	// MinConfidence is the minimum confidence for the embedded-FD checks
	// (global and conditional): confidence is the fraction of covered
	// tuples kept when each LHS group retains only its plurality RHS
	// value (the g3 measure). Non-positive selects the default 1.0 —
	// exact dependencies only; values below 1 admit approximate CFDs.
	// Constant CFDs are always mined exactly (confidence 1).
	MinConfidence float64
	// Workers is the goroutine count for per-level parallel lattice
	// expansion. Non-positive selects runtime.GOMAXPROCS.
	Workers int
	// DisableClosure turns off FD-closure pruning of the variable lattice
	// (partition collapse and derived verdicts, see lattice.go). The
	// report is byte-identical either way — closure reasoning only skips
	// work the emitted exact cover proves redundant; the flag exists so
	// experiments can measure the pruning (D9) and as an escape hatch.
	DisableClosure bool
}

// withDefaults resolves the defaulting rule against a table of n tuples:
// only non-positive fields are replaced (see Options). The result is fully
// resolved — Report.Options echoes it, so Workers names the actual
// goroutine count the search ran with.
func (o Options) withDefaults(n int) Options {
	if o.MinSupport <= 0 {
		o.MinSupport = max(2, n/100)
	}
	if o.MaxLHS <= 0 {
		o.MaxLHS = 2
	}
	if o.MaxPatternsPerFD <= 0 {
		o.MaxPatternsPerFD = 8
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 1.0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Candidate is one mined pattern with its evidence.
type Candidate struct {
	// CFD is the single-pattern form of the rule.
	CFD *cfd.CFD
	// Kind is "constant", "global-fd" or "conditional-fd".
	Kind string
	// Support is the number of tuples the pattern's condition covers: the
	// LHS-constant cover for constant rules, the condition class for
	// conditional FDs, the whole table for global FDs.
	Support int
	// Confidence is the kept fraction of the covered tuples under the g3
	// measure; 1.0 means the rule holds exactly on the snapshot.
	Confidence float64
}

// Report is the result of one mining run over one pinned snapshot.
type Report struct {
	// Version is the snapshot version the rules were mined from: the
	// report describes exactly that state of the table, consistent with
	// the version stamp every read path carries.
	Version int64
	// Tuples is the snapshot's row count.
	Tuples int
	// Options echoes the resolved options (after defaulting).
	Options Options
	// Candidates lists every mined pattern with support and confidence,
	// in mining order (variable rules level by level, then constants).
	Candidates []Candidate
	// CFDs is the registrable rule set: candidates merged by embedded FD
	// (tableaux of one FD combined), IDs assigned disc1, disc2, ...
	CFDs []*cfd.CFD
}

// ExactFDs projects the report's exact (confidence 1.0) global FDs into
// an fdset.Set over the schema's attribute positions — the algebraic
// facts the sqleng planner (Engine.RegisterFDs) and the factorised
// evaluation paths consume. Conditional and approximate candidates are
// excluded: they hold only on a condition class or only statistically,
// so they are not sound as universal rewrite facts.
func (r *Report) ExactFDs(sc *schema.Relation) (*fdset.Set, error) {
	s := fdset.New(sc.Arity())
	for _, c := range r.Candidates {
		if c.Kind != "global-fd" || c.Confidence < 1 {
			continue
		}
		lhs, err := sc.Positions(c.CFD.LHS)
		if err != nil {
			return nil, err
		}
		rhs, err := sc.Positions(c.CFD.RHS)
		if err != nil {
			return nil, err
		}
		s.Add(lhs, rhs[0])
	}
	return s, nil
}

// Mine runs the lattice search over one pinned snapshot and returns the
// versioned report. A cancelled ctx aborts the search between strides and
// returns ctx.Err().
func Mine(ctx context.Context, snap *relstore.Snapshot, opts Options) (*Report, error) {
	return mineSession(ctx, snap, opts, nil, nil, &mineStats{})
}

// MineStats profiles one cold mining run's lattice work — the counters
// the D9 experiment gates on. It lives outside the Report on purpose:
// reports are DeepEqual-compared across engines and sessions, and the
// work profile legitimately differs while the output must not.
type MineStats struct {
	// VAChecksComputed is the number of (node, RHS candidate) checks run.
	VAChecksComputed int64
	// PartitionsIntersected counts lattice partitions materialized by a
	// real O(n) Intersect; PartitionsCollapsed counts those shared from
	// the parent because the exact-FD cover proved the intersection a
	// no-op. VerdictsDerived counts candidate verdicts answered from the
	// cover without any partition scan.
	PartitionsIntersected int64
	PartitionsCollapsed   int64
	VerdictsDerived       int64
}

// MineWithStats is Mine plus the run's lattice work profile.
func MineWithStats(ctx context.Context, snap *relstore.Snapshot, opts Options) (*Report, MineStats, error) {
	stats := &mineStats{}
	rep, err := mineSession(ctx, snap, opts, nil, nil, stats)
	if err != nil {
		return nil, MineStats{}, err
	}
	return rep, MineStats{
		VAChecksComputed:      stats.vaComputed.Load(),
		PartitionsIntersected: stats.partsIntersected.Load(),
		PartitionsCollapsed:   stats.partsCollapsed.Load(),
		VerdictsDerived:       stats.verdictsDerived.Load(),
	}, nil
}

// mineSession is Mine with the incremental hooks attached: reuse answers
// lattice decisions from the previous run where valid (nil = cold), rec
// collects this run's decisions for the next (nil = don't record). Reuse
// only short-circuits per-node work; the walk and hence the Report are
// identical to a cold Mine over the same snapshot.
func mineSession(ctx context.Context, snap *relstore.Snapshot, opts Options, reuse *reuseState, rec *recorder, stats *mineStats) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err // don't pay the columnar/PLI build for a dead request
	}
	opts = opts.withDefaults(snap.Len())
	m := newMiner(ctx, snap, opts)
	m.reuse, m.rec, m.stats = reuse, rec, stats
	if err := ctx.Err(); err != nil {
		return nil, err // the cold build stopped early; its outputs are partial
	}
	variable, err := m.mineVariable(ctx)
	if err != nil {
		return nil, err
	}
	constant, err := m.mineConstant(ctx)
	if err != nil {
		return nil, err
	}
	// Merge order matches the legacy miner: variable rules first, then
	// constants, so tableaux of a shared embedded FD accumulate the same
	// way and IDs stay stable across the two engines.
	candidates := append(variable, constant...)
	all := make([]*cfd.CFD, len(candidates))
	for i, c := range candidates {
		all[i] = c.CFD
	}
	merged := cfd.MergeByFD(all)
	for i, c := range merged {
		c.ID = fmt.Sprintf("disc%d", i+1)
	}
	return &Report{
		Version:    snap.Version(),
		Tuples:     snap.Len(),
		Options:    opts,
		Candidates: candidates,
		CFDs:       merged,
	}, nil
}

// The legacy row-store miner: the package's original reference
// implementation, kept verbatim for the lattice miner's semantic
// cross-checks and the D6 legacy-vs-lattice benchmark. It scans the live
// row store with string-keyed group maps, knows no context cancellation,
// no workers, no snapshot pinning — exactly the properties the PLI lattice
// miner (lattice.go) was built to replace. At MaxLHS <= 2 its output is
// semantically identical to the lattice miner's (pinned by
// TestLatticeMatchesLegacy); at deeper levels its minimality pruning is
// not transitive and it emits redundant rules the lattice miner correctly
// suppresses.
package discovery

import (
	"fmt"
	"sort"
	"strings"

	"semandaq/internal/cfd"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// LegacyDiscover mines both constant and variable CFDs with the legacy
// row-store miner and returns them merged (tableaux of one embedded FD
// combined), IDs assigned disc1, disc2, ... New callers should use Mine;
// this entry point exists for cross-checks and benchmarks against the
// lattice miner. MinConfidence and Workers in opts are ignored.
func LegacyDiscover(tab *relstore.Table, opts Options) ([]*cfd.CFD, error) {
	constant, err := MineConstantCFDs(tab, opts)
	if err != nil {
		return nil, err
	}
	variable, err := MineVariableCFDs(tab, opts)
	if err != nil {
		return nil, err
	}
	out := cfd.MergeByFD(append(variable, constant...))
	for i, c := range out {
		c.ID = fmt.Sprintf("disc%d", i+1)
	}
	return out, nil
}

// itemset is a set of (attribute position, value key) pairs, canonically
// ordered by position.
type item struct {
	pos int
	key string
	val types.Value
}

// MineConstantCFDs finds minimal constant CFDs [A1=a1, ...] -> [B=b] with
// confidence 1 and support >= MinSupport: every tuple matching the LHS
// constants has B=b, and no proper subset of the LHS already implies it.
// It is the legacy row-store implementation (see the package comment at
// the top of this file).
func MineConstantCFDs(tab *relstore.Table, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults(tab.Len())
	sc := tab.Schema()
	// One pinned snapshot for the whole mining pass; the rows are frozen
	// and read-only here.
	rows := tab.Snapshot().Rows()
	arity := sc.Arity()

	// Frequent single items.
	type itemStat struct {
		item item
		rows []int
	}
	singleByKey := map[string]*itemStat{}
	for ri, row := range rows {
		for p := 0; p < arity; p++ {
			if row[p].IsNull() {
				continue
			}
			k := fmt.Sprintf("%d=%s", p, row[p].Key())
			st, ok := singleByKey[k]
			if !ok {
				st = &itemStat{item: item{pos: p, key: row[p].Key(), val: row[p]}}
				singleByKey[k] = st
			}
			st.rows = append(st.rows, ri)
		}
	}
	var frequent []*itemStat
	for _, st := range singleByKey {
		if len(st.rows) >= opts.MinSupport {
			frequent = append(frequent, st)
		}
	}
	sort.Slice(frequent, func(i, j int) bool {
		if frequent[i].item.pos != frequent[j].item.pos {
			return frequent[i].item.pos < frequent[j].item.pos
		}
		return frequent[i].item.key < frequent[j].item.key
	})

	// Levelwise itemset growth up to MaxLHS items; for each frequent LHS
	// itemset, check which RHS attributes are constant over its cover.
	type node struct {
		items []item
		rows  []int
	}
	var level []node
	for _, st := range frequent {
		level = append(level, node{items: []item{st.item}, rows: st.rows})
	}
	var out []*cfd.CFD
	// implied records RHS (pos,key-of-b) already implied by a sub-LHS, for
	// minimality: key = canonical LHS items + rhs pos.
	implied := map[string]bool{}

	emit := func(lhs []item, rhsPos int, rhsVal types.Value, support int) {
		lhsAttrs := make([]string, len(lhs))
		pats := make([]cfd.PatternValue, len(lhs))
		for i, it := range lhs {
			lhsAttrs[i] = sc.Attrs[it.pos].Name
			pats[i] = cfd.Constant(it.val)
		}
		c := cfd.New(
			fmt.Sprintf("const_%s_%d", strings.Join(lhsAttrs, "_"), rhsPos),
			sc.Name, lhsAttrs, []string{sc.Attrs[rhsPos].Name},
			cfd.PatternTuple{LHS: pats, RHS: []cfd.PatternValue{cfd.Constant(rhsVal)}})
		out = append(out, c)
	}

	// subsetImplies reports whether some proper subset of lhs already
	// implies rhsPos (minimality pruning).
	subsetKey := func(lhs []item, rhsPos int) string {
		parts := make([]string, len(lhs))
		for i, it := range lhs {
			parts[i] = fmt.Sprintf("%d=%s", it.pos, it.key)
		}
		return strings.Join(parts, "&") + ">" + fmt.Sprint(rhsPos)
	}
	subsetImplies := func(lhs []item, rhsPos int) bool {
		if len(lhs) == 1 {
			return implied[">"+fmt.Sprint(rhsPos)]
		}
		for skip := range lhs {
			sub := make([]item, 0, len(lhs)-1)
			for i, it := range lhs {
				if i != skip {
					sub = append(sub, it)
				}
			}
			if implied[subsetKey(sub, rhsPos)] {
				return true
			}
		}
		return false
	}

	for depth := 1; depth <= opts.MaxLHS && len(level) > 0; depth++ {
		for _, nd := range level {
			inLHS := map[int]bool{}
			for _, it := range nd.items {
				inLHS[it.pos] = true
			}
			for p := 0; p < arity; p++ {
				if inLHS[p] {
					continue
				}
				// Constant over the cover?
				var first types.Value
				constant := true
				for i, ri := range nd.rows {
					v := rows[ri][p]
					if v.IsNull() {
						constant = false
						break
					}
					if i == 0 {
						first = v
					} else if !v.Equal(first) {
						constant = false
						break
					}
				}
				if !constant {
					continue
				}
				if subsetImplies(nd.items, p) {
					continue
				}
				implied[subsetKey(nd.items, p)] = true
				emit(nd.items, p, first, len(nd.rows))
			}
		}
		if depth == opts.MaxLHS {
			break
		}
		// Grow: join each node with frequent single items on a later
		// attribute position.
		var next []node
		for _, nd := range level {
			last := nd.items[len(nd.items)-1].pos
			for _, st := range frequent {
				if st.item.pos <= last {
					continue
				}
				inter := intersectSorted(nd.rows, st.rows)
				if len(inter) < opts.MinSupport {
					continue
				}
				items := append(append([]item{}, nd.items...), st.item)
				next = append(next, node{items: items, rows: inter})
			}
		}
		level = next
	}
	return out, nil
}

// intersectSorted intersects two ascending row-index slices.
func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// MineVariableCFDs finds embedded FDs X -> A (|X| <= MaxLHS) that hold
// either globally (emitted as all-wildcard patterns, i.e. classical FDs) or
// conditionally on a single LHS constant B=b with support >= MinSupport
// (emitted as [B=b, rest=_] -> [A=_] patterns). Non-minimal FDs (a subset
// of X already determines A globally) are pruned. It is the legacy
// row-store implementation (see the package comment at the top of this
// file).
func MineVariableCFDs(tab *relstore.Table, opts Options) ([]*cfd.CFD, error) {
	opts = opts.withDefaults(tab.Len())
	sc := tab.Schema()
	// One pinned snapshot for the whole mining pass; the rows are frozen
	// and read-only here.
	rows := tab.Snapshot().Rows()
	arity := sc.Arity()

	// holdsOn reports whether X -> a holds on the given row subset, i.e.
	// no two rows agree on X but differ on a.
	holdsOn := func(xs []int, a int, subset []int) bool {
		seen := map[string]string{}
		var kb strings.Builder
		for _, ri := range subset {
			kb.Reset()
			for _, x := range xs {
				rows[ri][x].WriteGroupKey(&kb)
			}
			key := kb.String()
			av := rows[ri][a].Key()
			if prev, ok := seen[key]; ok {
				if prev != av {
					return false
				}
			} else {
				seen[key] = av
			}
		}
		return true
	}

	allRows := make([]int, len(rows))
	for i := range rows {
		allRows[i] = i
	}

	// globalFD[xsKey][a] marks FDs that hold globally, for minimality.
	globalHolds := map[string]map[int]bool{}
	xsKeyOf := func(xs []int) string {
		parts := make([]string, len(xs))
		for i, x := range xs {
			parts[i] = fmt.Sprint(x)
		}
		return strings.Join(parts, ",")
	}

	var out []*cfd.CFD
	var xsets [][]int
	var gen func(start int, cur []int)
	gen = func(start int, cur []int) {
		if len(cur) > 0 && len(cur) <= opts.MaxLHS {
			xsets = append(xsets, append([]int(nil), cur...))
		}
		if len(cur) == opts.MaxLHS {
			return
		}
		for p := start; p < arity; p++ {
			gen(p+1, append(cur, p))
		}
	}
	gen(0, nil)
	// Sort by size so minimality pruning sees subsets first.
	sort.Slice(xsets, func(i, j int) bool {
		if len(xsets[i]) != len(xsets[j]) {
			return len(xsets[i]) < len(xsets[j])
		}
		return xsKeyOf(xsets[i]) < xsKeyOf(xsets[j])
	})

	subsetHoldsGlobally := func(xs []int, a int) bool {
		if len(xs) <= 1 {
			return false
		}
		for skip := range xs {
			sub := make([]int, 0, len(xs)-1)
			for i, x := range xs {
				if i != skip {
					sub = append(sub, x)
				}
			}
			if globalHolds[xsKeyOf(sub)][a] {
				return true
			}
		}
		return false
	}

	for _, xs := range xsets {
		inX := map[int]bool{}
		for _, x := range xs {
			inX[x] = true
		}
		for a := 0; a < arity; a++ {
			if inX[a] {
				continue
			}
			if subsetHoldsGlobally(xs, a) {
				continue // implied by a smaller FD
			}
			if holdsOn(xs, a, allRows) {
				m := globalHolds[xsKeyOf(xs)]
				if m == nil {
					m = map[int]bool{}
					globalHolds[xsKeyOf(xs)] = m
				}
				m[a] = true
				out = append(out, wildcardCFD(sc, xs, a, nil, types.Null))
				continue
			}
			// Conditioned: try B=b for each B in X over frequent values.
			patterns := 0
			for _, b := range xs {
				if patterns >= opts.MaxPatternsPerFD {
					break
				}
				// Frequent values of attribute b.
				cover := map[string][]int{}
				repVal := map[string]types.Value{}
				for ri := range rows {
					v := rows[ri][b]
					if v.IsNull() {
						continue
					}
					cover[v.Key()] = append(cover[v.Key()], ri)
					repVal[v.Key()] = v
				}
				keys := make([]string, 0, len(cover))
				for k := range cover {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					if patterns >= opts.MaxPatternsPerFD {
						break
					}
					subset := cover[k]
					if len(subset) < opts.MinSupport {
						continue
					}
					if holdsOn(xs, a, subset) {
						out = append(out, wildcardCFD(sc, xs, a, []int{b}, repVal[k]))
						patterns++
					}
				}
			}
		}
	}
	return out, nil
}

// wildcardCFD builds a variable CFD on attrs xs -> a where condPos (if any)
// carries the constant condVal and every other LHS cell is a wildcard.
func wildcardCFD(sc *schema.Relation, xs []int, a int, condPos []int, condVal types.Value) *cfd.CFD {
	names := sc.AttrNames()
	lhsAttrs := make([]string, len(xs))
	pats := make([]cfd.PatternValue, len(xs))
	cond := map[int]bool{}
	for _, c := range condPos {
		cond[c] = true
	}
	for i, x := range xs {
		lhsAttrs[i] = names[x]
		if cond[x] {
			pats[i] = cfd.Constant(condVal)
		} else {
			pats[i] = cfd.Wild
		}
	}
	id := fmt.Sprintf("var_%s_%s", strings.Join(lhsAttrs, "_"), names[a])
	if len(condPos) > 0 {
		id += "_cond"
	}
	return cfd.New(id, sc.Name, lhsAttrs, []string{names[a]},
		cfd.PatternTuple{LHS: pats, RHS: []cfd.PatternValue{cfd.Wild}})
}

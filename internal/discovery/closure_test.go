package discovery

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"semandaq/internal/datagen"
	"semandaq/internal/relstore"
	"semandaq/internal/schema"
	"semandaq/internal/types"
)

// fdTable builds a table where A → B holds exactly (B is a function of A)
// while C and D cycle with coprime periods so no other FD holds: the
// {A,B} lattice node must collapse onto {A}'s partition.
func fdTable(t *testing.T, n int) *relstore.Table {
	t.Helper()
	tab := relstore.NewTable(schema.New("r", "A", "B", "C", "D"))
	for i := 0; i < n; i++ {
		a := i % 4
		tab.MustInsert(relstore.Tuple{
			types.NewString(fmt.Sprintf("a%d", a)),
			types.NewString(fmt.Sprintf("b%d", a/2)), // a0,a1->b0; a2,a3->b1
			types.NewString(fmt.Sprintf("c%d", i%3)),
			types.NewString(fmt.Sprintf("d%d", i%5)),
		})
	}
	return tab
}

// TestClosureCollapseFires asserts the tentpole pruning actually happens:
// with A → B in the emitted cover, the {A,B} node's partition is shared
// from {A} instead of intersected, so the closure run performs strictly
// fewer intersections than the DisableClosure run — and the reports stay
// DeepEqual (the pruning may only skip work, never change output).
func TestClosureCollapseFires(t *testing.T) {
	ctx := context.Background()
	tab := fdTable(t, 60)
	opts := Options{MinSupport: 2, MaxLHS: 2, Workers: 2}

	pruned, ps, err := MineWithStats(ctx, tab.Snapshot(), opts)
	if err != nil {
		t.Fatal(err)
	}
	off := opts
	off.DisableClosure = true
	flat, fs, err := MineWithStats(ctx, tab.RebuildSnapshot(), off)
	if err != nil {
		t.Fatal(err)
	}
	// Options are echoed in the report; align the flag before comparing.
	flat.Options.DisableClosure = false
	if !reflect.DeepEqual(pruned, flat) {
		t.Fatalf("closure pruning changed the report:\npruned: %+v\nflat:   %+v", pruned, flat)
	}
	if ps.PartitionsCollapsed == 0 {
		t.Fatalf("no partition collapsed despite A -> B in the cover: %+v", ps)
	}
	if fs.PartitionsCollapsed != 0 {
		t.Fatalf("DisableClosure still collapsed partitions: %+v", fs)
	}
	if ps.PartitionsIntersected >= fs.PartitionsIntersected {
		t.Fatalf("closure run intersected %d partitions, flat run %d — pruning saved nothing",
			ps.PartitionsIntersected, fs.PartitionsIntersected)
	}
	if ps.PartitionsIntersected+ps.PartitionsCollapsed != fs.PartitionsIntersected {
		t.Fatalf("work accounting off: %d intersected + %d collapsed != flat %d",
			ps.PartitionsIntersected, ps.PartitionsCollapsed, fs.PartitionsIntersected)
	}
}

// TestClosureIdentityOnGeneratedData sweeps noise rates and depths on the
// datagen workload: closure-pruned and flat mines must agree byte for
// byte, including under approximate confidence where only exact FDs may
// enter the cover.
func TestClosureIdentityOnGeneratedData(t *testing.T) {
	ctx := context.Background()
	for _, noise := range []float64{0, 0.05} {
		for _, conf := range []float64{1.0, 0.9} {
			ds := datagen.Generate(datagen.Config{Tuples: 500, Seed: 23, NoiseRate: noise})
			opts := Options{MinSupport: 3, MaxLHS: 3, MinConfidence: conf, Workers: 2}
			pruned, err := Mine(ctx, ds.Dirty.Snapshot(), opts)
			if err != nil {
				t.Fatal(err)
			}
			off := opts
			off.DisableClosure = true
			flat, err := Mine(ctx, ds.Dirty.RebuildSnapshot(), off)
			if err != nil {
				t.Fatal(err)
			}
			flat.Options.DisableClosure = false
			if !reflect.DeepEqual(pruned, flat) {
				t.Fatalf("noise=%.2f conf=%.2f: closure pruning changed the report", noise, conf)
			}
		}
	}
}

// TestClosureSurvivesSessionReuse mutates the FD table through rounds of
// edits that break and restore A → B, asserting after each round that the
// session's cache-assisted, closure-pruned report equals a cold mine.
func TestClosureSurvivesSessionReuse(t *testing.T) {
	ctx := context.Background()
	tab := fdTable(t, 48)
	opts := Options{MinSupport: 2, MaxLHS: 2, Workers: 2}
	sess := NewSession(tab)
	rng := rand.New(rand.NewSource(7))
	posB := tab.Schema().MustPos("B")
	ids := tab.Snapshot().IDs()
	for round := 0; round < 6; round++ {
		got, err := sess.Discover(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := coldMine(t, tab, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: session report != cold mine", round)
		}
		// Alternate breaking the FD (scatter B) and restoring it.
		id := ids[rng.Intn(len(ids))]
		v := fmt.Sprintf("b%d", round%2*3) // b0 or b3: b3 breaks A->B
		if _, err := tab.SetCell(id, posB, types.NewString(v)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExactFDsProjection asserts ExactFDs keeps exactly the confidence-1
// global FDs and that closure queries over it answer implication.
func TestExactFDsProjection(t *testing.T) {
	tab := fdTable(t, 40)
	rep, err := Mine(context.Background(), tab.Snapshot(), Options{MinSupport: 2, MaxLHS: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc := tab.Schema()
	set, err := rep.ExactFDs(sc)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := sc.MustPos("A"), sc.MustPos("B"), sc.MustPos("C")
	if !set.Implies([]int{a}, b) {
		t.Fatalf("A -> B missing from exact set %s", set)
	}
	if set.Implies([]int{a}, c) || set.Implies([]int{b}, a) {
		t.Fatalf("spurious implication in exact set %s", set)
	}
}

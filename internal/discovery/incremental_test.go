package discovery

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"semandaq/internal/datagen"
	"semandaq/internal/relstore"
	"semandaq/internal/types"
)

// coldMine is the oracle side: a full batch mine over a from-scratch
// snapshot of the table's current rows, sharing nothing with the session.
func coldMine(t *testing.T, tab *relstore.Table, opts Options) *Report {
	t.Helper()
	rep, err := Mine(context.Background(), tab.RebuildSnapshot(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// mutateCells applies k seeded single-cell edits drawn from the datagen
// corruption alphabet (wrong city, wrong area code), returning only after
// each landed as a real value change.
func mutateCells(t *testing.T, tab *relstore.Table, rng *rand.Rand, k int) {
	t.Helper()
	sc := tab.Schema()
	posCITY, posAC := sc.MustPos("CITY"), sc.MustPos("AC")
	ids := tab.Snapshot().IDs()
	cities := []string{"Edinburgh", "London", "Glasgow", "New York", "Chicago", "Madison"}
	acs := []int64{131, 20, 141, 212, 312, 608}
	for i := 0; i < k; i++ {
		id := ids[rng.Intn(len(ids))]
		if i%2 == 0 {
			if _, err := tab.SetCell(id, posCITY, types.NewString(cities[rng.Intn(len(cities))])); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := tab.SetCell(id, posAC, types.NewInt(acs[rng.Intn(len(acs))])); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSessionMatchesColdMine is the discovery half of the incremental
// oracle: after every batch of edits, the session's cache-assisted report
// must be DeepEqual to a cold Mine over a rebuilt snapshot — at clean,
// lightly dirty and heavily dirty noise rates.
func TestSessionMatchesColdMine(t *testing.T) {
	for _, noise := range []float64{0, 0.02, 0.10} {
		ds := datagen.Generate(datagen.Config{Tuples: 400, Seed: 17, NoiseRate: noise})
		tab := ds.Dirty
		opts := Options{MinSupport: 4, MaxLHS: 2, Workers: 4}
		sess := NewSession(tab)
		rng := rand.New(rand.NewSource(int64(noise*100) + 1))
		for round := 0; round < 5; round++ {
			got, err := sess.Discover(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			want := coldMine(t, tab, opts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("noise=%v round=%d: session report diverges from cold mine\ngot  %d candidates / %d cfds\nwant %d candidates / %d cfds",
					noise, round, len(got.Candidates), len(got.CFDs), len(want.Candidates), len(want.CFDs))
			}
			mutateCells(t, tab, rng, 3)
		}
		st := sess.LastStats()
		if st.IncrementalRuns == 0 {
			t.Errorf("noise=%v: no incremental run recorded: %+v", noise, st)
		}
		if st.VAChecksReused == 0 && st.ConstVerdictsReused == 0 {
			t.Errorf("noise=%v: refresh reused nothing: %+v", noise, st)
		}
	}
}

// TestSessionServesReportOnUnchangedVersion re-serves the identical report
// (same pointer — the cheapest possible read) while the version holds.
func TestSessionServesReportOnUnchangedVersion(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 200, Seed: 5})
	sess := NewSession(ds.Dirty)
	opts := Options{MinSupport: 4}
	r1, err := sess.Discover(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sess.Discover(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("unchanged version did not serve the cached report")
	}
	if st := sess.LastStats(); st.ReportHits != 1 || st.FullRuns != 1 {
		t.Errorf("stats = %+v, want 1 full run + 1 report hit", st)
	}
}

// TestSessionReuseIsColumnScoped edits exactly one column and asserts the
// refresh re-verified only that column's lattice neighborhood: the bulk of
// the variable checks and constant verdicts are served from cache.
func TestSessionReuseIsColumnScoped(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 400, Seed: 23})
	tab := ds.Dirty
	sess := NewSession(tab)
	opts := Options{MinSupport: 4, MaxLHS: 2, Workers: 2}
	if _, err := sess.Discover(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	// One real edit in one column.
	posCITY := tab.Schema().MustPos("CITY")
	id := tab.Snapshot().IDs()[7]
	row, _ := tab.Get(id)
	nv := "Edinburgh"
	if row[posCITY].Str() == nv {
		nv = "London"
	}
	if _, err := tab.SetCell(id, posCITY, types.NewString(nv)); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Discover(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := coldMine(t, tab, opts); !reflect.DeepEqual(got, want) {
		t.Fatal("refreshed report diverges from cold mine")
	}
	st := sess.LastStats()
	if st.IncrementalRuns != 1 {
		t.Fatalf("stats = %+v, want one incremental run", st)
	}
	// 7 attributes, one changed: a depth-1 variable check touches the edit
	// iff its LHS or RHS is CITY — 6 of 42 pairs at depth 1 — so reused
	// checks must dominate recomputed ones.
	if st.VAChecksReused <= st.VAChecksComputed {
		t.Errorf("variable checks: reused=%d computed=%d, want reuse to dominate after a 1-column edit",
			st.VAChecksReused, st.VAChecksComputed)
	}
	if st.ConstVerdictsReused == 0 {
		t.Errorf("constant verdicts: reused=%d computed=%d, want some reuse",
			st.ConstVerdictsReused, st.ConstVerdictsComputed)
	}
}

// TestSessionFallsBackOnStructuralChange verifies inserts/deletes (row set
// not stable) force a full mine that still matches the cold oracle.
func TestSessionFallsBackOnStructuralChange(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 200, Seed: 31})
	tab := ds.Dirty
	sess := NewSession(tab)
	opts := Options{MinSupport: 4}
	if _, err := sess.Discover(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	ids := tab.Snapshot().IDs()
	if !tab.Delete(ids[3]) {
		t.Fatal("delete failed")
	}
	row, _ := tab.Get(ids[8])
	tab.MustInsert(append(relstore.Tuple(nil), row...))
	got, err := sess.Discover(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := coldMine(t, tab, opts); !reflect.DeepEqual(got, want) {
		t.Fatal("post-insert report diverges from cold mine")
	}
	if st := sess.LastStats(); st.FullRuns != 2 || st.IncrementalRuns != 0 {
		t.Errorf("stats = %+v, want 2 full runs (structural change disables reuse)", st)
	}
}

// TestSessionOptionsChangeForcesFullRun verifies a different Options value
// never reuses caches built under another configuration.
func TestSessionOptionsChangeForcesFullRun(t *testing.T) {
	ds := datagen.Generate(datagen.Config{Tuples: 200, Seed: 37})
	sess := NewSession(ds.Dirty)
	if _, err := sess.Discover(context.Background(), Options{MinSupport: 4}); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Discover(context.Background(), Options{MinSupport: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := coldMine(t, ds.Dirty, Options{MinSupport: 8}); !reflect.DeepEqual(got, want) {
		t.Fatal("re-optioned report diverges from cold mine")
	}
	if st := sess.LastStats(); st.FullRuns != 2 {
		t.Errorf("stats = %+v, want 2 full runs", st)
	}
}
